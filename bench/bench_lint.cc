// Lint-based waste audit of the baseline schedulers.
//
// For each graph family and budget, runs greedy-topo, belady, and
// layer-by-layer, lints every schedule, and reports the wasted I/O bits
// each rule attributes (dead loads/stores, spill churn, recompute thrash)
// plus the cost after applying the safe fix-its. This turns the gap
// between a heuristic and the lower bound from one opaque number into a
// per-cause breakdown: where exactly does each baseline leak its I/O?
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/analysis.h"
#include "core/simulator.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "dataflows/random_dag.h"
#include "lint/fixes.h"
#include "lint/lint.h"
#include "obs/report.h"
#include "schedulers/belady.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/layer_by_layer.h"
#include "util/rng.h"
#include "util/table.h"

namespace wrbpg {
namespace {

// Generic layering for layer-by-layer on non-DWT graphs: depth(v) =
// 1 + max parent depth, so layer 0 is exactly the sources.
std::vector<std::vector<NodeId>> DepthLayers(const Graph& graph) {
  std::vector<std::size_t> depth(graph.num_nodes(), 0);
  std::size_t max_depth = 0;
  for (NodeId v : graph.topological_order()) {
    for (NodeId p : graph.parents(v)) {
      depth[v] = std::max(depth[v], depth[p] + 1);
    }
    max_depth = std::max(max_depth, depth[v]);
  }
  std::vector<std::vector<NodeId>> layers(max_depth + 1);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    layers[depth[v]].push_back(v);
  }
  return layers;
}

struct AuditRow {
  std::string scheduler;
  Weight cost = 0;
  Weight dead_load = 0;
  Weight dead_store = 0;
  Weight spill_churn = 0;
  Weight recompute = 0;
  Weight total_waste = 0;
  Weight fixed_cost = 0;
};

AuditRow Audit(const std::string& name, const Graph& graph, Weight budget,
               const Schedule& schedule) {
  AuditRow row;
  row.scheduler = name;
  const SimResult sim = Simulate(graph, budget, schedule);
  if (!sim.valid) {
    std::cerr << "warning: " << name << " produced an invalid schedule: "
              << sim.error << "\n";
    return row;
  }
  row.cost = sim.cost;

  const LintResult lint = LintSchedule(graph, budget, schedule);
  std::map<std::string_view, Weight> by_rule;
  for (const LintDiagnostic& d : lint.diagnostics) {
    by_rule[d.rule_id] += d.wasted_bits;
  }
  row.dead_load = by_rule["dead-load"];
  row.dead_store = by_rule["dead-store"];
  row.spill_churn = by_rule["spill-churn"];
  row.recompute = by_rule["redundant-recompute"];
  row.total_waste = lint.wasted_bits_total;

  const LintFixResult fixed = ApplyLintFixes(graph, budget, schedule);
  row.fixed_cost = fixed.ok ? fixed.cost_after : row.cost;
  return row;
}

void Family(const std::string& title, const Graph& graph,
            const std::vector<std::vector<NodeId>>& layers,
            const std::string& csv_dir, const std::string& csv_name,
            obs::Json& json_rows) {
  const Weight min_budget = MinValidBudget(graph);
  const Weight lb = AlgorithmicLowerBound(graph);
  std::cout << "\n== " << title << " ==\n"
            << "nodes=" << graph.num_nodes() << " min-budget=" << min_budget
            << " bits, algorithmic LB=" << lb << " bits of I/O\n";

  TextTable table({"budget", "scheduler", "cost", "dead-load", "dead-store",
                   "spill-churn", "recompute", "waste", "after-fixes"});
  std::vector<std::vector<std::string>> csv = {
      {"budget_bits", "scheduler", "cost", "dead_load", "dead_store",
       "spill_churn", "recompute", "total_waste", "fixed_cost"}};

  for (const Weight budget : {min_budget, 2 * min_budget}) {
    std::vector<AuditRow> rows;
    rows.push_back(Audit("greedy-topo", graph, budget,
                         GreedyTopoScheduler(graph).Run(budget).schedule));
    rows.push_back(Audit("belady", graph, budget,
                         BeladyScheduler(graph).Run(budget).schedule));
    LayerByLayerScheduler layered(graph, layers);
    rows.push_back(Audit("layer-by-layer", graph, budget,
                         layered.Run(budget).schedule));
    for (const AuditRow& r : rows) {
      table.AddRow({std::to_string(budget), r.scheduler,
                    std::to_string(r.cost), std::to_string(r.dead_load),
                    std::to_string(r.dead_store),
                    std::to_string(r.spill_churn),
                    std::to_string(r.recompute),
                    std::to_string(r.total_waste),
                    std::to_string(r.fixed_cost)});
      csv.push_back({std::to_string(budget), r.scheduler,
                     std::to_string(r.cost), std::to_string(r.dead_load),
                     std::to_string(r.dead_store),
                     std::to_string(r.spill_churn),
                     std::to_string(r.recompute),
                     std::to_string(r.total_waste),
                     std::to_string(r.fixed_cost)});
      obs::Json jr = obs::Json::Object();
      jr.Set("family", title);
      jr.Set("budget_bits", budget);
      jr.Set("scheduler", r.scheduler);
      jr.Set("cost", r.cost);
      jr.Set("dead_load", r.dead_load);
      jr.Set("dead_store", r.dead_store);
      jr.Set("spill_churn", r.spill_churn);
      jr.Set("recompute", r.recompute);
      jr.Set("total_waste", r.total_waste);
      jr.Set("fixed_cost", r.fixed_cost);
      json_rows.Push(std::move(jr));
    }
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, csv_name, csv);
}

}  // namespace
}  // namespace wrbpg

int main(int argc, char** argv) {
  using namespace wrbpg;
  const CliArgs args(argc, argv);
  const std::string csv_dir = args.GetString("csv", "");
  const std::string json_path = args.GetString("json", "");

  std::cout << "Lint audit: wasted I/O bits per rule per baseline "
               "scheduler (all schedules simulator-verified)\n";

  obs::Json json_rows = obs::Json::Array();
  {
    const DwtGraph dwt = BuildDwt(64, MaxDwtLevel(64));
    Family("DWT(64, " + std::to_string(MaxDwtLevel(64)) + ")", dwt.graph,
           dwt.layers, csv_dir, "lint_dwt", json_rows);
  }
  {
    const MvmGraph mvm = BuildMvm(8, 10);
    Family("MVM(8x10)", mvm.graph, DepthLayers(mvm.graph), csv_dir,
           "lint_mvm", json_rows);
  }
  {
    Rng rng(0x11171u);
    const Graph dag = BuildRandomDag(rng, {.num_layers = 6,
                                           .nodes_per_layer = 6,
                                           .max_in_degree = 3});
    Family("random-DAG(6x6)", dag, DepthLayers(dag), csv_dir, "lint_dag",
           json_rows);
  }

  if (!json_path.empty()) {
    obs::Json doc = obs::ObsDocument("lint-audit");
    doc.Set("rows", std::move(json_rows));
    std::string error;
    if (!obs::WriteJsonFile(json_path, doc, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    std::cout << "\n[json] " << json_path << "\n";
  }

  std::cout << "\n'after-fixes' re-verifies every fixed schedule through "
               "the simulator; cost never increases.\n";
  return 0;
}
