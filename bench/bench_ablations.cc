// Ablation studies for the design choices called out in DESIGN.md §5:
//   A. Eq. (3) full 8-strategy enumeration vs the reduced Eq. (4) set —
//      realized by comparing the generic k-ary scheduler (full permutation
//      x keep/spill space) against Algorithm 1 on pruned DWT trees.
//   B. MVM tiling degrees of freedom: full hybrid search vs
//      accumulator-residency only (g = 0) vs vector-residency only (h = 1).
//   C. Layer-by-layer traversal alternation on vs off.
//   D. Value of the DP overall: optimum vs greedy-topological scheduling.
#include <iostream>

#include "bench/bench_util.h"
#include "core/analysis.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/kary_tree.h"
#include "schedulers/layer_by_layer.h"
#include "schedulers/mvm_tiling.h"
#include "util/table.h"

namespace wrbpg {
namespace {

void AblationA(const std::string& csv_dir) {
  std::cout << "\n== Ablation A: Eq.(4) reduced strategies vs full "
               "enumeration (pruned DWT) ==\n";
  TextTable table({"budget (bits)", "full enumeration", "Eq.(4) reduced",
                   "equal?"});
  std::vector<std::vector<std::string>> csv = {
      {"budget_bits", "full", "reduced", "equal"}};
  const DwtGraph dwt = BuildDwt(64, 6, PrecisionConfig::DoubleAccumulator());
  const PrunedDwt pruned = PruneDwt(dwt);
  KaryTreeScheduler full(pruned.graph);
  DwtOptimalScheduler reduced(dwt);
  Weight coeff_bits = 0;
  for (NodeId v = 0; v < dwt.graph.num_nodes(); ++v) {
    if (dwt.roles[v] == DwtRole::kCoefficient) {
      coeff_bits += dwt.graph.weight(v);
    }
  }
  for (Weight b : bench::BudgetGridBits(128, 4096)) {
    const Weight f = full.CostOnly(b);
    const Weight r = reduced.CostOnly(b);
    if (f >= kInfiniteCost) continue;
    const bool equal = (f + coeff_bits) == r;
    table.AddRow({std::to_string(b), std::to_string(f + coeff_bits),
                  std::to_string(r), equal ? "yes" : "NO"});
    csv.push_back({std::to_string(b), std::to_string(f + coeff_bits),
                   std::to_string(r), equal ? "1" : "0"});
  }
  table.Print(std::cout);
  std::cout << "(Lemma 3.3's dominance argument: dropping strategies (1), "
               "(2), (5), (6) loses nothing.)\n";
  bench::DumpCsv(csv_dir, "ablation_a_strategies", csv);
}

void AblationB(const std::string& csv_dir) {
  std::cout << "\n== Ablation B: MVM tiling degrees of freedom "
               "(DA MVM(96,120)) ==\n";
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::DoubleAccumulator());
  MvmTilingScheduler tiling(mvm);

  auto restricted_cost = [&](Weight budget, bool allow_g, bool allow_h) {
    Weight best = kInfiniteCost;
    for (std::int64_t stripes = 1; stripes <= mvm.m; ++stripes) {
      const std::int64_t h = (mvm.m + stripes - 1) / stripes;
      if (!allow_h && h != 1) continue;
      for (std::int64_t g = 0; g <= mvm.n; ++g) {
        if (!allow_g && g != 0) continue;
        const MvmTilingScheduler::Tile tile{.g = g, .h = h,
                                            .spill_running = false};
        if (tiling.TilePeak(tile) <= budget) {
          best = std::min(best, tiling.TileCost(tile));
        }
      }
    }
    return best;
  };

  TextTable table({"budget (bits)", "hybrid (full)", "accumulators only",
                   "vector only"});
  std::vector<std::vector<std::string>> csv = {
      {"budget_bits", "hybrid", "acc_only", "vec_only"}};
  auto str = [](Weight w) {
    return w >= kInfiniteCost ? std::string("-") : std::to_string(w);
  };
  for (Weight b : bench::BudgetGridBits(128, 8192)) {
    const Weight hybrid = restricted_cost(b, true, true);
    const Weight acc = restricted_cost(b, false, true);
    const Weight vec = restricted_cost(b, true, false);
    table.AddRow({std::to_string(b), str(hybrid), str(acc), str(vec)});
    csv.push_back({std::to_string(b), str(hybrid), str(acc), str(vec)});
  }
  table.Print(std::cout);
  std::cout << "(Vector residency is what equalizes the DA capacity with "
               "Equal's -- Sec 5.3.)\n";
  bench::DumpCsv(csv_dir, "ablation_b_tiling", csv);
}

void AblationC(const std::string& csv_dir) {
  std::cout << "\n== Ablation C: layer-by-layer traversal alternation "
               "(Equal DWT(256,8)) ==\n";
  const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::Equal());
  LayerByLayerScheduler alternating(dwt.graph, dwt.layers, true);
  LayerByLayerScheduler fixed(dwt.graph, dwt.layers, false);
  TextTable table({"budget (bits)", "alternating", "fixed direction",
                   "saved (bits)"});
  std::vector<std::vector<std::string>> csv = {
      {"budget_bits", "alternating", "fixed", "saved"}};
  for (Weight b : bench::BudgetGridBits(64, 16384)) {
    const Weight alt = alternating.CostOnly(b);
    const Weight fix = fixed.CostOnly(b);
    if (alt >= kInfiniteCost || fix >= kInfiniteCost) continue;
    table.AddRow({std::to_string(b), std::to_string(alt), std::to_string(fix),
                  std::to_string(fix - alt)});
    csv.push_back({std::to_string(b), std::to_string(alt),
                   std::to_string(fix), std::to_string(fix - alt)});
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, "ablation_c_alternation", csv);
}

void AblationD(const std::string& csv_dir) {
  std::cout << "\n== Ablation D: value of the DP — optimum vs greedy "
               "topological (DA DWT(256,8)) ==\n";
  const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::DoubleAccumulator());
  DwtOptimalScheduler optimal(dwt);
  GreedyTopoScheduler greedy(dwt.graph);
  TextTable table({"budget (bits)", "greedy topo", "optimum", "ratio"});
  std::vector<std::vector<std::string>> csv = {
      {"budget_bits", "greedy", "optimum", "ratio"}};
  for (Weight b : bench::BudgetGridBits(128, 16384)) {
    const Weight g = greedy.CostOnly(b);
    const Weight o = optimal.CostOnly(b);
    if (g >= kInfiniteCost || o >= kInfiniteCost) continue;
    const double ratio =
        static_cast<double>(g) / static_cast<double>(o);
    table.AddRow({std::to_string(b), std::to_string(g), std::to_string(o),
                  std::to_string(ratio).substr(0, 4)});
    csv.push_back({std::to_string(b), std::to_string(g), std::to_string(o),
                   std::to_string(ratio)});
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, "ablation_d_greedy", csv);
}

}  // namespace
}  // namespace wrbpg

int main(int argc, char** argv) {
  using namespace wrbpg;
  const CliArgs args(argc, argv);
  const std::string csv_dir = args.GetString("csv", "");
  std::cout << "Ablation studies (DESIGN.md section 5)\n";
  AblationA(csv_dir);
  AblationB(csv_dir);
  AblationC(csv_dir);
  AblationD(csv_dir);
  return 0;
}
