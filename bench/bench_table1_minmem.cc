// Table 1 — minimum fast memory size comparison for the Fig. 5 workloads:
// scheduling approach, minimum size in words, word size, minimum capacity
// in bits, and the power-of-two capacity actually synthesized.
#include <iostream>

#include "bench/bench_util.h"
#include "core/analysis.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "hardware/sram_model.h"
#include "ioopt/ioopt_bounds.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/layer_by_layer.h"
#include "schedulers/mvm_tiling.h"
#include "util/table.h"

namespace wrbpg {
namespace {

struct Row {
  std::string workload;
  std::string weights;
  std::string approach;
  Weight bits;
};

}  // namespace
}  // namespace wrbpg

int main(int argc, char** argv) {
  using namespace wrbpg;
  const CliArgs args(argc, argv);
  const std::string csv_dir = args.GetString("csv", "");

  std::vector<Row> rows;
  for (const bool da : {false, true}) {
    const PrecisionConfig config =
        da ? PrecisionConfig::DoubleAccumulator() : PrecisionConfig::Equal();
    const std::string weights = da ? "Double Accumulator" : "Equal";

    const DwtGraph dwt = BuildDwt(256, 8, config);
    DwtOptimalScheduler optimal(dwt);
    rows.push_back({"DWT(256, 8)", weights, "Optimum*",
                    optimal.MinMemoryForLowerBound(kWordBits, 1 << 17)});
    LayerByLayerScheduler baseline(dwt.graph, dwt.layers);
    rows.push_back({"DWT(256, 8)", weights, "Layer-by-Layer",
                    baseline.MinMemoryForLowerBound(kWordBits, 1 << 17)});

    const MvmGraph mvm = BuildMvm(96, 120, config);
    rows.push_back({"MVM(96, 120)", weights, "Tiling*",
                    MvmTilingScheduler(mvm).MinMemoryForLowerBound()});
    rows.push_back({"MVM(96, 120)", weights, "IOOpt UB",
                    IoOptMvmBounds(mvm).UpperBoundMinMemory()});
  }

  std::cout << "Table 1: minimum fast memory size comparison "
               "(* = the paper's proposed approaches)\n\n";
  TextTable table({"Workload", "Node Weights", "Scheduling Approach",
                   "Min Size (words)", "Word Size (bits)",
                   "Min Capacity (bits)", "Pow2 Capacity (bits)"});
  std::vector<std::vector<std::string>> csv = {
      {"workload", "weights", "approach", "min_words", "word_bits",
       "min_capacity_bits", "pow2_capacity_bits"}};
  for (const Row& row : rows) {
    const Weight pow2 = PowerOfTwoCapacity(row.bits);
    const std::vector<std::string> cells = {
        row.workload,
        row.weights,
        row.approach,
        std::to_string(row.bits / kWordBits),
        std::to_string(kWordBits),
        std::to_string(row.bits),
        std::to_string(pow2)};
    table.AddRow(cells);
    csv.push_back(cells);
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, "table1_min_memory", csv);

  std::cout
      << "\nPaper reference (words): Optimum 10/18, Tiling 99/126, IOOpt UB\n"
         "193/289. The Layer-by-Layer rows depend on the exact spill\n"
         "heuristic; the paper measured 445/636 with its implementation --\n"
         "see EXPERIMENTS.md for the comparison of this reimplementation.\n";
  return 0;
}
