// Figure 7 — physical synthesis of the Table-1 power-of-two capacities:
// (a) area, (b) leakage power, (c) read power, (d) write power,
// (e) peak read bandwidth, (f) peak write bandwidth.
//
// The paper synthesizes with AMC in TSMC 65 nm; we use the analytic SRAM
// macro model (see src/hardware/sram_model.h and DESIGN.md §3).
#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench/bench_util.h"
#include "hardware/sram_model.h"
#include "util/table.h"

namespace wrbpg {
namespace {

struct DesignPoint {
  std::string workload;  // Fig. 7 x-axis group
  std::string approach;
  Weight pow2_bits;
};

std::string Fmt(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v;
  return os.str();
}

}  // namespace
}  // namespace wrbpg

int main(int argc, char** argv) {
  using namespace wrbpg;
  const CliArgs args(argc, argv);
  const std::string csv_dir = args.GetString("csv", "");

  // Power-of-two capacities from Table 1.
  const std::vector<DesignPoint> points = {
      {"Equal DWT(256,8)", "Optimum (ours)", 256},
      {"Equal DWT(256,8)", "Layer-by-Layer", 8192},
      {"DA DWT(256,8)", "Optimum (ours)", 512},
      {"DA DWT(256,8)", "Layer-by-Layer", 16384},
      {"Equal MVM(96,120)", "Tiling (ours)", 2048},
      {"Equal MVM(96,120)", "IOOpt UB", 4096},
      {"DA MVM(96,120)", "Tiling (ours)", 2048},
      {"DA MVM(96,120)", "IOOpt UB", 8192},
  };

  std::cout << "Figure 7: synthesized SRAM metrics for the Table-1 "
               "power-of-two capacities\n(analytic AMC/TSMC65-style model; "
               "see DESIGN.md substitution notes)\n\n";

  TextTable table({"Workload", "Approach", "Capacity (bits)",
                   "Area (lambda^2)", "Leakage (mW)", "Read Pwr (mW)",
                   "Write Pwr (mW)", "Read BW (GB/s)", "Write BW (GB/s)"});
  std::vector<std::vector<std::string>> csv = {
      {"workload", "approach", "capacity_bits", "area_lambda2", "leakage_mw",
       "read_power_mw", "write_power_mw", "read_bw_gbps", "write_bw_gbps"}};
  for (const DesignPoint& p : points) {
    const SramSynthesisResult synth = TrySynthesizeSram(p.pow2_bits);
    if (!synth.ok()) {
      std::cout << "  [skipped] " << p.workload << " / " << p.approach << ": "
                << synth.message << "\n";
      continue;
    }
    const SramMacro& macro = synth.macro;
    const std::vector<std::string> cells = {
        p.workload,
        p.approach,
        std::to_string(p.pow2_bits),
        Fmt(macro.area_lambda2),
        Fmt(macro.leakage_mw),
        Fmt(macro.read_power_mw),
        Fmt(macro.write_power_mw),
        Fmt(macro.read_bw_gbps),
        Fmt(macro.write_bw_gbps)};
    table.AddRow(cells);
    csv.push_back(cells);
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, "fig7_synthesis", csv);

  // Per-workload reduction summary (the paper's headline percentages).
  std::cout << "\nReductions of ours vs baseline per workload:\n";
  TextTable summary({"Workload", "Area reduction", "Leakage reduction",
                     "Read BW ratio"});
  double area_sum = 0, leak_sum = 0;
  for (std::size_t i = 0; i < points.size(); i += 2) {
    const SramMacro ours = SynthesizeSram(points[i].pow2_bits);
    const SramMacro base = SynthesizeSram(points[i + 1].pow2_bits);
    const double area_red = 100.0 * (1.0 - ours.area_lambda2 / base.area_lambda2);
    const double leak_red = 100.0 * (1.0 - ours.leakage_mw / base.leakage_mw);
    area_sum += area_red;
    leak_sum += leak_red;
    summary.AddRow({points[i].workload, Fmt(area_red) + "%",
                    Fmt(leak_red) + "%",
                    Fmt(ours.read_bw_gbps / base.read_bw_gbps)});
  }
  summary.AddRow({"AVERAGE", Fmt(area_sum / 4) + "%", Fmt(leak_sum / 4) + "%",
                  "-"});
  summary.Print(std::cout);
  std::cout << "\nPaper reference: average 63% area and 43% leakage "
               "reduction;\nDWT area -85.7%/-89.5%, MVM area -24.3%/-52.6%; "
               "throughput preserved.\n";
  return 0;
}
