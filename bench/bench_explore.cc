// bench_explore — design-space explorer throughput + determinism gate.
//
// Runs the full Explore() grid (band derivation, per-budget anytime
// solves, SRAM pricing, dominance pass) on two builtin instances at
// several outer thread counts and checks the DESIGN.md §8 contract the
// explorer inherits: with the default deadline_ms == 0 the frontier is
// bit-identical at any thread count. Each row records the FNV-1a
// FrontierHash and whether it matches the same instance's single-thread
// run; `all_identical` gates the whole document.
//
// Emits a wrbpg-obs-v1 document (tool "explore") consumed by
// tools/bench_diff.py against bench/baselines/BENCH_explore_quick.json:
// points / frontier_size / frontier_hash / identical are deterministic
// fields (must agree across runs), time_ms is the perf signal.
//
//   ./bench_explore --quick               # CI: threads {1,2}
//   ./bench_explore                       # full: threads {1,2,8}
//   ./bench_explore --json out.json       # artifact path (default
//                                         # BENCH_explore.json)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "dataflows/builtin_spec.h"
#include "explore/explore.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "util/cli.h"
#include "util/table.h"

namespace wrbpg {
namespace {

struct ExploreRow {
  std::string instance;
  std::size_t threads = 0;
  std::size_t points = 0;
  std::size_t frontier_size = 0;
  std::uint64_t frontier_hash = 0;
  bool identical = false;  // hash matches this instance's threads=1 row
  double time_ms = 0;
  double points_per_sec = 0;
};

std::string HexHash(std::uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

int Run(const CliArgs& args) {
  const bool quick = args.GetBool("quick", false);
  const std::string json_path = args.GetString("json", "BENCH_explore.json");
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }

  const std::vector<std::string> instances = {"dwt:8,2", "kary:2,3"};
  const std::vector<std::size_t> thread_counts =
      quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 8};

  std::vector<ExploreRow> rows;
  bool all_identical = true;
  bool all_ok = true;
  for (const std::string& spec : instances) {
    const BuiltinGraph built = BuildBuiltinGraph(spec);
    if (!built.ok) {
      std::cerr << "error: " << spec << ": " << built.error << "\n";
      return 1;
    }
    std::uint64_t t1_hash = 0;
    for (const std::size_t threads : thread_counts) {
      ExploreOptions options;
      options.threads = threads;
      const auto start = std::chrono::steady_clock::now();
      const ExploreResult result = Explore(built.graph(), options);
      const auto stop = std::chrono::steady_clock::now();

      ExploreRow row;
      row.instance = spec;
      row.threads = threads;
      row.time_ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
      if (!result.ok || result.frontier.empty()) {
        std::cerr << "error: " << spec << " threads=" << threads
                  << ": exploration "
                  << (result.ok ? "returned an empty frontier" : result.error)
                  << "\n";
        all_ok = false;
        rows.push_back(row);
        continue;
      }
      row.points = result.points.size();
      row.frontier_size = result.frontier.size();
      row.frontier_hash = FrontierHash(result);
      if (threads == thread_counts.front()) t1_hash = row.frontier_hash;
      row.identical = row.frontier_hash == t1_hash;
      all_identical = all_identical && row.identical;
      row.points_per_sec =
          row.time_ms > 0
              ? static_cast<double>(row.points) / (row.time_ms / 1000.0)
              : 0;
      rows.push_back(row);
    }
  }

  TextTable table({"Instance", "Threads", "Points", "Frontier", "Hash",
                   "Identical", "Time (ms)", "Points/s"});
  for (const ExploreRow& row : rows) {
    table.AddRow({row.instance, std::to_string(row.threads),
                  std::to_string(row.points),
                  std::to_string(row.frontier_size), HexHash(row.frontier_hash),
                  row.identical ? "yes" : "NO", Fmt(row.time_ms),
                  Fmt(row.points_per_sec)});
  }
  table.Print(std::cout);
  std::cout << (all_identical ? "frontiers bit-identical across thread counts"
                              : "DETERMINISM VIOLATION: frontier hash differs "
                                "across thread counts")
            << "\n";

  obs::Json doc = obs::ObsDocument("explore");
  obs::Json json_rows = obs::Json::Array();
  for (const ExploreRow& row : rows) {
    obs::Json r = obs::Json::Object();
    r.Set("instance", row.instance);
    r.Set("threads", static_cast<std::int64_t>(row.threads));
    r.Set("points", static_cast<std::int64_t>(row.points));
    r.Set("frontier_size", static_cast<std::int64_t>(row.frontier_size));
    r.Set("frontier_hash", HexHash(row.frontier_hash));
    r.Set("identical", row.identical);
    r.Set("time_ms", row.time_ms);
    r.Set("points_per_sec", row.points_per_sec);
    json_rows.Push(std::move(r));
  }
  doc.Set("rows", std::move(json_rows));
  doc.Set("all_identical", all_identical);
  std::string error;
  if (!obs::WriteJsonFile(json_path, doc, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::cout << "[json] " << json_path << "\n";
  return (all_identical && all_ok) ? 0 : 1;
}

}  // namespace
}  // namespace wrbpg

int main(int argc, char** argv) {
  const wrbpg::CliArgs args(argc, argv);
  return wrbpg::Run(args);
}
