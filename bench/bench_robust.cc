// Robustness-layer microbenchmarks (google-benchmark).
//
// Two questions matter for the robust layer to be usable inline in a
// compiler or runtime:
//   1. Repair throughput — patching a mutated schedule must cost about as
//      much as simulating it, not as much as rescheduling from scratch.
//   2. Fallback latency — when the exact stage is skipped or times out,
//      the chain's overhead on top of the winning heuristic must be small.
#include <benchmark/benchmark.h>

#include "core/analysis.h"
#include "core/simulator.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/random_dag.h"
#include "robust/fault_injector.h"
#include "robust/repair.h"
#include "robust/robust_scheduler.h"
#include "schedulers/belady.h"
#include "schedulers/dwt_optimal.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

void BM_RepairMutatedDwt(benchmark::State& state) {
  const auto n = state.range(0);
  const DwtGraph dwt = BuildDwt(n, MaxDwtLevel(n));
  const Weight budget = MinValidBudget(dwt.graph) + 64;
  DwtOptimalScheduler sched(dwt);
  const Schedule valid = sched.Run(budget).schedule;

  FaultInjector injector(dwt.graph, budget, valid);
  Rng rng(0xbe7c11u);
  const auto corpus = injector.Corpus(rng, 4);

  std::size_t i = 0;
  for (auto _ : state) {
    const FaultCase& fault = corpus[i++ % corpus.size()];
    benchmark::DoNotOptimize(
        RepairSchedule(dwt.graph, fault.budget, fault.schedule));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RepairMutatedDwt)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_RepairVsSimulateBaseline(benchmark::State& state) {
  // The floor: replaying the same schedule through the simulator alone.
  const DwtGraph dwt = BuildDwt(64, MaxDwtLevel(64));
  const Weight budget = MinValidBudget(dwt.graph) + 64;
  DwtOptimalScheduler sched(dwt);
  const Schedule valid = sched.Run(budget).schedule;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Simulate(dwt.graph, budget, valid));
  }
}
BENCHMARK(BM_RepairVsSimulateBaseline);

void BM_RobustChainHeuristicOnly(benchmark::State& state) {
  // Chain overhead when exact is skipped: RobustScheduler vs bare belady.
  Rng rng(0xc4a1u);
  const Graph dag = BuildRandomDag(rng, {.num_layers = 6,
                                         .nodes_per_layer = 6,
                                         .max_in_degree = 3});
  const Weight budget = MinValidBudget(dag) + 64;
  RobustOptions options;
  options.exact_max_nodes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RobustScheduler(dag).Run(budget, options));
  }
}
BENCHMARK(BM_RobustChainHeuristicOnly);

void BM_BeladyBaseline(benchmark::State& state) {
  Rng rng(0xc4a1u);
  const Graph dag = BuildRandomDag(rng, {.num_layers = 6,
                                         .nodes_per_layer = 6,
                                         .max_in_degree = 3});
  const Weight budget = MinValidBudget(dag) + 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BeladyScheduler(dag).Run(budget));
  }
}
BENCHMARK(BM_BeladyBaseline);

void BM_RobustChainWithDeadline(benchmark::State& state) {
  // End-to-end fallback latency with a deadline that cancels the exact
  // stage mid-flight (the acceptance scenario of the robust layer).
  Rng rng(0xdead11u);
  const Graph dag = BuildRandomDag(rng, {.num_layers = 6,
                                         .nodes_per_layer = 4,
                                         .max_in_degree = 3});
  const Weight budget = MinValidBudget(dag) + 32;
  RobustOptions options;
  options.deadline_ms = static_cast<double>(state.range(0));
  options.exact_max_nodes = 26;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RobustScheduler(dag).Run(budget, options));
  }
}
BENCHMARK(BM_RobustChainWithDeadline)->Arg(5)->Arg(20)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wrbpg
