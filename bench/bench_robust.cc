// Robustness-layer microbenchmarks (google-benchmark).
//
// Two questions matter for the robust layer to be usable inline in a
// compiler or runtime:
//   1. Repair throughput — patching a mutated schedule must cost about as
//      much as simulating it, not as much as rescheduling from scratch.
//   2. Fallback latency — when the exact stage is skipped or times out,
//      the chain's overhead on top of the winning heuristic must be small.
// `bench_robust --robust-report [--json <path>]` instead runs the fallback
// chain once per representative instance (DWT with the exact stage live, a
// random DAG with exact disabled, a deadline-cancelled run) and emits the
// per-stage provenance — winner, outcome, elapsed — as a wrbpg-obs-v1
// document with the chain's spans and counters attached.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <string_view>

#include "core/analysis.h"
#include "core/simulator.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/random_dag.h"
#include "obs/report.h"
#include "robust/fault_injector.h"
#include "robust/repair.h"
#include "robust/robust_scheduler.h"
#include "schedulers/belady.h"
#include "schedulers/dwt_optimal.h"
#include "util/cli.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

void BM_RepairMutatedDwt(benchmark::State& state) {
  const auto n = state.range(0);
  const DwtGraph dwt = BuildDwt(n, MaxDwtLevel(n));
  const Weight budget = MinValidBudget(dwt.graph) + 64;
  DwtOptimalScheduler sched(dwt);
  const Schedule valid = sched.Run(budget).schedule;

  FaultInjector injector(dwt.graph, budget, valid);
  Rng rng(0xbe7c11u);
  const auto corpus = injector.Corpus(rng, 4);

  std::size_t i = 0;
  for (auto _ : state) {
    const FaultCase& fault = corpus[i++ % corpus.size()];
    benchmark::DoNotOptimize(
        RepairSchedule(dwt.graph, fault.budget, fault.schedule));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RepairMutatedDwt)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_RepairVsSimulateBaseline(benchmark::State& state) {
  // The floor: replaying the same schedule through the simulator alone.
  const DwtGraph dwt = BuildDwt(64, MaxDwtLevel(64));
  const Weight budget = MinValidBudget(dwt.graph) + 64;
  DwtOptimalScheduler sched(dwt);
  const Schedule valid = sched.Run(budget).schedule;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Simulate(dwt.graph, budget, valid));
  }
}
BENCHMARK(BM_RepairVsSimulateBaseline);

void BM_RobustChainHeuristicOnly(benchmark::State& state) {
  // Chain overhead when exact is skipped: RobustScheduler vs bare belady.
  Rng rng(0xc4a1u);
  const Graph dag = BuildRandomDag(rng, {.num_layers = 6,
                                         .nodes_per_layer = 6,
                                         .max_in_degree = 3});
  const Weight budget = MinValidBudget(dag) + 64;
  RobustOptions options;
  options.exact_max_nodes = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RobustScheduler(dag).Run(budget, options));
  }
}
BENCHMARK(BM_RobustChainHeuristicOnly);

void BM_BeladyBaseline(benchmark::State& state) {
  Rng rng(0xc4a1u);
  const Graph dag = BuildRandomDag(rng, {.num_layers = 6,
                                         .nodes_per_layer = 6,
                                         .max_in_degree = 3});
  const Weight budget = MinValidBudget(dag) + 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BeladyScheduler(dag).Run(budget));
  }
}
BENCHMARK(BM_BeladyBaseline);

void BM_RobustChainWithDeadline(benchmark::State& state) {
  // End-to-end fallback latency with a deadline that cancels the exact
  // stage mid-flight (the acceptance scenario of the robust layer).
  Rng rng(0xdead11u);
  const Graph dag = BuildRandomDag(rng, {.num_layers = 6,
                                         .nodes_per_layer = 4,
                                         .max_in_degree = 3});
  const Weight budget = MinValidBudget(dag) + 32;
  RobustOptions options;
  options.deadline_ms = static_cast<double>(state.range(0));
  options.exact_max_nodes = 26;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RobustScheduler(dag).Run(budget, options));
  }
}
BENCHMARK(BM_RobustChainWithDeadline)->Arg(5)->Arg(20)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --robust-report: one chain run per representative instance, with the
// per-stage provenance exported through the shared observability sink.
// ---------------------------------------------------------------------------

void ReportChain(const std::string& name, const RobustResult& robust,
                 obs::Json& json_rows) {
  std::cout << name << ": winner="
            << (robust.result.feasible ? robust.winner : "none");
  if (robust.result.feasible) {
    // The chain's anytime contract: cost plus the tightest certified
    // lower bound any stage produced (DESIGN.md §11).
    std::cout << " cost=" << robust.result.cost
              << " lb=" << robust.result.lower_bound
              << " gap=" << robust.result.optimality_gap
              << " termination=" << ToString(robust.result.termination);
  }
  std::cout << "\n";
  obs::Json row = obs::Json::Object();
  row.Set("instance", name);
  row.Set("feasible", robust.result.feasible);
  row.Set("winner", robust.result.feasible ? robust.winner : "");
  if (robust.result.feasible) {
    row.Set("cost", robust.result.cost);
    row.Set("lower_bound", robust.result.lower_bound);
    row.Set("gap", robust.result.optimality_gap);
    row.Set("termination", ToString(robust.result.termination));
  }
  obs::Json stages = obs::Json::Array();
  for (const StageReport& stage : robust.stages) {
    std::cout << "  stage " << stage.name << ": " << ToString(stage.outcome)
              << " (" << stage.elapsed_ms << " ms)";
    if (!stage.detail.empty()) std::cout << " [" << stage.detail << "]";
    std::cout << "\n";
    obs::Json s = obs::Json::Object();
    s.Set("name", stage.name);
    s.Set("outcome", ToString(stage.outcome));
    s.Set("elapsed_ms", stage.elapsed_ms);
    if (stage.cost < kInfiniteCost) s.Set("cost", stage.cost);
    if (!stage.detail.empty()) s.Set("detail", stage.detail);
    stages.Push(std::move(s));
  }
  row.Set("stages", std::move(stages));
  json_rows.Push(std::move(row));
}

int RunRobustReport(const CliArgs& args) {
  const std::string json_path = args.GetString("json", "");
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }
  obs::Json json_rows = obs::Json::Array();

  {
    // Small DWT: the exact stage runs and wins.
    const DwtGraph dwt = BuildDwt(8, 2);
    const Weight budget = MinValidBudget(dwt.graph) + 2;
    ReportChain("dwt(8,2)+exact",
                RobustScheduler(dwt).Run(budget, {}), json_rows);
  }
  {
    // Random DAG with the exact stage disabled: a heuristic must win.
    Rng rng(0xc4a1u);
    const Graph dag = BuildRandomDag(rng, {.num_layers = 6,
                                           .nodes_per_layer = 6,
                                           .max_in_degree = 3});
    RobustOptions options;
    options.exact_max_nodes = 0;
    ReportChain("dag(6x6)-heuristic",
                RobustScheduler(dag).Run(MinValidBudget(dag) + 64, options),
                json_rows);
  }
  {
    // Tight deadline: the bb exact stage is interrupted mid-flight and
    // returns its anytime incumbent with a certified gap; the heuristics
    // run as backstops (the robustness layer's acceptance scenario).
    Rng rng(0xdead11u);
    const Graph dag = BuildRandomDag(rng, {.num_layers = 6,
                                           .nodes_per_layer = 4,
                                           .max_in_degree = 3});
    RobustOptions options;
    options.deadline_ms = 5;
    options.exact_max_nodes = 26;
    ReportChain("dag(6x4)-deadline-5ms",
                RobustScheduler(dag).Run(MinValidBudget(dag) + 32, options),
                json_rows);
  }

  if (!json_path.empty()) {
    obs::Json doc = obs::ObsDocument("robust-report");
    doc.Set("rows", std::move(json_rows));
    std::string error;
    if (!obs::WriteJsonFile(json_path, doc, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    std::cout << "[json] " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace wrbpg

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--robust-report") {
      const wrbpg::CliArgs args(argc, argv);
      return wrbpg::RunRobustReport(args);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
