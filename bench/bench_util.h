// Shared helpers for the figure/table regeneration binaries.
//
// Every bench prints the paper-style series/rows to stdout and, when run
// with --csv <dir>, additionally dumps machine-readable CSV for replotting.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/cli.h"
#include "util/csv.h"

namespace wrbpg::bench {

// Log-ish budget grid in bits: powers of two refined with midpoints, the
// granularity of the paper's Fig. 5 sweeps.
inline std::vector<Weight> BudgetGridBits(Weight lo, Weight hi) {
  std::vector<Weight> grid;
  for (Weight b = lo; b < hi; b *= 2) {
    grid.push_back(b);
    const Weight mid = b + b / 2;
    if (mid < hi) grid.push_back(mid);
  }
  grid.push_back(hi);
  return grid;
}

// Writes rows to <dir>/<name>.csv when dir is non-empty.
inline void DumpCsv(const std::string& dir, const std::string& name,
                    const std::vector<std::vector<std::string>>& rows) {
  if (dir.empty()) return;
  const std::string path = dir + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  CsvWriter csv(out);
  for (const auto& row : rows) csv.WriteRow(row);
  std::cout << "  [csv] " << path << "\n";
}

inline std::string FormatBits(Weight bits) {
  return std::to_string(bits) + " bits (" + std::to_string(bits / 16) +
         " words)";
}

}  // namespace wrbpg::bench
