// Extension studies beyond the paper's evaluation (DESIGN.md, EXPERIMENTS.md
// "Beyond the paper"):
//   E1. Generalized wavelets (Daubechies-4, taps = 4): I/O of the general-
//       DAG schedulers vs budget on the non-tree dataflow the paper leaves
//       to future work.
//   E2. Butterfly/WHT: data reuse scheduling on the FFT dataflow.
//   E3. Matrix-matrix multiplication: tiled I/O vs budget and minimum
//       memory across residency families (the tensor extension of Sec 4.3).
//   E4. Energy per DWT window: the Table-1 designs through the SRAM energy
//       model — the metric implanted BCIs actually budget.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "bench/bench_util.h"
#include "core/analysis.h"
#include "dataflows/banded_mvm_graph.h"
#include "dataflows/butterfly_graph.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mmm_graph.h"
#include "dataflows/wavelet_graph.h"
#include "hardware/energy_model.h"
#include "schedulers/banded_mvm.h"
#include "schedulers/belady.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/layer_by_layer.h"
#include "schedulers/mmm_tiling.h"
#include "util/table.h"

namespace wrbpg {
namespace {

std::string CostStr(Weight w) {
  return w >= kInfiniteCost ? "-" : std::to_string(w);
}

void WaveletStudy(const std::string& csv_dir) {
  std::cout << "\n== Ext 1: Daubechies-4 wavelet (taps=4), Wavelet(256, 5), "
               "Equal weights ==\n";
  const WaveletGraph w = BuildWavelet(256, 5, 4);
  LayerByLayerScheduler baseline(w.graph, w.layers);
  BeladyScheduler belady(w.graph);
  GreedyTopoScheduler greedy(w.graph);
  const Weight lb = AlgorithmicLowerBound(w.graph);

  TextTable table({"budget (bits)", "Algorithmic LB", "Greedy", "FIFO layers",
                   "Belady"});
  std::vector<std::vector<std::string>> csv = {
      {"budget_bits", "lb", "greedy", "fifo", "belady"}};
  for (Weight b : bench::BudgetGridBits(128, 16384)) {
    const Weight gg = greedy.CostOnly(b);
    const Weight ll = baseline.CostOnly(b);
    const Weight bb = belady.CostOnly(b);
    table.AddRow({std::to_string(b), std::to_string(lb), CostStr(gg),
                  CostStr(ll), CostStr(bb)});
    csv.push_back({std::to_string(b), std::to_string(lb), CostStr(gg),
                   CostStr(ll), CostStr(bb)});
  }
  table.Print(std::cout);
  std::cout << "(taps > 2 overlapping windows: not a tree; the Sec 3 optimal "
               "schedulers do not apply — open problem per the paper.)\n";
  bench::DumpCsv(csv_dir, "ext1_db4_wavelet", csv);
}

void ButterflyStudy(const std::string& csv_dir) {
  std::cout << "\n== Ext 2: Butterfly/WHT(256), Equal weights ==\n";
  const ButterflyGraph bf = BuildButterfly(256);
  LayerByLayerScheduler baseline(bf.graph, bf.layers);
  BeladyScheduler belady(bf.graph);
  const Weight lb = AlgorithmicLowerBound(bf.graph);

  TextTable table({"budget (bits)", "Algorithmic LB", "FIFO layers",
                   "Belady"});
  std::vector<std::vector<std::string>> csv = {
      {"budget_bits", "lb", "fifo", "belady"}};
  for (Weight b : bench::BudgetGridBits(128, 16384)) {
    table.AddRow({std::to_string(b), std::to_string(lb),
                  CostStr(baseline.CostOnly(b)), CostStr(belady.CostOnly(b))});
    csv.push_back({std::to_string(b), std::to_string(lb),
                   CostStr(baseline.CostOnly(b)),
                   CostStr(belady.CostOnly(b))});
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, "ext2_butterfly", csv);
}

void MmmStudy(const std::string& csv_dir) {
  std::cout << "\n== Ext 3: MMM(24, 24, 24) tiled I/O, Equal and DA ==\n";
  TextTable table({"config", "budget (bits)", "tiling cost", "greedy cost"});
  std::vector<std::vector<std::string>> csv = {
      {"config", "budget_bits", "tiling", "greedy"}};
  for (const bool da : {false, true}) {
    const PrecisionConfig config =
        da ? PrecisionConfig::DoubleAccumulator() : PrecisionConfig::Equal();
    const MmmGraph mmm = BuildMmm(24, 24, 24, config);
    MmmTilingScheduler tiling(mmm);
    GreedyTopoScheduler greedy(mmm.graph);
    for (Weight b : bench::BudgetGridBits(256, 32768)) {
      const Weight tc = tiling.CostOnly(b);
      const Weight gc = greedy.CostOnly(b);
      table.AddRow({ConfigLabel(config), std::to_string(b), CostStr(tc),
                    CostStr(gc)});
      csv.push_back({ConfigLabel(config), std::to_string(b), CostStr(tc),
                     CostStr(gc)});
    }
    std::cout << ConfigLabel(config) << ": algorithmic LB = "
              << AlgorithmicLowerBound(mmm.graph)
              << " bits, min memory for LB = "
              << tiling.MinMemoryForLowerBound() << " bits ("
              << tiling.MinMemoryForLowerBound() / 16 << " words)\n";
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, "ext3_mmm", csv);
}

void EnergyStudy(const std::string& csv_dir) {
  std::cout << "\n== Ext 4: energy per DWT(256,8) window on the Table-1 "
               "designs (duty cycle 4x) ==\n";
  TextTable table({"config", "approach", "SRAM (bits)", "I/O (bits)",
                   "dynamic (nJ)", "static (nJ)", "total (nJ)"});
  std::vector<std::vector<std::string>> csv = {
      {"config", "approach", "sram_bits", "io_bits", "dynamic_nj",
       "static_nj", "total_nj"}};
  auto fmt = [](double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(3) << v;
    return os.str();
  };
  for (const bool da : {false, true}) {
    const PrecisionConfig config =
        da ? PrecisionConfig::DoubleAccumulator() : PrecisionConfig::Equal();
    const DwtGraph dwt = BuildDwt(256, 8, config);
    DwtOptimalScheduler optimal(dwt);
    LayerByLayerScheduler baseline(dwt.graph, dwt.layers);

    struct Entry {
      const char* name;
      Weight sram_bits;
      Weight io_bits;
    };
    const Weight opt_mem = optimal.MinMemoryForLowerBound(16, 1 << 17);
    const Weight base_mem = baseline.MinMemoryForLowerBound(16, 1 << 17);
    const Entry entries[] = {
        {"Optimum (ours)", PowerOfTwoCapacity(opt_mem),
         optimal.CostOnly(opt_mem)},
        {"Layer-by-Layer", PowerOfTwoCapacity(base_mem),
         baseline.CostOnly(base_mem)},
    };
    for (const Entry& e : entries) {
      const SramMacro macro = SynthesizeSram(e.sram_bits);
      const EnergyReport report =
          EstimateScheduleEnergy(macro, e.io_bits / 2, e.io_bits / 2, 4.0);
      const std::vector<std::string> cells = {
          ConfigLabel(config),
          e.name,
          std::to_string(e.sram_bits),
          std::to_string(e.io_bits),
          fmt(report.read_energy_nj + report.write_energy_nj),
          fmt(report.static_energy_nj),
          fmt(report.total_energy_nj)};
      table.AddRow(cells);
      csv.push_back(cells);
    }
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, "ext4_energy", csv);
}

void BandedStudy(const std::string& csv_dir) {
  std::cout << "\n== Ext 5: banded MVM — minimum memory vs matrix size "
               "(half-bandwidth 4, Equal weights) ==\n";
  TextTable table({"n", "nnz", "min memory (bits)", "min memory (words)"});
  std::vector<std::vector<std::string>> csv = {
      {"n", "nnz", "min_memory_bits", "min_memory_words"}};
  for (std::int64_t n = 16; n <= 1024; n *= 2) {
    const BandedMvmGraph bm = BuildBandedMvm(n, 4);
    const Weight bits = BandedMvmScheduler(bm).MinMemoryForLowerBound();
    table.AddRow({std::to_string(n), std::to_string(bm.nnz()),
                  std::to_string(bits), std::to_string(bits / 16)});
    csv.push_back({std::to_string(n), std::to_string(bm.nnz()),
                   std::to_string(bits), std::to_string(bits / 16)});
  }
  table.Print(std::cout);
  std::cout << "(Constant in n: the sliding window pins only the band -- "
               "structured sparsity turns minimum memory from O(n) into "
               "O(bandwidth).)\n";
  bench::DumpCsv(csv_dir, "ext5_banded", csv);
}

}  // namespace
}  // namespace wrbpg

int main(int argc, char** argv) {
  using namespace wrbpg;
  const CliArgs args(argc, argv);
  const std::string csv_dir = args.GetString("csv", "");
  std::cout << "Extension studies (beyond the paper's evaluation)\n";
  WaveletStudy(csv_dir);
  ButterflyStudy(csv_dir);
  MmmStudy(csv_dir);
  BandedStudy(csv_dir);
  EnergyStudy(csv_dir);
  return 0;
}
