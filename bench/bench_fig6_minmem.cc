// Figure 6 — minimum fast memory size (the smallest budget whose I/O equals
// the algorithmic lower bound) as a function of the workload parameter n:
//   (a) Equal DWT(n, d*)   (b) DA DWT(n, d*)   — vs the layer-by-layer
//       baseline, d* the largest level possible for n (its 2-adic valuation)
//   (c) Equal MVM(96, n)   (d) DA MVM(96, n)   — vs the IOOpt upper bound
//
// The DWT panels sweep even n in [2, 256]; the baseline scan is the slow
// part and is parallelized across n on a thread pool.
#include <iostream>
#include <mutex>

#include "bench/bench_util.h"
#include "core/analysis.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "ioopt/ioopt_bounds.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/layer_by_layer.h"
#include "schedulers/mvm_tiling.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace wrbpg {
namespace {

struct DwtRow {
  std::int64_t n = 0;
  int d = 0;
  Weight optimal_bits = 0;
  Weight baseline_bits = 0;
};

void DwtPanel(const char* title, const PrecisionConfig& config,
              const std::string& csv_dir, const std::string& csv_name,
              ThreadPool& pool) {
  std::vector<std::int64_t> ns;
  for (std::int64_t n = 2; n <= 256; n += 2) ns.push_back(n);
  std::vector<DwtRow> rows(ns.size());

  ParallelFor(pool, 0, static_cast<std::int64_t>(ns.size()),
              [&](std::int64_t i) {
                const std::int64_t n = ns[static_cast<std::size_t>(i)];
                const int d = MaxDwtLevel(n);
                const DwtGraph dwt = BuildDwt(n, d, config);
                DwtOptimalScheduler optimal(dwt);
                LayerByLayerScheduler baseline(dwt.graph, dwt.layers);
                DwtRow row;
                row.n = n;
                row.d = d;
                row.optimal_bits =
                    optimal.MinMemoryForLowerBound(kWordBits, 1 << 17);
                row.baseline_bits =
                    baseline.MinMemoryForLowerBound(kWordBits, 1 << 17);
                rows[static_cast<std::size_t>(i)] = row;
              });

  std::cout << "\n== Fig 6 " << title << " ==\n";
  TextTable table({"n", "d*", "Layer-by-Layer (bits)", "Optimum (bits)"});
  std::vector<std::vector<std::string>> csv = {
      {"n", "d", "layer_by_layer_bits", "optimum_bits"}};
  for (const DwtRow& row : rows) {
    // Print a decimated view; the CSV keeps every point.
    if (row.n % 16 == 2 || row.n % 16 == 0) {
      table.AddRow({std::to_string(row.n), std::to_string(row.d),
                    std::to_string(row.baseline_bits),
                    std::to_string(row.optimal_bits)});
    }
    csv.push_back({std::to_string(row.n), std::to_string(row.d),
                   std::to_string(row.baseline_bits),
                   std::to_string(row.optimal_bits)});
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, csv_name, csv);
}

void MvmPanel(const char* title, const PrecisionConfig& config,
              const std::string& csv_dir, const std::string& csv_name) {
  std::cout << "\n== Fig 6 " << title << " ==\n";
  TextTable table({"n", "IOOpt UB (bits)", "Tiling (bits)"});
  std::vector<std::vector<std::string>> csv = {
      {"n", "ioopt_ub_bits", "tiling_bits"}};
  for (std::int64_t n = 1; n <= 120; ++n) {
    const MvmGraph mvm = BuildMvm(96, n, config);
    const Weight ours = MvmTilingScheduler(mvm).MinMemoryForLowerBound();
    const Weight ioopt = IoOptMvmBounds(mvm).UpperBoundMinMemory();
    if (n % 10 == 0 || n == 1) {
      table.AddRow({std::to_string(n), std::to_string(ioopt),
                    std::to_string(ours)});
    }
    csv.push_back(
        {std::to_string(n), std::to_string(ioopt), std::to_string(ours)});
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, csv_name, csv);
}

}  // namespace
}  // namespace wrbpg

int main(int argc, char** argv) {
  using namespace wrbpg;
  const CliArgs args(argc, argv);
  const std::string csv_dir = args.GetString("csv", "");
  ThreadPool pool;

  std::cout << "Figure 6: minimum fast memory size vs workload parameter n "
               "(16-bit words)\n";
  DwtPanel("(a) Equal DWT(n, d*)", PrecisionConfig::Equal(), csv_dir,
           "fig6a_equal_dwt", pool);
  DwtPanel("(b) DA DWT(n, d*)", PrecisionConfig::DoubleAccumulator(),
           csv_dir, "fig6b_da_dwt", pool);
  MvmPanel("(c) Equal MVM(96, n)", PrecisionConfig::Equal(), csv_dir,
           "fig6c_equal_mvm");
  MvmPanel("(d) DA MVM(96, n)", PrecisionConfig::DoubleAccumulator(),
           csv_dir, "fig6d_da_mvm");
  return 0;
}
