// Figure 5 — bits transferred between fast and slow memory as a function of
// fast memory size, for all four panels:
//   (a) Equal DWT(256, 8):  Algorithmic LB, Layer-by-Layer, Optimum (ours)
//   (b) DA    DWT(256, 8):  same series
//   (c) Equal MVM(96, 120): IOOpt LB, IOOpt UB, Tiling (ours)
//   (d) DA    MVM(96, 120): same series
//
// Word size is 16 bits (BCI sample width); DA doubles non-input precision.
#include <iomanip>
#include <iostream>

#include "bench/bench_util.h"
#include "core/analysis.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "ioopt/ioopt_bounds.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/layer_by_layer.h"
#include "schedulers/mvm_tiling.h"
#include "util/table.h"

namespace wrbpg {
namespace {

std::string CostStr(Weight cost) {
  return cost >= kInfiniteCost ? "-" : std::to_string(cost);
}

void DwtPanel(const char* title, const PrecisionConfig& config,
              const std::string& csv_dir, const std::string& csv_name) {
  const DwtGraph dwt = BuildDwt(256, 8, config);
  DwtOptimalScheduler optimal(dwt);
  LayerByLayerScheduler baseline(dwt.graph, dwt.layers);
  const Weight lb = AlgorithmicLowerBound(dwt.graph);

  std::cout << "\n== Fig 5 " << title << " ==\n";
  TextTable table({"fast memory (bits)", "words", "Algorithmic LB",
                   "Layer-by-Layer", "Optimum (ours)"});
  std::vector<std::vector<std::string>> csv = {
      {"budget_bits", "budget_words", "algorithmic_lb", "layer_by_layer",
       "optimum"}};
  for (Weight b : bench::BudgetGridBits(64, 16384)) {
    const Weight base = baseline.CostOnly(b);
    const Weight ours = optimal.CostOnly(b);
    table.AddRow({std::to_string(b), std::to_string(b / 16),
                  std::to_string(lb), CostStr(base), CostStr(ours)});
    csv.push_back({std::to_string(b), std::to_string(b / 16),
                   std::to_string(lb), CostStr(base), CostStr(ours)});
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, csv_name, csv);
}

void MvmPanel(const char* title, const PrecisionConfig& config,
              const std::string& csv_dir, const std::string& csv_name) {
  const MvmGraph mvm = BuildMvm(96, 120, config);
  MvmTilingScheduler tiling(mvm);
  const IoOptMvmBounds bounds(mvm);

  std::cout << "\n== Fig 5 " << title << " ==\n";
  TextTable table({"fast memory (bits)", "words", "IOOpt LB", "IOOpt UB",
                   "Tiling (ours)"});
  std::vector<std::vector<std::string>> csv = {
      {"budget_bits", "budget_words", "ioopt_lb", "ioopt_ub", "tiling"}};
  for (Weight b : bench::BudgetGridBits(64, 16384)) {
    const Weight ub = bounds.UpperBoundCost(b);
    const Weight ours = tiling.CostOnly(b);
    table.AddRow({std::to_string(b), std::to_string(b / 16),
                  std::to_string(bounds.LowerBound()), CostStr(ub),
                  CostStr(ours)});
    csv.push_back({std::to_string(b), std::to_string(b / 16),
                   std::to_string(bounds.LowerBound()), CostStr(ub),
                   CostStr(ours)});
  }
  table.Print(std::cout);
  bench::DumpCsv(csv_dir, csv_name, csv);
}

}  // namespace
}  // namespace wrbpg

int main(int argc, char** argv) {
  using namespace wrbpg;
  const CliArgs args(argc, argv);
  const std::string csv_dir = args.GetString("csv", "");

  std::cout << "Figure 5: weighted I/O vs fast memory size "
               "(DWT(256,8) and MVM(96,120), 16-bit words)\n";
  DwtPanel("(a) Equal DWT(256,8)", PrecisionConfig::Equal(), csv_dir,
           "fig5a_equal_dwt");
  DwtPanel("(b) DA DWT(256,8)", PrecisionConfig::DoubleAccumulator(), csv_dir,
           "fig5b_da_dwt");
  MvmPanel("(c) Equal MVM(96,120)", PrecisionConfig::Equal(), csv_dir,
           "fig5c_equal_mvm");
  MvmPanel("(d) DA MVM(96,120)", PrecisionConfig::DoubleAccumulator(),
           csv_dir, "fig5d_da_mvm");
  std::cout << "\n'-' marks budgets below the scheduler's feasibility "
               "floor.\n";
  return 0;
}
