// Figure 8 — physical layout comparison between the power-of-two memories
// of Table 1. The paper shows GDS plots from AMC; we render deterministic
// ASCII floorplans of the same macro organizations (DESIGN.md §3).
#include <iostream>

#include "hardware/sram_model.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace wrbpg;
  (void)CliArgs(argc, argv);

  struct Panel {
    const char* title;
    const char* ours_label;
    Weight ours_bits;
    const char* base_label;
    Weight base_bits;
  };
  const Panel panels[] = {
      {"(a) Equal DWT(256,8)", "Optimum (ours)", 256, "Layer-by-Layer", 8192},
      {"(b) DA DWT(256,8)", "Optimum (ours)", 512, "Layer-by-Layer", 16384},
      {"(c) Equal MVM(96,120)", "Tiling (ours)", 2048, "IOOpt UB", 4096},
      {"(d) DA MVM(96,120)", "Tiling (ours)", 2048, "IOOpt UB", 8192},
  };

  std::cout << "Figure 8: layout comparison between power-of-two memory "
               "sizes\n('#' bit-cell array, ':' row decoder, '=' column "
               "periphery)\n";
  for (const Panel& p : panels) {
    std::cout << "\n== Fig 8 " << p.title << " ==\n";
    std::cout << RenderLayout(SynthesizeSram(p.ours_bits), p.ours_label);
    std::cout << RenderLayout(SynthesizeSram(p.base_bits), p.base_label);
  }
  return 0;
}
