// Scheduler runtime microbenchmarks (google-benchmark).
//
// Supports the polynomial-time claims of Theorems 3.5 and 3.8: DP cost
// evaluation and schedule generation scale polynomially in |V| (DWT) and
// stay tractable in k (k-ary trees), and the WRBPG simulator replays
// hundreds of thousands of moves per millisecond.
#include <benchmark/benchmark.h>

#include "core/analysis.h"
#include "core/simulator.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "dataflows/tree_graph.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/kary_tree.h"
#include "schedulers/layer_by_layer.h"
#include "schedulers/mvm_tiling.h"

namespace wrbpg {
namespace {

void BM_DwtOptimalCost(benchmark::State& state) {
  const auto n = state.range(0);
  const DwtGraph dwt =
      BuildDwt(n, MaxDwtLevel(n), PrecisionConfig::DoubleAccumulator());
  const Weight budget = MinValidBudget(dwt.graph) + 64;
  for (auto _ : state) {
    DwtOptimalScheduler optimal(dwt);  // fresh memo each iteration
    benchmark::DoNotOptimize(optimal.CostOnly(budget));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DwtOptimalCost)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_DwtOptimalSchedule(benchmark::State& state) {
  const auto n = state.range(0);
  const DwtGraph dwt = BuildDwt(n, MaxDwtLevel(n));
  const Weight budget = MinValidBudget(dwt.graph) + 64;
  for (auto _ : state) {
    DwtOptimalScheduler optimal(dwt);
    benchmark::DoNotOptimize(optimal.Run(budget).schedule.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DwtOptimalSchedule)->RangeMultiplier(2)->Range(16, 256)
    ->Complexity();

void BM_KaryTreeCostByArity(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  // Keep node counts comparable: pick levels so |V| stays in the hundreds.
  const int levels = k == 2 ? 7 : (k == 3 ? 5 : 4);
  const TreeGraph t = BuildPerfectTree(k, levels);
  const Weight budget = MinValidBudget(t.graph) + 64;
  for (auto _ : state) {
    KaryTreeScheduler sched(t.graph);
    benchmark::DoNotOptimize(sched.CostOnly(budget));
  }
}
BENCHMARK(BM_KaryTreeCostByArity)->DenseRange(2, 4);

void BM_MvmTilingSearch(benchmark::State& state) {
  const auto n = state.range(0);
  const MvmGraph mvm =
      BuildMvm(96, n, PrecisionConfig::DoubleAccumulator());
  MvmTilingScheduler tiling(mvm);
  const Weight budget = 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiling.CostOnly(budget));
  }
}
BENCHMARK(BM_MvmTilingSearch)->RangeMultiplier(2)->Range(15, 120);

void BM_MvmTilingScheduleGeneration(benchmark::State& state) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
  MvmTilingScheduler tiling(mvm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiling.Run(1584).schedule.size());
  }
}
BENCHMARK(BM_MvmTilingScheduleGeneration);

void BM_LayerByLayerRun(benchmark::State& state) {
  const DwtGraph dwt = BuildDwt(256, 8);
  LayerByLayerScheduler baseline(dwt.graph, dwt.layers);
  const Weight budget = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline.CostOnly(budget));
  }
}
BENCHMARK(BM_LayerByLayerRun)->Arg(256)->Arg(2048)->Arg(16384);

void BM_SimulatorReplay(benchmark::State& state) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
  MvmTilingScheduler tiling(mvm);
  const auto run = tiling.Run(1584);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Simulate(mvm.graph, 1584, run.schedule).cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(run.schedule.size()));
}
BENCHMARK(BM_SimulatorReplay);

void BM_MinMemorySearchDwt(benchmark::State& state) {
  const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::DoubleAccumulator());
  for (auto _ : state) {
    DwtOptimalScheduler optimal(dwt);
    benchmark::DoNotOptimize(
        optimal.MinMemoryForLowerBound(kWordBits, 1 << 17));
  }
}
BENCHMARK(BM_MinMemorySearchDwt);

}  // namespace
}  // namespace wrbpg
