// Scheduler runtime microbenchmarks (google-benchmark), plus the
// `--threads-sweep` mode for the DESIGN.md §8 parallel search engine.
//
// Default mode supports the polynomial-time claims of Theorems 3.5 and
// 3.8: DP cost evaluation and schedule generation scale polynomially in
// |V| (DWT) and stay tractable in k (k-ary trees), and the WRBPG
// simulator replays hundreds of thousands of moves per millisecond.
//
// `bench_scheduler_perf --threads-sweep [--csv <dir>]` instead runs the
// exact brute-force search and the analysis budget sweep at 1/2/4/8
// threads on DWT and k-ary instances, printing wall time, speedup over
// the sequential run, cost, and whether the schedule is bit-identical to
// `--threads 1` (the determinism contract says it always is).
// `--dwt-n/--dwt-d/--budget-slack` resize the DWT instance; the default
// is chosen so the sequential solve takes on the order of a second.
//
// `bench_scheduler_perf --engine-compare [--quick] [--json <path>]` races
// the four exact engines (dijkstra / astar / astar+dominance / bb,
// DESIGN.md §9/§11) over DWT and k-ary tree instances at several thread
// counts. It reports expanded states, waves, and wall time per engine,
// checks every schedule bit-for-bit against the dijkstra sequential
// baseline (exit 1 on any divergence), prints the expanded-state
// reduction of the informed engines, and writes the table as JSON
// (default BENCH_exact.json). `--quick` shrinks the instances for CI
// smoke runs.
//
// `bench_scheduler_perf --anytime-sweep [--quick] [--json <path>]` runs
// the bb anytime engine (DESIGN.md §11) under a grid of deadlines on a
// 64-node random DAG — past the exact engines' practical reach — and a
// DWT instance. The search root is primed with the best ganalysis bound
// certificate (ganalysis/bounds.h), so interrupted rows report the
// certificate-tightened lower bound (the cert_lb column); schedules are
// bit-identical with or without it. Every returned schedule is replayed
// through the simulator, and every row must satisfy the anytime contract
// (lower_bound <= cost, gap == cost - lower_bound, gap finite). The
// table is written as JSON (default BENCH_anytime.json); exit 1 if any
// schedule is invalid or any gap unsound.
//
// `bench_scheduler_perf --bound-compare [--json <path>]` tables the three
// start-state lower bounds (Prop 2.4 algorithmic / wavefront / segment,
// DESIGN.md §12) across the builtin families at a band of budgets,
// re-verifies every certificate witness, and cross-checks against the
// closed-form DP optimum where one exists (certificates must never
// exceed it). The paper-budget acceptance rows — dwt(16,2) and kary(2,4)
// at their minimum valid budgets — must show the budget-aware bounds
// STRICTLY dominating the algorithmic bound. JSON to BENCH_bounds.json;
// exit 1 on any verification failure, unsound bound, or lost dominance.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/analysis.h"
#include "core/simulator.h"
#include "dataflows/butterfly_graph.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "dataflows/random_dag.h"
#include "dataflows/tree_graph.h"
#include "ganalysis/bounds.h"
#include "obs/report.h"
#include "schedulers/brute_force.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/kary_tree.h"
#include "schedulers/layer_by_layer.h"
#include "schedulers/mvm_tiling.h"
#include "util/cancel.h"
#include "util/cli.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

void BM_DwtOptimalCost(benchmark::State& state) {
  const auto n = state.range(0);
  const DwtGraph dwt =
      BuildDwt(n, MaxDwtLevel(n), PrecisionConfig::DoubleAccumulator());
  const Weight budget = MinValidBudget(dwt.graph) + 64;
  for (auto _ : state) {
    DwtOptimalScheduler optimal(dwt);  // fresh memo each iteration
    benchmark::DoNotOptimize(optimal.CostOnly(budget));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DwtOptimalCost)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_DwtOptimalSchedule(benchmark::State& state) {
  const auto n = state.range(0);
  const DwtGraph dwt = BuildDwt(n, MaxDwtLevel(n));
  const Weight budget = MinValidBudget(dwt.graph) + 64;
  for (auto _ : state) {
    DwtOptimalScheduler optimal(dwt);
    benchmark::DoNotOptimize(optimal.Run(budget).schedule.size());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DwtOptimalSchedule)->RangeMultiplier(2)->Range(16, 256)
    ->Complexity();

void BM_KaryTreeCostByArity(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  // Keep node counts comparable: pick levels so |V| stays in the hundreds.
  const int levels = k == 2 ? 7 : (k == 3 ? 5 : 4);
  const TreeGraph t = BuildPerfectTree(k, levels);
  const Weight budget = MinValidBudget(t.graph) + 64;
  for (auto _ : state) {
    KaryTreeScheduler sched(t.graph);
    benchmark::DoNotOptimize(sched.CostOnly(budget));
  }
}
BENCHMARK(BM_KaryTreeCostByArity)->DenseRange(2, 4);

void BM_MvmTilingSearch(benchmark::State& state) {
  const auto n = state.range(0);
  const MvmGraph mvm =
      BuildMvm(96, n, PrecisionConfig::DoubleAccumulator());
  MvmTilingScheduler tiling(mvm);
  const Weight budget = 1024;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiling.CostOnly(budget));
  }
}
BENCHMARK(BM_MvmTilingSearch)->RangeMultiplier(2)->Range(15, 120);

void BM_MvmTilingScheduleGeneration(benchmark::State& state) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
  MvmTilingScheduler tiling(mvm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiling.Run(1584).schedule.size());
  }
}
BENCHMARK(BM_MvmTilingScheduleGeneration);

void BM_LayerByLayerRun(benchmark::State& state) {
  const DwtGraph dwt = BuildDwt(256, 8);
  LayerByLayerScheduler baseline(dwt.graph, dwt.layers);
  const Weight budget = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline.CostOnly(budget));
  }
}
BENCHMARK(BM_LayerByLayerRun)->Arg(256)->Arg(2048)->Arg(16384);

void BM_SimulatorReplay(benchmark::State& state) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
  MvmTilingScheduler tiling(mvm);
  const auto run = tiling.Run(1584);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Simulate(mvm.graph, 1584, run.schedule).cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(run.schedule.size()));
}
BENCHMARK(BM_SimulatorReplay);

void BM_MinMemorySearchDwt(benchmark::State& state) {
  const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::DoubleAccumulator());
  for (auto _ : state) {
    DwtOptimalScheduler optimal(dwt);
    benchmark::DoNotOptimize(
        optimal.MinMemoryForLowerBound(kWordBits, 1 << 17));
  }
}
BENCHMARK(BM_MinMemorySearchDwt);

// ---------------------------------------------------------------------------
// --threads-sweep: thread-scaling table for the parallel search engine.
// ---------------------------------------------------------------------------

using SweepClock = std::chrono::steady_clock;

double ElapsedMs(SweepClock::time_point start) {
  return std::chrono::duration<double, std::milli>(SweepClock::now() - start)
      .count();
}

struct SweepRow {
  std::string instance;
  std::size_t threads = 1;
  double time_ms = 0;
  double speedup = 1.0;
  Weight cost = kInfiniteCost;
  bool identical = true;  // schedule/costs bit-identical to threads=1
};

void PrintSweepHeader() {
  std::cout << std::left << std::setw(26) << "instance" << std::right
            << std::setw(8) << "threads" << std::setw(12) << "time_ms"
            << std::setw(9) << "speedup" << std::setw(12) << "cost"
            << std::setw(11) << "identical" << "\n";
}

void PrintSweepRow(const SweepRow& row) {
  std::cout << std::left << std::setw(26) << row.instance << std::right
            << std::setw(8) << row.threads << std::setw(12) << std::fixed
            << std::setprecision(1) << row.time_ms << std::setw(9)
            << std::setprecision(2) << row.speedup << std::setw(12)
            << row.cost << std::setw(11) << (row.identical ? "yes" : "NO")
            << "\n";
}

// Runs the exact search on `graph` at each thread count, checking every
// parallel schedule bit-for-bit against the sequential one.
void SweepBruteForce(const std::string& name, const Graph& graph,
                     Weight budget, const std::vector<std::size_t>& counts,
                     std::vector<SweepRow>& rows, bool& all_identical) {
  const BruteForceScheduler scheduler(graph);
  ScheduleResult baseline;
  double baseline_ms = 0;
  for (std::size_t threads : counts) {
    BruteForceOptions options;
    options.threads = threads;
    const SweepClock::time_point start = SweepClock::now();
    ScheduleResult result = scheduler.Run(budget, options);
    SweepRow row;
    row.instance = name;
    row.threads = threads;
    row.time_ms = ElapsedMs(start);
    row.cost = result.feasible ? result.cost : kInfiniteCost;
    if (threads == 1) {
      baseline = std::move(result);
      baseline_ms = row.time_ms;
    } else {
      row.speedup = row.time_ms > 0 ? baseline_ms / row.time_ms : 1.0;
      row.identical = result.feasible == baseline.feasible &&
                      result.cost == baseline.cost &&
                      result.schedule == baseline.schedule;
      all_identical = all_identical && row.identical;
    }
    PrintSweepRow(row);
    rows.push_back(row);
  }
}

// Times the analysis-layer budget sweep (EvaluateBudgets over a grid of
// exact CostOnly probes) at each thread count.
void SweepBudgetGrid(const std::string& name, const Graph& graph,
                     const std::vector<Weight>& budgets,
                     const std::vector<std::size_t>& counts,
                     std::vector<SweepRow>& rows, bool& all_identical) {
  const BruteForceScheduler scheduler(graph);
  const CostFn cost_fn = [&](Weight budget) {
    return scheduler.CostOnly(budget);
  };
  std::vector<Weight> baseline;
  double baseline_ms = 0;
  for (std::size_t threads : counts) {
    BudgetSweepOptions options;
    options.threads = threads;
    const SweepClock::time_point start = SweepClock::now();
    const std::vector<Weight> costs =
        EvaluateBudgets(cost_fn, budgets, options);
    SweepRow row;
    row.instance = name;
    row.threads = threads;
    row.time_ms = ElapsedMs(start);
    row.cost = costs.empty() ? kInfiniteCost : costs.back();
    if (threads == 1) {
      baseline = costs;
      baseline_ms = row.time_ms;
    } else {
      row.speedup = row.time_ms > 0 ? baseline_ms / row.time_ms : 1.0;
      row.identical = costs == baseline;
      all_identical = all_identical && row.identical;
    }
    PrintSweepRow(row);
    rows.push_back(row);
  }
}

int RunThreadsSweep(const CliArgs& args) {
  const std::int64_t dwt_n = args.GetInt("dwt-n", 8);
  const std::int64_t dwt_d = args.GetInt("dwt-d", 2);
  const Weight slack = args.GetInt("budget-slack", 2);
  const std::string csv_dir = args.GetString("csv", "");
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }
  if (!DwtParamsValid(dwt_n, static_cast<int>(dwt_d))) {
    std::cerr << "error: invalid DWT parameters n=" << dwt_n
              << " d=" << dwt_d << "\n";
    return 2;
  }

  const std::vector<std::size_t> counts = {1, 2, 4, 8};
  std::vector<SweepRow> rows;
  bool all_identical = true;

  const DwtGraph dwt =
      BuildDwt(dwt_n, static_cast<int>(dwt_d), PrecisionConfig::Equal());
  const Weight dwt_budget = MinValidBudget(dwt.graph) + slack;
  const TreeGraph tree = BuildPerfectTree(2, 3);
  const Weight tree_budget = MinValidBudget(tree.graph) + slack;

  std::cout << "thread-scaling sweep (hardware_concurrency="
            << std::thread::hardware_concurrency() << ")\n";
  PrintSweepHeader();
  SweepBruteForce("dwt(" + std::to_string(dwt_n) + "," +
                      std::to_string(dwt_d) + ")-exact",
                  dwt.graph, dwt_budget, counts, rows, all_identical);
  SweepBruteForce("kary(2,3)-exact", tree.graph, tree_budget, counts, rows,
                  all_identical);
  SweepBudgetGrid("kary(2,3)-budget-sweep", tree.graph,
                  bench::BudgetGridBits(MinValidBudget(tree.graph),
                                        4 * MinValidBudget(tree.graph)),
                  counts, rows, all_identical);

  std::vector<std::vector<std::string>> csv_rows;
  csv_rows.push_back(
      {"instance", "threads", "time_ms", "speedup", "cost", "identical"});
  for (const SweepRow& row : rows) {
    csv_rows.push_back({row.instance, std::to_string(row.threads),
                        std::to_string(row.time_ms),
                        std::to_string(row.speedup),
                        std::to_string(row.cost),
                        row.identical ? "yes" : "no"});
  }
  bench::DumpCsv(csv_dir, "threads_sweep", csv_rows);

  if (!all_identical) {
    std::cerr << "FAIL: a parallel run diverged from the sequential "
                 "schedule (determinism contract violated)\n";
    return 1;
  }
  std::cout << "all parallel runs bit-identical to --threads 1\n";
  return 0;
}

// ---------------------------------------------------------------------------
// --engine-compare: expanded-state and wall-clock race between the three
// exact engines, with a built-in identical-schedule check.
// ---------------------------------------------------------------------------

struct EngineRow {
  std::string instance;
  // "schedule" rows time a full Run() (for kAStarDominance that is both
  // passes) and are identity-checked; "cost" rows time a CostOnly() probe
  // — the apples-to-apples pruning metric, since every engine runs
  // exactly one pass there.
  std::string mode = "schedule";
  SearchEngine engine = SearchEngine::kDijkstra;
  std::size_t threads = 1;
  double time_ms = 0;
  std::uint64_t expanded = 0;
  std::uint64_t waves = 0;
  Weight cost = kInfiniteCost;
  bool identical = true;  // bit-identical to dijkstra @ 1 thread
};

void PrintEngineHeader() {
  std::cout << std::left << std::setw(18) << "instance" << std::setw(10)
            << "mode" << std::setw(17) << "engine" << std::right
            << std::setw(8) << "threads" << std::setw(11) << "time_ms"
            << std::setw(11) << "expanded" << std::setw(7) << "waves"
            << std::setw(10) << "cost" << std::setw(11) << "identical"
            << "\n";
}

void PrintEngineRow(const EngineRow& row) {
  std::cout << std::left << std::setw(18) << row.instance << std::setw(10)
            << row.mode << std::setw(17) << ToString(row.engine)
            << std::right << std::setw(8) << row.threads << std::setw(11)
            << std::fixed << std::setprecision(1) << row.time_ms
            << std::setw(11) << row.expanded << std::setw(7) << row.waves
            << std::setw(10) << row.cost << std::setw(11)
            << (row.identical ? "yes" : "NO") << "\n";
}

constexpr SearchEngine kAllEngines[] = {SearchEngine::kDijkstra,
                                        SearchEngine::kAStar,
                                        SearchEngine::kAStarDominance,
                                        SearchEngine::kBranchAndBound};

// Runs every engine at every thread count on one instance, checking each
// schedule bit-for-bit against the dijkstra sequential baseline, then a
// sequential cost-only probe per engine for the expanded-state reduction
// ratios the informed engines exist to deliver.
void CompareEngines(const std::string& name, const Graph& graph,
                    Weight budget, const std::vector<std::size_t>& counts,
                    std::vector<EngineRow>& rows, bool& all_identical) {
  const BruteForceScheduler scheduler(graph);
  ScheduleResult baseline;
  bool have_baseline = false;
  for (SearchEngine engine : kAllEngines) {
    for (std::size_t threads : counts) {
      BruteForceOptions options;
      options.engine = engine;
      options.threads = threads;
      SearchStats stats;
      options.stats = &stats;
      const SweepClock::time_point start = SweepClock::now();
      ScheduleResult result = scheduler.Run(budget, options);
      EngineRow row;
      row.instance = name;
      row.engine = engine;
      row.threads = threads;
      row.time_ms = ElapsedMs(start);
      row.expanded = stats.expanded;
      row.waves = stats.waves;
      row.cost = result.feasible ? result.cost : kInfiniteCost;
      if (!have_baseline) {
        baseline = std::move(result);
        have_baseline = true;
      } else {
        row.identical = result.feasible == baseline.feasible &&
                        result.cost == baseline.cost &&
                        result.schedule == baseline.schedule;
        all_identical = all_identical && row.identical;
      }
      PrintEngineRow(row);
      rows.push_back(row);
    }
  }
  std::uint64_t cost_baseline_expanded = 0;
  for (SearchEngine engine : kAllEngines) {
    BruteForceOptions options;
    options.engine = engine;
    options.threads = 1;
    SearchStats stats;
    options.stats = &stats;
    const SweepClock::time_point start = SweepClock::now();
    const Weight cost = scheduler.CostOnly(budget, options);
    EngineRow row;
    row.instance = name;
    row.mode = "cost";
    row.engine = engine;
    row.time_ms = ElapsedMs(start);
    row.expanded = stats.expanded;
    row.waves = stats.waves;
    row.cost = cost;
    if (engine == SearchEngine::kDijkstra) {
      cost_baseline_expanded = stats.expanded;
    } else {
      row.identical = cost == baseline.cost ||
                      (cost >= kInfiniteCost && !baseline.feasible);
      all_identical = all_identical && row.identical;
    }
    PrintEngineRow(row);
    if (engine != SearchEngine::kDijkstra && stats.expanded > 0) {
      std::cout << "  " << name << ": " << ToString(engine)
                << " cost probe expands " << std::fixed
                << std::setprecision(1)
                << static_cast<double>(cost_baseline_expanded) /
                       static_cast<double>(stats.expanded)
                << "x fewer states than dijkstra\n";
    }
    rows.push_back(row);
  }
}

int RunEngineCompare(const CliArgs& args) {
  const bool quick = args.GetBool("quick", false);
  const std::string json_path = args.GetString("json", "BENCH_exact.json");
  const std::int64_t dwt_n = args.GetInt("dwt-n", 8);
  const std::int64_t dwt_d = args.GetInt("dwt-d", quick ? 2 : 3);
  const Weight slack = args.GetInt("budget-slack", 2);
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }
  if (!DwtParamsValid(dwt_n, static_cast<int>(dwt_d))) {
    std::cerr << "error: invalid DWT parameters n=" << dwt_n
              << " d=" << dwt_d << "\n";
    return 2;
  }

  const std::vector<std::size_t> counts =
      quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 8};
  std::vector<EngineRow> rows;
  bool all_identical = true;

  const DwtGraph dwt =
      BuildDwt(dwt_n, static_cast<int>(dwt_d), PrecisionConfig::Equal());
  const TreeGraph tree = BuildPerfectTree(2, 3);
  const std::string dwt_name =
      "dwt(" + std::to_string(dwt_n) + "," + std::to_string(dwt_d) + ")";
  const Weight tree_min = MinValidBudget(tree.graph);

  std::cout << "engine comparison (quick=" << (quick ? "yes" : "no")
            << ", hardware_concurrency="
            << std::thread::hardware_concurrency() << ")\n";
  PrintEngineHeader();
  CompareEngines(dwt_name, dwt.graph, MinValidBudget(dwt.graph) + slack,
                 counts, rows, all_identical);
  // Tight and ample budgets stress different prunes: tight budgets are
  // dominated by spill exploration (where the heuristic is weakest),
  // ample budgets let an admissible bound steer almost straight to goal.
  CompareEngines("kary(2,3)-tight", tree.graph, tree_min + slack, counts,
                 rows, all_identical);
  CompareEngines("kary(2,3)-ample", tree.graph, 2 * tree_min, counts, rows,
                 all_identical);

  if (!json_path.empty()) {
    // One wrbpg-obs-v1 document: the table under "rows" plus the full
    // counters/gauges/spans snapshot the instrumented engines populated.
    obs::Json doc = obs::ObsDocument("engine-compare");
    doc.Set("quick", quick);
    obs::Json json_rows = obs::Json::Array();
    for (const EngineRow& row : rows) {
      obs::Json r = obs::Json::Object();
      r.Set("instance", row.instance);
      r.Set("mode", row.mode);
      r.Set("engine", ToString(row.engine));
      r.Set("threads", static_cast<std::uint64_t>(row.threads));
      r.Set("time_ms", row.time_ms);
      r.Set("expanded", row.expanded);
      r.Set("waves", row.waves);
      r.Set("cost", row.cost);
      r.Set("identical", row.identical);
      json_rows.Push(std::move(r));
    }
    doc.Set("rows", std::move(json_rows));
    doc.Set("all_identical", all_identical);
    std::string error;
    if (!obs::WriteJsonFile(json_path, doc, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    std::cout << "  [json] " << json_path << "\n";
  }

  if (!all_identical) {
    std::cerr << "FAIL: an engine diverged from the dijkstra sequential "
                 "schedule (determinism contract violated)\n";
    return 1;
  }
  std::cout << "all engines and thread counts bit-identical to "
               "dijkstra --threads 1\n";
  return 0;
}

// ---------------------------------------------------------------------------
// --anytime-sweep: gap-vs-deadline table for the bb anytime engine.
// ---------------------------------------------------------------------------

struct AnytimeRow {
  std::string instance;
  double deadline_ms = 0;  // 0 = unbounded
  double time_ms = 0;
  Weight cost = kInfiniteCost;
  Weight cert_lb = 0;  // certified root bound primed into the search
  Weight lower_bound = 0;
  Weight gap = kInfiniteCost;
  std::string termination;
  bool valid = false;  // schedule replayed through the simulator
};

void PrintAnytimeHeader() {
  std::cout << std::left << std::setw(22) << "instance" << std::right
            << std::setw(12) << "deadline_ms" << std::setw(10) << "time_ms"
            << std::setw(9) << "cost" << std::setw(9) << "cert_lb"
            << std::setw(9) << "lb" << std::setw(9)
            << "gap" << std::left << "  " << std::setw(12) << "termination"
            << std::right << std::setw(7) << "valid" << "\n";
}

void PrintAnytimeRow(const AnytimeRow& row) {
  std::cout << std::left << std::setw(22) << row.instance << std::right
            << std::setw(12) << std::fixed << std::setprecision(0)
            << row.deadline_ms << std::setw(10) << std::setprecision(1)
            << row.time_ms << std::setw(9) << row.cost << std::setw(9)
            << row.cert_lb << std::setw(9)
            << row.lower_bound << std::setw(9) << row.gap << std::left
            << "  " << std::setw(12) << row.termination << std::right
            << std::setw(7) << (row.valid ? "yes" : "NO") << "\n";
}

int RunAnytimeSweep(const CliArgs& args) {
  const bool quick = args.GetBool("quick", false);
  const std::string json_path = args.GetString("json", "BENCH_anytime.json");
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }

  struct Instance {
    std::string name;
    Graph graph;
    Weight budget = 0;
  };
  std::vector<Instance> instances;
  {
    // 64 nodes — past the practical reach of an unbounded exact solve;
    // the seed is pinned so the table is reproducible run to run.
    Rng rng(42);
    RandomDagOptions options;
    options.num_layers = 8;
    options.nodes_per_layer = 8;
    Graph graph = BuildRandomDag(rng, options);
    const Weight budget = MinValidBudget(graph) + 39;
    instances.push_back({"random(8x8,seed42)", std::move(graph), budget});
  }
  {
    const DwtGraph dwt = BuildDwt(16, 2, PrecisionConfig::Equal());
    const Weight budget = MinValidBudget(dwt.graph) + 2;
    instances.push_back({"dwt(16,2)", dwt.graph, budget});
  }

  const std::vector<double> deadlines =
      quick ? std::vector<double>{25, 100}
            : std::vector<double>{10, 50, 200, 1000};

  std::vector<AnytimeRow> rows;
  bool all_sound = true;
  std::cout << "anytime sweep: bb engine, gap vs deadline (quick="
            << (quick ? "yes" : "no") << ")\n";
  PrintAnytimeHeader();
  for (const Instance& instance : instances) {
    const BruteForceScheduler scheduler(instance.graph);
    // The certified start-state bound (ganalysis): primed into the search
    // root, it tightens the reported gap of interrupted runs without
    // touching the expansion order or the schedule (brute_force.h).
    const Weight cert_lb =
        BestCertifiedBound(instance.graph, instance.budget);
    for (double deadline_ms : deadlines) {
      BruteForceOptions options;
      options.engine = SearchEngine::kBranchAndBound;
      options.root_lower_bound = cert_lb;
      const CancelToken token = CancelToken::WithDeadlineMs(deadline_ms);
      options.cancel = &token;
      const SweepClock::time_point start = SweepClock::now();
      const ScheduleResult result =
          scheduler.Run(instance.budget, options);
      AnytimeRow row;
      row.instance = instance.name;
      row.deadline_ms = deadline_ms;
      row.time_ms = ElapsedMs(start);
      row.cert_lb = cert_lb;
      if (result.feasible) {
        const SimResult sim =
            Simulate(instance.graph, instance.budget, result.schedule);
        row.valid = sim.valid;
        row.cost = result.cost;
        row.lower_bound = result.lower_bound;
        row.gap = result.optimality_gap;
        row.termination = ToString(result.termination);
        // The anytime contract every row must satisfy: a simulator-valid
        // schedule whose certified gap is finite and internally
        // consistent.
        const bool sound = sim.valid && result.lower_bound <= result.cost &&
                           result.optimality_gap ==
                               result.cost - result.lower_bound &&
                           result.optimality_gap < kInfiniteCost;
        all_sound = all_sound && sound;
      } else {
        row.termination = result.timed_out ? "timed-out" : "infeasible";
        all_sound = false;
      }
      PrintAnytimeRow(row);
      rows.push_back(std::move(row));
    }
  }

  if (!json_path.empty()) {
    obs::Json doc = obs::ObsDocument("anytime-sweep");
    doc.Set("quick", quick);
    obs::Json json_rows = obs::Json::Array();
    for (const AnytimeRow& row : rows) {
      obs::Json r = obs::Json::Object();
      r.Set("instance", row.instance);
      r.Set("deadline_ms", row.deadline_ms);
      r.Set("time_ms", row.time_ms);
      r.Set("cost", row.cost);
      r.Set("cert_lb", row.cert_lb);
      r.Set("lower_bound", row.lower_bound);
      r.Set("gap", row.gap);
      r.Set("termination", row.termination);
      r.Set("valid", row.valid);
      json_rows.Push(std::move(r));
    }
    doc.Set("rows", std::move(json_rows));
    doc.Set("all_sound", all_sound);
    std::string error;
    if (!obs::WriteJsonFile(json_path, doc, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    std::cout << "  [json] " << json_path << "\n";
  }

  if (!all_sound) {
    std::cerr << "FAIL: an anytime row violated the contract (invalid "
                 "schedule, unsound gap, or no result)\n";
    return 1;
  }
  std::cout << "every deadline produced a simulator-valid schedule with a "
               "sound optimality gap\n";
  return 0;
}

// ---------------------------------------------------------------------------
// --bound-compare: Prop 2.4 vs the budget-aware certificates (DESIGN.md
// §12) across the builtin families, with witness re-verification and a
// DP-optimum soundness cross-check.
// ---------------------------------------------------------------------------

int RunBoundCompare(const CliArgs& args) {
  const std::string json_path = args.GetString("json", "BENCH_bounds.json");
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }

  struct Instance {
    std::string name;
    Graph graph;
    // Closed-form DP optimum at a given budget; kInfiniteCost = unknown.
    std::function<Weight(Weight)> optimum;
    bool acceptance = false;  // must show strict dominance at min budget
  };
  std::vector<Instance> instances;
  {
    const DwtGraph dwt = BuildDwt(16, 2, PrecisionConfig::Equal());
    const Graph& g = dwt.graph;
    instances.push_back(
        {"dwt(16,2)", g,
         [dwt](Weight b) { return DwtOptimalScheduler(dwt).CostOnly(b); },
         true});
  }
  {
    const TreeGraph tree = BuildPerfectTree(2, 4);
    Graph g = tree.graph;
    instances.push_back(
        {"kary(2,4)", g,
         [g](Weight b) { return KaryTreeScheduler(g).CostOnly(b); }, true});
  }
  instances.push_back({"butterfly(8)", BuildButterfly(8).graph, nullptr,
                       false});
  instances.push_back({"mvm(4,4)", BuildMvm(4, 4).graph, nullptr, false});
  {
    Rng rng(42);
    RandomDagOptions options;
    options.num_layers = 6;
    options.nodes_per_layer = 5;
    instances.push_back({"random(6x5,seed42)", BuildRandomDag(rng, options),
                         nullptr, false});
  }

  std::cout << std::left << std::setw(20) << "instance" << std::right
            << std::setw(8) << "budget" << std::setw(8) << "alb"
            << std::setw(11) << "wavefront" << std::setw(9) << "segment"
            << std::setw(9) << "optimum" << std::left << "  verdict\n";

  bool ok = true;
  obs::Json rows = obs::Json::Array();
  for (const Instance& instance : instances) {
    const Weight min_budget = MinValidBudget(instance.graph);
    for (const Weight budget :
         {min_budget, min_budget + 2, min_budget + 16}) {
      const std::vector<BoundCertificate> certs =
          ComputeBoundCertificates(instance.graph, budget);
      Weight values[3] = {0, 0, 0};
      bool verified = true;
      for (std::size_t i = 0; i < certs.size(); ++i) {
        values[i] = certs[i].value;
        const CertificateCheck check =
            VerifyCertificate(instance.graph, certs[i]);
        if (!check.ok) {
          std::cerr << "FAIL: " << instance.name << " @" << budget << " "
                    << ToString(certs[i].kind)
                    << " witness rejected: " << check.error << "\n";
          verified = false;
        }
      }
      const Weight alb = values[0];
      const Weight best = std::max({values[0], values[1], values[2]});
      const Weight optimum =
          instance.optimum ? instance.optimum(budget) : kInfiniteCost;
      // Soundness: a certificate may never exceed the DP optimum.
      const bool sound = optimum >= kInfiniteCost || best <= optimum;
      // Acceptance rows: the budget-aware bounds must STRICTLY dominate
      // Prop 2.4 at the paper's minimum valid budget.
      const bool needs_dominance =
          instance.acceptance && budget == min_budget;
      const bool dominates = best > alb;
      const bool row_ok =
          verified && sound && (!needs_dominance || dominates);
      ok = ok && row_ok;

      std::string verdict = row_ok ? "ok" : "FAIL";
      if (row_ok && dominates) {
        verdict += " (+" + std::to_string(best - alb) + ")";
      }
      if (row_ok && optimum < kInfiniteCost && best == optimum) {
        verdict += " tight";
      }
      std::cout << std::left << std::setw(20) << instance.name << std::right
                << std::setw(8) << budget << std::setw(8) << alb
                << std::setw(11) << values[1] << std::setw(9) << values[2]
                << std::setw(9)
                << (optimum < kInfiniteCost ? std::to_string(optimum)
                                            : std::string("-"))
                << std::left << "  " << verdict << "\n";

      obs::Json row = obs::Json::Object();
      row.Set("instance", instance.name);
      row.Set("budget", budget);
      row.Set("algorithmic", alb);
      row.Set("wavefront", values[1]);
      row.Set("segment", values[2]);
      row.Set("best", best);
      if (optimum < kInfiniteCost) row.Set("optimum", optimum);
      row.Set("verified", verified);
      row.Set("dominates", dominates);
      rows.Push(std::move(row));
    }
  }

  if (!json_path.empty()) {
    obs::Json doc = obs::ObsDocument("bound-compare");
    doc.Set("rows", std::move(rows));
    doc.Set("all_ok", ok);
    std::string error;
    if (!obs::WriteJsonFile(json_path, doc, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    std::cout << "  [json] " << json_path << "\n";
  }

  if (!ok) {
    std::cerr << "FAIL: a certificate failed verification, exceeded the DP "
                 "optimum, or lost strict dominance on a paper instance\n";
    return 1;
  }
  std::cout << "every witness re-verified; budget-aware bounds strictly "
               "dominate Prop 2.4 on the paper instances\n";
  return 0;
}

}  // namespace
}  // namespace wrbpg

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--threads-sweep") {
      const wrbpg::CliArgs args(argc, argv);
      return wrbpg::RunThreadsSweep(args);
    }
    if (std::string_view(argv[i]) == "--engine-compare") {
      const wrbpg::CliArgs args(argc, argv);
      return wrbpg::RunEngineCompare(args);
    }
    if (std::string_view(argv[i]) == "--anytime-sweep") {
      const wrbpg::CliArgs args(argc, argv);
      return wrbpg::RunAnytimeSweep(args);
    }
    if (std::string_view(argv[i]) == "--bound-compare") {
      const wrbpg::CliArgs args(argc, argv);
      return wrbpg::RunBoundCompare(args);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
