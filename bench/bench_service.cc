// bench_service — recurring-request workload against ScheduleService
// (DESIGN.md §13).
//
// Production request streams repeat: the same dataflow shapes are
// scheduled over and over, often under fresh node labelings. The bench
// models that — a fixed pool of distinct graphs (seeded random layered
// CDAGs, their permuted isomorphs, and recognized builtin families) is
// cycled through N requests against one shared service — and reports:
//
//   * cache hit rate (byte-identical + isomorph hits),
//   * p50/p99 latency of cold solves vs cache-served responses and the
//     p50 speedup,
//   * single-flight / batch dedup savings (concurrent identical requests
//     through Serve, and an identical-request ServeBatch),
//   * bit-identity of cache hits against independent cold solves.
//
// Results go to BENCH_service.json (--json <path>) in the stable
// wrbpg-bench-service-v1 schema; stdout gets the human summary. Exit 1
// when an acceptance bound fails (hit rate >= 0.8, p50 speedup >= 50x,
// bit-identity) so CI can gate on it. --requests scales the stream
// (default 120, minimum 2x the pool size).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis.h"
#include "core/binio.h"
#include "core/graph.h"
#include "core/graph_builder.h"
#include "dataflows/builtin_spec.h"
#include "obs/json.h"
#include "obs/report.h"
#include "service/service.h"
#include "util/cli.h"

using namespace wrbpg;

namespace {

// Relabels the graph by a seeded random permutation: structurally the
// same instance, byte-wise a different one — exactly what the service's
// isomorph cache path is for.
Graph PermuteGraph(const Graph& graph, std::uint64_t seed) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> perm(n);  // old id -> new id
  std::iota(perm.begin(), perm.end(), NodeId{0});
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<NodeId> inv(n);
  for (NodeId v = 0; v < n; ++v) inv[perm[v]] = v;
  GraphBuilder builder;
  for (NodeId j = 0; j < n; ++j) {
    builder.AddNode(graph.weight(inv[j]), graph.name(inv[j]));
  }
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId c : graph.children(v)) {
      builder.AddEdge(perm[v], perm[c]);
    }
  }
  return builder.BuildOrDie();
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

struct Instance {
  std::string label;
  Graph graph;
  Weight budget = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  args.ApplyThreadsFlag();
  const std::string json_path = args.GetString("json", "BENCH_service.json");
  std::int64_t num_requests = args.GetInt("requests", 120);
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }

  // The request pool: three seeded random layered CDAGs (exact-stage
  // solves, milliseconds cold), permuted isomorphs of two of them, and
  // two recognized families (microsecond cold solves) — 7 distinct
  // graphs, under the acceptance ceiling of 10.
  std::vector<Instance> pool;
  const std::vector<std::string> specs = {"random:4,4,11", "random:4,4,12",
                                          "random:3,5,13", "dwt:16,3",
                                          "kary:2,3"};
  for (const std::string& spec : specs) {
    BuiltinGraph built = BuildBuiltinGraph(spec);
    if (!built.ok) {
      std::cerr << "error: " << spec << ": " << built.error << "\n";
      return 1;
    }
    Instance inst;
    inst.label = spec;
    inst.graph = built.graph();
    inst.budget = MinValidBudget(inst.graph) + 8;
    pool.push_back(std::move(inst));
  }
  for (std::size_t i = 0; i < 2; ++i) {
    Instance iso;
    iso.label = pool[i].label + "~perm";
    iso.graph = PermuteGraph(pool[i].graph, 0xfeed + i);
    iso.budget = pool[i].budget;
    pool.push_back(std::move(iso));
  }
  if (num_requests < static_cast<std::int64_t>(2 * pool.size())) {
    num_requests = static_cast<std::int64_t>(2 * pool.size());
  }

  // Phase 1: the recurring stream. Round-robin over the pool, so every
  // graph goes cold exactly once (isomorphs go "iso-warm") and every
  // revisit must be served from cache.
  ScheduleService service;
  std::vector<double> cold_ms;
  std::vector<double> cached_ms;
  for (std::int64_t r = 0; r < num_requests; ++r) {
    const Instance& inst = pool[static_cast<std::size_t>(r) % pool.size()];
    ServiceRequest request;
    request.graph = &inst.graph;
    request.budget = inst.budget;
    const ServiceResponse response = service.Serve(request);
    if (!response.ok) {
      std::cerr << "error: request " << r << " (" << inst.label
                << ") failed: " << response.error << "\n";
      return 1;
    }
    if (response.source == ServeSource::kSolved) {
      cold_ms.push_back(response.latency_ms);
    } else {
      cached_ms.push_back(response.latency_ms);
    }
  }
  const ServiceStats stream = service.stats();
  const double hit_rate =
      stream.requests == 0
          ? 0
          : static_cast<double>(stream.cache_hits + stream.iso_hits) /
                static_cast<double>(stream.requests);
  const double cold_p50 = Percentile(cold_ms, 50);
  const double cold_p99 = Percentile(cold_ms, 99);
  const double cached_p50 = Percentile(cached_ms, 50);
  const double cached_p99 = Percentile(cached_ms, 99);
  const double speedup_p50 = cached_p50 > 0 ? cold_p50 / cached_p50 : 0;

  // Phase 2: bit-identity. Every cached answer for a byte-identical
  // request must equal an independent cold solve — schedule bytes, cost,
  // bound, termination, the lot.
  bool bit_identical = true;
  for (const Instance& inst : pool) {
    ServiceRequest request;
    request.graph = &inst.graph;
    request.budget = inst.budget;
    const ServiceResponse warm = service.Serve(request);
    ServiceOptions cold_options;
    cold_options.cache_bytes = 0;  // cache disabled: always a cold solve
    ScheduleService cold_service(cold_options);
    const ServiceResponse cold = cold_service.Serve(request);
    if (warm.source == ServeSource::kCacheHit) {
      if (ToBinary(warm.result.schedule) != ToBinary(cold.result.schedule) ||
          warm.result.cost != cold.result.cost ||
          warm.result.lower_bound != cold.result.lower_bound) {
        std::cerr << "BIT-IDENTITY VIOLATION: " << inst.label << "\n";
        bit_identical = false;
      }
    } else if (warm.result.cost != cold.result.cost) {
      // Isomorph hits guarantee equal cost (verified renaming), not
      // equal bytes — the node labeling follows the request.
      std::cerr << "ISO COST MISMATCH: " << inst.label << "\n";
      bit_identical = false;
    }
  }

  // Phase 3: dedup savings. (a) Concurrent identical requests through
  // Serve on a cold service — single-flight collapses them to one solve;
  // (b) an identical-request ServeBatch — the batch executor collapses
  // them before they even reach a flight.
  const std::size_t hammer_threads = 8;
  ScheduleService flight_service;
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < hammer_threads; ++t) {
      threads.emplace_back([&] {
        ServiceRequest request;
        request.graph = &pool[0].graph;
        request.budget = pool[0].budget;
        (void)flight_service.Serve(request);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const ServiceStats flight = flight_service.stats();

  const std::size_t batch_size = 12;
  ScheduleService batch_service;
  std::vector<ServiceRequest> batch(batch_size);
  for (ServiceRequest& request : batch) {
    request.graph = &pool[1].graph;
    request.budget = pool[1].budget;
  }
  const std::vector<ServiceResponse> batch_responses =
      batch_service.ServeBatch(batch);
  const ServiceStats batched = batch_service.stats();
  bool batch_ok = batch_responses.size() == batch_size;
  for (const ServiceResponse& response : batch_responses) {
    batch_ok = batch_ok && response.ok;
  }

  const bool pass_hit_rate = hit_rate >= 0.8;
  const bool pass_speedup = speedup_p50 >= 50;
  const bool pass = pass_hit_rate && pass_speedup && bit_identical &&
                    batch_ok && flight.solves <= 1 && batched.solves <= 1;

  obs::Json doc = obs::Json::Object();
  doc.Set("schema", "wrbpg-bench-service-v1");
  doc.Set("requests", static_cast<std::int64_t>(num_requests));
  doc.Set("distinct_graphs", static_cast<std::int64_t>(pool.size()));
  obs::Json cache = obs::Json::Object();
  cache.Set("hit_rate", hit_rate);
  cache.Set("hits", stream.cache_hits);
  cache.Set("iso_hits", stream.iso_hits);
  cache.Set("misses", stream.misses);
  cache.Set("solves", stream.solves);
  cache.Set("entries", stream.cache_entries);
  cache.Set("bytes", stream.cache_bytes);
  doc.Set("cache", std::move(cache));
  obs::Json latency = obs::Json::Object();
  latency.Set("cold_p50_ms", cold_p50);
  latency.Set("cold_p99_ms", cold_p99);
  latency.Set("cached_p50_ms", cached_p50);
  latency.Set("cached_p99_ms", cached_p99);
  latency.Set("speedup_p50", speedup_p50);
  doc.Set("latency", std::move(latency));
  obs::Json dedup = obs::Json::Object();
  dedup.Set("concurrent_requests",
            static_cast<std::int64_t>(hammer_threads));
  dedup.Set("concurrent_solves", flight.solves);
  dedup.Set("concurrent_shared", flight.dedup_shared + flight.cache_hits);
  dedup.Set("batch_requests", static_cast<std::int64_t>(batch_size));
  dedup.Set("batch_solves", batched.solves);
  dedup.Set("batch_shared", batched.dedup_shared);
  doc.Set("dedup", std::move(dedup));
  doc.Set("bit_identical", bit_identical);
  doc.Set("pass", pass);

  std::string error;
  if (!obs::WriteJsonFile(json_path, doc, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }

  std::cout << "bench_service: " << num_requests << " requests over "
            << pool.size() << " distinct graphs\n"
            << "  hit rate:      " << hit_rate * 100 << "% ("
            << stream.cache_hits << " exact + " << stream.iso_hits
            << " iso of " << stream.requests << ")\n"
            << "  cold p50/p99:  " << cold_p50 << " / " << cold_p99
            << " ms (" << cold_ms.size() << " solves)\n"
            << "  cached p50/99: " << cached_p50 << " / " << cached_p99
            << " ms (" << cached_ms.size() << " served)\n"
            << "  p50 speedup:   " << speedup_p50 << "x\n"
            << "  single-flight: " << hammer_threads << " concurrent -> "
            << flight.solves << " solve(s)\n"
            << "  batch dedup:   " << batch_size << " identical -> "
            << batched.solves << " solve(s), " << batched.dedup_shared
            << " shared\n"
            << "  bit-identical: " << (bit_identical ? "yes" : "NO") << "\n"
            << "  [json] " << json_path << "\n"
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
