#!/usr/bin/env bash
# Configure, build, and run the full ctest suite under sanitizers.
#
# Usage:
#   tools/sanitize.sh                    # address,undefined (the default)
#   tools/sanitize.sh thread            # any -fsanitize= list works
#   tools/sanitize.sh address,undefined -R repair   # extra args go to ctest
#
# The sanitized tree lives in build-san-<list>/ next to the normal build/,
# so switching between instrumented and plain builds never reconfigures.
set -euo pipefail

SANITIZERS="${1:-address,undefined}"
shift || true

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-san-${SANITIZERS//,/+}"

cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DWRBPG_SANITIZE="${SANITIZERS}" \
  -DWRBPG_BUILD_BENCH=OFF
cmake --build "${BUILD}" -j"$(nproc)"

# Abort on the first finding and keep symbolized stacks readable.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:strict_string_checks=1:detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir "${BUILD}" --output-on-failure -j"$(nproc)" "$@"
