#!/usr/bin/env bash
# Run clang-tidy over the whole tree via a WRBPG_TIDY=ON build.
#
# Usage:
#   tools/tidy.sh                 # analyze src/ + tests/ + examples/
#   tools/tidy.sh --target wrbpg_core   # extra args go to cmake --build
#
# The analysis tree lives in build-tidy/ next to the normal build/, so a
# tidy run never dirties the incremental build. Benchmarks are skipped
# (google-benchmark headers are noisy under several bugprone checks).
# Exits 0 with a notice when clang-tidy is not installed, so the script is
# safe to call from environments that only carry gcc.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-tidy"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "tidy.sh: clang-tidy not found on PATH; skipping static analysis." >&2
  echo "tidy.sh: install clang-tidy (LLVM >= 15) to run this locally." >&2
  exit 0
fi

cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DWRBPG_TIDY=ON \
  -DWRBPG_BUILD_BENCH=OFF

# clang-tidy findings surface as compiler diagnostics; -k keeps going so a
# single finding does not hide the rest of the report.
cmake --build "${BUILD}" -j"$(nproc)" -- -k "$@"
