#!/usr/bin/env bash
# Docs-vs-tool drift gate (CI job: docs-check).
#
# Usage:
#   tools/docs_check.sh            # verify, exit 1 on any drift
#   tools/docs_check.sh --update   # rewrite the generated doc blocks
#
# Checks, against the live binary in build/examples/wrbpg_cli:
#   1. docs/CLI.md embeds `wrbpg_cli --help` verbatim (marker block).
#   2. docs/FORMATS.md's analyze-json-example reproduces byte-for-byte
#      (the wrbpg-ganalysis-v1 document is deterministic by contract).
#   3. A live --metrics-json document carries exactly the wrbpg-obs-v1
#      top-level keys FORMATS.md documents (obs-top-keys marker), plus
#      the CLI's exit_status producer key.
#   4. No *.md file links to a nonexistent in-repo path.
#
# --update regenerates the embedded blocks of checks 1 and 2 in place;
# checks 3 and 4 have no generated content and are always verify-only.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
CLI="${ROOT}/build/examples/wrbpg_cli"
MODE="${1:-}"

if [[ ! -x "${CLI}" ]]; then
  echo "docs_check: ${CLI} not built (cmake --build build --target wrbpg_cli)" >&2
  exit 1
fi

"${CLI}" --help > /tmp/docs_check_help.txt
# --threads 1 keeps the document independent of the host's core count.
"${CLI}" analyze kary:2,3 --json --threads 1 > /tmp/docs_check_analyze.json
"${CLI}" info dwt:4,2 --metrics-json /tmp/docs_check_obs.json > /dev/null

MODE="${MODE}" ROOT="${ROOT}" python3 - <<'EOF'
import json
import os
import re
import sys
from pathlib import Path

root = Path(os.environ["ROOT"])
update = os.environ["MODE"] == "--update"
failures = []

def replace_block(path, begin_re, end_re, body):
    """Replace the lines strictly between the marker lines with `body`."""
    lines = path.read_text().splitlines(keepends=True)
    begin = end = None
    for i, line in enumerate(lines):
        if begin is None and re.search(begin_re, line):
            begin = i
        elif begin is not None and re.search(end_re, line):
            end = i
            break
    if begin is None or end is None:
        failures.append(f"{path.name}: marker pair {begin_re!r} not found")
        return None
    inner = "".join(lines[begin + 1:end])
    if update and inner != body:
        path.write_text("".join(lines[:begin + 1]) + body + "".join(lines[end:]))
        print(f"docs_check: updated {path.name}")
        return body
    return inner

# 1. docs/CLI.md embeds --help verbatim (inside a ```text fence).
help_text = Path("/tmp/docs_check_help.txt").read_text()
block = replace_block(root / "docs/CLI.md",
                      r"<!-- BEGIN wrbpg_cli --help",
                      r"<!-- END wrbpg_cli --help -->",
                      "```text\n" + help_text + "```\n")
if block is not None and block != "```text\n" + help_text + "```\n":
    failures.append("docs/CLI.md: embedded --help block differs from the live "
                    "binary (run tools/docs_check.sh --update)")

# 2. FORMATS.md analyze example is byte-identical to a live run.
analyze = Path("/tmp/docs_check_analyze.json").read_text()
block = replace_block(root / "docs/FORMATS.md",
                      r"<!-- BEGIN analyze-json-example",
                      r"<!-- END analyze-json-example -->",
                      "```json\n" + analyze + "```\n")
if block is not None and block != "```json\n" + analyze + "```\n":
    failures.append("docs/FORMATS.md: analyze-json-example differs from "
                    "`analyze kary:2,3 --json --threads 1` "
                    "(run tools/docs_check.sh --update)")

# 3. Live obs document top-level keys == the documented list (+ the
#    CLI's exit_status producer key, which FORMATS.md calls out in prose).
formats = (root / "docs/FORMATS.md").read_text()
m = re.search(r"<!-- obs-top-keys: ([a-z_ ]+) -->", formats)
if not m:
    failures.append("docs/FORMATS.md: obs-top-keys marker not found")
else:
    documented = m.group(1).split()
    obs = json.loads(Path("/tmp/docs_check_obs.json").read_text())
    live = list(obs.keys())
    if live != documented + ["exit_status"]:
        failures.append(f"docs/FORMATS.md: obs-top-keys {documented} + "
                        f"exit_status != live document keys {live}")
    elif obs.get("schema") != "wrbpg-obs-v1":
        failures.append(f"live obs schema is {obs.get('schema')!r}")

# 4. Relative markdown links resolve to real files.
link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
for md in sorted(root.rglob("*.md")):
    if "build" in md.parts or ".git" in md.parts:
        continue
    for target in link_re.findall(md.read_text()):
        if re.match(r"[a-z]+://|mailto:|#", target):
            continue
        target_path = (md.parent / target.split("#")[0]).resolve()
        if not target_path.exists():
            failures.append(f"{md.relative_to(root)}: dead link -> {target}")

if failures:
    print("docs_check: FAILED", file=sys.stderr)
    for f in failures:
        print(f"  - {f}", file=sys.stderr)
    sys.exit(1)
print("docs_check: ok (help block, analyze example, obs keys, md links)")
EOF
