#!/usr/bin/env python3
"""Perf-regression gate for the bench_scheduler_perf JSON documents.

Compares a freshly produced wrbpg-obs-v1 benchmark document against a
committed baseline (bench/baselines/) and exits non-zero when any
engine-compare row regressed by more than the threshold.

Two comparison modes:

  relative (default)  Every row's wall-clock is first normalized by the
                      SAME document's dijkstra --threads 1 row for that
                      (instance, mode) — the audited reference engine.
                      Machine-speed differences between the baseline host
                      and the CI runner cancel out, so the gate measures
                      "how much faster than dijkstra is this engine",
                      which is what the hot-path work actually changes.
                      The dijkstra reference rows themselves normalize to
                      1.0 on both sides and are therefore only gated by
                      --absolute (they are the frozen PR 3 baseline and
                      the determinism anchor; they do not change).
  --absolute          Compare raw time_ms. Only meaningful when baseline
                      and current ran on the same machine.

Correctness is gated unconditionally: a row whose `identical` flag is
false, whose cost differs from the baseline's, or that disappeared from
the current document fails the diff in either mode.

anytime-sweep documents are compared report-only: optimality gaps at a
wall-clock deadline depend on the machine, so gap changes are printed
(and a widened gap is flagged loudly) but never fail the gate. Validity
and schema violations still do.

explore documents (bench_explore) follow the engine-compare shape with
key (instance, threads), deterministic fields points / frontier_size /
frontier_hash / identical, and relative mode normalizing by the same
document's threads=1 row per instance.

Several current documents may be given (repeated runs of the same bench
invocation); each row's wall-clock is then the MINIMUM across the runs.
Minimum-of-N is the standard answer to scheduler jitter: noise only ever
adds time, so the fastest observation is the closest to the machine's
true cost, and a regression must reproduce in every run to gate. Costs
and the identical flag must agree across all runs (they are deterministic
— disagreement is a correctness failure, not noise).

Usage:
  tools/bench_diff.py BASELINE.json CURRENT.json [CURRENT2.json ...]
                      [--threshold 0.15] [--absolute] [--min-ms 1.0]

Re-seeding a baseline uses the same reduction: pass `-` as the baseline
and --merge-out to write the min-merged document without comparing:
  tools/bench_diff.py - run1.json run2.json run3.json \
                      --merge-out bench/baselines/BENCH_exact_quick.json
"""

import argparse
import json
import math
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "wrbpg-obs-v1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def row_key(row):
    return (row["instance"], row["mode"], row["engine"], row["threads"])


def explore_row_key(row):
    return (row["instance"], row["threads"])


# Fields that must agree bit-for-bit across repeated runs of the same
# bench invocation, per tool. Disagreement is a determinism failure, not
# noise, and fails the merge itself.
DET_FIELDS = {
    "engine-compare": ("cost", "identical", "expanded", "waves"),
    "explore": ("points", "frontier_size", "frontier_hash", "identical"),
}

KEY_FNS = {
    "engine-compare": row_key,
    "explore": explore_row_key,
}


def merge_runs(docs, key_fn, det_fields=DET_FIELDS["engine-compare"]):
    """Min-of-N wall-clock merge of repeated runs; deterministic fields
    must agree across runs or the merge itself fails the gate."""
    merged = {}
    failures = []
    for doc in docs:
        for row in doc["rows"]:
            k = key_fn(row)
            have = merged.get(k)
            if have is None:
                merged[k] = dict(row)
                continue
            for field in det_fields:
                if field in row and row.get(field) != have.get(field):
                    failures.append(
                        f"{k}: deterministic field {field!r} differs "
                        f"across runs ({have.get(field)} vs "
                        f"{row.get(field)})")
            have["time_ms"] = min(have["time_ms"], row["time_ms"])
    return merged, failures


def reference_times(rows):
    """dijkstra --threads 1 time per (instance, mode), the in-document
    normalizer of relative mode."""
    refs = {}
    for row in rows:
        if row["engine"] == "dijkstra" and row["threads"] == 1:
            refs[(row["instance"], row["mode"])] = row["time_ms"]
    return refs


def diff_engine_compare(base, curs, threshold, absolute, min_ms):
    base_rows = {row_key(r): r for r in base["rows"]}
    cur_rows, failures = merge_runs(curs, row_key)
    base_refs = reference_times(base["rows"])
    cur_refs = reference_times(cur_rows.values())

    ratios = []
    print(f"{'row':<44} {'base':>9} {'cur':>9} {'ratio':>7}  verdict")
    for key, brow in sorted(base_rows.items()):
        name = "{}/{}/{}/t{}".format(*key)
        crow = cur_rows.get(key)
        if crow is None:
            failures.append(f"{name}: row missing from current document")
            continue
        if not crow.get("identical", False):
            failures.append(f"{name}: engine diverged from the canonical "
                            "schedule (identical=false)")
        if crow["cost"] != brow["cost"]:
            failures.append(f"{name}: cost changed "
                            f"{brow['cost']} -> {crow['cost']}")

        # Rows this fast are timer jitter, not signal: a quick-suite row
        # can run in tens of microseconds, where a 15% swing is one cache
        # miss. Correctness above still gates; the wall-clock does not.
        if max(brow["time_ms"], crow["time_ms"]) < min_ms:
            print(f"{name:<44} {'-':>9} {'-':>9} {'-':>7}  "
                  f"skipped (< {min_ms:g} ms)")
            continue
        if absolute:
            b, c = brow["time_ms"], crow["time_ms"]
        else:
            ref = (key[0], key[1])
            if base_refs.get(ref, 0) <= 0 or cur_refs.get(ref, 0) <= 0:
                failures.append(f"{name}: no dijkstra/t1 reference row for "
                                "relative mode (rerun with --absolute?)")
                continue
            b = brow["time_ms"] / base_refs[ref]
            c = crow["time_ms"] / cur_refs[ref]
        if b <= 0:
            continue
        ratio = c / b
        ratios.append(ratio)
        regressed = ratio > 1.0 + threshold
        verdict = "REGRESSED" if regressed else "ok"
        print(f"{name:<44} {b:>9.3f} {c:>9.3f} {ratio:>6.2f}x  {verdict}")
        if regressed:
            failures.append(f"{name}: {ratio:.2f}x slower than baseline "
                            f"(threshold {1.0 + threshold:.2f}x)")

    for key in sorted(set(cur_rows) - set(base_rows)):
        print("new row (not in baseline): {}/{}/{}/t{}".format(*key))
    if ratios:
        geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        print(f"\ngeomean current/baseline: {geo:.3f}x "
              f"({'relative to dijkstra/t1' if not absolute else 'absolute'})")
    return failures


def diff_explore(base, curs, threshold, absolute, min_ms):
    """Engine-compare-shaped diff for bench_explore documents: the grid
    outcome (point count, frontier size, frontier hash) is deterministic
    and gates unconditionally; wall-clock gates like engine-compare, with
    relative mode normalizing by each document's threads=1 row per
    instance (outer-parallelism scaling is what the rows measure)."""
    base_rows = {explore_row_key(r): r for r in base["rows"]}
    cur_rows, failures = merge_runs(curs, explore_row_key,
                                    DET_FIELDS["explore"])

    def refs(rows):
        return {r["instance"]: r["time_ms"]
                for r in rows if r["threads"] == 1}

    base_refs = refs(base["rows"])
    cur_refs = refs(cur_rows.values())

    ratios = []
    print(f"{'row':<44} {'base':>9} {'cur':>9} {'ratio':>7}  verdict")
    for key, brow in sorted(base_rows.items()):
        name = "{}/t{}".format(*key)
        crow = cur_rows.get(key)
        if crow is None:
            failures.append(f"{name}: row missing from current document")
            continue
        if not crow.get("identical", False):
            failures.append(f"{name}: frontier hash diverged from the "
                            "threads=1 run (identical=false)")
        for field in ("points", "frontier_size", "frontier_hash"):
            if crow.get(field) != brow.get(field):
                failures.append(f"{name}: {field} changed "
                                f"{brow.get(field)} -> {crow.get(field)}")

        if max(brow["time_ms"], crow["time_ms"]) < min_ms:
            print(f"{name:<44} {'-':>9} {'-':>9} {'-':>7}  "
                  f"skipped (< {min_ms:g} ms)")
            continue
        if absolute:
            b, c = brow["time_ms"], crow["time_ms"]
        else:
            inst = key[0]
            if base_refs.get(inst, 0) <= 0 or cur_refs.get(inst, 0) <= 0:
                failures.append(f"{name}: no threads=1 reference row for "
                                "relative mode (rerun with --absolute?)")
                continue
            b = brow["time_ms"] / base_refs[inst]
            c = crow["time_ms"] / cur_refs[inst]
        if b <= 0:
            continue
        ratio = c / b
        ratios.append(ratio)
        regressed = ratio > 1.0 + threshold
        verdict = "REGRESSED" if regressed else "ok"
        print(f"{name:<44} {b:>9.3f} {c:>9.3f} {ratio:>6.2f}x  {verdict}")
        if regressed:
            failures.append(f"{name}: {ratio:.2f}x slower than baseline "
                            f"(threshold {1.0 + threshold:.2f}x)")

    for key in sorted(set(cur_rows) - set(base_rows)):
        print("new row (not in baseline): {}/t{}".format(*key))
    if ratios:
        geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        print(f"\ngeomean current/baseline: {geo:.3f}x "
              f"({'relative to threads=1' if not absolute else 'absolute'})")
    return failures


def diff_anytime(base, cur):
    def key(row):
        return (row["instance"], row["deadline_ms"])

    base_rows = {key(r): r for r in base["rows"]}
    cur_rows = {key(r): r for r in cur["rows"]}
    failures = []
    print(f"{'row':<34} {'base gap':>8} {'cur gap':>8}  note")
    for k, brow in sorted(base_rows.items()):
        name = f"{k[0]}@{k[1]:g}ms"
        crow = cur_rows.get(k)
        if crow is None:
            failures.append(f"{name}: row missing from current document")
            continue
        if not crow.get("valid", False):
            failures.append(f"{name}: schedule no longer simulator-valid")
            continue
        note = ""
        if crow["gap"] > brow["gap"]:
            # Deadline results are wall-clock-dependent; widened gaps are
            # surfaced for a human but do not gate (see module docstring).
            note = "WIDER (report-only)"
        elif crow["gap"] < brow["gap"]:
            note = "tighter"
        print(f"{name:<34} {brow['gap']:>8} {crow['gap']:>8}  {note}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+",
                        help="one or more runs of the same bench "
                             "invocation (wall-clock min-merged per row)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fail on rows slower than baseline by more "
                             "than this fraction (default 0.15)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw time_ms instead of normalizing "
                             "by each document's dijkstra/t1 row")
    parser.add_argument("--min-ms", type=float, default=1.0,
                        help="skip wall-clock gating of rows faster than "
                             "this in both documents (default 1.0 ms; "
                             "correctness is always gated)")
    parser.add_argument("--merge-out", metavar="PATH",
                        help="write the min-merged current document here "
                             "(baseline '-' merges without comparing — "
                             "how bench/baselines/ files are seeded)")
    args = parser.parse_args()

    if args.merge_out:
        docs = [load(path) for path in args.current]
        merge_tool = docs[0].get("tool")
        if merge_tool not in KEY_FNS:
            sys.exit("--merge-out only applies to engine-compare or explore "
                     "documents (anytime sweeps are deadline-paced; seed "
                     "them from a single run)")
        merged, failures = merge_runs(docs, KEY_FNS[merge_tool],
                                      DET_FIELDS[merge_tool])
        if failures:
            for f in failures:
                print(f"  - {f}", file=sys.stderr)
            return 1
        out = dict(docs[0])
        out["rows"] = [merged[k] for k in sorted(merged)]
        with open(args.merge_out, "w") as f:
            json.dump(out, f, indent=1)
            f.write("\n")
        print(f"merged {len(docs)} run(s) -> {args.merge_out}")
        if args.baseline == "-":
            return 0

    base = load(args.baseline)
    curs = [load(path) for path in args.current]
    tool = base.get("tool")
    for path, cur in zip(args.current, curs):
        if cur.get("tool") != tool:
            sys.exit(f"tool mismatch: baseline={tool!r} "
                     f"{path}={cur.get('tool')!r}")

    if tool == "engine-compare":
        for path, cur in zip(args.current, curs):
            if not cur.get("all_identical", False):
                sys.exit(f"{path} reports all_identical=false — determinism "
                         "contract broken, not a perf question")
        failures = diff_engine_compare(base, curs, args.threshold,
                                       args.absolute, args.min_ms)
    elif tool == "explore":
        for path, cur in zip(args.current, curs):
            if not cur.get("all_identical", False):
                sys.exit(f"{path} reports all_identical=false — determinism "
                         "contract broken, not a perf question")
        failures = diff_explore(base, curs, args.threshold,
                                args.absolute, args.min_ms)
    elif tool == "anytime-sweep":
        # Deadline sweeps are paced by wall-clock, so repeated runs do not
        # min-merge meaningfully; only the first document is compared.
        failures = diff_anytime(base, curs[0])
    else:
        sys.exit(f"unsupported tool {tool!r} (expected engine-compare, "
                 "explore, or anytime-sweep)")

    if failures:
        print(f"\nbench_diff: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nbench_diff: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
