#!/usr/bin/env bash
# Run cppcheck over src/ and fail on error/warning-severity findings.
#
# Usage:
#   tools/cppcheck.sh [REPORT_DIR]    # default: build-cppcheck/
#
# Writes REPORT_DIR/cppcheck.xml (the full machine-readable report, the
# CI artifact) and REPORT_DIR/summary.txt (one line per finding). Style
# and performance notes are collected into the report but only
# error/warning severities fail the run — the repo's primary linter is
# clang-tidy (tools/tidy.sh); cppcheck is the second, independent
# opinion, so its scope here is "things that are definitely wrong".
# Exits 0 with a notice when cppcheck is not installed.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
REPORT="${1:-${ROOT}/build-cppcheck}"

if ! command -v cppcheck > /dev/null 2>&1; then
  echo "cppcheck.sh: cppcheck not found on PATH; skipping." >&2
  exit 0
fi

mkdir -p "${REPORT}"

# --library=googletest is unavailable on older distros; the checks here
# only cover src/, which does not include gtest headers.
cppcheck \
  --enable=warning,performance,portability \
  --inline-suppr \
  --suppress=missingIncludeSystem \
  --std=c++20 \
  --language=c++ \
  -I "${ROOT}" \
  --xml \
  "${ROOT}/src" 2> "${REPORT}/cppcheck.xml"

python3 - "${REPORT}" <<'EOF'
import sys
import xml.etree.ElementTree as ET

report_dir = sys.argv[1]
tree = ET.parse(f"{report_dir}/cppcheck.xml")
failing = []
lines = []
for error in tree.iter("error"):
    severity = error.get("severity", "")
    if severity == "information":
        continue
    loc = error.find("location")
    where = f"{loc.get('file')}:{loc.get('line')}" if loc is not None else "-"
    line = f"[{severity}] {where}: {error.get('msg')} ({error.get('id')})"
    lines.append(line)
    if severity in ("error", "warning"):
        failing.append(line)

with open(f"{report_dir}/summary.txt", "w") as f:
    f.write("\n".join(lines) + ("\n" if lines else ""))

print(f"cppcheck: {len(lines)} findings, {len(failing)} at failing severity")
for line in failing:
    print(line)
sys.exit(1 if failing else 0)
EOF
