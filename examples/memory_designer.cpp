// Memory designer — the end-to-end hardware-design flow of Sec 5.3 as a
// command-line tool: pick a kernel and precision, derive the minimum fast
// memory size under the optimal WRBPG schedule, round to a power of two,
// synthesize the SRAM macro, and report power/performance/area against the
// baseline scheduler's requirement.
//
//   $ ./memory_designer --kernel dwt --n 256 --d 8 --precision da
//   $ ./memory_designer --kernel mvm --m 96 --mvm-n 120 --layout
#include <iostream>
#include <string>

#include "core/analysis.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "hardware/sram_model.h"
#include "ioopt/ioopt_bounds.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/layer_by_layer.h"
#include "schedulers/mvm_tiling.h"
#include "util/cli.h"
#include "util/table.h"

using namespace wrbpg;

namespace {

void Report(const std::string& kernel, Weight ours_bits, Weight base_bits,
            const std::string& base_name, bool layout) {
  TextTable table({"Design", "Min capacity", "Pow2 capacity",
                   "Area (lambda^2)", "Leakage (mW)", "Read BW (GB/s)"});
  const auto add = [&](const std::string& name, Weight bits) {
    const Weight pow2 = PowerOfTwoCapacity(bits);
    const SramMacro macro = SynthesizeSram(pow2);
    table.AddRow({name, std::to_string(bits) + " b",
                  std::to_string(pow2) + " b",
                  std::to_string(static_cast<long long>(macro.area_lambda2)),
                  std::to_string(macro.leakage_mw).substr(0, 5),
                  std::to_string(macro.read_bw_gbps).substr(0, 5)});
  };
  add("WRBPG optimal (ours)", ours_bits);
  add(base_name, base_bits);
  table.Print(std::cout);

  const SramMacro ours = SynthesizeSram(PowerOfTwoCapacity(ours_bits));
  const SramMacro base = SynthesizeSram(PowerOfTwoCapacity(base_bits));
  std::cout << "\n" << kernel << ": area -"
            << static_cast<int>(100.0 * (1.0 - ours.area_lambda2 /
                                                   base.area_lambda2))
            << "%, leakage -"
            << static_cast<int>(100.0 *
                                (1.0 - ours.leakage_mw / base.leakage_mw))
            << "% vs " << base_name << "\n";
  if (layout) {
    std::cout << "\n" << RenderLayout(ours, "WRBPG optimal (ours)") << "\n"
              << RenderLayout(base, base_name);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string kernel = args.GetString("kernel", "dwt");
  const std::string precision = args.GetString("precision", "equal");
  const bool layout = args.GetBool("layout", false);
  const PrecisionConfig config = precision == "da"
                                     ? PrecisionConfig::DoubleAccumulator()
                                     : PrecisionConfig::Equal();

  if (kernel == "dwt") {
    const std::int64_t n = args.GetInt("n", 256);
    const int d = static_cast<int>(args.GetInt("d", MaxDwtLevel(n)));
    if (!DwtParamsValid(n, d)) {
      std::cerr << "invalid DWT parameters: n=" << n << " d=" << d
                << " (need n a positive multiple of 2^d)\n";
      return 1;
    }
    const DwtGraph dwt = BuildDwt(n, d, config);
    std::cout << "Designing on-chip memory for DWT(" << n << ", " << d
              << ") [" << ConfigLabel(config) << "]\n\n";
    DwtOptimalScheduler optimal(dwt);
    const Weight ours = optimal.MinMemoryForLowerBound(kWordBits, 1 << 20);
    LayerByLayerScheduler baseline(dwt.graph, dwt.layers);
    const Weight base = baseline.MinMemoryForLowerBound(kWordBits, 1 << 20);
    if (ours == 0 || base == 0) {
      std::cerr << "minimum-memory search failed\n";
      return 1;
    }
    Report("DWT", ours, base, "Layer-by-Layer", layout);
  } else if (kernel == "mvm") {
    const std::int64_t m = args.GetInt("m", 96);
    const std::int64_t n = args.GetInt("mvm-n", 120);
    if (m < 2 || n < 1) {
      std::cerr << "invalid MVM parameters: m=" << m << " n=" << n << "\n";
      return 1;
    }
    const MvmGraph mvm = BuildMvm(m, n, config);
    std::cout << "Designing on-chip memory for MVM(" << m << ", " << n
              << ") [" << ConfigLabel(config) << "]\n\n";
    const Weight ours = MvmTilingScheduler(mvm).MinMemoryForLowerBound();
    const Weight base = IoOptMvmBounds(mvm).UpperBoundMinMemory();
    Report("MVM", ours, base, "IOOpt UB", layout);
  } else {
    std::cerr << "unknown --kernel '" << kernel << "' (use dwt or mvm)\n";
    return 1;
  }
  return 0;
}
