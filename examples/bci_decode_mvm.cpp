// BCI scenario 2 — movement-intent decoding with MVM on an implanted device.
//
// A linear decoder maps a 120-dimensional neural feature vector (e.g. band
// powers over a time window) to 96 per-electrode outputs — the MVM(96, 120)
// configuration of the evaluation (Utah-array scale). The example compares
// the Sec 4.3 tiling schedule against the IOOpt baseline at the same fast
// memory size, executes the schedule on synthetic features, and verifies
// the decoded vector against a plain mat-vec.
//
//   $ ./bci_decode_mvm
//   $ ./bci_decode_mvm --words 126 --precision da
#include <cmath>
#include <iostream>
#include <vector>

#include "core/analysis.h"
#include "dataflows/mvm_graph.h"
#include "exec/executor.h"
#include "exec/reference_kernels.h"
#include "ioopt/ioopt_bounds.h"
#include "schedulers/mvm_tiling.h"
#include "util/cli.h"
#include "util/rng.h"

using namespace wrbpg;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string precision = args.GetString("precision", "equal");
  const PrecisionConfig config = precision == "da"
                                     ? PrecisionConfig::DoubleAccumulator()
                                     : PrecisionConfig::Equal();
  const MvmGraph mvm = BuildMvm(96, 120, config);
  MvmTilingScheduler tiling(mvm);

  const Weight default_words = tiling.MinMemoryForLowerBound() / kWordBits;
  const Weight words = args.GetInt("words", default_words);
  const Weight budget = words * kWordBits;

  std::cout << "MVM(96, 120) [" << ConfigLabel(config) << "]: "
            << mvm.graph.num_nodes() << " nodes; fast memory = " << words
            << " words (" << budget << " bits)\n";

  const auto tile = tiling.BestTile(budget);
  if (!tile) {
    std::cerr << "No tiling schedule fits (need >= "
              << MinValidBudget(mvm.graph) << " bits)\n";
    return 1;
  }
  std::cout << "Best tile: " << tile->h << " resident accumulator row(s), "
            << tile->g << " resident vector word(s)"
            << (tile->spill_running ? ", running sums spilled" : "") << "\n";

  const auto run = tiling.Run(budget);
  std::cout << "Tiling schedule: " << run.schedule.size() << " moves, "
            << run.cost << " bits moved (algorithmic lower bound "
            << AlgorithmicLowerBound(mvm.graph) << ")\n";

  const IoOptMvmBounds bounds(mvm);
  const Weight ub = bounds.UpperBoundCost(budget);
  if (ub < kInfiniteCost) {
    std::cout << "IOOpt schedule at the same budget: " << ub << " bits ("
              << (ub - run.cost) << " bits more traffic)\n";
  } else {
    std::cout << "IOOpt's model cannot schedule this budget\n";
  }

  // Synthetic decoder and features: smooth tuning curves + firing noise.
  Rng rng(static_cast<std::uint64_t>(args.GetInt("seed", 9)));
  std::vector<double> decoder(96 * 120);
  for (std::size_t i = 0; i < decoder.size(); ++i) {
    const double row = static_cast<double>(i / 120);
    const double col = static_cast<double>(i % 120);
    decoder[i] = std::cos(0.13 * row + 0.07 * col) / 120.0;
  }
  std::vector<double> features(120);
  for (auto& f : features) f = rng.UniformDouble() * 4.0;  // band powers

  std::vector<double> sources(mvm.graph.num_nodes(), 0.0);
  for (std::int64_t c = 0; c < 120; ++c) {
    sources[mvm.x(c)] = features[static_cast<std::size_t>(c)];
    for (std::int64_t r = 0; r < 96; ++r) {
      sources[mvm.a(r, c)] = decoder[static_cast<std::size_t>(r * 120 + c)];
    }
  }
  const ExecResult exec = ExecuteSchedule(mvm.graph, budget, run.schedule,
                                          MakeMvmNodeOp(mvm), sources);
  if (!exec.ok) {
    std::cerr << "Execution failed: " << exec.error << "\n";
    return 1;
  }

  const std::vector<double> expected = MatVec(96, 120, decoder, features);
  double max_output = 0.0;
  std::int64_t argmax = 0;
  for (std::int64_t r = 0; r < 96; ++r) {
    const double y = exec.slow_values[mvm.output(r)];
    if (y != expected[static_cast<std::size_t>(r)]) {
      std::cerr << "numeric mismatch at row " << r << "\n";
      return 1;
    }
    if (std::abs(y) > std::abs(max_output)) {
      max_output = y;
      argmax = r;
    }
  }
  std::cout << "Decoded 96 outputs; all match the reference mat-vec "
               "exactly.\nStrongest channel: " << argmax << " (activation "
            << max_output << ")\n";
  std::cout << "Traffic: " << exec.bits_loaded << " bits read, "
            << exec.bits_stored << " bits written; peak occupancy "
            << exec.peak_fast_bits << "/" << budget << " bits\n";
  return 0;
}
