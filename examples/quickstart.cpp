// Quickstart: the Weighted Red-Blue Pebble Game in ~80 lines.
//
// Builds a small mixed-precision CDAG, checks when schedules exist, finds
// the optimal schedule with the exhaustive solver, validates it with the
// simulator, and prints the move sequence — the full core API surface.
//
//   $ ./quickstart
#include <iostream>

#include "core/analysis.h"
#include "core/graph_builder.h"
#include "core/serialize.h"
#include "core/simulator.h"
#include "schedulers/brute_force.h"
#include "schedulers/greedy_topo.h"

using namespace wrbpg;

int main() {
  // A toy mixed-precision dataflow: two 16-bit sensor samples are combined
  // into a 32-bit intermediate; a third sample refines it into the 32-bit
  // result. Node weights are storage footprints in bits.
  GraphBuilder builder;
  const NodeId s0 = builder.AddNode(16, "sample0");
  const NodeId s1 = builder.AddNode(16, "sample1");
  const NodeId s2 = builder.AddNode(16, "sample2");
  const NodeId mid = builder.AddNode(32, "partial");
  const NodeId out = builder.AddNode(32, "result");
  builder.AddEdge(s0, mid);
  builder.AddEdge(s1, mid);
  builder.AddEdge(mid, out);
  builder.AddEdge(s2, out);
  const Graph graph = builder.BuildOrDie();

  std::cout << "Dataflow (DOT):\n" << ToDot(graph, "quickstart");

  // Proposition 2.3: the smallest fast memory that admits ANY schedule.
  const Weight floor = MinValidBudget(graph);
  std::cout << "\nSchedule exists iff fast memory >= " << floor << " bits\n";
  std::cout << "Algorithmic lower bound (Prop 2.4): "
            << AlgorithmicLowerBound(graph) << " bits of I/O\n";

  // Compare the trivial scheduler against the optimum at the floor budget.
  GreedyTopoScheduler greedy(graph);
  BruteForceScheduler optimal(graph);
  for (const Weight budget : {floor, floor + 16, floor + 48}) {
    const auto g = greedy.Run(budget);
    const auto o = optimal.Run(budget);
    std::cout << "\nfast memory = " << budget << " bits:"
              << "  greedy = " << g.cost << " bits moved,"
              << "  optimal = " << o.cost << " bits moved\n";

    // Every schedule is validated by the reference simulator.
    const SimResult sim = Simulate(graph, budget, o.schedule);
    if (!sim.valid) {
      std::cerr << "BUG: invalid schedule: " << sim.error << "\n";
      return 1;
    }
    std::cout << "optimal schedule (" << o.schedule.size() << " moves, peak "
              << sim.peak_red_weight << " bits resident):\n";
    for (const Move& move : o.schedule) {
      std::cout << "  " << ToString(move.type) << "("
                << graph.name(move.node) << ")\n";
    }
  }
  return 0;
}
