// BCI scenario 3 — the full modular pipeline of the paper's Sec 1 pitch:
// express the task in parts, schedule each part with its own optimal
// algorithm, and stitch the schedules into one valid schedule for the
// fused dataflow.
//
// Pipeline: DWT(64, 6) feature extraction over an iEEG window, feeding its
// 64 wavelet outputs into an MVM(8, 64) linear read-out (e.g. 8 symptom
// scores). Each module is scheduled independently — Algorithm 1 for the
// DWT, the Sec 4.3 tiling for the MVM — then composed via core/compose.h.
//
//   $ ./bci_pipeline
//   $ ./bci_pipeline --words 32
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "core/analysis.h"
#include "core/compose.h"
#include "core/trace.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "exec/executor.h"
#include "exec/reference_kernels.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/mvm_tiling.h"
#include "util/cli.h"
#include "util/rng.h"

using namespace wrbpg;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  const DwtGraph dwt = BuildDwt(64, 6, PrecisionConfig::Equal());
  const std::int64_t features =
      static_cast<std::int64_t>(dwt.graph.sinks().size());
  const MvmGraph mvm = BuildMvm(8, features, PrecisionConfig::Equal());
  std::cout << "Module 1: DWT(64, 6) -> " << features << " wavelet features\n"
            << "Module 2: MVM(8, " << features << ") linear read-out\n";

  std::vector<Binding> bindings;
  for (std::int64_t i = 0; i < features; ++i) {
    bindings.push_back(
        {.producer_sink = dwt.graph.sinks()[static_cast<std::size_t>(i)],
         .consumer_source = mvm.x(i)});
  }
  const Composition comp = ComposeSequential(dwt.graph, mvm.graph, bindings);
  if (!comp.ok) {
    std::cerr << "composition failed: " << comp.error << "\n";
    return 1;
  }
  std::cout << "Fused CDAG: " << comp.graph.num_nodes() << " nodes, "
            << comp.graph.num_edges() << " edges, lower bound "
            << AlgorithmicLowerBound(comp.graph) << " bits\n";

  DwtOptimalScheduler dwt_sched(dwt);
  MvmTilingScheduler mvm_sched(mvm);
  const Weight min_words =
      std::max(MinValidBudget(dwt.graph),
               mvm_sched.MinMemoryForLowerBound()) / kWordBits + 1;
  const Weight words = args.GetInt("words", min_words);
  const Weight budget = words * kWordBits;

  const auto r1 = dwt_sched.Run(budget);
  const auto r2 = mvm_sched.Run(budget);
  if (!r1.feasible || !r2.feasible) {
    std::cerr << "a module is infeasible at " << words << " words\n";
    return 1;
  }
  const Schedule stitched = StitchSchedules(comp, r1.schedule, r2.schedule);
  std::cout << "Stitched schedule: " << stitched.size() << " moves, "
            << (r1.cost + r2.cost) << " bits of traffic (DWT " << r1.cost
            << " + MVM " << r2.cost << ") under " << budget
            << " bits of fast memory\n";

  const OccupancyTrace trace = TraceOccupancy(comp.graph, budget, stitched);
  if (!trace.ok) {
    std::cerr << "stitched schedule invalid: " << trace.error << "\n";
    return 1;
  }
  std::cout << "\n" << RenderOccupancy(trace, budget) << "\n";

  // Run it: synthetic iEEG window through the fused pipeline.
  Rng rng(static_cast<std::uint64_t>(args.GetInt("seed", 4)));
  std::vector<double> signal(64);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double t = static_cast<double>(i) / 512.0;
    signal[i] = std::sin(2.0 * std::numbers::pi * 10.0 * t) +
                0.2 * (rng.UniformDouble() - 0.5);
  }
  std::vector<double> decoder(static_cast<std::size_t>(8 * features));
  for (auto& d : decoder) d = (rng.UniformDouble() - 0.5) / 8.0;

  std::vector<double> sources(comp.graph.num_nodes(), 0.0);
  for (std::size_t j = 0; j < 64; ++j) {
    sources[comp.producer_to_composite[dwt.layers[0][j]]] = signal[j];
  }
  for (std::int64_t r = 0; r < 8; ++r) {
    for (std::int64_t c = 0; c < features; ++c) {
      sources[comp.consumer_to_composite[mvm.a(r, c)]] =
          decoder[static_cast<std::size_t>(r * features + c)];
    }
  }
  std::vector<NodeId> back_to_dwt(comp.graph.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < dwt.graph.num_nodes(); ++v) {
    back_to_dwt[comp.producer_to_composite[v]] = v;
  }
  std::vector<NodeId> back_to_mvm(comp.graph.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < mvm.graph.num_nodes(); ++v) {
    if (mvm.graph.is_source(v) &&
        back_to_dwt[comp.consumer_to_composite[v]] != kInvalidNode) {
      continue;
    }
    back_to_mvm[comp.consumer_to_composite[v]] = v;
  }
  const NodeOp dwt_op = MakeDwtNodeOp(dwt);
  const NodeOp mvm_op = MakeMvmNodeOp(mvm);
  const NodeOp fused = [&](NodeId v, std::span<const double> parents) {
    return back_to_mvm[v] != kInvalidNode ? mvm_op(back_to_mvm[v], parents)
                                          : dwt_op(back_to_dwt[v], parents);
  };
  const ExecResult exec =
      ExecuteSchedule(comp.graph, budget, stitched, fused, sources);
  if (!exec.ok) {
    std::cerr << "execution failed: " << exec.error << "\n";
    return 1;
  }

  // Verify against the straight-line pipeline.
  const std::vector<double> feature_values = HaarOutputs(dwt, signal);
  const std::vector<double> expected =
      MatVec(8, features, decoder, feature_values);
  std::cout << "Decoded read-out:";
  for (std::int64_t r = 0; r < 8; ++r) {
    const double y =
        exec.slow_values[comp.consumer_to_composite[mvm.output(r)]];
    if (y != expected[static_cast<std::size_t>(r)]) {
      std::cerr << "\nnumeric mismatch at output " << r << "\n";
      return 1;
    }
    std::cout << ' ' << y;
  }
  std::cout << "\nAll outputs match the straight-line reference exactly.\n";
  return 0;
}
