// wrbpg_cli — schedule arbitrary CDAGs from the command line.
//
// Works on the text graph format of core/serialize.h, so downstream users
// can drive the library without writing C++:
//
//   wrbpg_cli info <graph.txt>
//       model properties: nodes, edges, min valid budget, lower bound.
//   wrbpg_cli schedule <graph.txt> --budget <bits>
//                      [--algo greedy|belady|brute|robust] [--deadline-ms N]
//       emit a validated schedule (move per line) on stdout; stats on stderr.
//       --deadline-ms (or --algo robust) runs the deadline-aware fallback
//       chain (exact -> belady -> greedy) and reports per-stage provenance.
//   wrbpg_cli validate <graph.txt> <schedule.txt> --budget <bits>
//       replay a schedule through the simulator and report cost/peak.
//   wrbpg_cli repair <graph.txt> <schedule.txt> --budget <bits>
//       patch a broken schedule into a simulator-valid one (repaired moves
//       on stdout) or print a structured diagnostic and exit nonzero.
//   wrbpg_cli trace <graph.txt> <schedule.txt> --budget <bits>
//       render the schedule's fast-memory occupancy timeline.
//   wrbpg_cli lint <graph.txt> [<schedule.txt> --budget <bits>]
//                  [--json] [--fix]
//       static analysis without running the simulator: with only a graph,
//       the graph-level rules; with a schedule, the full pass (validity
//       errors mirroring the simulator's taxonomy, plus wasted-I/O
//       warnings with machine-readable fix-its). --fix applies the safe
//       fix-its (re-verified, cost never increases) and prints the fixed
//       schedule on stdout with diagnostics on stderr. Exits 1 when any
//       error-severity diagnostic fires.
//   wrbpg_cli dot <graph.txt>
//       Graphviz rendering of the dataflow.
//
// Every verb accepts --threads N to set the worker-thread count for the
// search engines (brute force, the robust chain). The default is the
// hardware concurrency (or WRBPG_THREADS when set); --threads 1 forces
// the fully sequential paths. The schedule emitted is identical at any
// thread count — see the determinism contract in DESIGN.md §8.
//
// Example:
//   $ cat > add3.txt << 'EOF'
//   wrbpg-graph v1
//   node 0 16 a
//   node 1 16 b
//   node 2 32 sum
//   edge 0 2
//   edge 1 2
//   EOF
//   $ wrbpg_cli schedule add3.txt --budget 64 --algo belady
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/analysis.h"
#include "core/serialize.h"
#include "core/simulator.h"
#include "core/trace.h"
#include "lint/fixes.h"
#include "lint/lint.h"
#include "robust/repair.h"
#include "robust/robust_scheduler.h"
#include "schedulers/belady.h"
#include "schedulers/brute_force.h"
#include "schedulers/greedy_topo.h"
#include "util/cli.h"

using namespace wrbpg;

namespace {

int Usage() {
  std::cerr << "usage: wrbpg_cli <info|schedule|validate|trace|lint|repair|"
               "dot> <graph.txt> [schedule.txt] [--budget N] "
               "[--algo greedy|belady|brute|robust] [--deadline-ms N] "
               "[--threads N] [--json] [--fix]\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open '" << path << "'\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  args.ApplyThreadsFlag();
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }
  if (args.positional().size() < 2) return Usage();
  const std::string& command = args.positional()[0];

  std::string graph_text;
  if (!ReadFile(args.positional()[1], graph_text)) return 1;
  const GraphParseResult parsed = ParseGraphText(graph_text);
  if (!parsed.ok) {
    std::cerr << "error: " << args.positional()[1] << ": " << parsed.error
              << "\n";
    return 1;
  }
  const Graph& graph = parsed.graph;

  if (command == "info") {
    std::cout << "nodes:            " << graph.num_nodes() << "\n"
              << "edges:            " << graph.num_edges() << "\n"
              << "sources:          " << graph.sources().size() << "\n"
              << "sinks:            " << graph.sinks().size() << "\n"
              << "total weight:     " << graph.total_weight() << " bits\n"
              << "min valid budget: " << MinValidBudget(graph)
              << " bits (Prop 2.3)\n"
              << "algorithmic LB:   " << AlgorithmicLowerBound(graph)
              << " bits of I/O (Prop 2.4)\n";
    return 0;
  }
  if (command == "dot") {
    std::cout << ToDot(graph, args.positional()[1]);
    return 0;
  }

  if (command == "lint") {
    const bool json = args.GetBool("json", false);
    const bool fix = args.GetBool("fix", false);
    if (args.positional().size() < 3) {
      // Graph-only mode: structural rules, no schedule or budget needed.
      LintResult result;
      result.diagnostics = LintGraph(graph);
      std::cout << (json ? LintResultToJson(result)
                         : RenderLintResult(result));
      return 0;
    }
    const Weight lint_budget = args.GetInt("budget", 0);
    if (!args.error().empty()) {
      std::cerr << "error: " << args.error() << "\n";
      return 2;
    }
    if (lint_budget <= 0) {
      std::cerr << "error: --budget <bits> is required to lint a schedule\n";
      return 2;
    }
    std::string schedule_text;
    if (!ReadFile(args.positional()[2], schedule_text)) return 1;
    const ScheduleParseResult sched = ParseScheduleText(schedule_text);
    if (!sched.ok) {
      std::cerr << "error: " << args.positional()[2] << ": " << sched.error
                << "\n";
      return 1;
    }
    const LintResult result = LintSchedule(graph, lint_budget, sched.schedule);
    if (fix) {
      std::cerr << RenderLintResult(result);
      if (result.has_errors()) {
        std::cerr << "cannot fix: schedule has errors; run repair first\n";
        return 1;
      }
      const LintFixResult fixed =
          ApplyLintFixes(graph, lint_budget, sched.schedule);
      if (!fixed.ok) {
        std::cerr << "fix failed: " << fixed.message << "\n";
        return 1;
      }
      std::cout << ToText(fixed.schedule);
      std::cerr << "applied " << fixed.fixes_applied << " fix(es) over "
                << fixed.iterations << " iteration(s): cost "
                << fixed.cost_before << " -> " << fixed.cost_after
                << " bits\n";
      return 0;
    }
    std::cout << (json ? LintResultToJson(result) : RenderLintResult(result));
    return result.has_errors() ? 1 : 0;
  }

  const Weight budget = args.GetInt("budget", 0);
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }
  if (budget <= 0) {
    std::cerr << "error: --budget <bits> is required\n";
    return 2;
  }

  if (command == "schedule") {
    const double deadline_ms = args.GetDouble("deadline-ms", 0);
    std::string algo = args.GetString("algo", "belady");
    if (deadline_ms > 0) algo = "robust";
    if (!args.error().empty()) {
      std::cerr << "error: " << args.error() << "\n";
      return 2;
    }
    if (algo == "robust") {
      RobustOptions options;
      options.deadline_ms = deadline_ms;
      const RobustResult robust = RobustScheduler(graph).Run(budget, options);
      for (const StageReport& stage : robust.stages) {
        std::cerr << "stage " << stage.name << ": "
                  << ToString(stage.outcome);
        if (stage.cost < kInfiniteCost) {
          std::cerr << " cost=" << stage.cost << " bits";
        }
        if (stage.outcome != StageOutcome::kNotRun &&
            stage.outcome != StageOutcome::kSkipped) {
          std::cerr << " elapsed=" << stage.elapsed_ms << " ms";
        }
        if (!stage.detail.empty()) std::cerr << " (" << stage.detail << ")";
        std::cerr << "\n";
      }
      if (!robust.result.feasible) {
        std::cerr << "infeasible: no stage produced a valid schedule under "
                  << budget << " bits (need >= " << MinValidBudget(graph)
                  << ")\n";
        return 1;
      }
      std::cout << ToText(robust.result.schedule);
      std::cerr << "winner=" << robust.winner
                << " moves=" << robust.result.schedule.size()
                << " cost=" << robust.result.cost << " bits, lb="
                << AlgorithmicLowerBound(graph) << " bits\n";
      return 0;
    }
    ScheduleResult result;
    if (algo == "greedy") {
      result = GreedyTopoScheduler(graph).Run(budget);
    } else if (algo == "belady") {
      result = BeladyScheduler(graph).Run(budget);
    } else if (algo == "brute") {
      if (graph.num_nodes() > 20) {
        std::cerr << "error: --algo brute supports at most 20 nodes\n";
        return 2;
      }
      result = BruteForceScheduler(graph).Run(budget);
    } else {
      std::cerr << "error: unknown --algo '" << algo << "'\n";
      return 2;
    }
    if (!result.feasible) {
      std::cerr << "infeasible: no schedule under " << budget
                << " bits (need >= " << MinValidBudget(graph) << ")\n";
      return 1;
    }
    const SimResult sim = Simulate(graph, budget, result.schedule);
    if (!sim.valid) {
      std::cerr << "internal error: generated schedule invalid: " << sim.error
                << "\n";
      return 1;
    }
    std::cout << ToText(result.schedule);
    std::cerr << "algo=" << algo << " moves=" << result.schedule.size()
              << " cost=" << sim.cost << " bits, peak=" << sim.peak_red_weight
              << "/" << budget << " bits, lb="
              << AlgorithmicLowerBound(graph) << " bits\n";
    return 0;
  }

  if (command == "trace") {
    if (args.positional().size() < 3) return Usage();
    std::string schedule_text;
    if (!ReadFile(args.positional()[2], schedule_text)) return 1;
    const ScheduleParseResult sched = ParseScheduleText(schedule_text);
    if (!sched.ok) {
      std::cerr << "error: " << args.positional()[2] << ": " << sched.error
                << "\n";
      return 1;
    }
    const OccupancyTrace trace = TraceOccupancy(graph, budget, sched.schedule);
    if (!trace.ok) {
      std::cerr << "INVALID schedule: " << trace.error << "\n";
      return 1;
    }
    std::cout << RenderOccupancy(trace, budget);
    return 0;
  }

  if (command == "repair") {
    if (args.positional().size() < 3) return Usage();
    std::string schedule_text;
    if (!ReadFile(args.positional()[2], schedule_text)) return 1;
    const ScheduleParseResult sched = ParseScheduleText(schedule_text);
    if (!sched.ok) {
      std::cerr << "error: " << args.positional()[2] << ": " << sched.error
                << "\n";
      return 1;
    }
    const RepairResult repair = RepairSchedule(graph, budget, sched.schedule);
    if (repair.status == RepairStatus::kIrreparable) {
      std::cerr << "irreparable: " << ToString(repair.code) << " (v"
                << repair.node << " at input move " << repair.input_index
                << "): " << repair.message << "\n";
      return 1;
    }
    std::cout << ToText(repair.schedule);
    std::cerr << ToString(repair.status) << ": cost="
              << repair.verification.cost << " bits, peak="
              << repair.verification.peak_red_weight << "/" << budget
              << " bits, kept=" << repair.moves_kept << ", dropped="
              << repair.moves_dropped << ", inserted="
              << repair.moves_inserted << "\n";
    return 0;
  }

  if (command == "validate") {
    if (args.positional().size() < 3) return Usage();
    std::string schedule_text;
    if (!ReadFile(args.positional()[2], schedule_text)) return 1;
    const ScheduleParseResult sched = ParseScheduleText(schedule_text);
    if (!sched.ok) {
      std::cerr << "error: " << args.positional()[2] << ": " << sched.error
                << "\n";
      return 1;
    }
    const SimResult sim = Simulate(graph, budget, sched.schedule);
    if (!sim.valid) {
      std::cerr << "INVALID at move " << sim.error_index << " ["
                << ToString(sim.code) << "]: " << sim.error << "\n";
      return 1;
    }
    std::cout << "valid: cost=" << sim.cost
              << " bits, peak=" << sim.peak_red_weight << " bits, loads="
              << sim.loads << ", stores=" << sim.stores << ", computes="
              << sim.computes << ", deletes=" << sim.deletes << "\n";
    return 0;
  }

  return Usage();
}
