// wrbpg_cli — schedule arbitrary CDAGs from the command line.
//
// Works on the text graph format of core/serialize.h, so downstream users
// can drive the library without writing C++:
//
//   wrbpg_cli info <graph.txt>
//       model properties: nodes, edges, min valid budget, lower bound.
//   wrbpg_cli schedule <graph.txt> --budget <bits> [--algo greedy|belady|brute]
//       emit a validated schedule (move per line) on stdout; stats on stderr.
//   wrbpg_cli validate <graph.txt> <schedule.txt> --budget <bits>
//       replay a schedule through the simulator and report cost/peak.
//   wrbpg_cli trace <graph.txt> <schedule.txt> --budget <bits>
//       render the schedule's fast-memory occupancy timeline.
//   wrbpg_cli dot <graph.txt>
//       Graphviz rendering of the dataflow.
//
// Example:
//   $ cat > add3.txt << 'EOF'
//   wrbpg-graph v1
//   node 0 16 a
//   node 1 16 b
//   node 2 32 sum
//   edge 0 2
//   edge 1 2
//   EOF
//   $ wrbpg_cli schedule add3.txt --budget 64 --algo belady
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/analysis.h"
#include "core/serialize.h"
#include "core/simulator.h"
#include "core/trace.h"
#include "schedulers/belady.h"
#include "schedulers/brute_force.h"
#include "schedulers/greedy_topo.h"
#include "util/cli.h"

using namespace wrbpg;

namespace {

int Usage() {
  std::cerr << "usage: wrbpg_cli <info|schedule|validate|trace|dot> "
               "<graph.txt> [schedule.txt] [--budget N] "
               "[--algo greedy|belady|brute]\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open '" << path << "'\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }
  if (args.positional().size() < 2) return Usage();
  const std::string& command = args.positional()[0];

  std::string graph_text;
  if (!ReadFile(args.positional()[1], graph_text)) return 1;
  const GraphParseResult parsed = ParseGraphText(graph_text);
  if (!parsed.ok) {
    std::cerr << "error: " << args.positional()[1] << ": " << parsed.error
              << "\n";
    return 1;
  }
  const Graph& graph = parsed.graph;

  if (command == "info") {
    std::cout << "nodes:            " << graph.num_nodes() << "\n"
              << "edges:            " << graph.num_edges() << "\n"
              << "sources:          " << graph.sources().size() << "\n"
              << "sinks:            " << graph.sinks().size() << "\n"
              << "total weight:     " << graph.total_weight() << " bits\n"
              << "min valid budget: " << MinValidBudget(graph)
              << " bits (Prop 2.3)\n"
              << "algorithmic LB:   " << AlgorithmicLowerBound(graph)
              << " bits of I/O (Prop 2.4)\n";
    return 0;
  }
  if (command == "dot") {
    std::cout << ToDot(graph, args.positional()[1]);
    return 0;
  }

  const Weight budget = args.GetInt("budget", 0);
  if (budget <= 0) {
    std::cerr << "error: --budget <bits> is required\n";
    return 2;
  }

  if (command == "schedule") {
    const std::string algo = args.GetString("algo", "belady");
    ScheduleResult result;
    if (algo == "greedy") {
      result = GreedyTopoScheduler(graph).Run(budget);
    } else if (algo == "belady") {
      result = BeladyScheduler(graph).Run(budget);
    } else if (algo == "brute") {
      if (graph.num_nodes() > 20) {
        std::cerr << "error: --algo brute supports at most 20 nodes\n";
        return 2;
      }
      result = BruteForceScheduler(graph).Run(budget);
    } else {
      std::cerr << "error: unknown --algo '" << algo << "'\n";
      return 2;
    }
    if (!result.feasible) {
      std::cerr << "infeasible: no schedule under " << budget
                << " bits (need >= " << MinValidBudget(graph) << ")\n";
      return 1;
    }
    const SimResult sim = Simulate(graph, budget, result.schedule);
    if (!sim.valid) {
      std::cerr << "internal error: generated schedule invalid: " << sim.error
                << "\n";
      return 1;
    }
    std::cout << ToText(result.schedule);
    std::cerr << "algo=" << algo << " moves=" << result.schedule.size()
              << " cost=" << sim.cost << " bits, peak=" << sim.peak_red_weight
              << "/" << budget << " bits, lb="
              << AlgorithmicLowerBound(graph) << " bits\n";
    return 0;
  }

  if (command == "trace") {
    if (args.positional().size() < 3) return Usage();
    std::string schedule_text;
    if (!ReadFile(args.positional()[2], schedule_text)) return 1;
    const ScheduleParseResult sched = ParseScheduleText(schedule_text);
    if (!sched.ok) {
      std::cerr << "error: " << args.positional()[2] << ": " << sched.error
                << "\n";
      return 1;
    }
    const OccupancyTrace trace = TraceOccupancy(graph, budget, sched.schedule);
    if (!trace.ok) {
      std::cerr << "INVALID schedule: " << trace.error << "\n";
      return 1;
    }
    std::cout << RenderOccupancy(trace, budget);
    return 0;
  }

  if (command == "validate") {
    if (args.positional().size() < 3) return Usage();
    std::string schedule_text;
    if (!ReadFile(args.positional()[2], schedule_text)) return 1;
    const ScheduleParseResult sched = ParseScheduleText(schedule_text);
    if (!sched.ok) {
      std::cerr << "error: " << args.positional()[2] << ": " << sched.error
                << "\n";
      return 1;
    }
    const SimResult sim = Simulate(graph, budget, sched.schedule);
    if (!sim.valid) {
      std::cerr << "INVALID at move " << sim.error_index << ": " << sim.error
                << "\n";
      return 1;
    }
    std::cout << "valid: cost=" << sim.cost
              << " bits, peak=" << sim.peak_red_weight << " bits, loads="
              << sim.loads << ", stores=" << sim.stores << ", computes="
              << sim.computes << ", deletes=" << sim.deletes << "\n";
    return 0;
  }

  return Usage();
}
