// wrbpg_cli — schedule arbitrary CDAGs from the command line.
//
// Works on the text graph format of core/serialize.h, so downstream users
// can drive the library without writing C++:
//
//   wrbpg_cli info <graph>
//       model properties: nodes, edges, min valid budget, lower bound.
//   wrbpg_cli schedule <graph> --budget <bits>
//                      [--algo greedy|belady|brute|robust] [--deadline-ms N]
//                      [--engine dijkstra|astar|astar+dominance|bb]
//                      [--memory-cap-mb N]
//       emit a validated schedule (move per line) on stdout; stats on stderr.
//       --engine runs the named exact search engine directly; with
//       --deadline-ms the bb engine is anytime — it returns its incumbent
//       schedule plus a certified optimality gap when the deadline hits,
//       and the stderr line reports cost=.. lb=.. gap=.. termination=..
//       (the anytime contract, DESIGN.md §11). --memory-cap-mb bounds the
//       search's container bytes the same way. Without --engine,
//       --deadline-ms (or --algo robust) runs the deadline-aware fallback
//       chain (exact -> belady -> greedy) and reports per-stage provenance.
//   wrbpg_cli validate <graph> <schedule.txt> --budget <bits>
//       replay a schedule through the simulator and report cost/peak.
//   wrbpg_cli repair <graph> <schedule.txt> --budget <bits>
//       patch a broken schedule into a simulator-valid one (repaired moves
//       on stdout) or print a structured diagnostic and exit nonzero.
//   wrbpg_cli trace <graph> <schedule.txt> --budget <bits>
//       render the schedule's fast-memory occupancy timeline.
//   wrbpg_cli lint <graph> [<schedule.txt> --budget <bits>]
//                  [--json] [--fix]
//       static analysis without running the simulator: with only a graph,
//       the graph-level rules; with a schedule, the full pass (validity
//       errors mirroring the simulator's taxonomy, plus wasted-I/O
//       warnings with machine-readable fix-its). --fix applies the safe
//       fix-its (re-verified, cost never increases) and prints the fixed
//       schedule on stdout with diagnostics on stderr. Exits 1 when any
//       error-severity diagnostic fires.
//   wrbpg_cli profile <graph> [--budget <bits>]
//       run a representative workload (budget sweep, structure-specific DP
//       when the graph is a builtin, the robust fallback chain) and print
//       the observability report: timing-span tree, counters, gauges.
//       Defaults the budget to MinValidBudget + 2 so every stage has work.
//   wrbpg_cli analyze <graph> [--budget <bits>] [--json]
//       run the static graph analyzer (DESIGN.md §12): canonical hash and
//       verified vertex orbits, closed-form family recognition, and the
//       budget-aware I/O lower-bound certificates with their re-verified
//       witnesses. Defaults the budget to MinValidBudget. --json emits
//       the wrbpg-ganalysis-v1 document instead of the text report.
//   wrbpg_cli explore <graph> [--budget-lo N] [--budget-hi N]
//                     [--budget-step N] [--slack N] [--words CSV]
//                     [--scheduler bb|robust] [--deadline-ms N]
//                     [--max-states N] [--json]
//       pre-synthesis design-space exploration (DESIGN.md §15): sweep the
//       red-budget band × SRAM word widths, price every point through the
//       anytime solver + SRAM/energy models, and report the Pareto
//       frontier (table + ASCII area-vs-energy plot, or the
//       wrbpg-explore-v1 JSON document with --json). Every point carries
//       a certified optimality gap; invalid SRAM geometries are
//       skipped-and-counted.
//   wrbpg_cli dot <graph>
//       Graphviz rendering of the dataflow.
//   wrbpg_cli serve [<requests.txt>] [--cache-mb N] [--shards N]
//                   [--no-iso] [--deadline-ms N]
//       scheduling-as-a-service loop (DESIGN.md §13): read requests — one
//       `<graph> <budget> [<deadline-ms>]` per line — from a file or
//       stdin, serve each through a shared ScheduleService (iso-invariant
//       schedule cache + single-flight dedup + the robust chain on
//       misses), print one result line per request, and a cache/dedup
//       summary on stderr.
//   wrbpg_cli convert <graph> [--out PATH] [--format bin|text]
//       re-encode a graph between the text format and the compact
//       wrbpg-bin-v1 binary format (core/binio.h, docs/FORMATS.md).
//
// <graph> is a path to a core/serialize.h text file, a path to a
// wrbpg-bin-v1 binary file (detected by magic), or a builtin
// generator spec (dataflows/builtin_spec.h) — "dwt:N,D" for DWT(N, D)
// (Definition 3.1), "kary:K,LEVELS" for the perfect k-ary tree
// (Definition 3.6), "mvm:M,N" for MVM(M, N) (Definition 4.1),
// "butterfly:K" for the radix-2 butterfly on K inputs, or
// "random:LAYERS,WIDTH,SEED" for a seeded random layered CDAG
// (dataflows/random_dag.h) — so CI and quick experiments need no graph
// files on disk.
//
// `schedule` additionally accepts --orbit-prune with --engine: the
// searcher skips the root loads of orbit-equivalent sources (verified
// automorphisms, ganalysis/canonical.h), which shrinks the root fanout
// without changing the answer — the canonical optimal schedule's first
// move is its orbit representative's load, so cost and schedule are
// bit-identical with the flag on or off.
//
// Every verb accepts --threads N to set the worker-thread count for the
// search engines (brute force, the robust chain). The default is the
// hardware concurrency (or WRBPG_THREADS when set); --threads 1 forces
// the fully sequential paths. The schedule emitted is identical at any
// thread count — see the determinism contract in DESIGN.md §8.
//
// Every verb also accepts --metrics-json <path>: after the verb runs, the
// process-wide observability snapshot (wrbpg-obs-v1, DESIGN.md §10) is
// written there. Metrics are purely observational — the emitted schedule
// is bit-identical with or without the flag.
//
// Example:
//   $ cat > add3.txt << 'EOF'
//   wrbpg-graph v1
//   node 0 16 a
//   node 1 16 b
//   node 2 32 sum
//   edge 0 2
//   edge 1 2
//   EOF
//   $ wrbpg_cli schedule add3.txt --budget 64 --algo belady
#include <algorithm>
#include <charconv>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/binio.h"
#include "core/serialize.h"
#include "core/simulator.h"
#include "core/trace.h"
#include "dataflows/builtin_spec.h"
#include "explore/explore.h"
#include "explore/report.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/tree_graph.h"
#include "ganalysis/canonical.h"
#include "ganalysis/ganalysis.h"
#include "lint/fixes.h"
#include "lint/lint.h"
#include "obs/report.h"
#include "robust/repair.h"
#include "robust/robust_scheduler.h"
#include "schedulers/belady.h"
#include "schedulers/brute_force.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/kary_tree.h"
#include "service/service.h"
#include "util/cli.h"

using namespace wrbpg;

namespace {

int Usage() {
  std::cerr << "usage: wrbpg_cli <info|schedule|validate|trace|lint|repair|"
               "analyze|explore|profile|dot|serve|convert> <graph.txt|"
            << BuiltinSpecHelp()
            << "> [schedule.txt] "
               "[--budget N] [--algo greedy|belady|brute|robust] "
               "[--engine dijkstra|astar|astar+dominance|bb] "
               "[--deadline-ms N] [--memory-cap-mb N] [--threads N] "
               "[--orbit-prune] [--metrics-json path] [--json] [--fix]\n"
               "run `wrbpg_cli --help` for the full per-verb reference\n";
  return 2;
}

// The man-page-style reference. docs/CLI.md embeds this output verbatim
// (between BEGIN/END markers) and CI's docs-check job diffs the two, so
// the written reference cannot drift from the binary: edit this text and
// regenerate the doc block (tools/docs_check.sh --update).
int PrintHelp() {
  std::cout <<
      "wrbpg_cli - weighted red-blue pebble game scheduling toolkit\n"
      "\n"
      "usage: wrbpg_cli <verb> [<arguments>] [flags]\n"
      "\n"
      "verbs:\n"
      "  info <graph>\n"
      "      Model properties: nodes, edges, sources, sinks, total weight,\n"
      "      minimum valid budget (Prop 2.3), algorithmic I/O lower bound\n"
      "      (Prop 2.4).\n"
      "  dot <graph>\n"
      "      Graphviz rendering of the dataflow on stdout.\n"
      "  analyze <graph> [--budget N] [--json]\n"
      "      Static graph analyzer: canonical hash, verified vertex orbits,\n"
      "      closed-form family recognition, budget-aware I/O lower-bound\n"
      "      certificates. --budget defaults to the minimum valid budget.\n"
      "      --json emits the wrbpg-ganalysis-v1 document.\n"
      "  explore <graph> [--budget-lo N] [--budget-hi N] [--budget-step N]\n"
      "          [--slack N] [--words CSV] [--scheduler bb|robust]\n"
      "          [--deadline-ms N] [--max-states N] [--json]\n"
      "      Pre-synthesis design-space exploration (DESIGN.md §15): sweep\n"
      "      the red-budget band at --budget-step (default 16) across the\n"
      "      SRAM word widths in --words (default 8,16,32), price every\n"
      "      point through the anytime solver and the SRAM/energy models,\n"
      "      and report the Pareto frontier over (area, leakage, energy,\n"
      "      io_cost) as a table plus an ASCII area-vs-energy plot. The\n"
      "      band defaults to [min valid budget, derived min-memory +\n"
      "      --slack]. --scheduler bb (default) prices each budget with\n"
      "      the branch-and-bound engine capped at --max-states (default\n"
      "      200000): results are bit-identical at any --threads count;\n"
      "      robust runs the fallback chain under a per-point\n"
      "      --deadline-ms slice (bounded latency, wall-clock-dependent\n"
      "      answers). Every point carries a\n"
      "      certified optimality gap; SRAM geometries the synthesizer\n"
      "      rejects are skipped-and-counted. --json emits the\n"
      "      wrbpg-explore-v1 document. Exits 1 when the frontier is\n"
      "      empty.\n"
      "  lint <graph> [<schedule> --budget N] [--json] [--fix]\n"
      "      Static analysis without the simulator. Graph-only mode checks\n"
      "      the graph-level rules; with a schedule and budget, the full\n"
      "      pass (validity errors plus wasted-I/O warnings with fix-its).\n"
      "      --fix applies the safe fix-its and prints the fixed schedule.\n"
      "      Exits 1 when any error-severity diagnostic fires.\n"
      "  schedule <graph> --budget N [--algo greedy|belady|brute|robust]\n"
      "           [--engine dijkstra|astar|astar+dominance|bb]\n"
      "           [--deadline-ms N] [--memory-cap-mb N] [--orbit-prune]\n"
      "      Emit a validated schedule (one move per line) on stdout,\n"
      "      stats on stderr. --engine runs the named exact engine\n"
      "      directly; with --deadline-ms the bb engine is anytime and\n"
      "      returns its incumbent plus a certified optimality gap.\n"
      "      Without --engine, --deadline-ms (or --algo robust) runs the\n"
      "      deadline-aware fallback chain with per-stage provenance.\n"
      "      --orbit-prune skips root loads of orbit-equivalent sources.\n"
      "  validate <graph> <schedule> --budget N\n"
      "      Replay a schedule through the simulator; report cost, peak\n"
      "      red weight, and move counts, or the first rule violation.\n"
      "  repair <graph> <schedule> --budget N\n"
      "      Patch a broken schedule into a simulator-valid one (repaired\n"
      "      moves on stdout) or print a structured diagnostic and exit\n"
      "      nonzero.\n"
      "  trace <graph> <schedule> --budget N\n"
      "      Render the schedule's fast-memory occupancy timeline.\n"
      "  profile <graph> [--budget N] [--deadline-ms N]\n"
      "      Run a representative workload (budget sweep, family DP when\n"
      "      the graph is a builtin, the robust chain) and print the\n"
      "      observability report. --budget defaults to the minimum valid\n"
      "      budget plus 2.\n"
      "  serve [<requests.txt>] [--cache-mb N] [--shards N] [--no-iso]\n"
      "        [--deadline-ms N]\n"
      "      Scheduling-as-a-service loop. Requests are read from the\n"
      "      file (or stdin when absent or '-'), one per line:\n"
      "          <graph> <budget> [<deadline-ms>]\n"
      "      ('#' starts a comment). Each request is served through a\n"
      "      shared ScheduleService: an iso-invariant schedule cache\n"
      "      (--cache-mb, default 64; 0 disables), single-flight dedup,\n"
      "      and the robust fallback chain on misses. One result line per\n"
      "      request on stdout; cache/dedup summary on stderr. --no-iso\n"
      "      disables serving permuted isomorphs from cache;\n"
      "      --deadline-ms sets the default per-solve deadline for\n"
      "      requests that carry none. Exits 1 when any request failed.\n"
      "  convert <graph> [--out PATH] [--format bin|text]\n"
      "      Re-encode a graph between the text format (wrbpg-graph v1)\n"
      "      and the compact wrbpg-bin-v1 binary format. Default format:\n"
      "      bin. Writes to stdout when --out is absent.\n"
      "\n"
      "graph arguments:\n"
      "  A path to a wrbpg-graph v1 text file, a path to a wrbpg-bin-v1\n"
      "  binary file (detected by the WBIN magic), or a builtin generator\n"
      "  spec: " << BuiltinSpecHelp() << ".\n"
      "\n"
      "schedule arguments:\n"
      "  A path to a wrbpg-schedule v1 text file or a wrbpg-bin-v1 binary\n"
      "  file (detected by the WBIN magic).\n"
      "\n"
      "global flags (accepted by every verb):\n"
      "  --threads N\n"
      "      Worker threads for the search engines. Default: hardware\n"
      "      concurrency (or WRBPG_THREADS when set); --threads 1 forces\n"
      "      the sequential paths. Schedules are identical at any thread\n"
      "      count (determinism contract, DESIGN.md §8).\n"
      "  --metrics-json PATH\n"
      "      After the verb runs, write the process-wide observability\n"
      "      snapshot (wrbpg-obs-v1, docs/FORMATS.md) to PATH.\n"
      "  --help\n"
      "      Print this reference and exit 0.\n"
      "\n"
      "Flags are validated per verb: a flag that belongs to a different\n"
      "verb is rejected with an error naming the verb that owns it.\n";
  return 0;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open '" << path << "'\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

// A graph argument resolved from either a text file or a builtin generator
// spec (dataflows/builtin_spec.h). The spec path keeps the structure
// wrapper so the DP-aware verbs can route on it; graph() picks the live
// graph either way.
struct LoadedGraph {
  bool ok = false;
  BuiltinGraph builtin;  // engaged when the argument was a spec
  Graph parsed;          // engaged when the argument was a file

  const Graph& graph() const {
    return builtin.ok ? builtin.graph() : parsed;
  }
  const DwtGraph* dwt() const {
    return builtin.dwt ? &*builtin.dwt : nullptr;
  }
  const TreeGraph* tree() const {
    return builtin.tree ? &*builtin.tree : nullptr;
  }
};

LoadedGraph LoadGraphArg(const std::string& spec) {
  LoadedGraph out;
  if (IsBuiltinSpec(spec)) {
    out.builtin = BuildBuiltinGraph(spec);
    if (!out.builtin.ok) {
      std::cerr << "error: " << out.builtin.error << "\n";
      return out;
    }
    out.ok = true;
    return out;
  }
  std::string graph_text;
  if (!ReadFile(spec, graph_text)) return out;
  // wrbpg-bin-v1 files are detected by magic, so every verb transparently
  // accepts either encoding.
  GraphParseResult parsed = LooksLikeBinary(graph_text)
                                ? ParseGraphBinary(graph_text)
                                : ParseGraphText(graph_text);
  if (!parsed.ok) {
    std::cerr << "error: " << spec << ": " << parsed.error << "\n";
    return out;
  }
  out.parsed = std::move(parsed.graph);
  out.ok = true;
  return out;
}

// Schedule files get the same magic-based encoding detection as graphs.
ScheduleParseResult LoadScheduleArg(const std::string& path) {
  ScheduleParseResult out;
  std::ifstream in(path);
  if (!in) {
    out.error = "cannot open file";
    return out;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  return LooksLikeBinary(text) ? ParseScheduleBinary(text)
                               : ParseScheduleText(text);
}

// The `profile` verb: exercise every instrumented layer once — a budget
// sweep through the infeasible band (analysis counters), the
// structure-specific DP when the graph is a builtin (memo counters), and
// the robust fallback chain (exact search + simulator verification +
// per-stage spans) — then print the observability report.
int RunProfile(const CliArgs& args, const LoadedGraph& loaded,
               Weight budget) {
  const Graph& graph = loaded.graph();
  const Weight min_budget = MinValidBudget(graph);
  if (budget <= 0) budget = min_budget + 2;

  const CostFn belady_cost = [&](Weight b) {
    const ScheduleResult r = BeladyScheduler(graph).Run(b);
    if (!r.feasible) return kInfiniteCost;
    const SimResult sim = Simulate(graph, b, r.schedule);
    return sim.valid ? sim.cost : kInfiniteCost;
  };
  // A short grid straddling MinValidBudget: the sub-minimum entries are
  // skipped analytically (probes_skipped), the rest evaluated.
  std::vector<Weight> grid = {min_budget - 2, min_budget - 1, min_budget,
                              (min_budget + budget) / 2, budget};
  grid.erase(std::remove_if(grid.begin(), grid.end(),
                            [](Weight b) { return b < 1; }),
             grid.end());
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  BudgetSweepOptions sweep;
  sweep.graph = &graph;
  const std::vector<Weight> costs = EvaluateBudgets(belady_cost, grid, sweep);

  if (loaded.dwt()) {
    const ScheduleResult dp = DwtOptimalScheduler(*loaded.dwt()).Run(budget);
    std::cerr << "dwt-optimal: "
              << (dp.feasible ? "cost=" + std::to_string(dp.cost) + " bits"
                              : std::string("infeasible"))
              << "\n";
  }
  if (loaded.tree()) {
    const ScheduleResult dp = KaryTreeScheduler(graph).Run(budget);
    std::cerr << "kary-dp: "
              << (dp.feasible ? "cost=" + std::to_string(dp.cost) + " bits"
                              : std::string("infeasible"))
              << "\n";
  }

  const double deadline_ms = args.GetDouble("deadline-ms", 0);
  RobustOptions options;
  options.deadline_ms = deadline_ms;
  const RobustResult robust =
      loaded.dwt() ? RobustScheduler(*loaded.dwt()).Run(budget, options)
                   : RobustScheduler(graph).Run(budget, options);
  std::cerr << "robust chain: "
            << (robust.result.feasible
                    ? "winner=" + robust.winner + " cost=" +
                          std::to_string(robust.result.cost) + " bits"
                    : std::string("infeasible"))
            << " (budget " << budget << ", min valid " << min_budget
            << ")\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    std::cerr << "sweep budget=" << grid[i] << ": "
              << (costs[i] >= kInfiniteCost ? std::string("infeasible")
                                            : std::to_string(costs[i]) +
                                                  " bits")
              << "\n";
  }

  std::cout << obs::RenderReport();
  return robust.result.feasible ? 0 : 1;
}

// The `explore` verb: sweep the (red budget × SRAM word width) grid,
// price every point through the anytime solver + hardware models, and
// report the Pareto frontier (src/explore/, DESIGN.md §15).
int RunExplore(const CliArgs& args, const LoadedGraph& loaded) {
  ExploreOptions options;
  options.budget_lo = args.GetInt("budget-lo", 0);
  options.budget_hi = args.GetInt("budget-hi", 0);
  options.budget_step = args.GetInt("budget-step", 16);
  options.band_slack = args.GetInt("slack", 64);
  options.deadline_ms = args.GetDouble("deadline-ms", 0);
  const std::int64_t max_states = args.GetInt("max-states", 200'000);
  const std::string words = args.GetString("words", "8,16,32");
  const std::string scheduler_name = args.GetString("scheduler", "bb");
  const bool json = args.GetBool("json", false);
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }
  if (options.budget_lo < 0 || options.budget_hi < 0 ||
      options.budget_step <= 0 || options.band_slack < 0 ||
      max_states <= 0) {
    std::cerr << "error: --budget-lo/--budget-hi/--slack must be >= 0 and "
                 "--budget-step/--max-states > 0\n";
    return 2;
  }
  options.max_states = static_cast<std::size_t>(max_states);
  const std::optional<ExploreScheduler> scheduler =
      ExploreSchedulerFromString(scheduler_name);
  if (!scheduler) {
    std::cerr << "error: unknown --scheduler '" << scheduler_name
              << "' (expected bb|robust)\n";
    return 2;
  }
  options.scheduler = *scheduler;
  options.word_bits.clear();
  std::istringstream word_stream(words);
  std::string token;
  while (std::getline(word_stream, token, ',')) {
    Weight width = 0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), width);
    if (ec != std::errc() || ptr != token.data() + token.size() ||
        width <= 0) {
      std::cerr << "error: --words expects comma-separated positive bit "
                   "widths, got '"
                << token << "'\n";
      return 2;
    }
    options.word_bits.push_back(width);
  }

  const ExploreResult result = Explore(loaded.graph(), options);
  if (!result.ok) {
    std::cerr << "error: " << result.error << "\n";
    return 1;
  }
  // Self-check the dominance pass with the independent verifier before
  // publishing — a tampered/buggy frontier never leaves the process.
  std::string verify_error;
  if (!VerifyFrontier(result.points, result.frontier, &verify_error)) {
    std::cerr << "internal error: frontier verification failed: "
              << verify_error << "\n";
    return 1;
  }
  if (json) {
    std::cout << ExploreToJson(args.positional()[1],
                               ToString(options.scheduler), result)
                     .Dump()
              << "\n";
  } else {
    std::cout << RenderExploreTable(result) << "\n"
              << RenderFrontierPlot(result);
  }
  if (result.frontier.empty()) {
    std::cerr << "no feasible design point (scanned "
              << result.budgets_scanned << " budgets, "
              << result.infeasible_budgets << " infeasible, "
              << result.invalid_points << " invalid points)\n";
    return 1;
  }
  return 0;
}

// The `serve` verb: a scheduling-as-a-service loop over a request stream
// (file or stdin), one `<graph> <budget> [<deadline-ms>]` per line. Every
// request flows through one shared ScheduleService, so repeated and
// isomorphic graphs hit the schedule cache and concurrent duplicates
// would share a single solve (ServeBatch); here requests arrive
// sequentially, so the cache is the star.
int RunServe(const CliArgs& args) {
  ServiceOptions options;
  const std::int64_t cache_mb = args.GetInt("cache-mb", 64);
  const std::int64_t shards = args.GetInt("shards", 16);
  options.default_deadline_ms = args.GetDouble("deadline-ms", 0);
  options.iso_hits = !args.GetBool("no-iso", false);
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }
  if (cache_mb < 0 || shards < 1) {
    std::cerr << "error: --cache-mb must be >= 0 and --shards >= 1\n";
    return 2;
  }
  options.cache_bytes = static_cast<std::size_t>(cache_mb) << 20;
  options.cache_shards = static_cast<std::size_t>(shards);

  std::ifstream file;
  std::istream* in = &std::cin;
  if (args.positional().size() >= 2 && args.positional()[1] != "-") {
    file.open(args.positional()[1]);
    if (!file) {
      std::cerr << "error: cannot open '" << args.positional()[1] << "'\n";
      return 1;
    }
    in = &file;
  }

  ScheduleService service(options);
  std::string line;
  std::size_t lineno = 0;
  std::size_t failures = 0;
  while (std::getline(*in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tokens(line);
    std::vector<std::string> fields;
    std::string tok;
    while (tokens >> tok) fields.push_back(tok);
    if (fields.empty()) continue;

    Weight budget = 0;
    double deadline_ms = 0;
    bool parsed = fields.size() >= 2 && fields.size() <= 3;
    if (parsed) {
      const std::string& b = fields[1];
      const auto [ptr, ec] = std::from_chars(b.data(), b.data() + b.size(),
                                             budget);
      parsed = ec == std::errc() && ptr == b.data() + b.size();
    }
    if (parsed && fields.size() == 3) {
      const std::string& d = fields[2];
      char* end = nullptr;
      deadline_ms = std::strtod(d.c_str(), &end);
      parsed = end == d.c_str() + d.size();
    }
    if (!parsed) {
      std::cout << "req " << lineno
                << " error: expected '<graph> <budget> [<deadline-ms>]'\n";
      ++failures;
      continue;
    }

    const LoadedGraph loaded = LoadGraphArg(fields[0]);
    if (!loaded.ok) {
      // LoadGraphArg already printed the detail on stderr.
      std::cout << "req " << lineno << " " << fields[0]
                << " error: cannot load graph\n";
      ++failures;
      continue;
    }
    ServiceRequest request;
    request.graph = &loaded.graph();
    request.budget = budget;
    request.deadline_ms = deadline_ms;
    const ServiceResponse response = service.Serve(request);
    if (!response.ok) {
      std::cout << "req " << lineno << " " << fields[0] << " budget="
                << budget << " source=" << ToString(response.source)
                << " error: " << response.error << "\n";
      ++failures;
      continue;
    }
    std::cout << "req " << lineno << " " << fields[0]
              << " budget=" << budget
              << " source=" << ToString(response.source)
              << " cost=" << response.result.cost
              << " lb=" << response.result.lower_bound
              << " gap=" << response.result.optimality_gap
              << " termination=" << ToString(response.result.termination)
              << " winner=" << response.winner
              << " latency_ms=" << response.latency_ms << "\n";
  }

  const ServiceStats stats = service.stats();
  std::cerr << "serve: requests=" << stats.requests
            << " hits=" << stats.cache_hits
            << " iso_hits=" << stats.iso_hits
            << " misses=" << stats.misses
            << " dedup=" << stats.dedup_shared
            << " solves=" << stats.solves
            << " cache_entries=" << stats.cache_entries
            << " cache_bytes=" << stats.cache_bytes
            << " evictions=" << stats.cache_evictions << "\n";
  return failures > 0 ? 1 : 0;
}

// Runs the selected verb; main() handles the --metrics-json dump so every
// exit path below is covered by one snapshot.
int RunVerb(const CliArgs& args) {
  if (args.positional().empty()) return Usage();
  const std::string& command = args.positional()[0];

  // Per-verb flag ownership: a flag passed to the wrong verb is rejected
  // with an error naming the verb that accepts it (util/cli.h).
  static const std::vector<VerbFlags> kVerbFlags = {
      {"info", {}},
      {"dot", {}},
      {"analyze", {"budget", "json"}},
      {"explore",
       {"budget-lo", "budget-hi", "budget-step", "slack", "words",
        "scheduler", "deadline-ms", "max-states", "json"}},
      {"lint", {"budget", "json", "fix"}},
      {"schedule",
       {"budget", "algo", "engine", "deadline-ms", "memory-cap-mb",
        "orbit-prune"}},
      {"validate", {"budget"}},
      {"repair", {"budget"}},
      {"trace", {"budget"}},
      {"profile", {"budget", "deadline-ms"}},
      {"serve", {"cache-mb", "shards", "no-iso", "deadline-ms"}},
      {"convert", {"out", "format"}},
  };
  static const std::vector<std::string> kGlobalFlags = {"threads",
                                                        "metrics-json",
                                                        "help"};
  const bool known_verb =
      std::any_of(kVerbFlags.begin(), kVerbFlags.end(),
                  [&](const VerbFlags& v) { return v.verb == command; });
  if (!known_verb) return Usage();
  if (!args.CheckVerbFlags(command, kVerbFlags, kGlobalFlags)) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }

  if (command == "serve") return RunServe(args);
  if (args.positional().size() < 2) return Usage();

  const LoadedGraph loaded = LoadGraphArg(args.positional()[1]);
  if (!loaded.ok) return 1;
  const Graph& graph = loaded.graph();

  if (command == "info") {
    std::cout << "nodes:            " << graph.num_nodes() << "\n"
              << "edges:            " << graph.num_edges() << "\n"
              << "sources:          " << graph.sources().size() << "\n"
              << "sinks:            " << graph.sinks().size() << "\n"
              << "total weight:     " << graph.total_weight() << " bits\n"
              << "min valid budget: " << MinValidBudget(graph)
              << " bits (Prop 2.3)\n"
              << "algorithmic LB:   " << AlgorithmicLowerBound(graph)
              << " bits of I/O (Prop 2.4)\n";
    return 0;
  }
  if (command == "dot") {
    std::cout << ToDot(graph, args.positional()[1]);
    return 0;
  }

  if (command == "convert") {
    const std::string format = args.GetString("format", "bin");
    const std::string out_path = args.GetString("out", "");
    if (format != "bin" && format != "text") {
      std::cerr << "error: unknown --format '" << format
                << "' (expected bin|text)\n";
      return 2;
    }
    const std::string payload =
        format == "bin" ? ToBinary(graph) : ToText(graph);
    if (out_path.empty()) {
      std::cout.write(payload.data(),
                      static_cast<std::streamsize>(payload.size()));
      return 0;
    }
    std::ofstream out(out_path, std::ios::binary);
    if (!out.write(payload.data(),
                   static_cast<std::streamsize>(payload.size()))) {
      std::cerr << "error: cannot write '" << out_path << "'\n";
      return 1;
    }
    return 0;
  }

  if (command == "explore") {
    return RunExplore(args, loaded);
  }

  if (command == "analyze") {
    const bool json = args.GetBool("json", false);
    AnalysisOptions options;
    options.budget = args.GetInt("budget", 0);  // <= 0: MinValidBudget
    if (!args.error().empty()) {
      std::cerr << "error: " << args.error() << "\n";
      return 2;
    }
    const GraphAnalysis analysis = AnalyzeGraph(graph, options);
    std::cout << (json ? GraphAnalysisToJson(analysis)
                       : RenderGraphAnalysis(analysis));
    return 0;
  }

  if (command == "lint") {
    const bool json = args.GetBool("json", false);
    const bool fix = args.GetBool("fix", false);
    if (args.positional().size() < 3) {
      // Graph-only mode: structural rules, no schedule or budget needed.
      LintResult result;
      result.diagnostics = LintGraph(graph);
      std::cout << (json ? LintResultToJson(result)
                         : RenderLintResult(result));
      return 0;
    }
    const Weight lint_budget = args.GetInt("budget", 0);
    if (!args.error().empty()) {
      std::cerr << "error: " << args.error() << "\n";
      return 2;
    }
    if (lint_budget <= 0) {
      std::cerr << "error: --budget <bits> is required to lint a schedule\n";
      return 2;
    }
    const ScheduleParseResult sched = LoadScheduleArg(args.positional()[2]);
    if (!sched.ok) {
      std::cerr << "error: " << args.positional()[2] << ": " << sched.error
                << "\n";
      return 1;
    }
    const LintResult result = LintSchedule(graph, lint_budget, sched.schedule);
    if (fix) {
      std::cerr << RenderLintResult(result);
      if (result.has_errors()) {
        std::cerr << "cannot fix: schedule has errors; run repair first\n";
        return 1;
      }
      const LintFixResult fixed =
          ApplyLintFixes(graph, lint_budget, sched.schedule);
      if (!fixed.ok) {
        std::cerr << "fix failed: " << fixed.message << "\n";
        return 1;
      }
      std::cout << ToText(fixed.schedule);
      std::cerr << "applied " << fixed.fixes_applied << " fix(es) over "
                << fixed.iterations << " iteration(s): cost "
                << fixed.cost_before << " -> " << fixed.cost_after
                << " bits\n";
      return 0;
    }
    std::cout << (json ? LintResultToJson(result) : RenderLintResult(result));
    return result.has_errors() ? 1 : 0;
  }

  const Weight budget = args.GetInt("budget", 0);
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }
  if (command == "profile") {
    // profile defaults its budget; every other verb requires one.
    return RunProfile(args, loaded, budget);
  }
  if (budget <= 0) {
    std::cerr << "error: --budget <bits> is required\n";
    return 2;
  }

  if (command == "schedule") {
    const double deadline_ms = args.GetDouble("deadline-ms", 0);
    const std::string engine_name = args.GetString("engine", "");
    const Weight memory_cap_mb = args.GetInt("memory-cap-mb", 0);
    std::string algo = args.GetString("algo", "belady");
    // --deadline-ms alone selects the robust chain; with --engine it
    // instead bounds the named engine directly (the anytime path).
    if (deadline_ms > 0 && engine_name.empty()) algo = "robust";
    if (!args.error().empty()) {
      std::cerr << "error: " << args.error() << "\n";
      return 2;
    }
    if (!engine_name.empty()) {
      BruteForceOptions bf;
      if (engine_name == "dijkstra") {
        bf.engine = SearchEngine::kDijkstra;
      } else if (engine_name == "astar") {
        bf.engine = SearchEngine::kAStar;
      } else if (engine_name == "astar+dominance") {
        bf.engine = SearchEngine::kAStarDominance;
      } else if (engine_name == "bb") {
        bf.engine = SearchEngine::kBranchAndBound;
      } else {
        std::cerr << "error: unknown --engine '" << engine_name
                  << "' (expected dijkstra|astar|astar+dominance|bb)\n";
        return 2;
      }
      if (memory_cap_mb > 0) {
        bf.frontier_bytes_cap =
            static_cast<std::size_t>(memory_cap_mb) << 20;
      }
      // Certified root bound: free to compute, only tightens the REPORTED
      // gap of an interrupted run (brute_force.h) — completed runs and
      // their schedules are untouched.
      bf.root_lower_bound = BestCertifiedBound(graph, budget);
      std::vector<NodeId> pruned_sources;
      if (args.GetBool("orbit-prune", false)) {
        // Skip the root load of every source whose verified orbit has a
        // smaller-id source; the representative's load stays, so the
        // canonical optimal schedule survives (bit-identity contract).
        const OrbitPartition orbits = ComputeOrbits(graph);
        for (const NodeId s : graph.sources()) {
          if (orbits.orbit_of[s] != s) pruned_sources.push_back(s);
        }
        bf.prune_root_loads = &pruned_sources;
        std::cerr << "orbit-prune: skipping " << pruned_sources.size()
                  << " of " << graph.sources().size()
                  << " root loads (" << orbits.num_orbits << " orbits)\n";
      }
      CancelToken token;
      if (deadline_ms > 0) {
        token = CancelToken::WithDeadlineMs(deadline_ms);
        bf.cancel = &token;
      }
      const ScheduleResult result =
          BruteForceScheduler(graph).Run(budget, bf);
      if (result.timed_out) {
        // Only the exact engines end here; bb would have returned its
        // incumbent. The frontier lower bound is still certified.
        std::cerr << "timed out with no schedule (engine '" << engine_name
                  << "' holds no incumbent; use --engine bb), lb="
                  << result.lower_bound << " bits\n";
        return 1;
      }
      if (!result.feasible) {
        std::cerr << "infeasible: no schedule under " << budget
                  << " bits (need >= " << MinValidBudget(graph) << ")\n";
        return 1;
      }
      const SimResult sim = Simulate(graph, budget, result.schedule);
      if (!sim.valid) {
        std::cerr << "internal error: generated schedule invalid: "
                  << sim.error << "\n";
        return 1;
      }
      std::cout << ToText(result.schedule);
      std::cerr << "engine=" << engine_name
                << " moves=" << result.schedule.size()
                << " cost=" << sim.cost << " bits, lb="
                << result.lower_bound << " gap=" << result.optimality_gap
                << " termination=" << ToString(result.termination)
                << ", peak=" << sim.peak_red_weight << "/" << budget
                << " bits\n";
      return 0;
    }
    if (algo == "robust") {
      RobustOptions options;
      options.deadline_ms = deadline_ms;
      const RobustResult robust =
          loaded.dwt() ? RobustScheduler(*loaded.dwt()).Run(budget, options)
                       : RobustScheduler(graph).Run(budget, options);
      for (const StageReport& stage : robust.stages) {
        std::cerr << "stage " << stage.name << ": "
                  << ToString(stage.outcome);
        if (stage.cost < kInfiniteCost) {
          std::cerr << " cost=" << stage.cost << " bits";
        }
        if (stage.outcome != StageOutcome::kNotRun &&
            stage.outcome != StageOutcome::kSkipped) {
          std::cerr << " elapsed=" << stage.elapsed_ms << " ms";
        }
        if (!stage.detail.empty()) std::cerr << " (" << stage.detail << ")";
        std::cerr << "\n";
      }
      if (!robust.result.feasible) {
        std::cerr << "infeasible: no stage produced a valid schedule under "
                  << budget << " bits (need >= " << MinValidBudget(graph)
                  << ")\n";
        return 1;
      }
      std::cout << ToText(robust.result.schedule);
      std::cerr << "winner=" << robust.winner
                << " moves=" << robust.result.schedule.size()
                << " cost=" << robust.result.cost << " bits, lb="
                << robust.result.lower_bound << " gap="
                << robust.result.optimality_gap << " termination="
                << ToString(robust.result.termination) << "\n";
      return 0;
    }
    ScheduleResult result;
    if (algo == "greedy") {
      result = GreedyTopoScheduler(graph).Run(budget);
    } else if (algo == "belady") {
      result = BeladyScheduler(graph).Run(budget);
    } else if (algo == "brute") {
      // No node-count guard: the wide-state engines run at any size, and
      // an unbounded run is stopped by max_states/frontier_bytes_cap —
      // add --deadline-ms (or --engine bb) to bound it by wall clock.
      result = BruteForceScheduler(graph).Run(budget);
    } else {
      std::cerr << "error: unknown --algo '" << algo << "'\n";
      return 2;
    }
    if (!result.feasible) {
      std::cerr << "infeasible: no schedule under " << budget
                << " bits (need >= " << MinValidBudget(graph) << ")\n";
      return 1;
    }
    const SimResult sim = Simulate(graph, budget, result.schedule);
    if (!sim.valid) {
      std::cerr << "internal error: generated schedule invalid: " << sim.error
                << "\n";
      return 1;
    }
    std::cout << ToText(result.schedule);
    std::cerr << "algo=" << algo << " moves=" << result.schedule.size()
              << " cost=" << sim.cost << " bits, peak=" << sim.peak_red_weight
              << "/" << budget << " bits, lb="
              << AlgorithmicLowerBound(graph) << " bits\n";
    return 0;
  }

  if (command == "trace") {
    if (args.positional().size() < 3) return Usage();
    const ScheduleParseResult sched = LoadScheduleArg(args.positional()[2]);
    if (!sched.ok) {
      std::cerr << "error: " << args.positional()[2] << ": " << sched.error
                << "\n";
      return 1;
    }
    const OccupancyTrace trace = TraceOccupancy(graph, budget, sched.schedule);
    if (!trace.ok) {
      std::cerr << "INVALID schedule: " << trace.error << "\n";
      return 1;
    }
    std::cout << RenderOccupancy(trace, budget);
    return 0;
  }

  if (command == "repair") {
    if (args.positional().size() < 3) return Usage();
    const ScheduleParseResult sched = LoadScheduleArg(args.positional()[2]);
    if (!sched.ok) {
      std::cerr << "error: " << args.positional()[2] << ": " << sched.error
                << "\n";
      return 1;
    }
    const RepairResult repair = RepairSchedule(graph, budget, sched.schedule);
    if (repair.status == RepairStatus::kIrreparable) {
      std::cerr << "irreparable: " << ToString(repair.code) << " (v"
                << repair.node << " at input move " << repair.input_index
                << "): " << repair.message << "\n";
      return 1;
    }
    std::cout << ToText(repair.schedule);
    std::cerr << ToString(repair.status) << ": cost="
              << repair.verification.cost << " bits, peak="
              << repair.verification.peak_red_weight << "/" << budget
              << " bits, kept=" << repair.moves_kept << ", dropped="
              << repair.moves_dropped << ", inserted="
              << repair.moves_inserted << "\n";
    return 0;
  }

  if (command == "validate") {
    if (args.positional().size() < 3) return Usage();
    const ScheduleParseResult sched = LoadScheduleArg(args.positional()[2]);
    if (!sched.ok) {
      std::cerr << "error: " << args.positional()[2] << ": " << sched.error
                << "\n";
      return 1;
    }
    const SimResult sim = Simulate(graph, budget, sched.schedule);
    if (!sim.valid) {
      std::cerr << "INVALID at move " << sim.error_index + 1 << " ["
                << ToString(sim.code) << "]: " << sim.error << "\n";
      return 1;
    }
    std::cout << "valid: cost=" << sim.cost
              << " bits, peak=" << sim.peak_red_weight << " bits, loads="
              << sim.loads << ", stores=" << sim.stores << ", computes="
              << sim.computes << ", deletes=" << sim.deletes << "\n";
    return 0;
  }

  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.GetBool("help", false)) return PrintHelp();
  args.ApplyThreadsFlag();
  if (!args.error().empty()) {
    std::cerr << "error: " << args.error() << "\n";
    return 2;
  }

  const int status = RunVerb(args);

  // One dump point after the verb, so every exit path (including error
  // paths) still produces the artifact when requested.
  const std::string metrics_path = args.GetString("metrics-json", "");
  if (!metrics_path.empty()) {
    const std::string tool =
        args.positional().empty() ? "wrbpg_cli" : args.positional()[0];
    obs::Json doc = obs::ObsDocument(tool);
    doc.Set("exit_status", status);
    std::string error;
    if (!obs::WriteJsonFile(metrics_path, doc, &error)) {
      std::cerr << "error: --metrics-json: " << error << "\n";
      return status != 0 ? status : 1;
    }
  }
  return status;
}
