// BCI scenario 1 — seizure detection with the DWT on an implanted device.
//
// Synthesizes a 256-sample intracranial EEG window (background rhythm +
// noise, with an optional injected high-frequency seizure burst), schedules
// DWT(256, 8) under a user-chosen fast-memory budget with the optimal
// WRBPG scheduler, EXECUTES the schedule on the samples through the
// two-level memory machine, and detects the seizure from the detail-band
// energy of the computed wavelet coefficients.
//
//   $ ./bci_seizure_dwt                 # seizure present, 10-word SRAM
//   $ ./bci_seizure_dwt --words 24 --seizure=false --seed 7
#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "core/analysis.h"
#include "dataflows/dwt_graph.h"
#include "exec/executor.h"
#include "exec/reference_kernels.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/layer_by_layer.h"
#include "util/cli.h"
#include "util/rng.h"

using namespace wrbpg;

namespace {

// 256 samples at 512 Hz: 8 Hz background alpha rhythm + pink-ish noise;
// a seizure adds an 80 Hz oscillation burst in the second half.
std::vector<double> SynthesizeIeeg(bool seizure, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> signal(256);
  constexpr double kFs = 512.0;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double t = static_cast<double>(i) / kFs;
    double v = 0.6 * std::sin(2.0 * std::numbers::pi * 8.0 * t);
    v += 0.15 * (rng.UniformDouble() * 2.0 - 1.0);
    if (seizure && i >= 128) {
      v += 0.8 * std::sin(2.0 * std::numbers::pi * 80.0 * t);
    }
    signal[i] = v;
  }
  return signal;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const Weight words = args.GetInt("words", 10);
  const bool seizure = args.GetBool("seizure", true);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.GetInt("seed", 1));
  const Weight budget = words * kWordBits;

  const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::Equal());
  std::cout << "DWT(256, 8): " << dwt.graph.num_nodes() << " nodes, "
            << dwt.graph.num_edges() << " edges; fast memory = " << words
            << " words (" << budget << " bits)\n";

  if (!ScheduleExists(dwt.graph, budget)) {
    std::cerr << "No schedule exists under " << budget
              << " bits (need >= " << MinValidBudget(dwt.graph) << ")\n";
    return 1;
  }

  DwtOptimalScheduler optimal(dwt);
  const auto run = optimal.Run(budget);
  if (!run.feasible) {
    std::cerr << "Scheduler failed unexpectedly\n";
    return 1;
  }
  std::cout << "Optimal schedule: " << run.schedule.size() << " moves, "
            << run.cost << " bits of fast<->slow traffic (lower bound "
            << AlgorithmicLowerBound(dwt.graph) << ")\n";

  LayerByLayerScheduler baseline(dwt.graph, dwt.layers);
  const Weight base_cost = baseline.CostOnly(budget);
  if (base_cost < kInfiniteCost) {
    std::cout << "Layer-by-layer baseline at the same budget: " << base_cost
              << " bits (" << (base_cost - run.cost)
              << " bits of avoidable traffic)\n";
  } else {
    std::cout << "Layer-by-layer baseline: infeasible at this budget\n";
  }

  // Run the schedule on the actual samples.
  const std::vector<double> signal = SynthesizeIeeg(seizure, seed);
  std::vector<double> sources(dwt.graph.num_nodes(), 0.0);
  for (std::size_t j = 0; j < 256; ++j) sources[dwt.layers[0][j]] = signal[j];
  const ExecResult exec = ExecuteSchedule(dwt.graph, budget, run.schedule,
                                          MakeDwtNodeOp(dwt), sources);
  if (!exec.ok) {
    std::cerr << "Execution failed: " << exec.error << "\n";
    return 1;
  }
  std::cout << "Executed on device: " << exec.bits_loaded << " bits read, "
            << exec.bits_stored << " bits written, peak fast-memory "
            << "occupancy " << exec.peak_fast_bits << " bits\n";

  // Detection: energy of the level-1/2 detail coefficients (the >64 Hz
  // bands for a 512 Hz sampling rate) in the second half of the window.
  double detail_energy = 0.0;
  for (int level = 2; level <= 3; ++level) {
    const auto& layer = dwt.layers[static_cast<std::size_t>(level - 1)];
    for (std::size_t j = 1; j < layer.size(); j += 2) {  // coefficients
      if (j < layer.size() / 2) continue;  // second half of the window
      const double c = exec.slow_values[layer[j]];
      detail_energy += c * c;
    }
  }
  constexpr double kThreshold = 3.0;
  std::cout << "High-frequency detail energy: " << detail_energy
            << (detail_energy > kThreshold ? "  -> SEIZURE DETECTED\n"
                                           : "  -> background activity\n");

  // Cross-check the on-device outputs against the direct Haar transform.
  const std::vector<double> expected = DwtReferenceValues(dwt, signal);
  for (NodeId s : dwt.graph.sinks()) {
    if (exec.slow_values[s] != expected[s]) {
      std::cerr << "numeric mismatch at node " << s << "\n";
      return 1;
    }
  }
  std::cout << "All " << dwt.graph.sinks().size()
            << " outputs match the reference transform exactly.\n";
  return 0;
}
