// Exhaustive soundness check of the bound certificates (DESIGN.md §12):
// on every small-corpus graph, at EVERY budget in the valid band, each
// certificate's value must not exceed the exact optimum, and each witness
// must re-verify through the independent checker. The paper instances
// additionally pin strict dominance over Prop 2.4 at their minimum valid
// budgets, with tightness against the closed-form DPs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analysis.h"
#include "dataflows/butterfly_graph.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/tree_graph.h"
#include "ganalysis/bounds.h"
#include "schedulers/brute_force.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/kary_tree.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

struct Case {
  std::string name;
  Graph graph;
};

std::vector<Case> SmallCorpus() {
  std::vector<Case> corpus;
  corpus.push_back({"diamond", testing::MakeDiamond({3, 5, 7, 11, 13})});
  corpus.push_back({"chain6", testing::MakeChain(6, 4)});
  corpus.push_back({"kary(2,3)", BuildPerfectTree(2, 3).graph});
  corpus.push_back({"kary(3,2)", BuildPerfectTree(3, 2).graph});
  corpus.push_back({"dwt(4,1)", BuildDwt(4, 1).graph});
  corpus.push_back({"dwt(8,2)", BuildDwt(8, 2).graph});
  corpus.push_back({"butterfly(4)", BuildButterfly(4).graph});
  return corpus;
}

// Every certificate at every budget in [MinValidBudget, MinValidBudget+8]
// is at most the exact optimum and carries a witness the independent
// verifier accepts.
TEST(CertificateSoundness, NeverExceedsExactOptimumAcrossBudgetBand) {
  for (const Case& c : SmallCorpus()) {
    const Weight min_budget = MinValidBudget(c.graph);
    const BruteForceScheduler oracle(c.graph);
    for (Weight budget = min_budget; budget <= min_budget + 8; ++budget) {
      const Weight optimum = oracle.CostOnly(budget);
      ASSERT_LT(optimum, kInfiniteCost)
          << c.name << " infeasible at " << budget;
      for (const BoundCertificate& cert :
           ComputeBoundCertificates(c.graph, budget)) {
        const CertificateCheck check = VerifyCertificate(c.graph, cert);
        EXPECT_TRUE(check.ok)
            << c.name << " @" << budget << " " << ToString(cert.kind)
            << ": " << check.error;
        EXPECT_LE(cert.value, optimum)
            << c.name << " @" << budget << " " << ToString(cert.kind)
            << " claims " << cert.value << " > optimum " << optimum;
        EXPECT_GE(cert.value, AlgorithmicLowerBound(c.graph));
        EXPECT_EQ(cert.value, cert.base + cert.excess);
      }
      EXPECT_LE(BestCertifiedBound(c.graph, budget), optimum);
    }
  }
}

// The segment certificate extends the wavefront picks, so it can never be
// the smaller of the two.
TEST(CertificateSoundness, SegmentDominatesWavefront) {
  for (const Case& c : SmallCorpus()) {
    const Weight min_budget = MinValidBudget(c.graph);
    for (Weight budget = min_budget; budget <= min_budget + 8; ++budget) {
      EXPECT_GE(SegmentCertificate(c.graph, budget).value,
                WavefrontCertificate(c.graph, budget).value)
          << c.name << " @" << budget;
    }
  }
}

// Paper instance dwt(16,2): at the minimum valid budget (48) the
// budget-aware certificates reach 640 — strictly above the Prop 2.4
// bound of 512 and exactly the Algorithm 1 optimum (the bound is tight).
TEST(CertificateSoundness, StrictDominanceAndTightnessOnDwt16x2) {
  const DwtGraph dwt = BuildDwt(16, 2);
  const Weight min_budget = MinValidBudget(dwt.graph);
  ASSERT_EQ(min_budget, 48);
  EXPECT_EQ(AlgorithmicLowerBound(dwt.graph), 512);
  for (Weight budget = min_budget; budget <= min_budget + 4; ++budget) {
    const Weight best = BestCertifiedBound(dwt.graph, budget);
    const Weight optimum = DwtOptimalScheduler(dwt).CostOnly(budget);
    EXPECT_GT(best, AlgorithmicLowerBound(dwt.graph)) << "@" << budget;
    EXPECT_EQ(best, optimum) << "@" << budget;  // tight on this band
  }
  EXPECT_EQ(BestCertifiedBound(dwt.graph, 48), 640);
}

// Paper instance kary(2,4): ALB 272, wavefront 400, segment 496 — the
// segment certificate equals the k-ary DP optimum at budget 48.
TEST(CertificateSoundness, StrictDominanceAndTightnessOnKary2x4) {
  const Graph tree = BuildPerfectTree(2, 4).graph;
  ASSERT_EQ(MinValidBudget(tree), 48);
  EXPECT_EQ(AlgorithmicLowerBound(tree), 272);
  EXPECT_EQ(WavefrontCertificate(tree, 48).value, 400);
  EXPECT_EQ(SegmentCertificate(tree, 48).value, 496);
  EXPECT_EQ(KaryTreeScheduler(tree).CostOnly(48), 496);
}

// At a budget wide enough to hold every hold-footprint, the excess terms
// vanish and all certificates degrade to the algorithmic bound.
TEST(CertificateSoundness, DegradesToAlgorithmicAtLargeBudgets) {
  for (const Case& c : SmallCorpus()) {
    const Weight huge = c.graph.total_weight() * 2;
    for (const BoundCertificate& cert :
         ComputeBoundCertificates(c.graph, huge)) {
      EXPECT_EQ(cert.value, AlgorithmicLowerBound(c.graph))
          << c.name << " " << ToString(cert.kind);
      EXPECT_TRUE(VerifyCertificate(c.graph, cert).ok);
    }
  }
}

// The verifier is genuinely independent: tampering with a witness in any
// dimension — inflated price, wrong parent set, duplicated charge — is
// rejected.
TEST(CertificateVerifier, RejectsTamperedWitnesses) {
  const Graph g = BuildDwt(16, 2).graph;
  const BoundCertificate honest = SegmentCertificate(g, 48);
  ASSERT_FALSE(honest.groups.empty());
  ASSERT_TRUE(VerifyCertificate(g, honest).ok);

  {
    BoundCertificate inflated = honest;
    inflated.groups[0].min_price += 1;
    inflated.excess += 1;
    inflated.value += 1;
    EXPECT_FALSE(VerifyCertificate(g, inflated).ok);
  }
  {
    BoundCertificate wrong_arithmetic = honest;
    wrong_arithmetic.value += 8;
    EXPECT_FALSE(VerifyCertificate(g, wrong_arithmetic).ok);
  }
  {
    BoundCertificate short_parents = honest;
    short_parents.groups[0].parents.pop_back();
    EXPECT_FALSE(VerifyCertificate(g, short_parents).ok);
  }
  {
    BoundCertificate duplicated = honest;
    duplicated.groups.push_back(duplicated.groups[0]);
    duplicated.excess += duplicated.groups[0].min_price;
    duplicated.value += duplicated.groups[0].min_price;
    EXPECT_FALSE(VerifyCertificate(g, duplicated).ok);  // disjointness
  }
  {
    BoundCertificate wide_budget = honest;
    wide_budget.budget = g.total_weight() * 2;  // footprints now fit
    EXPECT_FALSE(VerifyCertificate(g, wide_budget).ok);
  }
}

}  // namespace
}  // namespace wrbpg
