// Shared helpers for the wrbpg test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/graph.h"
#include "core/graph_builder.h"
#include "core/schedule.h"
#include "core/simulator.h"
#include "core/types.h"

namespace wrbpg::testing {

// A tiny diamond CDAG used across core tests:
//
//   0   1      sources (weights w0, w1)
//   mid layer: 2 reads {0, 1}; 3 reads {1}
//   sink:      4 reads {2, 3}
inline Graph MakeDiamond(std::vector<Weight> weights = {1, 1, 1, 1, 1}) {
  GraphBuilder b;
  for (Weight w : weights) b.AddNode(w);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 4);
  b.AddEdge(3, 4);
  return b.BuildOrDie();
}

// Path graph 0 -> 1 -> ... -> (n-1).
inline Graph MakeChain(std::size_t n, Weight w = 1) {
  GraphBuilder b;
  for (std::size_t i = 0; i < n; ++i) b.AddNode(w);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    b.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return b.BuildOrDie();
}

// Asserts validity and returns the simulation result for diagnostics.
inline SimResult ExpectValid(const Graph& g, Weight budget,
                             const Schedule& s,
                             const SimOptions& options = {}) {
  const SimResult r = Simulate(g, budget, s, options);
  EXPECT_TRUE(r.valid) << "move " << r.error_index << ": " << r.error;
  return r;
}

}  // namespace wrbpg::testing
