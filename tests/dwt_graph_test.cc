#include <gtest/gtest.h>

#include <tuple>

#include "dataflows/dwt_graph.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

TEST(DwtParams, Validity) {
  EXPECT_TRUE(DwtParamsValid(4, 1));
  EXPECT_TRUE(DwtParamsValid(4, 2));
  EXPECT_TRUE(DwtParamsValid(256, 8));
  EXPECT_TRUE(DwtParamsValid(96, 5));
  EXPECT_FALSE(DwtParamsValid(4, 3));    // 8 does not divide 4
  EXPECT_FALSE(DwtParamsValid(6, 2));    // 4 does not divide 6
  EXPECT_FALSE(DwtParamsValid(1, 1));
  EXPECT_FALSE(DwtParamsValid(8, 0));
}

TEST(DwtParams, MaxLevelIsTwoAdicValuation) {
  EXPECT_EQ(MaxDwtLevel(256), 8);
  EXPECT_EQ(MaxDwtLevel(96), 5);
  EXPECT_EQ(MaxDwtLevel(6), 1);
  EXPECT_EQ(MaxDwtLevel(2), 1);
}

// Figure 2a: DWT(4, 1).
TEST(DwtGraph, MatchesFigure2a) {
  const DwtGraph dwt = BuildDwt(4, 1);
  const Graph& g = dwt.graph;
  EXPECT_EQ(g.num_nodes(), 8u);
  ASSERT_EQ(dwt.layers.size(), 2u);
  EXPECT_EQ(dwt.layers[0].size(), 4u);
  EXPECT_EQ(dwt.layers[1].size(), 4u);
  // Pairs (x1,x2) -> (v1,v2) and (x3,x4) -> (v3,v4).
  for (int j = 1; j <= 4; ++j) {
    const NodeId v = dwt.at(2, j);
    ASSERT_EQ(g.parents(v).size(), 2u);
  }
  EXPECT_EQ(g.parents(dwt.at(2, 1))[0], dwt.at(1, 1));
  EXPECT_EQ(g.parents(dwt.at(2, 1))[1], dwt.at(1, 2));
  EXPECT_EQ(g.parents(dwt.at(2, 4))[0], dwt.at(1, 3));
  EXPECT_EQ(g.parents(dwt.at(2, 4))[1], dwt.at(1, 4));
  // All of S_2 are sinks at level 1.
  for (int j = 1; j <= 4; ++j) EXPECT_TRUE(g.is_sink(dwt.at(2, j)));
}

// Figure 2b: DWT(4, 2).
TEST(DwtGraph, MatchesFigure2b) {
  const DwtGraph dwt = BuildDwt(4, 2);
  const Graph& g = dwt.graph;
  EXPECT_EQ(g.num_nodes(), 10u);
  ASSERT_EQ(dwt.layers.size(), 3u);
  EXPECT_EQ(dwt.layers[2].size(), 2u);
  // S_3's average and coefficient both read the two S_2 averages.
  for (int j = 1; j <= 2; ++j) {
    const NodeId v = dwt.at(3, j);
    ASSERT_EQ(g.parents(v).size(), 2u);
    EXPECT_EQ(g.parents(v)[0], dwt.at(2, 1));
    EXPECT_EQ(g.parents(v)[1], dwt.at(2, 3));
  }
  // S_2 coefficients (even index) are sinks; averages are not.
  EXPECT_TRUE(g.is_sink(dwt.at(2, 2)));
  EXPECT_TRUE(g.is_sink(dwt.at(2, 4)));
  EXPECT_FALSE(g.is_sink(dwt.at(2, 1)));
  EXPECT_FALSE(g.is_sink(dwt.at(2, 3)));
}

TEST(DwtGraph, RolesFollowParity) {
  const DwtGraph dwt = BuildDwt(8, 3);
  for (std::size_t i = 0; i < dwt.layers.size(); ++i) {
    for (std::size_t j = 0; j < dwt.layers[i].size(); ++j) {
      const DwtRole role = dwt.roles[dwt.layers[i][j]];
      if (i == 0) {
        EXPECT_EQ(role, DwtRole::kInput);
      } else if (j % 2 == 0) {
        EXPECT_EQ(role, DwtRole::kAverage);
      } else {
        EXPECT_EQ(role, DwtRole::kCoefficient);
      }
    }
  }
}

TEST(DwtGraph, WeightsFollowPrecisionConfig) {
  const DwtGraph dwt = BuildDwt(8, 2, PrecisionConfig::DoubleAccumulator());
  const Graph& g = dwt.graph;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.weight(v), dwt.roles[v] == DwtRole::kInput ? 16 : 32);
  }
}

class DwtStructureTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(DwtStructureTest, SatisfiesDefinition31) {
  const auto [n, d] = GetParam();
  const DwtGraph dwt = BuildDwt(n, d);
  const Graph& g = dwt.graph;

  // Layer sizes: |S_1| = |S_2| = n, then halving.
  ASSERT_EQ(dwt.layers.size(), static_cast<std::size_t>(d) + 1);
  EXPECT_EQ(dwt.layers[0].size(), static_cast<std::size_t>(n));
  std::int64_t expect = n;
  std::size_t total = static_cast<std::size_t>(n);
  for (int i = 2; i <= d + 1; ++i) {
    EXPECT_EQ(dwt.layers[static_cast<std::size_t>(i - 1)].size(),
              static_cast<std::size_t>(expect));
    total += static_cast<std::size_t>(expect);
    expect /= 2;
  }
  EXPECT_EQ(g.num_nodes(), total);

  // Sources are exactly S_1.
  EXPECT_EQ(g.sources().size(), static_cast<std::size_t>(n));
  for (NodeId v : dwt.layers[0]) EXPECT_TRUE(g.is_source(v));

  // Every non-input node has in-degree exactly 2, and its two parents are
  // an adjacent pair in the previous layer.
  for (int i = 2; i <= d + 1; ++i) {
    const auto& layer = dwt.layers[static_cast<std::size_t>(i - 1)];
    for (std::size_t j = 0; j < layer.size(); ++j) {
      ASSERT_EQ(g.in_degree(layer[j]), 2u);
    }
  }

  // Sinks: coefficients of every layer >= 2 plus the final averages.
  std::size_t expected_sinks = 0;
  for (std::size_t i = 1; i < dwt.layers.size(); ++i) {
    expected_sinks += dwt.layers[i].size() / 2;
  }
  expected_sinks += dwt.layers.back().size() / 2;
  EXPECT_EQ(g.sinks().size(), expected_sinks);

  // Averages in layers 2..d feed exactly two children; final layer feeds none.
  for (int i = 2; i <= d; ++i) {
    const auto& layer = dwt.layers[static_cast<std::size_t>(i - 1)];
    for (std::size_t j = 0; j < layer.size(); ++j) {
      EXPECT_EQ(g.out_degree(layer[j]), j % 2 == 0 ? 2u : 0u);
    }
  }
}

TEST_P(DwtStructureTest, PruningRemovesCoefficients) {
  const auto [n, d] = GetParam();
  const DwtGraph dwt = BuildDwt(n, d);
  const PrunedDwt pruned = PruneDwt(dwt);

  std::size_t coefficients = 0;
  for (DwtRole role : dwt.roles) {
    if (role == DwtRole::kCoefficient) ++coefficients;
  }
  EXPECT_EQ(pruned.graph.num_nodes() + coefficients, dwt.graph.num_nodes());

  // The pruned graph is a forest of n / 2^d binary in-trees: every node has
  // out-degree <= 1 and the sinks are the final averages.
  std::size_t sinks = 0;
  for (NodeId v = 0; v < pruned.graph.num_nodes(); ++v) {
    EXPECT_LE(pruned.graph.out_degree(v), 1u);
    if (pruned.graph.is_sink(v)) ++sinks;
    EXPECT_TRUE(pruned.graph.in_degree(v) == 0 ||
                pruned.graph.in_degree(v) == 2);
  }
  EXPECT_EQ(sinks, static_cast<std::size_t>(n >> d));

  // Mappings are mutually inverse.
  for (std::size_t i = 0; i < pruned.to_original.size(); ++i) {
    EXPECT_EQ(pruned.from_original[pruned.to_original[i]],
              static_cast<NodeId>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DwtStructureTest,
    ::testing::Values(std::tuple{2, 1}, std::tuple{4, 1}, std::tuple{4, 2},
                      std::tuple{8, 1}, std::tuple{8, 3}, std::tuple{12, 2},
                      std::tuple{16, 4}, std::tuple{24, 3}, std::tuple{32, 5},
                      std::tuple{48, 4}, std::tuple{64, 6},
                      std::tuple{256, 8}));

TEST(DwtGraph, LargeInstanceNodeCount) {
  const DwtGraph dwt = BuildDwt(256, 8);
  // 256 + 256 + 128 + ... + 2 = 256 + 510.
  EXPECT_EQ(dwt.graph.num_nodes(), 766u);
  EXPECT_EQ(dwt.layers.back().size(), 2u);
}

}  // namespace
}  // namespace wrbpg
