#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/analysis.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/wavelet_graph.h"
#include "exec/executor.h"
#include "exec/extended_kernels.h"
#include "exec/reference_kernels.h"
#include "schedulers/belady.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/layer_by_layer.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

TEST(WaveletParams, Validity) {
  EXPECT_TRUE(WaveletParamsValid(8, 3, 2));
  EXPECT_TRUE(WaveletParamsValid(16, 2, 4));
  EXPECT_TRUE(WaveletParamsValid(16, 3, 4));  // last level: 4 inputs = taps
  EXPECT_FALSE(WaveletParamsValid(16, 4, 4)); // last level: 2 < taps
  EXPECT_FALSE(WaveletParamsValid(12, 3, 2)); // 8 does not divide 12
  EXPECT_FALSE(WaveletParamsValid(16, 2, 1));
}

TEST(WaveletGraph, TapsTwoMatchesHaarStructure) {
  const WaveletGraph w = BuildWavelet(16, 3, 2);
  const DwtGraph dwt = BuildDwt(16, 3);
  EXPECT_EQ(w.graph.num_nodes(), dwt.graph.num_nodes());
  EXPECT_EQ(w.graph.num_edges(), dwt.graph.num_edges());
  EXPECT_EQ(w.graph.sources().size(), dwt.graph.sources().size());
  EXPECT_EQ(w.graph.sinks().size(), dwt.graph.sinks().size());
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    EXPECT_EQ(w.graph.in_degree(v) == 0, dwt.graph.in_degree(v) == 0);
  }
}

class WaveletStructureTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int, int>> {};

TEST_P(WaveletStructureTest, WindowsOverlapAsExpected) {
  const auto [n, d, taps] = GetParam();
  const WaveletGraph w = BuildWavelet(n, d, taps);
  // Non-input nodes read exactly `taps` operands.
  for (NodeId v = 0; v < w.graph.num_nodes(); ++v) {
    if (w.roles[v] == DwtRole::kInput) continue;
    EXPECT_EQ(w.graph.in_degree(v), static_cast<std::size_t>(taps));
    EXPECT_EQ(w.window_parents[v].size(), static_cast<std::size_t>(taps));
  }
  // For taps > 2 averages feed overlapping windows: out-degree above the
  // tree bound of 2 exists somewhere in every level below the last.
  if (taps > 2 && d >= 2) {
    bool overlap_seen = false;
    for (NodeId v : w.layers[1]) {
      if (w.graph.out_degree(v) > 2) overlap_seen = true;
    }
    EXPECT_TRUE(overlap_seen);
  }
  // Sinks: d coefficient bands plus final averages.
  std::size_t expected_sinks = 0;
  for (int l = 1; l <= d; ++l) {
    expected_sinks += static_cast<std::size_t>(n >> l);
  }
  expected_sinks += static_cast<std::size_t>(n >> d);
  EXPECT_EQ(w.graph.sinks().size(), expected_sinks);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WaveletStructureTest,
    ::testing::Values(std::tuple{8, 2, 2}, std::tuple{16, 2, 4},
                      std::tuple{16, 3, 4}, std::tuple{32, 3, 4},
                      std::tuple{32, 2, 6}, std::tuple{64, 4, 4}));

TEST(WaveletKernel, Db4FiltersAreOrthonormal) {
  const auto h = Db4Lowpass();
  const auto g = Db4Highpass();
  double hh = 0, gg = 0, hg = 0;
  for (std::size_t t = 0; t < h.size(); ++t) {
    hh += h[t] * h[t];
    gg += g[t] * g[t];
    hg += h[t] * g[t];
  }
  EXPECT_NEAR(hh, 1.0, 1e-12);
  EXPECT_NEAR(gg, 1.0, 1e-12);
  EXPECT_NEAR(hg, 0.0, 1e-12);
}

TEST(WaveletKernel, HaarFiltersReproduceDwtReference) {
  // taps = 2 with the Haar filters must agree with the Sec 3.1 reference.
  const WaveletGraph w = BuildWavelet(16, 3, 2);
  const DwtGraph dwt = BuildDwt(16, 3);
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  Rng rng(5);
  std::vector<double> signal(16);
  for (auto& s : signal) s = rng.UniformDouble();
  const auto wavelet_values = WaveletReferenceValues(
      w, signal, {inv_sqrt2, inv_sqrt2}, {inv_sqrt2, -inv_sqrt2});
  const auto dwt_values = DwtReferenceValues(dwt, signal);
  // Same layer layout (averages even/odd flip): compare level by level.
  for (std::size_t l = 1; l < w.layers.size(); ++l) {
    for (std::size_t j = 0; j < w.layers[l].size(); ++j) {
      EXPECT_NEAR(wavelet_values[w.layers[l][j]],
                  dwt_values[dwt.layers[l][j]], 1e-12)
          << "level " << l << " index " << j;
    }
  }
}

class WaveletScheduleTest : public ::testing::TestWithParam<int> {};

TEST_P(WaveletScheduleTest, HeuristicSchedulesComputeDb4Exactly) {
  const int taps = 4;
  const std::int64_t n = 32;
  const int d = GetParam();
  const WaveletGraph w = BuildWavelet(n, d, taps);
  const auto h = Db4Lowpass();
  const auto g = Db4Highpass();

  Rng rng(11);
  std::vector<double> signal(static_cast<std::size_t>(n));
  for (auto& s : signal) s = rng.UniformDouble() * 2.0 - 1.0;
  std::vector<double> sources(w.graph.num_nodes(), 0.0);
  for (std::size_t j = 0; j < signal.size(); ++j) {
    sources[w.layers[0][j]] = signal[j];
  }
  const auto expected = WaveletReferenceValues(w, signal, h, g);
  const NodeOp op = MakeWaveletNodeOp(w, h, g);

  const Weight budget = MinValidBudget(w.graph) + 128;
  LayerByLayerScheduler baseline(w.graph, w.layers);
  BeladyScheduler belady(w.graph);
  GreedyTopoScheduler greedy(w.graph);
  for (const Schedule& schedule :
       {baseline.Run(budget).schedule, belady.Run(budget).schedule,
        greedy.Run(budget).schedule}) {
    ASSERT_FALSE(schedule.empty());
    const SimResult sim = testing::ExpectValid(w.graph, budget, schedule);
    const ExecResult exec =
        ExecuteSchedule(w.graph, budget, schedule, op, sources);
    ASSERT_TRUE(exec.ok) << exec.error;
    EXPECT_EQ(exec.bits_loaded + exec.bits_stored, sim.cost);
    for (NodeId s : w.graph.sinks()) {
      EXPECT_DOUBLE_EQ(exec.slow_values[s], expected[s]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, WaveletScheduleTest, ::testing::Values(1, 2, 3));

TEST(WaveletSchedule, BeladyCompetitiveWithFifoBaseline) {
  // With taps = 4 every average is consumed by up to four windows. There is
  // no dominance theorem between furthest-next-use and FIFO eviction in the
  // weighted, store-aware game (FIFO occasionally wins a budget by one
  // spill), but informed eviction must stay competitive throughout and no
  // worse in aggregate.
  const WaveletGraph w = BuildWavelet(64, 3, 4);
  std::vector<NodeId> order;
  for (std::size_t li = 1; li < w.layers.size(); ++li) {
    std::vector<NodeId> layer = w.layers[li];
    if (li % 2 == 0) std::reverse(layer.begin(), layer.end());
    order.insert(order.end(), layer.begin(), layer.end());
  }
  BeladyScheduler belady(w.graph, order);
  LayerByLayerScheduler baseline(w.graph, w.layers);
  const Weight lo = MinValidBudget(w.graph);
  Weight belady_total = 0;
  Weight fifo_total = 0;
  for (Weight b = lo; b <= lo + 512; b += 64) {
    const Weight bb = belady.CostOnly(b);
    const Weight ll = baseline.CostOnly(b);
    ASSERT_LT(bb, kInfiniteCost);
    ASSERT_LT(ll, kInfiniteCost);
    EXPECT_LE(bb, ll + ll / 20) << "budget " << b;  // within 5%
    belady_total += bb;
    fifo_total += ll;
  }
  // Aggregate parity within 1% (measured gap: a single 16-bit spill).
  EXPECT_LE(belady_total, fifo_total + fifo_total / 100);
}

}  // namespace
}  // namespace wrbpg
