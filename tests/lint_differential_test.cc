// Differential tests pinning the lint engine's soundness contract against
// the simulator, which is the single source of truth for validity:
//
//   * kError contract: over every schedule — heuristic outputs, >= 500
//     FaultInjector mutants spanning four graph families, and random move
//     fuzz — lint.has_errors() iff Simulate() rejects, and the first
//     kError diagnostic carries the simulator's exact (code, move index,
//     node) triple. The lint path never calls Simulate().
//   * kWarning contract: applying the fix-its of a valid schedule keeps
//     it valid and never increases its cost, and the fixpoint leaves no
//     fixable warning behind.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/simulator.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "dataflows/random_dag.h"
#include "dataflows/tree_graph.h"
#include "lint/fixes.h"
#include "lint/lint.h"
#include "robust/fault_injector.h"
#include "schedulers/belady.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/kary_tree.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

struct DiffSeed {
  std::string name;
  Graph graph;
  Weight budget = 0;
  Schedule schedule;
};

std::vector<DiffSeed> DiffSeeds() {
  std::vector<DiffSeed> seeds;
  const Weight slacks[] = {0, 8, 64};

  for (const Weight slack : slacks) {
    const DwtGraph dwt = BuildDwt(16, 3);
    const Weight budget = MinValidBudget(dwt.graph) + slack;
    DwtOptimalScheduler sched(dwt);
    seeds.push_back({"dwt+" + std::to_string(slack), dwt.graph, budget,
                     sched.Run(budget).schedule});
  }
  for (const Weight slack : slacks) {
    const TreeGraph tree = BuildPerfectTree(2, 3);
    const Weight budget = MinValidBudget(tree.graph) + slack;
    KaryTreeScheduler sched(tree.graph);
    seeds.push_back({"kary+" + std::to_string(slack), tree.graph, budget,
                     sched.Run(budget).schedule});
  }
  for (const Weight slack : slacks) {
    const MvmGraph mvm = BuildMvm(4, 3);
    const Weight budget = MinValidBudget(mvm.graph) + slack;
    seeds.push_back({"mvm+" + std::to_string(slack), mvm.graph, budget,
                     BeladyScheduler(mvm.graph).Run(budget).schedule});
  }
  for (const Weight slack : slacks) {
    Rng rng(0xbadc0deu + static_cast<std::uint64_t>(slack));
    const Graph dag = BuildRandomDag(rng, {.num_layers = 4,
                                           .nodes_per_layer = 5,
                                           .max_in_degree = 3});
    const Weight budget = MinValidBudget(dag) + slack;
    seeds.push_back({"dag+" + std::to_string(slack), dag, budget,
                     GreedyTopoScheduler(dag).Run(budget).schedule});
  }
  return seeds;
}

// The core assertion: lint agrees with the simulator on validity, and on
// an invalid schedule the first kError mirrors the simulator's report.
void ExpectAgreesWithSimulator(const Graph& graph, Weight budget,
                               const Schedule& schedule) {
  const SimResult sim = Simulate(graph, budget, schedule);
  const LintResult lint = LintSchedule(graph, budget, schedule);
  ASSERT_EQ(lint.has_errors(), !sim.valid)
      << "lint/simulator validity disagreement; sim says: " << sim.error
      << "\n"
      << RenderLintResult(lint);
  if (sim.valid) return;
  const LintDiagnostic* first = lint.first_error();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->sim_code, sim.code)
      << "sim: " << sim.error << "\nlint: " << first->message;
  EXPECT_EQ(first->move_index, sim.error_index)
      << "sim: " << sim.error << "\nlint: " << first->message;
  EXPECT_EQ(first->node, sim.error_node)
      << "sim: " << sim.error << "\nlint: " << first->message;
}

TEST(LintDifferential, ErrorContractOverFaultInjectorCorpora) {
  std::size_t total = 0;
  std::size_t invalid = 0;
  for (const DiffSeed& seed : DiffSeeds()) {
    ASSERT_FALSE(seed.schedule.empty()) << seed.name;
    ASSERT_TRUE(Simulate(seed.graph, seed.budget, seed.schedule).valid)
        << seed.name;

    FaultInjector injector(seed.graph, seed.budget, seed.schedule);
    Rng rng(0x11117u);
    for (const FaultCase& fault : injector.Corpus(rng, 12)) {
      SCOPED_TRACE(seed.name + "/" + fault.label);
      ++total;
      if (!Simulate(seed.graph, fault.budget, fault.schedule).valid) {
        ++invalid;
      }
      ExpectAgreesWithSimulator(seed.graph, fault.budget, fault.schedule);
    }
  }
  EXPECT_GE(total, 500u) << "corpus too small to mean anything";
  // The corpus must actually exercise the error side of the contract.
  EXPECT_GE(invalid, total / 4) << "too few invalid mutants";
}

TEST(LintDifferential, ErrorContractOverRandomMoveFuzz) {
  // Unstructured move soup over a random DAG: nearly every sequence is
  // invalid, covering error codes the structured mutants rarely hit
  // (out-of-range nodes, computes of sources, deletes of nothing).
  Rng graph_rng(0xf00du);
  const Graph dag = BuildRandomDag(graph_rng, {.num_layers = 3,
                                               .nodes_per_layer = 4,
                                               .max_in_degree = 2});
  const Weight budget = MinValidBudget(dag) + 4;
  Rng rng(0xf1122u);
  for (int round = 0; round < 300; ++round) {
    Schedule s;
    const int len = static_cast<int>(rng.UniformInt(0, 24));
    for (int i = 0; i < len; ++i) {
      const auto type =
          static_cast<MoveType>(rng.UniformInt(0, 3));
      // Mostly in-range nodes, occasionally out of range.
      const NodeId v = static_cast<NodeId>(
          rng.UniformInt(0, static_cast<std::int64_t>(dag.num_nodes()) + 1));
      s.Append({type, v});
    }
    SCOPED_TRACE("round " + std::to_string(round));
    ExpectAgreesWithSimulator(dag, budget, s);
  }
}

TEST(LintDifferential, FixItContractOverValidSchedulesAndMutants) {
  std::size_t fixed_schedules = 0;
  for (const DiffSeed& seed : DiffSeeds()) {
    FaultInjector injector(seed.graph, seed.budget, seed.schedule);
    Rng rng(0x22227u);
    std::vector<FaultCase> cases = injector.Corpus(rng, 6);
    // The unmutated seed participates too.
    cases.push_back({FaultKind::kDropMove, 0, seed.schedule, seed.budget,
                     "unmutated"});
    for (const FaultCase& fault : cases) {
      const SimResult sim = Simulate(seed.graph, fault.budget, fault.schedule);
      if (!sim.valid) continue;  // warning contract is about valid inputs
      SCOPED_TRACE(seed.name + "/" + fault.label);

      const LintFixResult fixed =
          ApplyLintFixes(seed.graph, fault.budget, fault.schedule);
      ASSERT_TRUE(fixed.ok) << fixed.message;
      EXPECT_TRUE(fixed.verification.valid) << fixed.verification.error;
      EXPECT_EQ(fixed.cost_before, sim.cost);
      EXPECT_LE(fixed.cost_after, fixed.cost_before);

      // Independent re-verification: never trust the fixer's own replay.
      const SimResult fresh =
          Simulate(seed.graph, fault.budget, fixed.schedule);
      ASSERT_TRUE(fresh.valid) << fresh.error;
      EXPECT_EQ(fresh.cost, fixed.cost_after);

      // Fixpoint: no fixable warnings remain.
      const LintResult after =
          LintSchedule(seed.graph, fault.budget, fixed.schedule);
      EXPECT_FALSE(after.has_errors());
      for (const LintDiagnostic& d : after.diagnostics) {
        EXPECT_TRUE(d.severity != LintSeverity::kWarning || d.fixit.empty())
            << d.rule_id << ": " << d.message;
      }
      if (fixed.changed) ++fixed_schedules;
    }
  }
  // Greedy-topo seeds carry real spill churn, so some fixes must fire.
  EXPECT_GE(fixed_schedules, 1u);
}

}  // namespace
}  // namespace wrbpg
