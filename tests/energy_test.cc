#include <gtest/gtest.h>

#include "dataflows/dwt_graph.h"
#include "hardware/energy_model.h"
#include "hardware/sram_model.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/layer_by_layer.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

TEST(Energy, PerAccessEnergiesArePositiveAndWriteHeavier) {
  const SramMacro macro = SynthesizeSram(2048);
  EXPECT_GT(ReadEnergyPerWordNj(macro), 0.0);
  EXPECT_GT(WriteEnergyPerWordNj(macro), ReadEnergyPerWordNj(macro));
}

TEST(Energy, LargerMacroCostsMorePerAccess) {
  // Bigger arrays burn more dynamic power at similar rates.
  EXPECT_GT(ReadEnergyPerWordNj(SynthesizeSram(16384)),
            ReadEnergyPerWordNj(SynthesizeSram(256)));
}

TEST(Energy, ReportDecomposesAndSumsConsistently) {
  const SramMacro macro = SynthesizeSram(1024);
  const EnergyReport report = EstimateScheduleEnergy(macro, 1600, 800);
  EXPECT_GT(report.read_energy_nj, 0.0);
  EXPECT_GT(report.write_energy_nj, 0.0);
  EXPECT_GT(report.static_energy_nj, 0.0);
  EXPECT_NEAR(report.total_energy_nj,
              report.read_energy_nj + report.write_energy_nj +
                  report.static_energy_nj,
              1e-12);
  EXPECT_GT(report.execution_time_us, 0.0);
  EXPECT_GT(report.average_power_mw, 0.0);
}

TEST(Energy, TrafficScalesDynamicEnergyLinearly) {
  const SramMacro macro = SynthesizeSram(1024);
  const EnergyReport once = EstimateScheduleEnergy(macro, 1600, 800);
  const EnergyReport twice = EstimateScheduleEnergy(macro, 3200, 1600);
  EXPECT_NEAR(twice.read_energy_nj, 2.0 * once.read_energy_nj, 1e-9);
  EXPECT_NEAR(twice.write_energy_nj, 2.0 * once.write_energy_nj, 1e-9);
}

TEST(Energy, DutyCycleOnlyGrowsStaticShare) {
  const SramMacro macro = SynthesizeSram(1024);
  const EnergyReport tight = EstimateScheduleEnergy(macro, 1600, 800, 1.0);
  const EnergyReport idle = EstimateScheduleEnergy(macro, 1600, 800, 10.0);
  EXPECT_NEAR(idle.read_energy_nj, tight.read_energy_nj, 1e-12);
  EXPECT_NEAR(idle.static_energy_nj, 10.0 * tight.static_energy_nj, 1e-9);
  EXPECT_LT(idle.average_power_mw, tight.average_power_mw);
}

// The paper's bottom line, in joules: the optimal scheduler on its small
// SRAM consumes far less energy per DWT window than the baseline on its
// large one — both from reduced traffic and reduced leakage.
TEST(Energy, OptimalDwtWindowCheaperThanBaseline) {
  const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::Equal());
  DwtOptimalScheduler optimal(dwt);
  LayerByLayerScheduler baseline(dwt.graph, dwt.layers);

  const Weight opt_bits = optimal.MinMemoryForLowerBound(kWordBits, 1 << 17);
  const Weight base_bits = baseline.MinMemoryForLowerBound(kWordBits, 1 << 17);
  const SramMacro opt_macro = SynthesizeSram(PowerOfTwoCapacity(opt_bits));
  const SramMacro base_macro = SynthesizeSram(PowerOfTwoCapacity(base_bits));

  const Weight opt_cost = optimal.CostOnly(opt_bits);
  const Weight base_cost = baseline.CostOnly(base_bits);
  // Both run at their own minimum-memory point, so both I/O costs equal the
  // lower bound; the energy gap comes from the macro itself.
  EXPECT_EQ(opt_cost, base_cost);

  const EnergyReport opt_energy =
      EstimateScheduleEnergy(opt_macro, opt_cost / 2, opt_cost / 2, 4.0);
  const EnergyReport base_energy =
      EstimateScheduleEnergy(base_macro, base_cost / 2, base_cost / 2, 4.0);
  EXPECT_LT(opt_energy.total_energy_nj, 0.5 * base_energy.total_energy_nj);
}

}  // namespace
}  // namespace wrbpg
