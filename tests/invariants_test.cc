// Cross-cutting invariants of schedules and the simulator, checked over
// every scheduler on shared workloads. These are the contracts DESIGN.md §4
// promises for the whole library.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/simulator.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "schedulers/belady.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/layer_by_layer.h"
#include "schedulers/mvm_tiling.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

// Gather one schedule per scheduler for a shared DWT workload.
std::vector<std::pair<std::string, Schedule>> DwtSchedules(
    const DwtGraph& dwt, Weight budget) {
  std::vector<std::pair<std::string, Schedule>> out;
  DwtOptimalScheduler optimal(dwt);
  out.emplace_back("optimal", optimal.Run(budget).schedule);
  out.emplace_back("layer_by_layer",
                   LayerByLayerScheduler(dwt.graph, dwt.layers)
                       .Run(budget)
                       .schedule);
  out.emplace_back("belady", BeladyScheduler(dwt.graph).Run(budget).schedule);
  out.emplace_back("greedy",
                   GreedyTopoScheduler(dwt.graph).Run(budget).schedule);
  return out;
}

// Every prefix of a valid schedule is itself rule-abiding (only the stop
// condition may be unmet) — the simulator must accept it with the relaxed
// option and report monotone counters.
TEST(Invariants, EveryPrefixOfAValidScheduleIsRuleAbiding) {
  const DwtGraph dwt = BuildDwt(16, 4);
  const Weight budget = MinValidBudget(dwt.graph) + 32;
  for (const auto& [name, schedule] : DwtSchedules(dwt, budget)) {
    ASSERT_FALSE(schedule.empty()) << name;
    // Probe a spread of prefixes rather than all O(n^2) replays.
    for (std::size_t len = 0; len <= schedule.size();
         len += std::max<std::size_t>(1, schedule.size() / 7)) {
      Schedule prefix(std::vector<Move>(schedule.moves().begin(),
                                        schedule.moves().begin() +
                                            static_cast<std::ptrdiff_t>(len)));
      const SimResult sim = Simulate(dwt.graph, budget, prefix,
                                     {.require_stop_condition = false});
      EXPECT_TRUE(sim.valid) << name << " prefix " << len << ": " << sim.error;
      EXPECT_LE(sim.peak_red_weight, budget);
    }
  }
}

// Move-count accounting: loads+stores weight-sum equals the reported cost,
// and every delete has a preceding red placement.
TEST(Invariants, MoveAccountingConsistent) {
  const DwtGraph dwt = BuildDwt(32, 5, PrecisionConfig::DoubleAccumulator());
  const Weight budget = MinValidBudget(dwt.graph) + 64;
  for (const auto& [name, schedule] : DwtSchedules(dwt, budget)) {
    const SimResult sim = testing::ExpectValid(dwt.graph, budget, schedule);
    Weight by_hand = 0;
    std::size_t red_adds = 0, red_removes = 0;
    for (const Move& m : schedule) {
      switch (m.type) {
        case MoveType::kLoad:
          by_hand += dwt.graph.weight(m.node);
          ++red_adds;
          break;
        case MoveType::kStore:
          by_hand += dwt.graph.weight(m.node);
          break;
        case MoveType::kCompute:
          ++red_adds;
          break;
        case MoveType::kDelete:
          ++red_removes;
          break;
      }
    }
    EXPECT_EQ(by_hand, sim.cost) << name;
    EXPECT_LE(red_removes, red_adds) << name;
    if (sim.final_red_weight == 0) {
      EXPECT_EQ(red_adds, red_removes) << name;
    }
  }
}

// All full-game schedulers leave fast memory empty — the contract
// core/compose.h relies on for stitching.
TEST(Invariants, SchedulersEndWithEmptyFastMemory) {
  const DwtGraph dwt = BuildDwt(16, 4);
  const Weight budget = MinValidBudget(dwt.graph) + 32;
  for (const auto& [name, schedule] : DwtSchedules(dwt, budget)) {
    const SimResult sim = testing::ExpectValid(dwt.graph, budget, schedule);
    EXPECT_EQ(sim.final_red_weight, 0) << name;
  }
  const MvmGraph mvm = BuildMvm(6, 5, PrecisionConfig::DoubleAccumulator());
  MvmTilingScheduler tiling(mvm);
  const Weight b = tiling.MinMemoryForLowerBound();
  const SimResult sim =
      testing::ExpectValid(mvm.graph, b, tiling.Run(b).schedule);
  EXPECT_EQ(sim.final_red_weight, 0);
}

// Stores never touch sources and loads never touch values that were not
// previously stored or initial — a structural audit of every schedule.
TEST(Invariants, NoRedundantOrDanglingTransfers) {
  const DwtGraph dwt = BuildDwt(16, 4);
  const Weight budget = MinValidBudget(dwt.graph) + 16;
  for (const auto& [name, schedule] : DwtSchedules(dwt, budget)) {
    std::vector<unsigned char> blue(dwt.graph.num_nodes(), 0);
    for (NodeId v : dwt.graph.sources()) blue[v] = 1;
    for (const Move& m : schedule) {
      if (m.type == MoveType::kStore) {
        EXPECT_FALSE(dwt.graph.is_source(m.node))
            << name << ": stored a source";
        blue[m.node] = 1;
      } else if (m.type == MoveType::kLoad) {
        EXPECT_TRUE(blue[m.node]) << name << ": loaded an unstored value";
      }
    }
  }
}

// Budget monotonicity of the full stack at the workload level: giving any
// scheduler more memory never costs more I/O on the evaluation graphs.
TEST(Invariants, MoreMemoryNeverHurtsOnEvaluationWorkloads) {
  const DwtGraph dwt = BuildDwt(64, 6, PrecisionConfig::DoubleAccumulator());
  DwtOptimalScheduler optimal(dwt);
  BeladyScheduler belady(dwt.graph);
  const Weight lo = MinValidBudget(dwt.graph);
  Weight prev_opt = kInfiniteCost;
  for (Weight b = lo; b <= lo + 768; b += 96) {
    const Weight o = optimal.CostOnly(b);
    EXPECT_LE(o, prev_opt);
    prev_opt = o;
    // Heuristics are not provably monotone; they must stay within the
    // greedy envelope instead.
    EXPECT_LE(belady.CostOnly(b),
              GreedyTopoScheduler(dwt.graph).CostOnly(b));
  }
}

}  // namespace
}  // namespace wrbpg
