// Exhaustive admissibility proof-by-enumeration for core/state_bound —
// the A* heuristic of the exact engine (DESIGN.md §9).
//
// For every (red, blue) pebbling configuration of several small graphs,
// the bound must never exceed the true remaining optimal cost computed by
// the uninformed Dijkstra engine started from that configuration, and an
// infinite bound must coincide with genuine infeasibility. Graphs small
// enough are swept over ALL 4^n mask pairs; larger ones over a
// deterministic random sample.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/analysis.h"
#include "core/move.h"
#include "core/schedule.h"
#include "core/simulator.h"
#include "core/state_bound.h"
#include "dataflows/butterfly_graph.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/tree_graph.h"
#include "robust/fault_injector.h"
#include "schedulers/brute_force.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

using testing::MakeChain;
using testing::MakeDiamond;

Weight RedWeight(const Graph& graph, std::uint32_t red) {
  Weight sum = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if ((red >> v) & 1u) sum += graph.weight(v);
  }
  return sum;
}

// The ground truth h must stay below: remaining optimal cost from
// (red, blue), by the engine that uses no heuristic at all.
Weight TrueRemainingCost(const BruteForceScheduler& scheduler, Weight budget,
                         std::uint32_t red, std::uint32_t blue) {
  BruteForceOptions options;
  options.engine = SearchEngine::kDijkstra;
  options.initial_red = red;
  options.initial_blue = blue;
  options.threads = 1;
  return scheduler.CostOnly(budget, options);
}

void CheckPair(const Graph& graph, const BruteForceScheduler& scheduler,
               const StateBound& bound, Weight budget, std::uint32_t red,
               std::uint32_t blue, const std::string& label) {
  if (RedWeight(graph, red) > budget) return;  // not a reachable state
  const Weight h = bound.Evaluate(red, blue);
  const Weight truth = TrueRemainingCost(scheduler, budget, red, blue);
  if (h >= kInfiniteCost) {
    EXPECT_GE(truth, kInfiniteCost)
        << label << ": h claims dead state at red=" << red
        << " blue=" << blue << " but optimal completion costs " << truth;
  } else {
    EXPECT_LE(h, truth) << label << ": inadmissible bound at red=" << red
                        << " blue=" << blue;
  }
}

void CheckGraph(const Graph& graph, Weight budget,
                const std::string& label) {
  ASSERT_LE(graph.num_nodes(), 32u) << label;
  const BruteForceScheduler scheduler(graph);
  const StateBound bound(graph, budget, /*required_red=*/0,
                         /*require_sinks_blue=*/true);
  const NodeId n = graph.num_nodes();
  if (n <= 6) {
    const std::uint32_t limit = 1u << n;
    for (std::uint32_t red = 0; red < limit; ++red) {
      for (std::uint32_t blue = 0; blue < limit; ++blue) {
        CheckPair(graph, scheduler, bound, budget, red, blue, label);
      }
    }
  } else {
    Rng rng(2026);
    const std::uint32_t mask = (n >= 32 ? ~0u : (1u << n) - 1u);
    for (int i = 0; i < 1500; ++i) {
      const std::uint32_t red = static_cast<std::uint32_t>(rng.Next()) & mask;
      const std::uint32_t blue =
          static_cast<std::uint32_t>(rng.Next()) & mask;
      CheckPair(graph, scheduler, bound, budget, red, blue, label);
    }
  }
}

TEST(StateBound, AdmissibleOnDiamondExhaustive) {
  const Graph graph = MakeDiamond({2, 3, 1, 2, 4});
  const Weight lo = MinValidBudget(graph);
  for (const Weight budget : {lo, lo + 2, 2 * lo}) {
    CheckGraph(graph, budget, "diamond budget=" + std::to_string(budget));
  }
}

TEST(StateBound, AdmissibleOnChainExhaustive) {
  const Graph graph = MakeChain(5, 2);
  const Weight lo = MinValidBudget(graph);
  for (const Weight budget : {lo, lo + 1}) {
    CheckGraph(graph, budget, "chain5 budget=" + std::to_string(budget));
  }
}

TEST(StateBound, AdmissibleOnKaryTreeExhaustive) {
  const TreeGraph tree = BuildPerfectTree(2, 2);
  const Weight lo = MinValidBudget(tree.graph);
  CheckGraph(tree.graph, lo + 2, "kary(2,2)");
}

TEST(StateBound, AdmissibleOnDwtSampled) {
  const DwtGraph dwt = BuildDwt(4, 2);
  const Weight lo = MinValidBudget(dwt.graph);
  CheckGraph(dwt.graph, lo + 2, "dwt(4,2)");
}

TEST(StateBound, AdmissibleOnButterflySampled) {
  const ButterflyGraph fly = BuildButterfly(4);
  const Weight lo = MinValidBudget(fly.graph);
  CheckGraph(fly.graph, lo + 1, "butterfly(4)");
}

// At the canonical start state the bound reproduces Proposition 2.4.
TEST(StateBound, StartBoundIsAlgorithmicLowerBound) {
  const Graph graph = MakeDiamond({2, 3, 1, 2, 4});
  const StateBound bound(graph, MinValidBudget(graph) + 4, 0, true);
  EXPECT_EQ(bound.StartBound(), AlgorithmicLowerBound(graph));
}

// Once every sink is blue nothing more is owed, whatever else happened.
TEST(StateBound, GoalStatesCostZero) {
  const Graph graph = MakeDiamond();
  const StateBound bound(graph, MinValidBudget(graph), 0, true);
  std::uint32_t sinks = 0;
  for (const NodeId s : graph.sinks()) sinks |= 1u << s;
  for (std::uint32_t red = 0; red < (1u << graph.num_nodes()); ++red) {
    EXPECT_EQ(bound.Evaluate(red, sinks | 0x3u), 0u) << "red=" << red;
  }
}

// A needed source that is neither red nor blue can never be loaded: the
// bound must flag the state as dead rather than underestimate it.
TEST(StateBound, DetectsUnloadableSourceAsDead) {
  const Graph graph = MakeChain(3);
  const StateBound bound(graph, MinValidBudget(graph) + 2, 0, true);
  // Nothing red, nothing blue: source 0 is required but unreachable.
  EXPECT_GE(bound.Evaluate(0, 0), kInfiniteCost);
}

// A needed compute whose Prop 2.3 footprint exceeds the budget can never
// fire; the state is dead even though every source is available.
TEST(StateBound, DetectsOverweightComputeAsDead) {
  const Graph graph = MakeDiamond({1, 1, 1, 1, 10});
  std::uint32_t sources = 0;
  for (const NodeId s : graph.sources()) sources |= 1u << s;
  // Budget below w4 + w2 + w3 = 12: the sink's compute can never fire.
  const StateBound bound(graph, 11, 0, true);
  EXPECT_GE(bound.Evaluate(0, sources), kInfiniteCost);
}

// The word-span Evaluate overload (the >32-node wide path) must agree
// with the packed one bit for bit wherever both are defined. Random
// (red, blue) pairs over several <= 32-node graphs pin the differential.
TEST(StateBound, WideEvaluateMatchesPackedOnRandomPairs) {
  struct Case {
    std::string name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"diamond", MakeDiamond({2, 3, 1, 2, 4})});
  cases.push_back({"chain5", MakeChain(5, 2)});
  cases.push_back({"dwt(4,2)", BuildDwt(4, 2).graph});
  cases.push_back({"butterfly(4)", BuildButterfly(4).graph});

  Rng rng(0x51deb0u);
  for (const Case& c : cases) {
    const NodeId n = c.graph.num_nodes();
    const std::uint32_t mask =
        (n >= 32 ? ~0u : (1u << n) - 1u);
    for (const Weight budget :
         {MinValidBudget(c.graph), MinValidBudget(c.graph) + 3}) {
      const StateBound bound(c.graph, budget, /*required_red=*/0,
                             /*require_sinks_blue=*/true);
      StateBound::WideScratch scratch;
      for (int i = 0; i < 500; ++i) {
        const std::uint32_t red =
            static_cast<std::uint32_t>(rng.Next()) & mask;
        const std::uint32_t blue =
            static_cast<std::uint32_t>(rng.Next()) & mask;
        const std::uint64_t wide_red[1] = {red};
        const std::uint64_t wide_blue[1] = {blue};
        EXPECT_EQ(bound.Evaluate(red, blue),
                  bound.Evaluate(wide_red, wide_blue, scratch))
            << c.name << " budget=" << budget << " red=" << red
            << " blue=" << blue;
      }
    }
  }
}

// Past 32 nodes only the wide path exists; StartBound must still
// reproduce Proposition 2.4 (and flag a sub-footprint budget as dead).
TEST(StateBound, StartBoundBeyond32Nodes) {
  const Graph graph = MakeChain(40, 2);
  const StateBound bound(graph, MinValidBudget(graph) + 2, 0, true);
  EXPECT_EQ(bound.StartBound(), AlgorithmicLowerBound(graph));
  const StateBound starved(graph, 1, 0, true);
  EXPECT_GE(starved.StartBound(), kInfiniteCost);
}

// ---- Incremental-vs-fresh differential (DESIGN.md §14) ----
//
// The exact engine never re-runs the full closure walk for a successor it
// can derive incrementally: Prepare() caches the parent's closure and
// EvaluateMove() applies the per-move deltas of the state_bound.h move
// table. These tests pin EvaluateMove ≡ fresh Evaluate for EVERY legal
// move from every (red, blue) pair of several small graphs — packed and
// word-span paths both — so the deltas (including the M3 invariance
// proof) can never drift from the ground-truth walk.

constexpr MoveType kAllMoveTypes[] = {MoveType::kLoad, MoveType::kStore,
                                      MoveType::kCompute, MoveType::kDelete};

void CheckIncrementalGraph(const Graph& graph, Weight budget,
                           const std::string& label) {
  ASSERT_LE(graph.num_nodes(), 32u) << label;
  const StateBound bound(graph, budget, /*required_red=*/0,
                         /*require_sinks_blue=*/true);
  StateBound::WideScratch scratch;
  const NodeId n = graph.num_nodes();
  std::uint32_t sources = 0;
  for (const NodeId s : graph.sources()) sources |= 1u << s;
  std::vector<std::uint32_t> parents(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId p : graph.parents(v)) parents[v] |= 1u << p;
  }

  auto check_pair = [&](std::uint32_t red, std::uint32_t blue) {
    const Weight red_weight = RedWeight(graph, red);
    if (red_weight > budget) return;  // not a reachable state
    StateBound::PackedCtx ctx;
    bound.Prepare(red, blue, ctx);
    const std::uint64_t wred[1] = {red};
    const std::uint64_t wblue[1] = {blue};
    StateBound::WideCtx wctx;
    bound.Prepare(wred, wblue, wctx, scratch);
    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t bit = 1u << v;
      const Weight w = graph.weight(v);
      for (const MoveType type : kAllMoveTypes) {
        bool legal = false;
        std::uint32_t nred = red;
        std::uint32_t nblue = blue;
        switch (type) {
          case MoveType::kLoad:
            legal = (blue & bit) != 0 && (red & bit) == 0 &&
                    red_weight + w <= budget;
            nred |= bit;
            break;
          case MoveType::kStore:
            legal = (red & bit) != 0 && (blue & bit) == 0;
            nblue |= bit;
            break;
          case MoveType::kCompute:
            legal = (sources & bit) == 0 && (red & bit) == 0 &&
                    (parents[v] & ~red) == 0 && red_weight + w <= budget;
            nred |= bit;
            break;
          case MoveType::kDelete:
            legal = (red & bit) != 0;
            nred &= ~bit;
            break;
        }
        if (!legal) continue;  // EvalMove* preconditions require legality
        EXPECT_EQ(bound.EvaluateMove(ctx, type, v),
                  bound.Evaluate(nred, nblue))
            << label << ": packed " << ToString(Move{type, v})
            << " from red=" << red << " blue=" << blue;
        const std::uint64_t wnred[1] = {nred};
        const std::uint64_t wnblue[1] = {nblue};
        const Weight inc =
            bound.EvaluateMove(wctx, wred, wblue, type, v, scratch);
        EXPECT_EQ(inc, bound.Evaluate(wnred, wnblue, scratch))
            << label << ": wide " << ToString(Move{type, v})
            << " from red=" << red << " blue=" << blue;
      }
    }
  };

  if (n <= 7) {
    const std::uint32_t limit = 1u << n;
    for (std::uint32_t red = 0; red < limit; ++red) {
      for (std::uint32_t blue = 0; blue < limit; ++blue) {
        check_pair(red, blue);
      }
    }
  } else {
    Rng rng(2026);
    const std::uint32_t mask = (n >= 32 ? ~0u : (1u << n) - 1u);
    for (int i = 0; i < 1500; ++i) {
      check_pair(static_cast<std::uint32_t>(rng.Next()) & mask,
                 static_cast<std::uint32_t>(rng.Next()) & mask);
    }
  }
}

TEST(StateBoundIncremental, MatchesFreshOnDiamondExhaustive) {
  const Graph graph = MakeDiamond({2, 3, 1, 2, 4});
  const Weight lo = MinValidBudget(graph);
  for (const Weight budget : {lo, lo + 3}) {
    CheckIncrementalGraph(graph, budget,
                          "diamond budget=" + std::to_string(budget));
  }
}

TEST(StateBoundIncremental, MatchesFreshOnChainExhaustive) {
  const Graph graph = MakeChain(5, 2);
  const Weight lo = MinValidBudget(graph);
  for (const Weight budget : {lo, lo + 3}) {
    CheckIncrementalGraph(graph, budget,
                          "chain5 budget=" + std::to_string(budget));
  }
}

TEST(StateBoundIncremental, MatchesFreshOnKaryTreeExhaustive) {
  const TreeGraph tree = BuildPerfectTree(2, 2);
  const Weight lo = MinValidBudget(tree.graph);
  CheckIncrementalGraph(tree.graph, lo + 2, "kary(2,2)");
}

TEST(StateBoundIncremental, MatchesFreshOnDwtSampled) {
  const DwtGraph dwt = BuildDwt(4, 2);
  const Weight lo = MinValidBudget(dwt.graph);
  CheckIncrementalGraph(dwt.graph, lo + 2, "dwt(4,2)");
}

// Beyond 32 nodes only the word-span path exists, and the searcher's wide
// states come from real (possibly perturbed) executions rather than
// uniform masks. Replay a valid 40-node chain schedule plus a
// FaultInjector corpus of near-valid mutants, collect every distinct
// prefix configuration (200+ of them), and pin wide EvaluateMove ≡ fresh
// wide Evaluate for every legal move out of each.
TEST(StateBoundIncremental, WideMatchesFreshOnFaultInjectedStates) {
  const Graph graph = MakeChain(40, 2);
  const Weight budget = MinValidBudget(graph) + 2;
  ASSERT_EQ(StateBound(graph, budget, 0, true).WordsPerColor(), 1u);

  // Load the source, then walk the chain: compute each node, store it,
  // and drop its parent. Valid, touches every move type, and leaves a
  // blue-rich trail so store-deleting mutants diverge everywhere.
  std::vector<Move> moves;
  moves.push_back(Load(0));
  for (NodeId v = 1; v < 40; ++v) {
    moves.push_back(Compute(v));
    moves.push_back(Store(v));
    moves.push_back(Delete(v - 1));
  }
  const Schedule schedule(std::move(moves));
  ASSERT_TRUE(Simulate(graph, budget, schedule).valid);

  const NodeId n = graph.num_nodes();
  std::uint64_t sources = 0;
  for (const NodeId s : graph.sources()) sources |= 1ull << s;
  std::vector<std::uint64_t> parents(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId p : graph.parents(v)) parents[v] |= 1ull << p;
  }
  // Mirrors the simulator's per-move legality (incl. the budget check).
  auto legal = [&](std::uint64_t red, std::uint64_t blue, Weight red_weight,
                   Weight b, MoveType type, NodeId v) {
    const std::uint64_t bit = 1ull << v;
    switch (type) {
      case MoveType::kLoad:
        return (blue & bit) != 0 && (red & bit) == 0 &&
               red_weight + graph.weight(v) <= b;
      case MoveType::kStore:
        return (red & bit) != 0 && (blue & bit) == 0;
      case MoveType::kCompute:
        return (sources & bit) == 0 && (red & bit) == 0 &&
               (parents[v] & ~red) == 0 && red_weight + graph.weight(v) <= b;
      case MoveType::kDelete:
        return (red & bit) != 0;
    }
    return false;
  };

  StateBound::WideScratch scratch;
  std::set<std::tuple<Weight, std::uint64_t, std::uint64_t>> seen;
  std::size_t states_checked = 0;

  auto check_state = [&](const StateBound& bound, Weight b, std::uint64_t red,
                         std::uint64_t blue, Weight red_weight,
                         const std::string& label) {
    if (!seen.insert({b, red, blue}).second) return;
    ++states_checked;
    StateBound::WideCtx ctx;
    bound.Prepare(&red, &blue, ctx, scratch);
    for (NodeId v = 0; v < n; ++v) {
      const std::uint64_t bit = 1ull << v;
      for (const MoveType type : kAllMoveTypes) {
        if (!legal(red, blue, red_weight, b, type, v)) continue;
        std::uint64_t nred = red;
        std::uint64_t nblue = blue;
        if (type == MoveType::kStore) {
          nblue |= bit;
        } else if (type == MoveType::kDelete) {
          nred &= ~bit;
        } else {
          nred |= bit;
        }
        const Weight inc =
            bound.EvaluateMove(ctx, &red, &blue, type, v, scratch);
        EXPECT_EQ(inc, bound.Evaluate(&nred, &nblue, scratch))
            << label << ": " << ToString(Move{type, v}) << " from red=" << red
            << " blue=" << blue;
      }
    }
  };

  // Replay one (schedule, budget) pair, checking every prefix state and
  // stopping at the first illegal move (mutants are near-valid, not valid).
  auto replay = [&](const Schedule& sched, Weight b, const std::string& label) {
    const StateBound bound(graph, b, /*required_red=*/0,
                           /*require_sinks_blue=*/true);
    std::uint64_t red = 0;
    std::uint64_t blue = sources;
    Weight red_weight = 0;
    check_state(bound, b, red, blue, red_weight, label);
    for (std::size_t i = 0; i < sched.size(); ++i) {
      const Move& m = sched[i];
      if (m.node >= n || !legal(red, blue, red_weight, b, m.type, m.node)) {
        break;
      }
      const std::uint64_t bit = 1ull << m.node;
      switch (m.type) {
        case MoveType::kLoad:
        case MoveType::kCompute:
          red |= bit;
          red_weight += graph.weight(m.node);
          break;
        case MoveType::kStore:
          blue |= bit;
          break;
        case MoveType::kDelete:
          red &= ~bit;
          red_weight -= graph.weight(m.node);
          break;
      }
      check_state(bound, b, red, blue, red_weight, label);
    }
  };

  replay(schedule, budget, "baseline");
  const FaultInjector injector(graph, budget, schedule);
  Rng rng(0xf417u);
  for (const FaultCase& fc : injector.Corpus(rng, 12)) {
    replay(fc.schedule, fc.budget, fc.label);
  }
  EXPECT_GE(states_checked, 200u);
}

// required_red feeds the need closure even when every sink is stored.
TEST(StateBound, RequiredRedChargesLoads) {
  const Graph graph = MakeChain(3, 2);
  std::uint32_t all = (1u << graph.num_nodes()) - 1u;
  const StateBound bound(graph, MinValidBudget(graph) + 2,
                         /*required_red=*/1u << 0,
                         /*require_sinks_blue=*/false);
  // All blue, nothing red: node 0 (a source) must be re-loaded, cost 2.
  EXPECT_EQ(bound.Evaluate(0, all), 2u);
}

}  // namespace
}  // namespace wrbpg
