// Differential tests for the DESIGN.md §8 determinism contract: for any
// (graph, budget, options), the brute-force search and the analysis-layer
// budget scans return BIT-IDENTICAL results at every thread count — same
// feasibility, same cost, same move sequence. The parallel paths share no
// tie-break with luck: they reconstruct the canonical schedule from the
// same distance map the sequential run computes.
//
// Coverage: four graph families at several budgets, the
// FindMinimumFastMemory linear scan, and 200+ search problems derived
// from FaultInjector corpora (mutated budgets and mid-schedule memory
// states make the search land on infeasible, trivial, and adversarial
// instances alike).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "dataflows/butterfly_graph.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/random_dag.h"
#include "dataflows/tree_graph.h"
#include "robust/fault_injector.h"
#include "schedulers/belady.h"
#include "schedulers/brute_force.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

using testing::ExpectValid;
using testing::MakeChain;
using testing::MakeDiamond;

// Asserts the full result triple (feasibility, cost, schedule) matches.
void ExpectIdentical(const ScheduleResult& seq, const ScheduleResult& par,
                     const std::string& label) {
  EXPECT_EQ(seq.feasible, par.feasible) << label;
  EXPECT_EQ(seq.timed_out, par.timed_out) << label;
  EXPECT_EQ(seq.cost, par.cost) << label;
  EXPECT_TRUE(seq.schedule == par.schedule)
      << label << ": schedules differ\nseq:\n"
      << seq.schedule.ToString() << "par:\n"
      << par.schedule.ToString();
}

void ExpectIdenticalAcrossThreadCounts(const Graph& graph, Weight budget,
                                       const std::string& label) {
  const BruteForceScheduler scheduler(graph);
  BruteForceOptions options;
  options.threads = 1;
  const ScheduleResult seq = scheduler.Run(budget, options);
  for (const std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    const ScheduleResult par = scheduler.Run(budget, options);
    ExpectIdentical(seq, par,
                    label + " threads=" + std::to_string(threads));
  }
  if (seq.feasible) {
    const SimResult sim = ExpectValid(graph, budget, seq.schedule);
    EXPECT_EQ(sim.cost, seq.cost) << label;
  }
}

TEST(ParallelDeterminism, DwtFamily) {
  const DwtGraph dwt = BuildDwt(4, 2);
  const Weight lo = MinValidBudget(dwt.graph);
  for (const Weight budget : {lo, lo + 1, lo + 3, 2 * lo}) {
    ExpectIdenticalAcrossThreadCounts(
        dwt.graph, budget, "dwt(4,2) budget=" + std::to_string(budget));
  }
}

TEST(ParallelDeterminism, KaryTreeFamily) {
  const TreeGraph tree = BuildPerfectTree(2, 2);
  const Weight lo = MinValidBudget(tree.graph);
  for (const Weight budget : {lo, lo + 2, 2 * lo}) {
    ExpectIdenticalAcrossThreadCounts(
        tree.graph, budget, "kary(2,2) budget=" + std::to_string(budget));
  }
}

TEST(ParallelDeterminism, ButterflyFamily) {
  const ButterflyGraph fly = BuildButterfly(4);
  const Weight lo = MinValidBudget(fly.graph);
  for (const Weight budget : {lo, lo + 1}) {
    ExpectIdenticalAcrossThreadCounts(
        fly.graph, budget, "butterfly(4) budget=" + std::to_string(budget));
  }
}

TEST(ParallelDeterminism, RandomDagFamily) {
  Rng rng(2026);
  RandomDagOptions options;
  options.num_layers = 3;
  options.nodes_per_layer = 3;
  options.max_in_degree = 2;
  for (int instance = 0; instance < 3; ++instance) {
    const Graph graph = BuildRandomDag(rng, options);
    const Weight lo = MinValidBudget(graph);
    for (const Weight budget : {lo, lo + 4}) {
      ExpectIdenticalAcrossThreadCounts(
          graph, budget,
          "random-dag#" + std::to_string(instance) +
              " budget=" + std::to_string(budget));
    }
  }
}

TEST(ParallelDeterminism, InfeasibleBudgetAgrees) {
  const Graph graph = MakeDiamond();
  ExpectIdenticalAcrossThreadCounts(graph, MinValidBudget(graph) - 1,
                                    "diamond infeasible");
}

TEST(ParallelDeterminism, MinimumFastMemoryLinearScan) {
  const TreeGraph tree = BuildPerfectTree(2, 2);
  const BruteForceScheduler scheduler(tree.graph);
  const CostFn cost_fn = [&](Weight budget) {
    return scheduler.CostOnly(budget);
  };
  const Weight target = AlgorithmicLowerBound(tree.graph);
  MinMemoryOptions options;
  options.lo = 1;
  options.hi = MinValidBudget(tree.graph) + 16;
  options.monotone = false;
  options.threads = 1;
  const auto seq = FindMinimumFastMemory(cost_fn, target, options);
  for (const std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    const auto par = FindMinimumFastMemory(cost_fn, target, options);
    EXPECT_EQ(seq, par) << "threads=" << threads;
  }
  ASSERT_TRUE(seq.has_value());
}

TEST(ParallelDeterminism, BudgetSweepIdentical) {
  const TreeGraph tree = BuildPerfectTree(2, 2);
  const BruteForceScheduler scheduler(tree.graph);
  const CostFn cost_fn = [&](Weight budget) {
    return scheduler.CostOnly(budget);
  };
  std::vector<Weight> budgets;
  const Weight lo = MinValidBudget(tree.graph);
  for (Weight b = lo - 1; b <= lo + 12; ++b) budgets.push_back(b);
  BudgetSweepOptions options;
  options.threads = 1;
  const std::vector<Weight> seq = EvaluateBudgets(cost_fn, budgets, options);
  for (const std::size_t threads : {2u, 8u}) {
    options.threads = threads;
    EXPECT_EQ(EvaluateBudgets(cost_fn, budgets, options), seq)
        << "threads=" << threads;
  }
}

// Replays the first `len` moves of a schedule known to be valid, returning
// the resulting (red, blue) masks for use as a brute-force initial state.
struct PebbleMasks {
  std::uint64_t red = 0;
  std::uint64_t blue = 0;
};

PebbleMasks ReplayPrefix(const Graph& graph, const Schedule& schedule,
                         std::size_t len) {
  PebbleMasks masks;
  for (const NodeId v : graph.sources()) masks.blue |= std::uint64_t{1} << v;
  for (std::size_t i = 0; i < len && i < schedule.size(); ++i) {
    const Move& move = schedule[i];
    const std::uint64_t bit = std::uint64_t{1} << move.node;
    switch (move.type) {
      case MoveType::kLoad:
      case MoveType::kCompute:
        masks.red |= bit;
        break;
      case MoveType::kStore:
        masks.blue |= bit;
        break;
      case MoveType::kDelete:
        masks.red &= ~bit;
        break;
    }
  }
  return masks;
}

// 200+ differential cases: every FaultInjector mutant of a few base
// schedules becomes a fresh search problem — the mutant's (possibly
// tightened) budget plus the memory state reached just before the fault
// site. Thread counts 1 and 8 must agree on all of them.
TEST(ParallelDeterminism, FaultInjectorDerivedCases) {
  struct Base {
    std::string name;
    Graph graph;
    Weight budget = 0;
  };
  std::vector<Base> bases;
  bases.push_back({"diamond", MakeDiamond({2, 3, 1, 2, 4}), 0});
  bases.push_back({"chain6", MakeChain(6, 2), 0});
  bases.push_back({"dwt(4,1)", BuildDwt(4, 1).graph, 0});
  bases.push_back({"kary(2,2)", BuildPerfectTree(2, 2).graph, 0});

  Rng rng(7);
  int cases_run = 0;
  for (Base& base : bases) {
    base.budget = MinValidBudget(base.graph) + 2;
    const ScheduleResult seed = BeladyScheduler(base.graph).Run(base.budget);
    ASSERT_TRUE(seed.feasible) << base.name;
    ExpectValid(base.graph, base.budget, seed.schedule);

    const FaultInjector injector(base.graph, base.budget, seed.schedule);
    const std::vector<FaultCase> corpus = injector.Corpus(rng, 12);
    const BruteForceScheduler scheduler(base.graph);
    for (const FaultCase& fault : corpus) {
      const PebbleMasks masks =
          ReplayPrefix(base.graph, seed.schedule, fault.position);
      BruteForceOptions options;
      options.initial_red = masks.red;
      options.initial_blue = masks.blue;
      options.threads = 1;
      const ScheduleResult seq = scheduler.Run(fault.budget, options);
      options.threads = 8;
      const ScheduleResult par = scheduler.Run(fault.budget, options);
      ExpectIdentical(seq, par, base.name + " " + fault.label);
      ++cases_run;
    }
  }
  EXPECT_GE(cases_run, 200) << "fault corpus shrank; widen per_kind";
}

}  // namespace
}  // namespace wrbpg
