#include <gtest/gtest.h>

#include <tuple>

#include "dataflows/mvm_graph.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

// Figure 4a: MVM(3, 2).
TEST(MvmGraph, MatchesFigure4a) {
  const MvmGraph mvm = BuildMvm(3, 2);
  const Graph& g = mvm.graph;
  // Inputs: 3*2 matrix + 2 vector = 8; products: 6; accumulators: 3.
  EXPECT_EQ(g.num_nodes(), 8u + 6u + 3u);
  EXPECT_EQ(g.sources().size(), 8u);
  EXPECT_EQ(g.sinks().size(), 3u);

  // Each vector input feeds the m products of its column.
  EXPECT_EQ(g.out_degree(mvm.x(0)), 3u);
  EXPECT_EQ(g.out_degree(mvm.x(1)), 3u);
  // Each matrix input feeds exactly its own product.
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 2; ++c) {
      ASSERT_EQ(g.out_degree(mvm.a(r, c)), 1u);
      EXPECT_EQ(g.children(mvm.a(r, c))[0], mvm.product(r, c));
    }
  }
  // Outputs sum the two products of the row.
  for (std::int64_t r = 0; r < 3; ++r) {
    const NodeId y = mvm.output(r);
    ASSERT_EQ(g.in_degree(y), 2u);
    EXPECT_TRUE(g.is_sink(y));
  }
}

// Figure 4b: MVM(2, 3) — three-layer accumulation chain.
TEST(MvmGraph, MatchesFigure4b) {
  const MvmGraph mvm = BuildMvm(2, 3);
  const Graph& g = mvm.graph;
  EXPECT_EQ(g.num_nodes(), (2u * 3u + 3u) + 6u + 4u);
  for (std::int64_t r = 0; r < 2; ++r) {
    // Chain: acc(r,1) reads product(r,0) and product(r,1);
    //        acc(r,2) reads acc(r,1) and product(r,2).
    const NodeId first = mvm.accumulator(r, 1);
    const NodeId second = mvm.accumulator(r, 2);
    ASSERT_EQ(g.in_degree(first), 2u);
    EXPECT_EQ(g.parents(first)[0], std::min(mvm.product(r, 0),
                                            mvm.product(r, 1)));
    ASSERT_EQ(g.in_degree(second), 2u);
    const auto parents = g.parents(second);
    EXPECT_TRUE(parents[0] == first || parents[1] == first);
    EXPECT_TRUE(parents[0] == mvm.product(r, 2) ||
                parents[1] == mvm.product(r, 2));
    EXPECT_EQ(mvm.output(r), second);
  }
}

TEST(MvmGraph, SingleColumnHasNoAccumulators) {
  const MvmGraph mvm = BuildMvm(4, 1);
  const Graph& g = mvm.graph;
  EXPECT_EQ(g.num_nodes(), (4u + 1u) + 4u);
  for (std::int64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(mvm.output(r), mvm.product(r, 0));
    EXPECT_TRUE(g.is_sink(mvm.product(r, 0)));
  }
}

TEST(MvmGraph, WeightsFollowPrecisionConfig) {
  const MvmGraph mvm = BuildMvm(3, 3, PrecisionConfig::DoubleAccumulator());
  const Graph& g = mvm.graph;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool input = mvm.roles[v] == MvmRole::kVectorInput ||
                       mvm.roles[v] == MvmRole::kMatrixInput;
    EXPECT_EQ(g.weight(v), input ? 16 : 32);
  }
}

class MvmStructureTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(MvmStructureTest, SatisfiesDefinition41) {
  const auto [m, n] = GetParam();
  const MvmGraph mvm = BuildMvm(m, n);
  const Graph& g = mvm.graph;

  EXPECT_EQ(g.num_nodes(),
            static_cast<std::size_t>((m * n + n) + m * n + m * (n - 1)));
  EXPECT_EQ(g.sources().size(), static_cast<std::size_t>(m * n + n));
  EXPECT_EQ(g.sinks().size(), static_cast<std::size_t>(m));

  // Rule (1): products read their column's vector entry and matrix entry.
  for (std::int64_t c = 0; c < n; ++c) {
    EXPECT_EQ(g.out_degree(mvm.x(c)), static_cast<std::size_t>(m));
    for (std::int64_t r = 0; r < m; ++r) {
      const auto parents = g.parents(mvm.product(r, c));
      ASSERT_EQ(parents.size(), 2u);
      EXPECT_TRUE(parents[0] == mvm.x(c) || parents[1] == mvm.x(c));
      EXPECT_TRUE(parents[0] == mvm.a(r, c) || parents[1] == mvm.a(r, c));
    }
  }
  // Rules (2)+(3): per-row accumulation chains ending in the sink.
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t c = 1; c < n; ++c) {
      const NodeId acc = mvm.accumulator(r, c);
      const NodeId prev =
          c == 1 ? mvm.product(r, 0) : mvm.accumulator(r, c - 1);
      const auto parents = g.parents(acc);
      ASSERT_EQ(parents.size(), 2u);
      EXPECT_TRUE(parents[0] == prev || parents[1] == prev);
      EXPECT_TRUE(parents[0] == mvm.product(r, c) ||
                  parents[1] == mvm.product(r, c));
      EXPECT_EQ(g.out_degree(acc), c == n - 1 ? 0u : 1u);
    }
    EXPECT_TRUE(g.is_sink(mvm.output(r)));
  }

  // Role bookkeeping is consistent.
  std::size_t products = 0, accumulators = 0, vec = 0, mat = 0;
  for (MvmRole role : mvm.roles) {
    switch (role) {
      case MvmRole::kVectorInput: ++vec; break;
      case MvmRole::kMatrixInput: ++mat; break;
      case MvmRole::kProduct: ++products; break;
      case MvmRole::kAccumulator: ++accumulators; break;
    }
  }
  EXPECT_EQ(vec, static_cast<std::size_t>(n));
  EXPECT_EQ(mat, static_cast<std::size_t>(m * n));
  EXPECT_EQ(products, static_cast<std::size_t>(m * n));
  EXPECT_EQ(accumulators, static_cast<std::size_t>(m * (n - 1)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MvmStructureTest,
    ::testing::Values(std::tuple{2, 1}, std::tuple{2, 2}, std::tuple{3, 2},
                      std::tuple{2, 3}, std::tuple{4, 4}, std::tuple{5, 3},
                      std::tuple{8, 2}, std::tuple{3, 8}, std::tuple{96, 120}));

}  // namespace
}  // namespace wrbpg
