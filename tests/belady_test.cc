#include <gtest/gtest.h>

#include "core/analysis.h"
#include "dataflows/butterfly_graph.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/random_dag.h"
#include "schedulers/belady.h"
#include "schedulers/brute_force.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/layer_by_layer.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

using testing::MakeChain;
using testing::MakeDiamond;

TEST(Belady, ChainAtMinimalBudgetReachesLowerBound) {
  const Graph g = MakeChain(8, 2);
  BeladyScheduler sched(g);
  const auto run = sched.Run(4);
  ASSERT_TRUE(run.feasible);
  EXPECT_EQ(run.cost, AlgorithmicLowerBound(g));
  testing::ExpectValid(g, 4, run.schedule);
}

TEST(Belady, DiamondAtMinBudgetReachesLowerBound) {
  const Graph g = MakeDiamond();
  BeladyScheduler sched(g);
  const auto run = sched.Run(3);
  ASSERT_TRUE(run.feasible);
  EXPECT_EQ(run.cost, 3);
  testing::ExpectValid(g, 3, run.schedule);
}

TEST(Belady, InfeasibleBelowMinValidBudget) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  BeladyScheduler sched(g);
  EXPECT_EQ(sched.CostOnly(MinValidBudget(g) - 1), kInfiniteCost);
  EXPECT_TRUE(sched.Run(MinValidBudget(g)).feasible);
}

class BeladyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BeladyPropertyTest, ValidOnRandomDagsAcrossBudgets) {
  Rng rng(GetParam());
  const Graph g = BuildRandomDag(
      rng, {.num_layers = 5, .nodes_per_layer = 5, .max_in_degree = 3,
            .min_weight = 1, .max_weight = 6, .locality = 0.6});
  BeladyScheduler belady(g);
  GreedyTopoScheduler greedy(g);
  const Weight lo = MinValidBudget(g);
  const Weight lb = AlgorithmicLowerBound(g);
  for (Weight b = lo; b <= lo + 40; b += 5) {
    const auto run = belady.Run(b);
    ASSERT_TRUE(run.feasible) << "budget " << b;
    const SimResult sim = testing::ExpectValid(g, b, run.schedule);
    EXPECT_EQ(sim.cost, run.cost);
    EXPECT_GE(run.cost, lb);
    // Furthest-next-use eviction never loses to load-everything-per-node.
    EXPECT_LE(run.cost, greedy.CostOnly(b)) << "budget " << b;
  }
  // With everything resident, traffic collapses to the lower bound.
  EXPECT_EQ(belady.CostOnly(g.total_weight()), lb);
}

TEST_P(BeladyPropertyTest, NeverBeatsOracleOnSmallDags) {
  Rng rng(GetParam() + 500);
  const Graph g = BuildRandomDag(
      rng, {.num_layers = 3, .nodes_per_layer = 3, .max_in_degree = 2,
            .min_weight = 1, .max_weight = 3, .locality = 0.8});
  if (g.num_nodes() > 12) GTEST_SKIP();
  BeladyScheduler belady(g);
  BruteForceScheduler oracle(g);
  const Weight lo = MinValidBudget(g);
  for (Weight b = lo; b <= lo + 6; b += 2) {
    EXPECT_GE(belady.CostOnly(b), oracle.CostOnly(b)) << "budget " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 16));

// On the DWT the informed eviction policy should not lose to the Sec 5.1
// FIFO baseline at any budget (same traversal order, better evictions).
TEST(Belady, DominatesLayerByLayerOnDwt) {
  const DwtGraph dwt = BuildDwt(64, 6, PrecisionConfig::Equal());
  // Use the baseline's own traversal order for a like-for-like comparison.
  std::vector<NodeId> order;
  for (std::size_t li = 1; li < dwt.layers.size(); ++li) {
    std::vector<NodeId> layer = dwt.layers[li];
    if (li % 2 == 0) std::reverse(layer.begin(), layer.end());
    order.insert(order.end(), layer.begin(), layer.end());
  }
  BeladyScheduler belady(dwt.graph, order);
  LayerByLayerScheduler baseline(dwt.graph, dwt.layers);
  const Weight lo = MinValidBudget(dwt.graph);
  for (Weight b = lo; b <= lo + 512; b += 64) {
    EXPECT_LE(belady.CostOnly(b), baseline.CostOnly(b)) << "budget " << b;
  }
}

// But it cannot beat the DP: optimality needs order and recomputation
// freedom, not just good eviction.
TEST(Belady, NeverBeatsDwtOptimal) {
  const DwtGraph dwt = BuildDwt(32, 5, PrecisionConfig::DoubleAccumulator());
  BeladyScheduler belady(dwt.graph);
  DwtOptimalScheduler optimal(dwt);
  const Weight lo = MinValidBudget(dwt.graph);
  for (Weight b = lo; b <= lo + 320; b += 32) {
    const Weight bc = belady.CostOnly(b);
    if (bc >= kInfiniteCost) continue;
    EXPECT_GE(bc, optimal.CostOnly(b)) << "budget " << b;
  }
}

TEST(Belady, HandlesButterflyReuse) {
  const ButterflyGraph bf = BuildButterfly(16);
  BeladyScheduler belady(bf.graph);
  GreedyTopoScheduler greedy(bf.graph);
  const Weight lo = MinValidBudget(bf.graph);
  for (Weight b = lo; b <= lo + 256; b += 64) {
    const auto run = belady.Run(b);
    ASSERT_TRUE(run.feasible);
    testing::ExpectValid(bf.graph, b, run.schedule);
    EXPECT_LE(run.cost, greedy.CostOnly(b));
  }
}

TEST(Belady, MinMemorySearchFindsLowerBoundBudget) {
  const DwtGraph dwt = BuildDwt(16, 4);
  BeladyScheduler belady(dwt.graph);
  const Weight bits = belady.MinMemoryForLowerBound(16, 1 << 14);
  ASSERT_GT(bits, 0);
  EXPECT_EQ(belady.CostOnly(bits), AlgorithmicLowerBound(dwt.graph));
}

}  // namespace
}  // namespace wrbpg
