#include <gtest/gtest.h>

#include <vector>

#include "core/analysis.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

using testing::MakeChain;
using testing::MakeDiamond;

TEST(Analysis, AlgorithmicLowerBoundSumsSourcesAndSinks) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  // Sources {0, 1}, sinks {4}.
  EXPECT_EQ(AlgorithmicLowerBound(g), 3 + 5 + 13);
}

TEST(Analysis, MinValidBudgetIsWorstComputeFootprint) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  // Node 2 needs 7+3+5=15; node 3 needs 11+5=16; node 4 needs 13+7+11=31.
  EXPECT_EQ(MinValidBudget(g), 31);
}

TEST(Analysis, ScheduleExistsMatchesProposition23) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  EXPECT_FALSE(ScheduleExists(g, 30));
  EXPECT_TRUE(ScheduleExists(g, 31));
  EXPECT_TRUE(ScheduleExists(g, 1000));
}

TEST(Analysis, ChainMinBudget) {
  const Graph g = MakeChain(10, 4);
  EXPECT_EQ(MinValidBudget(g), 8);  // node + single parent
  EXPECT_EQ(AlgorithmicLowerBound(g), 8);  // one source + one sink
}

// A synthetic monotone cost function: cost(b) = max(100 - b, 40).
TEST(Analysis, FindMinimumFastMemoryBinarySearch) {
  const CostFn cost = [](Weight b) { return std::max<Weight>(100 - b, 40); };
  const auto found = FindMinimumFastMemory(
      cost, 40, {.lo = 1, .hi = 200, .step = 1, .monotone = true});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 60);
}

TEST(Analysis, FindMinimumFastMemoryLinearScan) {
  const CostFn cost = [](Weight b) { return std::max<Weight>(100 - b, 40); };
  const auto found = FindMinimumFastMemory(
      cost, 40, {.lo = 1, .hi = 200, .step = 1, .monotone = false});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 60);
}

TEST(Analysis, FindMinimumFastMemoryHonorsStep) {
  const CostFn cost = [](Weight b) { return std::max<Weight>(100 - b, 40); };
  // Grid 16, 32, ..., the first multiple of 16 achieving is 64.
  for (bool monotone : {false, true}) {
    const auto found = FindMinimumFastMemory(
        cost, 40, {.lo = 16, .hi = 320, .step = 16, .monotone = monotone});
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, 64);
  }
}

TEST(Analysis, FindMinimumFastMemoryUnreachable) {
  const CostFn cost = [](Weight) { return Weight{50}; };
  for (bool monotone : {false, true}) {
    EXPECT_FALSE(FindMinimumFastMemory(
                     cost, 40,
                     {.lo = 1, .hi = 100, .step = 1, .monotone = monotone})
                     .has_value());
  }
}

TEST(Analysis, FindMinimumFastMemoryEmptyRange) {
  const CostFn cost = [](Weight) { return Weight{0}; };
  EXPECT_FALSE(FindMinimumFastMemory(
                   cost, 0, {.lo = 10, .hi = 5, .step = 1, .monotone = true})
                   .has_value());
}

TEST(Analysis, FindMinimumFastMemoryFirstBudgetAchieves) {
  const CostFn cost = [](Weight) { return Weight{7}; };
  for (bool monotone : {false, true}) {
    const auto found = FindMinimumFastMemory(
        cost, 7, {.lo = 3, .hi = 30, .step = 3, .monotone = monotone});
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, 3);
  }
}

}  // namespace
}  // namespace wrbpg
