#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/analysis.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "exec/executor.h"
#include "exec/reference_kernels.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/layer_by_layer.h"
#include "schedulers/mvm_tiling.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

std::vector<double> RandomSignal(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> signal(static_cast<std::size_t>(n));
  for (auto& s : signal) {
    s = rng.UniformDouble() * 2.0 - 1.0;
  }
  return signal;
}

std::vector<double> SourceValuesForDwt(const DwtGraph& dwt,
                                       const std::vector<double>& signal) {
  std::vector<double> values(dwt.graph.num_nodes(), 0.0);
  for (std::size_t j = 0; j < dwt.layers[0].size(); ++j) {
    values[dwt.layers[0][j]] = signal[j];
  }
  return values;
}

// ---------------------------------------------------------------------------
// DWT: every scheduler's schedule computes the exact Haar transform.
// ---------------------------------------------------------------------------

class DwtExecutionTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(DwtExecutionTest, OptimalScheduleComputesHaarExactly) {
  const auto [n, d] = GetParam();
  const DwtGraph dwt = BuildDwt(n, d);
  DwtOptimalScheduler optimal(dwt);
  const Weight budget = MinValidBudget(dwt.graph) + 32;
  const auto run = optimal.Run(budget);
  ASSERT_TRUE(run.feasible);

  const std::vector<double> signal = RandomSignal(n, 42);
  const ExecResult exec =
      ExecuteSchedule(dwt.graph, budget, run.schedule, MakeDwtNodeOp(dwt),
                      SourceValuesForDwt(dwt, signal));
  ASSERT_TRUE(exec.ok) << exec.error;

  const std::vector<double> expected = DwtReferenceValues(dwt, signal);
  for (NodeId s : dwt.graph.sinks()) {
    ASSERT_TRUE(exec.present[s]);
    EXPECT_DOUBLE_EQ(exec.slow_values[s], expected[s]) << "sink v" << s;
  }
  EXPECT_LE(exec.peak_fast_bits, budget);
  EXPECT_EQ(exec.bits_loaded + exec.bits_stored, run.cost);
}

TEST_P(DwtExecutionTest, BaselinesComputeTheSameOutputs) {
  const auto [n, d] = GetParam();
  const DwtGraph dwt = BuildDwt(n, d);
  const std::vector<double> signal = RandomSignal(n, 7);
  const std::vector<double> expected = DwtReferenceValues(dwt, signal);
  const Weight budget = MinValidBudget(dwt.graph) + 64;

  LayerByLayerScheduler baseline(dwt.graph, dwt.layers);
  GreedyTopoScheduler greedy(dwt.graph);
  for (const Schedule& schedule :
       {baseline.Run(budget).schedule, greedy.Run(budget).schedule}) {
    ASSERT_FALSE(schedule.empty());
    const ExecResult exec =
        ExecuteSchedule(dwt.graph, budget, schedule, MakeDwtNodeOp(dwt),
                        SourceValuesForDwt(dwt, signal));
    ASSERT_TRUE(exec.ok) << exec.error;
    for (NodeId s : dwt.graph.sinks()) {
      EXPECT_DOUBLE_EQ(exec.slow_values[s], expected[s]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DwtExecutionTest,
                         ::testing::Values(std::tuple{4, 2}, std::tuple{8, 3},
                                           std::tuple{16, 4},
                                           std::tuple{24, 3},
                                           std::tuple{64, 6}));

TEST(DwtExecution, HaarOutputsPreserveEnergy) {
  // Parseval: the Haar transform is orthonormal, so output energy equals
  // input energy — a strong end-to-end sanity check of the kernel itself.
  const DwtGraph dwt = BuildDwt(32, 5);
  const std::vector<double> signal = RandomSignal(32, 3);
  const std::vector<double> outputs = HaarOutputs(dwt, signal);
  double in_energy = 0.0, out_energy = 0.0;
  for (double s : signal) in_energy += s * s;
  for (double o : outputs) out_energy += o * o;
  EXPECT_NEAR(in_energy, out_energy, 1e-9);
}

// ---------------------------------------------------------------------------
// MVM: tiling schedules compute y = A x exactly.
// ---------------------------------------------------------------------------

class MvmExecutionTest
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, bool>> {};

TEST_P(MvmExecutionTest, TilingScheduleComputesMatVecExactly) {
  const auto [m, n, double_acc] = GetParam();
  const PrecisionConfig config = double_acc
                                     ? PrecisionConfig::DoubleAccumulator()
                                     : PrecisionConfig::Equal();
  const MvmGraph mvm = BuildMvm(m, n, config);
  MvmTilingScheduler sched(mvm);

  Rng rng(11);
  std::vector<double> a(static_cast<std::size_t>(m * n));
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : a) v = rng.UniformDouble() * 2.0 - 1.0;
  for (auto& v : x) v = rng.UniformDouble() * 2.0 - 1.0;

  std::vector<double> sources(mvm.graph.num_nodes(), 0.0);
  for (std::int64_t c = 0; c < n; ++c) {
    sources[mvm.x(c)] = x[static_cast<std::size_t>(c)];
    for (std::int64_t r = 0; r < m; ++r) {
      sources[mvm.a(r, c)] = a[static_cast<std::size_t>(r * n + c)];
    }
  }
  const std::vector<double> y = MatVec(m, n, a, x);

  // Exercise several budgets: tight (spilling), mid, and LB-achieving.
  const Weight lo = MinValidBudget(mvm.graph);
  for (Weight budget : {lo, (lo + sched.MinMemoryForLowerBound()) / 2,
                        sched.MinMemoryForLowerBound()}) {
    const auto run = sched.Run(budget);
    ASSERT_TRUE(run.feasible) << "budget " << budget;
    const ExecResult exec = ExecuteSchedule(mvm.graph, budget, run.schedule,
                                            MakeMvmNodeOp(mvm), sources);
    ASSERT_TRUE(exec.ok) << exec.error;
    for (std::int64_t r = 0; r < m; ++r) {
      EXPECT_DOUBLE_EQ(exec.slow_values[mvm.output(r)],
                       y[static_cast<std::size_t>(r)])
          << "row " << r << " budget " << budget;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MvmExecutionTest,
    ::testing::Values(std::tuple{2, 2, false}, std::tuple{5, 4, false},
                      std::tuple{5, 4, true}, std::tuple{12, 9, true},
                      std::tuple{16, 20, false}, std::tuple{4, 1, false}));

// ---------------------------------------------------------------------------
// Error paths.
// ---------------------------------------------------------------------------

TEST(Executor, RejectsLoadOfAbsentValue) {
  const Graph g = testing::MakeChain(3, 2);
  Schedule s;
  s.Append(Load(1));  // node 1 never stored
  const auto op = [](NodeId, std::span<const double>) { return 0.0; };
  const ExecResult exec = ExecuteSchedule(g, 100, s, op, {1.0, 0.0, 0.0});
  EXPECT_FALSE(exec.ok);
  EXPECT_NE(exec.error.find("absent from slow memory"), std::string::npos);
}

TEST(Executor, RejectsComputeWithMissingOperand) {
  const Graph g = testing::MakeChain(3, 2);
  Schedule s;
  s.Append(Compute(1));
  const auto op = [](NodeId, std::span<const double>) { return 0.0; };
  const ExecResult exec = ExecuteSchedule(g, 100, s, op, {1.0, 0.0, 0.0});
  EXPECT_FALSE(exec.ok);
  EXPECT_NE(exec.error.find("not in fast memory"), std::string::npos);
}

TEST(Executor, RejectsCapacityOverflow) {
  const Graph g = testing::MakeChain(3, 2);
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));  // 4 bits > 3-bit capacity
  const auto op = [](NodeId, std::span<const double>) { return 0.0; };
  const ExecResult exec = ExecuteSchedule(g, 3, s, op, {1.0, 0.0, 0.0});
  EXPECT_FALSE(exec.ok);
  EXPECT_NE(exec.error.find("capacity exceeded"), std::string::npos);
}

TEST(Executor, RejectsMissingOutput) {
  const Graph g = testing::MakeChain(2, 2);
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));
  const auto op = [](NodeId, std::span<const double>) { return 1.0; };
  const ExecResult exec = ExecuteSchedule(g, 100, s, op, {1.0, 0.0});
  EXPECT_FALSE(exec.ok);
  EXPECT_NE(exec.error.find("never reached slow memory"), std::string::npos);
}

TEST(Executor, TracksTrafficSeparately) {
  const Graph g = testing::MakeChain(2, 8);
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));
  s.Append(Store(1));
  const auto op = [](NodeId, std::span<const double>) { return 2.5; };
  const ExecResult exec = ExecuteSchedule(g, 100, s, op, {1.0, 0.0});
  ASSERT_TRUE(exec.ok) << exec.error;
  EXPECT_EQ(exec.bits_loaded, 8);
  EXPECT_EQ(exec.bits_stored, 8);
  EXPECT_EQ(exec.peak_fast_bits, 16);
  EXPECT_DOUBLE_EQ(exec.slow_values[1], 2.5);
}

}  // namespace
}  // namespace wrbpg
