// Design-space explorer (src/explore/) contract tests: grid properties,
// the DESIGN.md §8 cross-thread bit-identity promise, and tamper
// rejection by the independent frontier verifier.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "dataflows/builtin_spec.h"
#include "explore/explore.h"
#include "explore/report.h"
#include "hardware/sram_model.h"
#include "util/cancel.h"

namespace wrbpg {
namespace {

// kary:2,3 explores in ~100 ms at the default max_states; dwt would work
// too but is ~10x slower — the properties are the same.
ExploreResult ExploreKary(std::size_t threads = 1) {
  const BuiltinGraph built = BuildBuiltinGraph("kary:2,3");
  EXPECT_TRUE(built.ok) << built.error;
  ExploreOptions options;
  options.threads = threads;
  return Explore(built.graph(), options);
}

ExplorePoint MakePoint(double area, double leakage, double energy,
                       Weight io_cost) {
  ExplorePoint p;
  p.area_lambda2 = area;
  p.leakage_mw = leakage;
  p.energy_nj = energy;
  p.io_cost = io_cost;
  return p;
}

TEST(ExploreGrid, ProducesNonEmptyCertifiedFrontier) {
  const ExploreResult result = ExploreKary();
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_FALSE(result.points.empty());
  ASSERT_FALSE(result.frontier.empty());
  EXPECT_EQ(result.dominated, result.points.size() - result.frontier.size());
  EXPECT_GT(result.budgets_scanned, 0u);

  const BuiltinGraph built = BuildBuiltinGraph("kary:2,3");
  const Weight floor = MinValidBudget(built.graph());
  for (const ExplorePoint& p : result.points) {
    // Every point carries the anytime certificate.
    EXPECT_GE(p.lower_bound, 0);
    EXPECT_GE(p.io_cost, p.lower_bound);
    EXPECT_EQ(p.gap, p.io_cost - p.lower_bound);
    // The band never dips below the Prop 2.3 schedulability floor.
    EXPECT_GE(p.budget, floor);
    // The macro is the power-of-two round-up of the budget.
    EXPECT_EQ(p.capacity_bits, PowerOfTwoCapacity(p.budget));
    // Costs a synthesized macro can produce are non-negative.
    EXPECT_GE(p.area_lambda2, 0);
    EXPECT_GE(p.leakage_mw, 0);
    EXPECT_GE(p.energy_nj, 0);
  }
}

TEST(ExploreGrid, PointsAreBudgetMajorWordMinor) {
  const ExploreResult result = ExploreKary();
  ASSERT_TRUE(result.ok) << result.error;
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    const ExplorePoint& a = result.points[i - 1];
    const ExplorePoint& b = result.points[i];
    EXPECT_TRUE(a.budget < b.budget ||
                (a.budget == b.budget && a.word_bits < b.word_bits))
        << "grid order broken at index " << i;
  }
}

TEST(ExploreGrid, EveryPointResynthesizesWithCapacityInvariant) {
  const ExploreResult result = ExploreKary();
  ASSERT_TRUE(result.ok) << result.error;
  for (const ExplorePoint& p : result.points) {
    const SramSynthesisResult synth =
        TrySynthesizeSram(p.capacity_bits, p.word_bits);
    ASSERT_TRUE(synth.ok()) << synth.message;
    EXPECT_GE(synth.macro.physical_bits(), p.capacity_bits);
    EXPECT_EQ(synth.macro.physical_bits(),
              p.capacity_bits + synth.macro.padding_bits);
  }
}

TEST(ExploreDeterminism, BitIdenticalAcrossThreadCounts) {
  const ExploreResult t1 = ExploreKary(1);
  ASSERT_TRUE(t1.ok) << t1.error;
  const std::uint64_t h1 = FrontierHash(t1);
  for (const std::size_t threads : {2u, 8u}) {
    const ExploreResult tn = ExploreKary(threads);
    ASSERT_TRUE(tn.ok) << tn.error;
    EXPECT_EQ(FrontierHash(tn), h1) << "threads=" << threads;
    ASSERT_EQ(tn.points.size(), t1.points.size());
    for (std::size_t i = 0; i < t1.points.size(); ++i) {
      const ExplorePoint& a = t1.points[i];
      const ExplorePoint& b = tn.points[i];
      EXPECT_EQ(a.budget, b.budget);
      EXPECT_EQ(a.io_cost, b.io_cost);
      EXPECT_EQ(a.lower_bound, b.lower_bound);
      EXPECT_EQ(a.gap, b.gap);
      EXPECT_EQ(a.bits_loaded, b.bits_loaded);
      EXPECT_EQ(a.bits_stored, b.bits_stored);
      EXPECT_EQ(a.on_frontier, b.on_frontier);
      // Doubles compare exactly: same inputs, same arithmetic, same bits.
      EXPECT_EQ(a.area_lambda2, b.area_lambda2);
      EXPECT_EQ(a.energy_nj, b.energy_nj);
    }
    EXPECT_EQ(tn.frontier, t1.frontier);
  }
}

TEST(ExploreDominance, DominatesRequiresStrictImprovementSomewhere) {
  const ExplorePoint base = MakePoint(100, 1.0, 5.0, 40);
  EXPECT_FALSE(Dominates(base, base));  // equal on all -> no dominance
  EXPECT_TRUE(Dominates(MakePoint(90, 1.0, 5.0, 40), base));
  EXPECT_TRUE(Dominates(MakePoint(90, 0.5, 4.0, 30), base));
  // Better on one axis, worse on another: incomparable both ways.
  const ExplorePoint trade = MakePoint(90, 1.0, 6.0, 40);
  EXPECT_FALSE(Dominates(trade, base));
  EXPECT_FALSE(Dominates(base, trade));
}

TEST(ExploreDominance, ParetoFrontierKeepsOnlyNonDominated) {
  const std::vector<ExplorePoint> points = {
      MakePoint(100, 1.0, 5.0, 40),  // dominated by 1
      MakePoint(90, 1.0, 5.0, 40),   // frontier
      MakePoint(200, 0.1, 9.0, 80),  // frontier (best leakage)
      MakePoint(90, 1.0, 5.0, 40),   // duplicate of 1: kept (no strict win)
  };
  const std::vector<std::size_t> frontier = ParetoFrontier(points);
  EXPECT_EQ(frontier, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(ExploreVerify, AcceptsTheExplorersOwnFrontier) {
  const ExploreResult result = ExploreKary();
  ASSERT_TRUE(result.ok) << result.error;
  std::string error;
  EXPECT_TRUE(VerifyFrontier(result.points, result.frontier, &error)) << error;
}

TEST(ExploreVerify, RejectsTamperedResults) {
  const ExploreResult result = ExploreKary();
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_GT(result.dominated, 0u);

  // A dominated point smuggled onto the frontier.
  std::size_t dominated_idx = result.points.size();
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    if (!result.points[i].on_frontier) {
      dominated_idx = i;
      break;
    }
  }
  ASSERT_LT(dominated_idx, result.points.size());
  std::vector<std::size_t> smuggled = result.frontier;
  smuggled.push_back(dominated_idx);
  std::string error;
  EXPECT_FALSE(VerifyFrontier(result.points, smuggled, &error));
  EXPECT_FALSE(error.empty());

  // An optimal point dropped from the frontier.
  std::vector<std::size_t> dropped(result.frontier.begin() + 1,
                                   result.frontier.end());
  error.clear();
  EXPECT_FALSE(VerifyFrontier(result.points, dropped, &error));
  EXPECT_FALSE(error.empty());

  // A flipped on_frontier flag with the index list left intact.
  std::vector<ExplorePoint> flipped = result.points;
  flipped[dominated_idx].on_frontier = true;
  error.clear();
  EXPECT_FALSE(VerifyFrontier(flipped, result.frontier, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ExploreVerify, HashChangesWhenAFrontierPointChanges) {
  ExploreResult result = ExploreKary();
  ASSERT_TRUE(result.ok) << result.error;
  const std::uint64_t before = FrontierHash(result);
  result.points[result.frontier.front()].io_cost += 1;
  EXPECT_NE(FrontierHash(result), before);
}

TEST(ExploreOptionsContract, MalformedOptionsFailClosedWithoutAborting) {
  const BuiltinGraph built = BuildBuiltinGraph("kary:2,3");
  ASSERT_TRUE(built.ok);

  ExploreOptions bad_step;
  bad_step.budget_step = 0;
  EXPECT_FALSE(Explore(built.graph(), bad_step).ok);

  ExploreOptions no_words;
  no_words.word_bits.clear();
  EXPECT_FALSE(Explore(built.graph(), no_words).ok);

  const Graph empty;
  EXPECT_FALSE(Explore(empty, {}).ok);
}

TEST(ExploreOptionsContract, FiredCancelTokenAbortsExploration) {
  const BuiltinGraph built = BuildBuiltinGraph("kary:2,3");
  ASSERT_TRUE(built.ok);
  const CancelToken token;
  token.Cancel();
  ExploreOptions options;
  options.cancel = &token;
  const ExploreResult result = Explore(built.graph(), options);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(ExploreOptionsContract, SchedulerNamesRoundTrip) {
  EXPECT_EQ(ExploreSchedulerFromString("bb"),
            ExploreScheduler::kBranchAndBound);
  EXPECT_EQ(ExploreSchedulerFromString("robust"),
            ExploreScheduler::kRobustChain);
  EXPECT_EQ(ExploreSchedulerFromString("nope"), std::nullopt);
  EXPECT_STREQ(ToString(ExploreScheduler::kBranchAndBound), "bb");
  EXPECT_STREQ(ToString(ExploreScheduler::kRobustChain), "robust");
}

TEST(ExploreOptionsContract, RobustChainAlsoProducesAFrontier) {
  const BuiltinGraph built = BuildBuiltinGraph("kary:2,3");
  ASSERT_TRUE(built.ok);
  ExploreOptions options;
  options.scheduler = ExploreScheduler::kRobustChain;
  const ExploreResult result = Explore(built.graph(), options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.frontier.empty());
  std::string error;
  EXPECT_TRUE(VerifyFrontier(result.points, result.frontier, &error)) << error;
}

TEST(ExploreReport, JsonCarriesSchemaAndFrontier) {
  const ExploreResult result = ExploreKary();
  ASSERT_TRUE(result.ok) << result.error;
  const std::string json =
      ExploreToJson("kary:2,3", "bb", result).Dump(2);
  EXPECT_NE(json.find("\"schema\": \"wrbpg-explore-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"frontier_hash\""), std::string::npos);
  EXPECT_NE(json.find("\"on_frontier\""), std::string::npos);
}

}  // namespace
}  // namespace wrbpg
