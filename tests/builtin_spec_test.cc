// Tests for the builtin graph-spec parser (dataflows/builtin_spec.h):
// every accepted family builds the same graph as its direct builder, and
// every malformed or out-of-range payload is rejected with a one-line
// error instead of an abort.
#include <gtest/gtest.h>

#include <string>

#include "dataflows/builtin_spec.h"
#include "dataflows/random_dag.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

TEST(BuiltinSpec, PrefixDetection) {
  EXPECT_TRUE(IsBuiltinSpec("dwt:16,2"));
  EXPECT_TRUE(IsBuiltinSpec("kary:2,4"));
  EXPECT_TRUE(IsBuiltinSpec("mvm:4,3"));
  EXPECT_TRUE(IsBuiltinSpec("butterfly:8"));
  EXPECT_TRUE(IsBuiltinSpec("random:4,4,7"));
  EXPECT_TRUE(IsBuiltinSpec("dwt:garbage"));  // prefix only; build rejects
  EXPECT_FALSE(IsBuiltinSpec("graph.txt"));
  EXPECT_FALSE(IsBuiltinSpec("dwt16,2"));
  EXPECT_FALSE(IsBuiltinSpec("foo:1,2"));
}

TEST(BuiltinSpec, BuildsMatchDirectBuilders) {
  {
    const BuiltinGraph g = BuildBuiltinGraph("dwt:16,2");
    ASSERT_TRUE(g.ok) << g.error;
    EXPECT_EQ(g.family, "dwt");
    ASSERT_TRUE(g.dwt.has_value());
    EXPECT_EQ(g.graph().num_nodes(), BuildDwt(16, 2).graph.num_nodes());
  }
  {
    const BuiltinGraph g = BuildBuiltinGraph("kary:2,4");
    ASSERT_TRUE(g.ok) << g.error;
    ASSERT_TRUE(g.tree.has_value());
    EXPECT_EQ(g.graph().num_nodes(), 31u);
  }
  {
    const BuiltinGraph g = BuildBuiltinGraph("mvm:4,3");
    ASSERT_TRUE(g.ok) << g.error;
    EXPECT_EQ(g.family, "mvm");
    ASSERT_TRUE(g.mvm.has_value());
    EXPECT_EQ(g.mvm->m, 4);
    EXPECT_EQ(g.mvm->n, 3);
    EXPECT_EQ(g.graph().num_nodes(), BuildMvm(4, 3).graph.num_nodes());
  }
  {
    const BuiltinGraph g = BuildBuiltinGraph("butterfly:8");
    ASSERT_TRUE(g.ok) << g.error;
    EXPECT_EQ(g.family, "butterfly");
    ASSERT_TRUE(g.butterfly.has_value());
    EXPECT_EQ(g.butterfly->n, 8);
    EXPECT_EQ(g.graph().num_nodes(), BuildButterfly(8).graph.num_nodes());
  }
  {
    const BuiltinGraph g = BuildBuiltinGraph("random:4,4,7");
    ASSERT_TRUE(g.ok) << g.error;
    ASSERT_TRUE(g.plain.has_value());
    Rng rng(7);
    RandomDagOptions options;
    options.num_layers = 4;
    options.nodes_per_layer = 4;
    const Graph direct = BuildRandomDag(rng, options);
    EXPECT_EQ(g.graph().num_nodes(), direct.num_nodes());
    EXPECT_EQ(g.graph().num_edges(), direct.num_edges());
  }
}

TEST(BuiltinSpec, RejectsMalformedPayloads) {
  for (const char* spec :
       {"dwt:16", "dwt:16,2,9", "dwt:16,", "dwt:a,b", "dwt:16x2",
        "kary:2", "mvm:4", "butterfly:", "butterfly:2,4",
        "random:4,4", "random:4,4,7,9", "nope:1,2", "dwt:"}) {
    const BuiltinGraph g = BuildBuiltinGraph(spec);
    EXPECT_FALSE(g.ok) << spec;
    EXPECT_FALSE(g.error.empty()) << spec;
  }
}

TEST(BuiltinSpec, RejectsOutOfRangeParameters) {
  for (const char* spec :
       {"dwt:15,2",       // 2^d must divide n
        "dwt:16,0",       // d >= 1
        "kary:9,2",       // k <= 8 (the DP's k! 2^k limit)
        "kary:2,17",      // levels <= 16
        "mvm:1,3",        // m >= 2
        "mvm:4,0",        // n >= 1
        "mvm:65,3",       // m <= 64
        "butterfly:6",    // power of two
        "butterfly:1",    // >= 2
        "butterfly:2048", // <= 1024
        "random:1,4,7",   // layers >= 2
        "random:4,65,7"}) {
    const BuiltinGraph g = BuildBuiltinGraph(spec);
    EXPECT_FALSE(g.ok) << spec;
    EXPECT_NE(g.error.find("invalid"), std::string::npos) << g.error;
  }
}

TEST(BuiltinSpec, HelpStringNamesEveryFamily) {
  const std::string help = BuiltinSpecHelp();
  for (const char* family : {"dwt:", "kary:", "mvm:", "butterfly:",
                             "random:"}) {
    EXPECT_NE(help.find(family), std::string::npos) << family;
  }
}

}  // namespace
}  // namespace wrbpg
