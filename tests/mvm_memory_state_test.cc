#include <gtest/gtest.h>

#include <tuple>

#include "core/analysis.h"
#include "dataflows/mvm_graph.h"
#include "schedulers/mvm_memory_state.h"
#include "schedulers/mvm_tiling.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

class MvmMemoryStateTest
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, bool>> {};

TEST_P(MvmMemoryStateTest, MatchesAnalyticVectorResidentTile) {
  const auto [m, n, da] = GetParam();
  const PrecisionConfig config =
      da ? PrecisionConfig::DoubleAccumulator() : PrecisionConfig::Equal();
  const MvmGraph mvm = BuildMvm(m, n, config);
  MvmMemoryStateScheduler eq8(mvm);
  MvmTilingScheduler analytic(mvm);

  // The Eq. (8) path realizes the (g = n, h = 1) tile: same cost once its
  // budget precondition holds.
  const MvmTilingScheduler::Tile tile{.g = n, .h = 1, .spill_running = false};
  const Weight budget = analytic.TilePeak(tile) + 2 * 16;
  const auto run = eq8.Run(budget);
  ASSERT_TRUE(run.feasible);
  const SimResult sim = testing::ExpectValid(mvm.graph, budget, run.schedule);
  EXPECT_EQ(sim.cost, run.cost);
  EXPECT_EQ(run.cost, analytic.TileCost(tile));
  EXPECT_EQ(run.cost, AlgorithmicLowerBound(mvm.graph));
  EXPECT_LE(sim.peak_red_weight, budget);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MvmMemoryStateTest,
    ::testing::Values(std::tuple{2, 2, false}, std::tuple{4, 3, false},
                      std::tuple{3, 5, true}, std::tuple{6, 8, false},
                      std::tuple{5, 16, true}, std::tuple{8, 1, false}));

TEST(MvmMemoryState, InfeasibleWhenVectorCannotStayResident) {
  const MvmGraph mvm = BuildMvm(4, 8, PrecisionConfig::Equal());
  MvmMemoryStateScheduler eq8(mvm);
  // Far below the vector-resident working set.
  EXPECT_EQ(eq8.CostOnly(64), kInfiniteCost);
}

TEST(MvmMemoryState, VectorLoadedOnceAcrossAllRows) {
  const MvmGraph mvm = BuildMvm(5, 6, PrecisionConfig::Equal());
  MvmMemoryStateScheduler eq8(mvm);
  const auto run = eq8.Run(1 << 12);
  ASSERT_TRUE(run.feasible);
  // Count M1 moves touching vector nodes: exactly n despite m rows.
  std::size_t x_loads = 0;
  for (const Move& move : run.schedule) {
    if (move.type == MoveType::kLoad &&
        mvm.roles[move.node] == MvmRole::kVectorInput) {
      ++x_loads;
    }
  }
  EXPECT_EQ(x_loads, 6u);
}

}  // namespace
}  // namespace wrbpg
