#include <gtest/gtest.h>

#include "core/analysis.h"
#include "dataflows/mvm_graph.h"
#include "ioopt/ioopt_bounds.h"
#include "schedulers/mvm_tiling.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

TEST(IoOpt, LowerBoundEqualConfiguration) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
  const IoOptMvmBounds bounds(mvm);
  // (mn + n) inputs + m outputs, all 16-bit.
  EXPECT_EQ(bounds.LowerBound(), 16 * (96 * 120 + 120 + 96));
  // With equal weights it coincides with the algorithmic lower bound.
  EXPECT_EQ(bounds.LowerBound(), AlgorithmicLowerBound(mvm.graph));
}

TEST(IoOpt, LowerBoundDoublesOutputTermForDa) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::DoubleAccumulator());
  const IoOptMvmBounds bounds(mvm);
  EXPECT_EQ(bounds.LowerBound(), 16 * (96 * 120 + 120) + 32 * 96);
}

TEST(IoOpt, Table1UpperBoundMinMemoryEqual) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
  const IoOptMvmBounds bounds(mvm);
  EXPECT_EQ(bounds.UpperBoundMinMemory(), 3088);  // 193 words (Table 1)
}

TEST(IoOpt, Table1UpperBoundMinMemoryDoubleAccumulator) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::DoubleAccumulator());
  const IoOptMvmBounds bounds(mvm);
  EXPECT_EQ(bounds.UpperBoundMinMemory(), 4624);  // 289 words (Table 1)
}

TEST(IoOpt, UpperBoundInfeasibleBelowOneRow) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
  const IoOptMvmBounds bounds(mvm);
  EXPECT_EQ(bounds.UpperBoundCost(16), kInfiniteCost);
}

TEST(IoOpt, UpperBoundDecreasesWithMemoryAndFlattens) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
  const IoOptMvmBounds bounds(mvm);
  Weight previous = kInfiniteCost;
  for (Weight s = 64; s <= 8192; s *= 2) {
    const Weight cost = bounds.UpperBoundCost(s);
    EXPECT_LE(cost, previous);
    previous = cost;
  }
  // Flat after the min-memory point.
  EXPECT_EQ(bounds.UpperBoundCost(bounds.UpperBoundMinMemory()),
            bounds.UpperBoundCost(1 << 20));
  // The floor: A once, x once, outputs read AND written.
  EXPECT_EQ(bounds.UpperBoundCost(1 << 20),
            16 * (96 * 120 + 120 + 2 * 96));
}

TEST(IoOpt, UpperBoundAlwaysAboveItsLowerBound) {
  for (const auto config : {PrecisionConfig::Equal(),
                            PrecisionConfig::DoubleAccumulator()}) {
    const MvmGraph mvm = BuildMvm(24, 30, config);
    const IoOptMvmBounds bounds(mvm);
    for (Weight s = 64; s <= 4096; s += 128) {
      const Weight ub = bounds.UpperBoundCost(s);
      if (ub < kInfiniteCost) {
        EXPECT_GE(ub, bounds.LowerBound());
      }
    }
  }
}

// The paper's Sec 5.2 claims: the tiling scheduler beats or matches IOOpt's
// upper bound at every fast memory size, for both weight configurations.
TEST(IoOpt, TilingDominatesUpperBoundEverywhere) {
  for (const auto config : {PrecisionConfig::Equal(),
                            PrecisionConfig::DoubleAccumulator()}) {
    const MvmGraph mvm = BuildMvm(96, 120, config);
    const IoOptMvmBounds bounds(mvm);
    MvmTilingScheduler tiling(mvm);
    // IOOpt's analytic model keeps one accumulator resident below the
    // budget at which the pebble game can actually do so; compare from the
    // first budget where a one-row resident tile is feasible (the Fig. 5
    // x-ranges start well above it).
    const Weight first_fair =
        tiling.TilePeak({.g = 0, .h = 1, .spill_running = false});
    for (Weight s = first_fair; s <= 16384; s += 16) {
      const Weight ub = bounds.UpperBoundCost(s);
      if (ub >= kInfiniteCost) continue;
      EXPECT_LE(tiling.CostOnly(s), ub)
          << ConfigLabel(config) << " @ " << s << " bits";
    }
  }
}

// And the tiling schedule's cost never crosses below IOOpt's (valid) lower
// bound in the Equal case, where that bound is exactly the algorithmic one.
TEST(IoOpt, TilingRespectsLowerBoundEqual) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
  const IoOptMvmBounds bounds(mvm);
  MvmTilingScheduler tiling(mvm);
  for (Weight s = 64; s <= 16384; s += 256) {
    const Weight cost = tiling.CostOnly(s);
    if (cost < kInfiniteCost) {
      EXPECT_GE(cost, bounds.LowerBound());
    }
  }
}

TEST(IoOpt, MinMemoryGapMatchesPaperRatios) {
  // Table 1 ratios: tiling needs 99 vs 193 words (Equal, 48.7% less) and
  // 126 vs 289 words (DA, 56.4% less).
  const MvmGraph equal = BuildMvm(96, 120, PrecisionConfig::Equal());
  EXPECT_EQ(MvmTilingScheduler(equal).MinMemoryForLowerBound() / 16, 99);
  EXPECT_EQ(IoOptMvmBounds(equal).UpperBoundMinMemory() / 16, 193);

  const MvmGraph da = BuildMvm(96, 120, PrecisionConfig::DoubleAccumulator());
  EXPECT_EQ(MvmTilingScheduler(da).MinMemoryForLowerBound() / 16, 126);
  EXPECT_EQ(IoOptMvmBounds(da).UpperBoundMinMemory() / 16, 289);
}

}  // namespace
}  // namespace wrbpg
