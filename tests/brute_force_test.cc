#include <gtest/gtest.h>

#include "core/analysis.h"
#include "schedulers/brute_force.h"
#include "schedulers/greedy_topo.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

using testing::MakeChain;
using testing::MakeDiamond;

TEST(BruteForce, ChainCostIsSourcePlusSinkWhenMemoryAmple) {
  const Graph g = MakeChain(5, 2);
  BruteForceScheduler sched(g);
  const auto result = sched.Run(100);
  ASSERT_TRUE(result.feasible);
  // Load the source once, store the sink once: 2 + 2.
  EXPECT_EQ(result.cost, AlgorithmicLowerBound(g));
  const SimResult sim = testing::ExpectValid(g, 100, result.schedule);
  EXPECT_EQ(sim.cost, result.cost);
}

TEST(BruteForce, ChainAtMinimalBudgetStillLowerBound) {
  const Graph g = MakeChain(5, 2);
  BruteForceScheduler sched(g);
  // Budget 4 = node + parent: enough to slide along the chain.
  const auto result = sched.Run(4);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.cost, 4);
  testing::ExpectValid(g, 4, result.schedule);
}

TEST(BruteForce, InfeasibleBudgetReported) {
  const Graph g = MakeChain(5, 2);
  BruteForceScheduler sched(g);
  EXPECT_FALSE(sched.Run(3).feasible);
  EXPECT_EQ(sched.CostOnly(3), kInfiniteCost);
}

TEST(BruteForce, DiamondReachesLowerBoundAtMinBudget) {
  // Unit weights: computing 2, then 3 (parent 1 still red), then 4 never
  // holds more than three red pebbles, so budget 3 already attains the
  // algorithmic lower bound of 3.
  const Graph g = MakeDiamond();
  BruteForceScheduler sched(g);
  const auto result = sched.Run(3);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.cost, 3);
  testing::ExpectValid(g, 3, result.schedule);
}

// Butterfly: 2 and 3 both read {0, 1}; 4 reads {2, 3}. At budget 3 one of
// the mid nodes must round-trip through slow memory (recomputing it would
// need both sources red alongside its sibling — 4 pebbles), so the optimum
// is inputs + spill + reload + output = 5.
TEST(BruteForce, ButterflyTightBudgetForcesSpill) {
  GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddNode(1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(0, 3);
  b.AddEdge(1, 3);
  b.AddEdge(2, 4);
  b.AddEdge(3, 4);
  const Graph g = b.BuildOrDie();
  BruteForceScheduler sched(g);

  const auto tight = sched.Run(3);
  ASSERT_TRUE(tight.feasible);
  EXPECT_EQ(tight.cost, 5);
  testing::ExpectValid(g, 3, tight.schedule);

  // With one more pebble both mid values stay resident: cost = LB = 3.
  const auto roomy = sched.Run(4);
  ASSERT_TRUE(roomy.feasible);
  EXPECT_EQ(roomy.cost, 3);
  testing::ExpectValid(g, 4, roomy.schedule);
}

TEST(BruteForce, CostOnlyMatchesRun) {
  const Graph g = MakeDiamond({2, 1, 3, 2, 1});
  BruteForceScheduler sched(g);
  for (Weight b = MinValidBudget(g); b <= MinValidBudget(g) + 4; ++b) {
    EXPECT_EQ(sched.CostOnly(b), sched.Run(b).cost) << "budget " << b;
  }
}

TEST(BruteForce, NeverBeatsAlgorithmicLowerBound) {
  const Graph g = MakeDiamond({2, 1, 3, 2, 1});
  BruteForceScheduler sched(g);
  EXPECT_GE(sched.CostOnly(100), AlgorithmicLowerBound(g));
}

TEST(BruteForce, NeverWorseThanGreedy) {
  const Graph g = MakeDiamond({2, 1, 3, 2, 1});
  BruteForceScheduler brute(g);
  GreedyTopoScheduler greedy(g);
  for (Weight b = MinValidBudget(g); b <= MinValidBudget(g) + 6; b += 2) {
    EXPECT_LE(brute.CostOnly(b), greedy.CostOnly(b)) << "budget " << b;
  }
}

TEST(BruteForce, CostMonotoneInBudget) {
  const Graph g = MakeDiamond({2, 1, 3, 2, 1});
  BruteForceScheduler sched(g);
  Weight prev = kInfiniteCost;
  for (Weight b = MinValidBudget(g); b <= MinValidBudget(g) + 8; ++b) {
    const Weight cost = sched.CostOnly(b);
    EXPECT_LE(cost, prev);
    prev = cost;
  }
}

TEST(BruteForce, MemoryStateInitialRedSkipsRecompute) {
  // Chain 0->1->2: with node 1 initially red, reaching "2 red" costs 0 I/O.
  const Graph g = MakeChain(3, 2);
  BruteForceScheduler sched(g);
  BruteForceOptions options;
  options.initial_red = 0b010;
  options.required_red_at_end = 0b100;
  options.require_sinks_blue = false;
  const auto result = sched.Run(10, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.cost, 0);
}

TEST(BruteForce, MemoryStateReuseBlueAssumption) {
  // Without the initial pebble, computing node 2 red costs the source load.
  const Graph g = MakeChain(3, 2);
  BruteForceScheduler sched(g);
  BruteForceOptions options;
  options.required_red_at_end = 0b100;
  options.require_sinks_blue = false;
  const auto result = sched.Run(10, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.cost, 2);
}

TEST(BruteForce, MemoryStateInitialBlueEnablesLoad) {
  const Graph g = MakeChain(3, 2);
  BruteForceScheduler sched(g);
  BruteForceOptions options;
  options.initial_blue = 0b011;  // source + node 1 spilled earlier
  options.required_red_at_end = 0b100;
  options.require_sinks_blue = false;
  const auto result = sched.Run(4, options);
  ASSERT_TRUE(result.feasible);
  // Load node 1 (2 bits), compute node 2.
  EXPECT_EQ(result.cost, 2);
}

TEST(BruteForce, InitialRedBeyondBudgetInfeasible) {
  const Graph g = MakeChain(3, 2);
  BruteForceScheduler sched(g);
  BruteForceOptions options;
  options.initial_red = 0b011;
  EXPECT_FALSE(sched.Run(3, options).feasible);
}

// Graphs beyond the 32-node packed-mask width route through the wide
// interned-state representation and solve exactly — there is no size at
// which the engines refuse to run. A 33-node unit chain (budget 3, so
// the search stays polynomial-sized) costs exactly load-source +
// store-sink = 2.
TEST(BruteForce, GraphBeyond32NodesSolvesExactly) {
  const Graph g = MakeChain(33, 1);
  BruteForceScheduler sched(g);
  const ScheduleResult result = sched.Run(3);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.cost, AlgorithmicLowerBound(g));
  EXPECT_EQ(result.cost, 2);
  EXPECT_EQ(result.optimality_gap, 0);
  EXPECT_EQ(result.termination, Termination::kOptimal);
  const SimResult sim = testing::ExpectValid(g, 3, result.schedule);
  EXPECT_EQ(sim.cost, result.cost);
  EXPECT_EQ(sched.CostOnly(3), result.cost);
}

// The wide path at a pinching budget: the chain must slide one window of
// two unit nodes at a time, and infeasibility below that is a verdict
// about the instance, not a refusal.
TEST(BruteForce, GraphBeyond32NodesTightBudget) {
  const Graph g = MakeChain(34, 1);
  BruteForceScheduler sched(g);
  const ScheduleResult result = sched.Run(2);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.cost, 2);
  testing::ExpectValid(g, 2, result.schedule);
  EXPECT_FALSE(sched.Run(1).feasible);
}

}  // namespace
}  // namespace wrbpg
