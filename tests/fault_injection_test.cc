// Fault injector corpora + exhaustive simulator diagnostics.
//
// The central claim tested here: on every single-mutation corpus, over
// every mutation class and every graph family builder, the simulator's
// typed diagnostics are *exact* — SimErrorCode is set and consistent with
// the message, error_index is the first violation (the prefix before it
// replays cleanly, and the prefix through it reproduces the same code at
// the same index), and error_node names a node the failing move is about.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/analysis.h"
#include "core/simulator.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "dataflows/random_dag.h"
#include "dataflows/tree_graph.h"
#include "robust/fault_injector.h"
#include "schedulers/belady.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/kary_tree.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

struct SeedCase {
  std::string name;
  Graph graph;
  Weight budget = 0;
  Schedule schedule;
};

// One valid (graph, budget, schedule) seed per family builder, scheduled
// by the family's own algorithm where one exists.
std::vector<SeedCase> FamilySeeds() {
  std::vector<SeedCase> seeds;

  {
    const DwtGraph dwt = BuildDwt(16, 2);
    const Weight budget = MinValidBudget(dwt.graph) + 8;
    DwtOptimalScheduler sched(dwt);
    seeds.push_back(
        {"dwt", dwt.graph, budget, sched.Run(budget).schedule});
  }
  {
    const TreeGraph tree = BuildPerfectTree(3, 2);
    const Weight budget = MinValidBudget(tree.graph) + 4;
    KaryTreeScheduler sched(tree.graph);
    seeds.push_back(
        {"kary-tree", tree.graph, budget, sched.Run(budget).schedule});
  }
  {
    const MvmGraph mvm = BuildMvm(3, 3);
    const Weight budget = MinValidBudget(mvm.graph) + 32;
    seeds.push_back({"mvm", mvm.graph, budget,
                     BeladyScheduler(mvm.graph).Run(budget).schedule});
  }
  {
    Rng rng(0xfa1711u);
    const Graph dag = BuildRandomDag(rng, {.num_layers = 4,
                                           .nodes_per_layer = 4,
                                           .max_in_degree = 3});
    const Weight budget = MinValidBudget(dag) + 16;
    seeds.push_back(
        {"random-dag", dag, budget, BeladyScheduler(dag).Run(budget).schedule});
  }
  return seeds;
}

const char* ExpectedSubstring(SimErrorCode code) {
  switch (code) {
    case SimErrorCode::kNone: return "";
    case SimErrorCode::kNodeOutOfRange: return "out of range";
    case SimErrorCode::kLoadNoBlue: return "no blue pebble";
    case SimErrorCode::kLoadAlreadyRed: return "already holds a red";
    case SimErrorCode::kStoreNoRed: return "no red pebble";
    case SimErrorCode::kStoreAlreadyBlue: return "already holds a blue";
    case SimErrorCode::kComputeSource: return "source";
    case SimErrorCode::kComputeAlreadyRed: return "already holds a red";
    case SimErrorCode::kComputeParentNotRed: return "holds no red pebble";
    case SimErrorCode::kDeleteNoRed: return "no red pebble to delete";
    case SimErrorCode::kBudgetExceeded: return "constraint violated";
    case SimErrorCode::kInitialRedOverBudget: return "initial red";
    case SimErrorCode::kStopConditionUnmet: return "stopping condition";
    case SimErrorCode::kReuseConditionUnmet: return "reuse condition";
  }
  return "";
}

Schedule Prefix(const Schedule& s, std::size_t len) {
  return Schedule(std::vector<Move>(
      s.moves().begin(),
      s.moves().begin() + static_cast<std::ptrdiff_t>(len)));
}

TEST(FaultInjector, DiagnosticsAreExactOnEveryMutationClassAndFamily) {
  std::size_t invalid_seen = 0;
  for (const SeedCase& seed : FamilySeeds()) {
    FaultInjector injector(seed.graph, seed.budget, seed.schedule);
    Rng rng(0xd1a6u);
    const auto corpus = injector.Corpus(rng, 25);
    ASSERT_FALSE(corpus.empty()) << seed.name;
    for (const FaultCase& fault : corpus) {
      SCOPED_TRACE(seed.name + "/" + fault.label);
      const SimResult sim =
          Simulate(seed.graph, fault.budget, fault.schedule);
      if (sim.valid) {
        // Some mutations are benign (e.g. swapping independent moves);
        // validity must then come with a clean taxonomy.
        EXPECT_EQ(sim.code, SimErrorCode::kNone);
        continue;
      }
      ++invalid_seen;

      // The code is typed and its message matches its class.
      EXPECT_NE(sim.code, SimErrorCode::kNone);
      EXPECT_NE(sim.error.find(ExpectedSubstring(sim.code)),
                std::string::npos)
          << ToString(sim.code) << " vs '" << sim.error << "'";

      // error_index is exactly the first violation: everything before it
      // replays cleanly under the same budget...
      ASSERT_LE(sim.error_index, fault.schedule.size());
      const SimResult before =
          Simulate(seed.graph, fault.budget,
                   Prefix(fault.schedule, sim.error_index),
                   {.require_stop_condition = false});
      EXPECT_TRUE(before.valid)
          << "prefix before the reported violation does not replay: "
          << before.error;

      // ...and including the failing move reproduces the identical
      // diagnostic (end-of-schedule codes have no move to include).
      if (sim.error_index < fault.schedule.size()) {
        const SimResult at =
            Simulate(seed.graph, fault.budget,
                     Prefix(fault.schedule, sim.error_index + 1),
                     {.require_stop_condition = false});
        EXPECT_FALSE(at.valid);
        EXPECT_EQ(at.code, sim.code);
        EXPECT_EQ(at.error_index, sim.error_index);
        EXPECT_EQ(at.error_node, sim.error_node);
      } else {
        EXPECT_EQ(sim.code, SimErrorCode::kStopConditionUnmet);
      }

      // error_node is real and relevant.
      if (sim.code != SimErrorCode::kNodeOutOfRange) {
        ASSERT_LT(sim.error_node, seed.graph.num_nodes());
      }
      if (sim.error_index < fault.schedule.size()) {
        const Move& failing = fault.schedule[sim.error_index];
        if (sim.code == SimErrorCode::kComputeParentNotRed) {
          const auto parents = seed.graph.parents(failing.node);
          EXPECT_NE(std::find(parents.begin(), parents.end(), sim.error_node),
                    parents.end());
        } else if (sim.code != SimErrorCode::kNodeOutOfRange) {
          EXPECT_EQ(sim.error_node, failing.node);
        }
      }
    }
  }
  // The corpora must actually exercise the taxonomy, not accidentally
  // produce only benign mutants.
  EXPECT_GE(invalid_seen, 100u);
}

TEST(FaultInjector, CorpusIsDeterministicInTheSeed) {
  const SeedCase seed = FamilySeeds()[0];
  FaultInjector injector(seed.graph, seed.budget, seed.schedule);
  Rng rng_a(42), rng_b(42);
  const auto a = injector.Corpus(rng_a, 5);
  const auto b = injector.Corpus(rng_b, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].position, b[i].position);
    EXPECT_EQ(a[i].budget, b[i].budget);
    EXPECT_EQ(a[i].schedule, b[i].schedule);
  }
}

TEST(FaultInjector, EveryKindProducesItsDocumentedShape) {
  const SeedCase seed = FamilySeeds()[0];
  FaultInjector injector(seed.graph, seed.budget, seed.schedule);
  Rng rng(7);

  const auto drop = injector.Inject(FaultKind::kDropMove, rng);
  ASSERT_TRUE(drop.has_value());
  EXPECT_EQ(drop->schedule.size(), seed.schedule.size() - 1);

  const auto dup = injector.Inject(FaultKind::kDuplicateMove, rng);
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->schedule.size(), seed.schedule.size() + 1);
  EXPECT_EQ(dup->schedule[dup->position], dup->schedule[dup->position + 1]);

  const auto swap = injector.Inject(FaultKind::kSwapAdjacent, rng);
  ASSERT_TRUE(swap.has_value());
  EXPECT_EQ(swap->schedule.size(), seed.schedule.size());
  EXPECT_EQ(swap->schedule[swap->position], seed.schedule[swap->position + 1]);
  EXPECT_EQ(swap->schedule[swap->position + 1], seed.schedule[swap->position]);

  const auto nostore = injector.Inject(FaultKind::kDeleteStore, rng);
  ASSERT_TRUE(nostore.has_value());
  EXPECT_EQ(seed.schedule[nostore->position].type, MoveType::kStore);

  const auto tight = injector.Inject(FaultKind::kTightenBudget, rng);
  ASSERT_TRUE(tight.has_value());
  EXPECT_LT(tight->budget, injector.peak_red_weight());
  EXPECT_EQ(tight->schedule, seed.schedule);
  const SimResult sim = Simulate(seed.graph, tight->budget, tight->schedule);
  EXPECT_FALSE(sim.valid);
  EXPECT_EQ(sim.code, SimErrorCode::kBudgetExceeded);
}

}  // namespace
}  // namespace wrbpg
