#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/trace.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "dataflows/random_dag.h"
#include "dataflows/tree_graph.h"
#include "schedulers/belady.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/kary_tree.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

using testing::MakeChain;

TEST(Trace, RecordsOccupancyPerMove) {
  const Graph g = MakeChain(3, 4);
  Schedule s;
  s.Append(Load(0));     // 4
  s.Append(Compute(1));  // 8
  s.Append(Delete(0));   // 4
  s.Append(Compute(2));  // 8
  s.Append(Store(2));    // 8
  const OccupancyTrace trace = TraceOccupancy(g, 8, s);
  ASSERT_TRUE(trace.ok) << trace.error;
  EXPECT_EQ(trace.occupancy_bits, (std::vector<Weight>{4, 8, 4, 8, 8}));
  EXPECT_EQ(trace.peak_bits, 8);
  EXPECT_EQ(trace.peak_index, 1u);
}

TEST(Trace, PropagatesSimulatorErrors) {
  const Graph g = MakeChain(3, 4);
  Schedule s;
  s.Append(Compute(2));  // parent not red
  const OccupancyTrace trace = TraceOccupancy(g, 8, s);
  EXPECT_FALSE(trace.ok);
  EXPECT_FALSE(trace.error.empty());
  EXPECT_TRUE(trace.occupancy_bits.empty());
}

TEST(Trace, PeakMatchesSimulatorOnRealSchedule) {
  const DwtGraph dwt = BuildDwt(32, 5);
  DwtOptimalScheduler sched(dwt);
  const Weight budget = 200;
  const auto run = sched.Run(budget);
  ASSERT_TRUE(run.feasible);
  const OccupancyTrace trace = TraceOccupancy(dwt.graph, budget, run.schedule);
  ASSERT_TRUE(trace.ok);
  const SimResult sim = testing::ExpectValid(dwt.graph, budget, run.schedule);
  EXPECT_EQ(trace.peak_bits, sim.peak_red_weight);
  EXPECT_EQ(trace.occupancy_bits.size(), run.schedule.size());
}

TEST(Trace, RenderShowsPeakAndScale) {
  const DwtGraph dwt = BuildDwt(32, 5);
  DwtOptimalScheduler sched(dwt);
  const auto run = sched.Run(200);
  const OccupancyTrace trace = TraceOccupancy(dwt.graph, 200, run.schedule);
  const std::string art = RenderOccupancy(trace, 200, 40, 8);
  EXPECT_NE(art.find("peak"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("budget |"), std::string::npos);
  // 8 chart rows + header + floor line.
  EXPECT_EQ(static_cast<int>(std::count(art.begin(), art.end(), '\n')), 10);
}

TEST(Trace, RenderHandlesEmptyTrace) {
  OccupancyTrace empty;
  EXPECT_NE(RenderOccupancy(empty, 100).find("no occupancy data"),
            std::string::npos);
}

// Splits the chart body (the "|...|" rows, top row first) out of a render.
std::vector<std::string> ChartRows(const std::string& art) {
  std::vector<std::string> rows;
  std::istringstream in(art);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t open = line.find('|');
    if (open == std::string::npos || line.find('+') != std::string::npos) {
      continue;
    }
    const std::size_t close = line.rfind('|');
    rows.push_back(line.substr(open + 1, close - open - 1));
  }
  return rows;
}

// Regression (threshold math): with more chart rows than budget bits, the
// truncating-division thresholds collapsed to 0 on the lower rows, so every
// column — including columns whose occupancy is zero — rendered '#'.
// Ceiling division keeps the bottom row's threshold at >= 1.
TEST(Trace, RenderTinyBudgetKeepsZeroColumnsBlank) {
  const Graph g = MakeChain(3, 4);
  Schedule s;
  s.Append(Load(0));     // 4
  s.Append(Compute(1));  // 8
  s.Append(Delete(0));   // 4
  s.Append(Compute(2));  // 8
  s.Append(Store(2));    // 8
  s.Append(Delete(1));   // 4
  s.Append(Delete(2));   // 0  <- a zero-occupancy column
  const OccupancyTrace trace = TraceOccupancy(g, 8, s);
  ASSERT_TRUE(trace.ok) << trace.error;
  // 16 rows for an 8-bit budget: every row threshold must still be >= 1.
  const std::string art = RenderOccupancy(trace, 8, 40, 16);
  const std::vector<std::string> rows = ChartRows(art);
  ASSERT_EQ(rows.size(), 16u);
  for (const std::string& row : rows) {
    ASSERT_EQ(row.size(), s.size());
    EXPECT_EQ(row.back(), ' ') << "zero-occupancy column painted: " << art;
  }
  // The bottom row shows every nonzero column; the top row only the peak.
  EXPECT_EQ(rows.back().substr(0, 6), "######");
  EXPECT_EQ(rows.front(), std::string(" # ##  "));
}

// Regression (overflow): thresholds were computed as budget * row, which
// overflows Weight for budgets near kInfiniteCost and painted garbage.
// The decomposed ceiling division stays in range for any budget.
TEST(Trace, RenderNearInfiniteBudgetDoesNotOverflow) {
  const Graph g = MakeChain(3, 4);
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));
  s.Append(Delete(0));
  s.Append(Compute(2));
  s.Append(Store(2));
  const Weight budget = kInfiniteCost - 1;
  const OccupancyTrace trace = TraceOccupancy(g, budget, s);
  ASSERT_TRUE(trace.ok) << trace.error;
  const std::string art = RenderOccupancy(trace, budget, 40, 8);
  // Occupancy is 8 bits against a ~2^61 budget: no row threshold is met,
  // and nothing overflowed into negative thresholds (all-'#' rows).
  for (const std::string& row : ChartRows(art)) {
    EXPECT_EQ(row.find('#'), std::string::npos) << art;
  }
}

// The header reports the peak move 1-based, consistent with "of <count>";
// OccupancyTrace::peak_index itself stays a 0-based array index.
TEST(Trace, RenderReportsPeakMoveOneBased) {
  const Graph g = MakeChain(3, 4);
  Schedule s;
  s.Append(Load(0));     // 4
  s.Append(Compute(1));  // 8 <- peak, index 1, human move 2
  s.Append(Delete(0));
  s.Append(Compute(2));
  s.Append(Store(2));
  const OccupancyTrace trace = TraceOccupancy(g, 8, s);
  ASSERT_TRUE(trace.ok) << trace.error;
  EXPECT_EQ(trace.peak_index, 1u);
  const std::string art = RenderOccupancy(trace, 8, 40, 8);
  EXPECT_NE(art.find("at move 2 of 5"), std::string::npos) << art;
}

// Differential contract: TraceOccupancy and Simulate are two replays of
// the same rules, so on every valid schedule the trace's series must agree
// with the simulator's peak/final occupancy, across all graph families and
// both loose and tight budgets.
TEST(Trace, OccupancyAgreesWithSimulatorAcrossFamilies) {
  struct Case {
    std::string name;
    Graph graph;
    Schedule schedule;
    Weight budget = 0;
  };
  std::vector<Case> cases;
  const Weight slacks[] = {0, 8, 64};
  for (const Weight slack : slacks) {
    const DwtGraph dwt = BuildDwt(16, 3);
    const Weight budget = MinValidBudget(dwt.graph) + slack;
    DwtOptimalScheduler sched(dwt);
    cases.push_back({"dwt+" + std::to_string(slack), dwt.graph,
                     sched.Run(budget).schedule, budget});
  }
  for (const Weight slack : slacks) {
    const TreeGraph tree = BuildPerfectTree(3, 3);
    const Weight budget = MinValidBudget(tree.graph) + slack;
    KaryTreeScheduler sched(tree.graph);
    cases.push_back({"kary+" + std::to_string(slack), tree.graph,
                     sched.Run(budget).schedule, budget});
  }
  for (const Weight slack : slacks) {
    const MvmGraph mvm = BuildMvm(5, 4);
    const Weight budget = MinValidBudget(mvm.graph) + slack;
    cases.push_back({"mvm+" + std::to_string(slack), mvm.graph,
                     BeladyScheduler(mvm.graph).Run(budget).schedule, budget});
  }
  for (const Weight slack : slacks) {
    Rng rng(0x7ace5u + static_cast<std::uint64_t>(slack));
    const Graph dag = BuildRandomDag(rng, {.num_layers = 5,
                                           .nodes_per_layer = 4,
                                           .max_in_degree = 3});
    const Weight budget = MinValidBudget(dag) + slack;
    cases.push_back({"dag+" + std::to_string(slack), dag,
                     BeladyScheduler(dag).Run(budget).schedule, budget});
  }

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    ASSERT_FALSE(c.schedule.empty());
    const SimResult sim =
        testing::ExpectValid(c.graph, c.budget, c.schedule);
    const OccupancyTrace trace = TraceOccupancy(c.graph, c.budget, c.schedule);
    ASSERT_TRUE(trace.ok) << trace.error;
    ASSERT_EQ(trace.occupancy_bits.size(), c.schedule.size());
    EXPECT_EQ(trace.peak_bits, sim.peak_red_weight);
    EXPECT_EQ(*std::max_element(trace.occupancy_bits.begin(),
                                trace.occupancy_bits.end()),
              sim.peak_red_weight);
    EXPECT_EQ(trace.occupancy_bits[trace.peak_index], trace.peak_bits);
    EXPECT_EQ(trace.occupancy_bits.back(), sim.final_red_weight);
    EXPECT_LE(trace.peak_bits, c.budget);
  }
}

}  // namespace
}  // namespace wrbpg
