#include <gtest/gtest.h>

#include "core/trace.h"
#include "dataflows/dwt_graph.h"
#include "schedulers/dwt_optimal.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

using testing::MakeChain;

TEST(Trace, RecordsOccupancyPerMove) {
  const Graph g = MakeChain(3, 4);
  Schedule s;
  s.Append(Load(0));     // 4
  s.Append(Compute(1));  // 8
  s.Append(Delete(0));   // 4
  s.Append(Compute(2));  // 8
  s.Append(Store(2));    // 8
  const OccupancyTrace trace = TraceOccupancy(g, 8, s);
  ASSERT_TRUE(trace.ok) << trace.error;
  EXPECT_EQ(trace.occupancy_bits, (std::vector<Weight>{4, 8, 4, 8, 8}));
  EXPECT_EQ(trace.peak_bits, 8);
  EXPECT_EQ(trace.peak_index, 1u);
}

TEST(Trace, PropagatesSimulatorErrors) {
  const Graph g = MakeChain(3, 4);
  Schedule s;
  s.Append(Compute(2));  // parent not red
  const OccupancyTrace trace = TraceOccupancy(g, 8, s);
  EXPECT_FALSE(trace.ok);
  EXPECT_FALSE(trace.error.empty());
  EXPECT_TRUE(trace.occupancy_bits.empty());
}

TEST(Trace, PeakMatchesSimulatorOnRealSchedule) {
  const DwtGraph dwt = BuildDwt(32, 5);
  DwtOptimalScheduler sched(dwt);
  const Weight budget = 200;
  const auto run = sched.Run(budget);
  ASSERT_TRUE(run.feasible);
  const OccupancyTrace trace = TraceOccupancy(dwt.graph, budget, run.schedule);
  ASSERT_TRUE(trace.ok);
  const SimResult sim = testing::ExpectValid(dwt.graph, budget, run.schedule);
  EXPECT_EQ(trace.peak_bits, sim.peak_red_weight);
  EXPECT_EQ(trace.occupancy_bits.size(), run.schedule.size());
}

TEST(Trace, RenderShowsPeakAndScale) {
  const DwtGraph dwt = BuildDwt(32, 5);
  DwtOptimalScheduler sched(dwt);
  const auto run = sched.Run(200);
  const OccupancyTrace trace = TraceOccupancy(dwt.graph, 200, run.schedule);
  const std::string art = RenderOccupancy(trace, 200, 40, 8);
  EXPECT_NE(art.find("peak"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("budget |"), std::string::npos);
  // 8 chart rows + header + floor line.
  EXPECT_EQ(static_cast<int>(std::count(art.begin(), art.end(), '\n')), 10);
}

TEST(Trace, RenderHandlesEmptyTrace) {
  OccupancyTrace empty;
  EXPECT_NE(RenderOccupancy(empty, 100).find("no occupancy data"),
            std::string::npos);
}

}  // namespace
}  // namespace wrbpg
