// Differential pin of the orbit root-move pruning and the certified root
// bound (BruteForceOptions::prune_root_loads / root_lower_bound): across
// engines, thread counts, and both state representations, results with
// the options ON are bit-identical to the plain search — same cost, same
// canonical schedule — because the canonical optimum's first move loads
// its orbit's minimum source, which is never pruned, and the root bound
// feeds only the REPORTED lower bound of interrupted exits.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analysis.h"
#include "dataflows/butterfly_graph.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/tree_graph.h"
#include "ganalysis/bounds.h"
#include "ganalysis/canonical.h"
#include "schedulers/brute_force.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

struct Case {
  std::string name;
  Graph graph;
  Weight budget = 0;
};

std::vector<Case> Corpus() {
  std::vector<Case> corpus;
  {
    Graph g = BuildPerfectTree(2, 3).graph;  // 15 nodes, 8-way leaf orbit
    const Weight budget = MinValidBudget(g) + 2;
    corpus.push_back({"kary(2,3)", std::move(g), budget});
  }
  {
    Graph g = BuildDwt(8, 1).graph;  // symmetric input pairs
    const Weight budget = MinValidBudget(g) + 2;
    corpus.push_back({"dwt(8,1)", std::move(g), budget});
  }
  {
    Graph g = BuildButterfly(4).graph;  // non-tree, orbit-rich
    const Weight budget = MinValidBudget(g) + 2;
    corpus.push_back({"butterfly(4)", std::move(g), budget});
  }
  {
    Graph g = testing::MakeDiamond({3, 5, 7, 11, 13});  // rigid: no prune
    const Weight budget = MinValidBudget(g) + 4;
    corpus.push_back({"diamond", std::move(g), budget});
  }
  return corpus;
}

// Sources whose verified orbit has a smaller-id source; their root loads
// are the ones the searcher may soundly skip.
std::vector<NodeId> PrunableSources(const Graph& graph) {
  const OrbitPartition orbits = ComputeOrbits(graph);
  std::vector<NodeId> pruned;
  for (const NodeId s : graph.sources()) {
    if (orbits.orbit_of[s] != s) pruned.push_back(s);
  }
  return pruned;
}

TEST(OrbitPruneDifferential, BitIdenticalAcrossEnginesThreadsAndStates) {
  const std::vector<SearchEngine> engines = {
      SearchEngine::kDijkstra, SearchEngine::kAStarDominance,
      SearchEngine::kBranchAndBound};
  const std::vector<std::size_t> thread_counts = {1, 2, 8};

  for (const Case& c : Corpus()) {
    const BruteForceScheduler scheduler(c.graph);
    const std::vector<NodeId> pruned = PrunableSources(c.graph);
    const Weight cert_lb = BestCertifiedBound(c.graph, c.budget);

    // The reference: sequential dijkstra, no pruning, packed state.
    BruteForceOptions plain;
    plain.engine = SearchEngine::kDijkstra;
    plain.threads = 1;
    const ScheduleResult reference = scheduler.Run(c.budget, plain);
    ASSERT_TRUE(reference.feasible) << c.name;
    testing::ExpectValid(c.graph, c.budget, reference.schedule);

    for (const SearchEngine engine : engines) {
      for (const std::size_t threads : thread_counts) {
        for (const bool wide : {false, true}) {
          BruteForceOptions options;
          options.engine = engine;
          options.threads = threads;
          options.force_wide_state = wide;
          options.prune_root_loads = &pruned;
          options.root_lower_bound = cert_lb;
          const ScheduleResult result = scheduler.Run(c.budget, options);
          const std::string label =
              c.name + " engine=" + ToString(engine) + " threads=" +
              std::to_string(threads) + (wide ? " wide" : " packed");
          ASSERT_TRUE(result.feasible) << label;
          EXPECT_EQ(result.cost, reference.cost) << label;
          EXPECT_EQ(result.schedule, reference.schedule) << label;
          EXPECT_EQ(result.termination, Termination::kOptimal) << label;
        }
      }
    }
  }
}

// Pruning must actually bite on the symmetric instances: fewer states
// generated than the unpruned search at the same settings.
TEST(OrbitPruneDifferential, PruningReducesGeneratedStates) {
  const Graph g = BuildPerfectTree(2, 3).graph;
  const Weight budget = MinValidBudget(g) + 2;
  const std::vector<NodeId> pruned = PrunableSources(g);
  ASSERT_FALSE(pruned.empty());  // 8 leaves collapse onto one representative

  const BruteForceScheduler scheduler(g);
  SearchStats with_stats, without_stats;
  BruteForceOptions with;
  with.threads = 1;
  with.prune_root_loads = &pruned;
  with.stats = &with_stats;
  BruteForceOptions without;
  without.threads = 1;
  without.stats = &without_stats;
  const ScheduleResult a = scheduler.Run(budget, with);
  const ScheduleResult b = scheduler.Run(budget, without);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_LT(with_stats.generated, without_stats.generated);
}

// Non-standard games (custom initial pebbles) ignore both options: the
// caller's certificate only covers the standard start state.
TEST(OrbitPruneDifferential, NonStandardGamesIgnoreTheOptions) {
  const Graph g = BuildPerfectTree(2, 3).graph;
  const Weight budget = MinValidBudget(g) + 2;
  const std::vector<NodeId> pruned = PrunableSources(g);

  BruteForceOptions custom;
  custom.initial_red = 1;  // node 0 starts red: not the standard game
  custom.prune_root_loads = &pruned;
  custom.root_lower_bound = kInfiniteCost / 2;  // absurd; must be ignored
  BruteForceOptions plain;
  plain.initial_red = 1;
  const BruteForceScheduler scheduler(g);
  const ScheduleResult a = scheduler.Run(budget, custom);
  const ScheduleResult b = scheduler.Run(budget, plain);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
}

}  // namespace
}  // namespace wrbpg
