#include <gtest/gtest.h>

#include <tuple>

#include "core/analysis.h"
#include "dataflows/dwt_graph.h"
#include "schedulers/brute_force.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/layer_by_layer.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

LayerByLayerScheduler MakeDwtBaseline(const DwtGraph& dwt,
                                      bool alternate = true) {
  return LayerByLayerScheduler(dwt.graph, dwt.layers, alternate);
}

class LayerByLayerSweepTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int, bool>> {};

TEST_P(LayerByLayerSweepTest, ProducesValidSchedulesAcrossBudgets) {
  const auto [n, d, double_acc] = GetParam();
  const PrecisionConfig config = double_acc
                                     ? PrecisionConfig::DoubleAccumulator()
                                     : PrecisionConfig::Equal();
  const DwtGraph dwt = BuildDwt(n, d, config);
  const LayerByLayerScheduler baseline = MakeDwtBaseline(dwt);
  const Weight lo = MinValidBudget(dwt.graph);
  const Weight lb = AlgorithmicLowerBound(dwt.graph);

  for (Weight b = lo; b <= lo + 640; b += 80) {
    const auto run = baseline.Run(b);
    ASSERT_TRUE(run.feasible) << "budget " << b;
    const SimResult sim = testing::ExpectValid(dwt.graph, b, run.schedule);
    EXPECT_EQ(sim.cost, run.cost) << "budget " << b;
    EXPECT_GE(run.cost, lb);
  }
}

TEST_P(LayerByLayerSweepTest, NeverBeatsTheOptimalScheduler) {
  const auto [n, d, double_acc] = GetParam();
  const PrecisionConfig config = double_acc
                                     ? PrecisionConfig::DoubleAccumulator()
                                     : PrecisionConfig::Equal();
  const DwtGraph dwt = BuildDwt(n, d, config);
  const LayerByLayerScheduler baseline = MakeDwtBaseline(dwt);
  DwtOptimalScheduler optimal(dwt);
  const Weight lo = MinValidBudget(dwt.graph);
  for (Weight b = lo; b <= lo + 640; b += 160) {
    EXPECT_GE(baseline.CostOnly(b), optimal.CostOnly(b)) << "budget " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayerByLayerSweepTest,
    ::testing::Values(std::tuple{8, 3, false}, std::tuple{16, 4, false},
                      std::tuple{16, 2, true}, std::tuple{32, 5, false},
                      std::tuple{64, 6, true}, std::tuple{256, 8, false},
                      std::tuple{256, 8, true}));

TEST(LayerByLayer, InfeasibleBelowMinValidBudget) {
  const DwtGraph dwt = BuildDwt(16, 4);
  const LayerByLayerScheduler baseline = MakeDwtBaseline(dwt);
  EXPECT_EQ(baseline.CostOnly(MinValidBudget(dwt.graph) - 1), kInfiniteCost);
}

TEST(LayerByLayer, FeasibleAtMinValidBudget) {
  const DwtGraph dwt = BuildDwt(16, 4, PrecisionConfig::DoubleAccumulator());
  const LayerByLayerScheduler baseline = MakeDwtBaseline(dwt);
  const Weight lo = MinValidBudget(dwt.graph);
  const auto run = baseline.Run(lo);
  ASSERT_TRUE(run.feasible);
  testing::ExpectValid(dwt.graph, lo, run.schedule);
}

TEST(LayerByLayer, ReachesLowerBoundWithAmpleMemory) {
  const DwtGraph dwt = BuildDwt(32, 5);
  const LayerByLayerScheduler baseline = MakeDwtBaseline(dwt);
  EXPECT_EQ(baseline.CostOnly(dwt.graph.total_weight()),
            AlgorithmicLowerBound(dwt.graph));
}

TEST(LayerByLayer, MinMemoryFarExceedsOptimal) {
  // The headline asymmetry of Table 1: the baseline needs orders of
  // magnitude more fast memory than the optimal scheduler to reach the
  // algorithmic lower bound.
  const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::Equal());
  const LayerByLayerScheduler baseline = MakeDwtBaseline(dwt);
  DwtOptimalScheduler optimal(dwt);
  const Weight baseline_bits =
      baseline.MinMemoryForLowerBound(kWordBits, 1 << 16);
  const Weight optimal_bits = optimal.MinMemoryForLowerBound(kWordBits, 1 << 16);
  ASSERT_GT(baseline_bits, 0);
  EXPECT_EQ(optimal_bits, 160);
  EXPECT_GE(baseline_bits, 8 * optimal_bits);
}

TEST(LayerByLayer, AlternationNeverHurtsOnDwt) {
  // The paper motivates alternating traversal as retaining recently
  // computed values across adjacent layers; verify it does not increase
  // I/O on the evaluation workload at moderate budgets.
  const DwtGraph dwt = BuildDwt(64, 6);
  const LayerByLayerScheduler alternating = MakeDwtBaseline(dwt, true);
  const LayerByLayerScheduler fixed = MakeDwtBaseline(dwt, false);
  const Weight lo = MinValidBudget(dwt.graph);
  for (Weight b = lo; b <= lo + 512; b += 64) {
    EXPECT_LE(alternating.CostOnly(b), fixed.CostOnly(b)) << "budget " << b;
  }
}

TEST(LayerByLayer, SpillsAreStoredBeforeEviction) {
  // At a tight budget, values needed later round-trip through slow memory;
  // the move sequence must stay legal (covered by simulation) and every
  // spilled value must be re-loadable — i.e. no schedule failure.
  const DwtGraph dwt = BuildDwt(32, 5);
  const LayerByLayerScheduler baseline = MakeDwtBaseline(dwt);
  const Weight lo = MinValidBudget(dwt.graph);
  const auto run = baseline.Run(lo + 16);
  ASSERT_TRUE(run.feasible);
  const SimResult sim =
      testing::ExpectValid(dwt.graph, lo + 16, run.schedule);
  EXPECT_GT(sim.stores, dwt.graph.sinks().size());  // real spills happened
}

}  // namespace
}  // namespace wrbpg
