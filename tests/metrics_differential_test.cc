// The observability determinism contract (DESIGN.md §10): metrics are
// write-only for every algorithm, so collection on vs. off must produce
// bit-identical schedules — across all four exact engines, at 1/2/8
// threads, and through the robust fallback chain. A divergence here means
// some scheduling decision read a counter, which the design forbids.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "dataflows/tree_graph.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "robust/robust_scheduler.h"
#include "schedulers/brute_force.h"

namespace wrbpg {
namespace {

constexpr SearchEngine kEngines[] = {SearchEngine::kDijkstra,
                                     SearchEngine::kAStar,
                                     SearchEngine::kAStarDominance,
                                     SearchEngine::kBranchAndBound};
constexpr std::size_t kThreadCounts[] = {1, 2, 8};

class MetricsDifferentialTest : public ::testing::Test {
 protected:
  // Collection is process-global state; leave it enabled for other tests
  // no matter how a test here exits.
  void TearDown() override {
    obs::SetEnabled(true);
    obs::ResetAll();
  }
};

TEST_F(MetricsDifferentialTest, EnginesBitIdenticalWithMetricsOnAndOff) {
  const TreeGraph tree = BuildPerfectTree(2, 3);
  const Weight budget = MinValidBudget(tree.graph) + 2;
  const BruteForceScheduler scheduler(tree.graph);

  for (const SearchEngine engine : kEngines) {
    for (const std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(std::string(ToString(engine)) + " threads=" +
                   std::to_string(threads));
      BruteForceOptions options;
      options.engine = engine;
      options.threads = threads;
      SearchStats stats_on;
      options.stats = &stats_on;

      obs::SetEnabled(true);
      obs::ResetAll();
      const ScheduleResult with_metrics = scheduler.Run(budget, options);
      // Collection really happened: the run's own totals reached the
      // registry (mirrored from the same stats the caller sees).
      EXPECT_EQ(obs::ReadMetric("search.runs"), 1u);
      EXPECT_EQ(obs::ReadMetric("search.expanded"), stats_on.expanded);
      EXPECT_EQ(obs::ReadMetric("search.waves"), stats_on.waves);

      SearchStats stats_off;
      options.stats = &stats_off;
      obs::SetEnabled(false);
      obs::ResetAll();
      const ScheduleResult without_metrics = scheduler.Run(budget, options);
      EXPECT_EQ(obs::ReadMetric("search.runs"), 0u);

      ASSERT_EQ(with_metrics.feasible, without_metrics.feasible);
      EXPECT_EQ(with_metrics.cost, without_metrics.cost);
      EXPECT_EQ(with_metrics.schedule, without_metrics.schedule);
      // SearchStats are part of the deterministic surface too (expanded
      // and waves are pure functions of the inputs).
      EXPECT_EQ(stats_on.expanded, stats_off.expanded);
      EXPECT_EQ(stats_on.waves, stats_off.waves);
      EXPECT_EQ(stats_on.max_frontier, stats_off.max_frontier);
    }
  }
}

TEST_F(MetricsDifferentialTest, RobustChainBitIdenticalWithMetricsOnAndOff) {
  const TreeGraph tree = BuildPerfectTree(2, 3);
  const Weight budget = MinValidBudget(tree.graph) + 2;
  const RobustScheduler scheduler(tree.graph);

  for (const std::size_t threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    RobustOptions options;
    options.threads = threads;

    obs::SetEnabled(true);
    obs::ResetAll();
    const RobustResult with_metrics = scheduler.Run(budget, options);
    EXPECT_EQ(obs::ReadMetric("robust.runs"), 1u);

    obs::SetEnabled(false);
    obs::ResetAll();
    const RobustResult without_metrics = scheduler.Run(budget, options);

    ASSERT_EQ(with_metrics.result.feasible, without_metrics.result.feasible);
    EXPECT_EQ(with_metrics.winner, without_metrics.winner);
    EXPECT_EQ(with_metrics.result.cost, without_metrics.result.cost);
    EXPECT_EQ(with_metrics.result.schedule, without_metrics.result.schedule);
    ASSERT_EQ(with_metrics.stages.size(), without_metrics.stages.size());
    for (std::size_t i = 0; i < with_metrics.stages.size(); ++i) {
      EXPECT_EQ(with_metrics.stages[i].outcome,
                without_metrics.stages[i].outcome);
    }
  }
}

// The winner-provenance counters use dynamic names; pin the name scheme.
TEST_F(MetricsDifferentialTest, RobustWinnerCounterUsesStageName) {
  const TreeGraph tree = BuildPerfectTree(2, 3);
  const Weight budget = MinValidBudget(tree.graph) + 2;
  obs::ResetAll();
  const RobustResult result = RobustScheduler(tree.graph).Run(budget, {});
  ASSERT_TRUE(result.result.feasible);
  EXPECT_EQ(obs::ReadMetric("robust.winner." + result.winner), 1u);
}

}  // namespace
}  // namespace wrbpg
