#include <gtest/gtest.h>

#include "core/analysis.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "schedulers/greedy_topo.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

using testing::MakeChain;
using testing::MakeDiamond;

TEST(GreedyTopo, InfeasibleBelowMinValidBudget) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  GreedyTopoScheduler sched(g);
  EXPECT_FALSE(sched.Run(MinValidBudget(g) - 1).feasible);
  EXPECT_EQ(sched.CostOnly(MinValidBudget(g) - 1), kInfiniteCost);
}

TEST(GreedyTopo, ValidAtExactlyMinValidBudget) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  GreedyTopoScheduler sched(g);
  const auto result = sched.Run(MinValidBudget(g));
  ASSERT_TRUE(result.feasible);
  const SimResult sim =
      testing::ExpectValid(g, MinValidBudget(g), result.schedule);
  EXPECT_EQ(sim.cost, result.cost);
  EXPECT_EQ(sched.CostOnly(MinValidBudget(g)), result.cost);
}

TEST(GreedyTopo, CostIsOneLoadPerEdgePlusStores) {
  const Graph g = MakeChain(5, 2);  // 4 compute nodes, 4 edges
  GreedyTopoScheduler sched(g);
  const auto result = sched.Run(100);
  ASSERT_TRUE(result.feasible);
  // Each non-source: parents loaded (2 bits each edge) + itself stored.
  EXPECT_EQ(result.cost, 4 * 2 + 4 * 2);
}

TEST(GreedyTopo, CostNeverBelowAlgorithmicLowerBound) {
  for (const auto& g :
       {MakeDiamond({3, 5, 7, 11, 13}), MakeChain(7, 3), MakeDiamond()}) {
    GreedyTopoScheduler sched(g);
    EXPECT_GE(sched.CostOnly(1000), AlgorithmicLowerBound(g));
  }
}

TEST(GreedyTopo, HandlesDwtAndMvmGraphs) {
  const DwtGraph dwt = BuildDwt(16, 4);
  GreedyTopoScheduler dwt_sched(dwt.graph);
  const Weight b1 = MinValidBudget(dwt.graph);
  const auto r1 = dwt_sched.Run(b1);
  ASSERT_TRUE(r1.feasible);
  testing::ExpectValid(dwt.graph, b1, r1.schedule);

  const MvmGraph mvm = BuildMvm(4, 3, PrecisionConfig::DoubleAccumulator());
  GreedyTopoScheduler mvm_sched(mvm.graph);
  const Weight b2 = MinValidBudget(mvm.graph);
  const auto r2 = mvm_sched.Run(b2);
  ASSERT_TRUE(r2.feasible);
  testing::ExpectValid(mvm.graph, b2, r2.schedule);
}

TEST(GreedyTopo, BudgetDoesNotChangeCost) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  GreedyTopoScheduler sched(g);
  EXPECT_EQ(sched.CostOnly(31), sched.CostOnly(1'000'000));
}

}  // namespace
}  // namespace wrbpg
