// Differential tests for the DESIGN.md §9 engine-independence contract:
// dijkstra, astar, astar+dominance, and bb return BIT-IDENTICAL results —
// same feasibility, same cost, same canonical move sequence — at every
// thread count AND through either state representation (the packed
// 64-bit fast path or the wide interned one, force_wide_state). The
// informed engines prune and reorder the search, but they reconstruct
// from a distance map whose optimal-path entries provably coincide with
// the uninformed one.
//
// Coverage mirrors parallel_determinism_test.cc: four graph families at
// several budgets (each engine at 1/2/8 threads against the dijkstra
// sequential reference) plus 200+ search problems derived from
// FaultInjector corpora, whose mutated budgets and mid-schedule memory
// states land on infeasible, trivial, and adversarial instances alike.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "dataflows/butterfly_graph.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/random_dag.h"
#include "dataflows/tree_graph.h"
#include "robust/fault_injector.h"
#include "schedulers/belady.h"
#include "schedulers/brute_force.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

using testing::ExpectValid;
using testing::MakeChain;
using testing::MakeDiamond;

constexpr SearchEngine kAllEngines[] = {SearchEngine::kDijkstra,
                                        SearchEngine::kAStar,
                                        SearchEngine::kAStarDominance,
                                        SearchEngine::kBranchAndBound};

void ExpectIdentical(const ScheduleResult& ref, const ScheduleResult& got,
                     const std::string& label) {
  EXPECT_EQ(ref.feasible, got.feasible) << label;
  EXPECT_EQ(ref.timed_out, got.timed_out) << label;
  EXPECT_EQ(ref.cost, got.cost) << label;
  EXPECT_TRUE(ref.schedule == got.schedule)
      << label << ": schedules differ\nref:\n"
      << ref.schedule.ToString() << "got:\n"
      << got.schedule.ToString();
}

// Reference = dijkstra sequential; every other (engine, threads) pair
// must reproduce it bit for bit.
void ExpectEnginesAgree(const Graph& graph, Weight budget,
                        const BruteForceOptions& base,
                        const std::string& label) {
  const BruteForceScheduler scheduler(graph);
  BruteForceOptions options = base;
  options.engine = SearchEngine::kDijkstra;
  options.threads = 1;
  const ScheduleResult ref = scheduler.Run(budget, options);
  // A completed exact run certifies its own optimality: the anytime
  // contract fields must close the gap no matter which engine ran.
  if (ref.feasible) {
    EXPECT_EQ(ref.lower_bound, ref.cost) << label;
    EXPECT_EQ(ref.optimality_gap, 0) << label;
    EXPECT_EQ(ref.termination, Termination::kOptimal) << label;
  }
  for (const SearchEngine engine : kAllEngines) {
    for (const bool force_wide : {false, true}) {
      for (const std::size_t threads : {1u, 2u, 8u}) {
        if (engine == SearchEngine::kDijkstra && threads == 1 &&
            !force_wide) {
          continue;
        }
        options.engine = engine;
        options.threads = threads;
        options.force_wide_state = force_wide;
        const ScheduleResult got = scheduler.Run(budget, options);
        ExpectIdentical(ref, got,
                        label + " engine=" + ToString(engine) +
                            " threads=" + std::to_string(threads) +
                            (force_wide ? " wide" : " packed"));
        if (got.feasible) {
          EXPECT_EQ(got.lower_bound, ref.cost) << label;
          EXPECT_EQ(got.termination, Termination::kOptimal) << label;
        }
      }
    }
    // CostOnly must agree with the full run's cost as well.
    options.engine = engine;
    options.threads = 1;
    options.force_wide_state = false;
    const Weight cost = scheduler.CostOnly(budget, options);
    if (ref.feasible) {
      EXPECT_EQ(cost, ref.cost) << label << " engine=" << ToString(engine);
    } else {
      EXPECT_GE(cost, kInfiniteCost)
          << label << " engine=" << ToString(engine);
    }
  }
  if (ref.feasible) {
    SimOptions sim_options;
    sim_options.require_stop_condition = base.require_sinks_blue;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      const std::uint64_t bit = std::uint64_t{1} << v;
      if (base.initial_red & bit) sim_options.initial_red.push_back(v);
      if (base.initial_blue && (*base.initial_blue & bit)) {
        sim_options.initial_blue.push_back(v);
      }
      if (base.required_red_at_end & bit) {
        sim_options.required_red_at_end.push_back(v);
      }
    }
    const SimResult sim =
        ExpectValid(graph, budget, ref.schedule, sim_options);
    EXPECT_EQ(sim.cost, ref.cost) << label;
  }
}

void ExpectEnginesAgree(const Graph& graph, Weight budget,
                        const std::string& label) {
  ExpectEnginesAgree(graph, budget, BruteForceOptions{}, label);
}

TEST(EngineDifferential, DwtFamily) {
  const DwtGraph dwt = BuildDwt(4, 2);
  const Weight lo = MinValidBudget(dwt.graph);
  for (const Weight budget : {lo, lo + 1, lo + 3, 2 * lo}) {
    ExpectEnginesAgree(dwt.graph, budget,
                       "dwt(4,2) budget=" + std::to_string(budget));
  }
}

TEST(EngineDifferential, KaryTreeFamily) {
  const TreeGraph tree = BuildPerfectTree(2, 2);
  const Weight lo = MinValidBudget(tree.graph);
  for (const Weight budget : {lo, lo + 2, 2 * lo}) {
    ExpectEnginesAgree(tree.graph, budget,
                       "kary(2,2) budget=" + std::to_string(budget));
  }
}

TEST(EngineDifferential, ButterflyFamily) {
  const ButterflyGraph fly = BuildButterfly(4);
  const Weight lo = MinValidBudget(fly.graph);
  for (const Weight budget : {lo, lo + 1}) {
    ExpectEnginesAgree(fly.graph, budget,
                       "butterfly(4) budget=" + std::to_string(budget));
  }
}

TEST(EngineDifferential, RandomDagFamily) {
  Rng rng(2026);
  RandomDagOptions options;
  options.num_layers = 3;
  options.nodes_per_layer = 3;
  options.max_in_degree = 2;
  for (int instance = 0; instance < 3; ++instance) {
    const Graph graph = BuildRandomDag(rng, options);
    const Weight lo = MinValidBudget(graph);
    for (const Weight budget : {lo, lo + 4}) {
      ExpectEnginesAgree(graph, budget,
                         "random-dag#" + std::to_string(instance) +
                             " budget=" + std::to_string(budget));
    }
  }
}

TEST(EngineDifferential, InfeasibleBudgetAgrees) {
  const Graph graph = MakeDiamond();
  ExpectEnginesAgree(graph, MinValidBudget(graph) - 1,
                     "diamond infeasible");
}

// Memory-state games (initial pebbles, required final red set) exercise
// the heuristic's required_red term and non-source initial blue sets.
TEST(EngineDifferential, MemoryStateGamesAgree) {
  const Graph graph = MakeDiamond({2, 3, 1, 2, 4});
  const Weight budget = MinValidBudget(graph) + 2;
  BruteForceOptions options;
  options.initial_red = 0b00010;  // node 1 resident
  options.required_red_at_end = 0b00100;
  ExpectEnginesAgree(graph, budget, options, "diamond memory-state");
}

// Replays the first `len` moves of a schedule known to be valid, returning
// the resulting (red, blue) masks for use as a brute-force initial state.
struct PebbleMasks {
  std::uint64_t red = 0;
  std::uint64_t blue = 0;
};

PebbleMasks ReplayPrefix(const Graph& graph, const Schedule& schedule,
                         std::size_t len) {
  PebbleMasks masks;
  for (const NodeId v : graph.sources()) masks.blue |= std::uint64_t{1} << v;
  for (std::size_t i = 0; i < len && i < schedule.size(); ++i) {
    const Move& move = schedule[i];
    const std::uint64_t bit = std::uint64_t{1} << move.node;
    switch (move.type) {
      case MoveType::kLoad:
      case MoveType::kCompute:
        masks.red |= bit;
        break;
      case MoveType::kStore:
        masks.blue |= bit;
        break;
      case MoveType::kDelete:
        masks.red &= ~bit;
        break;
    }
  }
  return masks;
}

// 200+ differential cases: every FaultInjector mutant of a few base
// schedules becomes a fresh search problem — the mutant's (possibly
// tightened) budget plus the memory state reached just before the fault
// site. All three engines must agree on all of them, sequential and
// parallel alike.
TEST(EngineDifferential, FaultInjectorDerivedCases) {
  struct Base {
    std::string name;
    Graph graph;
    Weight budget = 0;
  };
  std::vector<Base> bases;
  bases.push_back({"diamond", MakeDiamond({2, 3, 1, 2, 4}), 0});
  bases.push_back({"chain6", MakeChain(6, 2), 0});
  bases.push_back({"dwt(4,1)", BuildDwt(4, 1).graph, 0});
  bases.push_back({"kary(2,2)", BuildPerfectTree(2, 2).graph, 0});

  Rng rng(7);
  int cases_run = 0;
  for (Base& base : bases) {
    base.budget = MinValidBudget(base.graph) + 2;
    const ScheduleResult seed = BeladyScheduler(base.graph).Run(base.budget);
    ASSERT_TRUE(seed.feasible) << base.name;
    ExpectValid(base.graph, base.budget, seed.schedule);

    const FaultInjector injector(base.graph, base.budget, seed.schedule);
    const std::vector<FaultCase> corpus = injector.Corpus(rng, 12);
    const BruteForceScheduler scheduler(base.graph);
    for (const FaultCase& fault : corpus) {
      const PebbleMasks masks =
          ReplayPrefix(base.graph, seed.schedule, fault.position);
      BruteForceOptions options;
      options.initial_red = masks.red;
      options.initial_blue = masks.blue;
      options.engine = SearchEngine::kDijkstra;
      options.threads = 1;
      const ScheduleResult ref = scheduler.Run(fault.budget, options);
      for (const SearchEngine engine :
           {SearchEngine::kAStar, SearchEngine::kAStarDominance,
            SearchEngine::kBranchAndBound}) {
        for (const std::size_t threads : {1u, 8u}) {
          options.engine = engine;
          options.threads = threads;
          const ScheduleResult got = scheduler.Run(fault.budget, options);
          ExpectIdentical(ref, got,
                          base.name + " " + fault.label + " engine=" +
                              ToString(engine) +
                              " threads=" + std::to_string(threads));
        }
      }
      ++cases_run;
    }
  }
  EXPECT_GE(cases_run, 200) << "fault corpus shrank; widen per_kind";
}

}  // namespace
}  // namespace wrbpg
