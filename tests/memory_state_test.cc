#include <gtest/gtest.h>

#include <bit>

#include "core/analysis.h"
#include "core/graph_builder.h"
#include "dataflows/tree_graph.h"
#include "schedulers/brute_force.h"
#include "schedulers/kary_tree.h"
#include "schedulers/memory_state.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

std::uint64_t Bit0(NodeId v) { return std::uint64_t{1} << v; }

// Builds a random *binary* in-tree (every internal node has exactly two
// predecessors) small enough for the oracle.
Graph RandomBinaryTree(Rng& rng, int internal_nodes) {
  GraphBuilder b;
  std::vector<NodeId> frontier;
  frontier.push_back(b.AddNode(rng.UniformInt(1, 3)));
  int remaining = internal_nodes - 1;
  std::vector<NodeId> expand = frontier;
  while (!expand.empty()) {
    const NodeId v = expand.back();
    expand.pop_back();
    for (int c = 0; c < 2; ++c) {
      const NodeId child = b.AddNode(rng.UniformInt(1, 3));
      b.AddEdge(child, v);
      if (remaining > 0 && rng.Bernoulli(0.5)) {
        --remaining;
        expand.push_back(child);
      }
    }
  }
  return b.BuildOrDie();
}

// Brute-force options realizing the Sec 4.1 semantics for target/I/R.
BruteForceOptions StateOptions(const Graph& g, NodeId target,
                               const MemoryState& state) {
  BruteForceOptions options;
  options.initial_red = state.initial;
  std::uint64_t blue = 0;
  for (NodeId v : g.sources()) blue |= std::uint64_t{1} << v;
  blue |= state.reuse & ~state.initial;  // R \ I assumed spilled earlier
  options.initial_blue = blue;
  options.required_red_at_end =
      state.reuse | (std::uint64_t{1} << target);
  options.require_sinks_blue = false;
  return options;
}

TEST(MemoryState, EmptyStatesReduceToPlainTreePebbling) {
  Rng rng(17);
  const Graph g = RandomBinaryTree(rng, 4);
  MemoryStateScheduler state_sched(g);
  KaryTreeScheduler kary(g);
  const NodeId root = TreeRoot(g).value();

  const Weight lo = MinValidBudget(g);
  for (Weight b = lo; b <= lo + 6; ++b) {
    // KaryTreeScheduler's CostOnly includes the final root store; P_t alone
    // is CostOnly - w_root.
    const Weight plain = kary.CostOnly(b) - g.weight(root);
    EXPECT_EQ(state_sched.Cost(root, b, MemoryState{}), plain)
        << "budget " << b;
  }
}

TEST(MemoryState, InitialRootMakesComputationFree) {
  Rng rng(3);
  const Graph g = RandomBinaryTree(rng, 3);
  const NodeId root = TreeRoot(g).value();
  MemoryStateScheduler sched(g);
  MemoryState state;
  state.initial = std::uint64_t{1} << root;
  EXPECT_EQ(sched.Cost(root, g.total_weight(), state), 0);
}

TEST(MemoryState, ReuseOfDistantLeafChargesItsLoad) {
  // Root 0 with parents 1, 2 (leaves). Reuse leaf 1 alongside the root.
  GraphBuilder b;
  const NodeId root = b.AddNode(2);
  const NodeId l1 = b.AddNode(3);
  const NodeId l2 = b.AddNode(4);
  b.AddEdge(l1, root);
  b.AddEdge(l2, root);
  const Graph g = b.BuildOrDie();
  MemoryStateScheduler sched(g);

  MemoryState state;
  state.reuse = std::uint64_t{1} << l1;
  // Plain cost: load both leaves (3 + 4). The reuse set only constrains the
  // end state (leaf 1 must stay red), which the schedule satisfies anyway.
  EXPECT_EQ(sched.Cost(root, 100, state), 7);

  const auto run = sched.Run(root, 100, state);
  ASSERT_TRUE(run.feasible);
  SimOptions sim_options;
  sim_options.require_stop_condition = false;
  sim_options.required_red_at_end = {l1, root};
  testing::ExpectValid(g, 100, run.schedule, sim_options);
}

TEST(MemoryState, ReuseTightensTheBudget) {
  GraphBuilder b;
  const NodeId root = b.AddNode(2);
  const NodeId l1 = b.AddNode(3);
  const NodeId l2 = b.AddNode(4);
  b.AddEdge(l1, root);
  b.AddEdge(l2, root);
  const Graph g = b.BuildOrDie();
  MemoryStateScheduler sched(g);

  // Without reuse the root computation fits in 9 bits; requiring both
  // leaves resident at the end does not change the 9-bit footprint, but a
  // budget of 8 is infeasible either way.
  MemoryState both;
  both.reuse = (std::uint64_t{1} << l1) | (std::uint64_t{1} << l2);
  EXPECT_EQ(sched.Cost(root, 9, both), 7);
  EXPECT_EQ(sched.Cost(root, 8, both), kInfiniteCost);
}

class MemoryStateOracleTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemoryStateOracleTest, MatchesBruteForceWithRandomStates) {
  Rng rng(GetParam());
  const Graph g = RandomBinaryTree(rng, 3);
  if (g.num_nodes() > 13) GTEST_SKIP() << "oracle too slow";
  const NodeId root = TreeRoot(g).value();
  MemoryStateScheduler sched(g);
  BruteForceScheduler oracle(g);

  for (int trial = 0; trial < 4; ++trial) {
    // Random initial set (proper ancestors unavailable: pick any subset of
    // non-root nodes) and random reuse subset.
    MemoryState state;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (rng.Bernoulli(0.2)) state.initial |= std::uint64_t{1} << v;
      if (rng.Bernoulli(0.2)) state.reuse |= std::uint64_t{1} << v;
    }
    state.initial &= ~(std::uint64_t{1} << root);

    const Weight lo = MinValidBudget(g);
    for (Weight b = lo + 4; b <= lo + 10; b += 3) {
      const Weight oracle_cost =
          oracle.CostOnly(b, StateOptions(g, root, state));
      const Weight ours = sched.Cost(root, b, state);
      if (ours >= kInfiniteCost) {
        // Eq. (8)'s budget precondition is conservative (it co-locates the
        // whole reuse set with the parents); the oracle may still find a
        // schedule. Never the other way around.
        continue;
      }
      // Eq. (8) restricts the strategy space (reuse values pinned once
      // computed, fixed parent orderings), so it upper-bounds the game's
      // true optimum; with empty states the two coincide (tested above).
      EXPECT_GE(ours, oracle_cost)
          << "seed " << GetParam() << " trial " << trial << " budget " << b;

      const auto run = sched.Run(root, b, state);
      ASSERT_TRUE(run.feasible);
      SimOptions sim_options;
      sim_options.require_stop_condition = false;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const std::uint64_t bit = std::uint64_t{1} << v;
        if (state.initial & bit) sim_options.initial_red.push_back(v);
        if ((state.reuse & ~state.initial) & bit) {
          sim_options.initial_blue.push_back(v);
        }
        if ((state.reuse | (std::uint64_t{1} << root)) & bit) {
          sim_options.required_red_at_end.push_back(v);
        }
      }
      const SimResult sim =
          testing::ExpectValid(g, b, run.schedule, sim_options);
      EXPECT_EQ(sim.cost, run.cost);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryStateOracleTest,
                         ::testing::Range<std::uint64_t>(0, 16));

// ---------------------------------------------------------------------------
// k > 2: the Eq. (8) derivative on wider trees.
// ---------------------------------------------------------------------------

TEST(MemoryStateKary, EmptyStatesReduceToKaryTreePebbling) {
  const TreeGraph t = BuildPerfectTree(3, 2, PrecisionConfig::Equal(1));
  MemoryStateScheduler state_sched(t.graph);
  KaryTreeScheduler kary(t.graph);
  const Weight lo = MinValidBudget(t.graph);
  for (Weight b = lo; b <= lo + 6; ++b) {
    const Weight plain = kary.CostOnly(b) - t.graph.weight(t.root);
    EXPECT_EQ(state_sched.Cost(t.root, b, MemoryState{}), plain)
        << "budget " << b;
  }
}

TEST(MemoryStateKary, TernaryWithReuseStatesIsValidAndOracleBounded) {
  // Root with three internal parents, each reading two leaves: 10 nodes.
  GraphBuilder builder;
  const NodeId root = builder.AddNode(2);
  std::vector<NodeId> mids;
  for (int i = 0; i < 3; ++i) {
    const NodeId mid = builder.AddNode(2);
    builder.AddEdge(mid, root);
    mids.push_back(mid);
    for (int leaf = 0; leaf < 2; ++leaf) {
      builder.AddEdge(builder.AddNode(1), mid);
    }
  }
  const Graph g = builder.BuildOrDie();
  MemoryStateScheduler sched(g);
  BruteForceScheduler oracle(g);

  for (std::uint64_t reuse_mask :
       {std::uint64_t{0}, Bit0(mids[0]), Bit0(mids[0]) | Bit0(mids[2])}) {
    MemoryState state;
    state.reuse = reuse_mask;
    const Weight lo = MinValidBudget(g);
    for (Weight b = lo + 2; b <= lo + 8; b += 2) {
      const Weight ours = sched.Cost(root, b, state);
      if (ours >= kInfiniteCost) continue;

      BruteForceOptions options;
      std::uint64_t blue = 0;
      for (NodeId v : g.sources()) blue |= std::uint64_t{1} << v;
      options.initial_blue = blue | reuse_mask;
      options.required_red_at_end = reuse_mask | (std::uint64_t{1} << root);
      options.require_sinks_blue = false;
      EXPECT_GE(ours, oracle.CostOnly(b, options)) << "budget " << b;

      const auto run = sched.Run(root, b, state);
      ASSERT_TRUE(run.feasible);
      SimOptions sim_options;
      sim_options.require_stop_condition = false;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const std::uint64_t bit = std::uint64_t{1} << v;
        if (reuse_mask & bit) sim_options.initial_blue.push_back(v);
        if ((reuse_mask | (std::uint64_t{1} << root)) & bit) {
          sim_options.required_red_at_end.push_back(v);
        }
      }
      const SimResult sim =
          testing::ExpectValid(g, b, run.schedule, sim_options);
      EXPECT_EQ(sim.cost, run.cost) << "budget " << b;
    }
  }
}

}  // namespace
}  // namespace wrbpg
