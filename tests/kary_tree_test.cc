#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/graph_builder.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/tree_graph.h"
#include "schedulers/brute_force.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/kary_tree.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

using testing::MakeChain;

TEST(KaryTree, ChainIsScheduledAtLowerBound) {
  const Graph g = MakeChain(6, 2);
  KaryTreeScheduler sched(g);
  const auto run = sched.Run(4);  // minimal sliding budget
  ASSERT_TRUE(run.feasible);
  EXPECT_EQ(run.cost, AlgorithmicLowerBound(g));
  testing::ExpectValid(g, 4, run.schedule);
}

TEST(KaryTree, InfeasibleBelowMinValidBudget) {
  const TreeGraph t = BuildPerfectTree(2, 2, PrecisionConfig::Equal(1));
  KaryTreeScheduler sched(t.graph);
  EXPECT_EQ(sched.CostOnly(MinValidBudget(t.graph) - 1), kInfiniteCost);
}

TEST(KaryTree, PerfectBinaryTreeAmpleMemoryHitsLowerBound) {
  const TreeGraph t = BuildPerfectTree(2, 3, PrecisionConfig::Equal(1));
  KaryTreeScheduler sched(t.graph);
  const Weight total = t.graph.total_weight();
  EXPECT_EQ(sched.CostOnly(total), AlgorithmicLowerBound(t.graph));
  const auto run = sched.Run(total);
  ASSERT_TRUE(run.feasible);
  const SimResult sim = testing::ExpectValid(t.graph, total, run.schedule);
  EXPECT_EQ(sim.cost, run.cost);
}

// A perfect binary tree with unit weights needs levels + 2 pebbles to pebble
// without any I/O beyond the leaves and root (one per level plus the pair
// in flight).
TEST(KaryTree, BinaryTreeMinMemoryMatchesClassicBound) {
  for (int levels = 2; levels <= 5; ++levels) {
    const TreeGraph t =
        BuildPerfectTree(2, levels, PrecisionConfig::Equal(1));
    KaryTreeScheduler sched(t.graph);
    const Weight min_mem =
        sched.MinMemoryForLowerBound(1, t.graph.total_weight());
    EXPECT_EQ(min_mem, levels + 2) << "levels " << levels;
  }
}

class KaryOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KaryOracleTest, MatchesBruteForceOnRandomTrees) {
  Rng rng(GetParam());
  const RandomTreeOptions options{.max_k = 3, .max_internal = 4,
                                  .min_weight = 1, .max_weight = 4};
  const TreeGraph t = BuildRandomTree(rng, options);
  if (t.graph.num_nodes() > 14) GTEST_SKIP() << "oracle too slow";

  KaryTreeScheduler sched(t.graph);
  BruteForceScheduler oracle(t.graph);
  const Weight lo = MinValidBudget(t.graph);
  for (Weight b = lo; b <= lo + 5; ++b) {
    const Weight expected = oracle.CostOnly(b);
    EXPECT_EQ(sched.CostOnly(b), expected) << "budget " << b;
    const auto run = sched.Run(b);
    ASSERT_TRUE(run.feasible);
    const SimResult sim = testing::ExpectValid(t.graph, b, run.schedule);
    EXPECT_EQ(sim.cost, expected) << "budget " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KaryOracleTest,
                         ::testing::Range<std::uint64_t>(0, 24));

class KaryPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KaryPropertyTest, ValidMonotoneAndAboveLowerBound) {
  Rng rng(GetParam() + 1000);
  const RandomTreeOptions options{.max_k = 4, .max_internal = 12,
                                  .min_weight = 1, .max_weight = 6};
  const TreeGraph t = BuildRandomTree(rng, options);
  KaryTreeScheduler sched(t.graph);
  GreedyTopoScheduler greedy(t.graph);

  const Weight lo = MinValidBudget(t.graph);
  const Weight lb = AlgorithmicLowerBound(t.graph);
  Weight previous = kInfiniteCost;
  for (Weight b = lo; b <= lo + 20; b += 4) {
    const auto run = sched.Run(b);
    ASSERT_TRUE(run.feasible);
    const SimResult sim = testing::ExpectValid(t.graph, b, run.schedule);
    EXPECT_EQ(sim.cost, run.cost);
    EXPECT_GE(run.cost, lb);
    EXPECT_LE(run.cost, previous);
    EXPECT_LE(run.cost, greedy.CostOnly(b));
    previous = run.cost;
  }
  // Ample memory reaches the lower bound (trees have no re-reads).
  EXPECT_EQ(sched.CostOnly(t.graph.total_weight()), lb);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KaryPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 16));

// The DWT recursion is the k = 2 instance: on a single-subtree DWT the
// generic k-ary scheduler must agree with the specialized Algorithm 1 on
// the pruned tree, and the full-graph costs differ exactly by the pruned
// coefficients' stores (Lemma 3.4).
TEST(KaryTree, AgreesWithDwtOptimalOnPrunedTree) {
  const DwtGraph dwt = BuildDwt(16, 4, PrecisionConfig::DoubleAccumulator());
  const PrunedDwt pruned = PruneDwt(dwt);
  KaryTreeScheduler kary(pruned.graph);
  DwtOptimalScheduler dwt_optimal(dwt);

  Weight coefficient_bits = 0;
  for (NodeId v = 0; v < dwt.graph.num_nodes(); ++v) {
    if (dwt.roles[v] == DwtRole::kCoefficient) {
      coefficient_bits += dwt.graph.weight(v);
    }
  }

  const Weight lo = MinValidBudget(dwt.graph);
  for (Weight b = lo; b <= lo + 320; b += 32) {
    const Weight kary_cost = kary.CostOnly(b);
    const Weight dwt_cost = dwt_optimal.CostOnly(b);
    ASSERT_LT(kary_cost, kInfiniteCost);
    EXPECT_EQ(dwt_cost, kary_cost + coefficient_bits) << "budget " << b;
  }
}

TEST(KaryTree, TernaryPerfectTreeValidSchedules) {
  const TreeGraph t = BuildPerfectTree(3, 2, PrecisionConfig::Equal(1));
  KaryTreeScheduler sched(t.graph);
  const Weight lo = MinValidBudget(t.graph);
  for (Weight b = lo; b <= lo + 6; ++b) {
    const auto run = sched.Run(b);
    ASSERT_TRUE(run.feasible);
    testing::ExpectValid(t.graph, b, run.schedule);
  }
}

TEST(KaryTree, QuaternaryOracleSpotCheck) {
  // Single node with four leaf parents: k = 4.
  GraphBuilder b;
  const NodeId root = b.AddNode(2);
  for (int i = 0; i < 4; ++i) {
    const NodeId leaf = b.AddNode(i + 1);
    b.AddEdge(leaf, root);
  }
  const Graph g = b.BuildOrDie();
  KaryTreeScheduler sched(g);
  BruteForceScheduler oracle(g);
  for (Weight budget = MinValidBudget(g); budget <= MinValidBudget(g) + 3;
       ++budget) {
    EXPECT_EQ(sched.CostOnly(budget), oracle.CostOnly(budget));
  }
}

}  // namespace
}  // namespace wrbpg
