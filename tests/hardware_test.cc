#include <gtest/gtest.h>

#include <vector>

#include "hardware/energy_model.h"
#include "hardware/sram_model.h"

namespace wrbpg {
namespace {

TEST(Sram, PowerOfTwoCapacityMatchesTable1Column) {
  EXPECT_EQ(PowerOfTwoCapacity(160), 256);
  EXPECT_EQ(PowerOfTwoCapacity(7120), 8192);
  EXPECT_EQ(PowerOfTwoCapacity(288), 512);
  EXPECT_EQ(PowerOfTwoCapacity(10176), 16384);
  EXPECT_EQ(PowerOfTwoCapacity(1584), 2048);
  EXPECT_EQ(PowerOfTwoCapacity(3088), 4096);
  EXPECT_EQ(PowerOfTwoCapacity(2016), 2048);
  EXPECT_EQ(PowerOfTwoCapacity(4624), 8192);
}

TEST(Sram, OrganizationCoversCapacityExactly) {
  for (Weight capacity : {256, 512, 2048, 4096, 8192, 16384, 65536}) {
    const SramMacro macro = SynthesizeSram(capacity);
    EXPECT_EQ(macro.rows * macro.cols * macro.banks, capacity)
        << capacity << " bits";
    EXPECT_EQ(macro.cols % macro.word_bits, 0);
    EXPECT_LE(macro.rows, 256);
  }
}

TEST(Sram, AreaAndLeakageMonotoneInCapacity) {
  double prev_area = 0, prev_leak = 0, prev_read = 0, prev_write = 0;
  for (Weight capacity = 256; capacity <= 65536; capacity *= 2) {
    const SramMacro macro = SynthesizeSram(capacity);
    EXPECT_GT(macro.area_lambda2, prev_area) << capacity;
    EXPECT_GT(macro.leakage_mw, prev_leak) << capacity;
    EXPECT_GT(macro.read_power_mw, prev_read) << capacity;
    EXPECT_GT(macro.write_power_mw, prev_write) << capacity;
    prev_area = macro.area_lambda2;
    prev_leak = macro.leakage_mw;
    prev_read = macro.read_power_mw;
    prev_write = macro.write_power_mw;
  }
}

TEST(Sram, BandwidthNearlyConstantAcrossCapacities) {
  // Sec 5.3: read/write throughput remains nearly constant because AMC's
  // synthesis parameters and gate sizing are fixed.
  std::vector<double> bws;
  for (Weight capacity = 256; capacity <= 16384; capacity *= 2) {
    bws.push_back(SynthesizeSram(capacity).read_bw_gbps);
  }
  const auto [lo, hi] = std::minmax_element(bws.begin(), bws.end());
  EXPECT_LT(*hi / *lo, 1.35);
  EXPECT_GT(*lo, 25.0);  // tens of GB/s, as in Fig. 7e
  EXPECT_LT(*hi, 60.0);
}

TEST(Sram, WriteMetricsTrackReadMetrics) {
  const SramMacro macro = SynthesizeSram(4096);
  EXPECT_GT(macro.write_power_mw, macro.read_power_mw);
  EXPECT_LT(macro.write_bw_gbps, macro.read_bw_gbps);
}

TEST(Sram, LeakageDominatedByBitCount) {
  // Halving capacity should cut leakage roughly in half (paper: capacity
  // reductions translate directly into static power reductions).
  const double big = SynthesizeSram(16384).leakage_mw;
  const double small = SynthesizeSram(8192).leakage_mw;
  EXPECT_GT(big / small, 1.7);
  EXPECT_LT(big / small, 2.3);
}

TEST(Sram, Figure7Magnitudes) {
  // Largest design in the study (DA DWT layer-by-layer, 16384 bits):
  // tens of kλ², ~20 mW leakage, ~tens of mW dynamic — the Fig. 7 scale.
  const SramMacro macro = SynthesizeSram(16384);
  EXPECT_GT(macro.area_lambda2, 30000);
  EXPECT_LT(macro.area_lambda2, 50000);
  EXPECT_GT(macro.leakage_mw, 20.0);
  EXPECT_LT(macro.leakage_mw, 28.0);
  EXPECT_GT(macro.read_power_mw, 30.0);
  EXPECT_LT(macro.read_power_mw, 42.0);
}

TEST(Sram, TallArraysAreBanked) {
  const SramMacro macro = SynthesizeSram(1 << 20);
  EXPECT_GT(macro.banks, 1);
  EXPECT_LE(macro.rows, 256);
}

TEST(Sram, PaperAreaReductionsReproduced) {
  // Fig. 7a: Equal DWT 256 vs 8192 bits -> ~85.7% area reduction;
  // DA DWT 512 vs 16384 -> ~89.5%; Equal MVM 2048 vs 4096 -> ~24.3%;
  // DA MVM 2048 vs 8192 -> ~52.6%. Shapes must land in range.
  auto reduction = [](Weight ours, Weight theirs) {
    const double a = SynthesizeSram(ours).area_lambda2;
    const double b = SynthesizeSram(theirs).area_lambda2;
    return 100.0 * (1.0 - a / b);
  };
  EXPECT_NEAR(reduction(256, 8192), 85.7, 8.0);
  EXPECT_NEAR(reduction(512, 16384), 89.5, 8.0);
  // Our analytic area is closer to linear-in-bits than AMC's measured
  // macros at mid sizes, so these two land high within a wider band.
  EXPECT_NEAR(reduction(2048, 4096), 24.3, 22.0);
  EXPECT_NEAR(reduction(2048, 8192), 52.6, 22.0);
}

TEST(Sram, LayoutRenderingContainsGeometry) {
  const SramMacro macro = SynthesizeSram(2048);
  const std::string layout = RenderLayout(macro, "tiling");
  EXPECT_NE(layout.find("tiling"), std::string::npos);
  EXPECT_NE(layout.find("2048 bits"), std::string::npos);
  EXPECT_NE(layout.find('#'), std::string::npos);   // bit-cell array
  EXPECT_NE(layout.find(':'), std::string::npos);   // row decoder strip
  EXPECT_NE(layout.find('='), std::string::npos);   // column periphery
}

TEST(Sram, LayoutScalesWithCapacity) {
  const std::string small = RenderLayout(SynthesizeSram(256), "s");
  const std::string large = RenderLayout(SynthesizeSram(16384), "l");
  EXPECT_GT(large.size(), small.size());
}

TEST(Sram, OddRowBankingRoundsUpInsteadOfDroppingRows) {
  // 4112 bits / 16-bit words with 16 cols -> 257 rows. The old banking loop
  // halved to 2 banks x 128 rows = 4096 bits, silently losing a row. Now the
  // odd count rounds up: 2 banks x 129 rows = 4128 physical bits, 16 padding.
  const SramSynthesisResult synth = TrySynthesizeSram(4112, 16);
  ASSERT_TRUE(synth.ok()) << synth.message;
  const SramMacro& macro = synth.macro;
  EXPECT_EQ(macro.cols, 16);
  EXPECT_EQ(macro.banks, 2);
  EXPECT_EQ(macro.rows, 129);
  EXPECT_EQ(macro.physical_bits(), 4128);
  EXPECT_EQ(macro.padding_bits, 16);
  EXPECT_EQ(macro.physical_bits(), macro.capacity_bits + macro.padding_bits);
}

TEST(Sram, CapacityInvariantHoldsAcrossWordMultiples) {
  // Sweep every word multiple in a band that includes many odd row counts:
  // the physical array must always cover the requested capacity, padding
  // must be exact, and no bank may exceed the row limit.
  for (Weight word_bits : {8, 16, 32}) {
    for (Weight capacity = word_bits; capacity <= 20000;
         capacity += word_bits) {
      const SramSynthesisResult synth = TrySynthesizeSram(capacity, word_bits);
      ASSERT_TRUE(synth.ok()) << capacity << "/" << word_bits;
      const SramMacro& macro = synth.macro;
      ASSERT_GE(macro.physical_bits(), capacity)
          << capacity << "/" << word_bits;
      ASSERT_EQ(macro.physical_bits(), capacity + macro.padding_bits)
          << capacity << "/" << word_bits;
      // Padding is less than one row per bank: rows was the ceiling.
      ASSERT_LT(macro.padding_bits, macro.cols * macro.banks)
          << capacity << "/" << word_bits;
      ASSERT_LE(macro.rows, 256) << capacity << "/" << word_bits;
    }
  }
}

TEST(Sram, PowerOfTwoCapacitiesHaveNoPadding) {
  // The ceiling-division fix must be a no-op on the Table-1 design points:
  // even splits have no padding, so Fig. 7 magnitudes are unchanged.
  for (Weight capacity = 256; capacity <= (1 << 20); capacity *= 2) {
    const SramMacro macro = SynthesizeSram(capacity);
    EXPECT_EQ(macro.padding_bits, 0) << capacity;
    EXPECT_EQ(macro.physical_bits(), capacity) << capacity;
  }
}

TEST(Sram, TrySynthesizeRejectsMalformedInputsWithTypedErrors) {
  EXPECT_EQ(TrySynthesizeSram(0, 16).error, SramError::kNonPositiveCapacity);
  EXPECT_EQ(TrySynthesizeSram(-64, 16).error,
            SramError::kNonPositiveCapacity);
  EXPECT_EQ(TrySynthesizeSram(256, 0).error, SramError::kNonPositiveWordSize);
  EXPECT_EQ(TrySynthesizeSram(256, -8).error,
            SramError::kNonPositiveWordSize);
  EXPECT_EQ(TrySynthesizeSram(100, 16).error,
            SramError::kCapacityNotWordMultiple);
  EXPECT_FALSE(TrySynthesizeSram(100, 16).message.empty());
  EXPECT_TRUE(TrySynthesizeSram(256, 16).ok());
  EXPECT_TRUE(TrySynthesizeSram(256, 16).message.empty());
}

TEST(Sram, ErrorToStringIsStable) {
  EXPECT_STREQ(ToString(SramError::kNone), "none");
  EXPECT_STREQ(ToString(SramError::kNonPositiveCapacity),
               "non-positive-capacity");
  EXPECT_STREQ(ToString(SramError::kNonPositiveWordSize),
               "non-positive-word-size");
  EXPECT_STREQ(ToString(SramError::kCapacityNotWordMultiple),
               "capacity-not-word-multiple");
}

TEST(Sram, WrapperMatchesTryOnValidInput) {
  for (Weight capacity : {256, 4096, 4112, 16384}) {
    const SramMacro a = SynthesizeSram(capacity);
    const SramSynthesisResult b = TrySynthesizeSram(capacity);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.rows, b.macro.rows);
    EXPECT_EQ(a.banks, b.macro.banks);
    EXPECT_EQ(a.padding_bits, b.macro.padding_bits);
    EXPECT_EQ(a.area_lambda2, b.macro.area_lambda2);
    EXPECT_EQ(a.leakage_mw, b.macro.leakage_mw);
  }
}

TEST(Energy, NonNegativeAndMonotoneInTraffic) {
  const SramMacro macro = SynthesizeSram(4096);
  double prev = -1.0;
  for (Weight traffic : {0, 256, 1024, 4096, 16384}) {
    const EnergyReport report = EstimateScheduleEnergy(macro, traffic, traffic);
    EXPECT_GE(report.total_energy_nj, 0.0);
    EXPECT_GE(report.read_energy_nj, 0.0);
    EXPECT_GE(report.write_energy_nj, 0.0);
    EXPECT_GE(report.static_energy_nj, 0.0);
    EXPECT_GT(report.total_energy_nj, prev) << traffic;
    prev = report.total_energy_nj;
  }
}

TEST(Energy, DegenerateMacroAndMalformedArgumentsDoNotDivideByZero) {
  const SramMacro zero;  // never synthesized: word_bits == 0
  EXPECT_EQ(ReadEnergyPerWordNj(zero), 0.0);
  EXPECT_EQ(WriteEnergyPerWordNj(zero), 0.0);
  const EnergyReport report = EstimateScheduleEnergy(zero, 1024, 1024);
  EXPECT_EQ(report.total_energy_nj, 0.0);
  EXPECT_EQ(report.average_power_mw, 0.0);

  const SramMacro macro = SynthesizeSram(4096);
  // Negative traffic clamps to zero; sub-unit duty cycle clamps to 1.0.
  const EnergyReport neg = EstimateScheduleEnergy(macro, -100, -100);
  EXPECT_EQ(neg.read_energy_nj, 0.0);
  EXPECT_EQ(neg.write_energy_nj, 0.0);
  const EnergyReport clamped = EstimateScheduleEnergy(macro, 1024, 1024, 0.25);
  const EnergyReport unit = EstimateScheduleEnergy(macro, 1024, 1024, 1.0);
  EXPECT_EQ(clamped.total_energy_nj, unit.total_energy_nj);
}

}  // namespace
}  // namespace wrbpg
