#include <gtest/gtest.h>

#include <vector>

#include "hardware/sram_model.h"

namespace wrbpg {
namespace {

TEST(Sram, PowerOfTwoCapacityMatchesTable1Column) {
  EXPECT_EQ(PowerOfTwoCapacity(160), 256);
  EXPECT_EQ(PowerOfTwoCapacity(7120), 8192);
  EXPECT_EQ(PowerOfTwoCapacity(288), 512);
  EXPECT_EQ(PowerOfTwoCapacity(10176), 16384);
  EXPECT_EQ(PowerOfTwoCapacity(1584), 2048);
  EXPECT_EQ(PowerOfTwoCapacity(3088), 4096);
  EXPECT_EQ(PowerOfTwoCapacity(2016), 2048);
  EXPECT_EQ(PowerOfTwoCapacity(4624), 8192);
}

TEST(Sram, OrganizationCoversCapacityExactly) {
  for (Weight capacity : {256, 512, 2048, 4096, 8192, 16384, 65536}) {
    const SramMacro macro = SynthesizeSram(capacity);
    EXPECT_EQ(macro.rows * macro.cols * macro.banks, capacity)
        << capacity << " bits";
    EXPECT_EQ(macro.cols % macro.word_bits, 0);
    EXPECT_LE(macro.rows, 256);
  }
}

TEST(Sram, AreaAndLeakageMonotoneInCapacity) {
  double prev_area = 0, prev_leak = 0, prev_read = 0, prev_write = 0;
  for (Weight capacity = 256; capacity <= 65536; capacity *= 2) {
    const SramMacro macro = SynthesizeSram(capacity);
    EXPECT_GT(macro.area_lambda2, prev_area) << capacity;
    EXPECT_GT(macro.leakage_mw, prev_leak) << capacity;
    EXPECT_GT(macro.read_power_mw, prev_read) << capacity;
    EXPECT_GT(macro.write_power_mw, prev_write) << capacity;
    prev_area = macro.area_lambda2;
    prev_leak = macro.leakage_mw;
    prev_read = macro.read_power_mw;
    prev_write = macro.write_power_mw;
  }
}

TEST(Sram, BandwidthNearlyConstantAcrossCapacities) {
  // Sec 5.3: read/write throughput remains nearly constant because AMC's
  // synthesis parameters and gate sizing are fixed.
  std::vector<double> bws;
  for (Weight capacity = 256; capacity <= 16384; capacity *= 2) {
    bws.push_back(SynthesizeSram(capacity).read_bw_gbps);
  }
  const auto [lo, hi] = std::minmax_element(bws.begin(), bws.end());
  EXPECT_LT(*hi / *lo, 1.35);
  EXPECT_GT(*lo, 25.0);  // tens of GB/s, as in Fig. 7e
  EXPECT_LT(*hi, 60.0);
}

TEST(Sram, WriteMetricsTrackReadMetrics) {
  const SramMacro macro = SynthesizeSram(4096);
  EXPECT_GT(macro.write_power_mw, macro.read_power_mw);
  EXPECT_LT(macro.write_bw_gbps, macro.read_bw_gbps);
}

TEST(Sram, LeakageDominatedByBitCount) {
  // Halving capacity should cut leakage roughly in half (paper: capacity
  // reductions translate directly into static power reductions).
  const double big = SynthesizeSram(16384).leakage_mw;
  const double small = SynthesizeSram(8192).leakage_mw;
  EXPECT_GT(big / small, 1.7);
  EXPECT_LT(big / small, 2.3);
}

TEST(Sram, Figure7Magnitudes) {
  // Largest design in the study (DA DWT layer-by-layer, 16384 bits):
  // tens of kλ², ~20 mW leakage, ~tens of mW dynamic — the Fig. 7 scale.
  const SramMacro macro = SynthesizeSram(16384);
  EXPECT_GT(macro.area_lambda2, 30000);
  EXPECT_LT(macro.area_lambda2, 50000);
  EXPECT_GT(macro.leakage_mw, 20.0);
  EXPECT_LT(macro.leakage_mw, 28.0);
  EXPECT_GT(macro.read_power_mw, 30.0);
  EXPECT_LT(macro.read_power_mw, 42.0);
}

TEST(Sram, TallArraysAreBanked) {
  const SramMacro macro = SynthesizeSram(1 << 20);
  EXPECT_GT(macro.banks, 1);
  EXPECT_LE(macro.rows, 256);
}

TEST(Sram, PaperAreaReductionsReproduced) {
  // Fig. 7a: Equal DWT 256 vs 8192 bits -> ~85.7% area reduction;
  // DA DWT 512 vs 16384 -> ~89.5%; Equal MVM 2048 vs 4096 -> ~24.3%;
  // DA MVM 2048 vs 8192 -> ~52.6%. Shapes must land in range.
  auto reduction = [](Weight ours, Weight theirs) {
    const double a = SynthesizeSram(ours).area_lambda2;
    const double b = SynthesizeSram(theirs).area_lambda2;
    return 100.0 * (1.0 - a / b);
  };
  EXPECT_NEAR(reduction(256, 8192), 85.7, 8.0);
  EXPECT_NEAR(reduction(512, 16384), 89.5, 8.0);
  // Our analytic area is closer to linear-in-bits than AMC's measured
  // macros at mid sizes, so these two land high within a wider band.
  EXPECT_NEAR(reduction(2048, 4096), 24.3, 22.0);
  EXPECT_NEAR(reduction(2048, 8192), 52.6, 22.0);
}

TEST(Sram, LayoutRenderingContainsGeometry) {
  const SramMacro macro = SynthesizeSram(2048);
  const std::string layout = RenderLayout(macro, "tiling");
  EXPECT_NE(layout.find("tiling"), std::string::npos);
  EXPECT_NE(layout.find("2048 bits"), std::string::npos);
  EXPECT_NE(layout.find('#'), std::string::npos);   // bit-cell array
  EXPECT_NE(layout.find(':'), std::string::npos);   // row decoder strip
  EXPECT_NE(layout.find('='), std::string::npos);   // column periphery
}

TEST(Sram, LayoutScalesWithCapacity) {
  const std::string small = RenderLayout(SynthesizeSram(256), "s");
  const std::string large = RenderLayout(SynthesizeSram(16384), "l");
  EXPECT_GT(large.size(), small.size());
}

}  // namespace
}  // namespace wrbpg
