#include <gtest/gtest.h>

#include "dataflows/random_dag.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

class RandomDagTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagTest, SatisfiesModelAssumptions) {
  Rng rng(GetParam());
  const RandomDagOptions options{.num_layers = 5, .nodes_per_layer = 4,
                                 .max_in_degree = 3, .min_weight = 1,
                                 .max_weight = 8, .locality = 0.7};
  const Graph g = BuildRandomDag(rng, options);

  EXPECT_EQ(g.num_nodes(), 20u);
  // Layer 0 nodes are the only sources.
  EXPECT_EQ(g.sources().size(), 4u);
  for (NodeId v : g.sources()) EXPECT_LT(v, 4u);
  // Sinks exist (the last layer cannot feed anything).
  EXPECT_GE(g.sinks().size(), 1u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_LE(g.in_degree(v), 7u);  // max_in_degree + repair edges
    EXPECT_GE(g.weight(v), 1);
    EXPECT_LE(g.weight(v), 8);
    // Disjoint sources/sinks is implied by BuildOrDie succeeding, but
    // double-check the repair pass: non-final nodes have children.
    if (v < 16) {
      EXPECT_GE(g.out_degree(v), 1u);
    }
  }
}

TEST_P(RandomDagTest, DeterministicForSeed) {
  Rng a(GetParam()), b(GetParam());
  const Graph ga = BuildRandomDag(a);
  const Graph gb = BuildRandomDag(b);
  ASSERT_EQ(ga.num_nodes(), gb.num_nodes());
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (NodeId v = 0; v < ga.num_nodes(); ++v) {
    EXPECT_EQ(ga.weight(v), gb.weight(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest,
                         ::testing::Range<std::uint64_t>(0, 16));

TEST(RandomDag, SingleNodeLayers) {
  Rng rng(3);
  const Graph g = BuildRandomDag(
      rng, {.num_layers = 6, .nodes_per_layer = 1, .max_in_degree = 1,
            .min_weight = 2, .max_weight = 2, .locality = 1.0});
  // A chain: 6 nodes, 5 edges.
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

}  // namespace
}  // namespace wrbpg
