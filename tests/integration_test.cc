// End-to-end regeneration of the paper's headline results, wired exactly the
// way the bench binaries do it. Each test is one row/claim of the paper.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "exec/executor.h"
#include "exec/reference_kernels.h"
#include "hardware/sram_model.h"
#include "ioopt/ioopt_bounds.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/layer_by_layer.h"
#include "schedulers/mvm_tiling.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

// ---------------------------------------------------------------------------
// Table 1: minimum fast memory sizes (ours, in words).
// ---------------------------------------------------------------------------

TEST(Table1, OurRows) {
  {
    const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::Equal());
    DwtOptimalScheduler optimal(dwt);
    EXPECT_EQ(optimal.MinMemoryForLowerBound(kWordBits, 1 << 16) / kWordBits,
              10);
  }
  {
    const DwtGraph dwt =
        BuildDwt(256, 8, PrecisionConfig::DoubleAccumulator());
    DwtOptimalScheduler optimal(dwt);
    EXPECT_EQ(optimal.MinMemoryForLowerBound(kWordBits, 1 << 16) / kWordBits,
              18);
  }
  {
    const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
    EXPECT_EQ(MvmTilingScheduler(mvm).MinMemoryForLowerBound() / kWordBits,
              99);
  }
  {
    const MvmGraph mvm =
        BuildMvm(96, 120, PrecisionConfig::DoubleAccumulator());
    EXPECT_EQ(MvmTilingScheduler(mvm).MinMemoryForLowerBound() / kWordBits,
              126);
  }
}

TEST(Table1, IoOptRows) {
  const MvmGraph equal = BuildMvm(96, 120, PrecisionConfig::Equal());
  EXPECT_EQ(IoOptMvmBounds(equal).UpperBoundMinMemory() / kWordBits, 193);
  const MvmGraph da = BuildMvm(96, 120, PrecisionConfig::DoubleAccumulator());
  EXPECT_EQ(IoOptMvmBounds(da).UpperBoundMinMemory() / kWordBits, 289);
}

TEST(Table1, PowerOfTwoCapacities) {
  // Ours: 256 / 512 / 2048 / 2048; baselines MVM: 4096 / 8192.
  EXPECT_EQ(PowerOfTwoCapacity(10 * kWordBits), 256);
  EXPECT_EQ(PowerOfTwoCapacity(18 * kWordBits), 512);
  EXPECT_EQ(PowerOfTwoCapacity(99 * kWordBits), 2048);
  EXPECT_EQ(PowerOfTwoCapacity(126 * kWordBits), 2048);
  EXPECT_EQ(PowerOfTwoCapacity(193 * kWordBits), 4096);
  EXPECT_EQ(PowerOfTwoCapacity(289 * kWordBits), 8192);
}

// The paper's Sec 5.3 observation: tiling equalizes the power-of-two
// capacity across Equal and DA, unlike IOOpt which doubles it.
TEST(Table1, TilingEqualizesCapacityAcrossPrecisions) {
  const MvmGraph equal = BuildMvm(96, 120, PrecisionConfig::Equal());
  const MvmGraph da = BuildMvm(96, 120, PrecisionConfig::DoubleAccumulator());
  EXPECT_EQ(
      PowerOfTwoCapacity(MvmTilingScheduler(equal).MinMemoryForLowerBound()),
      PowerOfTwoCapacity(MvmTilingScheduler(da).MinMemoryForLowerBound()));
  EXPECT_EQ(
      2 * PowerOfTwoCapacity(IoOptMvmBounds(equal).UpperBoundMinMemory()),
      PowerOfTwoCapacity(IoOptMvmBounds(da).UpperBoundMinMemory()));
}

// ---------------------------------------------------------------------------
// Figure 5 relations at sampled budgets.
// ---------------------------------------------------------------------------

TEST(Figure5, DwtOrderingHoldsAcrossTheSweep) {
  for (const auto config : {PrecisionConfig::Equal(),
                            PrecisionConfig::DoubleAccumulator()}) {
    const DwtGraph dwt = BuildDwt(256, 8, config);
    DwtOptimalScheduler optimal(dwt);
    LayerByLayerScheduler baseline(dwt.graph, dwt.layers);
    const Weight lb = AlgorithmicLowerBound(dwt.graph);
    for (Weight b = 64; b <= 16384; b *= 2) {
      const Weight opt = optimal.CostOnly(b);
      const Weight base = baseline.CostOnly(b);
      if (opt >= kInfiniteCost) continue;
      EXPECT_GE(opt, lb) << ConfigLabel(config) << " @ " << b;
      EXPECT_LE(opt, base) << ConfigLabel(config) << " @ " << b;
    }
    // Both converge to the lower bound with ample memory.
    EXPECT_EQ(optimal.CostOnly(1 << 20), lb);
    EXPECT_EQ(baseline.CostOnly(1 << 20), lb);
  }
}

TEST(Figure5, MvmOrderingHoldsAcrossTheSweep) {
  for (const auto config : {PrecisionConfig::Equal(),
                            PrecisionConfig::DoubleAccumulator()}) {
    const MvmGraph mvm = BuildMvm(96, 120, config);
    MvmTilingScheduler tiling(mvm);
    const IoOptMvmBounds bounds(mvm);
    const Weight fair =
        tiling.TilePeak({.g = 0, .h = 1, .spill_running = false});
    for (Weight b = 128; b <= 32768; b *= 2) {
      const Weight ours = tiling.CostOnly(b);
      const Weight ub = bounds.UpperBoundCost(b);
      if (b >= fair && ub < kInfiniteCost) {
        EXPECT_LE(ours, ub) << ConfigLabel(config) << " @ " << b;
      }
    }
    EXPECT_EQ(tiling.CostOnly(1 << 20), AlgorithmicLowerBound(mvm.graph));
  }
}

// ---------------------------------------------------------------------------
// Headline averages: memory-size reduction across the Fig. 6 scaling sweeps
// (paper: 46.8% DWT-DA, 36.2% MVM-DA average reductions).
// ---------------------------------------------------------------------------

TEST(Figure6, DwtAverageReductionInPaperBallpark) {
  double total_reduction = 0;
  int count = 0;
  for (std::int64_t n = 8; n <= 128; n += 8) {
    const int d = MaxDwtLevel(n);
    const DwtGraph dwt = BuildDwt(n, d, PrecisionConfig::DoubleAccumulator());
    DwtOptimalScheduler optimal(dwt);
    LayerByLayerScheduler baseline(dwt.graph, dwt.layers);
    const Weight opt = optimal.MinMemoryForLowerBound(kWordBits, 1 << 17);
    const Weight base = baseline.MinMemoryForLowerBound(kWordBits, 1 << 17);
    ASSERT_GT(opt, 0);
    ASSERT_GT(base, 0);
    EXPECT_LE(opt, base) << "n=" << n;
    total_reduction += 100.0 * (1.0 - static_cast<double>(opt) /
                                          static_cast<double>(base));
    ++count;
  }
  const double average = total_reduction / count;
  // Our faithful §5.1 baseline differs from the paper's in absolute words;
  // the reduction must still be substantial (paper reports 46.8%).
  EXPECT_GT(average, 30.0);
}

TEST(Figure6, MvmTilingBelowIoOptAtEveryProblemSize) {
  // Paper reports average reductions of 18.6% (Equal) / 36.2% (DA) over the
  // n sweep. Our IOOpt-UB minimum memory is n-independent (its split only
  // involves m), so the *average* depends on modeling assumptions the paper
  // does not specify; the per-n ordering and the Table-1 endpoint (56.4%
  // reduction at n = 120, DA) are the invariants we check.
  Weight prev_ours = 0;
  for (std::int64_t n = 10; n <= 120; n += 10) {
    const MvmGraph mvm =
        BuildMvm(96, n, PrecisionConfig::DoubleAccumulator());
    const Weight ours = MvmTilingScheduler(mvm).MinMemoryForLowerBound();
    const Weight ioopt = IoOptMvmBounds(mvm).UpperBoundMinMemory();
    EXPECT_LT(ours, ioopt) << "n=" << n;
    EXPECT_GE(ours, prev_ours) << "n=" << n;  // vector residency grows with n
    prev_ours = ours;
  }
  const MvmGraph full = BuildMvm(96, 120, PrecisionConfig::DoubleAccumulator());
  const double endpoint_reduction =
      100.0 *
      (1.0 - static_cast<double>(
                 MvmTilingScheduler(full).MinMemoryForLowerBound()) /
                 static_cast<double>(
                     IoOptMvmBounds(full).UpperBoundMinMemory()));
  EXPECT_NEAR(endpoint_reduction, 56.4, 1.0);
}

// ---------------------------------------------------------------------------
// Figure 7/8: synthesized designs from the Table 1 capacities.
// ---------------------------------------------------------------------------

TEST(Figure7, SynthesisReproducesReductions) {
  const SramMacro dwt_ours = SynthesizeSram(256);
  const SramMacro dwt_base = SynthesizeSram(8192);
  EXPECT_LT(dwt_ours.area_lambda2, 0.2 * dwt_base.area_lambda2);
  EXPECT_LT(dwt_ours.leakage_mw, 0.2 * dwt_base.leakage_mw);
  // Bandwidth preserved within a modest factor (Fig. 7e/f).
  EXPECT_GT(dwt_ours.read_bw_gbps, 0.7 * dwt_base.read_bw_gbps);

  const SramMacro mvm_ours = SynthesizeSram(2048);
  const SramMacro mvm_base = SynthesizeSram(8192);
  EXPECT_LT(mvm_ours.area_lambda2, 0.6 * mvm_base.area_lambda2);
  EXPECT_LT(mvm_ours.leakage_mw, 0.6 * mvm_base.leakage_mw);
}

// ---------------------------------------------------------------------------
// Full pipeline: schedule at Table-1 memory, execute on a synthetic BCI
// signal, verify numerics and traffic.
// ---------------------------------------------------------------------------

TEST(EndToEnd, Dwt256At10WordsComputesTheTransform) {
  const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::Equal());
  DwtOptimalScheduler optimal(dwt);
  const Weight budget = 160;  // 10 words
  const auto run = optimal.Run(budget);
  ASSERT_TRUE(run.feasible);

  Rng rng(2025);
  std::vector<double> signal(256);
  for (auto& s : signal) s = rng.UniformDouble() * 2.0 - 1.0;
  std::vector<double> sources(dwt.graph.num_nodes(), 0.0);
  for (std::size_t j = 0; j < 256; ++j) sources[dwt.layers[0][j]] = signal[j];

  const ExecResult exec = ExecuteSchedule(dwt.graph, budget, run.schedule,
                                          MakeDwtNodeOp(dwt), sources);
  ASSERT_TRUE(exec.ok) << exec.error;
  const std::vector<double> expected = DwtReferenceValues(dwt, signal);
  for (NodeId s : dwt.graph.sinks()) {
    EXPECT_DOUBLE_EQ(exec.slow_values[s], expected[s]);
  }
  // The schedule meets the algorithmic lower bound at this budget.
  EXPECT_EQ(exec.bits_loaded + exec.bits_stored,
            AlgorithmicLowerBound(dwt.graph));
  EXPECT_LE(exec.peak_fast_bits, budget);
}

TEST(EndToEnd, Mvm96x120At99WordsComputesTheProduct) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
  MvmTilingScheduler tiling(mvm);
  const Weight budget = 1584;  // 99 words
  const auto run = tiling.Run(budget);
  ASSERT_TRUE(run.feasible);

  Rng rng(7);
  std::vector<double> a(96 * 120), x(120);
  for (auto& v : a) v = rng.UniformDouble() * 2.0 - 1.0;
  for (auto& v : x) v = rng.UniformDouble() * 2.0 - 1.0;
  std::vector<double> sources(mvm.graph.num_nodes(), 0.0);
  for (std::int64_t c = 0; c < 120; ++c) {
    sources[mvm.x(c)] = x[static_cast<std::size_t>(c)];
    for (std::int64_t r = 0; r < 96; ++r) {
      sources[mvm.a(r, c)] = a[static_cast<std::size_t>(r * 120 + c)];
    }
  }

  const ExecResult exec = ExecuteSchedule(mvm.graph, budget, run.schedule,
                                          MakeMvmNodeOp(mvm), sources);
  ASSERT_TRUE(exec.ok) << exec.error;
  const std::vector<double> y = MatVec(96, 120, a, x);
  for (std::int64_t r = 0; r < 96; ++r) {
    EXPECT_DOUBLE_EQ(exec.slow_values[mvm.output(r)],
                     y[static_cast<std::size_t>(r)]);
  }
  EXPECT_EQ(exec.bits_loaded + exec.bits_stored,
            AlgorithmicLowerBound(mvm.graph));
}

}  // namespace
}  // namespace wrbpg
