// Schedule repair: targeted unit cases plus the bulk robustness contract —
// across >= 500 mutants spanning the DWT, k-ary tree, MVM and random-DAG
// families, RepairSchedule returns either a schedule Simulate accepts (at
// cost within 2x of the unmutated schedule) or a structured diagnostic;
// never a crash, never a silently-accepted invalid schedule.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/graph_builder.h"
#include "core/simulator.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "dataflows/random_dag.h"
#include "dataflows/tree_graph.h"
#include "robust/fault_injector.h"
#include "robust/repair.h"
#include "schedulers/belady.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/kary_tree.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

TEST(Repair, ValidInputComesBackUntouched) {
  const Graph g = testing::MakeDiamond();
  const Weight budget = MinValidBudget(g) + 2;
  const Schedule s = GreedyTopoScheduler(g).Run(budget).schedule;
  const RepairResult r = RepairSchedule(g, budget, s);
  EXPECT_EQ(r.status, RepairStatus::kAlreadyValid);
  EXPECT_EQ(r.schedule, s);
  EXPECT_EQ(r.moves_kept, s.size());
  EXPECT_EQ(r.moves_dropped, 0u);
  EXPECT_EQ(r.moves_inserted, 0u);
}

TEST(Repair, ReinsertsAMissingLoad) {
  // Diamond: drop the load of source 0 before computing node 2.
  const Graph g = testing::MakeDiamond();
  const Weight budget = MinValidBudget(g) + 2;
  const Schedule valid = GreedyTopoScheduler(g).Run(budget).schedule;
  std::vector<Move> moves = valid.moves();
  for (std::size_t i = 0; i < moves.size(); ++i) {
    if (moves[i] == Load(0)) {
      moves.erase(moves.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  const Schedule broken{std::move(moves)};
  ASSERT_FALSE(Simulate(g, budget, broken).valid);

  const RepairResult r = RepairSchedule(g, budget, broken);
  ASSERT_EQ(r.status, RepairStatus::kRepaired) << r.message;
  EXPECT_TRUE(r.verification.valid);
  EXPECT_GE(r.moves_inserted, 1u);
}

TEST(Repair, DropsRedundantDuplicates) {
  const Graph g = testing::MakeChain(4);
  const Weight budget = MinValidBudget(g) + 1;
  const Schedule valid = GreedyTopoScheduler(g).Run(budget).schedule;
  std::vector<Move> moves = valid.moves();
  moves.insert(moves.begin(), moves.front());  // duplicate the first load
  const Schedule broken{std::move(moves)};
  ASSERT_FALSE(Simulate(g, budget, broken).valid);

  const RepairResult r = RepairSchedule(g, budget, broken);
  ASSERT_EQ(r.status, RepairStatus::kRepaired) << r.message;
  EXPECT_EQ(r.moves_dropped, 1u);
  EXPECT_EQ(r.schedule, valid);
}

TEST(Repair, EvictsToSurviveATightenedBudget) {
  const DwtGraph dwt = BuildDwt(8, 2);
  const Weight budget = MinValidBudget(dwt.graph) + 16;
  DwtOptimalScheduler sched(dwt);
  const Schedule valid = sched.Run(budget).schedule;
  const SimResult base = testing::ExpectValid(dwt.graph, budget, valid);

  const Weight tight = base.peak_red_weight - 1;
  ASSERT_FALSE(Simulate(dwt.graph, tight, valid).valid);
  const RepairResult r = RepairSchedule(dwt.graph, tight, valid);
  ASSERT_EQ(r.status, RepairStatus::kRepaired) << r.message;
  EXPECT_LE(r.verification.peak_red_weight, tight);
  EXPECT_LE(r.verification.cost, 2 * base.cost);
}

TEST(Repair, RestoresTheStoppingCondition) {
  const Graph g = testing::MakeDiamond();
  const Weight budget = MinValidBudget(g) + 2;
  const Schedule valid = GreedyTopoScheduler(g).Run(budget).schedule;
  std::vector<Move> moves = valid.moves();
  // Drop the final store of the sink.
  for (std::size_t i = moves.size(); i-- > 0;) {
    if (moves[i] == Store(4)) {
      moves.erase(moves.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  const Schedule broken{std::move(moves)};
  const SimResult sim = Simulate(g, budget, broken);
  ASSERT_FALSE(sim.valid);

  const RepairResult r = RepairSchedule(g, budget, broken);
  ASSERT_EQ(r.status, RepairStatus::kRepaired) << r.message;
  EXPECT_TRUE(r.verification.stop_condition_met);
}

TEST(Repair, ReportsAStructuredDiagnosticWhenTheBudgetCannotFit) {
  // A node plus its parents outweigh the budget: Prop 2.3 says no valid
  // schedule exists, so repair must refuse with the typed obstruction.
  GraphBuilder b;
  const NodeId s0 = b.AddNode(8);
  const NodeId s1 = b.AddNode(8);
  const NodeId sink = b.AddNode(8);
  b.AddEdge(s0, sink);
  b.AddEdge(s1, sink);
  const Graph g = b.BuildOrDie();
  const Weight budget = MinValidBudget(g) - 1;  // 23: three 8s cannot coexist

  Schedule attempt;
  attempt.Append(Load(s0));
  attempt.Append(Load(s1));
  attempt.Append(Compute(sink));
  attempt.Append(Store(sink));

  const RepairResult r = RepairSchedule(g, budget, attempt);
  EXPECT_EQ(r.status, RepairStatus::kIrreparable);
  EXPECT_EQ(r.code, SimErrorCode::kBudgetExceeded);
  EXPECT_EQ(r.node, sink);
  EXPECT_FALSE(r.message.empty());
}

TEST(Repair, DropsOutOfRangeMoves) {
  const Graph g = testing::MakeChain(3);
  const Weight budget = MinValidBudget(g) + 1;
  const Schedule valid = GreedyTopoScheduler(g).Run(budget).schedule;
  std::vector<Move> moves = valid.moves();
  moves.insert(moves.begin(), Load(99));
  const RepairResult r = RepairSchedule(g, budget, Schedule{std::move(moves)});
  ASSERT_EQ(r.status, RepairStatus::kRepaired) << r.message;
  EXPECT_GE(r.moves_dropped, 1u);
}

// --- Bulk contract over labeled corpora -----------------------------------

struct BulkSeed {
  std::string name;
  Graph graph;
  Weight budget = 0;
  Schedule schedule;
};

std::vector<BulkSeed> BulkSeeds() {
  std::vector<BulkSeed> seeds;
  const Weight slacks[] = {0, 8, 64};

  for (const Weight slack : slacks) {
    const DwtGraph dwt = BuildDwt(16, 3);
    const Weight budget = MinValidBudget(dwt.graph) + slack;
    DwtOptimalScheduler sched(dwt);
    seeds.push_back({"dwt+" + std::to_string(slack), dwt.graph, budget,
                     sched.Run(budget).schedule});
  }
  for (const Weight slack : slacks) {
    const TreeGraph tree = BuildPerfectTree(2, 3);
    const Weight budget = MinValidBudget(tree.graph) + slack;
    KaryTreeScheduler sched(tree.graph);
    seeds.push_back({"kary+" + std::to_string(slack), tree.graph, budget,
                     sched.Run(budget).schedule});
  }
  for (const Weight slack : slacks) {
    const MvmGraph mvm = BuildMvm(4, 3);
    const Weight budget = MinValidBudget(mvm.graph) + slack;
    seeds.push_back({"mvm+" + std::to_string(slack), mvm.graph, budget,
                     BeladyScheduler(mvm.graph).Run(budget).schedule});
  }
  for (const Weight slack : slacks) {
    Rng rng(0xbeef00u + static_cast<std::uint64_t>(slack));
    const Graph dag = BuildRandomDag(rng, {.num_layers = 4,
                                           .nodes_per_layer = 5,
                                           .max_in_degree = 3});
    const Weight budget = MinValidBudget(dag) + slack;
    seeds.push_back({"dag+" + std::to_string(slack), dag, budget,
                     BeladyScheduler(dag).Run(budget).schedule});
  }
  return seeds;
}

TEST(RepairBulk, FiveHundredMutantsRepairOrDiagnoseNeverCrashOrLie) {
  std::size_t total = 0, repaired = 0, already_valid = 0, diagnosed = 0;
  for (const BulkSeed& seed : BulkSeeds()) {
    ASSERT_FALSE(seed.schedule.empty()) << seed.name;
    const SimResult base = Simulate(seed.graph, seed.budget, seed.schedule);
    ASSERT_TRUE(base.valid) << seed.name << ": " << base.error;

    FaultInjector injector(seed.graph, seed.budget, seed.schedule);
    Rng rng(0x5eed0u);
    for (const FaultCase& fault : injector.Corpus(rng, 12)) {
      SCOPED_TRACE(seed.name + "/" + fault.label);
      ++total;
      const RepairResult r =
          RepairSchedule(seed.graph, fault.budget, fault.schedule);
      switch (r.status) {
        case RepairStatus::kAlreadyValid:
          ++already_valid;
          EXPECT_TRUE(r.verification.valid);
          break;
        case RepairStatus::kRepaired: {
          ++repaired;
          // The repairer's own verification must concur with a fresh
          // replay, and the repair must not blow the cost bound.
          EXPECT_TRUE(r.verification.valid) << r.verification.error;
          const SimResult fresh =
              Simulate(seed.graph, fault.budget, r.schedule);
          EXPECT_TRUE(fresh.valid) << fresh.error;
          EXPECT_LE(fresh.cost, 2 * base.cost)
              << "repair cost " << fresh.cost << " vs base " << base.cost;
          EXPECT_LE(fresh.peak_red_weight, fault.budget);
          break;
        }
        case RepairStatus::kIrreparable:
          ++diagnosed;
          // A refusal must carry a typed, located diagnostic.
          EXPECT_NE(r.code, SimErrorCode::kNone);
          EXPECT_FALSE(r.message.empty());
          EXPECT_TRUE(r.schedule.empty());
          break;
      }
    }
  }
  EXPECT_GE(total, 500u) << "corpus too small to mean anything";
  EXPECT_GE(repaired + already_valid, total / 2)
      << "repairer gave up on most mutants (repaired=" << repaired
      << ", diagnosed=" << diagnosed << ")";
}

}  // namespace
}  // namespace wrbpg
