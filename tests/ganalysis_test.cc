// Tests for the static graph analyzer (ganalysis/): canonical hashing,
// verified orbits, family recognition, and the AnalyzeGraph front end.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/graph_builder.h"
#include "core/serialize.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/tree_graph.h"
#include "ganalysis/canonical.h"
#include "ganalysis/ganalysis.h"
#include "ganalysis/recognition.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

// Rebuilds `graph` with node ids permuted by `perm` (old id -> new id).
Graph Permute(const Graph& graph, const std::vector<NodeId>& perm) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> inverse(n);
  for (NodeId v = 0; v < n; ++v) inverse[perm[v]] = v;
  GraphBuilder b;
  for (NodeId v = 0; v < n; ++v) b.AddNode(graph.weight(inverse[v]));
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId c : graph.children(v)) {
      b.AddEdge(perm[v], perm[c]);
    }
  }
  return b.BuildOrDie();
}

std::vector<NodeId> RandomPermutation(NodeId n, std::uint32_t seed) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  std::mt19937 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

TEST(Canonical, HashIsInvariantUnderRandomPermutation) {
  const std::vector<Graph> corpus = {
      testing::MakeDiamond({3, 5, 7, 11, 13}),
      testing::MakeChain(9),
      BuildPerfectTree(2, 4).graph,
      BuildDwt(8, 2).graph,
  };
  for (const Graph& g : corpus) {
    const GraphHash original = HashGraph(g);
    for (std::uint32_t seed = 1; seed <= 5; ++seed) {
      const Graph shuffled =
          Permute(g, RandomPermutation(g.num_nodes(), seed));
      EXPECT_EQ(HashGraph(shuffled), original) << "seed " << seed;
      EXPECT_EQ(RefineColors(shuffled).num_colors,
                RefineColors(g).num_colors);
    }
  }
}

TEST(Canonical, HashSeparatesStructurallyDifferentGraphs) {
  // Same node count and weight multiset, different wiring.
  const Graph chain = testing::MakeChain(7);
  GraphBuilder b;
  for (int i = 0; i < 7; ++i) b.AddNode(1);
  for (NodeId v = 0; v + 1 < 7; ++v) b.AddEdge(0, v + 1);  // star
  const Graph star = b.BuildOrDie();
  EXPECT_NE(HashGraph(chain), HashGraph(star));
  EXPECT_NE(HashGraph(BuildDwt(16, 2).graph),
            HashGraph(BuildPerfectTree(2, 4).graph));
}

TEST(Canonical, OrbitsAreVerifiedAutomorphismClasses) {
  // Perfect binary tree: every level is one orbit (all verified).
  const Graph tree = BuildPerfectTree(2, 4).graph;
  const OrbitPartition orbits = ComputeOrbits(tree);
  EXPECT_EQ(orbits.num_orbits, 5u);  // one per level, 31 nodes
  // Every orbit member must map to its representative under an explicit
  // automorphism, so equal weight/in/out degree is necessary.
  for (NodeId v = 0; v < tree.num_nodes(); ++v) {
    const NodeId rep = orbits.orbit_of[v];
    EXPECT_LE(rep, v);
    EXPECT_EQ(tree.weight(v), tree.weight(rep));
    EXPECT_EQ(tree.parents(v).size(), tree.parents(rep).size());
    EXPECT_EQ(tree.children(v).size(), tree.children(rep).size());
  }
}

TEST(Canonical, AsymmetricGraphHasSingletonOrbits) {
  // The diamond's sources differ in out-degree; the chain is rigid.
  const Graph diamond = testing::MakeDiamond();
  const OrbitPartition d = ComputeOrbits(diamond);
  EXPECT_FALSE(d.SameOrbit(0, 1));
  const Graph chain = testing::MakeChain(6);
  EXPECT_EQ(ComputeOrbits(chain).num_orbits, chain.num_nodes());
}

TEST(Canonical, FindIsomorphismRoundTripsThroughPermutation) {
  const Graph g = BuildDwt(8, 2).graph;
  const Graph h = Permute(g, RandomPermutation(g.num_nodes(), 0xfeedu));
  const auto map = FindIsomorphism(g, h);
  ASSERT_TRUE(map.has_value());
  EXPECT_TRUE(IsIsomorphismMap(g, h, *map));
  // And a non-isomorphic pair of equal size is rejected.
  EXPECT_FALSE(
      FindIsomorphism(testing::MakeChain(5), testing::MakeDiamond())
          .has_value());
}

TEST(Recognition, IdentifiesChainKaryAndSerializedDwt) {
  const RecognitionResult chain = RecognizeFamily(testing::MakeChain(9));
  EXPECT_EQ(chain.family, GraphFamily::kChain);
  EXPECT_EQ(chain.label, "chain:9");

  const RecognitionResult kary =
      RecognizeFamily(BuildPerfectTree(2, 4).graph);
  EXPECT_EQ(kary.family, GraphFamily::kKaryTree);
  EXPECT_EQ(kary.label, "kary:2,4");
  EXPECT_EQ(kary.param0, 2);
  EXPECT_EQ(kary.param1, 4);

  // Serialization round trip: the parsed graph carries no DwtGraph
  // wrapper, recognition must rediscover (n, d) and verify the mapping.
  const DwtGraph dwt = BuildDwt(16, 2);
  const GraphParseResult parsed = ParseGraphText(ToText(dwt.graph));
  ASSERT_TRUE(parsed.ok);
  const RecognitionResult rec = RecognizeFamily(parsed.graph);
  EXPECT_EQ(rec.family, GraphFamily::kDwt);
  EXPECT_EQ(rec.label, "dwt:16,2");
  EXPECT_EQ(rec.param0, 16);
  EXPECT_EQ(rec.param1, 2);
  ASSERT_EQ(rec.to_reference.size(), parsed.graph.num_nodes());
  const DwtGraph reference =
      BuildDwt(rec.param0, static_cast<int>(rec.param1), rec.config);
  EXPECT_TRUE(
      IsIsomorphismMap(parsed.graph, reference.graph, rec.to_reference));
}

TEST(Recognition, IsConservativeOnNonFamilyGraphs) {
  EXPECT_FALSE(RecognizeFamily(testing::MakeDiamond()).recognized());
  EXPECT_FALSE(RecognizeFamily(BuildDwt(8, 2).graph).family ==
               GraphFamily::kKaryTree);
}

TEST(Analyzer, RegistryHasStableIds) {
  EXPECT_GE(AllAnalysisPasses().size(), 6u);
  EXPECT_NE(FindAnalysisPass("bound-certificates"), nullptr);
  EXPECT_NE(FindAnalysisPass("canonical-hash"), nullptr);
  EXPECT_NE(FindAnalysisPass("graph-irrelevant-node"), nullptr);
  EXPECT_EQ(FindAnalysisPass("no-such-pass"), nullptr);
}

TEST(Analyzer, AnalyzeGraphTiesTheLayersTogether) {
  const Graph g = BuildDwt(16, 2).graph;
  AnalysisOptions options;
  options.budget = 48;
  const GraphAnalysis analysis = AnalyzeGraph(g, options);
  EXPECT_EQ(analysis.budget, 48);
  EXPECT_EQ(analysis.hash, HashGraph(g));
  EXPECT_EQ(analysis.recognition.label, "dwt:16,2");
  ASSERT_EQ(analysis.certificates.size(), 3u);
  ASSERT_EQ(analysis.checks.size(), 3u);
  for (const CertificateCheck& check : analysis.checks) {
    EXPECT_TRUE(check.ok) << check.error;
  }
  EXPECT_EQ(analysis.best_bound, 640);  // strictly above ALB 512
  EXPECT_GT(analysis.best_bound, AlgorithmicLowerBound(g));
}

TEST(Analyzer, BudgetDefaultsToMinValidBudget) {
  const Graph g = testing::MakeDiamond();
  const GraphAnalysis analysis = AnalyzeGraph(g);
  EXPECT_EQ(analysis.budget, MinValidBudget(g));
}

TEST(Analyzer, JsonAndTextRenderings) {
  const GraphAnalysis analysis = AnalyzeGraph(BuildPerfectTree(2, 3).graph);
  const std::string json = GraphAnalysisToJson(analysis);
  EXPECT_NE(json.find("\"wrbpg-ganalysis-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"certificates\""), std::string::npos);
  EXPECT_NE(json.find("\"recognition\""), std::string::npos);
  const std::string text = RenderGraphAnalysis(analysis);
  EXPECT_NE(text.find("best bound"), std::string::npos);
}

TEST(Analyzer, StructureRulesMatchLintSemantics) {
  // A node feeding nothing relevant: 0 -> 1 (sink), 2 isolated. The
  // builder's disjointness gate is relaxed, as in the lint tests.
  GraphBuilder b;
  b.AddNode(1);
  b.AddNode(1);
  b.AddNode(1);
  b.AddEdge(0, 1);
  const Graph g =
      b.BuildOrDie({.require_disjoint_sources_sinks = false});
  const std::vector<GraphFact> facts = RunStructureRules(g);
  ASSERT_FALSE(facts.empty());
  bool isolated = false;
  for (const GraphFact& fact : facts) {
    if (fact.pass_id == "graph-isolated-node" && fact.node == 2) {
      isolated = true;
    }
  }
  EXPECT_TRUE(isolated);
}

}  // namespace
}  // namespace wrbpg
