#include <gtest/gtest.h>

#include <tuple>

#include "core/analysis.h"
#include "dataflows/mvm_graph.h"
#include "schedulers/brute_force.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/mvm_tiling.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

// ---------------------------------------------------------------------------
// Closed forms.
// ---------------------------------------------------------------------------

TEST(MvmTiling, TileCostClosedForm) {
  const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
  MvmTilingScheduler sched(mvm);
  // Full accumulator residency: A once, x once, outputs once.
  EXPECT_EQ(sched.TileCost({.g = 0, .h = 96, .spill_running = false}),
            16 * (96 * 120 + 120 + 96));
  // Two stripes: x read twice.
  EXPECT_EQ(sched.TileCost({.g = 0, .h = 48, .spill_running = false}),
            16 * (96 * 120 + 240 + 96));
  // Full vector residency with single-row tiles: also the lower bound.
  EXPECT_EQ(sched.TileCost({.g = 120, .h = 1, .spill_running = false}),
            16 * (96 * 120 + 120 + 96));
}

TEST(MvmTiling, TilePeakMatchesTable1) {
  {
    const MvmGraph mvm = BuildMvm(96, 120, PrecisionConfig::Equal());
    MvmTilingScheduler sched(mvm);
    EXPECT_EQ(sched.TilePeak({.g = 0, .h = 96, .spill_running = false}),
              1584);  // 99 words (Table 1)
  }
  {
    const MvmGraph mvm =
        BuildMvm(96, 120, PrecisionConfig::DoubleAccumulator());
    MvmTilingScheduler sched(mvm);
    EXPECT_EQ(sched.TilePeak({.g = 120, .h = 1, .spill_running = false}),
              2016);  // 126 words (Table 1)
  }
}

TEST(MvmTiling, Table1MinimumMemory) {
  const MvmGraph equal = BuildMvm(96, 120, PrecisionConfig::Equal());
  EXPECT_EQ(MvmTilingScheduler(equal).MinMemoryForLowerBound(), 1584);

  const MvmGraph da = BuildMvm(96, 120, PrecisionConfig::DoubleAccumulator());
  EXPECT_EQ(MvmTilingScheduler(da).MinMemoryForLowerBound(), 2016);
}

// ---------------------------------------------------------------------------
// Generated schedules match the closed forms exactly.
// ---------------------------------------------------------------------------

class MvmTilingSimTest
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, bool>> {};

TEST_P(MvmTilingSimTest, SimulatorConfirmsCostAndPeakAcrossBudgets) {
  const auto [m, n, double_acc] = GetParam();
  const PrecisionConfig config = double_acc
                                     ? PrecisionConfig::DoubleAccumulator()
                                     : PrecisionConfig::Equal();
  const MvmGraph mvm = BuildMvm(m, n, config);
  MvmTilingScheduler sched(mvm);
  const Weight lo = MinValidBudget(mvm.graph);
  const Weight lb = AlgorithmicLowerBound(mvm.graph);

  Weight previous = kInfiniteCost;
  for (Weight b = lo; b <= sched.MinMemoryForLowerBound() + 64; b += 16) {
    const auto tile = sched.BestTile(b);
    ASSERT_TRUE(tile.has_value()) << "budget " << b;
    const auto run = sched.Run(b);
    ASSERT_TRUE(run.feasible);
    const SimResult sim = testing::ExpectValid(mvm.graph, b, run.schedule);
    EXPECT_EQ(sim.cost, sched.TileCost(*tile)) << "budget " << b;
    EXPECT_EQ(sim.peak_red_weight, sched.TilePeak(*tile)) << "budget " << b;
    EXPECT_GE(sim.cost, lb);
    EXPECT_LE(sim.cost, previous);
    previous = sim.cost;
  }
  EXPECT_EQ(previous, lb);  // the sweep ends past the min-memory point
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MvmTilingSimTest,
    ::testing::Values(std::tuple{2, 2, false}, std::tuple{3, 2, false},
                      std::tuple{2, 3, false}, std::tuple{5, 4, false},
                      std::tuple{4, 6, true}, std::tuple{7, 3, true},
                      std::tuple{12, 9, false}, std::tuple{12, 9, true},
                      std::tuple{16, 20, true}));

TEST(MvmTiling, FeasibleAtExactlyMinValidBudget) {
  for (const auto config : {PrecisionConfig::Equal(),
                            PrecisionConfig::DoubleAccumulator()}) {
    const MvmGraph mvm = BuildMvm(5, 4, config);
    MvmTilingScheduler sched(mvm);
    const Weight lo = MinValidBudget(mvm.graph);
    EXPECT_EQ(sched.CostOnly(lo - 1), kInfiniteCost);
    const auto run = sched.Run(lo);
    ASSERT_TRUE(run.feasible);
    testing::ExpectValid(mvm.graph, lo, run.schedule);
  }
}

TEST(MvmTiling, MatchesBruteForceOnTinyInstance) {
  // MVM(2, 2): 6 inputs + 4 products + 2 accumulators = 12 nodes.
  const MvmGraph mvm = BuildMvm(2, 2, PrecisionConfig::Equal(1));
  MvmTilingScheduler sched(mvm);
  BruteForceScheduler oracle(mvm.graph);
  const Weight lo = MinValidBudget(mvm.graph);
  for (Weight b = lo; b <= lo + 5; ++b) {
    // The tiling family is a restricted schedule space: it upper-bounds the
    // optimum, and meets it once the accumulators (or x) fit.
    EXPECT_GE(sched.CostOnly(b), oracle.CostOnly(b)) << "budget " << b;
  }
  EXPECT_EQ(sched.CostOnly(lo + 5), oracle.CostOnly(lo + 5));
}

TEST(MvmTiling, NeverWorseThanGreedyTopo) {
  const MvmGraph mvm = BuildMvm(8, 6, PrecisionConfig::DoubleAccumulator());
  MvmTilingScheduler tiling(mvm);
  GreedyTopoScheduler greedy(mvm.graph);
  for (Weight b = MinValidBudget(mvm.graph);
       b <= MinValidBudget(mvm.graph) + 512; b += 64) {
    EXPECT_LE(tiling.CostOnly(b), greedy.CostOnly(b)) << "budget " << b;
  }
}

TEST(MvmTiling, SingleColumnEdgeCase) {
  const MvmGraph mvm = BuildMvm(4, 1, PrecisionConfig::Equal());
  MvmTilingScheduler sched(mvm);
  const Weight lo = MinValidBudget(mvm.graph);
  const auto run = sched.Run(lo);
  ASSERT_TRUE(run.feasible);
  const SimResult sim = testing::ExpectValid(mvm.graph, lo, run.schedule);
  // n = 1: every input read once, every product written once.
  EXPECT_EQ(sim.cost, AlgorithmicLowerBound(mvm.graph));
}

TEST(MvmTiling, DoubleAccumulatorPrefersVectorResidency) {
  // The paper's Sec 5.3 observation: with 32-bit accumulators the tiling
  // equalizes capacity by keeping x resident instead of the accumulators.
  const MvmGraph da = BuildMvm(96, 120, PrecisionConfig::DoubleAccumulator());
  MvmTilingScheduler sched(da);
  const Weight min_mem = sched.MinMemoryForLowerBound();
  const auto tile = sched.BestTile(min_mem);
  ASSERT_TRUE(tile.has_value());
  EXPECT_EQ(tile->g, 120);
  EXPECT_EQ(tile->h, 1);
}

TEST(MvmTiling, EqualPrefersAccumulatorResidency) {
  const MvmGraph equal = BuildMvm(96, 120, PrecisionConfig::Equal());
  MvmTilingScheduler sched(equal);
  const auto tile = sched.BestTile(sched.MinMemoryForLowerBound());
  ASSERT_TRUE(tile.has_value());
  EXPECT_EQ(tile->h, 96);
  EXPECT_EQ(tile->g, 0);
}

TEST(MvmTiling, SpillRunningKicksInAtTheFloor) {
  const MvmGraph mvm = BuildMvm(6, 5, PrecisionConfig::DoubleAccumulator());
  MvmTilingScheduler sched(mvm);
  const auto tile = sched.BestTile(MinValidBudget(mvm.graph));
  ASSERT_TRUE(tile.has_value());
  EXPECT_TRUE(tile->spill_running);
}

}  // namespace
}  // namespace wrbpg
