#include <gtest/gtest.h>

#include <tuple>

#include "core/analysis.h"
#include "dataflows/mmm_graph.h"
#include "exec/executor.h"
#include "exec/extended_kernels.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/mmm_tiling.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

class MmmStructureTest
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t>> {};

TEST_P(MmmStructureTest, ChainsAndCounts) {
  const auto [m, k, n] = GetParam();
  const MmmGraph mmm = BuildMmm(m, k, n);
  const Graph& g = mmm.graph;
  EXPECT_EQ(g.num_nodes(), static_cast<std::size_t>(m * k + k * n + m * n * k +
                                                    m * n * (k - 1)));
  EXPECT_EQ(g.sources().size(), static_cast<std::size_t>(m * k + k * n));
  EXPECT_EQ(g.sinks().size(), static_cast<std::size_t>(m * n));

  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t c = 0; c < n; ++c) {
      EXPECT_TRUE(g.is_sink(mmm.output(r, c)));
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const auto parents = g.parents(mmm.product(r, c, kk));
        ASSERT_EQ(parents.size(), 2u);
        EXPECT_TRUE(parents[0] == mmm.a(r, kk) || parents[1] == mmm.a(r, kk));
        EXPECT_TRUE(parents[0] == mmm.b(kk, c) || parents[1] == mmm.b(kk, c));
      }
    }
  }
  // A entries feed n products each; B entries feed m products each.
  EXPECT_EQ(g.out_degree(mmm.a(0, 0)), static_cast<std::size_t>(n));
  EXPECT_EQ(g.out_degree(mmm.b(0, 0)), static_cast<std::size_t>(m));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MmmStructureTest,
                         ::testing::Values(std::tuple{2, 2, 2},
                                           std::tuple{3, 2, 4},
                                           std::tuple{4, 1, 3},
                                           std::tuple{2, 5, 2},
                                           std::tuple{8, 8, 8}));

TEST(MmmTiling, CostClosedForms) {
  const MmmGraph mmm = BuildMmm(8, 8, 8, PrecisionConfig::Equal());
  MmmTilingScheduler sched(mmm);
  using R = MmmTilingScheduler::Residency;
  const Weight lb = AlgorithmicLowerBound(mmm.graph);
  EXPECT_EQ(sched.TileCost({.residency = R::kAResident}), lb);
  EXPECT_EQ(sched.TileCost({.residency = R::kBResident}), lb);
  EXPECT_EQ(sched.TileCost({.residency = R::kBlock, .bi = 8, .bj = 8}), lb);
  // 2x2 blocks: A re-read 4 times, B re-read 4 times.
  EXPECT_EQ(sched.TileCost({.residency = R::kBlock, .bi = 2, .bj = 2}),
            16 * (64 * 4 + 64 * 4) + 16 * 64);
}

class MmmScheduleTest
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t, bool>> {};

TEST_P(MmmScheduleTest, SimulatorConfirmsCostAndPeak) {
  const auto [m, k, n, da] = GetParam();
  const PrecisionConfig config =
      da ? PrecisionConfig::DoubleAccumulator() : PrecisionConfig::Equal();
  const MmmGraph mmm = BuildMmm(m, k, n, config);
  MmmTilingScheduler sched(mmm);
  const Weight lb = AlgorithmicLowerBound(mmm.graph);
  const Weight floor =
      sched.TilePeak({.residency = MmmTilingScheduler::Residency::kBlock,
                      .bi = 1, .bj = 1});

  Weight previous = kInfiniteCost;
  for (Weight b = floor; b <= sched.MinMemoryForLowerBound() + 64; b += 32) {
    const auto tile = sched.BestTile(b);
    ASSERT_TRUE(tile.has_value()) << "budget " << b;
    const auto run = sched.Run(b);
    ASSERT_TRUE(run.feasible);
    const SimResult sim = testing::ExpectValid(mmm.graph, b, run.schedule);
    EXPECT_EQ(sim.cost, sched.TileCost(*tile)) << "budget " << b;
    EXPECT_EQ(sim.peak_red_weight, sched.TilePeak(*tile)) << "budget " << b;
    EXPECT_GE(sim.cost, lb);
    EXPECT_LE(sim.cost, previous);
    previous = sim.cost;
  }
  EXPECT_EQ(previous, lb);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MmmScheduleTest,
    ::testing::Values(std::tuple{2, 2, 2, false}, std::tuple{3, 4, 2, false},
                      std::tuple{4, 3, 5, true}, std::tuple{6, 2, 6, false},
                      std::tuple{5, 5, 5, true}, std::tuple{4, 1, 4, false}));

TEST(MmmTiling, ExecutesMatMulExactly) {
  const MmmGraph mmm = BuildMmm(5, 4, 6, PrecisionConfig::Equal());
  MmmTilingScheduler sched(mmm);
  Rng rng(21);
  std::vector<double> a(5 * 4), b(4 * 6);
  for (auto& v : a) v = rng.UniformDouble() * 2.0 - 1.0;
  for (auto& v : b) v = rng.UniformDouble() * 2.0 - 1.0;

  std::vector<double> sources(mmm.graph.num_nodes(), 0.0);
  for (std::int64_t r = 0; r < 5; ++r) {
    for (std::int64_t kk = 0; kk < 4; ++kk) {
      sources[mmm.a(r, kk)] = a[static_cast<std::size_t>(r * 4 + kk)];
    }
  }
  for (std::int64_t kk = 0; kk < 4; ++kk) {
    for (std::int64_t c = 0; c < 6; ++c) {
      sources[mmm.b(kk, c)] = b[static_cast<std::size_t>(kk * 6 + c)];
    }
  }
  const auto expected = MatMul(5, 4, 6, a, b);

  for (const Weight budget :
       {sched.TilePeak({.residency = MmmTilingScheduler::Residency::kBlock,
                        .bi = 2, .bj = 2}),
        sched.MinMemoryForLowerBound()}) {
    const auto run = sched.Run(budget);
    ASSERT_TRUE(run.feasible);
    const ExecResult exec = ExecuteSchedule(mmm.graph, budget, run.schedule,
                                            MakeMmmNodeOp(mmm), sources);
    ASSERT_TRUE(exec.ok) << exec.error;
    for (std::int64_t r = 0; r < 5; ++r) {
      for (std::int64_t c = 0; c < 6; ++c) {
        EXPECT_DOUBLE_EQ(exec.slow_values[mmm.output(r, c)],
                         expected[static_cast<std::size_t>(r * 6 + c)]);
      }
    }
  }
}

TEST(MmmTiling, DaPrefersInputResidencyLikeMvm) {
  // The Sec 5.3 effect generalizes: with 32-bit accumulators, pinning an
  // input matrix is cheaper than pinning the output block.
  const MmmGraph mmm = BuildMmm(12, 6, 12, PrecisionConfig::DoubleAccumulator());
  MmmTilingScheduler sched(mmm);
  const auto tile = sched.BestTile(sched.MinMemoryForLowerBound());
  ASSERT_TRUE(tile.has_value());
  EXPECT_NE(tile->residency, MmmTilingScheduler::Residency::kBlock);
}

TEST(MmmTiling, NeverWorseThanGreedy) {
  const MmmGraph mmm = BuildMmm(6, 6, 6, PrecisionConfig::Equal());
  MmmTilingScheduler tiling(mmm);
  GreedyTopoScheduler greedy(mmm.graph);
  const Weight floor =
      tiling.TilePeak({.residency = MmmTilingScheduler::Residency::kBlock,
                       .bi = 1, .bj = 1});
  for (Weight b = floor; b <= floor + 1024; b += 128) {
    EXPECT_LE(tiling.CostOnly(b), greedy.CostOnly(b)) << "budget " << b;
  }
}

}  // namespace
}  // namespace wrbpg
