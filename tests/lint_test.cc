// Unit tests for the schedule lint engine: the liveness primitives, each
// rule in isolation, fix-it application, and rendering. The bulk
// soundness contract against the simulator lives in
// lint_differential_test.cc.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/analysis.h"
#include "core/graph_builder.h"
#include "core/simulator.h"
#include "lint/fixes.h"
#include "lint/lint.h"
#include "lint/liveness.h"
#include "schedulers/belady.h"
#include "schedulers/greedy_topo.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

using testing::MakeChain;
using testing::MakeDiamond;

std::vector<const LintDiagnostic*> DiagsOfRule(const LintResult& result,
                                               std::string_view rule) {
  std::vector<const LintDiagnostic*> out;
  for (const LintDiagnostic& d : result.diagnostics) {
    if (d.rule_id == rule) out.push_back(&d);
  }
  return out;
}

// --- Registry ---------------------------------------------------------------

TEST(LintRegistry, RuleIdsAreUniqueAndResolvable) {
  std::set<std::string_view> seen;
  for (const LintRule& rule : AllLintRules()) {
    EXPECT_TRUE(seen.insert(rule.id).second) << "duplicate id " << rule.id;
    EXPECT_FALSE(rule.description.empty());
    const LintRule* found = FindLintRule(rule.id);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->id, rule.id);
  }
  EXPECT_EQ(FindLintRule("no-such-rule"), nullptr);
}

TEST(LintRegistry, EveryEmittedRuleIdIsRegistered) {
  // A schedule crafted to trip many rules at once; every diagnostic's id
  // must resolve in the registry.
  const Graph g = MakeDiamond();
  Schedule s;
  s.Append(Load(99));     // node-out-of-range
  s.Append(Compute(4));   // non-topological + parent-not-red
  s.Append(Load(0));
  s.Append(Delete(0));    // dead load
  const LintResult lint = LintSchedule(g, 100, s);
  EXPECT_TRUE(lint.has_errors());
  for (const LintDiagnostic& d : lint.diagnostics) {
    EXPECT_NE(FindLintRule(d.rule_id), nullptr) << d.rule_id;
  }
}

// --- Liveness primitives ----------------------------------------------------

TEST(Liveness, UseTimelineOverComputeOrder) {
  const Graph g = MakeDiamond();  // 2 reads {0,1}; 3 reads {1}; 4 reads {2,3}
  const std::vector<NodeId> order = {2, 3, 4};
  const UseTimeline t = UseTimeline::OverComputeOrder(g, order);
  EXPECT_EQ(t.NextUseAt(0, 0), 0u);  // consumed by slot 0 (compute of 2)
  EXPECT_EQ(t.NextUseAt(0, 1), kNoUse);
  EXPECT_EQ(t.NextUseAt(1, 0), 0u);
  EXPECT_EQ(t.NextUseAt(1, 1), 1u);  // compute of 3
  EXPECT_EQ(t.NextUseAt(2, 1), 2u);  // compute of 4
  EXPECT_EQ(t.NextUseAt(4, 2), kNoUse);
}

TEST(Liveness, UseTimelineOverMovesCountsStoresAndParents) {
  const Graph g = MakeChain(3);
  Schedule s;
  s.Append(Load(0));      // 0: no use
  s.Append(Compute(1));   // 1: uses 0
  s.Append(Store(1));     // 2: uses 1
  s.Append(Compute(2));   // 3: uses 1
  const UseTimeline t = UseTimeline::OverMoves(g, s);
  EXPECT_EQ(t.NextUseAt(0, 0), 1u);
  EXPECT_EQ(t.NextUseAt(1, 0), 2u);
  EXPECT_EQ(t.NextUseAt(1, 3), 3u);
  EXPECT_EQ(t.NextUseAt(2, 0), kNoUse);
}

TEST(Liveness, MoveRefCountsMatchRepairSemantics) {
  const Graph g = MakeChain(3);
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));  // mentions 1 and parent 0
  s.Append(Delete(0));
  MoveRefCounts refs(g, s);
  EXPECT_EQ(refs.remaining(0), 3);  // load + parent-of-compute + delete
  EXPECT_EQ(refs.remaining(1), 1);
  refs.Consume(s[0]);
  EXPECT_EQ(refs.remaining(0), 2);
  refs.Consume(s[1]);
  EXPECT_EQ(refs.remaining(0), 1);
  EXPECT_EQ(refs.remaining(1), 0);
}

TEST(Liveness, MoveLivenessBuildsRangesAndAnswersRangeAt) {
  const Graph g = MakeChain(3);
  Schedule s;
  s.Append(Load(0));     // 0: def 0
  s.Append(Compute(1));  // 1: def 1, use of 0
  s.Append(Delete(0));   // 2: kill 0
  s.Append(Compute(2));  // 3: use of 1
  s.Append(Store(2));    // 4: use of 2
  const MoveLiveness live(g, s);
  ASSERT_EQ(live.ranges_of(0).size(), 1u);
  const LiveRange& r0 = live.ranges()[live.ranges_of(0)[0]];
  EXPECT_EQ(r0.def, 0u);
  EXPECT_EQ(r0.def_type, MoveType::kLoad);
  EXPECT_EQ(r0.kill, 2u);
  EXPECT_EQ(r0.use_count, 1u);
  EXPECT_EQ(r0.last_use, 1u);

  const LiveRange* at = live.RangeAt(0, 1);
  ASSERT_NE(at, nullptr);
  EXPECT_EQ(at->def, 0u);
  EXPECT_EQ(live.RangeAt(0, 3), nullptr);  // killed at 2
  const LiveRange* r2 = live.RangeAt(2, 4);
  ASSERT_NE(r2, nullptr);  // live-out: kill == kNoMove covers the tail
  EXPECT_EQ(r2->use_count, 1u);
}

// --- Clean schedules --------------------------------------------------------

TEST(Lint, CleanBeladyScheduleHasNoDiagnostics) {
  const Graph g = MakeDiamond();
  const Weight budget = MinValidBudget(g) + 8;
  const Schedule s = BeladyScheduler(g).Run(budget).schedule;
  ASSERT_TRUE(Simulate(g, budget, s).valid);
  const LintResult lint = LintSchedule(g, budget, s);
  EXPECT_FALSE(lint.has_errors());
  EXPECT_EQ(lint.count(LintSeverity::kWarning), 0u)
      << RenderLintResult(lint);
  EXPECT_EQ(lint.wasted_bits_total, 0);
}

// --- Individual rules -------------------------------------------------------

TEST(Lint, DeadLoadDetectedWithPairedDeleteFix) {
  const Graph g = MakeDiamond({4, 4, 4, 4, 4});
  const Weight budget = MinValidBudget(g) + 16;
  Schedule s;
  s.Append(Load(0));
  s.Append(Load(1));
  s.Append(Compute(2));
  s.Append(Delete(0));
  s.Append(Compute(3));
  s.Append(Delete(1));
  s.Append(Compute(4));
  s.Append(Store(4));
  s.Append(Delete(2));
  s.Append(Delete(3));
  s.Append(Delete(4));
  const Weight base_cost = Simulate(g, budget, s).cost;
  s.Append(Load(0));    // never read again
  s.Append(Delete(0));
  ASSERT_TRUE(Simulate(g, budget, s).valid);

  const LintResult lint = LintSchedule(g, budget, s);
  const auto dead = DiagsOfRule(lint, "dead-load");
  ASSERT_EQ(dead.size(), 1u) << RenderLintResult(lint);
  EXPECT_EQ(dead[0]->severity, LintSeverity::kWarning);
  EXPECT_EQ(dead[0]->move_index, s.size() - 2);
  EXPECT_EQ(dead[0]->node, 0u);
  EXPECT_EQ(dead[0]->wasted_bits, 4);
  EXPECT_EQ(dead[0]->fixit.drop_moves.size(), 2u);

  const LintFixResult fixed = ApplyLintFixes(g, budget, s);
  ASSERT_TRUE(fixed.ok) << fixed.message;
  EXPECT_TRUE(fixed.changed);
  EXPECT_TRUE(fixed.verification.valid);
  EXPECT_EQ(fixed.cost_after, base_cost);
}

TEST(Lint, DeadStoreDetectedAndFixed) {
  const Graph g = MakeChain(3, 8);
  const Weight budget = MinValidBudget(g) + 32;
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));
  s.Append(Store(1));  // 1 is not a sink and never reloaded
  s.Append(Delete(0));
  s.Append(Compute(2));
  s.Append(Store(2));
  s.Append(Delete(1));
  s.Append(Delete(2));
  ASSERT_TRUE(Simulate(g, budget, s).valid);

  const LintResult lint = LintSchedule(g, budget, s);
  const auto dead = DiagsOfRule(lint, "dead-store");
  ASSERT_EQ(dead.size(), 1u) << RenderLintResult(lint);
  EXPECT_EQ(dead[0]->move_index, 2u);
  EXPECT_EQ(dead[0]->node, 1u);
  EXPECT_EQ(dead[0]->wasted_bits, 8);

  const LintFixResult fixed = ApplyLintFixes(g, budget, s);
  ASSERT_TRUE(fixed.ok) << fixed.message;
  EXPECT_EQ(fixed.cost_after, fixed.cost_before - 8);
  EXPECT_TRUE(fixed.verification.valid);
}

TEST(Lint, DeadComputeDetected) {
  // 0 -> {1, 2}, both sinks. Recompute 1 after its store: pure waste.
  GraphBuilder b;
  b.AddNode(2);
  b.AddNode(2);
  b.AddNode(2);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  const Graph g = b.BuildOrDie();
  const Weight budget = 16;
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));
  s.Append(Store(1));
  s.Append(Delete(1));
  s.Append(Compute(2));
  s.Append(Store(2));
  s.Append(Delete(2));
  s.Append(Compute(1));  // dead: never read, already blue so never stored
  s.Append(Delete(1));
  s.Append(Delete(0));
  ASSERT_TRUE(Simulate(g, budget, s).valid);

  const LintResult lint = LintSchedule(g, budget, s);
  const auto dead = DiagsOfRule(lint, "dead-compute");
  ASSERT_EQ(dead.size(), 1u) << RenderLintResult(lint);
  EXPECT_EQ(dead[0]->move_index, 7u);
  EXPECT_EQ(dead[0]->node, 1u);
  // A compute wastes no I/O itself, but the fix still removes it.
  EXPECT_EQ(dead[0]->wasted_bits, 0);
  EXPECT_EQ(dead[0]->fixit.drop_moves.size(), 2u);

  const LintFixResult fixed = ApplyLintFixes(g, budget, s);
  ASSERT_TRUE(fixed.ok) << fixed.message;
  EXPECT_TRUE(fixed.changed);
  EXPECT_LE(fixed.cost_after, fixed.cost_before);
}

TEST(Lint, SpillChurnFixableWhenHeadroomExists) {
  const Graph g = MakeDiamond({4, 4, 4, 4, 4});
  const Weight budget = 100;  // ample headroom: the delete was pointless
  Schedule s;
  s.Append(Load(0));
  s.Append(Load(1));
  s.Append(Compute(2));
  s.Append(Delete(1));   // churn: deleted ...
  s.Append(Load(1));     // ... and reloaded for compute of 3
  s.Append(Compute(3));
  s.Append(Delete(0));
  s.Append(Delete(1));
  s.Append(Compute(4));
  s.Append(Store(4));
  s.Append(Delete(2));
  s.Append(Delete(3));
  s.Append(Delete(4));
  const SimResult base = Simulate(g, budget, s);
  ASSERT_TRUE(base.valid) << base.error;

  const LintResult lint = LintSchedule(g, budget, s);
  const auto churn = DiagsOfRule(lint, "spill-churn");
  ASSERT_EQ(churn.size(), 1u) << RenderLintResult(lint);
  EXPECT_EQ(churn[0]->severity, LintSeverity::kWarning);
  EXPECT_EQ(churn[0]->move_index, 4u);
  EXPECT_EQ(churn[0]->node, 1u);
  EXPECT_EQ(churn[0]->wasted_bits, 4);
  EXPECT_EQ(churn[0]->fixit.drop_moves, (std::vector<std::size_t>{3, 4}));

  const LintFixResult fixed = ApplyLintFixes(g, budget, s);
  ASSERT_TRUE(fixed.ok) << fixed.message;
  EXPECT_EQ(fixed.cost_after, base.cost - 4);
  EXPECT_TRUE(fixed.verification.valid);
}

TEST(Lint, SpillChurnUnfixableAtTightBudgetIsAdvisory) {
  // Node 3 is spilled and reloaded, but the gap contains a snapshot at the
  // full budget (the compute of 2 needs all 12 bits), so keeping 3
  // resident is impossible: advisory only, no fix.
  const Graph g = MakeDiamond({4, 4, 4, 4, 4});
  const Weight budget = MinValidBudget(g);  // 12 bits
  Schedule s;
  s.Append(Load(1));
  s.Append(Compute(3));
  s.Append(Store(3));
  s.Append(Delete(3));
  s.Append(Load(0));
  s.Append(Compute(2));   // occupancy hits the budget here
  s.Append(Delete(0));
  s.Append(Delete(1));
  s.Append(Load(3));      // forced reload
  s.Append(Compute(4));
  s.Append(Store(4));
  s.Append(Delete(2));
  s.Append(Delete(3));
  s.Append(Delete(4));
  const SimResult base = Simulate(g, budget, s);
  ASSERT_TRUE(base.valid) << base.error;

  const LintResult lint = LintSchedule(g, budget, s);
  EXPECT_FALSE(lint.has_errors());
  const auto churn = DiagsOfRule(lint, "spill-churn");
  ASSERT_EQ(churn.size(), 1u) << RenderLintResult(lint);
  EXPECT_EQ(churn[0]->severity, LintSeverity::kInfo);
  EXPECT_TRUE(churn[0]->fixit.empty());
  EXPECT_EQ(churn[0]->node, 3u);
  // Advisory diagnostics leave nothing to fix.
  const LintFixResult fixed = ApplyLintFixes(g, budget, s);
  ASSERT_TRUE(fixed.ok) << fixed.message;
  EXPECT_EQ(fixed.cost_after, fixed.cost_before);
}

TEST(Lint, RedundantRecomputeAttributesSingleUseParentLoads) {
  const Graph g = MakeChain(3, 8);  // 0 -> 1 -> 2
  const Weight budget = 64;
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));
  s.Append(Store(1));
  s.Append(Delete(0));
  s.Append(Delete(1));   // 1 dropped ...
  s.Append(Load(0));     // ... parent refetched only to rebuild it
  s.Append(Compute(1));  // redundant recompute (a Load(1) would also do)
  s.Append(Delete(0));
  s.Append(Compute(2));
  s.Append(Store(2));
  s.Append(Delete(1));
  s.Append(Delete(2));
  ASSERT_TRUE(Simulate(g, budget, s).valid);

  const LintResult lint = LintSchedule(g, budget, s);
  const auto rec = DiagsOfRule(lint, "redundant-recompute");
  ASSERT_EQ(rec.size(), 1u) << RenderLintResult(lint);
  EXPECT_EQ(rec[0]->severity, LintSeverity::kInfo);
  EXPECT_EQ(rec[0]->move_index, 6u);
  EXPECT_EQ(rec[0]->node, 1u);
  EXPECT_EQ(rec[0]->wasted_bits, 8);  // the Load(0) serving only this compute
}

TEST(Lint, BudgetInfeasibleComputeIsProvableFromOneMove) {
  // Three 8-bit nodes; the sink's working set is 24 > budget 23 (Prop 2.3).
  GraphBuilder b;
  b.AddNode(8);
  b.AddNode(8);
  b.AddNode(8);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  const Graph g = b.BuildOrDie();
  const Weight budget = MinValidBudget(g) - 1;
  Schedule s;
  s.Append(Load(0));
  s.Append(Load(1));
  s.Append(Compute(2));
  s.Append(Store(2));

  const LintResult lint = LintSchedule(g, budget, s);
  const auto infeasible = DiagsOfRule(lint, "budget-infeasible");
  ASSERT_EQ(infeasible.size(), 1u) << RenderLintResult(lint);
  EXPECT_EQ(infeasible[0]->move_index, 2u);
  EXPECT_EQ(infeasible[0]->node, 2u);
  EXPECT_EQ(infeasible[0]->sim_code, SimErrorCode::kBudgetExceeded);

  // The first error still mirrors the simulator's report exactly.
  const SimResult sim = Simulate(g, budget, s);
  ASSERT_FALSE(sim.valid);
  const LintDiagnostic* first = lint.first_error();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->sim_code, sim.code);
  EXPECT_EQ(first->move_index, sim.error_index);
  EXPECT_EQ(first->node, sim.error_node);
}

TEST(Lint, NonTopologicalComputeOrderIsFlagged) {
  const Graph g = MakeChain(3);
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(2));  // before its parent 1 was ever computed
  const LintResult lint = LintSchedule(g, 8, s);
  const auto topo = DiagsOfRule(lint, "non-topological-compute");
  ASSERT_EQ(topo.size(), 1u) << RenderLintResult(lint);
  EXPECT_EQ(topo[0]->move_index, 1u);
  EXPECT_EQ(topo[0]->node, 1u);  // the missing parent
  EXPECT_TRUE(lint.has_errors());
}

TEST(Lint, StopConditionUnmetAtEndOfSchedule) {
  const Graph g = MakeChain(3);
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));
  s.Append(Compute(2));  // sink computed but never stored
  const LintResult lint = LintSchedule(g, 8, s);
  const auto stop = DiagsOfRule(lint, "stop-condition-unmet");
  ASSERT_EQ(stop.size(), 1u) << RenderLintResult(lint);
  EXPECT_EQ(stop[0]->move_index, s.size());
  EXPECT_EQ(stop[0]->node, 2u);
}

// --- Graph-level rules ------------------------------------------------------

TEST(LintGraphRules, IsolatedNodeIsFlagged) {
  GraphBuilder b;
  b.AddNode(1);
  const Graph g =
      b.BuildOrDie({.require_disjoint_sources_sinks = false});
  const auto diags = LintGraph(g);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, "graph-isolated-node");
  EXPECT_EQ(diags[0].severity, LintSeverity::kInfo);
  EXPECT_EQ(diags[0].node, 0u);
}

TEST(LintGraphRules, IrrelevantToDesignatedOutputs) {
  // Diamond with outputs restricted to node 2: node 3 feeds only the real
  // sink 4, so relative to {2} both 3 and 4 are irrelevant.
  const Graph g = MakeDiamond();
  const std::vector<NodeId> outputs = {2};
  const auto diags = LintGraph(g, outputs);
  std::set<NodeId> flagged;
  for (const LintDiagnostic& d : diags) {
    if (d.rule_id == "graph-irrelevant-node") flagged.insert(d.node);
  }
  EXPECT_EQ(flagged, (std::set<NodeId>{3, 4}));
}

TEST(LintGraphRules, WellFormedGraphIsClean) {
  EXPECT_TRUE(LintGraph(MakeDiamond()).empty());
}

// --- Fix application --------------------------------------------------------

TEST(LintFixes, CascadeReachesFixpoint) {
  // A dead load at the tail keeps Store(1) "alive" in round 1; dropping
  // the load must then expose the store as dead in round 2.
  const Graph g = MakeChain(3, 8);
  const Weight budget = 64;
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));
  s.Append(Delete(0));
  s.Append(Compute(2));
  s.Append(Store(2));
  s.Append(Store(1));   // only "used" by the dead reload below
  s.Append(Delete(1));
  s.Append(Delete(2));
  s.Append(Load(1));    // dead load
  s.Append(Delete(1));
  const SimResult base = Simulate(g, budget, s);
  ASSERT_TRUE(base.valid) << base.error;

  const LintFixResult fixed = ApplyLintFixes(g, budget, s);
  ASSERT_TRUE(fixed.ok) << fixed.message;
  EXPECT_GE(fixed.iterations, 2u);
  EXPECT_EQ(fixed.cost_after, base.cost - 16);  // reload + store both gone
  EXPECT_TRUE(fixed.verification.valid);

  // Fixpoint: nothing fixable remains.
  const LintResult after = LintSchedule(g, budget, fixed.schedule);
  for (const LintDiagnostic& d : after.diagnostics) {
    EXPECT_TRUE(d.severity != LintSeverity::kWarning || d.fixit.empty())
        << RenderLintResult(after);
  }
}

TEST(LintFixes, RefusesInvalidInput) {
  const Graph g = MakeChain(3);
  Schedule s;
  s.Append(Compute(2));
  const LintFixResult fixed = ApplyLintFixes(g, 8, s);
  EXPECT_FALSE(fixed.ok);
  EXPECT_FALSE(fixed.changed);
  EXPECT_FALSE(fixed.message.empty());
  EXPECT_EQ(fixed.schedule, s);
}

// --- Rendering --------------------------------------------------------------

TEST(LintRender, TextAndJsonCarryTheDiagnostics) {
  const Graph g = MakeDiamond({4, 4, 4, 4, 4});
  Schedule s = GreedyTopoScheduler(g).Run(100).schedule;
  s.Append(Load(0));
  s.Append(Delete(0));
  const LintResult lint = LintSchedule(g, 100, s);
  ASSERT_GE(lint.count(LintSeverity::kWarning), 1u);

  const std::string text = RenderLintResult(lint);
  EXPECT_NE(text.find("dead-load"), std::string::npos);
  EXPECT_NE(text.find("warning"), std::string::npos);

  const std::string json = LintResultToJson(lint);
  EXPECT_NE(json.find("\"rule\":\"dead-load\""), std::string::npos);
  EXPECT_NE(json.find("\"wasted_bits\""), std::string::npos);
  EXPECT_NE(json.find("\"fix_drop_moves\""), std::string::npos);
}

}  // namespace
}  // namespace wrbpg
