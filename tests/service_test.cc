// ScheduleService (src/service/): cache determinism across threads and
// state representation, single-flight dedup, isomorph hits, byte-budget
// eviction, batch dispatch, and the deadline admission policy.
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/binio.h"
#include "core/graph.h"
#include "core/graph_builder.h"
#include "core/simulator.h"
#include "dataflows/builtin_spec.h"
#include "service/service.h"

namespace wrbpg {
namespace {

Graph BuiltinOrDie(const std::string& spec) {
  BuiltinGraph built = BuildBuiltinGraph(spec);
  EXPECT_TRUE(built.ok) << spec << ": " << built.error;
  return built.graph();
}

Graph PermuteGraph(const Graph& graph, std::uint64_t seed) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<NodeId> inv(n);
  for (NodeId v = 0; v < n; ++v) inv[perm[v]] = v;
  GraphBuilder builder;
  for (NodeId j = 0; j < n; ++j) {
    builder.AddNode(graph.weight(inv[j]), graph.name(inv[j]));
  }
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId c : graph.children(v)) {
      builder.AddEdge(perm[v], perm[c]);
    }
  }
  return builder.BuildOrDie();
}

// A cache hit must be bit-identical to a cold solve, and the cold solve
// itself must be independent of thread count and state representation —
// the two determinism contracts composed. Sweep threads {1, 2, 8} ×
// {packed, wide}: every cold response and every subsequent hit must
// carry the same schedule bytes, cost, and bound.
TEST(ScheduleService, CacheHitsBitIdenticalAcrossThreadsAndRepresentation) {
  const Graph graph = BuiltinOrDie("random:3,4,7");
  const Weight budget = MinValidBudget(graph) + 8;
  ServiceRequest request;
  request.graph = &graph;
  request.budget = budget;

  std::string reference_bytes;
  Weight reference_cost = 0;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const bool wide : {false, true}) {
      ServiceOptions options;
      options.robust.threads = threads;
      options.robust.exact_force_wide_state = wide;
      ScheduleService service(options);

      const ServiceResponse cold = service.Serve(request);
      ASSERT_TRUE(cold.ok);
      EXPECT_EQ(cold.source, ServeSource::kSolved);
      const std::string cold_bytes = ToBinary(cold.result.schedule);
      if (reference_bytes.empty()) {
        reference_bytes = cold_bytes;
        reference_cost = cold.result.cost;
      }
      EXPECT_EQ(cold_bytes, reference_bytes)
          << "threads=" << threads << " wide=" << wide;
      EXPECT_EQ(cold.result.cost, reference_cost);

      const ServiceResponse hit = service.Serve(request);
      ASSERT_TRUE(hit.ok);
      EXPECT_EQ(hit.source, ServeSource::kCacheHit);
      EXPECT_EQ(ToBinary(hit.result.schedule), cold_bytes);
      EXPECT_EQ(hit.result.cost, cold.result.cost);
      EXPECT_EQ(hit.result.lower_bound, cold.result.lower_bound);
      EXPECT_EQ(hit.result.termination, cold.result.termination);
      EXPECT_EQ(hit.winner, cold.winner);
    }
  }
}

TEST(ScheduleService, SingleFlightCollapsesConcurrentIdenticalRequests) {
  const Graph graph = BuiltinOrDie("random:4,4,21");
  const Weight budget = MinValidBudget(graph) + 8;
  ScheduleService service;

  constexpr std::size_t kThreads = 8;
  std::vector<ServiceResponse> responses(kThreads);
  {
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ServiceRequest request;
        request.graph = &graph;
        request.budget = budget;
        responses[t] = service.Serve(request);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  // Exactly one solver-chain execution, however the 8 interleave (flight
  // followers and post-completion cache hits are both fine).
  EXPECT_EQ(service.stats().solves, 1u);
  const std::string expected = ToBinary(responses[0].result.schedule);
  for (const ServiceResponse& response : responses) {
    ASSERT_TRUE(response.ok);
    EXPECT_EQ(ToBinary(response.result.schedule), expected);
  }
}

TEST(ScheduleService, ServesPermutedIsomorphsFromCache) {
  const Graph graph = BuiltinOrDie("random:3,4,9");
  const Graph permuted = PermuteGraph(graph, 0xabcd);
  const Weight budget = MinValidBudget(graph) + 8;
  ScheduleService service;

  ServiceRequest request;
  request.graph = &graph;
  request.budget = budget;
  const ServiceResponse cold = service.Serve(request);
  ASSERT_TRUE(cold.ok);
  EXPECT_EQ(cold.source, ServeSource::kSolved);

  ServiceRequest iso_request;
  iso_request.graph = &permuted;
  iso_request.budget = budget;
  const ServiceResponse iso = service.Serve(iso_request);
  ASSERT_TRUE(iso.ok);
  EXPECT_EQ(iso.source, ServeSource::kIsoCacheHit);
  EXPECT_EQ(iso.result.cost, cold.result.cost);
  EXPECT_EQ(iso.key, cold.key);
  // The renamed schedule is valid for the REQUEST's labeling.
  const SimResult sim = Simulate(permuted, budget, iso.result.schedule);
  EXPECT_TRUE(sim.valid);
  EXPECT_EQ(sim.cost, cold.result.cost);
  EXPECT_EQ(service.stats().iso_hits, 1u);
  EXPECT_EQ(service.stats().solves, 1u);

  // With iso hits disabled the permuted request is a plain miss.
  ServiceOptions no_iso;
  no_iso.iso_hits = false;
  ScheduleService strict(no_iso);
  ASSERT_TRUE(strict.Serve(request).ok);
  const ServiceResponse strict_iso = strict.Serve(iso_request);
  ASSERT_TRUE(strict_iso.ok);
  EXPECT_EQ(strict_iso.source, ServeSource::kSolved);
  EXPECT_EQ(strict.stats().solves, 2u);
}

TEST(ScheduleService, DeriveKeyIsIsoInvariant) {
  const Graph graph = BuiltinOrDie("random:3,4,9");
  const Graph permuted = PermuteGraph(graph, 0x1234);
  EXPECT_EQ(ScheduleService::DeriveKey(graph, 64),
            ScheduleService::DeriveKey(permuted, 64));
  EXPECT_NE(ScheduleService::DeriveKey(graph, 64),
            ScheduleService::DeriveKey(graph, 65));
}

TEST(ScheduleService, DeadlineBoundedResultsAreNeverCached) {
  const Graph graph = BuiltinOrDie("random:3,4,11");
  ServiceRequest request;
  request.graph = &graph;
  request.budget = MinValidBudget(graph) + 8;
  request.deadline_ms = 50;
  ScheduleService service;
  const ServiceResponse first = service.Serve(request);
  ASSERT_TRUE(first.ok);  // anytime contract: always an incumbent
  EXPECT_EQ(service.stats().cache_entries, 0u);
  // The same request again re-solves: nothing was admitted.
  const ServiceResponse second = service.Serve(request);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(service.stats().solves, 2u);
}

TEST(ScheduleService, InfeasibleVerdictsAreCachedToo) {
  const Graph graph = BuiltinOrDie("random:2,3,5");
  ServiceRequest request;
  request.graph = &graph;
  request.budget = 1;  // below any node weight: provably infeasible
  ScheduleService service;
  const ServiceResponse cold = service.Serve(request);
  EXPECT_FALSE(cold.ok);
  EXPECT_FALSE(cold.error.empty());
  const ServiceResponse hit = service.Serve(request);
  EXPECT_FALSE(hit.ok);
  EXPECT_EQ(hit.source, ServeSource::kCacheHit);
  EXPECT_EQ(service.stats().solves, 1u);
}

TEST(ScheduleService, EvictsByByteBudget) {
  ServiceOptions options;
  options.cache_bytes = 4096;
  options.cache_shards = 1;
  ScheduleService service(options);

  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Graph graph = BuiltinOrDie("random:2,3," + std::to_string(seed));
    ServiceRequest request;
    request.graph = &graph;
    request.budget = MinValidBudget(graph) + 8;
    const ServiceResponse response = service.Serve(request);
    ASSERT_TRUE(response.ok) << "seed " << seed;
  }
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_LT(stats.cache_entries, 12u);
  EXPECT_LE(stats.cache_bytes, 4096u);
}

TEST(ScheduleService, ServeBatchCollapsesDuplicatesAndMapsByIndex) {
  const Graph a = BuiltinOrDie("random:3,4,31");
  const Graph b = BuiltinOrDie("random:3,4,32");
  const Weight budget_a = MinValidBudget(a) + 8;
  const Weight budget_b = MinValidBudget(b) + 8;

  std::vector<ServiceRequest> requests(4);
  requests[0].graph = &a;
  requests[0].budget = budget_a;
  requests[1].graph = &b;
  requests[1].budget = budget_b;
  requests[2].graph = &a;
  requests[2].budget = budget_a;  // duplicate of [0]
  requests[3].graph = nullptr;    // malformed
  requests[3].budget = 64;

  ScheduleService service;
  const std::vector<ServiceResponse> responses = service.ServeBatch(requests);
  ASSERT_EQ(responses.size(), 4u);
  ASSERT_TRUE(responses[0].ok);
  ASSERT_TRUE(responses[1].ok);
  ASSERT_TRUE(responses[2].ok);
  EXPECT_FALSE(responses[3].ok);
  EXPECT_FALSE(responses[3].error.empty());

  EXPECT_EQ(responses[2].source, ServeSource::kDedup);
  EXPECT_EQ(ToBinary(responses[2].result.schedule),
            ToBinary(responses[0].result.schedule));
  EXPECT_NE(ToBinary(responses[1].result.schedule),
            ToBinary(responses[0].result.schedule));
  EXPECT_EQ(service.stats().solves, 2u);
  EXPECT_GE(service.stats().dedup_shared, 1u);
}

TEST(ScheduleService, RejectsMalformedRequests) {
  ScheduleService service;
  ServiceRequest no_graph;
  no_graph.budget = 64;
  EXPECT_FALSE(service.Serve(no_graph).ok);

  const Graph graph = BuiltinOrDie("random:2,3,5");
  ServiceRequest no_budget;
  no_budget.graph = &graph;
  no_budget.budget = 0;
  const ServiceResponse response = service.Serve(no_budget);
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(service.stats().solves, 0u);
}

}  // namespace
}  // namespace wrbpg
