#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "core/simulator.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

using testing::MakeChain;
using testing::MakeDiamond;

// A complete valid pebbling of the diamond under budget 3 (unit weights).
Schedule DiamondSchedule() {
  Schedule s;
  s.Append(Load(0));
  s.Append(Load(1));
  s.Append(Compute(2));
  s.Append(Delete(0));
  s.Append(Store(2));
  s.Append(Delete(2));
  s.Append(Compute(3));
  s.Append(Delete(1));
  s.Append(Load(2));
  s.Append(Compute(4));
  s.Append(Store(4));
  return s;
}

TEST(Simulator, AcceptsValidSchedule) {
  const Graph g = MakeDiamond();
  const SimResult r = testing::ExpectValid(g, 3, DiamondSchedule());
  EXPECT_TRUE(r.stop_condition_met);
  EXPECT_EQ(r.loads, 3u);
  EXPECT_EQ(r.stores, 2u);
  EXPECT_EQ(r.computes, 3u);
  EXPECT_EQ(r.deletes, 3u);
  // Cost: M1(0), M1(1), M2(2), M1(2), M2(4) = 5 unit transfers.
  EXPECT_EQ(r.cost, 5);
  EXPECT_EQ(r.peak_red_weight, 3);
  EXPECT_EQ(r.final_red_weight, 3);  // 2, 3 and 4 still red
}

TEST(Simulator, WeightedCostUsesNodeWeights) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  const SimResult r = testing::ExpectValid(g, 100, DiamondSchedule());
  // M1(0)+M1(1)+M2(2)+M1(2)+M2(4) = 3+5+7+7+13
  EXPECT_EQ(r.cost, 35);
}

TEST(Simulator, RejectsLoadWithoutBlue) {
  const Graph g = MakeDiamond();
  Schedule s;
  s.Append(Load(2));  // node 2 has no blue pebble initially
  const SimResult r = Simulate(g, 10, s);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.error_index, 0u);
  EXPECT_NE(r.error.find("no blue pebble"), std::string::npos);
}

TEST(Simulator, RejectsDoubleLoad) {
  const Graph g = MakeDiamond();
  Schedule s;
  s.Append(Load(0));
  s.Append(Load(0));
  const SimResult r = Simulate(g, 10, s);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.error_index, 1u);
}

TEST(Simulator, RejectsStoreWithoutRed) {
  const Graph g = MakeDiamond();
  Schedule s;
  s.Append(Store(2));
  const SimResult r = Simulate(g, 10, s);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("no red pebble"), std::string::npos);
}

TEST(Simulator, RejectsStoreOntoExistingBlue) {
  const Graph g = MakeDiamond();
  Schedule s;
  s.Append(Load(0));
  s.Append(Store(0));  // sources already hold blue
  const SimResult r = Simulate(g, 10, s);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("already holds a blue pebble"), std::string::npos);
}

TEST(Simulator, RejectsComputeWithUnpebbledParent) {
  const Graph g = MakeDiamond();
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(2));  // parent 1 not red
  const SimResult r = Simulate(g, 10, s);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("parent v1"), std::string::npos);
}

TEST(Simulator, RejectsComputeOnSource) {
  const Graph g = MakeDiamond();
  Schedule s;
  s.Append(Compute(0));
  const SimResult r = Simulate(g, 10, s);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("source"), std::string::npos);
}

TEST(Simulator, RejectsDeleteWithoutRed) {
  const Graph g = MakeDiamond();
  Schedule s;
  s.Append(Delete(0));
  const SimResult r = Simulate(g, 10, s);
  EXPECT_FALSE(r.valid);
}

TEST(Simulator, RejectsOutOfRangeNode) {
  const Graph g = MakeDiamond();
  Schedule s;
  s.Append(Load(99));
  const SimResult r = Simulate(g, 10, s);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("out of range"), std::string::npos);
}

TEST(Simulator, EnforcesWeightedBudget) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  Schedule s;
  s.Append(Load(0));
  s.Append(Load(1));  // 3 + 5 = 8 > 7
  const SimResult r = Simulate(g, 7, s);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.error_index, 1u);
  EXPECT_NE(r.error.find("constraint violated"), std::string::npos);
}

TEST(Simulator, BudgetBoundaryIsInclusive) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  Schedule s;
  s.Append(Load(0));
  s.Append(Load(1));
  const SimResult r = Simulate(g, 8, s, {.require_stop_condition = false});
  EXPECT_TRUE(r.valid) << r.error;
  EXPECT_EQ(r.peak_red_weight, 8);
}

TEST(Simulator, RequiresStopCondition) {
  const Graph g = MakeChain(3);
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));
  s.Append(Compute(2));
  // sink 2 is red but never stored
  const SimResult r = Simulate(g, 10, s);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("stopping condition"), std::string::npos);
  const SimResult relaxed =
      Simulate(g, 10, s, {.require_stop_condition = false});
  EXPECT_TRUE(relaxed.valid);
  EXPECT_FALSE(relaxed.stop_condition_met);
}

TEST(Simulator, RecomputationAfterDeleteIsLegal) {
  const Graph g = MakeChain(3);
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));
  s.Append(Delete(1));
  s.Append(Compute(1));  // parents still red: recompute allowed
  s.Append(Compute(2));
  s.Append(Store(2));
  testing::ExpectValid(g, 10, s);
}

TEST(Simulator, InitialRedPebblesHonored) {
  const Graph g = MakeChain(3);
  Schedule s;
  s.Append(Compute(2));  // legal only because node 1 starts red
  s.Append(Store(2));
  SimOptions options;
  options.initial_red = {1};
  testing::ExpectValid(g, 10, s, options);
}

TEST(Simulator, InitialRedCountsAgainstBudget) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  SimOptions options;
  options.initial_red = {2, 3};  // 7 + 11 = 18
  const SimResult r = Simulate(g, 17, Schedule{}, options);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("initial red"), std::string::npos);
}

TEST(Simulator, InitialBlueEnablesLoad) {
  const Graph g = MakeChain(3);
  Schedule s;
  s.Append(Load(1));  // node 1 is not a source, needs the extra blue
  s.Append(Compute(2));
  s.Append(Store(2));
  SimOptions options;
  options.initial_blue = {1};
  testing::ExpectValid(g, 10, s, options);
}

TEST(Simulator, RequiredRedAtEndEnforced) {
  const Graph g = MakeChain(3);
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(1));
  s.Append(Compute(2));
  s.Append(Store(2));
  SimOptions options;
  options.required_red_at_end = {1};
  testing::ExpectValid(g, 10, s, options);  // node 1 still red

  Schedule dropped = s;
  dropped.Append(Delete(1));
  const SimResult r = Simulate(g, 10, dropped, options);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.error.find("reuse condition"), std::string::npos);
}

TEST(Simulator, ObserverSeesEveryMoveAndRedWeight) {
  const Graph g = MakeDiamond();
  std::vector<Weight> red_weights;
  std::vector<std::size_t> indices;
  const Schedule s = DiamondSchedule();
  const SimResult r = Simulate(
      g, 3, s, {},
      [&](std::size_t i, const Move&, Weight w) {
        indices.push_back(i);
        red_weights.push_back(w);
      });
  ASSERT_TRUE(r.valid);
  ASSERT_EQ(indices.size(), s.size());
  for (std::size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
  EXPECT_EQ(*std::max_element(red_weights.begin(), red_weights.end()),
            r.peak_red_weight);
}

TEST(Simulator, EmptyScheduleFailsStopCondition) {
  const Graph g = MakeChain(2);
  const SimResult r = Simulate(g, 10, Schedule{});
  EXPECT_FALSE(r.valid);
}

TEST(SimErrorCodeStrings, RoundTripOverEveryCode) {
  // kAllSimErrorCodes must enumerate each enumerator exactly once with a
  // distinct stable name, and FromString must invert ToString for all of
  // them. Together with the -Werror=switch build of ToString, this keeps
  // the taxonomy, the table, and the parser from drifting apart.
  std::set<std::string> names;
  for (const SimErrorCode code : kAllSimErrorCodes) {
    const std::string name = ToString(code);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
    const auto parsed = SimErrorCodeFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code) << name;
  }
  EXPECT_EQ(names.size(), std::size(kAllSimErrorCodes));
}

TEST(SimErrorCodeStrings, UnknownNamesParseToNothing) {
  EXPECT_FALSE(SimErrorCodeFromString("").has_value());
  EXPECT_FALSE(SimErrorCodeFromString("unknown").has_value());
  EXPECT_FALSE(SimErrorCodeFromString("load-no-blue ").has_value());
  EXPECT_FALSE(SimErrorCodeFromString("LOAD-NO-BLUE").has_value());
}

TEST(Move, ToStringFormatsLikeThePaper) {
  EXPECT_EQ(ToString(Load(3)), "M1(v3)");
  EXPECT_EQ(ToString(Store(0)), "M2(v0)");
  EXPECT_EQ(ToString(Compute(12)), "M3(v12)");
  EXPECT_EQ(ToString(Delete(7)), "M4(v7)");
}

TEST(Schedule, CountTypeAndConcat) {
  Schedule a;
  a.Append(Load(0));
  a.Append(Compute(1));
  Schedule b;
  b.Append(Store(1));
  a.Append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.CountType(MoveType::kLoad), 1u);
  EXPECT_EQ(a.CountType(MoveType::kStore), 1u);
  EXPECT_EQ(a.CountType(MoveType::kDelete), 0u);
  EXPECT_EQ(a.ToString(), "M1(v0)\nM3(v1)\nM2(v1)\n");
}

}  // namespace
}  // namespace wrbpg
