#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <vector>

#include "util/cli.h"
#include "util/csv.h"
#include "util/mathutil.h"
#include "util/rng.h"
#include "util/table.h"

namespace wrbpg {
namespace {

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 3), 0);
  EXPECT_EQ(CeilDiv(1, 3), 1);
  EXPECT_EQ(CeilDiv(3, 3), 1);
  EXPECT_EQ(CeilDiv(4, 3), 2);
  EXPECT_EQ(CeilDiv(96, 96), 1);
  EXPECT_EQ(CeilDiv(97, 96), 2);
}

TEST(MathUtil, IsPowerOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(-4));
  EXPECT_FALSE(IsPowerOfTwo(4095));
}

TEST(MathUtil, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(2), 2);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(160), 256);   // Table 1: DWT Equal optimum
  EXPECT_EQ(NextPowerOfTwo(288), 512);   // Table 1: DWT DA optimum
  EXPECT_EQ(NextPowerOfTwo(1584), 2048); // Table 1: MVM Equal tiling
  EXPECT_EQ(NextPowerOfTwo(4624), 8192); // Table 1: MVM DA IOOpt
}

TEST(MathUtil, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(256), 8);
  EXPECT_EQ(FloorLog2(257), 8);
}

TEST(MathUtil, TwoAdicValuation) {
  EXPECT_EQ(TwoAdicValuation(1), 0);
  EXPECT_EQ(TwoAdicValuation(2), 1);
  EXPECT_EQ(TwoAdicValuation(12), 2);
  EXPECT_EQ(TwoAdicValuation(256), 8);
  EXPECT_EQ(TwoAdicValuation(96), 5);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  std::vector<std::uint64_t> va, vb, vc;
  for (int i = 0; i < 100; ++i) {
    va.push_back(a.Next());
    vb.push_back(b.Next());
    vc.push_back(c.Next());
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// ThreadPool, TaskGroup, and ParallelFor are covered in
// thread_pool_test.cc together with the parallel-search contract tests.

TEST(Csv, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(Csv, NumericFields) {
  EXPECT_EQ(CsvWriter::Field(std::int64_t{-42}), "-42");
  EXPECT_EQ(CsvWriter::Field(2.5), "2.5");
}

// Regression: Field(double) must round-trip exactly. The old ostream
// default truncated to 6 significant digits, so benchmark ratios like
// speedups and time_ms values came back corrupted from the CSVs.
TEST(Csv, DoubleFieldsRoundTripExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           80.604142,     // a real elapsed_ms sample
                           0.1 + 0.2,     // classic non-representable sum
                           1e-300,
                           -1.7976931348623157e308,  // lowest finite double
                           123456.789012345,
                           9007199254740993.0};      // > 2^53
  for (const double v : values) {
    const std::string field = CsvWriter::Field(v);
    EXPECT_EQ(std::stod(field), v) << "field was '" << field << "'";
  }
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "v"});
  t.AddRow({"x", "10"});
  t.AddRow({"longer", "7"});
  std::ostringstream out;
  t.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 7  |"), std::string::npos);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  // Note: a bare `--flag` followed by a non-flag token consumes it as the
  // flag's value, so boolean flags go last or use `--flag=true`.
  const char* argv[] = {"prog", "--alpha=3", "--name", "dwt",
                        "pos1", "--verbose"};
  CliArgs args(6, argv);
  EXPECT_TRUE(args.error().empty());
  EXPECT_EQ(args.GetInt("alpha", 0), 3);
  EXPECT_EQ(args.GetString("name", ""), "dwt");
  EXPECT_TRUE(args.GetBool("verbose", false));
  EXPECT_EQ(args.GetInt("missing", 99), 99);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, DoubleAndBoolParsing) {
  const char* argv[] = {"prog", "--ratio=0.5", "--flag=no"};
  CliArgs args(3, argv);
  EXPECT_DOUBLE_EQ(args.GetDouble("ratio", 0.0), 0.5);
  EXPECT_FALSE(args.GetBool("flag", true));
}

TEST(Cli, RejectsEmptyNumericValues) {
  // `--budget=` is a typo for `--budget=N`; coercing it to the fallback
  // would silently schedule under the wrong memory size.
  const char* argv[] = {"prog", "--budget="};
  CliArgs args(2, argv);
  EXPECT_EQ(args.GetInt("budget", 64), 64);  // fallback returned...
  EXPECT_FALSE(args.error().empty());        // ...but the error is recorded
  EXPECT_NE(args.error().find("budget"), std::string::npos);
}

TEST(Cli, RejectsEmptyDoubleValues) {
  const char* argv[] = {"prog", "--deadline-ms="};
  CliArgs args(2, argv);
  EXPECT_DOUBLE_EQ(args.GetDouble("deadline-ms", 1.5), 1.5);
  EXPECT_FALSE(args.error().empty());
}

TEST(Cli, DetectsDuplicateFlags) {
  const char* argv[] = {"prog", "--budget=3", "--budget=7"};
  CliArgs args(3, argv);
  EXPECT_FALSE(args.error().empty());
  EXPECT_NE(args.error().find("duplicate"), std::string::npos);
  EXPECT_NE(args.error().find("budget"), std::string::npos);
}

TEST(Cli, DetectsDuplicateAcrossSyntaxes) {
  const char* argv[] = {"prog", "--algo=belady", "--algo", "greedy"};
  CliArgs args(4, argv);
  EXPECT_FALSE(args.error().empty());
  EXPECT_NE(args.error().find("duplicate"), std::string::npos);
}

TEST(Cli, ReportsIntOverflow) {
  const char* argv[] = {"prog", "--budget=99999999999999999999"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.GetInt("budget", -1), -1);
  EXPECT_FALSE(args.error().empty());
  EXPECT_NE(args.error().find("overflow"), std::string::npos);
}

TEST(Cli, ReportsTrailingJunkOnNumbers) {
  const char* argv[] = {"prog", "--budget=64kb"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.GetInt("budget", -1), -1);
  EXPECT_FALSE(args.error().empty());
}

TEST(Cli, FirstErrorWins) {
  const char* argv[] = {"prog", "--a=x", "--b=y"};
  CliArgs args(3, argv);
  args.GetInt("a", 0);
  const std::string first = args.error();
  args.GetInt("b", 0);
  EXPECT_EQ(args.error(), first);
  EXPECT_NE(first.find("a"), std::string::npos);
}

// The per-verb flag registry used by CheckVerbFlags tests.
const std::vector<VerbFlags> kTable = {
    {"info", {}},
    {"schedule", {"budget", "engine", "deadline-ms"}},
    {"serve", {"cache-mb", "deadline-ms"}},
};
const std::vector<std::string> kGlobal = {"threads", "metrics-json"};

TEST(Cli, CheckVerbFlagsAcceptsOwnAndGlobalFlags) {
  const char* argv[] = {"prog", "schedule", "--budget=64", "--threads=2"};
  const CliArgs args(4, argv);
  EXPECT_TRUE(args.CheckVerbFlags("schedule", kTable, kGlobal));
  EXPECT_TRUE(args.error().empty());
}

TEST(Cli, CheckVerbFlagsNamesTheOwningVerb) {
  // The regression this guards: a flag passed to the wrong verb must be
  // rejected with a consistent error that names the verb that owns it,
  // not silently ignored or reported as merely unknown.
  const char* argv[] = {"prog", "info", "--engine=bb"};
  const CliArgs args(3, argv);
  EXPECT_FALSE(args.CheckVerbFlags("info", kTable, kGlobal));
  EXPECT_EQ(args.error(),
            "flag '--engine' belongs to verb 'schedule', not 'info'");
}

TEST(Cli, CheckVerbFlagsNamesEveryOwningVerb) {
  const char* argv[] = {"prog", "info", "--deadline-ms=5"};
  const CliArgs args(3, argv);
  EXPECT_FALSE(args.CheckVerbFlags("info", kTable, kGlobal));
  EXPECT_EQ(args.error(),
            "flag '--deadline-ms' belongs to verb 'schedule'/'serve', "
            "not 'info'");
}

TEST(Cli, CheckVerbFlagsReportsTrulyUnknownFlags) {
  const char* argv[] = {"prog", "info", "--bogus=1"};
  const CliArgs args(3, argv);
  EXPECT_FALSE(args.CheckVerbFlags("info", kTable, kGlobal));
  EXPECT_EQ(args.error(), "unknown flag '--bogus' for verb 'info'");
}

TEST(Cli, CheckVerbFlagsUnknownVerbStillChecksGlobals) {
  // A verb absent from the table accepts only global flags.
  const char* argv[] = {"prog", "mystery", "--threads=2"};
  const CliArgs args(3, argv);
  EXPECT_TRUE(args.CheckVerbFlags("mystery", kTable, kGlobal));
  const char* argv2[] = {"prog", "mystery", "--budget=64"};
  const CliArgs args2(3, argv2);
  EXPECT_FALSE(args2.CheckVerbFlags("mystery", kTable, kGlobal));
  EXPECT_NE(args2.error().find("belongs to verb"), std::string::npos);
}

}  // namespace
}  // namespace wrbpg
