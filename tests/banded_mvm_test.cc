#include <gtest/gtest.h>

#include <tuple>

#include "core/analysis.h"
#include "dataflows/banded_mvm_graph.h"
#include "exec/executor.h"
#include "exec/reference_kernels.h"
#include "schedulers/banded_mvm.h"
#include "schedulers/greedy_topo.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

TEST(BandedMvmGraph, TridiagonalStructure) {
  const BandedMvmGraph bm = BuildBandedMvm(5, 1);
  EXPECT_EQ(bm.nnz(), 13);  // 3 + 3*3 + ... rows: 2,3,3,3,2
  EXPECT_EQ(bm.support(0), 2);
  EXPECT_EQ(bm.support(2), 3);
  EXPECT_EQ(bm.support(4), 2);
  EXPECT_EQ(bm.graph.sources().size(), static_cast<std::size_t>(5 + 13));
  EXPECT_EQ(bm.graph.sinks().size(), 5u);
  // Middle-row vector entries feed three products; the ends fewer.
  EXPECT_EQ(bm.graph.out_degree(bm.x(2)), 3u);
  EXPECT_EQ(bm.graph.out_degree(bm.x(0)), 2u);
}

TEST(BandedMvmGraph, DiagonalOnlyHasNoChains) {
  const BandedMvmGraph bm = BuildBandedMvm(4, 0);
  EXPECT_EQ(bm.nnz(), 4);
  for (std::int64_t r = 0; r < 4; ++r) {
    EXPECT_EQ(bm.support(r), 1);
    EXPECT_EQ(bm.output(r), bm.product(r, r));
    EXPECT_TRUE(bm.graph.is_sink(bm.output(r)));
  }
}

TEST(BandedMvmGraph, FullBandMatchesDenseCounts) {
  const BandedMvmGraph bm = BuildBandedMvm(4, 3);
  EXPECT_EQ(bm.nnz(), 16);
  EXPECT_EQ(bm.graph.num_nodes(), static_cast<std::size_t>(4 + 16 + 16 + 12));
}

TEST(BandedMvm, MinMemoryScalesWithBandwidthNotSize) {
  // The structured-sparse headline: minimum fast memory for lower-bound
  // I/O depends on the band, not on n.
  const Weight small = BandedMvmScheduler(BuildBandedMvm(32, 2))
                           .MinMemoryForLowerBound();
  const BandedMvmGraph big_graph = BuildBandedMvm(512, 2);
  const Weight big = BandedMvmScheduler(big_graph).MinMemoryForLowerBound();
  EXPECT_EQ(small, big);
  EXPECT_EQ(big, 5 * 16 + 48);  // window (2h+1 words) + chain working set
}

class BandedSimTest
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, bool>> {};

TEST_P(BandedSimTest, SimulatorConfirmsCostAndPeakBothStrategies) {
  const auto [n, h, da] = GetParam();
  const PrecisionConfig config =
      da ? PrecisionConfig::DoubleAccumulator() : PrecisionConfig::Equal();
  const BandedMvmGraph bm = BuildBandedMvm(n, h, config);
  BandedMvmScheduler sched(bm);
  const Weight lb = AlgorithmicLowerBound(bm.graph);

  using S = BandedMvmScheduler::Strategy;
  for (const S strategy : {S::kStreaming, S::kSlidingWindow}) {
    const Weight budget = sched.StrategyPeak(strategy);
    const auto best = sched.BestStrategy(budget);
    ASSERT_TRUE(best.has_value());
    const auto run = sched.Run(budget);
    ASSERT_TRUE(run.feasible);
    const SimResult sim = testing::ExpectValid(bm.graph, budget, run.schedule);
    EXPECT_EQ(sim.cost, sched.StrategyCost(*best));
    EXPECT_EQ(sim.peak_red_weight, sched.StrategyPeak(*best));
    EXPECT_GE(sim.cost, lb);
  }
  // The sliding window reaches the lower bound exactly.
  EXPECT_EQ(sched.StrategyCost(S::kSlidingWindow), lb);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BandedSimTest,
    ::testing::Values(std::tuple{5, 1, false}, std::tuple{8, 2, false},
                      std::tuple{8, 2, true}, std::tuple{6, 0, false},
                      std::tuple{12, 5, true}, std::tuple{16, 15, false},
                      std::tuple{9, 4, true}));

TEST(BandedMvm, ExecutesBandedMatVecExactly) {
  const std::int64_t n = 10, h = 2;
  const BandedMvmGraph bm = BuildBandedMvm(n, h);
  BandedMvmScheduler sched(bm);
  Rng rng(77);
  // Dense row-major A with zeros outside the band, for the reference.
  std::vector<double> dense(static_cast<std::size_t>(n * n), 0.0);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.UniformDouble() * 2.0 - 1.0;
  std::vector<double> sources(bm.graph.num_nodes(), 0.0);
  for (std::int64_t c = 0; c < n; ++c) {
    sources[bm.x(c)] = x[static_cast<std::size_t>(c)];
  }
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = bm.col_lo(r); c <= bm.col_hi(r); ++c) {
      const double v = rng.UniformDouble() * 2.0 - 1.0;
      dense[static_cast<std::size_t>(r * n + c)] = v;
      sources[bm.a(r, c)] = v;
    }
  }
  // Per-row banded reference accumulating in band order (graph order).
  std::vector<double> expected(static_cast<std::size_t>(n));
  for (std::int64_t r = 0; r < n; ++r) {
    double sum = dense[static_cast<std::size_t>(r * n + bm.col_lo(r))] *
                 x[static_cast<std::size_t>(bm.col_lo(r))];
    for (std::int64_t c = bm.col_lo(r) + 1; c <= bm.col_hi(r); ++c) {
      sum += dense[static_cast<std::size_t>(r * n + c)] *
             x[static_cast<std::size_t>(c)];
    }
    expected[static_cast<std::size_t>(r)] = sum;
  }

  // Products multiply and accumulators add; roles carry the dispatch.
  std::vector<MvmRole> roles = bm.roles;
  const NodeOp op = [roles = std::move(roles)](
                        NodeId v, std::span<const double> parents) {
    return roles[v] == MvmRole::kProduct ? parents[0] * parents[1]
                                         : parents[0] + parents[1];
  };

  for (const auto strategy : {BandedMvmScheduler::Strategy::kStreaming,
                              BandedMvmScheduler::Strategy::kSlidingWindow}) {
    const Weight budget = sched.StrategyPeak(strategy);
    const auto run = sched.Run(budget);
    ASSERT_TRUE(run.feasible);
    const ExecResult exec =
        ExecuteSchedule(bm.graph, budget, run.schedule, op, sources);
    ASSERT_TRUE(exec.ok) << exec.error;
    for (std::int64_t r = 0; r < n; ++r) {
      EXPECT_DOUBLE_EQ(exec.slow_values[bm.output(r)],
                       expected[static_cast<std::size_t>(r)]);
    }
  }
}

TEST(BandedMvm, NeverWorseThanGreedy) {
  const BandedMvmGraph bm = BuildBandedMvm(16, 3);
  BandedMvmScheduler sched(bm);
  GreedyTopoScheduler greedy(bm.graph);
  for (Weight b = sched.StrategyPeak(BandedMvmScheduler::Strategy::kStreaming);
       b <= 1024; b += 64) {
    EXPECT_LE(sched.CostOnly(b), greedy.CostOnly(b)) << "budget " << b;
  }
}

}  // namespace
}  // namespace wrbpg
