#include <gtest/gtest.h>

#include "core/serialize.h"
#include "dataflows/random_dag.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

using testing::MakeDiamond;

TEST(Serialize, GraphRoundTrip) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  const std::string text = ToText(g);
  const auto parsed = ParseGraphText(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const Graph& h = parsed.graph;
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(h.weight(v), g.weight(v));
    ASSERT_EQ(h.parents(v).size(), g.parents(v).size());
    for (std::size_t i = 0; i < g.parents(v).size(); ++i) {
      EXPECT_EQ(h.parents(v)[i], g.parents(v)[i]);
    }
  }
}

TEST(Serialize, GraphTextPreservesNames) {
  GraphBuilder b;
  b.AddNode(16, "x[1]");
  b.AddNode(32, "a1[1]");
  b.AddEdge(0, 1);
  const Graph g = b.BuildOrDie();
  const auto parsed = ParseGraphText(ToText(g));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.graph.name(0), "x[1]");
  EXPECT_EQ(parsed.graph.name(1), "a1[1]");
}

TEST(Serialize, ParseRejectsMissingHeader) {
  const auto r = ParseGraphText("node 0 1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("header"), std::string::npos);
}

TEST(Serialize, ParseRejectsSparseIds) {
  const auto r = ParseGraphText("wrbpg-graph v1\nnode 1 5\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("dense"), std::string::npos);
}

TEST(Serialize, ParseRejectsUndeclaredEdgeEndpoint) {
  const auto r = ParseGraphText("wrbpg-graph v1\nnode 0 5\nedge 0 3\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("undeclared"), std::string::npos);
}

TEST(Serialize, ParseRejectsUnknownDirective) {
  const auto r = ParseGraphText("wrbpg-graph v1\nvertex 0 5\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown directive"), std::string::npos);
}

TEST(Serialize, ParseSkipsCommentsAndBlankLines) {
  const auto r = ParseGraphText(
      "wrbpg-graph v1\n"
      "# a comment\n"
      "\n"
      "node 0 2\n"
      "node 1 3  # trailing comment\n"
      "edge 0 1\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.graph.num_nodes(), 2u);
  EXPECT_EQ(r.graph.weight(1), 3);
}

TEST(Serialize, ParsePropagatesBuilderValidation) {
  const auto r = ParseGraphText(
      "wrbpg-graph v1\nnode 0 1\nnode 1 1\nedge 0 1\nedge 0 1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate edge"), std::string::npos);
}

TEST(Serialize, DotOutputContainsNodesAndEdges) {
  const Graph g = MakeDiamond();
  const std::string dot = ToDot(g, "diamond");
  EXPECT_NE(dot.find("digraph \"diamond\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("n3 -> n4"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);           // sources
  EXPECT_NE(dot.find("shape=doublecircle"), std::string::npos);  // sinks
}

TEST(Serialize, ScheduleRoundTrip) {
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(2));
  s.Append(Store(2));
  s.Append(Delete(0));
  const auto parsed = ParseScheduleText(ToText(s));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.schedule, s);
}

TEST(Serialize, ScheduleParseRejectsGarbage) {
  EXPECT_FALSE(ParseScheduleText("M9 3\n").ok);
  EXPECT_FALSE(ParseScheduleText("M1\n").ok);
  EXPECT_FALSE(ParseScheduleText("M1 x\n").ok);
}

TEST(Serialize, ParseRejectsOutOfRangeNodeIdWithLineNumber) {
  const auto r =
      ParseGraphText("wrbpg-graph v1\nnode 4294967295 5\n");  // kInvalidNode
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 2"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("out of range"), std::string::npos) << r.error;
}

TEST(Serialize, ParseRejectsOutOfRangeEdgeEndpoint) {
  const auto r = ParseGraphText(
      "wrbpg-graph v1\nnode 0 5\nedge 0 99999999999\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("out of range"), std::string::npos) << r.error;
}

TEST(Serialize, ParseRejectsNonPositiveWeights) {
  EXPECT_FALSE(ParseGraphText("wrbpg-graph v1\nnode 0 0\n").ok);
  const auto r = ParseGraphText("wrbpg-graph v1\nnode 0 -3\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("positive"), std::string::npos) << r.error;
}

TEST(Serialize, ParseRejectsSelfLoopWithLineNumber) {
  const auto r = ParseGraphText("wrbpg-graph v1\nnode 0 5\nedge 0 0\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("self-loop"), std::string::npos) << r.error;
}

TEST(Serialize, ParseRejectsDuplicateEdgeWithLineNumber) {
  const auto r = ParseGraphText(
      "wrbpg-graph v1\nnode 0 1\nnode 1 1\nedge 0 1\nedge 0 1\n");
  EXPECT_FALSE(r.ok);
  // The parser itself names the offending line; the builder's later
  // validation never even sees the duplicate.
  EXPECT_NE(r.error.find("line 5"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("duplicate edge"), std::string::npos) << r.error;
}

TEST(Serialize, ParseRejectsTruncatedInput) {
  const auto r = ParseGraphText("wrbpg-graph v1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("truncated"), std::string::npos) << r.error;
}

TEST(Serialize, ScheduleParseRejectsOutOfRangeNodeId) {
  const auto r = ParseScheduleText("M1 4294967295\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of range"), std::string::npos) << r.error;
}

// Round-trip fuzz: every random DAG the generator can produce must
// serialize to text that parses back to the *same* graph (checked both
// structurally and by re-serializing to identical text).
TEST(Serialize, RandomDagRoundTripFuzz) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed);
    RandomDagOptions options;
    options.num_layers = 2 + static_cast<int>(seed % 4);
    options.nodes_per_layer = 1 + static_cast<int>(seed % 5);
    options.max_in_degree = 1 + static_cast<int>(seed % 3);
    options.max_weight = 1 + static_cast<Weight>(seed);
    const Graph g = BuildRandomDag(rng, options);

    const std::string text = ToText(g);
    const auto parsed = ParseGraphText(text);
    ASSERT_TRUE(parsed.ok) << "seed " << seed << ": " << parsed.error;
    const Graph& h = parsed.graph;
    ASSERT_EQ(h.num_nodes(), g.num_nodes()) << "seed " << seed;
    ASSERT_EQ(h.num_edges(), g.num_edges()) << "seed " << seed;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(h.weight(v), g.weight(v));
    }
    EXPECT_EQ(ToText(h), text) << "seed " << seed;
  }
}

}  // namespace
}  // namespace wrbpg
