#include <gtest/gtest.h>

#include "core/serialize.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

using testing::MakeDiamond;

TEST(Serialize, GraphRoundTrip) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  const std::string text = ToText(g);
  const auto parsed = ParseGraphText(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const Graph& h = parsed.graph;
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(h.weight(v), g.weight(v));
    ASSERT_EQ(h.parents(v).size(), g.parents(v).size());
    for (std::size_t i = 0; i < g.parents(v).size(); ++i) {
      EXPECT_EQ(h.parents(v)[i], g.parents(v)[i]);
    }
  }
}

TEST(Serialize, GraphTextPreservesNames) {
  GraphBuilder b;
  b.AddNode(16, "x[1]");
  b.AddNode(32, "a1[1]");
  b.AddEdge(0, 1);
  const Graph g = b.BuildOrDie();
  const auto parsed = ParseGraphText(ToText(g));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.graph.name(0), "x[1]");
  EXPECT_EQ(parsed.graph.name(1), "a1[1]");
}

TEST(Serialize, ParseRejectsMissingHeader) {
  const auto r = ParseGraphText("node 0 1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("header"), std::string::npos);
}

TEST(Serialize, ParseRejectsSparseIds) {
  const auto r = ParseGraphText("wrbpg-graph v1\nnode 1 5\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("dense"), std::string::npos);
}

TEST(Serialize, ParseRejectsUndeclaredEdgeEndpoint) {
  const auto r = ParseGraphText("wrbpg-graph v1\nnode 0 5\nedge 0 3\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("undeclared"), std::string::npos);
}

TEST(Serialize, ParseRejectsUnknownDirective) {
  const auto r = ParseGraphText("wrbpg-graph v1\nvertex 0 5\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown directive"), std::string::npos);
}

TEST(Serialize, ParseSkipsCommentsAndBlankLines) {
  const auto r = ParseGraphText(
      "wrbpg-graph v1\n"
      "# a comment\n"
      "\n"
      "node 0 2\n"
      "node 1 3  # trailing comment\n"
      "edge 0 1\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.graph.num_nodes(), 2u);
  EXPECT_EQ(r.graph.weight(1), 3);
}

TEST(Serialize, ParsePropagatesBuilderValidation) {
  const auto r = ParseGraphText(
      "wrbpg-graph v1\nnode 0 1\nnode 1 1\nedge 0 1\nedge 0 1\n");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate edge"), std::string::npos);
}

TEST(Serialize, DotOutputContainsNodesAndEdges) {
  const Graph g = MakeDiamond();
  const std::string dot = ToDot(g, "diamond");
  EXPECT_NE(dot.find("digraph \"diamond\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("n3 -> n4"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);           // sources
  EXPECT_NE(dot.find("shape=doublecircle"), std::string::npos);  // sinks
}

TEST(Serialize, ScheduleRoundTrip) {
  Schedule s;
  s.Append(Load(0));
  s.Append(Compute(2));
  s.Append(Store(2));
  s.Append(Delete(0));
  const auto parsed = ParseScheduleText(ToText(s));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.schedule, s);
}

TEST(Serialize, ScheduleParseRejectsGarbage) {
  EXPECT_FALSE(ParseScheduleText("M9 3\n").ok);
  EXPECT_FALSE(ParseScheduleText("M1\n").ok);
  EXPECT_FALSE(ParseScheduleText("M1 x\n").ok);
}

}  // namespace
}  // namespace wrbpg
