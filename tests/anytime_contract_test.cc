// The anytime contract (DESIGN.md §11): every feasible result of the bb
// engine satisfies
//
//   lower_bound <= optimal <= cost,   optimality_gap == cost - lower_bound
//
// with `termination` recording why the search stopped. On runs that
// complete, the gap closes to zero and the result is BIT-IDENTICAL to the
// astar+dominance optimum at every thread count. On interrupted runs —
// deadline, state cap, byte cap, or a pre-expired token — the engine
// returns its seeded incumbent instead of failing, and the certified gap
// sandwiches the (independently computed) optimum.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/simulator.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/random_dag.h"
#include "dataflows/tree_graph.h"
#include "schedulers/brute_force.h"
#include "tests/test_helpers.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

using testing::MakeChain;
using testing::MakeDiamond;

// Property on <= 32-node families: interrupt bb at an effectively-zero
// deadline and sandwich its certified bounds around the true optimum
// (computed by the uninformed dijkstra engine). When the gap is zero the
// incumbent IS the optimum.
void ExpectSandwich(const Graph& graph, Weight budget,
                    const std::string& label) {
  const BruteForceScheduler scheduler(graph);

  BruteForceOptions exact;
  exact.engine = SearchEngine::kDijkstra;
  exact.threads = 1;
  const Weight optimal = scheduler.CostOnly(budget, exact);

  BruteForceOptions options;
  options.engine = SearchEngine::kBranchAndBound;
  const CancelToken token = CancelToken::WithDeadlineMs(0.0);
  options.cancel = &token;
  const ScheduleResult result = scheduler.Run(budget, options);

  if (optimal >= kInfiniteCost) {
    // bb's incumbent seeding cannot conjure a schedule for an infeasible
    // instance; whatever it reports must not claim feasibility.
    EXPECT_FALSE(result.feasible) << label;
    return;
  }
  ASSERT_TRUE(result.feasible) << label << ": anytime bb returned nothing "
                               << "on a feasible instance";
  EXPECT_LE(result.lower_bound, optimal) << label;
  EXPECT_GE(result.cost, optimal) << label;
  EXPECT_EQ(result.optimality_gap, result.cost - result.lower_bound)
      << label;
  const SimResult sim = testing::ExpectValid(graph, budget, result.schedule);
  EXPECT_EQ(sim.cost, result.cost) << label;
  if (result.optimality_gap == 0) {
    EXPECT_EQ(result.cost, optimal) << label;
    EXPECT_EQ(result.termination, Termination::kOptimal) << label;
  }
}

TEST(AnytimeContract, SandwichOnSmallFamilies) {
  {
    const Graph g = MakeDiamond({2, 3, 1, 2, 4});
    const Weight lo = MinValidBudget(g);
    for (const Weight budget : {lo - 1, lo, lo + 2, 2 * lo}) {
      ExpectSandwich(g, budget, "diamond budget=" + std::to_string(budget));
    }
  }
  {
    const Graph g = MakeChain(6, 2);
    const Weight lo = MinValidBudget(g);
    for (const Weight budget : {lo, lo + 2}) {
      ExpectSandwich(g, budget, "chain6 budget=" + std::to_string(budget));
    }
  }
  {
    const DwtGraph dwt = BuildDwt(4, 2);
    const Weight lo = MinValidBudget(dwt.graph);
    for (const Weight budget : {lo, lo + 3}) {
      ExpectSandwich(dwt.graph, budget,
                     "dwt(4,2) budget=" + std::to_string(budget));
    }
  }
  {
    const TreeGraph tree = BuildPerfectTree(2, 2);
    const Weight lo = MinValidBudget(tree.graph);
    ExpectSandwich(tree.graph, lo + 1, "kary(2,2)");
  }
}

// A completed bb run (no deadline) is bit-identical to astar+dominance —
// same cost, same canonical schedule — at 1, 2, and 8 threads.
TEST(AnytimeContract, CompletedRunBitMatchesDominanceEngine) {
  const DwtGraph dwt = BuildDwt(8, 1);
  const Weight budget = MinValidBudget(dwt.graph) + 2;
  const BruteForceScheduler scheduler(dwt.graph);

  BruteForceOptions ref_options;
  ref_options.engine = SearchEngine::kAStarDominance;
  ref_options.threads = 1;
  const ScheduleResult ref = scheduler.Run(budget, ref_options);
  ASSERT_TRUE(ref.feasible);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    BruteForceOptions options;
    options.engine = SearchEngine::kBranchAndBound;
    options.threads = threads;
    const ScheduleResult got = scheduler.Run(budget, options);
    ASSERT_TRUE(got.feasible) << "threads=" << threads;
    EXPECT_EQ(got.cost, ref.cost) << "threads=" << threads;
    EXPECT_TRUE(got.schedule == ref.schedule)
        << "threads=" << threads << ": schedules differ\nref:\n"
        << ref.schedule.ToString() << "got:\n"
        << got.schedule.ToString();
    EXPECT_EQ(got.lower_bound, got.cost);
    EXPECT_EQ(got.optimality_gap, 0);
    EXPECT_EQ(got.termination, Termination::kOptimal);
  }
}

// Beyond the 32-node packed wall: random DAG fuzz under tight deadlines.
// Every interrupted result must be a simulator-valid schedule with an
// internally consistent, finite gap whose lower bound clears Prop 2.4.
TEST(AnytimeContract, WideGraphDeadlineFuzz) {
  Rng rng(0xa17e5u);
  RandomDagOptions dag_options;
  dag_options.num_layers = 7;
  dag_options.nodes_per_layer = 6;  // 42 nodes: wide path, packed is gone
  for (int instance = 0; instance < 4; ++instance) {
    const Graph graph = BuildRandomDag(rng, dag_options);
    ASSERT_GT(graph.num_nodes(), 32u);
    const Weight budget = MinValidBudget(graph) + 16;
    const BruteForceScheduler scheduler(graph);
    for (const double deadline_ms : {0.0, 5.0}) {
      BruteForceOptions options;
      options.engine = SearchEngine::kBranchAndBound;
      const CancelToken token = CancelToken::WithDeadlineMs(deadline_ms);
      options.cancel = &token;
      const ScheduleResult result = scheduler.Run(budget, options);
      const std::string label = "instance=" + std::to_string(instance) +
                                " deadline=" + std::to_string(deadline_ms);
      ASSERT_TRUE(result.feasible) << label;
      const SimResult sim =
          testing::ExpectValid(graph, budget, result.schedule);
      EXPECT_EQ(sim.cost, result.cost) << label;
      EXPECT_GE(result.lower_bound, AlgorithmicLowerBound(graph)) << label;
      EXPECT_LE(result.lower_bound, result.cost) << label;
      EXPECT_EQ(result.optimality_gap, result.cost - result.lower_bound)
          << label;
      EXPECT_LT(result.optimality_gap, kInfiniteCost) << label;
    }
  }
}

// A pre-expired token returns the incumbent immediately — the "never fail
// to return a schedule" guarantee at its most extreme.
TEST(AnytimeContract, ExpiredTokenStillReturnsIncumbent) {
  Rng rng(0xdead21u);
  RandomDagOptions dag_options;
  dag_options.num_layers = 8;
  dag_options.nodes_per_layer = 8;
  const Graph graph = BuildRandomDag(rng, dag_options);
  const Weight budget = MinValidBudget(graph) + 24;

  BruteForceOptions options;
  options.engine = SearchEngine::kBranchAndBound;
  CancelToken token;
  token.Cancel();
  options.cancel = &token;
  const ScheduleResult result =
      BruteForceScheduler(graph).Run(budget, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.termination, Termination::kCancelled);
  testing::ExpectValid(graph, budget, result.schedule);
  EXPECT_EQ(result.optimality_gap, result.cost - result.lower_bound);
}

// The max_states safety valve is an incumbent-return for bb, not a
// timeout: a starved search still ships a valid schedule with its gap.
TEST(AnytimeContract, StateCapReturnsIncumbent) {
  Rng rng(0x57a7eu);
  RandomDagOptions dag_options;
  dag_options.num_layers = 6;
  dag_options.nodes_per_layer = 6;
  const Graph graph = BuildRandomDag(rng, dag_options);
  const Weight budget = MinValidBudget(graph) + 16;

  BruteForceOptions options;
  options.engine = SearchEngine::kBranchAndBound;
  options.max_states = 200;  // starve the search almost immediately
  const ScheduleResult result =
      BruteForceScheduler(graph).Run(budget, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.termination, Termination::kMemoryCap);
  testing::ExpectValid(graph, budget, result.schedule);
  EXPECT_LE(result.lower_bound, result.cost);
  EXPECT_EQ(result.optimality_gap, result.cost - result.lower_bound);
}

// Same for the frontier byte budget: exhausting it is an orderly
// incumbent-return, never an OOM or an abort.
TEST(AnytimeContract, ByteCapReturnsIncumbent) {
  Rng rng(0xb17ec0u);
  RandomDagOptions dag_options;
  dag_options.num_layers = 7;
  dag_options.nodes_per_layer = 6;
  const Graph graph = BuildRandomDag(rng, dag_options);
  const Weight budget = MinValidBudget(graph) + 16;

  BruteForceOptions options;
  options.engine = SearchEngine::kBranchAndBound;
  options.frontier_bytes_cap = 1;  // any first wave-boundary sample trips
  const ScheduleResult result =
      BruteForceScheduler(graph).Run(budget, options);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.termination, Termination::kMemoryCap);
  testing::ExpectValid(graph, budget, result.schedule);
  EXPECT_EQ(result.optimality_gap, result.cost - result.lower_bound);
}

// The deadline holds even when the frontier is one enormous wave: the
// move-count poll inside expansion chunks must notice mid-wave. A 64-node
// graph at a 25 ms deadline has to come back in well under a second.
TEST(AnytimeContract, DeadlineHoldsInsideLargeWaves) {
  Rng rng(42);
  RandomDagOptions dag_options;
  dag_options.num_layers = 8;
  dag_options.nodes_per_layer = 8;
  const Graph graph = BuildRandomDag(rng, dag_options);
  const Weight budget = MinValidBudget(graph) + 39;

  BruteForceOptions options;
  options.engine = SearchEngine::kBranchAndBound;
  const CancelToken token = CancelToken::WithDeadlineMs(25.0);
  options.cancel = &token;

  const auto start = std::chrono::steady_clock::now();
  const ScheduleResult result =
      BruteForceScheduler(graph).Run(budget, options);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_TRUE(result.feasible);
  testing::ExpectValid(graph, budget, result.schedule);
  // Generous on loaded CI machines, but far below what ignoring the
  // deadline for even one full 64-node wave would cost.
  EXPECT_LT(elapsed_ms, 1500.0);
}

}  // namespace
}  // namespace wrbpg
