// Exhaustive validation of the Sec 2.2 propositions over ALL small CDAGs.
//
// Enumerates every DAG on four nodes (fixed topological labeling 0 < 1 <
// 2 < 3, all 2^6 subsets of forward edges) and every weight assignment
// from a small set, and checks against the brute-force oracle that
//   * Proposition 2.3 is exact: a schedule exists iff
//     budget >= MinValidBudget (the oracle finds one at exactly that
//     budget and fails below it);
//   * Proposition 2.4 holds and is tight at ample memory for these graphs'
//     shapes whenever no value must be read twice;
//   * the heuristics (greedy, Belady) are sandwiched between the oracle
//     and their own upper-bound structure at every budget.
#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/graph_builder.h"
#include "schedulers/belady.h"
#include "schedulers/brute_force.h"
#include "schedulers/greedy_topo.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

struct SmallDag {
  Graph graph;
  bool ok = false;
};

SmallDag MakeDag(unsigned edge_mask, const std::array<Weight, 4>& weights) {
  // Edge bits in order: (0,1) (0,2) (0,3) (1,2) (1,3) (2,3).
  constexpr std::pair<NodeId, NodeId> kEdges[] = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  GraphBuilder builder;
  for (Weight w : weights) builder.AddNode(w);
  for (unsigned i = 0; i < 6; ++i) {
    if (edge_mask & (1u << i)) builder.AddEdge(kEdges[i].first, kEdges[i].second);
  }
  SmallDag result;
  auto built = builder.Build();  // rejects isolated nodes etc.
  if (!built.ok) return result;
  result.graph = std::move(built.graph);
  result.ok = true;
  return result;
}

TEST(Exhaustive, Proposition23ExactOnAllFourNodeDags) {
  int graphs_checked = 0;
  for (unsigned mask = 1; mask < 64; ++mask) {
    const SmallDag dag = MakeDag(mask, {1, 2, 1, 3});
    if (!dag.ok) continue;
    ++graphs_checked;
    BruteForceScheduler oracle(dag.graph);
    const Weight floor = MinValidBudget(dag.graph);
    EXPECT_FALSE(oracle.Run(floor - 1).feasible) << "mask " << mask;
    const auto at_floor = oracle.Run(floor);
    ASSERT_TRUE(at_floor.feasible) << "mask " << mask;
    testing::ExpectValid(dag.graph, floor, at_floor.schedule);
  }
  EXPECT_GT(graphs_checked, 20);
}

TEST(Exhaustive, LowerBoundAndHeuristicSandwichOnAllFourNodeDags) {
  for (unsigned mask = 1; mask < 64; ++mask) {
    for (const std::array<Weight, 4> weights :
         {std::array<Weight, 4>{1, 1, 1, 1}, std::array<Weight, 4>{2, 1, 3, 1},
          std::array<Weight, 4>{1, 4, 1, 2}}) {
      const SmallDag dag = MakeDag(mask, weights);
      if (!dag.ok) continue;
      BruteForceScheduler oracle(dag.graph);
      GreedyTopoScheduler greedy(dag.graph);
      BeladyScheduler belady(dag.graph);
      const Weight floor = MinValidBudget(dag.graph);
      const Weight lb = AlgorithmicLowerBound(dag.graph);
      for (Weight b = floor; b <= floor + 4; b += 2) {
        const Weight opt = oracle.CostOnly(b);
        ASSERT_LT(opt, kInfiniteCost);
        EXPECT_GE(opt, lb) << "mask " << mask << " budget " << b;
        EXPECT_LE(opt, belady.CostOnly(b)) << "mask " << mask;
        EXPECT_LE(belady.CostOnly(b), greedy.CostOnly(b)) << "mask " << mask;
      }
      // At ample memory the oracle meets the algorithmic lower bound on
      // every four-node DAG (each input read once, each output written
      // once; no recomputation is ever forced).
      EXPECT_EQ(oracle.CostOnly(dag.graph.total_weight()), lb)
          << "mask " << mask;
    }
  }
}

}  // namespace
}  // namespace wrbpg
