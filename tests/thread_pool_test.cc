// ThreadPool / TaskGroup / ParallelFor contract tests (DESIGN.md §8).
//
// The parallel search engine leans on three pool properties that used to
// be latent bugs: exceptions must reach the waiter instead of
// std::terminate, the destructor must drain the queue before joining, and
// tasks must be able to submit (and wait on) tasks without deadlocking —
// even on a single-thread pool, where the waiter's own thread is the only
// one available to run the nested work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace wrbpg {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ExceptionPropagatesToWait) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
}

TEST(ThreadPool, PoolIsUsableAfterException) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  EXPECT_NO_THROW(pool.Wait());  // the error was consumed by the first Wait
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, OnlyFirstExceptionIsKept) {
  ThreadPool pool(1);
  for (int i = 0; i < 5; ++i) {
    pool.Submit([] { throw std::runtime_error("each task throws"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_NO_THROW(pool.Wait());  // the other four were dropped, not queued
}

TEST(ThreadPool, DestructorDrainsQueueThenJoins) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    });
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // No Wait(): destruction itself must run every queued task.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DestructorDiscardsExceptions) {
  // A throwing task during the destructor drain has no waiter to report
  // to; it must be swallowed, not std::terminate the process.
  ThreadPool pool(1);
  pool.Submit([] { throw std::runtime_error("no one is listening"); });
}

TEST(TaskGroup, WaitCoversExactlyItsOwnTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TaskGroup group(pool);
  for (int i = 0; i < 20; ++i) {
    group.Submit([&count] { count.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(TaskGroup, ExceptionPropagatesToGroupWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.Submit([] { throw std::runtime_error("group task failed"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_NO_THROW(pool.Wait());  // group errors never leak into the pool
}

TEST(TaskGroup, NestedWaitInsideTaskDoesNotDeadlock) {
  // The pool has ONE thread, and that thread waits on an inner group from
  // inside a task: Wait must lend the calling thread to the pool or this
  // hangs forever.
  ThreadPool pool(1);
  std::atomic<int> inner_count{0};
  std::atomic<bool> outer_done{false};
  TaskGroup outer(pool);
  outer.Submit([&] {
    TaskGroup inner(pool);
    for (int i = 0; i < 5; ++i) {
      inner.Submit([&inner_count] { inner_count.fetch_add(1); });
    }
    inner.Wait();
    outer_done.store(true);
  });
  outer.Wait();
  EXPECT_EQ(inner_count.load(), 5);
  EXPECT_TRUE(outer_done.load());
}

TEST(TaskGroup, DeeplyNestedGroupsOnOneThread) {
  ThreadPool pool(1);
  std::atomic<int> depth_reached{0};
  std::function<void(int)> descend = [&](int depth) {
    if (depth == 0) return;
    TaskGroup group(pool);
    group.Submit([&, depth] {
      depth_reached.fetch_add(1);
      descend(depth - 1);
    });
    group.Wait();
  };
  descend(8);
  EXPECT_EQ(depth_reached.load(), 8);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, 1000,
              [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  ParallelFor(pool, 5, 5, [&](std::int64_t) { count.fetch_add(1); });
  ParallelFor(pool, 7, 3, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelFor, NestedInsideTaskDoesNotDeadlock) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  ParallelFor(pool, 0, 4, [&](std::int64_t) {
    ParallelFor(pool, 0, 10, [&](std::int64_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 40);
}

TEST(ParallelFor, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(pool, 0, 100,
                           [](std::int64_t i) {
                             if (i == 37) throw std::runtime_error("bad i");
                           }),
               std::runtime_error);
}

TEST(ThreadConfig, ResolveAndDefaults) {
  const std::size_t saved = DefaultSearchThreads();
  EXPECT_GE(saved, 1u);
  SetDefaultSearchThreads(3);
  EXPECT_EQ(DefaultSearchThreads(), 3u);
  EXPECT_EQ(ResolveThreadCount(0), 3u);   // 0 = use the global default
  EXPECT_EQ(ResolveThreadCount(1), 1u);   // explicit counts win
  EXPECT_EQ(ResolveThreadCount(7), 7u);
  SetDefaultSearchThreads(0);             // 0 = hardware concurrency
  EXPECT_GE(DefaultSearchThreads(), 1u);
  SetDefaultSearchThreads(saved);
}

}  // namespace
}  // namespace wrbpg
