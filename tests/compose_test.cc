#include <gtest/gtest.h>

#include <algorithm>

#include "core/analysis.h"
#include "core/compose.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "exec/executor.h"
#include "exec/reference_kernels.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/mvm_tiling.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

using testing::MakeChain;

TEST(Compose, ChainOntoChainIsLongerChain) {
  const Graph first = MakeChain(3, 2);
  const Graph second = MakeChain(4, 2);
  const Composition comp =
      ComposeSequential(first, second, {{.producer_sink = 2,
                                         .consumer_source = 0}});
  ASSERT_TRUE(comp.ok) << comp.error;
  EXPECT_EQ(comp.graph.num_nodes(), 6u);  // 3 + 4 - 1 shared
  EXPECT_EQ(comp.graph.sources().size(), 1u);
  EXPECT_EQ(comp.graph.sinks().size(), 1u);
  // The bound node is neither source nor sink in the composite.
  const NodeId shared = comp.producer_to_composite[2];
  EXPECT_EQ(shared, comp.consumer_to_composite[0]);
  EXPECT_FALSE(comp.graph.is_source(shared));
  EXPECT_FALSE(comp.graph.is_sink(shared));
}

TEST(Compose, RejectsNonSinkProducerBinding) {
  const Graph first = MakeChain(3, 2);
  const Graph second = MakeChain(2, 2);
  const Composition comp = ComposeSequential(
      first, second, {{.producer_sink = 1, .consumer_source = 0}});
  EXPECT_FALSE(comp.ok);
  EXPECT_NE(comp.error.find("not a producer sink"), std::string::npos);
}

TEST(Compose, RejectsNonSourceConsumerBinding) {
  const Graph first = MakeChain(3, 2);
  const Graph second = MakeChain(3, 2);
  const Composition comp = ComposeSequential(
      first, second, {{.producer_sink = 2, .consumer_source = 1}});
  EXPECT_FALSE(comp.ok);
  EXPECT_NE(comp.error.find("not a consumer source"), std::string::npos);
}

TEST(Compose, RejectsWeightMismatch) {
  const Graph first = MakeChain(3, 2);
  const Graph second = MakeChain(3, 4);
  const Composition comp = ComposeSequential(
      first, second, {{.producer_sink = 2, .consumer_source = 0}});
  EXPECT_FALSE(comp.ok);
  EXPECT_NE(comp.error.find("weight mismatch"), std::string::npos);
}

TEST(Compose, RejectsDoubleBoundSource) {
  const Graph first = MakeChain(3, 2);
  const Graph second = MakeChain(3, 2);
  const Composition comp = ComposeSequential(
      first, second,
      {{.producer_sink = 2, .consumer_source = 0},
       {.producer_sink = 2, .consumer_source = 0}});
  EXPECT_FALSE(comp.ok);
  EXPECT_NE(comp.error.find("bound twice"), std::string::npos);
}

TEST(Compose, StitchedSchedulesAreValidAndAdditive) {
  const Graph first = MakeChain(4, 2);
  const Graph second = MakeChain(3, 2);
  const Composition comp = ComposeSequential(
      first, second, {{.producer_sink = 3, .consumer_source = 0}});
  ASSERT_TRUE(comp.ok) << comp.error;

  GreedyTopoScheduler s1(first);
  GreedyTopoScheduler s2(second);
  const Weight budget = 8;
  const auto r1 = s1.Run(budget);
  const auto r2 = s2.Run(budget);
  ASSERT_TRUE(r1.feasible && r2.feasible);

  const Schedule stitched =
      StitchSchedules(comp, r1.schedule, r2.schedule);
  const SimResult sim = testing::ExpectValid(comp.graph, budget, stitched);
  EXPECT_EQ(sim.cost, r1.cost + r2.cost);
}

// The paper's end-to-end story: a DWT feature extractor feeding a linear
// decoder, each scheduled by its own optimal algorithm, stitched into one
// valid schedule for the fused CDAG — and numerically correct.
TEST(Compose, DwtIntoMvmPipelineComputesDecodedFeatures) {
  const DwtGraph dwt = BuildDwt(8, 3, PrecisionConfig::Equal());
  const std::int64_t features =
      static_cast<std::int64_t>(dwt.graph.sinks().size());  // 8 outputs
  const MvmGraph mvm =
      BuildMvm(3, features, PrecisionConfig::Equal());

  std::vector<Binding> bindings;
  for (std::int64_t i = 0; i < features; ++i) {
    bindings.push_back(
        {.producer_sink = dwt.graph.sinks()[static_cast<std::size_t>(i)],
         .consumer_source = mvm.x(i)});
  }
  const Composition comp =
      ComposeSequential(dwt.graph, mvm.graph, bindings);
  ASSERT_TRUE(comp.ok) << comp.error;
  // Composite sources: DWT inputs + decoder matrix entries.
  EXPECT_EQ(comp.graph.sources().size(),
            8u + static_cast<std::size_t>(3 * features));
  EXPECT_EQ(comp.graph.sinks().size(), 3u);

  DwtOptimalScheduler dwt_sched(dwt);
  MvmTilingScheduler mvm_sched(mvm);
  const Weight budget =
      std::max(MinValidBudget(dwt.graph) + 32,
               mvm_sched.MinMemoryForLowerBound());
  const auto r1 = dwt_sched.Run(budget);
  const auto r2 = mvm_sched.Run(budget);
  ASSERT_TRUE(r1.feasible && r2.feasible);
  const Schedule stitched = StitchSchedules(comp, r1.schedule, r2.schedule);
  const SimResult sim = testing::ExpectValid(comp.graph, budget, stitched);
  EXPECT_EQ(sim.cost, r1.cost + r2.cost);

  // Execute end to end: y = A * dwt_outputs(signal).
  Rng rng(31);
  std::vector<double> signal(8);
  for (auto& s : signal) s = rng.UniformDouble() * 2.0 - 1.0;
  std::vector<double> decoder(static_cast<std::size_t>(3 * features));
  for (auto& d : decoder) d = rng.UniformDouble() - 0.5;

  std::vector<double> sources(comp.graph.num_nodes(), 0.0);
  for (std::size_t j = 0; j < 8; ++j) {
    sources[comp.producer_to_composite[dwt.layers[0][j]]] = signal[j];
  }
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < features; ++c) {
      sources[comp.consumer_to_composite[mvm.a(r, c)]] =
          decoder[static_cast<std::size_t>(r * features + c)];
    }
  }
  // Composite semantics: DWT ops on producer nodes, MVM ops on the rest.
  const NodeOp dwt_op = MakeDwtNodeOp(dwt);
  const NodeOp mvm_op = MakeMvmNodeOp(mvm);
  std::vector<NodeId> back_to_dwt(comp.graph.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < dwt.graph.num_nodes(); ++v) {
    back_to_dwt[comp.producer_to_composite[v]] = v;
  }
  std::vector<NodeId> back_to_mvm(comp.graph.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < mvm.graph.num_nodes(); ++v) {
    if (mvm.graph.is_source(v) &&
        back_to_dwt[comp.consumer_to_composite[v]] != kInvalidNode) {
      continue;  // bound boundary node: computed by the DWT side
    }
    back_to_mvm[comp.consumer_to_composite[v]] = v;
  }
  // M3 only ever fires on compute nodes, which live in exactly one part.
  const NodeOp fused = [&](NodeId v, std::span<const double> parents) {
    return back_to_mvm[v] != kInvalidNode ? mvm_op(back_to_mvm[v], parents)
                                          : dwt_op(back_to_dwt[v], parents);
  };

  const ExecResult exec =
      ExecuteSchedule(comp.graph, budget, stitched, fused, sources);
  ASSERT_TRUE(exec.ok) << exec.error;

  const std::vector<double> feature_values = HaarOutputs(dwt, signal);
  const std::vector<double> expected =
      MatVec(3, features, decoder, feature_values);
  for (std::int64_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(
        exec.slow_values[comp.consumer_to_composite[mvm.output(r)]],
        expected[static_cast<std::size_t>(r)]);
  }
}

}  // namespace
}  // namespace wrbpg
