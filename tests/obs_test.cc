// Unit tests for the observability layer (src/obs): the lock-free metric
// registry's exactness under concurrency, span-tree aggregation, the JSON
// writer, and the shared wrbpg-obs-v1 document shape.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"

namespace wrbpg::obs {
namespace {

// Every test starts from a clean slate; names persist across tests (the
// registry is process-wide and append-only) but values are zeroed.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    ResetAll();
  }
};

TEST_F(ObsTest, RegistrationIsIdempotent) {
  const MetricId a = RegisterCounter("test.idempotent");
  const MetricId b = RegisterCounter("test.idempotent");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kInvalidMetric);
  EXPECT_EQ(RegisterCounter(""), kInvalidMetric);
}

TEST_F(ObsTest, CounterSumsAndGaugeMaxes) {
  const Counter c("test.counter");
  const Gauge g("test.gauge");
  c.Add(3);
  c.Add();
  g.Max(7);
  g.Max(4);  // lower: must not regress the high-water mark
  EXPECT_EQ(ReadMetric("test.counter"), 4u);
  EXPECT_EQ(ReadMetric("test.gauge"), 7u);
  EXPECT_EQ(ReadMetric("test.never-registered"), 0u);
}

// The concurrency contract: N threads hammering one counter lose no
// increments — the folded total is exactly N * kAdds, including the
// contributions of threads that have already exited (retired totals) —
// and a gauge folds to the true maximum across all shards.
TEST_F(ObsTest, ConcurrentHammerFoldsToExactTotals) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kAdds = 50'000;
  const Counter c("test.hammer");
  const Gauge g("test.hammer-gauge");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &g, t] {
      for (std::uint64_t i = 0; i < kAdds; ++i) c.Add(1);
      g.Max(static_cast<std::uint64_t>(t) * 100);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ReadMetric("test.hammer"), kThreads * kAdds);
  EXPECT_EQ(ReadMetric("test.hammer-gauge"), (kThreads - 1) * 100u);

  // Snapshots taken while writers are live must never tear; re-hammer with
  // a concurrent reader and check the final fold is still exact.
  std::thread writer([&c] {
    for (std::uint64_t i = 0; i < kAdds; ++i) c.Add(1);
  });
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t seen = ReadMetric("test.hammer");
    EXPECT_GE(seen, kThreads * kAdds);
    EXPECT_LE(seen, (kThreads + 1) * kAdds);
  }
  writer.join();
  EXPECT_EQ(ReadMetric("test.hammer"), (kThreads + 1) * kAdds);
}

TEST_F(ObsTest, DisabledCollectionDropsWrites) {
  const Counter c("test.toggle");
  c.Add(1);
  SetEnabled(false);
  c.Add(100);
  SetEnabled(true);
  c.Add(1);
  EXPECT_EQ(ReadMetric("test.toggle"), 2u);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsNames) {
  const Counter c("test.reset");
  c.Add(5);
  ResetMetrics();
  EXPECT_EQ(ReadMetric("test.reset"), 0u);
  c.Add(2);  // the handle's id survives the reset
  EXPECT_EQ(ReadMetric("test.reset"), 2u);
}

TEST_F(ObsTest, SnapshotIsSortedByName) {
  RegisterCounter("test.zz");
  RegisterCounter("test.aa");
  const std::vector<MetricValue> snapshot = SnapshotMetrics();
  for (std::size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
  }
}

SpanNode FindChild(const SpanNode& node, const std::string& name) {
  for (const SpanNode& child : node.children) {
    if (child.name == name) return child;
  }
  ADD_FAILURE() << "span '" << name << "' not found under '" << node.name
                << "'";
  return SpanNode{};
}

TEST_F(ObsTest, SpansNestAndAggregateByName) {
  {
    ScopedSpan outer("test.outer");
    for (int i = 0; i < 3; ++i) {
      ScopedSpan inner("test.inner");
    }
  }
  {
    ScopedSpan outer("test.outer");  // second hit merges into the same node
  }
  const SpanNode root = SnapshotSpans();
  const SpanNode outer = FindChild(root, "test.outer");
  EXPECT_EQ(outer.count, 2u);
  EXPECT_GE(outer.total_ms, 0.0);
  const SpanNode inner = FindChild(outer, "test.inner");
  EXPECT_EQ(inner.count, 3u);
  // total time is additive down the tree.
  EXPECT_LE(inner.total_ms, outer.total_ms);
}

TEST_F(ObsTest, SpansMergeAcrossThreads) {
  auto work = [] {
    ScopedSpan span("test.worker");
    ScopedSpan child("test.worker-child");
  };
  std::thread a(work), b(work);
  a.join();
  b.join();
  work();  // and once on this thread
  const SpanNode root = SnapshotSpans();
  EXPECT_EQ(FindChild(root, "test.worker").count, 3u);
  EXPECT_EQ(FindChild(FindChild(root, "test.worker"), "test.worker-child")
                .count,
            3u);
}

TEST_F(ObsTest, RecordSpanFilesUnderCurrentSpan) {
  {
    ScopedSpan outer("test.record-outer");
    RecordSpan("test.recorded", 12.5);
    RecordSpan("test.recorded", 2.5);
  }
  const SpanNode outer =
      FindChild(SnapshotSpans(), "test.record-outer");
  const SpanNode recorded = FindChild(outer, "test.recorded");
  EXPECT_EQ(recorded.count, 2u);
  EXPECT_DOUBLE_EQ(recorded.total_ms, 15.0);
}

TEST_F(ObsTest, DisabledSpanStaysInertAcrossReenable) {
  SetEnabled(false);
  {
    ScopedSpan span("test.inert");
    SetEnabled(true);  // re-enabled before the span closes
  }
  for (const SpanNode& child : SnapshotSpans().children) {
    EXPECT_NE(child.name, "test.inert");
  }
}

TEST(Json, DumpsScalarsAndContainersInOrder) {
  Json doc = Json::Object();
  doc.Set("b", 2);
  doc.Set("a", 1);  // insertion order, not key order
  doc.Set("flag", true);
  doc.Set("pi", 0.5);
  doc.Set("none", Json());
  Json arr = Json::Array();
  arr.Push("x");
  arr.Push(std::uint64_t{18446744073709551615ull});
  doc.Set("arr", std::move(arr));
  EXPECT_EQ(doc.Dump(0),
            "{\"b\":2,\"a\":1,\"flag\":true,\"pi\":0.5,"
            "\"none\":null,\"arr\":[\"x\",18446744073709551615]}\n");
}

TEST(Json, EscapesStringsPerRfc8259) {
  EXPECT_EQ(Json::Escape("plain"), "plain");
  EXPECT_EQ(Json::Escape("quote\" slash\\"), "quote\\\" slash\\\\");
  EXPECT_EQ(Json::Escape("tab\tnewline\n"), "tab\\tnewline\\n");
  EXPECT_EQ(Json::Escape(std::string_view("ctrl\x01", 5)), "ctrl\\u0001");
}

TEST(Json, DoublesKeepTheirTypeAndRoundTrip) {
  // Integral-valued doubles keep a ".0" so consumers see a float; every
  // finite double round-trips through std::stod.
  EXPECT_EQ(Json(2.0).Dump(0), "2.0\n");
  const double v = 80.604142;
  EXPECT_EQ(std::stod(Json(v).Dump(0)), v);
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(0), "null\n");
}

TEST_F(ObsTest, ObsDocumentHasTheStableSchemaPrefix) {
  const Counter c("test.doc-counter");
  c.Add(9);
  {
    ScopedSpan span("test.doc-span");
  }
  const Json doc = ObsDocument("unit-test");
  const std::string dumped = doc.Dump();
  EXPECT_NE(dumped.find("\"schema\": \"wrbpg-obs-v1\""), std::string::npos);
  EXPECT_NE(dumped.find("\"tool\": \"unit-test\""), std::string::npos);
  EXPECT_NE(dumped.find("\"test.doc-counter\": 9"), std::string::npos);
  EXPECT_NE(dumped.find("\"test.doc-span\""), std::string::npos);
  EXPECT_NE(dumped.find("\"counters\""), std::string::npos);
  EXPECT_NE(dumped.find("\"gauges\""), std::string::npos);
  EXPECT_NE(dumped.find("\"spans\""), std::string::npos);
}

TEST_F(ObsTest, RenderReportShowsSpansAndMetrics) {
  const Counter c("test.report-counter");
  c.Add(3);
  {
    ScopedSpan span("test.report-span");
  }
  const std::string report = RenderReport();
  EXPECT_NE(report.find("test.report-span"), std::string::npos);
  EXPECT_NE(report.find("test.report-counter = 3"), std::string::npos);
}

}  // namespace
}  // namespace wrbpg::obs
