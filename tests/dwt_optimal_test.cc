#include <gtest/gtest.h>

#include <tuple>

#include "core/analysis.h"
#include "core/graph_builder.h"
#include "dataflows/dwt_graph.h"
#include "schedulers/brute_force.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

// ---------------------------------------------------------------------------
// Optimality against the exhaustive oracle on small instances.
// ---------------------------------------------------------------------------

class DwtOptimalityTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int, bool>> {};

TEST_P(DwtOptimalityTest, MatchesBruteForceOptimumAcrossBudgets) {
  const auto [n, d, double_acc] = GetParam();
  // Unit-scale weights keep the oracle's state space tractable.
  const PrecisionConfig config = double_acc
                                     ? PrecisionConfig::DoubleAccumulator(1)
                                     : PrecisionConfig::Equal(1);
  const DwtGraph dwt = BuildDwt(n, d, config);
  DwtOptimalScheduler optimal(dwt);
  BruteForceScheduler oracle(dwt.graph);

  const Weight lo = MinValidBudget(dwt.graph);
  for (Weight b = lo; b <= lo + 6; ++b) {
    const Weight expected = oracle.CostOnly(b);
    EXPECT_EQ(optimal.CostOnly(b), expected) << "budget " << b;

    const auto run = optimal.Run(b);
    ASSERT_TRUE(run.feasible) << "budget " << b;
    const SimResult sim = testing::ExpectValid(dwt.graph, b, run.schedule);
    EXPECT_EQ(sim.cost, expected) << "budget " << b;
  }
}

// The oracle's configuration space grows exponentially with |V|; instances
// here stay at or below 14 nodes (DWT(6, 1) has 12, DWT(4, 2) has 10).
INSTANTIATE_TEST_SUITE_P(
    SmallInstances, DwtOptimalityTest,
    ::testing::Values(std::tuple{2, 1, false}, std::tuple{4, 1, false},
                      std::tuple{4, 2, false}, std::tuple{6, 1, false},
                      std::tuple{2, 1, true}, std::tuple{4, 1, true},
                      std::tuple{4, 2, true}, std::tuple{6, 1, true}));

// Random weights still satisfy the Lemma 3.2 precondition when each
// coefficient weighs no more than its sibling average.
TEST(DwtOptimal, MatchesOracleUnderRandomWeights) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    DwtGraph dwt = BuildDwt(4, 2, PrecisionConfig::Equal(1));
    std::vector<Weight> weights(dwt.graph.num_nodes());
    for (std::size_t layer = 0; layer < dwt.layers.size(); ++layer) {
      for (std::size_t j = 0; j < dwt.layers[layer].size(); ++j) {
        const NodeId v = dwt.layers[layer][j];
        if (layer == 0 || j % 2 == 0) {
          weights[v] = rng.UniformInt(1, 3);
        } else {
          weights[v] = weights[dwt.layers[layer][j - 1]];  // == sibling avg
        }
      }
    }
    GraphBuilder builder;
    for (NodeId v = 0; v < dwt.graph.num_nodes(); ++v) {
      builder.AddNode(weights[v], dwt.graph.name(v));
    }
    for (NodeId v = 0; v < dwt.graph.num_nodes(); ++v) {
      for (NodeId c : dwt.graph.children(v)) builder.AddEdge(v, c);
    }
    dwt.graph = builder.BuildOrDie();

    DwtOptimalScheduler optimal(dwt);
    BruteForceScheduler oracle(dwt.graph);
    const Weight lo = MinValidBudget(dwt.graph);
    for (Weight budget = lo; budget <= lo + 4; budget += 2) {
      EXPECT_EQ(optimal.CostOnly(budget), oracle.CostOnly(budget))
          << "seed " << seed << " budget " << budget;
      const auto run = optimal.Run(budget);
      ASSERT_TRUE(run.feasible);
      const SimResult sim =
          testing::ExpectValid(dwt.graph, budget, run.schedule);
      EXPECT_EQ(sim.cost, run.cost);
    }
  }
}

// ---------------------------------------------------------------------------
// Structural properties on mid-size instances.
// ---------------------------------------------------------------------------

class DwtPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, int>> {};

TEST_P(DwtPropertyTest, SchedulesValidAndCostsConsistentAcrossBudgets) {
  const auto [n, d] = GetParam();
  const DwtGraph dwt = BuildDwt(n, d, PrecisionConfig::DoubleAccumulator());
  DwtOptimalScheduler optimal(dwt);
  const Weight lo = MinValidBudget(dwt.graph);
  const Weight lb = AlgorithmicLowerBound(dwt.graph);

  Weight previous = kInfiniteCost;
  for (Weight b = lo; b <= lo + 512; b += 64) {
    const auto run = optimal.Run(b);
    ASSERT_TRUE(run.feasible);
    const SimResult sim = testing::ExpectValid(dwt.graph, b, run.schedule);
    EXPECT_EQ(sim.cost, run.cost);
    EXPECT_EQ(run.cost, optimal.CostOnly(b));
    EXPECT_GE(run.cost, lb);
    EXPECT_LE(run.cost, previous);  // monotone in the budget
    previous = run.cost;
  }
}

TEST_P(DwtPropertyTest, InfeasibleJustBelowMinValidBudget) {
  const auto [n, d] = GetParam();
  const DwtGraph dwt = BuildDwt(n, d);
  DwtOptimalScheduler optimal(dwt);
  EXPECT_EQ(optimal.CostOnly(MinValidBudget(dwt.graph) - 1), kInfiniteCost);
  EXPECT_FALSE(optimal.Run(MinValidBudget(dwt.graph) - 1).feasible);
}

TEST_P(DwtPropertyTest, ReachesLowerBoundWithAmpleMemory) {
  const auto [n, d] = GetParam();
  const DwtGraph dwt = BuildDwt(n, d, PrecisionConfig::DoubleAccumulator());
  DwtOptimalScheduler optimal(dwt);
  EXPECT_EQ(optimal.CostOnly(dwt.graph.total_weight()),
            AlgorithmicLowerBound(dwt.graph));
}

TEST_P(DwtPropertyTest, NeverWorseThanGreedy) {
  const auto [n, d] = GetParam();
  const DwtGraph dwt = BuildDwt(n, d);
  DwtOptimalScheduler optimal(dwt);
  GreedyTopoScheduler greedy(dwt.graph);
  for (Weight b = MinValidBudget(dwt.graph);
       b <= MinValidBudget(dwt.graph) + 256; b += 128) {
    EXPECT_LE(optimal.CostOnly(b), greedy.CostOnly(b));
  }
}

INSTANTIATE_TEST_SUITE_P(MidSize, DwtPropertyTest,
                         ::testing::Values(std::tuple{16, 4}, std::tuple{32, 5},
                                           std::tuple{48, 4},
                                           std::tuple{64, 6},
                                           std::tuple{128, 7},
                                           std::tuple{256, 8}));

// ---------------------------------------------------------------------------
// Published headline numbers (Table 1).
// ---------------------------------------------------------------------------

TEST(DwtOptimal, Table1EqualMinimumMemoryIsTenWords) {
  const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::Equal());
  DwtOptimalScheduler optimal(dwt);
  const Weight bits = optimal.MinMemoryForLowerBound(kWordBits, 1 << 16);
  EXPECT_EQ(bits, 160);  // 10 words of 16 bits
}

TEST(DwtOptimal, Table1DoubleAccumulatorMinimumMemoryIs18Words) {
  const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::DoubleAccumulator());
  DwtOptimalScheduler optimal(dwt);
  const Weight bits = optimal.MinMemoryForLowerBound(kWordBits, 1 << 16);
  EXPECT_EQ(bits, 288);  // 18 words of 16 bits
}

TEST(DwtOptimal, MinMemoryScheduleIsValidAndMeetsLowerBound) {
  const DwtGraph dwt = BuildDwt(256, 8, PrecisionConfig::Equal());
  DwtOptimalScheduler optimal(dwt);
  const Weight bits = optimal.MinMemoryForLowerBound(kWordBits, 1 << 16);
  const auto run = optimal.Run(bits);
  ASSERT_TRUE(run.feasible);
  const SimResult sim = testing::ExpectValid(dwt.graph, bits, run.schedule);
  EXPECT_EQ(sim.cost, AlgorithmicLowerBound(dwt.graph));
  EXPECT_LE(sim.peak_red_weight, bits);
}

// Lemma 3.4 at ample memory: every input and output moves exactly once.
TEST(DwtOptimal, CostDecompositionAtAmpleMemory) {
  const DwtGraph dwt = BuildDwt(64, 6, PrecisionConfig::DoubleAccumulator());
  DwtOptimalScheduler optimal(dwt);
  const auto run = optimal.Run(dwt.graph.total_weight());
  ASSERT_TRUE(run.feasible);
  const SimResult sim =
      testing::ExpectValid(dwt.graph, dwt.graph.total_weight(), run.schedule);
  EXPECT_EQ(sim.loads, dwt.graph.sources().size());
  EXPECT_EQ(sim.stores, dwt.graph.sinks().size());
}

}  // namespace
}  // namespace wrbpg
