#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/analysis.h"
#include "dataflows/butterfly_graph.h"
#include "exec/executor.h"
#include "exec/extended_kernels.h"
#include "schedulers/belady.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/layer_by_layer.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

class ButterflyStructureTest
    : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ButterflyStructureTest, RadixTwoWiring) {
  const std::int64_t n = GetParam();
  const ButterflyGraph bf = BuildButterfly(n);
  const int stages = bf.stages;
  EXPECT_EQ(std::int64_t{1} << stages, n);
  EXPECT_EQ(bf.graph.num_nodes(),
            static_cast<std::size_t>(n) * static_cast<std::size_t>(stages + 1));
  EXPECT_EQ(bf.graph.sources().size(), static_cast<std::size_t>(n));
  EXPECT_EQ(bf.graph.sinks().size(), static_cast<std::size_t>(n));

  for (int s = 1; s <= stages; ++s) {
    const std::int64_t bit = std::int64_t{1} << (s - 1);
    for (std::int64_t j = 0; j < n; ++j) {
      const auto parents = bf.graph.parents(bf.at(s, j));
      ASSERT_EQ(parents.size(), 2u);
      EXPECT_EQ(parents[0], bf.at(s - 1, std::min(j, j ^ bit)));
      EXPECT_EQ(parents[1], bf.at(s - 1, std::max(j, j ^ bit)));
    }
  }
  // Every non-output value feeds exactly two butterflies.
  for (int s = 0; s < stages; ++s) {
    for (std::int64_t j = 0; j < n; ++j) {
      EXPECT_EQ(bf.graph.out_degree(bf.at(s, j)), 2u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ButterflyStructureTest,
                         ::testing::Values(2, 4, 8, 16, 64));

TEST(ButterflyKernel, FastWhtIsAnInvolutionUpToScale) {
  Rng rng(3);
  std::vector<double> x(32);
  for (auto& v : x) v = rng.UniformDouble() * 2.0 - 1.0;
  const auto twice = FastWht(FastWht(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(twice[i], 32.0 * x[i], 1e-9);
  }
}

TEST(ButterflyKernel, ReferenceMatchesFastWht) {
  const ButterflyGraph bf = BuildButterfly(16);
  Rng rng(7);
  std::vector<double> x(16);
  for (auto& v : x) v = rng.UniformDouble();
  const auto values = WhtReferenceValues(bf, x);
  const auto direct = FastWht(x);
  for (std::int64_t j = 0; j < 16; ++j) {
    EXPECT_DOUBLE_EQ(values[bf.at(bf.stages, j)],
                     direct[static_cast<std::size_t>(j)]);
  }
}

class ButterflyScheduleTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ButterflyScheduleTest, SchedulesComputeTheTransformExactly) {
  const std::int64_t n = GetParam();
  const ButterflyGraph bf = BuildButterfly(n);
  Rng rng(13);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.UniformDouble() * 2.0 - 1.0;
  std::vector<double> sources(bf.graph.num_nodes(), 0.0);
  for (std::size_t j = 0; j < x.size(); ++j) sources[bf.layers[0][j]] = x[j];
  const auto expected = WhtReferenceValues(bf, x);
  const NodeOp op = MakeWhtNodeOp(bf);

  const Weight budget = MinValidBudget(bf.graph) + 96;
  LayerByLayerScheduler baseline(bf.graph, bf.layers);
  BeladyScheduler belady(bf.graph);
  for (const Schedule& schedule :
       {baseline.Run(budget).schedule, belady.Run(budget).schedule}) {
    ASSERT_FALSE(schedule.empty());
    testing::ExpectValid(bf.graph, budget, schedule);
    const ExecResult exec =
        ExecuteSchedule(bf.graph, budget, schedule, op, sources);
    ASSERT_TRUE(exec.ok) << exec.error;
    for (NodeId s : bf.graph.sinks()) {
      EXPECT_DOUBLE_EQ(exec.slow_values[s], expected[s]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ButterflyScheduleTest,
                         ::testing::Values(4, 8, 16, 32));

TEST(ButterflySchedule, AmpleMemoryReachesLowerBound) {
  const ButterflyGraph bf = BuildButterfly(32);
  BeladyScheduler belady(bf.graph);
  EXPECT_EQ(belady.CostOnly(bf.graph.total_weight()),
            AlgorithmicLowerBound(bf.graph));
}

}  // namespace
}  // namespace wrbpg
