#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/graph.h"
#include "core/graph_builder.h"
#include "tests/test_helpers.h"

namespace wrbpg {
namespace {

using testing::MakeChain;
using testing::MakeDiamond;

TEST(GraphBuilder, BuildsDiamond) {
  const Graph g = MakeDiamond({3, 5, 7, 11, 13});
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.weight(0), 3);
  EXPECT_EQ(g.weight(4), 13);
  EXPECT_EQ(g.total_weight(), 3 + 5 + 7 + 11 + 13);
}

TEST(GraphBuilder, AdjacencyMatchesEdges) {
  const Graph g = MakeDiamond();
  EXPECT_TRUE(g.parents(0).empty());
  ASSERT_EQ(g.parents(2).size(), 2u);
  EXPECT_EQ(g.parents(2)[0], 0u);
  EXPECT_EQ(g.parents(2)[1], 1u);
  ASSERT_EQ(g.parents(3).size(), 1u);
  EXPECT_EQ(g.parents(3)[0], 1u);
  ASSERT_EQ(g.children(1).size(), 2u);
  EXPECT_EQ(g.children(1)[0], 2u);
  EXPECT_EQ(g.children(1)[1], 3u);
  EXPECT_TRUE(g.children(4).empty());
}

TEST(GraphBuilder, SourcesAndSinks) {
  const Graph g = MakeDiamond();
  EXPECT_EQ(g.sources(), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(g.sinks(), (std::vector<NodeId>{4}));
  EXPECT_TRUE(g.is_source(0));
  EXPECT_FALSE(g.is_source(2));
  EXPECT_TRUE(g.is_sink(4));
  EXPECT_FALSE(g.is_sink(1));
}

TEST(GraphBuilder, TopologicalOrderRespectsEdges) {
  const Graph g = MakeDiamond();
  const auto& topo = g.topological_order();
  ASSERT_EQ(topo.size(), 5u);
  std::vector<std::size_t> pos(5);
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId c : g.children(v)) EXPECT_LT(pos[v], pos[c]);
  }
}

TEST(GraphBuilder, RejectsNonPositiveWeight) {
  GraphBuilder b;
  b.AddNode(0);
  b.AddNode(1);
  b.AddEdge(0, 1);
  const auto r = b.Build();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("non-positive weight"), std::string::npos);
}

TEST(GraphBuilder, RejectsSelfLoop) {
  GraphBuilder b;
  b.AddNode(1);
  b.AddNode(1);
  b.AddEdge(0, 0);
  b.AddEdge(0, 1);
  const auto r = b.Build();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("self-loop"), std::string::npos);
}

TEST(GraphBuilder, RejectsDuplicateEdge) {
  GraphBuilder b;
  b.AddNode(1);
  b.AddNode(1);
  b.AddEdge(0, 1);
  b.AddEdge(0, 1);
  const auto r = b.Build();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate edge"), std::string::npos);
}

TEST(GraphBuilder, RejectsOutOfRangeEdge) {
  GraphBuilder b;
  b.AddNode(1);
  b.AddEdge(0, 5);
  const auto r = b.Build();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("out of range"), std::string::npos);
}

TEST(GraphBuilder, RejectsCycle) {
  GraphBuilder b;
  b.AddNode(1);
  b.AddNode(1);
  b.AddNode(1);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  const auto r = b.Build();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("cycle"), std::string::npos);
}

TEST(GraphBuilder, RejectsIsolatedNodeByDefault) {
  GraphBuilder b;
  b.AddNode(1);
  b.AddNode(1);
  b.AddNode(1);
  b.AddEdge(0, 1);
  const auto r = b.Build();
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("both source and sink"), std::string::npos);
}

TEST(GraphBuilder, IsolatedNodeAllowedWhenRelaxed) {
  GraphBuilder b;
  b.AddNode(1);
  const auto r = b.Build({.require_disjoint_sources_sinks = false});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.graph.num_nodes(), 1u);
}

TEST(GraphBuilder, NamesArePreserved) {
  GraphBuilder b;
  b.AddNode(1, "alpha");
  b.AddNode(2);
  b.AddEdge(0, 1);
  const Graph g = b.BuildOrDie();
  EXPECT_EQ(g.name(0), "alpha");
  EXPECT_EQ(g.name(1), "");
}

TEST(GraphBuilder, NeighborsAreSorted) {
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.AddNode(1);
  // Insert parents of node 3 out of order.
  b.AddEdge(2, 3);
  b.AddEdge(0, 3);
  b.AddEdge(1, 3);
  const Graph g = b.BuildOrDie();
  ASSERT_EQ(g.parents(3).size(), 3u);
  EXPECT_TRUE(std::is_sorted(g.parents(3).begin(), g.parents(3).end()));
}

TEST(Graph, ChainStructure) {
  const Graph g = MakeChain(6, 4);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.sources(), (std::vector<NodeId>{0}));
  EXPECT_EQ(g.sinks(), (std::vector<NodeId>{5}));
  for (NodeId v = 1; v < 6; ++v) {
    ASSERT_EQ(g.in_degree(v), 1u);
    EXPECT_EQ(g.parents(v)[0], v - 1);
  }
  EXPECT_EQ(g.total_weight(), 24);
}

TEST(Graph, EmptyGraphDefaults) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.total_weight(), 0);
}

}  // namespace
}  // namespace wrbpg
