// wrbpg-bin-v1 (core/binio.h): round-trips across every graph family,
// spec conformance against an independent encoder, and decode hardening —
// every strict prefix rejected, every single-byte corruption rejected,
// hostile declared counts rejected before allocation.
#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/binio.h"
#include "core/graph.h"
#include "core/graph_builder.h"
#include "core/schedule.h"
#include "core/serialize.h"
#include "dataflows/builtin_spec.h"
#include "schedulers/greedy_topo.h"

namespace wrbpg {
namespace {

// Independent little-endian encoder implementing the documented layout
// (binio.h / docs/FORMATS.md). Tests build streams with it and require
// ToBinary to produce the SAME bytes — so the written spec, not just the
// implementation, is what round-trips.
class SpecEncoder {
 public:
  explicit SpecEncoder(std::uint8_t kind) {
    bytes_ = "WBIN";
    bytes_.push_back('\x01');  // version
    bytes_.push_back(static_cast<char>(kind));
    bytes_.push_back('\x00');  // reserved
    bytes_.push_back('\x00');
  }

  SpecEncoder& U8(std::uint8_t v) {
    bytes_.push_back(static_cast<char>(v));
    return *this;
  }
  SpecEncoder& U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    return *this;
  }
  SpecEncoder& U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
    return *this;
  }
  SpecEncoder& Raw(std::string_view s) {
    bytes_.append(s);
    return *this;
  }

  // Appends the FNV-1a-64 footer over everything so far.
  std::string Finish() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes_) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    std::string out = bytes_;
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>((h >> (8 * i)) & 0xff));
    }
    return out;
  }

 private:
  std::string bytes_;
};

Graph Diamond() {
  GraphBuilder b;
  const NodeId a = b.AddNode(16, "in");
  const NodeId l = b.AddNode(8, "left");
  const NodeId r = b.AddNode(8, "right");
  const NodeId z = b.AddNode(32, "out");
  b.AddEdge(a, l);
  b.AddEdge(a, r);
  b.AddEdge(l, z);
  b.AddEdge(r, z);
  return b.BuildOrDie();
}

void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.weight(v), b.weight(v)) << "node " << v;
    EXPECT_EQ(a.name(v), b.name(v)) << "node " << v;
    ASSERT_EQ(a.parents(v).size(), b.parents(v).size()) << "node " << v;
    for (std::size_t i = 0; i < a.parents(v).size(); ++i) {
      EXPECT_EQ(a.parents(v)[i], b.parents(v)[i]);
    }
  }
}

TEST(BinIo, RoundTripsEveryBuiltinFamily) {
  const std::vector<std::string> specs = {"dwt:8,2",    "kary:3,2",
                                          "mvm:3,4",    "butterfly:4",
                                          "random:3,4,7"};
  for (const std::string& spec : specs) {
    const BuiltinGraph built = BuildBuiltinGraph(spec);
    ASSERT_TRUE(built.ok) << spec;
    const std::string bytes = ToBinary(built.graph());
    EXPECT_TRUE(LooksLikeBinary(bytes));
    const GraphParseResult parsed = ParseGraphBinary(bytes);
    ASSERT_TRUE(parsed.ok) << spec << ": " << parsed.error;
    ExpectSameGraph(built.graph(), parsed.graph);
    // Canonical: re-encoding the decoded graph reproduces the bytes.
    EXPECT_EQ(ToBinary(parsed.graph), bytes) << spec;
  }
}

TEST(BinIo, RoundTripsNamedNodes) {
  const Graph g = Diamond();
  const GraphParseResult parsed = ParseGraphBinary(ToBinary(g));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ExpectSameGraph(g, parsed.graph);
  EXPECT_EQ(parsed.graph.name(0), "in");
  EXPECT_EQ(parsed.graph.name(3), "out");
}

TEST(BinIo, RoundTripsSchedules) {
  const Graph g = Diamond();
  const ScheduleResult result = GreedyTopoScheduler(g).Run(64);
  ASSERT_TRUE(result.feasible);
  ASSERT_FALSE(result.schedule.empty());
  const std::string bytes = ToBinary(result.schedule);
  EXPECT_TRUE(LooksLikeBinary(bytes));
  const ScheduleParseResult parsed = ParseScheduleBinary(bytes);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.schedule, result.schedule);
  EXPECT_EQ(ToBinary(parsed.schedule), bytes);
}

TEST(BinIo, MatchesTheWrittenSpec) {
  // Hand-encode the 2-node chain {a(16) -> b(8)} per the documented
  // layout and require both byte-equality with ToBinary and a clean
  // decode. If this fails, either the implementation or FORMATS.md is
  // wrong — fix the drift, whichever side it is on.
  GraphBuilder b;
  const NodeId u = b.AddNode(16);
  const NodeId v = b.AddNode(8);
  b.AddEdge(u, v);
  const Graph g = b.BuildOrDie();

  SpecEncoder enc(kBinKindGraph);
  enc.U32(2).U32(1);       // num_nodes, num_edges
  enc.U64(16).U64(8);      // weights
  enc.U8(0);               // names_present
  enc.U32(0).U32(1);       // edge (0, 1)
  const std::string spec_bytes = enc.Finish();
  EXPECT_EQ(ToBinary(g), spec_bytes);
  EXPECT_TRUE(ParseGraphBinary(spec_bytes).ok);
}

TEST(BinIo, RejectsEveryStrictPrefix) {
  const std::string graph_bytes = ToBinary(Diamond());
  for (std::size_t len = 0; len < graph_bytes.size(); ++len) {
    const GraphParseResult parsed =
        ParseGraphBinary(std::string_view(graph_bytes).substr(0, len));
    EXPECT_FALSE(parsed.ok) << "prefix of length " << len << " accepted";
    EXPECT_FALSE(parsed.error.empty()) << len;
  }
  const ScheduleResult sched = GreedyTopoScheduler(Diamond()).Run(64);
  ASSERT_TRUE(sched.feasible);
  const std::string sched_bytes = ToBinary(sched.schedule);
  for (std::size_t len = 0; len < sched_bytes.size(); ++len) {
    EXPECT_FALSE(
        ParseScheduleBinary(std::string_view(sched_bytes).substr(0, len)).ok)
        << "prefix of length " << len << " accepted";
  }
}

TEST(BinIo, RejectsEverySingleByteCorruption) {
  // The FNV-1a-64 footer must catch ANY single-byte change anywhere in
  // the stream (including in the footer itself). Exhaustive over
  // positions, seeded-random over replacement values.
  const std::string bytes = ToBinary(Diamond());
  std::mt19937_64 rng(0x5eed);
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    const auto original = static_cast<std::uint8_t>(corrupt[pos]);
    std::uint8_t replacement = original;
    while (replacement == original) {
      replacement = static_cast<std::uint8_t>(rng());
    }
    corrupt[pos] = static_cast<char>(replacement);
    const GraphParseResult parsed = ParseGraphBinary(corrupt);
    EXPECT_FALSE(parsed.ok) << "byte " << pos << " flip accepted";
  }
}

TEST(BinIo, RejectsTrailingBytes) {
  std::string bytes = ToBinary(Diamond());
  bytes.push_back('\x00');
  EXPECT_FALSE(ParseGraphBinary(bytes).ok);
}

TEST(BinIo, RejectsWrongEnvelope) {
  const std::string good = ToBinary(Diamond());
  // Graph decoder fed a schedule stream (and vice versa): wrong kind.
  const ScheduleResult sched = GreedyTopoScheduler(Diamond()).Run(64);
  ASSERT_TRUE(sched.feasible);
  const std::string sched_bytes = ToBinary(sched.schedule);
  GraphParseResult as_graph = ParseGraphBinary(sched_bytes);
  EXPECT_FALSE(as_graph.ok);
  EXPECT_NE(as_graph.error.find("kind"), std::string::npos);
  EXPECT_FALSE(ParseScheduleBinary(good).ok);
  // Text input is not binary.
  EXPECT_FALSE(LooksLikeBinary(ToText(Diamond())));
  EXPECT_FALSE(ParseGraphBinary(ToText(Diamond())).ok);
}

TEST(BinIo, RejectsHostileDeclaredCounts) {
  // A tiny stream claiming 2^31 nodes must be rejected by the
  // count-vs-remaining-bytes guard, not by an allocation attempt.
  SpecEncoder nodes(kBinKindGraph);
  nodes.U32(0x7fffffffu).U32(0);
  GraphParseResult r = ParseGraphBinary(nodes.Finish());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("exceeds the remaining payload"), std::string::npos);

  SpecEncoder edges(kBinKindGraph);
  edges.U32(1).U32(0x7fffffffu).U64(16).U8(0);
  r = ParseGraphBinary(edges.Finish());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("exceeds the remaining payload"), std::string::npos);

  SpecEncoder moves(kBinKindSchedule);
  moves.U32(0xffffffffu);
  EXPECT_FALSE(ParseScheduleBinary(moves.Finish()).ok);
}

TEST(BinIo, RejectsModelViolations) {
  // Zero weight.
  SpecEncoder zero_w(kBinKindGraph);
  zero_w.U32(1).U32(0).U64(0).U8(0);
  GraphParseResult r = ParseGraphBinary(zero_w.Finish());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("non-positive weight"), std::string::npos);

  // Edge referencing an undeclared node.
  SpecEncoder bad_edge(kBinKindGraph);
  bad_edge.U32(2).U32(1).U64(16).U64(8).U8(0).U32(0).U32(7);
  r = ParseGraphBinary(bad_edge.Finish());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("undeclared node"), std::string::npos);

  // Self-loop.
  SpecEncoder self_loop(kBinKindGraph);
  self_loop.U32(2).U32(1).U64(16).U64(8).U8(0).U32(1).U32(1);
  r = ParseGraphBinary(self_loop.Finish());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("self-loop"), std::string::npos);

  // Duplicate edge.
  SpecEncoder dup(kBinKindGraph);
  dup.U32(2).U32(2).U64(16).U64(8).U8(0).U32(0).U32(1).U32(0).U32(1);
  r = ParseGraphBinary(dup.Finish());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("duplicate edge"), std::string::npos);

  // Cycle (caught by GraphBuilder validation, same as the text parser).
  SpecEncoder cycle(kBinKindGraph);
  cycle.U32(3).U32(3).U64(16).U64(8).U64(8).U8(0);
  cycle.U32(0).U32(1).U32(1).U32(2).U32(2).U32(0);
  EXPECT_FALSE(ParseGraphBinary(cycle.Finish()).ok);

  // Invalid move type.
  SpecEncoder bad_move(kBinKindSchedule);
  bad_move.U32(1).U8(9).U32(0);
  const ScheduleParseResult s = ParseScheduleBinary(bad_move.Finish());
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.error.find("invalid type"), std::string::npos);
}

TEST(BinIo, RejectsBadVersionAndReserved) {
  std::string bytes = ToBinary(Diamond());
  {
    std::string v2 = bytes;
    v2[4] = '\x02';
    const GraphParseResult r = ParseGraphBinary(v2);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("version"), std::string::npos);
  }
  {
    std::string reserved = bytes;
    reserved[6] = '\x01';
    EXPECT_FALSE(ParseGraphBinary(reserved).ok);
  }
  {
    std::string magic = bytes;
    magic[0] = 'X';
    const GraphParseResult r = ParseGraphBinary(magic);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("magic"), std::string::npos);
  }
}

}  // namespace
}  // namespace wrbpg
