// Deadline-aware fallback chain + cooperative cancellation.
//
// Acceptance claim (ISSUE): on a random DAG too large for an exact
// solve, RobustScheduler returns a valid schedule within a 100 ms
// deadline — the bb exact stage contributes its anytime incumbent with
// a certified optimality gap (provenance kAnytimeIncumbent) instead of
// timing out empty-handed.
#include <gtest/gtest.h>

#include <chrono>

#include "core/analysis.h"
#include "core/simulator.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/random_dag.h"
#include "robust/robust_scheduler.h"
#include "dataflows/tree_graph.h"
#include "schedulers/brute_force.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/kary_tree.h"
#include "tests/test_helpers.h"
#include "util/cancel.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

TEST(CancelToken, ManualCancelIsSharedAcrossCopies) {
  CancelToken token;
  const CancelToken copy = token;
  EXPECT_FALSE(copy.cancelled());
  token.Cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(CancelToken, DeadlineExpiryLatches) {
  const CancelToken token = CancelToken::WithDeadlineMs(0.0);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.remaining()->count(), 0);
}

TEST(CancelToken, UncancelledTokenReportsRemainingTime) {
  const CancelToken token = CancelToken::WithDeadlineMs(60'000);
  EXPECT_FALSE(token.cancelled());
  EXPECT_GT(token.remaining()->count(), 0);
  const CancelToken unbounded;
  EXPECT_FALSE(unbounded.remaining().has_value());
}

TEST(CancelToken, BruteForceUnwindsWithTimedOut) {
  const Graph g = testing::MakeDiamond();
  CancelToken token;
  token.Cancel();
  BruteForceOptions options;
  options.cancel = &token;
  const ScheduleResult r =
      BruteForceScheduler(g).Run(MinValidBudget(g) + 2, options);
  EXPECT_TRUE(r.timed_out);
  EXPECT_FALSE(r.feasible);
}

TEST(CancelToken, MaxStatesValveReturnsTimedOutInsteadOfAborting) {
  Rng rng(0xabcdu);
  const Graph dag = BuildRandomDag(rng, {.num_layers = 4,
                                         .nodes_per_layer = 4,
                                         .max_in_degree = 3});
  BruteForceOptions options;
  options.max_states = 100;  // far too few for a 16-node search
  const ScheduleResult r =
      BruteForceScheduler(dag).Run(MinValidBudget(dag) + 8, options);
  EXPECT_TRUE(r.timed_out);
}

TEST(CancelToken, BudgetSearchReturnsNulloptWhenCancelled) {
  const Graph g = testing::MakeChain(6);
  BruteForceScheduler sched(g);
  const CostFn cost_fn = [&](Weight b) { return sched.CostOnly(b); };
  CancelToken token;
  token.Cancel();
  MinMemoryOptions options;
  options.hi = 16;
  options.cancel = &token;
  EXPECT_FALSE(
      FindMinimumFastMemory(cost_fn, AlgorithmicLowerBound(g), options)
          .has_value());
}

TEST(CancelToken, DwtDpUnwindsAndStaysCorrectAfterCancellation) {
  const DwtGraph dwt = BuildDwt(32, 3);
  const Weight budget = MinValidBudget(dwt.graph) + 8;
  const Weight honest = DwtOptimalScheduler(dwt).CostOnly(budget);
  ASSERT_LT(honest, kInfiniteCost);

  // Cancel against a FRESH instance so the memo tables are cold; warm
  // memo entries are honest results and may legitimately answer anyway.
  DwtOptimalScheduler sched(dwt);
  CancelToken token;
  token.Cancel();
  EXPECT_EQ(sched.CostOnly(budget, &token), kInfiniteCost);
  EXPECT_TRUE(sched.Run(budget, &token).timed_out);

  // A cancelled run must not have polluted the memo tables: the same
  // scheduler instance still produces the honest answer afterwards.
  EXPECT_EQ(sched.CostOnly(budget), honest);
}

TEST(RobustScheduler, ExactStageWinsOnSmallGraphs) {
  const Graph g = testing::MakeDiamond({3, 5, 7, 11, 13});
  const Weight budget = MinValidBudget(g) + 4;
  const RobustResult r = RobustScheduler(g).Run(budget);
  ASSERT_TRUE(r.result.feasible);
  EXPECT_EQ(r.winner, "exact");
  EXPECT_EQ(r.stage("exact")->outcome, StageOutcome::kWinner);
  EXPECT_EQ(r.result.cost, BruteForceScheduler(g).CostOnly(budget));
  testing::ExpectValid(g, budget, r.result.schedule);
  // The heuristics never ran: an optimal answer settles the chain.
  EXPECT_EQ(r.stage("belady")->outcome, StageOutcome::kNotRun);
  EXPECT_EQ(r.stage("greedy-topo")->outcome, StageOutcome::kNotRun);
}

TEST(RobustScheduler, OversizedGraphSkipsExactWithAReason) {
  Rng rng(0x9e1u);
  const Graph dag = BuildRandomDag(rng, {.num_layers = 6,
                                         .nodes_per_layer = 6,
                                         .max_in_degree = 3});
  ASSERT_GT(dag.num_nodes(), RobustOptions{}.exact_max_nodes);
  const Weight budget = MinValidBudget(dag) + 16;
  const RobustResult r = RobustScheduler(dag).Run(budget);
  ASSERT_TRUE(r.result.feasible);
  EXPECT_EQ(r.stage("exact")->outcome, StageOutcome::kSkipped);
  EXPECT_FALSE(r.stage("exact")->detail.empty());
  EXPECT_TRUE(r.winner == "belady" || r.winner == "greedy-topo") << r.winner;
  testing::ExpectValid(dag, budget, r.result.schedule);
}

// The acceptance scenario: a DAG whose state space no exact engine can
// exhaust in the slice, a 100 ms total deadline. The bb exact stage runs
// (under a deadline it runs at ANY size), is interrupted, and still
// contributes a valid schedule — either a proven optimum if the search
// happened to finish, or an anytime incumbent with a certified gap. The
// chain answers within milliseconds either way.
TEST(RobustScheduler, DeadlineAnswersWithin100MsAndSoundGap) {
  Rng rng(0xdead11u);
  const Graph dag = BuildRandomDag(rng, {.num_layers = 8,
                                         .nodes_per_layer = 8,
                                         .max_in_degree = 3});
  ASSERT_EQ(dag.num_nodes(), 64u);  // far beyond the packed 32-node wall
  const Weight budget = MinValidBudget(dag) + 32;

  RobustOptions options;
  options.deadline_ms = 100;

  const auto start = std::chrono::steady_clock::now();
  const RobustResult r = RobustScheduler(dag).Run(budget, options);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  ASSERT_TRUE(r.result.feasible);
  testing::ExpectValid(dag, budget, r.result.schedule);
  // The exact stage ran and produced something — never a bare timeout,
  // never a skip: the bb engine always holds its seeded incumbent.
  const StageOutcome exact = r.stage("exact")->outcome;
  EXPECT_TRUE(exact == StageOutcome::kAnytimeIncumbent ||
              exact == StageOutcome::kWinner ||
              exact == StageOutcome::kCandidate)
      << ToString(exact);
  // Anytime contract on the chain's result.
  EXPECT_LE(r.result.lower_bound, r.result.cost);
  EXPECT_GE(r.result.lower_bound, AlgorithmicLowerBound(dag));
  EXPECT_EQ(r.result.optimality_gap, r.result.cost - r.result.lower_bound);
  // Generous multiple of the deadline to stay robust on loaded CI
  // machines; the point is "milliseconds, not the heat death of 4^64".
  EXPECT_LT(elapsed_ms, 2000.0);
}

// Provenance of an interrupted exact stage: with a deadline short enough
// that the 64-node search cannot possibly be exhausted, the exact stage
// reports kAnytimeIncumbent and its detail carries the certified gap.
TEST(RobustScheduler, InterruptedExactStageReportsAnytimeIncumbent) {
  Rng rng(0xdead11u);
  const Graph dag = BuildRandomDag(rng, {.num_layers = 10,
                                         .nodes_per_layer = 8,
                                         .max_in_degree = 3});
  ASSERT_EQ(dag.num_nodes(), 80u);
  const Weight budget = MinValidBudget(dag) + 32;

  RobustOptions options;
  options.deadline_ms = 60;
  const RobustResult r = RobustScheduler(dag).Run(budget, options);

  ASSERT_TRUE(r.result.feasible);
  testing::ExpectValid(dag, budget, r.result.schedule);
  const StageReport* exact = r.stage("exact");
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->outcome, StageOutcome::kAnytimeIncumbent);
  EXPECT_NE(exact->detail.find("anytime incumbent"), std::string::npos)
      << exact->detail;
  EXPECT_LT(exact->cost, kInfiniteCost);
}

TEST(RobustScheduler, DwtChainLetsAlgorithmOneWin) {
  const DwtGraph dwt = BuildDwt(64, 2);
  const Weight budget = MinValidBudget(dwt.graph) + 8;
  RobustOptions options;
  options.exact_max_nodes = 0;  // skip brute force; DWT DP should win
  const RobustResult r = RobustScheduler(dwt).Run(budget, options);
  ASSERT_TRUE(r.result.feasible);
  EXPECT_EQ(r.stage("exact")->outcome, StageOutcome::kSkipped);
  EXPECT_EQ(r.winner, "dwt-optimal");
  EXPECT_EQ(r.result.cost,
            DwtOptimalScheduler(dwt).CostOnly(budget));
  testing::ExpectValid(dwt.graph, budget, r.result.schedule);
}

// A bare 31-node graph that happens to be kary(2,4): too large for the
// exact stage (no deadline => size gate applies), but the recognition
// stage identifies the family and routes it to the closed-form DP — the
// chain returns the proven optimum without ever falling to heuristics.
TEST(RobustScheduler, RecognitionStageWinsOnUnlabeledKaryTree) {
  const Graph tree = BuildPerfectTree(2, 4).graph;
  ASSERT_GT(tree.num_nodes(), RobustOptions{}.exact_max_nodes);
  const Weight budget = MinValidBudget(tree);
  const RobustResult r = RobustScheduler(tree).Run(budget);
  ASSERT_TRUE(r.result.feasible);
  EXPECT_EQ(r.winner, "recognition");
  EXPECT_EQ(r.stage("recognition")->outcome, StageOutcome::kWinner);
  EXPECT_EQ(r.result.cost, KaryTreeScheduler(tree).CostOnly(budget));
  EXPECT_EQ(r.result.termination, Termination::kOptimal);
  testing::ExpectValid(tree, budget, r.result.schedule);
  // Proven optimal: the heuristic stages never ran.
  EXPECT_EQ(r.stage("belady")->outcome, StageOutcome::kNotRun);
  EXPECT_EQ(r.stage("greedy-topo")->outcome, StageOutcome::kNotRun);
}

// Same for a bare dwt(16,2) graph: recognition rediscovers (n, d), runs
// Algorithm 1 on the reference graph, and remaps the schedule back onto
// the caller's node ids — the remapped schedule must still simulate.
TEST(RobustScheduler, RecognitionStageWinsOnUnlabeledDwtGraph) {
  const DwtGraph dwt = BuildDwt(16, 2);
  const Graph& g = dwt.graph;  // plain Graph: no DwtGraph handed over
  const Weight budget = MinValidBudget(g) + 2;
  const RobustResult r = RobustScheduler(g).Run(budget);
  ASSERT_TRUE(r.result.feasible);
  EXPECT_EQ(r.winner, "recognition");
  EXPECT_EQ(r.result.cost, DwtOptimalScheduler(dwt).CostOnly(budget));
  EXPECT_EQ(r.result.termination, Termination::kOptimal);
  testing::ExpectValid(g, budget, r.result.schedule);
}

// When the caller hands over the DwtGraph wrapper, recognition defers to
// the dedicated dwt-optimal stage instead of duplicating its work.
TEST(RobustScheduler, RecognitionDefersWhenCallerNamesTheFamily) {
  const DwtGraph dwt = BuildDwt(16, 2);
  const Weight budget = MinValidBudget(dwt.graph) + 2;
  RobustOptions options;
  options.exact_max_nodes = 0;
  const RobustResult r = RobustScheduler(dwt).Run(budget, options);
  ASSERT_TRUE(r.result.feasible);
  EXPECT_EQ(r.stage("recognition")->outcome, StageOutcome::kSkipped);
  EXPECT_EQ(r.winner, "dwt-optimal");
}

TEST(RobustScheduler, HeuristicsBeatNothingButStillReportCandidates) {
  // With slack, belady and greedy both succeed; the cheaper one wins and
  // the other is recorded as a candidate (or both tie on cost).
  Rng rng(0x70b0u);
  const Graph dag = BuildRandomDag(rng, {.num_layers = 5,
                                         .nodes_per_layer = 5,
                                         .max_in_degree = 2});
  const Weight budget = MinValidBudget(dag) + 64;
  RobustOptions options;
  options.exact_max_nodes = 0;
  const RobustResult r = RobustScheduler(dag).Run(budget, options);
  ASSERT_TRUE(r.result.feasible);
  const StageReport* belady = r.stage("belady");
  const StageReport* greedy = r.stage("greedy-topo");
  ASSERT_NE(belady, nullptr);
  ASSERT_NE(greedy, nullptr);
  EXPECT_TRUE(belady->outcome == StageOutcome::kWinner ||
              belady->outcome == StageOutcome::kCandidate);
  EXPECT_TRUE(greedy->outcome == StageOutcome::kWinner ||
              greedy->outcome == StageOutcome::kCandidate);
  const Weight winning_cost = r.result.cost;
  EXPECT_LE(winning_cost, belady->cost);
  EXPECT_LE(winning_cost, greedy->cost);
}

TEST(RobustScheduler, InfeasibleBudgetReportsEveryStageInfeasible) {
  const Graph g = testing::MakeDiamond({8, 8, 8, 8, 8});
  const Weight budget = MinValidBudget(g) - 1;
  const RobustResult r = RobustScheduler(g).Run(budget);
  EXPECT_FALSE(r.result.feasible);
  EXPECT_TRUE(r.winner.empty());
  for (const StageReport& stage : r.stages) {
    EXPECT_TRUE(stage.outcome == StageOutcome::kInfeasible ||
                stage.outcome == StageOutcome::kSkipped)
        << stage.name << ": " << ToString(stage.outcome);
  }
}

}  // namespace
}  // namespace wrbpg
