#include <gtest/gtest.h>

#include "dataflows/dwt_graph.h"
#include "dataflows/tree_graph.h"
#include "tests/test_helpers.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

using testing::MakeChain;
using testing::MakeDiamond;

TEST(TreeRoot, DetectsChainRoot) {
  const Graph g = MakeChain(5);
  const auto root = TreeRoot(g);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(*root, 4u);
}

TEST(TreeRoot, RejectsDiamond) {
  // Node 1 has two children -> not an in-tree.
  EXPECT_FALSE(TreeRoot(MakeDiamond()).has_value());
}

TEST(TreeRoot, RejectsForest) {
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) b.AddNode(1);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);  // second component -> two sinks
  EXPECT_FALSE(TreeRoot(b.BuildOrDie()).has_value());
}

TEST(TreeRoot, AcceptsPrunedSingleTreeDwt) {
  const DwtGraph dwt = BuildDwt(8, 3);  // single subtree when n = 2^d
  const PrunedDwt pruned = PruneDwt(dwt);
  const auto root = TreeRoot(pruned.graph);
  ASSERT_TRUE(root.has_value());
  EXPECT_TRUE(pruned.graph.is_sink(*root));
}

TEST(PerfectTree, BinaryTwoLevels) {
  const TreeGraph t = BuildPerfectTree(2, 2);
  EXPECT_EQ(t.graph.num_nodes(), 7u);  // 1 + 2 + 4
  EXPECT_EQ(t.max_in_degree, 2);
  EXPECT_EQ(t.graph.sources().size(), 4u);
  EXPECT_EQ(t.graph.sinks().size(), 1u);
  EXPECT_EQ(TreeRoot(t.graph).value(), t.root);
  for (NodeId v = 0; v < t.graph.num_nodes(); ++v) {
    EXPECT_TRUE(t.graph.in_degree(v) == 0 || t.graph.in_degree(v) == 2);
  }
}

TEST(PerfectTree, TernaryNodeCount) {
  const TreeGraph t = BuildPerfectTree(3, 3);
  EXPECT_EQ(t.graph.num_nodes(), 1u + 3u + 9u + 27u);
  EXPECT_EQ(t.graph.sources().size(), 27u);
}

TEST(PerfectTree, UnaryIsChain) {
  const TreeGraph t = BuildPerfectTree(1, 4);
  EXPECT_EQ(t.graph.num_nodes(), 5u);
  EXPECT_EQ(t.graph.sources().size(), 1u);
}

TEST(PerfectTree, WeightsFollowConfig) {
  const TreeGraph t =
      BuildPerfectTree(2, 2, PrecisionConfig::DoubleAccumulator());
  for (NodeId v = 0; v < t.graph.num_nodes(); ++v) {
    EXPECT_EQ(t.graph.weight(v), t.graph.is_source(v) ? 16 : 32);
  }
}

class RandomTreeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeTest, GeneratesValidInTrees) {
  Rng rng(GetParam());
  const RandomTreeOptions options{.max_k = 4, .max_internal = 8,
                                  .min_weight = 1, .max_weight = 9};
  const TreeGraph t = BuildRandomTree(rng, options);
  const auto root = TreeRoot(t.graph);
  ASSERT_TRUE(root.has_value());
  EXPECT_EQ(*root, t.root);
  int max_k = 0;
  for (NodeId v = 0; v < t.graph.num_nodes(); ++v) {
    max_k = std::max(max_k, static_cast<int>(t.graph.in_degree(v)));
    EXPECT_GE(t.graph.weight(v), options.min_weight);
    EXPECT_LE(t.graph.weight(v), options.max_weight);
  }
  EXPECT_LE(max_k, options.max_k);
  EXPECT_EQ(max_k, t.max_in_degree);
}

TEST_P(RandomTreeTest, DeterministicForSeed) {
  Rng rng1(GetParam()), rng2(GetParam());
  const TreeGraph a = BuildRandomTree(rng1);
  const TreeGraph b = BuildRandomTree(rng2);
  ASSERT_EQ(a.graph.num_nodes(), b.graph.num_nodes());
  for (NodeId v = 0; v < a.graph.num_nodes(); ++v) {
    EXPECT_EQ(a.graph.weight(v), b.graph.weight(v));
    ASSERT_EQ(a.graph.parents(v).size(), b.graph.parents(v).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace wrbpg
