#include "schedulers/belady.h"

#include <algorithm>
#include <cassert>

#include "core/analysis.h"
#include "lint/liveness.h"

namespace wrbpg {
namespace {

// "Value is never consumed again" — the shared liveness sentinel.
constexpr std::size_t kNever = kNoUse;

}  // namespace

BeladyScheduler::BeladyScheduler(const Graph& graph) : graph_(graph) {
  for (NodeId v : graph.topological_order()) {
    if (!graph.is_source(v)) order_.push_back(v);
  }
}

BeladyScheduler::BeladyScheduler(const Graph& graph, std::vector<NodeId> order)
    : graph_(graph), order_(std::move(order)) {
#ifndef NDEBUG
  std::vector<unsigned char> seen(graph.num_nodes(), 0);
  for (NodeId v : order_) {
    assert(!graph.is_source(v) && !seen[v]);
    seen[v] = 1;
  }
  std::size_t non_sources = 0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (!graph.is_source(v)) ++non_sources;
  }
  assert(order_.size() == non_sources);
#endif
}

ScheduleResult BeladyScheduler::Run(Weight budget) const {
  const NodeId n = graph_.num_nodes();

  // Next-use oracle over the compute sequence (shared liveness module).
  const UseTimeline timeline = UseTimeline::OverComputeOrder(graph_, order_);
  auto next_use = [&](NodeId p, std::size_t t) {
    return timeline.NextUseAt(p, t);
  };

  ScheduleResult result;
  Schedule& s = result.schedule;
  std::vector<unsigned char> red(n, 0);
  std::vector<unsigned char> blue(n, 0);
  std::vector<unsigned char> pinned(n, 0);
  for (NodeId v : graph_.sources()) blue[v] = 1;
  std::vector<NodeId> resident;  // nodes currently red, unordered
  Weight red_weight = 0;
  Weight cost = 0;

  auto place = [&](NodeId v) {
    red[v] = 1;
    red_weight += graph_.weight(v);
    resident.push_back(v);
  };
  auto drop = [&](NodeId v) {
    s.Append(Delete(v));
    red[v] = 0;
    red_weight -= graph_.weight(v);
    resident.erase(std::find(resident.begin(), resident.end(), v));
  };
  // Evict furthest-next-use values until `w` more bits fit at time t.
  auto make_room = [&](Weight w, std::size_t t) {
    while (red_weight + w > budget) {
      NodeId victim = kInvalidNode;
      std::size_t victim_use = 0;
      for (NodeId r : resident) {
        if (pinned[r]) continue;
        const std::size_t use = next_use(r, t);
        if (victim == kInvalidNode || use > victim_use ||
            (use == victim_use && graph_.weight(r) > graph_.weight(victim))) {
          victim = r;
          victim_use = use;
        }
      }
      if (victim == kInvalidNode) return false;
      if (victim_use != kNever && !blue[victim]) {
        s.Append(Store(victim));
        blue[victim] = 1;
        cost += graph_.weight(victim);
      }
      drop(victim);
    }
    return true;
  };

  for (std::size_t t = 0; t < order_.size(); ++t) {
    const NodeId v = order_[t];
    const auto parents = graph_.parents(v);
    pinned[v] = 1;
    for (NodeId p : parents) pinned[p] = 1;

    for (NodeId p : parents) {
      if (red[p]) continue;
      assert(blue[p] && "evicted value was not stored");
      if (!make_room(graph_.weight(p), t)) {
        return ScheduleResult::Infeasible();
      }
      s.Append(Load(p));
      cost += graph_.weight(p);
      place(p);
    }
    if (!make_room(graph_.weight(v), t)) return ScheduleResult::Infeasible();
    s.Append(Compute(v));
    place(v);

    pinned[v] = 0;
    for (NodeId p : parents) pinned[p] = 0;

    // Retire values that will never be consumed again.
    for (NodeId p : parents) {
      if (red[p] && next_use(p, t + 1) == kNever) drop(p);
    }
    if (graph_.is_sink(v)) {
      s.Append(Store(v));
      blue[v] = 1;
      cost += graph_.weight(v);
      drop(v);
    }
  }

  result.feasible = true;
  result.cost = cost;
  return result;
}

Weight BeladyScheduler::CostOnly(Weight budget) const {
  const ScheduleResult r = Run(budget);
  return r.feasible ? r.cost : kInfiniteCost;
}

Weight BeladyScheduler::MinMemoryForLowerBound(Weight step, Weight hi) const {
  const Weight target = AlgorithmicLowerBound(graph_);
  const auto found = FindMinimumFastMemory(
      [this](Weight b) { return CostOnly(b); }, target,
      {.lo = step, .hi = hi, .step = step, .monotone = false});
  return found.value_or(0);
}

}  // namespace wrbpg
