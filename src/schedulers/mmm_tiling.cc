#include "schedulers/mmm_tiling.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/analysis.h"
#include "util/mathutil.h"

namespace wrbpg {

MmmTilingScheduler::MmmTilingScheduler(const MmmGraph& mmm) : mmm_(mmm) {
  const Graph& g = mmm.graph;
  w_in_ = g.weight(mmm.a(0, 0));
  w_c_ = g.weight(mmm.product(0, 0, 0));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool is_input = mmm_.roles[v] == MmmRole::kMatrixAInput ||
                          mmm_.roles[v] == MmmRole::kMatrixBInput;
    if (g.weight(v) != (is_input ? w_in_ : w_c_)) {
      std::fprintf(stderr,
                   "MmmTilingScheduler: weights must be uniform per role\n");
      std::abort();
    }
  }
}

Weight MmmTilingScheduler::TileCost(const Tile& tile) const {
  const std::int64_t m = mmm_.m, k = mmm_.k, n = mmm_.n;
  const Weight lb = w_in_ * (m * k + k * n) + w_c_ * m * n;
  switch (tile.residency) {
    case Residency::kAResident:
    case Residency::kBResident:
      return lb;
    case Residency::kBlock: {
      if (tile.bi < 1 || tile.bi > m || tile.bj < 1 || tile.bj > n) {
        return kInfiniteCost;
      }
      const std::int64_t si = CeilDiv(m, tile.bi);  // row stripes
      const std::int64_t sj = CeilDiv(n, tile.bj);  // column stripes
      return w_in_ * (m * k * sj + k * n * si) + w_c_ * m * n;
    }
  }
  return kInfiniteCost;
}

Weight MmmTilingScheduler::TilePeak(const Tile& tile) const {
  const std::int64_t m = mmm_.m, k = mmm_.k, n = mmm_.n;
  const Weight chain_extra = k >= 2 ? 2 * w_c_ : 0;
  switch (tile.residency) {
    case Residency::kAResident:
      return m * k * w_in_ + w_in_ + m * w_c_ + chain_extra;
    case Residency::kBResident:
      return k * n * w_in_ + w_in_ + n * w_c_ + chain_extra;
    case Residency::kBlock: {
      if (tile.bi < 1 || tile.bi > m || tile.bj < 1 || tile.bj > n) {
        return kInfiniteCost;
      }
      return (tile.bi + tile.bj) * w_in_ + tile.bi * tile.bj * w_c_ +
             chain_extra;
    }
  }
  return kInfiniteCost;
}

std::optional<MmmTilingScheduler::Tile> MmmTilingScheduler::BestTile(
    Weight budget) const {
  std::optional<Tile> best;
  Weight best_cost = kInfiniteCost;
  auto consider = [&](const Tile& tile) {
    if (TilePeak(tile) > budget) return;
    const Weight cost = TileCost(tile);
    if (cost < best_cost) {
      best_cost = cost;
      best = tile;
    }
  };
  consider({.residency = Residency::kAResident});
  consider({.residency = Residency::kBResident});
  for (std::int64_t si = 1; si <= mmm_.m; ++si) {
    for (std::int64_t sj = 1; sj <= mmm_.n; ++sj) {
      consider({.residency = Residency::kBlock,
                .bi = CeilDiv(mmm_.m, si),
                .bj = CeilDiv(mmm_.n, sj)});
    }
  }
  return best;
}

Weight MmmTilingScheduler::CostOnly(Weight budget) const {
  const auto tile = BestTile(budget);
  return tile ? TileCost(*tile) : kInfiniteCost;
}

Weight MmmTilingScheduler::MinMemoryForLowerBound() const {
  const Weight lb = AlgorithmicLowerBound(mmm_.graph);
  Weight best = kInfiniteCost;
  auto consider = [&](const Tile& tile) {
    if (TileCost(tile) == lb) best = std::min(best, TilePeak(tile));
  };
  consider({.residency = Residency::kAResident});
  consider({.residency = Residency::kBResident});
  consider({.residency = Residency::kBlock, .bi = mmm_.m, .bj = mmm_.n});
  return best;
}

void MmmTilingScheduler::GenerateBlock(const Tile& tile, Schedule& out) const {
  const std::int64_t m = mmm_.m, k = mmm_.k, n = mmm_.n;
  std::vector<NodeId> running(static_cast<std::size_t>(m * n), kInvalidNode);
  auto run_at = [&](std::int64_t r, std::int64_t c) -> NodeId& {
    return running[static_cast<std::size_t>(r * n + c)];
  };

  for (std::int64_t r0 = 0; r0 < m; r0 += tile.bi) {
    const std::int64_t r1 = std::min(r0 + tile.bi, m);
    for (std::int64_t c0 = 0; c0 < n; c0 += tile.bj) {
      const std::int64_t c1 = std::min(c0 + tile.bj, n);
      for (std::int64_t kk = 0; kk < k; ++kk) {
        for (std::int64_t r = r0; r < r1; ++r) out.Append(Load(mmm_.a(r, kk)));
        for (std::int64_t c = c0; c < c1; ++c) out.Append(Load(mmm_.b(kk, c)));
        for (std::int64_t r = r0; r < r1; ++r) {
          for (std::int64_t c = c0; c < c1; ++c) {
            out.Append(Compute(mmm_.product(r, c, kk)));
            if (kk == 0) {
              run_at(r, c) = mmm_.product(r, c, 0);
            } else {
              out.Append(Compute(mmm_.accumulator(r, c, kk)));
              out.Append(Delete(run_at(r, c)));
              out.Append(Delete(mmm_.product(r, c, kk)));
              run_at(r, c) = mmm_.accumulator(r, c, kk);
            }
          }
        }
        for (std::int64_t r = r0; r < r1; ++r) {
          out.Append(Delete(mmm_.a(r, kk)));
        }
        for (std::int64_t c = c0; c < c1; ++c) {
          out.Append(Delete(mmm_.b(kk, c)));
        }
      }
      for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c) {
          out.Append(Store(run_at(r, c)));
          out.Append(Delete(run_at(r, c)));
        }
      }
    }
  }
}

void MmmTilingScheduler::GenerateResident(bool a_resident,
                                          Schedule& out) const {
  const std::int64_t m = mmm_.m, k = mmm_.k, n = mmm_.n;
  if (a_resident) {
    for (std::int64_t r = 0; r < m; ++r) {
      for (std::int64_t kk = 0; kk < k; ++kk) out.Append(Load(mmm_.a(r, kk)));
    }
    std::vector<NodeId> running(static_cast<std::size_t>(m));
    for (std::int64_t c = 0; c < n; ++c) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        out.Append(Load(mmm_.b(kk, c)));
        for (std::int64_t r = 0; r < m; ++r) {
          out.Append(Compute(mmm_.product(r, c, kk)));
          if (kk == 0) {
            running[static_cast<std::size_t>(r)] = mmm_.product(r, c, 0);
          } else {
            out.Append(Compute(mmm_.accumulator(r, c, kk)));
            out.Append(Delete(running[static_cast<std::size_t>(r)]));
            out.Append(Delete(mmm_.product(r, c, kk)));
            running[static_cast<std::size_t>(r)] = mmm_.accumulator(r, c, kk);
          }
        }
        out.Append(Delete(mmm_.b(kk, c)));
      }
      for (std::int64_t r = 0; r < m; ++r) {
        out.Append(Store(running[static_cast<std::size_t>(r)]));
        out.Append(Delete(running[static_cast<std::size_t>(r)]));
      }
    }
    for (std::int64_t r = 0; r < m; ++r) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        out.Append(Delete(mmm_.a(r, kk)));
      }
    }
  } else {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      for (std::int64_t c = 0; c < n; ++c) out.Append(Load(mmm_.b(kk, c)));
    }
    std::vector<NodeId> running(static_cast<std::size_t>(n));
    for (std::int64_t r = 0; r < m; ++r) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        out.Append(Load(mmm_.a(r, kk)));
        for (std::int64_t c = 0; c < n; ++c) {
          out.Append(Compute(mmm_.product(r, c, kk)));
          if (kk == 0) {
            running[static_cast<std::size_t>(c)] = mmm_.product(r, c, 0);
          } else {
            out.Append(Compute(mmm_.accumulator(r, c, kk)));
            out.Append(Delete(running[static_cast<std::size_t>(c)]));
            out.Append(Delete(mmm_.product(r, c, kk)));
            running[static_cast<std::size_t>(c)] = mmm_.accumulator(r, c, kk);
          }
        }
        out.Append(Delete(mmm_.a(r, kk)));
      }
      for (std::int64_t c = 0; c < n; ++c) {
        out.Append(Store(running[static_cast<std::size_t>(c)]));
        out.Append(Delete(running[static_cast<std::size_t>(c)]));
      }
    }
    for (std::int64_t kk = 0; kk < k; ++kk) {
      for (std::int64_t c = 0; c < n; ++c) {
        out.Append(Delete(mmm_.b(kk, c)));
      }
    }
  }
}

ScheduleResult MmmTilingScheduler::Run(Weight budget) const {
  const auto tile = BestTile(budget);
  if (!tile) return ScheduleResult::Infeasible();
  ScheduleResult result;
  result.feasible = true;
  result.cost = TileCost(*tile);
  switch (tile->residency) {
    case Residency::kBlock:
      GenerateBlock(*tile, result.schedule);
      break;
    case Residency::kAResident:
      GenerateResident(true, result.schedule);
      break;
    case Residency::kBResident:
      GenerateResident(false, result.schedule);
      break;
  }
  return result;
}

}  // namespace wrbpg
