#include "schedulers/layer_by_layer.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "core/analysis.h"

namespace wrbpg {

LayerByLayerScheduler::LayerByLayerScheduler(
    const Graph& graph, std::vector<std::vector<NodeId>> layers,
    bool alternate)
    : graph_(graph), layers_(std::move(layers)), alternate_(alternate) {
  assert(!layers_.empty());
#ifndef NDEBUG
  std::size_t covered = 0;
  for (const auto& layer : layers_) covered += layer.size();
  assert(covered == graph_.num_nodes());
  for (NodeId v : layers_[0]) assert(graph_.is_source(v));
#endif
}

ScheduleResult LayerByLayerScheduler::Run(Weight budget) const {
  ScheduleResult result;
  Schedule& s = result.schedule;

  const NodeId n = graph_.num_nodes();
  std::vector<unsigned char> red(n, 0);
  std::vector<unsigned char> blue(n, 0);
  std::vector<unsigned char> pinned(n, 0);
  std::vector<std::size_t> remaining(n);
  for (NodeId v : graph_.sources()) blue[v] = 1;
  for (NodeId v = 0; v < n; ++v) remaining[v] = graph_.out_degree(v);

  Weight red_weight = 0;
  Weight cost = 0;
  // FIFO of resident values in placement order; stale entries (already
  // deleted) are skipped lazily.
  std::deque<NodeId> fifo;

  auto place_red = [&](NodeId v) {
    red[v] = 1;
    red_weight += graph_.weight(v);
    fifo.push_back(v);
  };
  auto drop_red = [&](NodeId v) {
    s.Append(Delete(v));
    red[v] = 0;
    red_weight -= graph_.weight(v);
  };
  // Spill resident, still-needed values in FIFO order until `w` more bits
  // fit. Returns false when everything left is pinned (infeasible budget).
  auto make_room = [&](Weight w) {
    std::size_t skipped = 0;
    while (red_weight + w > budget) {
      if (skipped >= fifo.size()) return false;
      const NodeId victim = fifo.front();
      fifo.pop_front();
      if (!red[victim]) continue;  // stale entry
      if (pinned[victim]) {
        fifo.push_back(victim);
        ++skipped;
        continue;
      }
      if (!blue[victim]) {
        s.Append(Store(victim));
        blue[victim] = 1;
        cost += graph_.weight(victim);
      }
      drop_red(victim);
    }
    return true;
  };

  for (std::size_t li = 1; li < layers_.size(); ++li) {
    std::vector<NodeId> order = layers_[li];
    // S_2 ascending, then alternate direction per layer.
    if (alternate_ && li % 2 == 0) std::reverse(order.begin(), order.end());

    for (NodeId v : order) {
      const auto parents = graph_.parents(v);
      pinned[v] = 1;
      for (NodeId p : parents) pinned[p] = 1;

      for (NodeId p : parents) {
        if (red[p]) continue;
        assert(blue[p] && "needed value was deleted without a store");
        if (!make_room(graph_.weight(p))) return ScheduleResult::Infeasible();
        s.Append(Load(p));
        cost += graph_.weight(p);
        place_red(p);
      }
      if (!make_room(graph_.weight(v))) return ScheduleResult::Infeasible();
      s.Append(Compute(v));
      place_red(v);

      pinned[v] = 0;
      for (NodeId p : parents) pinned[p] = 0;

      // Eagerly retire values with no pending children.
      for (NodeId p : parents) {
        assert(remaining[p] > 0);
        if (--remaining[p] == 0 && red[p]) drop_red(p);
      }
      if (graph_.is_sink(v)) {
        s.Append(Store(v));
        blue[v] = 1;
        cost += graph_.weight(v);
        drop_red(v);
      }
    }
  }

  result.feasible = true;
  result.cost = cost;
  return result;
}

Weight LayerByLayerScheduler::CostOnly(Weight budget) const {
  const ScheduleResult r = Run(budget);
  return r.feasible ? r.cost : kInfiniteCost;
}

Weight LayerByLayerScheduler::MinMemoryForLowerBound(Weight step,
                                                     Weight hi) const {
  const Weight target = AlgorithmicLowerBound(graph_);
  const auto found = FindMinimumFastMemory(
      [this](Weight b) { return CostOnly(b); }, target,
      {.lo = step, .hi = hi, .step = step, .monotone = false});
  return found.value_or(0);
}

}  // namespace wrbpg
