// Belady-style scheduler for arbitrary CDAGs.
//
// Processes compute nodes in a fixed topological order. With the
// consumption sequence known in advance, the classic optimal-replacement
// rule applies: when fast memory overflows, evict the resident value whose
// next use lies furthest in the future, preferring values that are never
// used again (free M4) and charging a store (M2) only when an evictee
// still has pending consumers and no blue pebble yet.
//
// A strict generalization of the Sec 5.1 layer-by-layer baseline's spill
// policy (FIFO -> furthest-next-use) that works on any graph. It is a
// heuristic: optimal eviction does not imply optimal scheduling in the
// pebble game (recomputation and order freedom remain unexplored), so
// tests assert validity and bounds, not optimality.
#pragma once

#include <vector>

#include "core/graph.h"
#include "schedulers/scheduler.h"

namespace wrbpg {

class BeladyScheduler {
 public:
  // Uses the graph's canonical topological order; `order` overrides the
  // compute sequence (must list every non-source node exactly once, in a
  // valid topological order).
  explicit BeladyScheduler(const Graph& graph);
  BeladyScheduler(const Graph& graph, std::vector<NodeId> order);

  ScheduleResult Run(Weight budget) const;
  Weight CostOnly(Weight budget) const;

  // Definition 2.6 scan (linear; heuristic costs need not be monotone).
  Weight MinMemoryForLowerBound(Weight step, Weight hi) const;

 private:
  const Graph& graph_;
  std::vector<NodeId> order_;  // compute sequence (non-source nodes)
};

}  // namespace wrbpg
