#include "schedulers/mvm_memory_state.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/compose.h"
#include "core/graph_builder.h"
#include "schedulers/memory_state.h"

namespace wrbpg {
namespace {

// A single output row's dataflow as a standalone binary in-tree, with the
// translation back into MVM node ids.
struct RowTree {
  Graph graph;
  NodeId root = kInvalidNode;           // the row's output
  std::vector<NodeId> to_mvm;           // row-tree id -> MVM id
  std::uint64_t x_mask = 0;             // row-tree mask of the vector nodes
};

RowTree BuildRowTree(const MvmGraph& mvm, std::int64_t r) {
  RowTree tree;
  GraphBuilder builder;
  auto add = [&](NodeId mvm_node) {
    const NodeId id = builder.AddNode(mvm.graph.weight(mvm_node),
                                      mvm.graph.name(mvm_node));
    tree.to_mvm.push_back(mvm_node);
    return id;
  };

  std::vector<NodeId> x(static_cast<std::size_t>(mvm.n));
  for (std::int64_t c = 0; c < mvm.n; ++c) {
    x[static_cast<std::size_t>(c)] = add(mvm.x(c));
    tree.x_mask |= std::uint64_t{1} << x[static_cast<std::size_t>(c)];
  }
  NodeId running = kInvalidNode;
  for (std::int64_t c = 0; c < mvm.n; ++c) {
    const NodeId a = add(mvm.a(r, c));
    const NodeId p = add(mvm.product(r, c));
    builder.AddEdge(x[static_cast<std::size_t>(c)], p);
    builder.AddEdge(a, p);
    if (c == 0) {
      running = p;
    } else {
      const NodeId acc = add(mvm.accumulator(r, c));
      builder.AddEdge(running, acc);
      builder.AddEdge(p, acc);
      running = acc;
    }
  }
  tree.root = running;
  tree.graph = builder.BuildOrDie();
  return tree;
}

}  // namespace

MvmMemoryStateScheduler::MvmMemoryStateScheduler(const MvmGraph& mvm)
    : mvm_(mvm) {
  if (mvm.n > 16) {
    std::fprintf(stderr,
                 "MvmMemoryStateScheduler: n = %lld exceeds the 16-column "
                 "bound of the Eq. (8) reference path\n",
                 static_cast<long long>(mvm.n));
    std::abort();
  }
}

ScheduleResult MvmMemoryStateScheduler::Run(Weight budget) {
  ScheduleResult result;
  Weight total_cost = 0;
  Schedule stitched;

  for (std::int64_t r = 0; r < mvm_.m; ++r) {
    const RowTree tree = BuildRowTree(mvm_, r);
    MemoryStateScheduler row_scheduler(tree.graph);
    MemoryState state;
    // The vector is resident from the previous row and stays resident for
    // the next one; the first row brings it in, the last one releases it.
    state.initial = r == 0 ? 0 : tree.x_mask;
    state.reuse = r == mvm_.m - 1 ? 0 : tree.x_mask;

    const auto row_run = row_scheduler.Run(tree.root, budget, state);
    if (!row_run.feasible) return ScheduleResult::Infeasible();
    total_cost += row_run.cost;

    stitched.Append(TranslateSchedule(row_run.schedule, tree.to_mvm));
    // Tile boundary: the output leaves fast memory.
    stitched.Append(Store(tree.to_mvm[tree.root]));
    stitched.Append(Delete(tree.to_mvm[tree.root]));
    total_cost += tree.graph.weight(tree.root);
  }

  result.feasible = true;
  result.cost = total_cost;
  result.schedule = std::move(stitched);
  return result;
}

Weight MvmMemoryStateScheduler::CostOnly(Weight budget) {
  const ScheduleResult r = Run(budget);
  return r.feasible ? r.cost : kInfiniteCost;
}

}  // namespace wrbpg
