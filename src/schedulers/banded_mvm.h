// Sliding-window scheduler for banded MVM — structured-sparse data reuse.
//
// Two strategies:
//   * kSlidingWindow — rows in order; the vector words of the current row's
//     band stay resident and the window slides (drop the column leaving the
//     band, load the one entering). Every input is read exactly once and
//     every output written once: the algorithmic lower bound, with peak
//     memory ~ (2h+1) * w_in + 3 * w_c — bandwidth-, not size-proportional.
//   * kStreaming — no vector reuse: x re-read per structural nonzero.
//     Cheapest-feasible fallback at small budgets.
#pragma once

#include <optional>

#include "dataflows/banded_mvm_graph.h"
#include "schedulers/scheduler.h"

namespace wrbpg {

class BandedMvmScheduler {
 public:
  explicit BandedMvmScheduler(const BandedMvmGraph& banded);

  enum class Strategy : std::uint8_t { kSlidingWindow, kStreaming };

  Weight CostOnly(Weight budget) const;
  std::optional<Strategy> BestStrategy(Weight budget) const;
  ScheduleResult Run(Weight budget) const;

  Weight StrategyCost(Strategy strategy) const;
  Weight StrategyPeak(Strategy strategy) const;

  // Definition 2.6 over the family (the sliding window's peak).
  Weight MinMemoryForLowerBound() const;

 private:
  void Generate(Strategy strategy, Schedule& out) const;

  const BandedMvmGraph& banded_;
  Weight w_in_ = 0;
  Weight w_c_ = 0;
};

}  // namespace wrbpg
