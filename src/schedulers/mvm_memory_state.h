// MVM tiling driven by the Eq. (8) memory-state procedure — the mechanism
// Sec 4.3 actually describes: "for each tile, our algorithm uses the k-ary
// tree procedure (for k = 2) with initial/reuse memory states".
//
// Width-one tiles with full vector residency: each output row's chain is a
// binary in-tree (a caterpillar of products and accumulations over the
// shared vector x). Row r is scheduled by MemoryStateScheduler with
//   I = the x entries already resident from previous rows,
//   R = the x entries to keep for the following rows,
// and the per-row schedules are stitched in row order, storing each output
// at its tile boundary. This realizes the same minimum-I/O schedule as
// MvmTilingScheduler's analytic (g = n, h = 1) tile — cross-checked in
// tests — while exercising the Sec 4.1 machinery end to end.
//
// The per-row subgraph must fit the MemoryStateScheduler's 64-node bound:
// n <= 16 (a row tree has 4n - 1 nodes). This scheduler is the modular
// composition reference, not the production search (use MvmTilingScheduler
// for large instances).
#pragma once

#include "dataflows/mvm_graph.h"
#include "schedulers/scheduler.h"

namespace wrbpg {

class MvmMemoryStateScheduler {
 public:
  // Requires n <= 16.
  explicit MvmMemoryStateScheduler(const MvmGraph& mvm);

  // Width-one, vector-resident tiling via Eq. (8). Infeasible when the
  // budget cannot hold the vector plus a row's working set.
  ScheduleResult Run(Weight budget);
  Weight CostOnly(Weight budget);

 private:
  const MvmGraph& mvm_;
};

}  // namespace wrbpg
