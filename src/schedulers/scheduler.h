// Common result type shared by all WRBPG scheduling algorithms.
//
// Every scheduler exposes:
//   ScheduleResult Run(Weight budget)   — full schedule + cost
//   Weight CostOnly(Weight budget)      — cost without materializing moves
// CostOnly(b) == Run(b).cost for every feasible budget (tested), and both
// return infeasible/kInfiniteCost when no valid schedule exists under b.
#pragma once

#include "core/schedule.h"
#include "core/types.h"

namespace wrbpg {

struct ScheduleResult {
  bool feasible = false;
  Weight cost = kInfiniteCost;  // Definition 2.2 weighted cost
  Schedule schedule;            // empty when infeasible
  // The search was cancelled (deadline/stop token or state-limit safety
  // valve) before it could decide feasibility. Always false when feasible.
  bool timed_out = false;
  // The instance is outside the engine's representable domain (e.g. more
  // nodes than the exact search's 32-bit pebble masks). Distinct from
  // infeasible: the game may well have a solution, this engine just
  // cannot look for it. Always false when feasible.
  bool unsupported = false;

  static ScheduleResult Infeasible() { return {}; }
  static ScheduleResult TimedOut() {
    ScheduleResult r;
    r.timed_out = true;
    return r;
  }
  static ScheduleResult Unsupported() {
    ScheduleResult r;
    r.unsupported = true;
    return r;
  }
};

}  // namespace wrbpg
