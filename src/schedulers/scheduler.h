// Common result type shared by all WRBPG scheduling algorithms.
//
// Every scheduler exposes:
//   ScheduleResult Run(Weight budget)   — full schedule + cost
//   Weight CostOnly(Weight budget)      — cost without materializing moves
// CostOnly(b) == Run(b).cost for every feasible budget (tested), and both
// return infeasible/kInfiniteCost when no valid schedule exists under b.
//
// Anytime contract (DESIGN.md §11): engines that can run out of time or
// memory report HOW they stopped (`termination`) and what they can still
// certify (`lower_bound`): every feasible result satisfies
//
//   lower_bound <= optimal cost <= cost,   optimality_gap == cost - lower_bound
//
// so a result with optimality_gap == 0 is proven optimal even if the
// engine was interrupted. Engines that prove optimality (exact search run
// to completion, the DWT DP) report kOptimal; heuristics report kComplete
// with the trivial lower bound unless a caller tightens it.
#pragma once

#include "core/schedule.h"
#include "core/types.h"

namespace wrbpg {

// Why a scheduler stopped. Everything except kComplete/kOptimal means the
// result is an anytime incumbent: the best schedule the engine could
// certify before the named resource ran out.
enum class Termination : std::uint8_t {
  kComplete = 0,  // ran to its natural end (heuristics; infeasible proofs)
  kOptimal,       // ran to completion AND the cost is proven optimal
  kDeadline,      // a CancelToken deadline expired mid-search
  kMemoryCap,     // frontier byte budget or state safety valve exhausted
  kCancelled,     // manual CancelToken::Cancel() (no deadline involved)
};

inline const char* ToString(Termination termination) {
  switch (termination) {
    case Termination::kComplete: return "complete";
    case Termination::kOptimal: return "optimal";
    case Termination::kDeadline: return "deadline";
    case Termination::kMemoryCap: return "memory-cap";
    case Termination::kCancelled: return "cancelled";
  }
  return "unknown";
}

struct ScheduleResult {
  bool feasible = false;
  Weight cost = kInfiniteCost;  // Definition 2.2 weighted cost
  Schedule schedule;            // empty when infeasible
  // The search was cancelled (deadline/stop token or a resource cap)
  // before it could decide feasibility AND had no incumbent to fall back
  // on. Always false when feasible: an anytime engine that holds an
  // incumbent returns it as a feasible result with `termination` telling
  // the story instead.
  bool timed_out = false;
  // Sound lower bound on the optimal cost of this instance. 0 (trivial)
  // for plain heuristics; exact engines report their best admissible
  // bound even when interrupted (the minimum f over the open frontier).
  // kInfiniteCost for proven-infeasible instances.
  Weight lower_bound = 0;
  // cost - lower_bound for feasible results (0 == proven optimal);
  // kInfiniteCost when there is no schedule to measure.
  Weight optimality_gap = kInfiniteCost;
  // How the engine stopped (see the anytime contract above).
  Termination termination = Termination::kComplete;

  static ScheduleResult Infeasible() {
    ScheduleResult r;
    r.lower_bound = kInfiniteCost;
    return r;
  }
  static ScheduleResult TimedOut() {
    ScheduleResult r;
    r.timed_out = true;
    r.termination = Termination::kDeadline;
    return r;
  }
};

}  // namespace wrbpg
