#include "schedulers/greedy_topo.h"

#include "core/analysis.h"

namespace wrbpg {

ScheduleResult GreedyTopoScheduler::Run(Weight budget) const {
  if (!ScheduleExists(graph_, budget)) return ScheduleResult::Infeasible();

  ScheduleResult result;
  result.feasible = true;
  result.cost = 0;
  Schedule& s = result.schedule;

  for (NodeId v : graph_.topological_order()) {
    if (graph_.is_source(v)) continue;
    // Bring every parent into fast memory. Sources carry their initial blue
    // pebble; computed nodes were stored (M2) right after their M3 below.
    for (NodeId p : graph_.parents(v)) {
      s.Append(Load(p));
      result.cost += graph_.weight(p);
    }
    s.Append(Compute(v));
    s.Append(Store(v));
    result.cost += graph_.weight(v);
    for (NodeId p : graph_.parents(v)) s.Append(Delete(p));
    s.Append(Delete(v));
  }
  return result;
}

Weight GreedyTopoScheduler::CostOnly(Weight budget) const {
  if (!ScheduleExists(graph_, budget)) return kInfiniteCost;
  Weight cost = 0;
  for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
    if (graph_.is_source(v)) continue;
    cost += graph_.weight(v);
    for (NodeId p : graph_.parents(v)) cost += graph_.weight(p);
  }
  return cost;
}

}  // namespace wrbpg
