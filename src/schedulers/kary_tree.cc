#include "schedulers/kary_tree.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "core/analysis.h"
#include "dataflows/tree_graph.h"
#include "obs/metrics.h"

namespace wrbpg {
namespace {

Weight SatAdd(Weight a, Weight b) {
  if (a >= kInfiniteCost || b >= kInfiniteCost) return kInfiniteCost;
  return a + b;
}

const obs::Counter& MemoHits() {
  static const obs::Counter c("dp.kary.memo_hit");
  return c;
}
const obs::Counter& MemoMisses() {
  static const obs::Counter c("dp.kary.memo_miss");
  return c;
}

}  // namespace

KaryTreeScheduler::KaryTreeScheduler(const Graph& graph)
    : graph_(graph), memo_(graph.num_nodes()) {
  const auto root = TreeRoot(graph);
  if (!root) {
    std::fprintf(stderr, "KaryTreeScheduler: graph is not a rooted in-tree\n");
    std::abort();
  }
  root_ = *root;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.in_degree(v) > 8) {
      std::fprintf(stderr,
                   "KaryTreeScheduler: in-degree %zu exceeds the supported "
                   "bound of 8\n",
                   graph.in_degree(v));
      std::abort();
    }
  }
}

KaryTreeScheduler::Entry KaryTreeScheduler::P(NodeId v, Weight b) {
  if (graph_.is_source(v)) {
    Entry e;
    if (graph_.weight(v) <= b) e.cost = graph_.weight(v);
    return e;
  }
  auto& node_memo = memo_[v];
  if (const auto it = node_memo.find(b); it != node_memo.end()) {
    MemoHits().Add(1);
    return it->second;
  }
  MemoMisses().Add(1);

  const auto parents = graph_.parents(v);
  const int k = static_cast<int>(parents.size());

  Entry best;
  Weight need = graph_.weight(v);
  for (NodeId p : parents) need += graph_.weight(p);
  if (need <= b) {
    std::array<std::uint8_t, 8> order{};
    std::iota(order.begin(), order.begin() + k, std::uint8_t{0});
    do {
      // Evaluate delta masks from all-keep downward so that, on cost ties,
      // keep-heavy (spill-light) choices win.
      for (std::uint32_t delta = (1u << k); delta-- > 0;) {
        Weight cost = 0;
        Weight remaining = b;
        for (int i = 0; i < k && cost < kInfiniteCost; ++i) {
          const NodeId p = parents[order[static_cast<std::size_t>(i)]];
          cost = SatAdd(cost, P(p, remaining).cost);
          if ((delta >> i) & 1u) {
            remaining -= graph_.weight(p);
          } else {
            cost = SatAdd(cost, 2 * graph_.weight(p));
          }
        }
        if (cost < best.cost) {
          best.cost = cost;
          best.delta = delta;
          best.perm = 0;
          for (int i = 0; i < k; ++i) {
            best.perm |= static_cast<std::uint32_t>(
                             order[static_cast<std::size_t>(i)])
                         << (4 * i);
          }
        }
      }
    } while (std::next_permutation(order.begin(), order.begin() + k));
  }
  node_memo.emplace(b, best);
  return best;
}

void KaryTreeScheduler::Generate(NodeId v, Weight b, Schedule& out) const {
  if (graph_.is_source(v)) {
    out.Append(Load(v));
    return;
  }
  const auto it = memo_[v].find(b);
  assert(it != memo_[v].end() && it->second.cost < kInfiniteCost);
  const Entry& entry = it->second;

  const auto parents = graph_.parents(v);
  const int k = static_cast<int>(parents.size());

  Weight remaining = b;
  for (int i = 0; i < k; ++i) {
    const NodeId p = parents[(entry.perm >> (4 * i)) & 0xf];
    Generate(p, remaining, out);
    if ((entry.delta >> i) & 1u) {
      remaining -= graph_.weight(p);
    } else {
      // Spilling a source would re-store an existing blue pebble; the DP's
      // dominance ordering guarantees an argmin never does this.
      assert(!graph_.is_source(p));
      out.Append(Store(p));
      out.Append(Delete(p));
    }
  }
  // Reload the spilled parents now that the kept ones are co-resident.
  for (int i = 0; i < k; ++i) {
    if ((entry.delta >> i) & 1u) continue;
    out.Append(Load(parents[(entry.perm >> (4 * i)) & 0xf]));
  }
  out.Append(Compute(v));
  for (NodeId p : parents) out.Append(Delete(p));
}

Weight KaryTreeScheduler::CostOnly(Weight budget) {
  const Entry e = P(root_, budget);
  if (e.cost >= kInfiniteCost) return kInfiniteCost;
  return e.cost + graph_.weight(root_);
}

ScheduleResult KaryTreeScheduler::Run(Weight budget) {
  const Weight cost = CostOnly(budget);
  if (cost >= kInfiniteCost) return ScheduleResult::Infeasible();
  ScheduleResult result;
  result.feasible = true;
  result.cost = cost;
  Generate(root_, budget, result.schedule);
  result.schedule.Append(Store(root_));
  result.schedule.Append(Delete(root_));
  // Theorem 3.8: the DP enumerates every ordering/spill choice, so the
  // answer is a proven optimum, not merely a feasible schedule.
  result.lower_bound = cost;
  result.optimality_gap = 0;
  result.termination = Termination::kOptimal;
  return result;
}

Weight KaryTreeScheduler::MinMemoryForLowerBound(Weight step, Weight hi) {
  const Weight target = AlgorithmicLowerBound(graph_);
  const auto found = FindMinimumFastMemory(
      [this](Weight b) { return CostOnly(b); }, target,
      {.lo = step, .hi = hi, .step = step, .monotone = true});
  return found.value_or(0);
}

}  // namespace wrbpg
