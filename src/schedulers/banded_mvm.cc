#include "schedulers/banded_mvm.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/analysis.h"

namespace wrbpg {

BandedMvmScheduler::BandedMvmScheduler(const BandedMvmGraph& banded)
    : banded_(banded) {
  const Graph& g = banded.graph;
  w_in_ = g.weight(banded.x(0));
  w_c_ = g.weight(banded.product(0, 0));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool is_input = banded_.roles[v] == MvmRole::kVectorInput ||
                          banded_.roles[v] == MvmRole::kMatrixInput;
    if (g.weight(v) != (is_input ? w_in_ : w_c_)) {
      std::fprintf(stderr,
                   "BandedMvmScheduler: weights must be uniform per role\n");
      std::abort();
    }
  }
}

Weight BandedMvmScheduler::StrategyCost(Strategy strategy) const {
  const std::int64_t n = banded_.n;
  const std::int64_t nnz = banded_.nnz();
  switch (strategy) {
    case Strategy::kSlidingWindow:
      return w_in_ * (nnz + n) + w_c_ * n;  // the algorithmic lower bound
    case Strategy::kStreaming:
      return w_in_ * 2 * nnz + w_c_ * n;
  }
  return kInfiniteCost;
}

Weight BandedMvmScheduler::StrategyPeak(Strategy strategy) const {
  const bool has_chain = banded_.h >= 1;  // some row has a 2+ entry band
  const Weight chain_peak =
      has_chain ? std::max(3 * w_c_, w_in_ + 2 * w_c_) : w_in_ + w_c_;
  switch (strategy) {
    case Strategy::kSlidingWindow: {
      const std::int64_t window = std::min(2 * banded_.h + 1, banded_.n);
      return window * w_in_ + chain_peak;
    }
    case Strategy::kStreaming:
      // The streamed vector word is dropped before the accumulate, so the
      // chain moment holds only compute values.
      return has_chain ? std::max(3 * w_c_, 2 * w_in_ + 2 * w_c_)
                       : 2 * w_in_ + w_c_;
  }
  return kInfiniteCost;
}

std::optional<BandedMvmScheduler::Strategy> BandedMvmScheduler::BestStrategy(
    Weight budget) const {
  if (StrategyPeak(Strategy::kSlidingWindow) <= budget) {
    return Strategy::kSlidingWindow;
  }
  if (StrategyPeak(Strategy::kStreaming) <= budget) {
    return Strategy::kStreaming;
  }
  return std::nullopt;
}

Weight BandedMvmScheduler::CostOnly(Weight budget) const {
  const auto strategy = BestStrategy(budget);
  return strategy ? StrategyCost(*strategy) : kInfiniteCost;
}

Weight BandedMvmScheduler::MinMemoryForLowerBound() const {
  return StrategyPeak(Strategy::kSlidingWindow);
}

void BandedMvmScheduler::Generate(Strategy strategy, Schedule& out) const {
  const std::int64_t n = banded_.n;
  const bool sliding = strategy == Strategy::kSlidingWindow;

  std::int64_t window_lo = 0;  // first resident column (sliding mode)
  std::int64_t window_hi = -1;  // last resident column
  for (std::int64_t r = 0; r < n; ++r) {
    const std::int64_t lo = banded_.col_lo(r);
    const std::int64_t hi = banded_.col_hi(r);
    if (sliding) {
      for (; window_lo < lo; ++window_lo) {
        if (window_lo <= window_hi) out.Append(Delete(banded_.x(window_lo)));
      }
      for (std::int64_t c = std::max(window_hi + 1, lo); c <= hi; ++c) {
        out.Append(Load(banded_.x(c)));
      }
      window_hi = hi;
    }

    NodeId running = kInvalidNode;
    for (std::int64_t c = lo; c <= hi; ++c) {
      if (!sliding) out.Append(Load(banded_.x(c)));
      out.Append(Load(banded_.a(r, c)));
      out.Append(Compute(banded_.product(r, c)));
      out.Append(Delete(banded_.a(r, c)));
      if (!sliding) out.Append(Delete(banded_.x(c)));
      if (c == lo) {
        running = banded_.product(r, c);
      } else {
        const NodeId acc = banded_.accumulator(r, c - lo);
        out.Append(Compute(acc));
        out.Append(Delete(running));
        out.Append(Delete(banded_.product(r, c)));
        running = acc;
      }
    }
    out.Append(Store(running));
    out.Append(Delete(running));
  }
  if (sliding) {
    for (std::int64_t c = window_lo; c <= window_hi; ++c) {
      out.Append(Delete(banded_.x(c)));
    }
  }
}

ScheduleResult BandedMvmScheduler::Run(Weight budget) const {
  const auto strategy = BestStrategy(budget);
  if (!strategy) return ScheduleResult::Infeasible();
  ScheduleResult result;
  result.feasible = true;
  result.cost = StrategyCost(*strategy);
  Generate(*strategy, result.schedule);
  return result;
}

}  // namespace wrbpg
