// Exhaustive optimal WRBPG solver — the test oracle.
//
// Dijkstra over pebbling configurations (red mask, blue mask) with move
// costs from Definition 2.2 (M1/M2 cost w_v, M3/M4 free). Exponential in
// |V|; intended for graphs of at most ~20 nodes, where it certifies the
// optimality of the polynomial dataflow-specific schedulers.
//
// Options support the Sec. 4.1 memory-state semantics: arbitrary initial
// red/blue pebbles and a required final red set, so Eq. (8)'s P_m can be
// cross-checked as well as the plain game.
#pragma once

#include <cstdint>
#include <optional>

#include "core/graph.h"
#include "schedulers/scheduler.h"
#include "util/cancel.h"

namespace wrbpg {

struct BruteForceOptions {
  std::uint64_t initial_red = 0;  // bitmask over NodeId
  // Blue pebbles at the start; defaults to the sources A(G).
  std::optional<std::uint64_t> initial_blue;
  // Goal: these nodes must hold red pebbles at the end (memory-state games).
  std::uint64_t required_red_at_end = 0;
  // Goal: all sinks must hold blue pebbles (the game's stopping condition).
  bool require_sinks_blue = true;
  // Safety valve: give up past this many settled states; the result comes
  // back with timed_out set instead of aborting the process.
  std::size_t max_states = 20'000'000;
  // Cooperative cancellation: polled every few hundred settled states.
  // On expiry the search unwinds with a timed_out result.
  const CancelToken* cancel = nullptr;
};

class BruteForceScheduler {
 public:
  explicit BruteForceScheduler(const Graph& graph);

  ScheduleResult Run(Weight budget, const BruteForceOptions& options) const;
  ScheduleResult Run(Weight budget) const {
    return Run(budget, BruteForceOptions{});
  }
  Weight CostOnly(Weight budget, const BruteForceOptions& options) const;
  Weight CostOnly(Weight budget) const {
    return CostOnly(budget, BruteForceOptions{});
  }

 private:
  ScheduleResult Search(Weight budget, const BruteForceOptions& options,
                        bool want_schedule) const;

  const Graph& graph_;
};

}  // namespace wrbpg
