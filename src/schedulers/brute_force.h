// Exhaustive optimal WRBPG solver — the test oracle.
//
// Shortest-path search over pebbling configurations (red mask, blue mask)
// with move costs from Definition 2.2 (M1/M2 cost w_v, M3/M4 free).
// Exponential in |V|; intended for graphs of at most ~20 nodes, where it
// certifies the optimality of the polynomial dataflow-specific schedulers.
//
// Options support the Sec. 4.1 memory-state semantics: arbitrary initial
// red/blue pebbles and a required final red set, so Eq. (8)'s P_m can be
// cross-checked as well as the plain game.
//
// Determinism contract (DESIGN.md §8): for a given (graph, budget,
// options) the result is a pure function of the inputs — independent of
// the thread count. The returned schedule is the canonical optimum:
// lowest cost, then fewest moves, then the lexicographically-least move
// sequence under the move order M1 < M2 < M3 < M4, node id ascending.
// Parallel runs (options.threads != 1) reconstruct the schedule from the
// same distance map a sequential run computes, so `--threads 1` and
// `--threads N` agree bit for bit; differential tests at 1/2/8 threads
// pin this.
#pragma once

#include <cstdint>
#include <optional>

#include "core/graph.h"
#include "schedulers/scheduler.h"
#include "util/cancel.h"

namespace wrbpg {

struct BruteForceOptions {
  std::uint64_t initial_red = 0;  // bitmask over NodeId
  // Blue pebbles at the start; defaults to the sources A(G).
  std::optional<std::uint64_t> initial_blue;
  // Goal: these nodes must hold red pebbles at the end (memory-state games).
  std::uint64_t required_red_at_end = 0;
  // Goal: all sinks must hold blue pebbles (the game's stopping condition).
  bool require_sinks_blue = true;
  // Safety valve: give up past this many settled states; the result comes
  // back with timed_out set instead of aborting the process.
  std::size_t max_states = 20'000'000;
  // Cooperative cancellation: polled between search waves and inside
  // expansion chunks. On expiry the search unwinds with a timed_out
  // result. The token is threaded through every pool task, so a parallel
  // search honors deadlines exactly like a sequential one.
  const CancelToken* cancel = nullptr;
  // Worker threads for the frontier expansion. 1 = fully sequential
  // (no pool is created); 0 = DefaultSearchThreads(), the process-wide
  // default installed by --threads / WRBPG_THREADS. Any value returns the
  // identical result — see the determinism contract above.
  std::size_t threads = 0;
};

class BruteForceScheduler {
 public:
  explicit BruteForceScheduler(const Graph& graph);

  ScheduleResult Run(Weight budget, const BruteForceOptions& options) const;
  ScheduleResult Run(Weight budget) const {
    return Run(budget, BruteForceOptions{});
  }
  Weight CostOnly(Weight budget, const BruteForceOptions& options) const;
  Weight CostOnly(Weight budget) const {
    return CostOnly(budget, BruteForceOptions{});
  }

 private:
  ScheduleResult Search(Weight budget, const BruteForceOptions& options,
                        bool want_schedule) const;

  const Graph& graph_;
};

}  // namespace wrbpg
