// Exhaustive optimal WRBPG solver — the test oracle and the hot exact
// path of the RobustScheduler chain.
//
// Shortest-path search over pebbling configurations (red mask, blue mask)
// with move costs from Definition 2.2 (M1/M2 cost w_v, M3/M4 free).
// Exponential in |V|; the informed engines certify optima for graphs of a
// few dozen nodes, and the branch-and-bound engine degrades gracefully on
// anything larger (see the anytime contract below).
//
// Four engines share one searcher (DESIGN.md §9/§11):
//
//   kDijkstra        — the PR 3 uninformed level-synchronous search, kept
//                      as the audited baseline for differential tests and
//                      the --engine-compare benchmark.
//   kAStar           — A* ordered by (g + h, g, len) where h is the
//                      core/state_bound admissible remaining-I/O bound
//                      (Prop 2.4 generalized per state). h is admissible
//                      but not consistent, so states reopen when their g
//                      improves; the first settled goal is still optimal.
//   kAStarDominance  — the exact-mode default. Cost is found by an A*
//                      pass that additionally (a) coalesces zero-cost
//                      M3/M4 closures by dropping the length tier from
//                      the wave key — all interleavings of a free-move
//                      closure collapse into one wave — and (b) drops a
//                      wave state when a same-wave state with equal red
//                      mask and superset blue mask dominates it. When a
//                      schedule is wanted, a second A* pass primed with
//                      the now-known optimal cost rebuilds the canonical
//                      distance map (dominance off, so the lex-least
//                      tie-break is undisturbed).
//   kBranchAndBound  — the anytime engine ("bb"). Seeds an incumbent
//                      schedule from the polynomial heuristics (belady,
//                      then greedy-topo), primes the dominance engine's
//                      pruning bound with the incumbent cost, and under
//                      any deadline, frontier byte budget, or state cap
//                      returns the incumbent plus a sound optimality gap
//                      instead of failing. Run to completion it returns
//                      the same canonical optimum as every other engine.
//
// Anytime contract (scheduler.h): every feasible result satisfies
// lower_bound <= optimal <= cost with optimality_gap == cost -
// lower_bound, and `termination` records why the engine stopped
// (optimal / deadline / memory-cap / cancelled). The interrupted lower
// bound is the minimum f over the open frontier — sound because h is
// admissible and every undiscovered solution leaves the settled set
// through an open state.
//
// State representation: graphs of at most 32 nodes pack (red, blue) into
// one 64-bit word (the inline fast path, bit-compatible with the PR 3-5
// engines); wider graphs intern word-array configurations in a
// StateInterner and search over the interned ids, so there is NO graph
// size beyond which the engines refuse to run.
//
// Options support the Sec. 4.1 memory-state semantics: arbitrary initial
// red/blue pebbles and a required final red set, so Eq. (8)'s P_m can be
// cross-checked as well as the plain game.
//
// Determinism contract (DESIGN.md §8/§9): for a given (graph, budget,
// options) the result is a pure function of the inputs — independent of
// the thread count AND of the engine — for every run that completes
// (deadline-interrupted results are wall-clock-dependent by nature;
// memory/state-cap stops are deterministic at a fixed thread count). The
// returned schedule is the canonical optimum: lowest cost, then fewest
// moves, then the lexicographically-least move sequence under the move
// order M1 < M2 < M3 < M4, node id ascending. All engines reconstruct
// from a distance map whose optimal-path entries provably coincide, so
// `--threads 1` vs `--threads N` and dijkstra vs A* vs A*+dominance vs
// bb all agree bit for bit; differential tests at 1/2/8 threads pin this
// for both the packed and the wide state representation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/graph.h"
#include "schedulers/scheduler.h"
#include "util/cancel.h"

namespace wrbpg {

enum class SearchEngine : std::uint8_t {
  kDijkstra = 0,
  kAStar,
  kAStarDominance,
  kBranchAndBound,
};

const char* ToString(SearchEngine engine);

// Counters filled by a search when BruteForceOptions::stats is set.
// `expanded` and `waves` are pure functions of (graph, budget, options) —
// identical at any thread count — and are what --engine-compare reports.
// The relaxation-level counters (generated, improved, pruned_*) can vary
// slightly across parallel runs (transient races decide which thread's
// relaxation "improves" an entry) and are informational only.
struct SearchStats {
  std::uint64_t expanded = 0;          // states settled and fanned out
  std::uint64_t waves = 0;             // level-synchronous waves run
  std::uint64_t generated = 0;         // successor relaxations attempted
  std::uint64_t improved = 0;          // relaxations that changed the map
  std::uint64_t pruned_bound = 0;      // cut by f > best known goal cost
  std::uint64_t pruned_heuristic = 0;  // cut by h == infinity (dead state)
  std::uint64_t pruned_dominated = 0;  // wave states dropped by dominance
  // Peak frontier occupancy: the largest number of live states any single
  // wave expanded — the search's working-set high-water mark. A pure
  // function of (graph, budget, options) like `expanded`/`waves`; merged
  // by max, not sum.
  std::uint64_t max_frontier = 0;
  // Estimated peak bytes held by the search containers (dist map slabs,
  // interned states, pending levels), sampled at wave boundaries — what
  // the frontier_bytes_cap meters. Merged by max.
  std::uint64_t frontier_bytes = 0;

  // Hot-path instrumentation (DESIGN.md §14). All five are informational
  // only — nothing in the search reads them back, and the hit/miss splits
  // depend on thread interleaving (which worker reaches a shared-cache
  // slot first), so identical runs may report different splits while still
  // producing bit-identical schedules.
  std::uint64_t bound_cache_hits = 0;    // slow-path h served from the cache
  std::uint64_t bound_cache_misses = 0;  // slow-path h freshly walked
  std::uint64_t intern_cache_hits = 0;   // interner lookups short-circuited
  std::uint64_t intern_cache_misses = 0;  // ... that hit the shared table
  std::uint64_t succ_gen_ns = 0;  // wall time inside the expansion loops

  void Accumulate(const SearchStats& other) {
    expanded += other.expanded;
    waves += other.waves;
    generated += other.generated;
    improved += other.improved;
    pruned_bound += other.pruned_bound;
    pruned_heuristic += other.pruned_heuristic;
    pruned_dominated += other.pruned_dominated;
    max_frontier = std::max(max_frontier, other.max_frontier);
    frontier_bytes = std::max(frontier_bytes, other.frontier_bytes);
    bound_cache_hits += other.bound_cache_hits;
    bound_cache_misses += other.bound_cache_misses;
    intern_cache_hits += other.intern_cache_hits;
    intern_cache_misses += other.intern_cache_misses;
    succ_gen_ns += other.succ_gen_ns;
  }
};

struct BruteForceOptions {
  std::uint64_t initial_red = 0;  // bitmask over NodeId (ids < 64)
  // Blue pebbles at the start; defaults to the sources A(G).
  std::optional<std::uint64_t> initial_blue;
  // Goal: these nodes must hold red pebbles at the end (memory-state games).
  std::uint64_t required_red_at_end = 0;
  // Goal: all sinks must hold blue pebbles (the game's stopping condition).
  bool require_sinks_blue = true;
  // Safety valve: give up past this many settled states. The bb engine
  // returns its incumbent with termination == kMemoryCap; the exact
  // engines come back timed_out. Counted cumulatively across both passes
  // of a two-phase run.
  std::size_t max_states = 20'000'000;
  // Byte budget for the search containers (dist map, interned states,
  // pending levels), checked at wave boundaries; 0 disables. Exhaustion
  // is handled exactly like max_states: incumbent-return for bb,
  // timed_out for the exact engines — never an allocation failure. The
  // default keeps a runaway wide search under control while being far
  // above anything the <= 32-node oracles touch.
  std::size_t frontier_bytes_cap = 4ull << 30;
  // Cooperative cancellation: polled between search waves and every
  // few-thousand generated moves inside expansion chunks (move-count
  // based, so deadlines hold even inside one huge frontier level). On
  // expiry the bb engine returns its incumbent; the exact engines unwind
  // with a timed_out result. The token is threaded through every pool
  // task, so a parallel search honors deadlines exactly like a
  // sequential one.
  const CancelToken* cancel = nullptr;
  // Worker threads for the frontier expansion. 1 = fully sequential
  // (no pool is created); 0 = DefaultSearchThreads(), the process-wide
  // default installed by --threads / WRBPG_THREADS. Any value returns the
  // identical result — see the determinism contract above.
  std::size_t threads = 0;
  // Which search engine to run. All engines return identical results on
  // runs that complete; they differ only in how many states they touch on
  // the way (see the --engine-compare benchmark) and in how they behave
  // when interrupted (only bb holds an incumbent).
  SearchEngine engine = SearchEngine::kAStarDominance;
  // Testing hook: route a <= 32-node graph through the wide interned-state
  // representation instead of the packed fast path. Results are
  // bit-identical (pinned by engine_differential_test); only the
  // state-plumbing differs.
  bool force_wide_state = false;
  // Certified start-state lower bound, typically the best ganalysis bound
  // certificate (ganalysis/bounds.h). Folded into the REPORTED
  // lower_bound at every interrupted exit — never into per-state h or the
  // expansion order — so schedules and costs are bit-identical with or
  // without it; only the anytime gap tightens (and an incumbent matching
  // the certificate promotes to kOptimal). The caller certifies the value
  // is a sound lower bound for this (graph, budget); it is ignored for
  // non-standard games (custom initial/required pebbles), where start-
  // state certificates do not apply.
  Weight root_lower_bound = 0;
  // Orbit pruning of first moves: the searcher skips the ROOT M1 load of
  // every node listed here. Soundness is the caller's certificate: list
  // only sources that are orbit-equivalent (verified automorphism,
  // ganalysis/canonical.h) to a smaller-id source NOT listed, so the
  // canonical optimal schedule — whose first move provably loads its
  // orbit's minimum — survives and results stay bit-identical (pinned by
  // orbit_prune_differential_test). Ignored for non-standard games.
  const std::vector<NodeId>* prune_root_loads = nullptr;
  // When non-null, filled with the search's counters on return
  // (aggregated over both passes of a two-phase run).
  SearchStats* stats = nullptr;
};

class BruteForceScheduler {
 public:
  explicit BruteForceScheduler(const Graph& graph);

  ScheduleResult Run(Weight budget, const BruteForceOptions& options) const;
  ScheduleResult Run(Weight budget) const {
    return Run(budget, BruteForceOptions{});
  }
  Weight CostOnly(Weight budget, const BruteForceOptions& options) const;
  Weight CostOnly(Weight budget) const {
    return CostOnly(budget, BruteForceOptions{});
  }

 private:
  ScheduleResult Search(Weight budget, const BruteForceOptions& options,
                        bool want_schedule) const;

  const Graph& graph_;
};

}  // namespace wrbpg
