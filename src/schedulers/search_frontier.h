// Allocation-lean frontier mechanics for the exact search engine
// (DESIGN.md §9/§11): an open-addressing flat distance map, pooled wave
// buffers, and the wide-state interner that lifts the engine past the
// 32-node packed-mask fast path. The PR 3 engine kept distances in 64
// sharded std::unordered_map shards and allocated a fresh std::vector per
// (key, level) of the pending map — node-by-node heap traffic on the
// hottest loop in the repo. Here every shard is a flat linear-probe
// table (one contiguous slab, grown by doubling, never freed mid-search)
// and level vectors are recycled through a pool, so steady-state waves
// allocate nothing.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/types.h"

namespace wrbpg {

// Pebbling configuration handle. Graphs of at most 32 nodes pack the
// whole configuration inline — red mask | (blue mask << 32) — so the
// handle IS the state (the fast path). Wider graphs store configurations
// as word arrays in a StateInterner and the handle is the interned id;
// either way every frontier container (dist map, pending levels, update
// buffers) traffics in plain 64-bit values.
using SearchState = std::uint64_t;

// Tiny test-and-test-and-set lock for the sharded hot-path tables below.
// Their critical sections are a handful of instructions (one probe, one
// store), so an uncontended atomic exchange (~a few ns) beats a mutex
// call by an order of magnitude on the hottest loop in the repo; 64-way
// sharding keeps contention negligible even at full thread counts. The
// relaxed-spin inner loop keeps the cache line shared while waiting, and
// yield() bounds the damage if a holder is preempted mid-section.
class SpinLock {
 public:
  void lock() {
    int spins = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      while (flag_.test(std::memory_order_relaxed)) {
        // The critical sections behind this lock are a handful of
        // nanoseconds, so a free holder releases within a few spins; a
        // longer wait means the holder was descheduled (more workers
        // than cores) and burning the rest of our quantum only delays
        // it further — yield early.
        if (++spins >= 64) {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

// Wave key: f = g + h first (Dijkstra runs with h == 0, so f == g), then
// the Definition 2.2 cost g, then schedule length. The length component
// makes the order well-founded under the free moves (M3/M4 cost nothing,
// so cost alone admits zero-cost cycles like compute-then-delete) and is
// the middle tier of the determinism contract's tie-break; the cost-only
// pass of the dominance engine zeroes it out so a zero-cost closure is
// one wave, not a cascade of length-stratified ones.
struct WaveKey {
  Weight f = 0;
  Weight g = 0;
  std::uint32_t len = 0;

  friend bool operator==(const WaveKey&, const WaveKey&) = default;
  friend bool operator<(const WaveKey& a, const WaveKey& b) {
    if (a.f != b.f) return a.f < b.f;
    if (a.g != b.g) return a.g < b.g;
    return a.len < b.len;
  }
};

// Structure-of-arrays buffer for one expansion chunk's wave updates.
// Keys and states live in separate contiguous runs instead of an
// array-of-structs: the merge loop after a wave touches keys first (to
// group updates into pending levels) and only then states, so splitting
// the streams halves the bytes each pass pulls through the cache and
// lets the (smaller) state run stay resident. Cleared per wave, capacity
// retained — steady-state waves allocate nothing.
class UpdateBuffer {
 public:
  void Clear() {
    keys_.clear();
    states_.clear();
  }
  void Push(const WaveKey& key, SearchState state) {
    keys_.push_back(key);
    states_.push_back(state);
  }
  std::size_t size() const { return keys_.size(); }
  const WaveKey& key(std::size_t i) const { return keys_[i]; }
  SearchState state(std::size_t i) const { return states_[i]; }

  std::size_t MemoryBytes() const {
    return keys_.capacity() * sizeof(WaveKey) +
           states_.capacity() * sizeof(SearchState);
  }

 private:
  std::vector<WaveKey> keys_;
  std::vector<SearchState> states_;
};

// Sharded insert-only SearchState -> heuristic-value cache. The A*
// heuristic is a pure function of the configuration, so reopening, wave
// dominance, and the two passes of a dominance/bb run keep re-deriving h
// for states the search has already priced; the searcher consults this
// cache on the slow (full re-walk) heuristic paths only — the fast
// incremental deltas are cheaper than a probe. kInfiniteCost is a
// legitimate cached value (dead states are exactly the ones regenerated
// most), hence the explicit `used` flag. Insert races between workers are
// benign: both write the same h.
class BoundCache {
 public:
  bool Find(SearchState s, Weight* h) const {
    const Shard& shard = shards_[ShardIndex(s)];
    std::lock_guard<SpinLock> lock(shard.mu);
    if (shard.slots.empty()) return false;
    const Entry& e = shard.slots[shard.ProbeIndex(s)];
    if (!e.used) return false;
    *h = e.h;
    return true;
  }

  void Insert(SearchState s, Weight h) {
    Shard& shard = shards_[ShardIndex(s)];
    std::lock_guard<SpinLock> lock(shard.mu);
    if (shard.slots.empty()) shard.slots.resize(kInitialCapacity);
    std::size_t i = shard.ProbeIndex(s);
    if (shard.slots[i].used) return;  // someone else priced it first
    if ((shard.size + 1) * 4 > shard.slots.size() * 3) {
      shard.Rehash(shard.slots.size() * 2);
      i = shard.ProbeIndex(s);
    }
    shard.slots[i] = Entry{s, h, true};
    ++shard.size;
  }

  std::size_t MemoryBytes() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.slots.capacity() * sizeof(Entry);
    }
    return total;
  }

 private:
  static constexpr std::size_t kShardCount = 64;  // power of two
  static constexpr std::size_t kInitialCapacity = 256;

  struct Entry {
    SearchState state = 0;
    Weight h = 0;
    bool used = false;
  };
  struct Shard {
    mutable SpinLock mu;
    std::vector<Entry> slots;  // power-of-two capacity
    std::size_t size = 0;

    std::size_t ProbeIndex(SearchState s) const {
      const std::uint64_t h = s * 0x9e3779b97f4a7c15ull;
      std::size_t i = static_cast<std::size_t>(h ^ (h >> 29)) &
                      (slots.size() - 1);
      while (slots[i].used && slots[i].state != s) {
        i = (i + 1) & (slots.size() - 1);
      }
      return i;
    }
    void Rehash(std::size_t capacity) {
      std::vector<Entry> old = std::exchange(slots, {});
      slots.resize(capacity);
      for (const Entry& e : old) {
        if (e.used) slots[ProbeIndex(e.state)] = e;
      }
    }
  };

  static std::size_t ShardIndex(SearchState s) {
    return static_cast<std::size_t>((s * 0x9e3779b97f4a7c15ull) >> 58) &
           (kShardCount - 1);
  }

  Shard shards_[kShardCount];
};

// Concurrent SearchState -> best-known (g, len) map. Sharded so parallel
// frontier expansion relaxes edges without a global lock; shortest-path
// distances are unique, so the final contents are independent of which
// thread wins each race — the root of the parallel == sequential
// guarantee. Within a shard, open addressing with linear probing: inserts
// touch one cache line in the common case instead of an allocator.
class FlatDistMap {
 public:
  struct Entry {
    SearchState state = 0;
    Weight g = 0;
    std::uint32_t len = 0;
    bool used = false;
  };

  // Single-writer mode: a searcher running without a pool tells the map
  // to skip the shard locks entirely — TryImprove is then plain loads and
  // stores. MUST be true whenever more than one thread can call
  // TryImprove concurrently.
  void SetConcurrent(bool concurrent) { concurrent_ = concurrent; }

  // Inserts or lexicographically lowers (g, len) for `s`; true when this
  // call changed the stored value.
  bool TryImprove(SearchState s, Weight g, std::uint32_t len) {
    Shard& shard = shards_[ShardIndex(s)];
    if (concurrent_) {
      std::lock_guard<SpinLock> lock(shard.mu);
      return TryImproveIn(shard, s, g, len);
    }
    return TryImproveIn(shard, s, g, len);
  }

  // Best-effort prefetch of the slot TryImprove(s) will probe first, so
  // expansion loops can overlap the map's cache miss with further move
  // evaluation. Reads a relaxed-atomic snapshot of the shard's slab
  // (published by Rehash under the lock), so a concurrent rehash at worst
  // leaves a stale snapshot — and a prefetch of a dead slab is harmless
  // (the hint has no fault or visibility semantics). Never dereferences.
  void Prefetch(SearchState s) const {
    const Shard& shard = shards_[ShardIndex(s)];
    const Entry* base = shard.probe_base.load(std::memory_order_relaxed);
    if (base == nullptr) return;
    const std::uint64_t h = Mix(s);
    const std::size_t i = static_cast<std::size_t>(h ^ (h >> 29)) &
                          shard.probe_mask.load(std::memory_order_relaxed);
    __builtin_prefetch(&base[i], 1, 1);
  }

  // Lock-free lookup; only legal while no expansion is in flight (between
  // waves, and during reconstruction).
  const Entry* Find(SearchState s) const {
    const Shard& shard = shards_[ShardIndex(s)];
    if (shard.slots.empty()) return nullptr;
    const Entry* e = shard.ProbeConst(s);
    return e->used ? e : nullptr;
  }

  // Empties every shard but keeps the slabs — the next phase of a
  // two-phase search reuses the capacity the first phase grew into.
  void Reset() {
    for (Shard& shard : shards_) {
      for (Entry& e : shard.slots) e.used = false;
      shard.size = 0;
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) total += shard.size;
    return total;
  }

  // Bytes held by the slot slabs — the dominant search allocation and the
  // input to the anytime engine's frontier byte budget. Counts capacity,
  // not occupancy, because capacity is what the allocator charged us.
  std::size_t MemoryBytes() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.slots.capacity() * sizeof(Entry);
    }
    return total;
  }

 private:
  static constexpr std::size_t kShardCount = 64;  // power of two
  static constexpr std::size_t kInitialCapacity = 256;

  static std::uint64_t Mix(SearchState s) {
    return s * 0x9e3779b97f4a7c15ull;
  }
  static std::size_t ShardIndex(SearchState s) {
    return static_cast<std::size_t>(Mix(s) >> 58) & (kShardCount - 1);
  }

  struct Shard {
    SpinLock mu;
    std::vector<Entry> slots;  // power-of-two capacity
    std::size_t size = 0;
    // Prefetch()'s lock-free snapshot of (slots.data(), capacity - 1);
    // written only under `mu` (in Rehash), read relaxed from any worker.
    std::atomic<const Entry*> probe_base{nullptr};
    std::atomic<std::size_t> probe_mask{0};

    std::size_t SlotIndex(SearchState s) const {
      const std::uint64_t h = Mix(s);
      return static_cast<std::size_t>(h ^ (h >> 29)) & (slots.size() - 1);
    }
    Entry* Probe(SearchState s) {
      std::size_t i = SlotIndex(s);
      while (slots[i].used && slots[i].state != s) {
        i = (i + 1) & (slots.size() - 1);
      }
      return &slots[i];
    }
    const Entry* ProbeConst(SearchState s) const {
      std::size_t i = SlotIndex(s);
      while (slots[i].used && slots[i].state != s) {
        i = (i + 1) & (slots.size() - 1);
      }
      return &slots[i];
    }
    void Rehash(std::size_t capacity) {
      std::vector<Entry> old = std::exchange(slots, {});
      slots.resize(capacity);
      for (const Entry& e : old) {
        if (e.used) *Probe(e.state) = e;
      }
      probe_base.store(slots.data(), std::memory_order_relaxed);
      probe_mask.store(slots.size() - 1, std::memory_order_relaxed);
    }
  };

  static bool TryImproveIn(Shard& shard, SearchState s, Weight g,
                           std::uint32_t len) {
    if (shard.slots.empty()) shard.Rehash(kInitialCapacity);
    Entry* e = shard.Probe(s);
    if (!e->used) {
      if ((shard.size + 1) * 4 > shard.slots.size() * 3) {
        shard.Rehash(shard.slots.size() * 2);
        e = shard.Probe(s);
      }
      e->state = s;
      e->g = g;
      e->len = len;
      e->used = true;
      ++shard.size;
      return true;
    }
    if (g < e->g || (g == e->g && len < e->len)) {
      e->g = g;
      e->len = len;
      return true;
    }
    return false;
  }

  bool concurrent_ = true;
  Shard shards_[kShardCount];
};

// Recycles the per-level state vectors of the pending map. Extracted
// levels hand their storage back; new levels pull it out again, so after
// the first few waves the frontier runs allocation-free regardless of how
// many levels come and go ("bulk-freed between levels").
class LevelPool {
 public:
  std::vector<SearchState> Acquire() {
    if (pool_.empty()) return {};
    std::vector<SearchState> v = std::move(pool_.back());
    pool_.pop_back();
    return v;
  }
  void Release(std::vector<SearchState>&& v) {
    v.clear();
    pool_.push_back(std::move(v));
  }

 private:
  std::vector<std::vector<SearchState>> pool_;
};

// Deduplicating store for wide pebbling configurations (graphs past the
// 32-node packed fast path). Each configuration is `words` 64-bit words —
// red mask words first, blue mask words second — interned once and handed
// out as a stable SearchState id, so the dist map / pending machinery
// above runs unchanged on ids.
//
// Concurrency contract (mirrors FlatDistMap): Intern() is safe from any
// pool worker mid-wave; Words() may be called on any id PUBLISHED BEFORE
// the last wave barrier (the level-synchronous searcher only dereferences
// states from earlier waves while expanding, and TaskGroup::Wait is the
// synchronizing edge). Slabs are fixed-size chunks behind an atomic
// pointer directory, so interning never moves words a reader could hold.
// Find() (lookup without insert) is only called from the single-threaded
// reconstruction walk.
class StateInterner {
 public:
  explicit StateInterner(std::size_t words) : words_(words) {}

  // Per-worker lookaside over Intern(): a direct-mapped {hash -> id}
  // table that answers repeat interns of hot configurations without
  // touching the owning shard's lock. Entries only ever point at ids the
  // owning worker interned itself, so the Words() dereference in the
  // verify step needs no extra synchronization. One per expansion
  // scratch; cleared never (stale entries just miss).
  class LocalCache {
   public:
    static constexpr std::size_t kSlots = 4096;  // power of two

   private:
    friend class StateInterner;
    struct Slot {
      std::uint64_t hash = 0;
      SearchState id = 0;
      bool used = false;
    };
    std::vector<Slot> slots_;  // sized lazily on first use
  };

  // Intern() through the worker's local cache; `hits`/`misses` count the
  // lookaside's effectiveness (they feed search.intern_cache_* — counts
  // are per-worker and interleaving-dependent, reporting only).
  bool InternCached(const std::uint64_t* w, LocalCache& cache, SearchState* id,
                    std::uint64_t* hits, std::uint64_t* misses) {
    const std::uint64_t h = Hash(w);
    if (cache.slots_.empty()) cache.slots_.resize(LocalCache::kSlots);
    LocalCache::Slot& slot = cache.slots_[h & (LocalCache::kSlots - 1)];
    if (slot.used && slot.hash == h && Equal(Words(slot.id), w)) {
      *id = slot.id;
      ++*hits;
      return true;
    }
    ++*misses;
    if (!InternHashed(w, h, id)) return false;
    slot = {h, *id, true};
    return true;
  }

  // Interns `w` (words_ words) and returns its id; false when the chunk
  // directory is exhausted (the caller treats it as a memory cap — at
  // default chunking that is >500M states, far past any byte budget).
  bool Intern(const std::uint64_t* w, SearchState* id) {
    return InternHashed(w, Hash(w), id);
  }

 private:
  bool InternHashed(const std::uint64_t* w, std::uint64_t h, SearchState* id) {
    Shard& shard = shards_[ShardIndex(h)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.slots.empty()) shard.slots.assign(kInitialCapacity, 0);
    std::uint32_t* slot = Probe(shard, h, w);
    if (*slot != 0) {
      *id = MakeId(ShardIndex(h), *slot - 1);
      return true;
    }
    const std::uint32_t local = shard.count;
    const std::size_t chunk = local / kChunkStates;
    if (chunk >= kMaxChunks) return false;
    if (shard.chunks[chunk].load(std::memory_order_relaxed) == nullptr) {
      shard.storage.push_back(
          std::make_unique<std::uint64_t[]>(kChunkStates * words_));
      shard.chunks[chunk].store(shard.storage.back().get(),
                                std::memory_order_release);
    }
    std::uint64_t* dst = shard.chunks[chunk].load(std::memory_order_relaxed) +
                         (local % kChunkStates) * words_;
    std::memcpy(dst, w, words_ * sizeof(std::uint64_t));
    ++shard.count;
    if ((shard.count + 1) * 4 > shard.slots.size() * 3) {
      Rehash(shard);
      slot = Probe(shard, h, w);
    }
    *slot = local + 1;
    *id = MakeId(ShardIndex(h), local);
    return true;
  }

 public:
  // Lookup without insert; used by the reconstruction walk to test
  // whether a candidate predecessor was ever discovered.
  bool Find(const std::uint64_t* w, SearchState* id) const {
    const std::uint64_t h = Hash(w);
    const Shard& shard = shards_[ShardIndex(h)];
    if (shard.slots.empty()) return false;
    std::size_t i = static_cast<std::size_t>(h ^ (h >> 31)) &
                    (shard.slots.size() - 1);
    while (shard.slots[i] != 0) {
      if (Equal(WordsIn(shard, shard.slots[i] - 1), w)) {
        *id = MakeId(ShardIndex(h), shard.slots[i] - 1);
        return true;
      }
      i = (i + 1) & (shard.slots.size() - 1);
    }
    return false;
  }

  // The words of an interned id (red words, then blue words).
  const std::uint64_t* Words(SearchState id) const {
    const Shard& shard = shards_[id & (kShardCount - 1)];
    const std::uint32_t local = static_cast<std::uint32_t>(id >> kShardBits);
    return shard.chunks[local / kChunkStates].load(
               std::memory_order_acquire) +
           (local % kChunkStates) * words_;
  }

  std::size_t words() const { return words_; }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) total += shard.count;
    return total;
  }

  std::size_t MemoryBytes() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.storage.size() * kChunkStates * words_ *
                   sizeof(std::uint64_t) +
               shard.slots.capacity() * sizeof(std::uint32_t);
    }
    return total;
  }

 private:
  static constexpr std::size_t kShardBits = 6;
  static constexpr std::size_t kShardCount = 1u << kShardBits;
  static constexpr std::size_t kInitialCapacity = 1024;
  static constexpr std::size_t kChunkStates = 4096;
  static constexpr std::size_t kMaxChunks = 2048;

  struct Shard {
    std::mutex mu;
    std::vector<std::uint32_t> slots;  // local id + 1; 0 == empty
    std::uint32_t count = 0;
    std::vector<std::unique_ptr<std::uint64_t[]>> storage;
    std::atomic<std::uint64_t*> chunks[kMaxChunks] = {};
  };

  static std::size_t ShardIndex(std::uint64_t h) {
    return (h >> 58) & (kShardCount - 1);
  }
  static SearchState MakeId(std::size_t shard, std::uint32_t local) {
    return (static_cast<SearchState>(local) << kShardBits) |
           static_cast<SearchState>(shard);
  }
  std::uint64_t Hash(const std::uint64_t* w) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (std::size_t i = 0; i < words_; ++i) {
      h ^= w[i] + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h *= 0xbf58476d1ce4e5b9ull;
    }
    return h;
  }
  bool Equal(const std::uint64_t* a, const std::uint64_t* b) const {
    return std::memcmp(a, b, words_ * sizeof(std::uint64_t)) == 0;
  }
  const std::uint64_t* WordsIn(const Shard& shard,
                               std::uint32_t local) const {
    return shard.chunks[local / kChunkStates].load(
               std::memory_order_relaxed) +
           (local % kChunkStates) * words_;
  }
  std::uint32_t* Probe(Shard& shard, std::uint64_t h,
                       const std::uint64_t* w) {
    std::size_t i = static_cast<std::size_t>(h ^ (h >> 31)) &
                    (shard.slots.size() - 1);
    while (shard.slots[i] != 0 &&
           !Equal(WordsIn(shard, shard.slots[i] - 1), w)) {
      i = (i + 1) & (shard.slots.size() - 1);
    }
    return &shard.slots[i];
  }
  void Rehash(Shard& shard) {
    std::vector<std::uint32_t> old = std::exchange(
        shard.slots, std::vector<std::uint32_t>(shard.slots.size() * 2, 0));
    for (const std::uint32_t local_plus_1 : old) {
      if (local_plus_1 == 0) continue;
      const std::uint64_t* w = WordsIn(shard, local_plus_1 - 1);
      *Probe(shard, Hash(w), w) = local_plus_1;
    }
  }

  std::size_t words_;
  Shard shards_[kShardCount];
};

}  // namespace wrbpg
