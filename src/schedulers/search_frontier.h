// Allocation-lean frontier mechanics for the exact search engine
// (DESIGN.md §9): an open-addressing flat distance map plus pooled wave
// buffers. The PR 3 engine kept distances in 64 sharded
// std::unordered_map shards and allocated a fresh std::vector per
// (key, level) of the pending map — node-by-node heap traffic on the
// hottest loop in the repo. Here every shard is a flat linear-probe
// table (one contiguous slab, grown by doubling, never freed mid-search)
// and level vectors are recycled through a pool, so steady-state waves
// allocate nothing.
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "core/types.h"

namespace wrbpg {

// Packed pebbling configuration: red mask | (blue mask << 32).
using SearchState = std::uint64_t;

// Concurrent SearchState -> best-known (g, len) map. Sharded so parallel
// frontier expansion relaxes edges without a global lock; shortest-path
// distances are unique, so the final contents are independent of which
// thread wins each race — the root of the parallel == sequential
// guarantee. Within a shard, open addressing with linear probing: inserts
// touch one cache line in the common case instead of an allocator.
class FlatDistMap {
 public:
  struct Entry {
    SearchState state = 0;
    Weight g = 0;
    std::uint32_t len = 0;
    bool used = false;
  };

  // Inserts or lexicographically lowers (g, len) for `s`; true when this
  // call changed the stored value.
  bool TryImprove(SearchState s, Weight g, std::uint32_t len) {
    Shard& shard = shards_[ShardIndex(s)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.slots.empty()) shard.Rehash(kInitialCapacity);
    Entry* e = shard.Probe(s);
    if (!e->used) {
      if ((shard.size + 1) * 4 > shard.slots.size() * 3) {
        shard.Rehash(shard.slots.size() * 2);
        e = shard.Probe(s);
      }
      e->state = s;
      e->g = g;
      e->len = len;
      e->used = true;
      ++shard.size;
      return true;
    }
    if (g < e->g || (g == e->g && len < e->len)) {
      e->g = g;
      e->len = len;
      return true;
    }
    return false;
  }

  // Lock-free lookup; only legal while no expansion is in flight (between
  // waves, and during reconstruction).
  const Entry* Find(SearchState s) const {
    const Shard& shard = shards_[ShardIndex(s)];
    if (shard.slots.empty()) return nullptr;
    const Entry* e = shard.ProbeConst(s);
    return e->used ? e : nullptr;
  }

  // Empties every shard but keeps the slabs — the next phase of a
  // two-phase search reuses the capacity the first phase grew into.
  void Reset() {
    for (Shard& shard : shards_) {
      for (Entry& e : shard.slots) e.used = false;
      shard.size = 0;
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) total += shard.size;
    return total;
  }

 private:
  static constexpr std::size_t kShardCount = 64;  // power of two
  static constexpr std::size_t kInitialCapacity = 256;

  static std::uint64_t Mix(SearchState s) {
    return s * 0x9e3779b97f4a7c15ull;
  }
  static std::size_t ShardIndex(SearchState s) {
    return static_cast<std::size_t>(Mix(s) >> 58) & (kShardCount - 1);
  }

  struct Shard {
    std::mutex mu;
    std::vector<Entry> slots;  // power-of-two capacity
    std::size_t size = 0;

    std::size_t SlotIndex(SearchState s) const {
      const std::uint64_t h = Mix(s);
      return static_cast<std::size_t>(h ^ (h >> 29)) & (slots.size() - 1);
    }
    Entry* Probe(SearchState s) {
      std::size_t i = SlotIndex(s);
      while (slots[i].used && slots[i].state != s) {
        i = (i + 1) & (slots.size() - 1);
      }
      return &slots[i];
    }
    const Entry* ProbeConst(SearchState s) const {
      std::size_t i = SlotIndex(s);
      while (slots[i].used && slots[i].state != s) {
        i = (i + 1) & (slots.size() - 1);
      }
      return &slots[i];
    }
    void Rehash(std::size_t capacity) {
      std::vector<Entry> old = std::exchange(slots, {});
      slots.resize(capacity);
      for (const Entry& e : old) {
        if (e.used) *Probe(e.state) = e;
      }
    }
  };
  Shard shards_[kShardCount];
};

// Recycles the per-level state vectors of the pending map. Extracted
// levels hand their storage back; new levels pull it out again, so after
// the first few waves the frontier runs allocation-free regardless of how
// many levels come and go ("bulk-freed between levels").
class LevelPool {
 public:
  std::vector<SearchState> Acquire() {
    if (pool_.empty()) return {};
    std::vector<SearchState> v = std::move(pool_.back());
    pool_.pop_back();
    return v;
  }
  void Release(std::vector<SearchState>&& v) {
    v.clear();
    pool_.push_back(std::move(v));
  }

 private:
  std::vector<std::vector<SearchState>> pool_;
};

}  // namespace wrbpg
