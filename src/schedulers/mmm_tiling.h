// Tiled scheduler for MMM(m, k, n) — the tensor extension of Sec 4.3.
//
// Three reuse families generalize the MVM tiling's accumulator/vector
// residency to two-dimensional outputs:
//   * kBlock — a bi x bj block of output accumulators stays resident;
//     per reduction step the block's A-column and B-row segments stream
//     through. A is re-read once per column stripe, B once per row stripe:
//       Cost = w_in*(m*k*ceil(n/bj) + k*n*ceil(m/bi)) + w_c*m*n
//   * kAResident — all of A pinned, one output column of accumulators at a
//     time: every input read exactly once (the algorithmic lower bound).
//   * kBResident — symmetric.
// The search picks the cheapest feasible family/tile for a budget; the
// generator emits the move-exact schedule, cross-checked by the simulator.
#pragma once

#include <optional>

#include "dataflows/mmm_graph.h"
#include "schedulers/scheduler.h"

namespace wrbpg {

class MmmTilingScheduler {
 public:
  explicit MmmTilingScheduler(const MmmGraph& mmm);

  enum class Residency : std::uint8_t { kBlock, kAResident, kBResident };
  struct Tile {
    Residency residency = Residency::kBlock;
    std::int64_t bi = 1;  // block rows (kBlock only)
    std::int64_t bj = 1;  // block cols (kBlock only)
  };

  Weight CostOnly(Weight budget) const;
  std::optional<Tile> BestTile(Weight budget) const;
  ScheduleResult Run(Weight budget) const;

  Weight TileCost(const Tile& tile) const;
  Weight TilePeak(const Tile& tile) const;

  // Definition 2.6, exact over the strategy family.
  Weight MinMemoryForLowerBound() const;

 private:
  void GenerateBlock(const Tile& tile, Schedule& out) const;
  void GenerateResident(bool a_resident, Schedule& out) const;

  const MmmGraph& mmm_;
  Weight w_in_ = 0;
  Weight w_c_ = 0;
};

}  // namespace wrbpg
