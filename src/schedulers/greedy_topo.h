// Greedy topological scheduler — the constructive half of Proposition 2.3.
//
// Processes nodes in topological order; for each non-source node it loads
// the parents from slow memory, computes, stores the result, and frees all
// red pebbles. Produces a valid schedule for ANY CDAG whenever the budget
// admits one (budget >= MinValidBudget), at the price of one load per edge.
// Serves as the universal feasibility fallback and the weakest baseline.
#pragma once

#include "core/graph.h"
#include "schedulers/scheduler.h"

namespace wrbpg {

class GreedyTopoScheduler {
 public:
  explicit GreedyTopoScheduler(const Graph& graph) : graph_(graph) {}

  ScheduleResult Run(Weight budget) const;
  Weight CostOnly(Weight budget) const;

 private:
  const Graph& graph_;
};

}  // namespace wrbpg
