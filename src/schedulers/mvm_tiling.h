// Dataflow-specific tiling scheduler for MVM(m, n) — Sec 4.3.
//
// The schedule space is a family of hybrid tiles parameterized by
//   * h — the tile height: how many output rows (accumulator chains) are
//     pebbled concurrently, i.e. how many running values stay red;
//   * g — how many vector words x_0..x_{g-1} stay resident for reuse across
//     row stripes (the memory-state mechanism of Sec 4.1 applied to x);
//   * spill_running — the narrow-tile fallback for budgets near the
//     feasibility floor: running sums are stored and reloaded around every
//     column instead of staying resident (tile width one, in the paper's
//     terms), which brings the peak down to MinValidBudget.
//
// Matrix entries are always read exactly once and every output is written
// exactly once in the non-spilling strategies — the two properties the paper
// credits for beating IOOpt (Sec 5.2). Costs and peak occupancies have
// closed forms (below) that the explicit schedule generator realizes
// move-for-move; tests cross-check both against the simulator and, on small
// instances, against the brute-force optimum.
//
//   Cost(g, h)  = w_in*m*n  +  w_in*(g + (n-g)*ceil(m/h))  +  w_c*m
//   achieving the algorithmic lower bound exactly when g = n or h = m.
//
// Uniform input and compute weights are required (true of both evaluation
// configurations); the constructor checks this.
#pragma once

#include <optional>

#include "dataflows/mvm_graph.h"
#include "schedulers/scheduler.h"

namespace wrbpg {

class MvmTilingScheduler {
 public:
  explicit MvmTilingScheduler(const MvmGraph& mvm);

  struct Tile {
    std::int64_t g = 0;          // resident vector words
    std::int64_t h = 1;          // tile height (rows per stripe)
    bool spill_running = false;  // tile-width-one fallback
  };

  // Minimum cost over all feasible tiles under the budget.
  Weight CostOnly(Weight budget) const;
  // The tile realizing CostOnly (nullopt when infeasible).
  std::optional<Tile> BestTile(Weight budget) const;
  // Explicit schedule for the best tile.
  ScheduleResult Run(Weight budget) const;

  // Closed-form cost/peak of one tile configuration (kInfiniteCost /
  // peak when parameters are out of range).
  Weight TileCost(const Tile& tile) const;
  Weight TilePeak(const Tile& tile) const;

  // Definition 2.6: smallest budget whose best tile reaches the algorithmic
  // lower bound. Exact and analytic (scans the tile grid once).
  Weight MinMemoryForLowerBound() const;

 private:
  void GenerateTile(const Tile& tile, Schedule& out) const;

  const MvmGraph& mvm_;
  Weight w_in_ = 0;  // uniform input weight
  Weight w_c_ = 0;   // uniform product/accumulator weight
};

}  // namespace wrbpg
