#include "schedulers/memory_state.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "dataflows/tree_graph.h"

namespace wrbpg {
namespace {

Weight SatAdd(Weight a, Weight b) {
  if (a >= kInfiniteCost || b >= kInfiniteCost) return kInfiniteCost;
  return a + b;
}

constexpr std::uint64_t Bit(NodeId v) { return std::uint64_t{1} << v; }

}  // namespace

MemoryStateScheduler::MemoryStateScheduler(const Graph& graph)
    : graph_(graph), subtree_mask_(graph.num_nodes(), 0) {
  if (graph.num_nodes() > 64) {
    std::fprintf(stderr,
                 "MemoryStateScheduler: graphs are limited to 64 nodes\n");
    std::abort();
  }
  if (!TreeRoot(graph)) {
    std::fprintf(stderr,
                 "MemoryStateScheduler: graph is not a rooted in-tree\n");
    std::abort();
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.in_degree(v) > 8) {
      std::fprintf(stderr,
                   "MemoryStateScheduler: in-degree %zu exceeds the "
                   "supported bound of 8\n",
                   graph.in_degree(v));
      std::abort();
    }
  }
  // Predecessor-closure masks in topological order (parents precede child).
  for (NodeId v : graph.topological_order()) {
    std::uint64_t mask = Bit(v);
    for (NodeId p : graph.parents(v)) mask |= subtree_mask_[p];
    subtree_mask_[v] = mask;
  }
}

Weight MemoryStateScheduler::MaskWeight(std::uint64_t mask) const {
  Weight w = 0;
  while (mask != 0) {
    w += graph_.weight(static_cast<NodeId>(std::countr_zero(mask)));
    mask &= mask - 1;
  }
  return w;
}

MemoryStateScheduler::Entry MemoryStateScheduler::P(NodeId v, Weight b) {
  const std::uint64_t sub = subtree_mask_[v];
  const std::uint64_t iv = state_.initial & sub;
  const std::uint64_t rv = state_.reuse & sub;

  // Eq. (8) first line: R_v, H(v) and v must be able to co-reside.
  std::uint64_t need_mask = rv | Bit(v);
  for (NodeId p : graph_.parents(v)) need_mask |= Bit(p);
  if (MaskWeight(need_mask) > b) return Entry{};

  if ((iv & Bit(v)) != 0) {
    // Already resident: only bring in the reuse nodes that are not.
    Entry e;
    e.cost = MaskWeight(rv & ~state_.initial);
    return e;
  }
  if (graph_.is_source(v)) {
    Entry e;
    e.cost = graph_.weight(v);
    return e;
  }

  const Key key{v, b};
  if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

  const auto parents = graph_.parents(v);
  const int k = static_cast<int>(parents.size());

  // Per-parent masks and the spill rules.
  std::array<std::uint64_t, 8> isub{}, rsub{};
  std::array<Weight, 8> spill_cost{};
  std::array<bool, 8> may_spill{};
  for (int i = 0; i < k; ++i) {
    const NodeId p = parents[static_cast<std::size_t>(i)];
    isub[static_cast<std::size_t>(i)] = state_.initial & subtree_mask_[p];
    rsub[static_cast<std::size_t>(i)] = state_.reuse & subtree_mask_[p];
    // A source's blue pebble is permanent, so spilling it only pays the
    // reload; otherwise store + reload (the literal 2w of Eq. (8)).
    spill_cost[static_cast<std::size_t>(i)] =
        graph_.is_source(p) ? graph_.weight(p) : 2 * graph_.weight(p);
    // Reuse nodes stay resident once computed: never spilled.
    may_spill[static_cast<std::size_t>(i)] = (state_.reuse & Bit(p)) == 0;
  }

  Entry best;
  std::array<std::uint8_t, 8> order{};
  std::iota(order.begin(), order.begin() + k, std::uint8_t{0});
  do {
    // Keep-heavy deltas first so cost ties prefer fewer spills.
    for (std::uint32_t delta = (1u << k); delta-- > 0;) {
      bool allowed = true;
      for (int i = 0; i < k && allowed; ++i) {
        if (((delta >> i) & 1u) == 0 &&
            !may_spill[order[static_cast<std::size_t>(i)]]) {
          allowed = false;
        }
      }
      if (!allowed) continue;

      Weight cost = 0;
      // Initial residents of the not-yet-computed subtrees occupy memory
      // throughout the earlier phases.
      std::uint64_t pending_initial = 0;
      for (int i = 0; i < k; ++i) {
        pending_initial |= isub[order[static_cast<std::size_t>(i)]];
      }
      std::uint64_t held = 0;  // what earlier subtrees keep resident
      for (int i = 0; i < k && cost < kInfiniteCost; ++i) {
        const int pi = order[static_cast<std::size_t>(i)];
        const NodeId p = parents[static_cast<std::size_t>(pi)];
        pending_initial &= ~isub[static_cast<std::size_t>(pi)];
        const Weight sub_budget =
            b - MaskWeight(held) - MaskWeight(pending_initial);
        cost = SatAdd(cost, P(p, sub_budget).cost);
        held |= rsub[static_cast<std::size_t>(pi)];
        if ((delta >> i) & 1u) {
          held |= Bit(p);
        } else {
          cost = SatAdd(cost, spill_cost[static_cast<std::size_t>(pi)]);
        }
      }
      if (cost < best.cost) {
        best.cost = cost;
        best.is_state_case = false;
        best.delta = delta;
        best.perm = 0;
        for (int i = 0; i < k; ++i) {
          best.perm |= static_cast<std::uint32_t>(
                           order[static_cast<std::size_t>(i)])
                       << (4 * i);
        }
      }
    }
  } while (std::next_permutation(order.begin(), order.begin() + k));

  memo_.emplace(key, best);
  return best;
}

void MemoryStateScheduler::Generate(NodeId v, Weight b, Schedule& out) const {
  const std::uint64_t sub = subtree_mask_[v];
  const std::uint64_t iv = state_.initial & sub;
  const std::uint64_t rv = state_.reuse & sub;

  if ((iv & Bit(v)) != 0) {
    // Release stale initial residents below v (not reused, free), then bring
    // in missing reuse nodes — they carry blue pebbles by assumption.
    std::uint64_t stale = iv & ~rv & ~Bit(v);
    while (stale != 0) {
      out.Append(Delete(static_cast<NodeId>(std::countr_zero(stale))));
      stale &= stale - 1;
    }
    std::uint64_t missing = rv & ~state_.initial;
    while (missing != 0) {
      out.Append(Load(static_cast<NodeId>(std::countr_zero(missing))));
      missing &= missing - 1;
    }
    return;
  }
  if (graph_.is_source(v)) {
    out.Append(Load(v));
    return;
  }

  const auto it = memo_.find(Key{v, b});
  assert(it != memo_.end() && it->second.cost < kInfiniteCost &&
         !it->second.is_state_case);
  const Entry& entry = it->second;

  const auto parents = graph_.parents(v);
  const int k = static_cast<int>(parents.size());

  std::uint64_t pending_initial = 0;
  for (NodeId p : parents) pending_initial |= state_.initial & subtree_mask_[p];
  std::uint64_t held = 0;
  for (int i = 0; i < k; ++i) {
    const int pi = static_cast<int>((entry.perm >> (4 * i)) & 0xf);
    const NodeId p = parents[static_cast<std::size_t>(pi)];
    pending_initial &= ~(state_.initial & subtree_mask_[p]);
    const Weight sub_budget =
        b - MaskWeight(held) - MaskWeight(pending_initial);
    Generate(p, sub_budget, out);
    held |= state_.reuse & subtree_mask_[p];
    if ((entry.delta >> i) & 1u) {
      held |= Bit(p);
    } else {
      // Sources keep their initial blue pebble, so eviction needs no store.
      if (!graph_.is_source(p)) out.Append(Store(p));
      out.Append(Delete(p));
    }
  }
  // Reload the spilled parents now that the kept ones are co-resident.
  for (int i = 0; i < k; ++i) {
    if ((entry.delta >> i) & 1u) continue;
    out.Append(Load(parents[(entry.perm >> (4 * i)) & 0xf]));
  }
  out.Append(Compute(v));
  for (NodeId p : parents) {
    if ((state_.reuse & Bit(p)) == 0) out.Append(Delete(p));
  }
}

Weight MemoryStateScheduler::Cost(NodeId target, Weight budget,
                                  const MemoryState& state) {
  state_ = state;
  memo_.clear();
  return P(target, budget).cost;
}

ScheduleResult MemoryStateScheduler::Run(NodeId target, Weight budget,
                                         const MemoryState& state) {
  const Weight cost = Cost(target, budget, state);
  if (cost >= kInfiniteCost) return ScheduleResult::Infeasible();
  ScheduleResult result;
  result.feasible = true;
  result.cost = cost;
  Generate(target, budget, result.schedule);
  return result;
}

}  // namespace wrbpg
