#include "schedulers/dwt_optimal.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "core/analysis.h"
#include "obs/metrics.h"

namespace wrbpg {
namespace {

Weight SatAdd(Weight a, Weight b) {
  if (a >= kInfiniteCost || b >= kInfiniteCost) return kInfiniteCost;
  return a + b;
}

const obs::Counter& MemoHits() {
  static const obs::Counter c("dp.dwt.memo_hit");
  return c;
}
const obs::Counter& MemoMisses() {
  static const obs::Counter c("dp.dwt.memo_miss");
  return c;
}

}  // namespace

DwtOptimalScheduler::DwtOptimalScheduler(const DwtGraph& dwt)
    : dwt_(dwt),
      sibling_(dwt.graph.num_nodes(), kInvalidNode),
      memo_(dwt.graph.num_nodes()) {
  // Pair each average with its coefficient sibling and check the Lemma 3.2
  // weight precondition (w_coefficient <= w_average within each pair).
  for (std::size_t layer = 1; layer < dwt_.layers.size(); ++layer) {
    const auto& nodes = dwt_.layers[layer];
    assert(nodes.size() % 2 == 0);
    for (std::size_t j = 0; j + 1 < nodes.size(); j += 2) {
      const NodeId avg = nodes[j];
      const NodeId coeff = nodes[j + 1];
      assert(dwt_.roles[avg] == DwtRole::kAverage);
      assert(dwt_.roles[coeff] == DwtRole::kCoefficient);
      sibling_[avg] = coeff;
      if (dwt_.graph.weight(coeff) > dwt_.graph.weight(avg)) {
        std::fprintf(stderr,
                     "DwtOptimalScheduler: Lemma 3.2 precondition violated "
                     "(coefficient heavier than sibling average)\n");
        std::abort();
      }
      coefficient_weight_total_ += dwt_.graph.weight(coeff);
    }
  }
  const auto& last = dwt_.layers.back();
  for (std::size_t j = 0; j < last.size(); j += 2) roots_.push_back(last[j]);
}

DwtOptimalScheduler::Entry DwtOptimalScheduler::P(NodeId v, Weight b) {
  const Graph& g = dwt_.graph;
  if (g.is_source(v)) {
    Entry e;
    if (g.weight(v) <= b) {
      e.cost = g.weight(v);
      e.strategy = Strategy::kLeaf;
    }
    return e;
  }

  auto& node_memo = memo_[v];
  if (const auto it = node_memo.find(b); it != node_memo.end()) {
    MemoHits().Add(1);
    return it->second;
  }
  MemoMisses().Add(1);

  const auto parents = g.parents(v);
  assert(parents.size() == 2);
  const NodeId p1 = parents[0];
  const NodeId p2 = parents[1];
  const Weight w1 = g.weight(p1);
  const Weight w2 = g.weight(p2);

  Entry best;
  if (cancel_ != nullptr && cancel_->cancelled()) {
    // Unwind without memoizing: entries derived from cancelled children
    // would record spurious infinite costs. Cancellation is monotone, so
    // nothing computed after this point is cached either.
    return best;
  }
  if (g.weight(v) + w1 + w2 <= b) {
    struct Candidate {
      Strategy strategy;
      Weight cost;
    };
    const Candidate candidates[] = {
        // Keep-red strategies first so that argmin ties never select a
        // spill of a source node (whose M2 would be redundant).
        {Strategy::kKeepKeep1, SatAdd(P(p1, b).cost, P(p2, b - w1).cost)},
        {Strategy::kKeepKeep2, SatAdd(P(p2, b).cost, P(p1, b - w2).cost)},
        {Strategy::kSpill1,
         SatAdd(SatAdd(P(p1, b).cost, P(p2, b).cost), 2 * w1)},
        {Strategy::kSpill2,
         SatAdd(SatAdd(P(p2, b).cost, P(p1, b).cost), 2 * w2)},
    };
    for (const auto& candidate : candidates) {
      if (candidate.cost < best.cost) {
        best.cost = candidate.cost;
        best.strategy = candidate.strategy;
      }
    }
  }
  // A child evaluated above may have unwound on cancellation and reported
  // a spurious infinite cost; re-check before caching.
  if (cancel_ != nullptr && cancel_->cancelled()) return best;
  node_memo.emplace(b, best);
  return best;
}

void DwtOptimalScheduler::Generate(NodeId v, Weight b, Schedule& out) const {
  const Graph& g = dwt_.graph;
  if (g.is_source(v)) {
    out.Append(Load(v));
    return;
  }
  const auto it = memo_[v].find(b);
  assert(it != memo_[v].end() && it->second.cost < kInfiniteCost);
  const Strategy strategy = it->second.strategy;

  const auto parents = g.parents(v);
  const NodeId p1 = parents[0];
  const NodeId p2 = parents[1];

  switch (strategy) {
    case Strategy::kLeaf:
      assert(false && "non-source node resolved to kLeaf");
      break;
    case Strategy::kKeepKeep1:
      Generate(p1, b, out);
      Generate(p2, b - g.weight(p1), out);
      break;
    case Strategy::kKeepKeep2:
      Generate(p2, b, out);
      Generate(p1, b - g.weight(p2), out);
      break;
    case Strategy::kSpill1:
      assert(!g.is_source(p1));
      Generate(p1, b, out);
      out.Append(Store(p1));
      out.Append(Delete(p1));
      Generate(p2, b, out);
      out.Append(Load(p1));
      break;
    case Strategy::kSpill2:
      assert(!g.is_source(p2));
      Generate(p2, b, out);
      out.Append(Store(p2));
      out.Append(Delete(p2));
      Generate(p1, b, out);
      out.Append(Load(p2));
      break;
  }

  // Lemma 3.2: compute and emit the pruned coefficient sibling while the
  // shared parents are resident, then compute v and release the parents.
  const NodeId u = sibling_[v];
  assert(u != kInvalidNode);
  out.Append(Compute(u));
  out.Append(Store(u));
  out.Append(Delete(u));
  out.Append(Compute(v));
  out.Append(Delete(p1));
  out.Append(Delete(p2));
}

Weight DwtOptimalScheduler::CostOnly(Weight budget,
                                     const CancelToken* cancel) {
  cancel_ = cancel;
  Weight total = coefficient_weight_total_;
  for (NodeId root : roots_) {
    const Entry e = P(root, budget);
    if (e.cost >= kInfiniteCost) {
      cancel_ = nullptr;
      return kInfiniteCost;
    }
    total += e.cost + dwt_.graph.weight(root);
  }
  cancel_ = nullptr;
  return total;
}

ScheduleResult DwtOptimalScheduler::Run(Weight budget,
                                        const CancelToken* cancel) {
  const Weight cost = CostOnly(budget, cancel);
  if (cancel != nullptr && cancel->cancelled()) {
    return ScheduleResult::TimedOut();
  }
  if (cost >= kInfiniteCost) return ScheduleResult::Infeasible();

  ScheduleResult result;
  result.feasible = true;
  result.cost = cost;
  // Algorithm 1 is exact on DWT instances: the cost is the optimum, so
  // the anytime contract closes with a zero gap.
  result.lower_bound = cost;
  result.optimality_gap = 0;
  result.termination = Termination::kOptimal;
  for (NodeId root : roots_) {
    Generate(root, budget, result.schedule);
    result.schedule.Append(Store(root));
    result.schedule.Append(Delete(root));
  }
  return result;
}

Weight DwtOptimalScheduler::MinMemoryForLowerBound(Weight step, Weight hi) {
  const Weight target = AlgorithmicLowerBound(dwt_.graph);
  const auto found = FindMinimumFastMemory(
      [this](Weight b) { return CostOnly(b); }, target,
      {.lo = step, .hi = hi, .step = step, .monotone = true});
  return found.value_or(0);
}

}  // namespace wrbpg
