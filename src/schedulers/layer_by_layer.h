// Layer-by-layer scheduling heuristic — the DWT baseline of Sec 5.1.
//
// Traverses the graph layer after layer; within a layer, nodes are scheduled
// in index order, alternating ascending/descending direction between layers
// (the paper's optimization that retains recently computed values across
// adjacent layers). When placing a pebble would exceed the fast-memory
// budget, resident values that still have pending children are spilled to
// slow memory in FIFO order of their placement; values whose children are
// all computed are deleted eagerly (outputs are stored first).
//
// Works on any layered CDAG description (layers[0] = the input layer) and
// produces a valid schedule for every budget >= MinValidBudget.
#pragma once

#include <vector>

#include "core/graph.h"
#include "schedulers/scheduler.h"

namespace wrbpg {

class LayerByLayerScheduler {
 public:
  // `layers` partitions the node set; layers[0] must be exactly the sources.
  // `alternate` toggles the direction alternation (kept for the ablation
  // study; the paper's baseline uses true).
  LayerByLayerScheduler(const Graph& graph,
                        std::vector<std::vector<NodeId>> layers,
                        bool alternate = true);

  ScheduleResult Run(Weight budget) const;
  Weight CostOnly(Weight budget) const;

  // Definition 2.6 scan. The heuristic's cost is not provably monotone in
  // the budget, so this scans linearly upward in `step` increments.
  Weight MinMemoryForLowerBound(Weight step, Weight hi) const;

 private:
  const Graph& graph_;
  std::vector<std::vector<NodeId>> layers_;
  bool alternate_;
};

}  // namespace wrbpg
