// Optimal scheduler for k-ary tree graphs — Eq. (6), Lemma 3.7, Theorem 3.8.
//
// For every node the DP enumerates all k! parent orderings and, per ordering,
// all 2^k keep-red/spill-blue decisions delta: a kept parent reduces the
// budget of the parents computed after it; a spilled parent pays 2*w (store
// plus reload) and is brought back just before the node computes:
//
//   P_t(v,b) = min over sigma, delta of
//       sum_i P_t(sigma(i), b - sum_{j<i} delta_j * w_sigma(j))
//     + 2 * sum_i (1 - delta_i) * w_sigma(i)
//
// Memoized on (node, budget). Theorem 3.8 bounds this to polynomial time for
// k = O(log log n); practical instances have k = O(1). Spilling a source is
// strictly dominated (its blue pebble is permanent, and moving it to the end
// of the ordering with delta=1 always saves 2*w), so ties never force an
// M2 onto a node that already holds blue — Generate() asserts this.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/graph.h"
#include "schedulers/scheduler.h"

namespace wrbpg {

class KaryTreeScheduler {
 public:
  // `graph` must be a rooted in-tree (TreeRoot(graph) non-empty) with
  // in-degree at most 8 (k! * 2^k enumeration).
  explicit KaryTreeScheduler(const Graph& graph);

  // Full game: pebbles the tree and blue-pebbles the root sink.
  ScheduleResult Run(Weight budget);
  Weight CostOnly(Weight budget);

  // Definition 2.6 search over multiples of `step`, exploiting monotonicity.
  Weight MinMemoryForLowerBound(Weight step, Weight hi);

  NodeId root() const noexcept { return root_; }

 private:
  struct Entry {
    Weight cost = kInfiniteCost;
    // Chosen parent visit order (indices into parents(v)), low nibble first,
    // and keep/spill mask delta (bit i set = parent sigma(i) kept red).
    std::uint32_t perm = 0;
    std::uint32_t delta = 0;
  };

  Entry P(NodeId v, Weight b);
  void Generate(NodeId v, Weight b, Schedule& out) const;

  const Graph& graph_;
  NodeId root_ = kInvalidNode;
  std::vector<std::unordered_map<Weight, Entry>> memo_;
};

}  // namespace wrbpg
