#include "schedulers/mvm_tiling.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/analysis.h"
#include "util/mathutil.h"

namespace wrbpg {

MvmTilingScheduler::MvmTilingScheduler(const MvmGraph& mvm) : mvm_(mvm) {
  const Graph& g = mvm.graph;
  w_in_ = g.weight(mvm.x(0));
  w_c_ = g.weight(mvm.product(0, 0));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const bool is_input = mvm_.roles[v] == MvmRole::kVectorInput ||
                          mvm_.roles[v] == MvmRole::kMatrixInput;
    if (g.weight(v) != (is_input ? w_in_ : w_c_)) {
      std::fprintf(stderr,
                   "MvmTilingScheduler: weights must be uniform per role\n");
      std::abort();
    }
  }
}

Weight MvmTilingScheduler::TileCost(const Tile& tile) const {
  const std::int64_t m = mvm_.m, n = mvm_.n;
  if (tile.g < 0 || tile.g > n || tile.h < 1 || tile.h > m) {
    return kInfiniteCost;
  }
  if (tile.spill_running) {
    // Every running value (first product + each accumulator) is stored once
    // and all but the output reloaded once: (2n - 1) * w_c per row.
    return w_in_ * m * n + w_in_ * (tile.g + (n - tile.g) * m) +
           w_c_ * m * (2 * n - 1);
  }
  const std::int64_t stripes = CeilDiv(m, tile.h);
  return w_in_ * m * n + w_in_ * (tile.g + (n - tile.g) * stripes) +
         w_c_ * m;
}

Weight MvmTilingScheduler::TilePeak(const Tile& tile) const {
  const std::int64_t m = mvm_.m, n = mvm_.n;
  if (tile.g < 0 || tile.g > n || tile.h < 1 || tile.h > m) {
    return kInfiniteCost;
  }
  const Weight base = w_in_ * tile.g;
  // Extra word for the currently streamed, non-resident vector entry.
  const Weight xe = tile.g < n ? w_in_ : 0;        // for columns >= 1
  const Weight xe0 = tile.g == 0 ? w_in_ : 0;      // for column 0

  if (tile.spill_running) {
    Weight peak = base + xe0 + w_in_ + w_c_;               // M3(product), c=0
    if (n >= 2) {
      peak = std::max(peak, base + xe + w_in_ + w_c_);     // M3(product)
      peak = std::max(peak, base + 3 * w_c_);              // M3(accumulate)
    }
    return peak;
  }

  const Weight hh = std::min<std::int64_t>(tile.h, m);
  Weight peak = base + xe0 + hh * w_c_ + w_in_;            // col 0, M3(p)
  if (n >= 2) {
    peak = std::max(peak, base + xe + (hh + 1) * w_c_ + w_in_);  // M3(p)
    peak = std::max(peak, base + xe + (hh + 2) * w_c_);          // M3(acc)
  }
  return peak;
}

std::optional<MvmTilingScheduler::Tile> MvmTilingScheduler::BestTile(
    Weight budget) const {
  const std::int64_t m = mvm_.m, n = mvm_.n;
  std::optional<Tile> best;
  Weight best_cost = kInfiniteCost;
  auto consider = [&](const Tile& tile) {
    if (TilePeak(tile) > budget) return;
    const Weight cost = TileCost(tile);
    if (cost < best_cost) {
      best_cost = cost;
      best = tile;
    }
  };
  // For each stripe count the tallest feasible tile dominates within the
  // family, so it suffices to scan h = ceil(m / stripes).
  for (std::int64_t stripes = 1; stripes <= m; ++stripes) {
    const std::int64_t h = CeilDiv(m, stripes);
    for (std::int64_t g = 0; g <= n; ++g) {
      consider({.g = g, .h = h, .spill_running = false});
    }
  }
  for (std::int64_t g = 0; g <= n; ++g) {
    consider({.g = g, .h = 1, .spill_running = true});
  }
  return best;
}

Weight MvmTilingScheduler::CostOnly(Weight budget) const {
  const auto tile = BestTile(budget);
  return tile ? TileCost(*tile) : kInfiniteCost;
}

Weight MvmTilingScheduler::MinMemoryForLowerBound() const {
  const Weight target = AlgorithmicLowerBound(mvm_.graph);
  Weight best = kInfiniteCost;
  const std::int64_t m = mvm_.m, n = mvm_.n;
  for (std::int64_t g = 0; g <= n; ++g) {
    for (std::int64_t stripes = 1; stripes <= m; ++stripes) {
      const Tile tile{.g = g, .h = CeilDiv(m, stripes), .spill_running = false};
      if (TileCost(tile) == target) best = std::min(best, TilePeak(tile));
    }
  }
  return best;
}

void MvmTilingScheduler::GenerateTile(const Tile& tile, Schedule& out) const {
  const std::int64_t m = mvm_.m, n = mvm_.n;
  const std::int64_t g = tile.g;

  for (std::int64_t c = 0; c < g; ++c) out.Append(Load(mvm_.x(c)));

  std::vector<NodeId> running(static_cast<std::size_t>(m), kInvalidNode);

  if (tile.spill_running) {
    for (std::int64_t r = 0; r < m; ++r) {
      for (std::int64_t c = 0; c < n; ++c) {
        if (c >= g) out.Append(Load(mvm_.x(c)));
        out.Append(Load(mvm_.a(r, c)));
        out.Append(Compute(mvm_.product(r, c)));
        out.Append(Delete(mvm_.a(r, c)));
        if (c >= g) out.Append(Delete(mvm_.x(c)));
        NodeId value = mvm_.product(r, c);
        if (c > 0) {
          const NodeId prev = running[static_cast<std::size_t>(r)];
          out.Append(Load(prev));
          out.Append(Compute(mvm_.accumulator(r, c)));
          out.Append(Delete(prev));
          out.Append(Delete(mvm_.product(r, c)));
          value = mvm_.accumulator(r, c);
        }
        // Spill the running value (the last column's is the output store).
        out.Append(Store(value));
        out.Append(Delete(value));
        running[static_cast<std::size_t>(r)] = value;
      }
    }
  } else {
    for (std::int64_t r0 = 0; r0 < m; r0 += tile.h) {
      const std::int64_t r1 = std::min(r0 + tile.h, m);
      for (std::int64_t c = 0; c < n; ++c) {
        if (c >= g) out.Append(Load(mvm_.x(c)));
        for (std::int64_t r = r0; r < r1; ++r) {
          out.Append(Load(mvm_.a(r, c)));
          out.Append(Compute(mvm_.product(r, c)));
          out.Append(Delete(mvm_.a(r, c)));
          if (c == 0) {
            running[static_cast<std::size_t>(r)] = mvm_.product(r, c);
          } else {
            const NodeId prev = running[static_cast<std::size_t>(r)];
            out.Append(Compute(mvm_.accumulator(r, c)));
            out.Append(Delete(prev));
            out.Append(Delete(mvm_.product(r, c)));
            running[static_cast<std::size_t>(r)] = mvm_.accumulator(r, c);
          }
        }
        if (c >= g) out.Append(Delete(mvm_.x(c)));
      }
      for (std::int64_t r = r0; r < r1; ++r) {
        out.Append(Store(running[static_cast<std::size_t>(r)]));
        out.Append(Delete(running[static_cast<std::size_t>(r)]));
      }
    }
  }

  for (std::int64_t c = 0; c < g; ++c) out.Append(Delete(mvm_.x(c)));
}

ScheduleResult MvmTilingScheduler::Run(Weight budget) const {
  const auto tile = BestTile(budget);
  if (!tile) return ScheduleResult::Infeasible();
  ScheduleResult result;
  result.feasible = true;
  result.cost = TileCost(*tile);
  GenerateTile(*tile, result.schedule);
  return result;
}

}  // namespace wrbpg
