// Optimum WRBPG scheduler for DWT(n, d) graphs — Algorithm 1 / Theorem 3.5.
//
// Dynamic program P(v, b) over (average node, remaining budget) implementing
// the four representative strategies of Eq. (4) — {blue p1, red p2},
// {red p1, red p2} and their mirror images — with memoization. Schedule
// construction follows Algorithm 1: each pruned coefficient sibling u is
// computed and stored (M3, M2, M4) right before its average v (Lemma 3.2),
// and each final average receives its blue pebble at the top level.
//
// The returned schedules are provably minimum-weight (Lemma 3.4) whenever
// the Lemma 3.2 precondition holds: coefficient weights do not exceed the
// sibling average weights (true for both evaluation configurations, where
// all non-input nodes share one weight). The constructor verifies it.
#pragma once

#include <unordered_map>
#include <vector>

#include "dataflows/dwt_graph.h"
#include "schedulers/scheduler.h"
#include "util/cancel.h"

namespace wrbpg {

class DwtOptimalScheduler {
 public:
  explicit DwtOptimalScheduler(const DwtGraph& dwt);

  // `cancel`, when given, is polled inside the DP recursion; an expired
  // token makes Run return a timed_out result (CostOnly: kInfiniteCost)
  // without polluting the memo with partial entries.
  ScheduleResult Run(Weight budget, const CancelToken* cancel = nullptr);
  Weight CostOnly(Weight budget, const CancelToken* cancel = nullptr);

  // Smallest budget at which CostOnly equals the algorithmic lower bound
  // (Definition 2.6), found by binary search on the monotone DP. Searches
  // multiples of `step` bits; returns 0 if unreachable below `hi`.
  Weight MinMemoryForLowerBound(Weight step, Weight hi);

 private:
  enum class Strategy : std::uint8_t {
    kLeaf,      // source: single M1
    kKeepKeep1, // (4): red p1, red p2  — p1 first, kept red
    kKeepKeep2, // (8): red p2, red p1  — p2 first, kept red
    kSpill1,    // (3): blue p1, red p2 — p1 first, spilled and reloaded
    kSpill2,    // (7): blue p2, red p1 — p2 first, spilled and reloaded
  };
  struct Entry {
    Weight cost = kInfiniteCost;
    Strategy strategy = Strategy::kLeaf;
  };

  // Minimum cost of computing v (ending red) under budget b — Eq. (2).
  Entry P(NodeId v, Weight b);
  // Emits the move sequence realizing P(v, b); requires P(v, b) finite.
  void Generate(NodeId v, Weight b, Schedule& out) const;

  const DwtGraph& dwt_;
  const CancelToken* cancel_ = nullptr;  // active only during Run/CostOnly
  std::vector<NodeId> sibling_;  // average -> its coefficient sibling
  std::vector<NodeId> roots_;    // final averages, the pruned trees' sinks
  Weight coefficient_weight_total_ = 0;  // sum over all coefficient nodes
  std::vector<std::unordered_map<Weight, Entry>> memo_;
};

}  // namespace wrbpg
