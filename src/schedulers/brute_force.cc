#include "schedulers/brute_force.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/graph_masks.h"
#include "core/simulator.h"
#include "core/state_bound.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "schedulers/belady.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/search_frontier.h"
#include "util/thread_pool.h"

namespace wrbpg {
namespace {

using State = SearchState;  // packed config (n <= 32) or interned id

constexpr std::uint32_t RedOf(State s) {
  return static_cast<std::uint32_t>(s & 0xffffffffu);
}
constexpr std::uint32_t BlueOf(State s) {
  return static_cast<std::uint32_t>(s >> 32);
}
constexpr State MakeState(std::uint32_t red, std::uint32_t blue) {
  return static_cast<State>(red) | (static_cast<State>(blue) << 32);
}

// Wave key (search_frontier.h): f, then g, then schedule length.
using Key = WaveKey;

// How one search pass runs. The engines are compositions of these flags:
// Dijkstra = {false, true, false}, A* = {true, true, false}, and the
// dominance/bb engines' cost pass = {true, false, true} (a
// schedule-wanting run follows up with an A* pass primed at the found
// optimum). The bb engine additionally primes the cost pass's bound with
// its incumbent cost, turning the bound check into incumbent pruning.
struct PhaseConfig {
  bool use_heuristic = false;
  bool use_len = true;
  bool use_dominance = false;
  Weight prime_bound = kInfiniteCost;  // known upper bound on the optimum
};

// Phase outcomes. Everything past kInfeasible is an abort: the phase
// stopped early and recorded a sound lower bound on the optimum (the
// minimum f over the still-open frontier) for the anytime result.
enum class PhaseStatus : std::uint8_t {
  kFound,
  kInfeasible,
  kDeadline,   // CancelToken with a wall-clock deadline fired
  kCancelled,  // manual CancelToken::Cancel(), no deadline involved
  kStateCap,   // BruteForceOptions::max_states exhausted
  kMemoryCap,  // frontier_bytes_cap (or the interner) exhausted
};

constexpr bool IsAbort(PhaseStatus s) {
  return s != PhaseStatus::kFound && s != PhaseStatus::kInfeasible;
}

Termination ToTermination(PhaseStatus s) {
  switch (s) {
    case PhaseStatus::kDeadline: return Termination::kDeadline;
    case PhaseStatus::kCancelled: return Termination::kCancelled;
    case PhaseStatus::kStateCap:
    case PhaseStatus::kMemoryCap: return Termination::kMemoryCap;
    case PhaseStatus::kFound:
    case PhaseStatus::kInfeasible: break;
  }
  return Termination::kComplete;
}

// Deadline poll cadence inside expansion chunks, in generated moves. A
// wave over a wide graph can hold millions of states, so polling only at
// wave boundaries would blow deadlines by seconds; counting moves (a
// state generates up to 4n of them) keeps the overshoot at microseconds
// while touching the clock rarely enough not to show in profiles.
constexpr std::uint32_t kCancelPollMoves = 2048;

// ---------------------------------------------------------------------------
// State-representation policies. The Searcher below is templated over one
// of these; they own the game masks and answer every question the search
// asks about a configuration. PackedOps is the n <= 32 fast path where
// the SearchState IS the configuration (red | blue << 32) — bit-compatible
// with the PR 3-5 engines. WideOps stores configurations as word arrays
// in a StateInterner and hands the search stable ids, which is what lifts
// the engines past the 32-node wall.
//
// The policy vocabulary: a Candidate is a successor/predecessor
// configuration that may not have an id yet. The search evaluates the
// heuristic and its pruning rules on the Candidate and only then
// Commit()s it (packed: identity; wide: intern) — so pruned states never
// cost interner memory. FindExisting() is Commit's read-only twin for the
// reconstruction walk, which must not invent states.
// ---------------------------------------------------------------------------

class PackedOps {
 public:
  using Candidate = State;
  struct Scratch {
    StateBound::PackedCtx ctx;  // the expanded state's closure (§14)
  };

  PackedOps(const Graph& graph, Weight budget,
            const BruteForceOptions& options)
      : graph_(graph),
        budget_(budget),
        require_sinks_blue_(options.require_sinks_blue) {
    const NodeId n = graph.num_nodes();
    // Word 0 of the shared move-legality masks IS the packed mask set
    // (simulator and StateBound build theirs from the same GraphMasks).
    const GraphMasks masks(graph);
    sources_mask_ = static_cast<std::uint32_t>(masks.sources()[0]);
    sinks_mask_ = static_cast<std::uint32_t>(masks.sinks()[0]);
    node_mask_ = static_cast<std::uint32_t>(masks.nodes()[0]);
    parents_mask_.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      parents_mask_[v] = static_cast<std::uint32_t>(masks.parents_of(v)[0]);
    }
    initial_red_ = static_cast<std::uint32_t>(options.initial_red);
    initial_blue_ = static_cast<std::uint32_t>(
        options.initial_blue.value_or(sources_mask_));
    required_red_ = static_cast<std::uint32_t>(options.required_red_at_end);
    if (options.engine != SearchEngine::kDijkstra) {
      bound_.emplace(graph, budget, options.required_red_at_end,
                     options.require_sinks_blue, /*build_wide=*/false);
    }
  }

  State Start() { return MakeState(initial_red_, initial_blue_); }
  Weight InitialRedWeight() const { return RedWeight(initial_red_); }

  bool IsGoal(State s) const {
    if ((RedOf(s) & required_red_) != required_red_) return false;
    if (require_sinks_blue_ && (BlueOf(s) & sinks_mask_) != sinks_mask_) {
      return false;
    }
    return true;
  }
  bool IsGoalCandidate(const Candidate& c) const { return IsGoal(c); }

  Weight HeuristicState(State s, Scratch&) const {
    return bound_->Evaluate(RedOf(s), BlueOf(s));
  }

  // One closure walk for the state about to be expanded; HeuristicMove
  // below prices every successor off this context.
  void PrepareExpand(State s, Scratch& scratch) const {
    bound_->Prepare(RedOf(s), BlueOf(s), scratch.ctx);
  }

  // h of the successor `c` reached from the prepared state via `move`:
  // exact incremental delta when the move provably leaves the closure
  // alone, else a fresh masked walk. The packed path deliberately does
  // NOT consult the sharded bound cache: a ≤32-node closure walk runs in
  // tens of nanoseconds, cheaper than the lock+probe a shared table
  // charges (measured ~1.4x slower end-to-end with the cache on the
  // engine-compare dwt rows). The cache earns its keep on the wide path,
  // where a slow evaluation also pays interning and per-word walks.
  Weight HeuristicMove(const Candidate& c, Move move, Scratch& scratch,
                       SearchStats& stats) {
    Weight h = 0;
    if (bound_->EvalMoveFast(scratch.ctx, move.type, move.node, &h)) return h;
    (void)c;
    ++stats.bound_cache_misses;  // priced by a fresh walk (no packed cache)
    return bound_->EvalMoveSlow(scratch.ctx, move.type, move.node);
  }

  bool Commit(const Candidate& c, Scratch&, SearchStats&, State* id) {
    *id = c;
    return true;
  }
  bool FindExisting(const Candidate& c, State* id) const {
    *id = c;
    return true;
  }

  // Calls fn(candidate, move_cost, move) for every legal move out of `s`,
  // in canonical move order (M1 < M2 < M3 < M4, node ascending); fn
  // returns true to stop early. The reconstruction walk takes the first
  // tight on-path edge this enumeration offers, which is what makes the
  // returned sequence the lexicographically-least one. Each move class
  // iterates only the set bits of its legality mask (ctz ascends node
  // ids, preserving the canonical order).
  template <typename Fn>
  void ForEachSuccessor(State s, Scratch&, Fn&& fn) const {
    const std::uint32_t red = RedOf(s);
    const std::uint32_t blue = BlueOf(s);
    const Weight rw = RedWeight(red);
    for (std::uint32_t m = blue & ~red; m != 0; m &= m - 1) {  // M1
      const NodeId v = static_cast<NodeId>(std::countr_zero(m));
      const Weight w = graph_.weight(v);
      if (rw + w <= budget_ &&
          fn(MakeState(red | (1u << v), blue), w, Load(v))) {
        return;
      }
    }
    for (std::uint32_t m = red & ~blue; m != 0; m &= m - 1) {  // M2
      const NodeId v = static_cast<NodeId>(std::countr_zero(m));
      if (fn(MakeState(red, blue | (1u << v)), graph_.weight(v), Store(v))) {
        return;
      }
    }
    // M3: un-red non-sources whose parents are all red, within budget.
    for (std::uint32_t m = node_mask_ & ~red & ~sources_mask_; m != 0;
         m &= m - 1) {
      const NodeId v = static_cast<NodeId>(std::countr_zero(m));
      if ((red & parents_mask_[v]) == parents_mask_[v] &&
          rw + graph_.weight(v) <= budget_ &&
          fn(MakeState(red | (1u << v), blue), 0, Compute(v))) {
        return;
      }
    }
    for (std::uint32_t m = red; m != 0; m &= m - 1) {  // M4
      const NodeId v = static_cast<NodeId>(std::countr_zero(m));
      if (fn(MakeState(red & ~(1u << v), blue), 0, Delete(v))) {
        return;
      }
    }
  }

  // Calls fn(candidate, move_cost) for every configuration one legal move
  // BEFORE `s` (the reconstruction walk's backward edges). Enumeration
  // order is irrelevant here — the walk only marks.
  template <typename Fn>
  void ForEachPredecessor(State s, Scratch&, Fn&& fn) const {
    const std::uint32_t red = RedOf(s);
    const std::uint32_t blue = BlueOf(s);
    // Undo M1: predecessor lacked red v, blue v present throughout.
    for (std::uint32_t m = red & blue; m != 0; m &= m - 1) {
      const NodeId v = static_cast<NodeId>(std::countr_zero(m));
      fn(MakeState(red & ~(1u << v), blue), graph_.weight(v));
    }
    // Undo M3: predecessor lacked red v and held all parents red.
    for (std::uint32_t m = red & ~sources_mask_; m != 0; m &= m - 1) {
      const NodeId v = static_cast<NodeId>(std::countr_zero(m));
      const std::uint32_t bit = 1u << v;
      if (((red & ~bit) & parents_mask_[v]) == parents_mask_[v]) {
        fn(MakeState(red & ~bit, blue), 0);
      }
    }
    // Undo M2: predecessor lacked blue v, red v present throughout.
    for (std::uint32_t m = red & blue; m != 0; m &= m - 1) {
      const NodeId v = static_cast<NodeId>(std::countr_zero(m));
      fn(MakeState(red, blue & ~(1u << v)), graph_.weight(v));
    }
    // Undo M4: predecessor held red v.
    for (std::uint32_t m = node_mask_ & ~red; m != 0; m &= m - 1) {
      const NodeId v = static_cast<NodeId>(std::countr_zero(m));
      fn(MakeState(red | (1u << v), blue), 0);
    }
  }

  // Dominance vocabulary (see Searcher::PruneDominated).
  bool SameRed(State a, State b) const { return RedOf(a) == RedOf(b); }
  bool BlueSubsetOf(State a, State b) const {
    return (BlueOf(a) & ~BlueOf(b)) == 0;
  }
  bool DominanceLess(State a, State b) const {
    if (RedOf(a) != RedOf(b)) return RedOf(a) < RedOf(b);
    const int pa = std::popcount(BlueOf(a));
    const int pb = std::popcount(BlueOf(b));
    if (pa != pb) return pa > pb;
    return BlueOf(a) < BlueOf(b);
  }
  // Packed states sort by a precomputed 128-bit key instead of the
  // comparator above: (red, 63 - popcount(blue)) in the high word and
  // the state itself (blue-major within equal red) in the low word make
  // lexicographic pair order coincide with DominanceLess — one popcount
  // per STATE instead of one per comparison.
  static constexpr bool kHasDominanceKey = true;
  std::pair<std::uint64_t, std::uint64_t> DominanceKey(State s) const {
    const std::uint64_t hi =
        (static_cast<std::uint64_t>(RedOf(s)) << 6) |
        static_cast<std::uint64_t>(63 - std::popcount(BlueOf(s)));
    return {hi, s};
  }

  // States live inline in the dist map and the per-worker bound-cache
  // slices are fixed 64 KiB arrays — nothing here scales with the search.
  std::size_t MemoryBytes() const { return 0; }

 private:
  Weight RedWeight(std::uint32_t red) const {
    Weight w = 0;
    while (red != 0) {
      const int v = std::countr_zero(red);
      w += graph_.weight(static_cast<NodeId>(v));
      red &= red - 1;
    }
    return w;
  }

  const Graph& graph_;
  const Weight budget_;
  bool require_sinks_blue_;
  std::uint32_t sources_mask_ = 0;
  std::uint32_t sinks_mask_ = 0;
  std::uint32_t node_mask_ = 0;
  std::vector<std::uint32_t> parents_mask_;
  std::uint32_t initial_red_ = 0;
  std::uint32_t initial_blue_ = 0;
  std::uint32_t required_red_ = 0;
  std::optional<StateBound> bound_;
};

// Word-array states for graphs past the packed fast path. A configuration
// is 2*W words (red words, then blue words, W = ceil(n/64)); successors
// are built by toggling one bit in a per-worker scratch buffer, evaluated
// in place, and interned only if the search keeps them. The initial
// red/blue/required-red option masks are uint64, so custom pebble
// placements address nodes 0..63; the defaults (no red, sources blue,
// sinks-blue goal) are width-independent.
class WideOps {
 public:
  struct Candidate {
    const std::uint64_t* config;  // 2*W words: red, then blue
  };
  struct Scratch {
    std::vector<std::uint64_t> config;
    StateBound::WideScratch bound;
    StateBound::WideCtx ctx;  // the expanded state's closure (§14)
    const std::uint64_t* base = nullptr;  // interner words of that state
    StateInterner::LocalCache intern_cache;
  };

  WideOps(const Graph& graph, Weight budget, const BruteForceOptions& options)
      : graph_(graph),
        budget_(budget),
        require_sinks_blue_(options.require_sinks_blue),
        words_(WordsFor(graph.num_nodes())),
        masks_(graph),
        interner_(2 * WordsFor(graph.num_nodes())) {
    const NodeId n = graph.num_nodes();
    required_red_.assign(words_, 0);
    initial_red_.assign(words_, 0);
    initial_blue_.assign(words_, 0);
    for (NodeId v = 0; v < 64 && v < n; ++v) {
      if ((options.initial_red >> v) & 1) SetBit(initial_red_.data(), v);
      if ((options.required_red_at_end >> v) & 1) {
        SetBit(required_red_.data(), v);
      }
    }
    if (options.initial_blue.has_value()) {
      for (NodeId v = 0; v < 64 && v < n; ++v) {
        if ((*options.initial_blue >> v) & 1) SetBit(initial_blue_.data(), v);
      }
    } else {
      initial_blue_.assign(masks_.sources(), masks_.sources() + words_);
    }
    if (options.engine != SearchEngine::kDijkstra) {
      bound_.emplace(graph, budget, options.required_red_at_end,
                     options.require_sinks_blue);
    }
  }

  State Start() {
    std::vector<std::uint64_t> config(2 * words_);
    std::copy(initial_red_.begin(), initial_red_.end(), config.begin());
    std::copy(initial_blue_.begin(), initial_blue_.end(),
              config.begin() + static_cast<std::ptrdiff_t>(words_));
    State id = 0;
    const bool ok = interner_.Intern(config.data(), &id);
    assert(ok);
    (void)ok;
    return id;
  }
  Weight InitialRedWeight() const { return RedWeight(initial_red_.data()); }

  bool IsGoal(State s) const { return IsGoalWords(interner_.Words(s)); }
  bool IsGoalCandidate(const Candidate& c) const {
    return IsGoalWords(c.config);
  }

  Weight HeuristicState(State s, Scratch& scratch) const {
    const std::uint64_t* w = interner_.Words(s);
    return bound_->Evaluate(w, w + words_, scratch.bound);
  }

  // One closure walk for the state about to be expanded. The interner
  // words are stable, so `base` stays valid for the whole expansion.
  void PrepareExpand(State s, Scratch& scratch) const {
    scratch.base = interner_.Words(s);
    bound_->Prepare(scratch.base, scratch.base + words_, scratch.ctx,
                    scratch.bound);
  }

  // h of the successor `c` via `move`, off the prepared context. Slow
  // paths intern the candidate first so the bound cache can key on the
  // stable id (Commit below re-finds it for free through the same local
  // cache); if the interner is exhausted, price the candidate uncached —
  // the subsequent Commit of any surviving candidate reports the memory
  // cap through the existing abort path.
  Weight HeuristicMove(const Candidate& c, Move move, Scratch& scratch,
                       SearchStats& stats) {
    Weight h = 0;
    if (bound_->EvalMoveFast(scratch.ctx, scratch.base, scratch.base + words_,
                             move.type, move.node, &h)) {
      return h;
    }
    State id = 0;
    if (!interner_.InternCached(c.config, scratch.intern_cache, &id,
                                &stats.intern_cache_hits,
                                &stats.intern_cache_misses)) {
      return bound_->EvalMoveSlow(scratch.ctx, scratch.base,
                                  scratch.base + words_, move.type, move.node,
                                  scratch.bound);
    }
    if (bound_cache_.Find(id, &h)) {
      ++stats.bound_cache_hits;
      return h;
    }
    ++stats.bound_cache_misses;
    h = bound_->EvalMoveSlow(scratch.ctx, scratch.base, scratch.base + words_,
                             move.type, move.node, scratch.bound);
    bound_cache_.Insert(id, h);
    return h;
  }

  bool Commit(const Candidate& c, Scratch& scratch, SearchStats& stats,
              State* id) {
    return interner_.InternCached(c.config, scratch.intern_cache, id,
                                  &stats.intern_cache_hits,
                                  &stats.intern_cache_misses);
  }
  bool FindExisting(const Candidate& c, State* id) const {
    return interner_.Find(c.config, id);
  }

  // Successor enumeration, bit-toggled in scratch around each callback so
  // one 2*W-word copy per state (not per move) suffices. Candidate
  // pointers are only valid for the duration of the callback. Move order
  // matches PackedOps exactly — the lex-least reconstruction and the
  // packed/wide bit-identity both hang on it. Each move class walks the
  // set bits of its word-parallel legality mask; the per-word candidate
  // mask is snapshotted before the word's bits toggle, so the in-place
  // edits around each callback never perturb the iteration.
  template <typename Fn>
  void ForEachSuccessor(State s, Scratch& scratch, Fn&& fn) const {
    const std::uint64_t* base = interner_.Words(s);
    const std::size_t W = words_;
    scratch.config.assign(base, base + 2 * W);
    std::uint64_t* red = scratch.config.data();
    std::uint64_t* blue = red + W;
    const Weight rw = RedWeight(base);
    const Candidate c{scratch.config.data()};
    for (std::size_t w = 0; w < W; ++w) {  // M1: loadable = blue & ~red
      for (std::uint64_t m = blue[w] & ~red[w]; m != 0; m &= m - 1) {
        const NodeId v = NodeAt(w, m);
        const Weight wt = graph_.weight(v);
        if (rw + wt > budget_) continue;
        red[w] ^= m & -m;
        const bool stop = fn(c, wt, Load(v));
        red[w] ^= m & -m;
        if (stop) return;
      }
    }
    for (std::size_t w = 0; w < W; ++w) {  // M2: storable = red & ~blue
      for (std::uint64_t m = red[w] & ~blue[w]; m != 0; m &= m - 1) {
        const NodeId v = NodeAt(w, m);
        blue[w] ^= m & -m;
        const bool stop = fn(c, graph_.weight(v), Store(v));
        blue[w] ^= m & -m;
        if (stop) return;
      }
    }
    for (std::size_t w = 0; w < W; ++w) {  // M3: un-red non-sources
      for (std::uint64_t m = masks_.nodes()[w] & ~red[w] & ~masks_.sources()[w];
           m != 0; m &= m - 1) {
        const NodeId v = NodeAt(w, m);
        if (!masks_.ParentsSubsetOf(v, red) ||
            rw + graph_.weight(v) > budget_) {
          continue;
        }
        red[w] ^= m & -m;
        const bool stop = fn(c, 0, Compute(v));
        red[w] ^= m & -m;
        if (stop) return;
      }
    }
    for (std::size_t w = 0; w < W; ++w) {  // M4: deletable = red
      for (std::uint64_t m = red[w]; m != 0; m &= m - 1) {
        const NodeId v = NodeAt(w, m);
        red[w] ^= m & -m;
        const bool stop = fn(c, 0, Delete(v));
        red[w] ^= m & -m;
        if (stop) return;
      }
    }
  }

  template <typename Fn>
  void ForEachPredecessor(State s, Scratch& scratch, Fn&& fn) const {
    const std::uint64_t* base = interner_.Words(s);
    const std::size_t W = words_;
    scratch.config.assign(base, base + 2 * W);
    std::uint64_t* red = scratch.config.data();
    std::uint64_t* blue = red + W;
    const Candidate c{scratch.config.data()};
    // Undo M1: predecessor lacked red v, blue v present throughout.
    for (std::size_t w = 0; w < W; ++w) {
      for (std::uint64_t m = red[w] & blue[w]; m != 0; m &= m - 1) {
        const NodeId v = NodeAt(w, m);
        red[w] ^= m & -m;
        fn(c, graph_.weight(v));
        red[w] ^= m & -m;
      }
    }
    // Undo M3: predecessor lacked red v and held all parents red.
    for (std::size_t w = 0; w < W; ++w) {
      for (std::uint64_t m = red[w] & ~masks_.sources()[w]; m != 0;
           m &= m - 1) {
        const NodeId v = NodeAt(w, m);
        red[w] ^= m & -m;
        if (masks_.ParentsSubsetOf(v, red)) fn(c, 0);
        red[w] ^= m & -m;
      }
    }
    // Undo M2: predecessor lacked blue v, red v present throughout.
    for (std::size_t w = 0; w < W; ++w) {
      for (std::uint64_t m = red[w] & blue[w]; m != 0; m &= m - 1) {
        const NodeId v = NodeAt(w, m);
        blue[w] ^= m & -m;
        fn(c, graph_.weight(v));
        blue[w] ^= m & -m;
      }
    }
    // Undo M4: predecessor held red v.
    for (std::size_t w = 0; w < W; ++w) {
      for (std::uint64_t m = masks_.nodes()[w] & ~red[w]; m != 0;
           m &= m - 1) {
        red[w] ^= m & -m;
        fn(c, 0);
        red[w] ^= m & -m;
      }
    }
  }

  bool SameRed(State a, State b) const {
    return std::memcmp(interner_.Words(a), interner_.Words(b),
                       words_ * sizeof(std::uint64_t)) == 0;
  }
  bool BlueSubsetOf(State a, State b) const {
    const std::uint64_t* ba = interner_.Words(a) + words_;
    const std::uint64_t* bb = interner_.Words(b) + words_;
    for (std::size_t w = 0; w < words_; ++w) {
      if ((ba[w] & ~bb[w]) != 0) return false;
    }
    return true;
  }
  // Interned word arrays have no compact sort key; the comparator path
  // it is.
  static constexpr bool kHasDominanceKey = false;
  std::pair<std::uint64_t, std::uint64_t> DominanceKey(State) const {
    return {0, 0};  // never called (kHasDominanceKey == false)
  }
  // Same order as PackedOps::DominanceLess: red ascending (numeric,
  // most-significant word first — for W == 1 this IS the packed compare),
  // blue popcount descending, blue ascending.
  bool DominanceLess(State a, State b) const {
    const std::uint64_t* wa = interner_.Words(a);
    const std::uint64_t* wb = interner_.Words(b);
    const int red_cmp = CmpWords(wa, wb);
    if (red_cmp != 0) return red_cmp < 0;
    const int pa = PopcountWords(wa + words_);
    const int pb = PopcountWords(wb + words_);
    if (pa != pb) return pa > pb;
    return CmpWords(wa + words_, wb + words_) < 0;
  }

  std::size_t MemoryBytes() const {
    return interner_.MemoryBytes() + bound_cache_.MemoryBytes();
  }

 private:
  static std::size_t WordsFor(NodeId n) {
    return std::max<std::size_t>(1, (static_cast<std::size_t>(n) + 63) / 64);
  }
  static bool TestBit(const std::uint64_t* w, NodeId v) {
    return (w[v >> 6] >> (v & 63)) & 1;
  }
  static void SetBit(std::uint64_t* w, NodeId v) {
    w[v >> 6] |= 1ull << (v & 63);
  }
  static void ClearBit(std::uint64_t* w, NodeId v) {
    w[v >> 6] &= ~(1ull << (v & 63));
  }
  int CmpWords(const std::uint64_t* a, const std::uint64_t* b) const {
    for (std::size_t w = words_; w-- > 0;) {
      if (a[w] != b[w]) return a[w] < b[w] ? -1 : 1;
    }
    return 0;
  }
  int PopcountWords(const std::uint64_t* w) const {
    int total = 0;
    for (std::size_t i = 0; i < words_; ++i) total += std::popcount(w[i]);
    return total;
  }
  static NodeId NodeAt(std::size_t word, std::uint64_t m) {
    return static_cast<NodeId>(
        word * 64 + static_cast<std::size_t>(std::countr_zero(m)));
  }
  bool IsGoalWords(const std::uint64_t* config) const {
    const std::uint64_t* red = config;
    const std::uint64_t* blue = config + words_;
    for (std::size_t w = 0; w < words_; ++w) {
      if ((required_red_[w] & ~red[w]) != 0) return false;
      if (require_sinks_blue_ && (masks_.sinks()[w] & ~blue[w]) != 0) {
        return false;
      }
    }
    return true;
  }
  Weight RedWeight(const std::uint64_t* red) const {
    Weight total = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      for (std::uint64_t m = red[w]; m != 0; m &= m - 1) {
        total += graph_.weight(static_cast<NodeId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(m))));
      }
    }
    return total;
  }

  const Graph& graph_;
  const Weight budget_;
  bool require_sinks_blue_;
  std::size_t words_;
  GraphMasks masks_;
  StateInterner interner_;
  std::vector<std::uint64_t> required_red_;
  std::vector<std::uint64_t> initial_red_;
  std::vector<std::uint64_t> initial_blue_;
  std::optional<StateBound> bound_;
  BoundCache bound_cache_;
};

// The bb engine's seed: a valid schedule from the polynomial heuristics,
// held as the incumbent the search falls back on whenever it is
// interrupted. Belady first (the stronger heuristic), simulator-checked;
// greedy-topo is the universal fallback (valid for every budget >=
// MinValidBudget). Only standard games are seeded — the heuristics don't
// speak the memory-state dialect (custom initial pebbles / required-red
// goals), so those games run bb as plain exact search.
struct Incumbent {
  Schedule schedule;
  Weight cost = kInfiniteCost;
};

std::optional<Incumbent> SeedIncumbent(const Graph& graph, Weight budget,
                                       const BruteForceOptions& options) {
  if (options.initial_red != 0 || options.initial_blue.has_value() ||
      options.required_red_at_end != 0 || !options.require_sinks_blue) {
    return std::nullopt;
  }
  ScheduleResult belady = BeladyScheduler(graph).Run(budget);
  if (belady.feasible && Simulate(graph, budget, belady.schedule).valid) {
    return Incumbent{std::move(belady.schedule), belady.cost};
  }
  ScheduleResult greedy = GreedyTopoScheduler(graph).Run(budget);
  if (greedy.feasible && Simulate(graph, budget, greedy.schedule).valid) {
    return Incumbent{std::move(greedy.schedule), greedy.cost};
  }
  return std::nullopt;
}

// One exact search: level-synchronous best-first waves over (f, g, len)
// keys plus canonical reconstruction, templated over the state policy.
// Waves settle in ascending key order; because the state_bound heuristic
// is admissible but not consistent, a settled state whose g later
// improves is simply re-queued at its better key and re-expanded
// (reopening), which the dist-map-ownership check already implements. The
// first wave holding a goal is still the optimum: any cheaper goal would
// keep an open optimal-path state at a strictly smaller key (h admissible
// along that path), contradicting the wave order.
//
// Anytime soundness: when a phase aborts, every undiscovered solution
// still has to leave the settled set through an open state — one whose
// best-known g was recorded but that was never expanded at it. Such a
// state sits either in the pending map or in the current (partially
// expanded) wave, and along an optimal path its f = g + h is at most the
// optimal cost (h admissible; incumbent pruning only drops f strictly
// above a valid schedule's cost, dominance only drops states whose
// completions a kept sibling matches). min(current wave f, pending min f)
// is therefore a sound lower bound on the optimum at the moment of abort.
template <typename Ops>
class Searcher {
 public:
  Searcher(const Graph& graph, Weight budget,
           const BruteForceOptions& options)
      : budget_(budget), options_(options), ops_(graph, budget, options) {
    start_ = ops_.Start();
    if (options.prune_root_loads != nullptr &&
        !options.prune_root_loads->empty()) {
      pruned_root_load_.assign(graph.num_nodes(), 0);
      for (NodeId v : *options.prune_root_loads) {
        if (v < graph.num_nodes()) pruned_root_load_[v] = 1;
      }
    }
  }

  ScheduleResult Run(bool want_schedule, const Incumbent* incumbent);

 private:
  using Scratch = typename Ops::Scratch;

  PhaseStatus RunPhase(const PhaseConfig& cfg, ThreadPool* pool,
                       std::size_t threads);

  // Per-chunk relaxation memo over the shared dist map: the best (g, len)
  // this chunk has OFFERED the map for recently-seen states. Within a
  // phase the map is monotone (TryImprove only ever lowers an entry), so
  // a repeat offer that is not lexicographically lower than a recorded
  // one provably cannot improve — it is dropped before paying the shard
  // lock and the (likely cold) probe. Direct-mapped, evict-on-collision,
  // cleared at phase starts (Reset() breaks the monotonicity the argument
  // rests on). Every skipped offer would have returned false and pushed
  // nothing, so schedules and costs are bit-identical with or without it.
  struct RelaxMemo {
    static constexpr std::size_t kSlots = 8192;  // power of two
    struct Slot {
      SearchState state = 0;
      Weight g = 0;
      std::uint32_t len = 0;
      bool used = false;
    };
    std::vector<Slot> slots;

    static std::size_t Index(SearchState s) {
      return static_cast<std::size_t>((s * 0x9e3779b97f4a7c15ull) >> 13) &
             (kSlots - 1);
    }
    // True when offering (g, len) for `s` provably cannot improve the
    // map. Otherwise records the offer — the caller MUST then make it.
    bool NonImproving(SearchState s, Weight g, std::uint32_t len) {
      if (slots.empty()) slots.resize(kSlots);
      Slot& slot = slots[Index(s)];
      if (slot.used && slot.state == s &&
          (slot.g < g || (slot.g == g && slot.len <= len))) {
        return true;
      }
      slot.state = s;
      slot.g = g;
      slot.len = len;
      slot.used = true;
      return false;
    }
    void Clear() { slots.clear(); }
  };

  void ExpandRange(const std::vector<State>& frontier, std::size_t lo,
                   std::size_t hi, Key level, const PhaseConfig& cfg,
                   UpdateBuffer& out, SearchStats& stats, Scratch& scratch,
                   RelaxMemo& memo);
  void PruneDominated(std::vector<State>& live);
  Schedule Reconstruct();

  // Folds one chunk's wave updates into the pending map. Successive
  // updates overwhelmingly share a key (a state's successors cluster in
  // f), so one memoized (key -> level) slot turns most of the per-update
  // map lookups into a single comparison.
  void MergeUpdates(const UpdateBuffer& u) {
    const WaveKey* memo_key = nullptr;
    std::vector<State>* memo_level = nullptr;
    for (std::size_t i = 0; i < u.size(); ++i) {
      const WaveKey& key = u.key(i);
      if (memo_key == nullptr || !(*memo_key == key)) {
        auto [it, inserted] = pending_.try_emplace(key);
        if (inserted) it->second = level_pool_.Acquire();
        memo_key = &it->first;
        memo_level = &it->second;
      }
      memo_level->push_back(u.state(i));
    }
  }

  // kDeadline vs kCancelled: the token knows whether it carries a
  // wall-clock deadline.
  PhaseStatus CancelStatus() const {
    if (options_.cancel != nullptr &&
        options_.cancel->remaining().has_value()) {
      return PhaseStatus::kDeadline;
    }
    return PhaseStatus::kCancelled;
  }

  // Sound lower bound on the optimum at an abort inside `level`'s wave:
  // see the class comment. Also records it for the result assembly.
  PhaseStatus Abort(PhaseStatus status, const Key& level) {
    abort_lb_ = level.f;
    if (!pending_.empty()) {
      abort_lb_ = std::min(abort_lb_, pending_.begin()->first.f);
    }
    return status;
  }

  // Bytes the search containers hold right now; the frontier_bytes_cap
  // meter. Sampled at wave boundaries only, so it is a pure function of
  // the wave sequence — memory-cap stops are deterministic at a fixed
  // thread count.
  std::size_t FrontierBytes() const {
    std::size_t bytes = dist_.MemoryBytes() + ops_.MemoryBytes();
    for (const auto& [key, level] : pending_) {
      bytes += level.capacity() * sizeof(State);
    }
    for (const UpdateBuffer& u : chunk_updates_) {
      bytes += u.MemoryBytes();
    }
    return bytes;
  }

  // Anytime result assembly: the incumbent plus whatever bound the search
  // managed to certify before it was interrupted. A gap of zero means the
  // frontier minimum climbed past the incumbent cost — the incumbent is
  // proven optimal even though the search never settled a goal.
  ScheduleResult AnytimeResult(bool want_schedule, const Incumbent& incumbent,
                               Weight lb, Termination termination) const {
    ScheduleResult result;
    result.feasible = true;
    result.cost = incumbent.cost;
    if (want_schedule) result.schedule = incumbent.schedule;
    result.lower_bound = std::min(incumbent.cost, lb);
    result.optimality_gap = result.cost - result.lower_bound;
    result.termination = result.optimality_gap == 0 ? Termination::kOptimal
                                                    : termination;
    return result;
  }

  // Abort without an incumbent: the legacy timed-out shape, now carrying
  // the certified lower bound and the typed stop reason.
  static ScheduleResult TimedOutResult(PhaseStatus status, Weight lb) {
    ScheduleResult result;
    result.timed_out = true;
    result.lower_bound = lb;
    result.termination = ToTermination(status);
    return result;
  }

  const Weight budget_;
  const BruteForceOptions& options_;
  Ops ops_;
  State start_ = 0;
  Scratch main_scratch_;  // start heuristic + single-threaded reconstruction

  FlatDistMap dist_;
  std::map<Key, std::vector<State>> pending_;
  LevelPool level_pool_;
  std::vector<UpdateBuffer> chunk_updates_;
  std::vector<Scratch> chunk_scratch_;
  std::vector<RelaxMemo> chunk_memo_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> dominance_keys_;

  // Shared best-known goal cost: relaxations that discover a goal lower it
  // (atomically, across all workers), and every relaxation prunes targets
  // whose f strictly exceeds it. h is admissible, so f > bound proves the
  // successor cannot sit on a solution of cost <= bound; only strictly-
  // worse states are dropped, and the distance map below the optimum is
  // undisturbed — timing of the bound updates cannot leak into the result.
  // The bb engine seeds it with its incumbent cost (PhaseConfig::
  // prime_bound), which is what makes the incumbent a pruning bound.
  std::atomic<Weight> best_goal_cost_{kInfiniteCost};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> interner_full_{false};

  std::size_t settled_ = 0;  // cumulative across phases (max_states valve)
  SearchStats stats_;        // aggregated across phases
  Weight abort_lb_ = 0;      // open-frontier bound at the last abort
  // Root M1 loads suppressed by orbit pruning (empty = none); see
  // BruteForceOptions::prune_root_loads for the soundness contract.
  std::vector<unsigned char> pruned_root_load_;
  Key goal_key_;
  std::vector<State> goal_states_;
};

template <typename Ops>
void Searcher<Ops>::ExpandRange(const std::vector<State>& frontier,
                                std::size_t lo, std::size_t hi, Key level,
                                const PhaseConfig& cfg, UpdateBuffer& out,
                                SearchStats& stats, Scratch& scratch,
                                RelaxMemo& memo) {
  const CancelToken* cancel = options_.cancel;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint32_t moves_since_poll = 0;
  // Successors that survive the g/h/f gates are staged here per expanded
  // state; their dist-map slots are prefetched at stage time, so by the
  // time the flush loop below probes the map, the lines are (usually)
  // already in flight — the map's L2/L3 miss overlaps the remaining move
  // evaluations instead of stalling each relaxation in turn. Flushing in
  // stage order keeps the per-thread TryImprove/Push sequence identical
  // to the unbatched loop, so determinism is untouched.
  struct Staged {
    State next;
    Weight g;
    Weight f;
    std::uint32_t len;
    bool goal;
  };
  std::vector<Staged> staged;
  staged.reserve(64);
  for (std::size_t i = lo; i < hi; ++i) {
    if (cancelled_.load(std::memory_order_relaxed)) break;
    const State s = frontier[i];
    // One closure walk per expanded state; every successor below prices
    // off this context through the incremental fast paths (§14).
    if (cfg.use_heuristic) ops_.PrepareExpand(s, scratch);
    // One bound snapshot per state, not two atomic loads per move. The
    // bound only ever decreases, so pruning against a stale (higher)
    // value is sound — it prunes a subset of what the live value would,
    // and pruning is never load-bearing for correctness (the map is
    // monotone). Goal improvements still CAS the shared atomic below.
    const Weight bound = best_goal_cost_.load(std::memory_order_relaxed);
    bool aborted = false;
    staged.clear();
    ops_.ForEachSuccessor(s, scratch, [&](const auto& c, Weight move_cost,
                                          Move move) {
      // Root orbit pruning: skip suppressed first loads before they count
      // as generated (the canonical optimal path never uses one).
      if (!pruned_root_load_.empty() && s == start_ &&
          move.type == MoveType::kLoad && pruned_root_load_[move.node] != 0) {
        return false;
      }
      ++stats.generated;
      if (++moves_since_poll >= kCancelPollMoves) {
        moves_since_poll = 0;
        if (cancelled_.load(std::memory_order_relaxed) ||
            (cancel != nullptr && cancel->cancelled())) {
          cancelled_.store(true, std::memory_order_relaxed);
          aborted = true;
          return true;
        }
      }
      // g-first: h >= 0, so g > bound already implies f > bound — and
      // skipping the heuristic on such moves is pure profit on primed
      // passes (bb and the schedule pass run with bound == optimum).
      // Prunes the exact same successor set as the f-test alone; only
      // the informational pruned_bound/pruned_heuristic split can shift.
      const Weight g = level.g + move_cost;
      if (g > bound) {
        ++stats.pruned_bound;  // already provably worse than a solution
        return false;
      }
      Weight h = 0;
      if (cfg.use_heuristic) {
        h = ops_.HeuristicMove(c, move, scratch, stats);
        if (h >= kInfiniteCost) {
          ++stats.pruned_heuristic;  // no completion exists from `c`
          return false;
        }
      }
      const Weight f = g + h;
      if (f > bound) {
        ++stats.pruned_bound;  // already provably worse than a solution
        return false;
      }
      const std::uint32_t len = cfg.use_len ? level.len + 1 : 0;
      State next = 0;
      if (!ops_.Commit(c, scratch, stats, &next)) {
        interner_full_.store(true, std::memory_order_relaxed);
        aborted = true;
        return true;
      }
      if (memo.NonImproving(next, g, len)) return false;
      dist_.Prefetch(next);
      staged.push_back({next, g, f, len, ops_.IsGoalCandidate(c)});
      return false;
    });
    for (const Staged& p : staged) {
      if (dist_.TryImprove(p.next, p.g, p.len)) {
        ++stats.improved;
        if (p.goal) {
          // h(goal) == 0, so f == g here.
          Weight seen = best_goal_cost_.load(std::memory_order_relaxed);
          while (p.g < seen && !best_goal_cost_.compare_exchange_weak(
                                   seen, p.g, std::memory_order_relaxed)) {
          }
        }
        out.Push(Key{p.f, p.g, p.len}, p.next);
      }
    }
    if (aborted) break;
  }
  stats.succ_gen_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

// Drops wave states that a same-wave sibling renders redundant: equal red
// mask (with positive weights, "superset red at no greater red weight"
// collapses to equality) and strictly-superset blue mask. Any completion
// from the dominated state either never stores into the extra blue nodes —
// then it is verbatim legal from the dominator at identical cost — or it
// does, and the dominator skips those stores for a strictly cheaper
// finish. Either way the optimal cost survives the drop. The lex-least
// tie-break does NOT necessarily survive, which is why this filter only
// runs in the cost pass (PhaseConfig::use_dominance) and never in a pass
// that reconstructs a schedule.
template <typename Ops>
void Searcher<Ops>::PruneDominated(std::vector<State>& live) {
  if (live.size() < 2) return;
  // Sort so that, within a red group, supersets precede subsets: blue
  // popcount descending, then blue ascending for determinism.
  if constexpr (Ops::kHasDominanceKey) {
    auto& keys = dominance_keys_;
    keys.clear();
    keys.reserve(live.size());
    for (const State s : live) keys.push_back(ops_.DominanceKey(s));
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 0; i < live.size(); ++i) live[i] = keys[i].second;
  } else {
    std::sort(live.begin(), live.end(), [this](State a, State b) {
      return ops_.DominanceLess(a, b);
    });
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const State s = live[i];
    bool dominated = false;
    for (std::size_t j = kept; j > 0 && ops_.SameRed(live[j - 1], s); --j) {
      if (ops_.BlueSubsetOf(s, live[j - 1])) {
        dominated = true;  // kept sibling holds every blue pebble we do
        break;
      }
    }
    if (!dominated) live[kept++] = s;
  }
  stats_.pruned_dominated += live.size() - kept;
  live.resize(kept);
}

template <typename Ops>
PhaseStatus Searcher<Ops>::RunPhase(const PhaseConfig& cfg, ThreadPool* pool,
                                    std::size_t threads) {
  dist_.Reset();
  for (RelaxMemo& memo : chunk_memo_) memo.Clear();
  pending_.clear();
  best_goal_cost_.store(cfg.prime_bound, std::memory_order_relaxed);
  goal_states_.clear();

  const Weight h0 =
      cfg.use_heuristic ? ops_.HeuristicState(start_, main_scratch_) : 0;
  if (h0 >= kInfiniteCost) return PhaseStatus::kInfeasible;
  dist_.TryImprove(start_, 0, 0);
  pending_[Key{h0, 0, 0}].push_back(start_);

  bool found = false;
  std::vector<State> live;

  while (!found && !pending_.empty()) {
    auto level_node = pending_.extract(pending_.begin());
    const Key level = level_node.key();
    std::vector<State>& frontier = level_node.mapped();

    // Drop states this level no longer owns: a later relaxation in an
    // earlier wave may have improved them into a lower level (which then
    // already expanded them), and reopening re-queues improved states
    // under their better key.
    live.clear();
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      // Run a few slots ahead of the Finds — the filter is a random walk
      // over the (large) dist map, and the lookahead hides most of the
      // per-probe cache miss.
      if (i + 8 < frontier.size()) dist_.Prefetch(frontier[i + 8]);
      const State s = frontier[i];
      const FlatDistMap::Entry* e = dist_.Find(s);
      if (e != nullptr && e->g == level.g && e->len == level.len) {
        live.push_back(s);
      }
    }
    level_pool_.Release(std::move(frontier));
    if (live.empty()) continue;
    ++stats_.waves;

    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return Abort(CancelStatus(), level);
    }

    for (const State s : live) {
      if (ops_.IsGoal(s)) goal_states_.push_back(s);
    }
    if (!goal_states_.empty()) {
      // Waves settle in ascending (f, g, len) order, so the first wave
      // holding a goal is the optimum; its states are never expanded.
      goal_key_ = level;
      found = true;
      break;
    }

    if (cfg.use_dominance) PruneDominated(live);
    settled_ += live.size();
    stats_.expanded += live.size();
    stats_.max_frontier = std::max<std::uint64_t>(stats_.max_frontier,
                                                  live.size());
    if (settled_ > options_.max_states) {
      std::fprintf(stderr,
                   "BruteForceScheduler: state limit exceeded (%zu states)\n",
                   options_.max_states);
      return Abort(PhaseStatus::kStateCap, level);
    }
    const std::size_t bytes = FrontierBytes();
    stats_.frontier_bytes = std::max<std::uint64_t>(stats_.frontier_bytes,
                                                    bytes);
    if (options_.frontier_bytes_cap != 0 &&
        bytes > options_.frontier_bytes_cap) {
      std::fprintf(stderr,
                   "BruteForceScheduler: frontier byte cap exceeded "
                   "(%zu bytes)\n",
                   options_.frontier_bytes_cap);
      return Abort(PhaseStatus::kMemoryCap, level);
    }

    if (pool != nullptr && live.size() >= threads * 2) {
      const std::size_t chunk_count = std::min(live.size(), threads * 4);
      const std::size_t chunk =
          (live.size() + chunk_count - 1) / chunk_count;
      const std::size_t num_chunks = (live.size() + chunk - 1) / chunk;
      if (chunk_updates_.size() < num_chunks) {
        chunk_updates_.resize(num_chunks);
      }
      if (chunk_scratch_.size() < num_chunks) {
        chunk_scratch_.resize(num_chunks);
      }
      if (chunk_memo_.size() < num_chunks) {
        chunk_memo_.resize(num_chunks);
      }
      std::vector<SearchStats> chunk_stats(num_chunks);
      TaskGroup group(*pool);
      for (std::size_t c = 0; c < num_chunks; ++c) {
        chunk_updates_[c].Clear();
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(lo + chunk, live.size());
        group.Submit([this, &live, lo, hi, level, &cfg, &chunk_stats, c] {
          ExpandRange(live, lo, hi, level, cfg, chunk_updates_[c],
                      chunk_stats[c], chunk_scratch_[c], chunk_memo_[c]);
        });
      }
      group.Wait();
      for (std::size_t c = 0; c < num_chunks; ++c) {
        stats_.Accumulate(chunk_stats[c]);
        MergeUpdates(chunk_updates_[c]);
      }
    } else {
      if (chunk_updates_.empty()) chunk_updates_.resize(1);
      if (chunk_scratch_.empty()) chunk_scratch_.resize(1);
      if (chunk_memo_.empty()) chunk_memo_.resize(1);
      chunk_updates_[0].Clear();
      ExpandRange(live, 0, live.size(), level, cfg, chunk_updates_[0],
                  stats_, chunk_scratch_[0], chunk_memo_[0]);
      MergeUpdates(chunk_updates_[0]);
    }
    // Mid-wave aborts stop after the merge above, so the pending map holds
    // every update the workers managed to record — which is exactly what
    // the Abort() lower bound wants to scan.
    if (interner_full_.load(std::memory_order_relaxed)) {
      return Abort(PhaseStatus::kMemoryCap, level);
    }
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Abort(CancelStatus(), level);
    }
  }

  return found ? PhaseStatus::kFound : PhaseStatus::kInfeasible;
}

template <typename Ops>
ScheduleResult Searcher<Ops>::Run(bool want_schedule,
                                  const Incumbent* incumbent) {
  // Span label carries the engine, so profiles separate dijkstra waves
  // from informed ones. Recorded per Run (both passes of a two-phase
  // dominance run fall under one span).
  const obs::ScopedSpan span(std::string("search.") +
                             ToString(options_.engine));
  struct StatsFlush {
    const Searcher* self;
    ~StatsFlush() {
      if (self->options_.stats != nullptr) {
        *self->options_.stats = self->stats_;
      }
      // Mirror the run's counters into the process-wide registry
      // (write-only: nothing in the search reads these back).
      static const obs::Counter runs("search.runs");
      static const obs::Counter expanded("search.expanded");
      static const obs::Counter waves("search.waves");
      static const obs::Counter generated("search.generated");
      static const obs::Counter improved("search.improved");
      static const obs::Counter pruned_bound("search.pruned_bound");
      static const obs::Counter pruned_heuristic("search.pruned_heuristic");
      static const obs::Counter pruned_dominated("search.pruned_dominated");
      static const obs::Gauge max_frontier("search.max_frontier");
      static const obs::Gauge frontier_bytes("search.frontier_bytes");
      // Hot-path instrumentation (§14). Hit/miss splits are reporting-only
      // and interleaving-dependent under threads; nothing in the search
      // reads them back, so the determinism contract is untouched.
      static const obs::Counter bound_cache_hit("search.bound_cache_hit");
      static const obs::Counter bound_cache_miss("search.bound_cache_miss");
      static const obs::Counter intern_cache_hit("search.intern_cache_hit");
      static const obs::Counter intern_cache_miss("search.intern_cache_miss");
      static const obs::Counter succ_gen_ns("search.succ_gen_ns");
      runs.Add(1);
      expanded.Add(self->stats_.expanded);
      waves.Add(self->stats_.waves);
      generated.Add(self->stats_.generated);
      improved.Add(self->stats_.improved);
      pruned_bound.Add(self->stats_.pruned_bound);
      pruned_heuristic.Add(self->stats_.pruned_heuristic);
      pruned_dominated.Add(self->stats_.pruned_dominated);
      max_frontier.Max(self->stats_.max_frontier);
      frontier_bytes.Max(self->stats_.frontier_bytes);
      bound_cache_hit.Add(self->stats_.bound_cache_hits);
      bound_cache_miss.Add(self->stats_.bound_cache_misses);
      intern_cache_hit.Add(self->stats_.intern_cache_hits);
      intern_cache_miss.Add(self->stats_.intern_cache_misses);
      succ_gen_ns.Add(self->stats_.succ_gen_ns);
    }
  } flush{this};

  const bool anytime = incumbent != nullptr;  // only the bb engine seeds one
  const bool informed = options_.engine != SearchEngine::kDijkstra;

  if (ops_.InitialRedWeight() > budget_) return ScheduleResult::Infeasible();

  // h at the start state: the day-zero lower bound every abort falls back
  // on, and the cheapest infeasibility oracle we have.
  const Weight h0 = informed ? ops_.HeuristicState(start_, main_scratch_) : 0;
  if (h0 >= kInfiniteCost) return ScheduleResult::Infeasible();

  // Day-zero reported bound: the start-state h, tightened by the caller's
  // certified root bound (a ganalysis certificate). Reporting only — the
  // search order and every schedule are independent of it.
  const Weight root_lb = std::max(h0, options_.root_lower_bound);

  // Honor tokens that are already expired before any state settles (the
  // in-loop polls would miss them on small graphs). The bb engine still
  // returns its incumbent here — the "never fail to return a schedule"
  // half of the anytime contract.
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    if (anytime) {
      return AnytimeResult(want_schedule, *incumbent, root_lb,
                           ToTermination(CancelStatus()));
    }
    return TimedOutResult(CancelStatus(), root_lb);
  }

  const std::size_t threads = ResolveThreadCount(options_.threads);
  // Pool size is capped at the hardware concurrency: extra workers on an
  // oversubscribed machine only add context switches under the expansion
  // locks. Results are unchanged by construction — the determinism
  // contract holds for ANY worker count, and the wave chunking stays a
  // function of the REQUESTED count (chunk merges are chunk-ordered, so
  // the pending map sees the same update sequence either way).
  const std::size_t workers = std::min<std::size_t>(
      threads,
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  std::optional<ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);
  ThreadPool* pool_ptr = pool.has_value() ? &*pool : nullptr;
  // Single-worker runs never contend, so the dist map drops its shard
  // locks — TryImprove becomes plain loads and stores.
  dist_.SetConcurrent(pool_ptr != nullptr);

  PhaseConfig cfg;
  cfg.use_heuristic = informed;
  const bool two_phase = options_.engine == SearchEngine::kAStarDominance ||
                         options_.engine == SearchEngine::kBranchAndBound;
  if (two_phase) {
    cfg.use_len = false;
    cfg.use_dominance = true;
  }
  if (anytime) cfg.prime_bound = incumbent->cost;

  PhaseStatus status = RunPhase(cfg, pool_ptr, threads);
  if (IsAbort(status)) {
    const Weight lb = std::max(root_lb, abort_lb_);
    if (anytime) {
      return AnytimeResult(want_schedule, *incumbent, lb,
                           ToTermination(status));
    }
    return TimedOutResult(status, lb);
  }
  if (status == PhaseStatus::kInfeasible) {
    if (anytime) {
      // Unreachable in practice: the incumbent is a valid schedule, so a
      // goal with f <= its cost exists and incumbent pruning cannot drop
      // it. Handled honestly all the same — hand the incumbent back with
      // the start bound rather than contradicting it.
      return AnytimeResult(want_schedule, *incumbent, root_lb,
                           Termination::kComplete);
    }
    return ScheduleResult::Infeasible();
  }

  ScheduleResult result;
  result.feasible = true;
  result.cost = goal_key_.g;
  result.lower_bound = result.cost;
  result.optimality_gap = 0;
  result.termination = Termination::kOptimal;
  if (!want_schedule) return result;

  if (two_phase) {
    // The cost pass ran without the length tier and with dominance drops,
    // so its distance map cannot drive the canonical reconstruction.
    // Re-run A* with the optimum as the pruning bound from move zero: it
    // settles exactly the f <= C* states whose optimal-path entries the
    // plain A* map would hold, so the reconstruction below is bit-for-bit
    // the same schedule every engine returns.
    PhaseConfig exact;
    exact.use_heuristic = true;
    exact.prime_bound = result.cost;
    status = RunPhase(exact, pool_ptr, threads);
    if (IsAbort(status)) {
      // The optimum C* is already proven; only the canonical schedule is
      // missing. With an incumbent in hand, return it bounded by C*
      // (often gap zero, i.e. the incumbent was optimal all along).
      if (anytime) {
        return AnytimeResult(want_schedule, *incumbent, result.cost,
                             ToTermination(status));
      }
      return TimedOutResult(status, result.cost);
    }
    assert(status == PhaseStatus::kFound);
    if (status != PhaseStatus::kFound) return ScheduleResult::Infeasible();
    assert(goal_key_.g == result.cost);
  }
  result.schedule = Reconstruct();
  return result;
}

// Rebuilds the canonical optimal schedule from the finished distance map.
// Two passes over the tight-edge graph (edges where dist[p] + move ==
// dist[s], the edges shortest paths are made of):
//   1. mark every state lying on some optimal path, by walking tight
//      edges backwards from the optimal goal states;
//   2. walk forwards from the start, always taking the first marked tight
//      edge in canonical move order.
// Both passes are pure functions of the distance map restricted to
// optimal-path states, and those entries are identical for every engine
// and thread count (DESIGN.md §9): a state is marked iff it is genuinely
// reachable at exactly the tight (g, len) — any such state lies on a
// cost-C* path, every prefix of which has f <= C* by admissibility, so
// no engine's pruning can have missed it. The walk asks the policy for
// predecessor/successor candidates and resolves them with FindExisting()
// (never Commit), so reconstruction cannot grow the interned state set.
template <typename Ops>
Schedule Searcher<Ops>::Reconstruct() {
  const Weight goal_g = goal_key_.g;
  const std::uint32_t goal_len = goal_key_.len;

  std::unordered_set<State> marked;
  std::vector<State> stack;
  for (const State g : goal_states_) {
    if (marked.insert(g).second) stack.push_back(g);
  }
  while (!stack.empty()) {
    const State s = stack.back();
    stack.pop_back();
    const FlatDistMap::Entry* entry = dist_.Find(s);
    assert(entry != nullptr);
    if (entry->len == 0) continue;  // the start state has no predecessors
    const Weight s_g = entry->g;
    const std::uint32_t s_len = entry->len;
    ops_.ForEachPredecessor(s, main_scratch_,
                            [&](const auto& c, Weight move_cost) {
      State p = 0;
      if (!ops_.FindExisting(c, &p)) return;
      const FlatDistMap::Entry* pe = dist_.Find(p);
      if (pe != nullptr && pe->g == s_g - move_cost &&
          pe->len == s_len - 1 && marked.insert(p).second) {
        stack.push_back(p);
      }
    });
  }
  assert(marked.contains(start_));

  std::vector<Move> moves;
  moves.reserve(goal_len);
  State s = start_;
  Weight g = 0;
  std::uint32_t len = 0;
  while (!(g == goal_g && len == goal_len && ops_.IsGoal(s))) {
    assert(len < goal_len);
    bool advanced = false;
    ops_.ForEachSuccessor(s, main_scratch_,
                          [&](const auto& c, Weight move_cost, Move move) {
      State next = 0;
      if (!ops_.FindExisting(c, &next)) return false;
      const FlatDistMap::Entry* d = dist_.Find(next);
      if (d == nullptr || d->g != g + move_cost || d->len != len + 1 ||
          !marked.contains(next)) {
        return false;
      }
      moves.push_back(move);
      s = next;
      g += move_cost;
      ++len;
      advanced = true;
      return true;
    });
    assert(advanced);
    if (!advanced) break;  // unreachable; avoids a hang in release builds
  }
  return Schedule(std::move(moves));
}

}  // namespace

const char* ToString(SearchEngine engine) {
  switch (engine) {
    case SearchEngine::kDijkstra: return "dijkstra";
    case SearchEngine::kAStar: return "astar";
    case SearchEngine::kAStarDominance: return "astar+dominance";
    case SearchEngine::kBranchAndBound: return "bb";
  }
  return "unknown";
}

BruteForceScheduler::BruteForceScheduler(const Graph& graph) : graph_(graph) {}

ScheduleResult BruteForceScheduler::Search(Weight budget,
                                           const BruteForceOptions& options,
                                           bool want_schedule) const {
  // Route through the packed fast path whenever the whole configuration
  // fits one 64-bit word; wider graphs (or the differential-testing hook)
  // take the interned wide representation. Both return bit-identical
  // results — there is no graph size the engines refuse.
  const bool wide = graph_.num_nodes() > 32 || options.force_wide_state;

  // Start-state certificates and root orbit pruning are sound only for
  // the standard game (empty red, sources blue, sinks-blue goal); drop
  // them silently for the memory-state variants.
  BruteForceOptions opts = options;
  const bool standard_game =
      opts.initial_red == 0 && !opts.initial_blue.has_value() &&
      opts.required_red_at_end == 0 && opts.require_sinks_blue;
  if (!standard_game) {
    opts.root_lower_bound = 0;
    opts.prune_root_loads = nullptr;
  }

  std::optional<Incumbent> incumbent;
  if (opts.engine == SearchEngine::kBranchAndBound) {
    incumbent = SeedIncumbent(graph_, budget, opts);
  }
  const Incumbent* inc = incumbent.has_value() ? &*incumbent : nullptr;

  ScheduleResult result =
      wide ? Searcher<WideOps>(graph_, budget, opts).Run(want_schedule, inc)
           : Searcher<PackedOps>(graph_, budget, opts).Run(want_schedule, inc);

  if (options.engine == SearchEngine::kBranchAndBound) {
    static const obs::Counter bb_runs("search.bb.runs");
    static const obs::Counter bb_optimal("search.bb.optimal");
    static const obs::Counter bb_anytime("search.bb.anytime");
    static const obs::Gauge bb_gap("search.bb.gap");
    bb_runs.Add(1);
    if (result.termination == Termination::kOptimal) {
      bb_optimal.Add(1);
    } else if (result.feasible) {
      bb_anytime.Add(1);
    }
    if (result.feasible) {
      bb_gap.Max(static_cast<std::uint64_t>(result.optimality_gap));
    }
  }
  return result;
}

ScheduleResult BruteForceScheduler::Run(Weight budget,
                                        const BruteForceOptions& options) const {
  return Search(budget, options, /*want_schedule=*/true);
}

Weight BruteForceScheduler::CostOnly(Weight budget,
                                     const BruteForceOptions& options) const {
  return Search(budget, options, /*want_schedule=*/false).cost;
}

}  // namespace wrbpg
