#include "schedulers/brute_force.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/thread_pool.h"

namespace wrbpg {
namespace {

using State = std::uint64_t;  // red mask | (blue mask << 32)

constexpr std::uint32_t RedOf(State s) {
  return static_cast<std::uint32_t>(s & 0xffffffffu);
}
constexpr std::uint32_t BlueOf(State s) {
  return static_cast<std::uint32_t>(s >> 32);
}
constexpr State MakeState(std::uint32_t red, std::uint32_t blue) {
  return static_cast<State>(red) | (static_cast<State>(blue) << 32);
}

// Search key: Definition 2.2 cost first, then schedule length. The length
// component makes the order well-founded under the free moves (M3/M4 cost
// nothing, so cost alone admits zero-cost cycles like compute-then-delete)
// and is the middle tier of the determinism contract's tie-break.
struct Key {
  Weight cost = 0;
  std::uint32_t len = 0;

  friend bool operator==(const Key&, const Key&) = default;
  friend bool operator<(const Key& a, const Key& b) {
    return a.cost != b.cost ? a.cost < b.cost : a.len < b.len;
  }
};

// Concurrent State -> Key map, sharded so parallel frontier expansion
// relaxes edges without a global lock. Shortest-path distances are unique,
// so the final contents are independent of which thread wins each race —
// the root of the parallel == sequential guarantee.
class DistMap {
 public:
  // Inserts or lowers the key for `s`; true when this call changed it.
  bool TryImprove(State s, Key key) {
    Shard& shard = shards_[ShardIndex(s)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(s, key);
    if (inserted) return true;
    if (key < it->second) {
      it->second = key;
      return true;
    }
    return false;
  }

  // Lock-free lookup; only legal while no expansion is in flight (between
  // waves, and during reconstruction).
  const Key* Find(State s) const {
    const Shard& shard = shards_[ShardIndex(s)];
    const auto it = shard.map.find(s);
    return it == shard.map.end() ? nullptr : &it->second;
  }

 private:
  static constexpr std::size_t kShardCount = 64;  // power of two

  static std::size_t ShardIndex(State s) {
    return static_cast<std::size_t>((s * 0x9e3779b97f4a7c15ull) >> 58) &
           (kShardCount - 1);
  }

  struct Shard {
    std::mutex mu;
    std::unordered_map<State, Key> map;
  };
  Shard shards_[kShardCount];
};

struct LevelUpdate {
  Key key;
  State state;
};

// One exact search: level-synchronous Dijkstra over (cost, len) keys plus
// canonical reconstruction. Every move's key strictly exceeds its source's
// (cost is nondecreasing, length always +1), so expanding whole levels in
// lexicographic key order settles states exactly like a serial Dijkstra —
// which is what lets a level's states fan out across the pool.
class Searcher {
 public:
  Searcher(const Graph& graph, Weight budget,
           const BruteForceOptions& options)
      : graph_(graph), budget_(budget), options_(options) {
    const NodeId n = graph.num_nodes();
    parents_mask_.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (graph.is_source(v)) sources_mask_ |= 1u << v;
      if (graph.is_sink(v)) sinks_mask_ |= 1u << v;
      for (NodeId p : graph.parents(v)) parents_mask_[v] |= 1u << p;
    }
    initial_red_ = static_cast<std::uint32_t>(options.initial_red);
    initial_blue_ =
        static_cast<std::uint32_t>(options.initial_blue.value_or(sources_mask_));
    required_red_ = static_cast<std::uint32_t>(options.required_red_at_end);
    start_ = MakeState(initial_red_, initial_blue_);
  }

  ScheduleResult Run(bool want_schedule);

 private:
  bool IsGoal(State s) const {
    if ((RedOf(s) & required_red_) != required_red_) return false;
    if (options_.require_sinks_blue &&
        (BlueOf(s) & sinks_mask_) != sinks_mask_) {
      return false;
    }
    return true;
  }

  Weight RedWeight(std::uint32_t red) const {
    Weight w = 0;
    while (red != 0) {
      const int v = std::countr_zero(red);
      w += graph_.weight(static_cast<NodeId>(v));
      red &= red - 1;
    }
    return w;
  }

  // Calls fn(next, move_cost, move) for every legal move out of `s`, in
  // canonical move order (M1 < M2 < M3 < M4, node ascending); fn returns
  // true to stop early. The reconstruction walk takes the first tight
  // on-path edge this enumeration offers, which is what makes the
  // returned sequence the lexicographically-least one.
  template <typename Fn>
  void ForEachSuccessor(State s, Fn&& fn) const {
    const std::uint32_t red = RedOf(s);
    const std::uint32_t blue = BlueOf(s);
    const Weight rw = RedWeight(red);
    const NodeId n = graph_.num_nodes();
    for (NodeId v = 0; v < n; ++v) {  // M1: load from blue
      const std::uint32_t bit = 1u << v;
      const Weight w = graph_.weight(v);
      if ((red & bit) == 0 && (blue & bit) != 0 && rw + w <= budget_ &&
          fn(MakeState(red | bit, blue), w, Load(v))) {
        return;
      }
    }
    for (NodeId v = 0; v < n; ++v) {  // M2: store to blue
      const std::uint32_t bit = 1u << v;
      if ((red & bit) != 0 && (blue & bit) == 0 &&
          fn(MakeState(red, blue | bit), graph_.weight(v), Store(v))) {
        return;
      }
    }
    for (NodeId v = 0; v < n; ++v) {  // M3: compute when all parents red
      const std::uint32_t bit = 1u << v;
      if ((red & bit) == 0 && (sources_mask_ & bit) == 0 &&
          (red & parents_mask_[v]) == parents_mask_[v] &&
          rw + graph_.weight(v) <= budget_ &&
          fn(MakeState(red | bit, blue), 0, Compute(v))) {
        return;
      }
    }
    for (NodeId v = 0; v < n; ++v) {  // M4: delete red
      const std::uint32_t bit = 1u << v;
      if ((red & bit) != 0 &&
          fn(MakeState(red & ~bit, blue), 0, Delete(v))) {
        return;
      }
    }
  }

  void ExpandRange(const std::vector<State>& frontier, std::size_t lo,
                   std::size_t hi, Key level, std::vector<LevelUpdate>& out);
  Schedule Reconstruct(Key goal_key,
                       const std::vector<State>& goal_states) const;

  const Graph& graph_;
  const Weight budget_;
  const BruteForceOptions& options_;

  std::uint32_t sources_mask_ = 0;
  std::uint32_t sinks_mask_ = 0;
  std::vector<std::uint32_t> parents_mask_;
  std::uint32_t initial_red_ = 0;
  std::uint32_t initial_blue_ = 0;
  std::uint32_t required_red_ = 0;
  State start_ = 0;

  DistMap dist_;
  // Shared best-known goal cost: relaxations that discover a goal lower it
  // (atomically, across all workers), and every relaxation prunes targets
  // strictly costlier. Only strictly-worse states are dropped, so pruning
  // never disturbs the distance map below the optimum — timing of the
  // bound updates cannot leak into the result.
  std::atomic<Weight> best_goal_cost_{kInfiniteCost};
  std::atomic<bool> cancelled_{false};
};

void Searcher::ExpandRange(const std::vector<State>& frontier, std::size_t lo,
                           std::size_t hi, Key level,
                           std::vector<LevelUpdate>& out) {
  const CancelToken* cancel = options_.cancel;
  for (std::size_t i = lo; i < hi; ++i) {
    if ((i - lo) % 256 == 0) {
      if (cancelled_.load(std::memory_order_relaxed)) return;
      if (cancel != nullptr && cancel->cancelled()) {
        cancelled_.store(true, std::memory_order_relaxed);
        return;
      }
    }
    const State s = frontier[i];
    ForEachSuccessor(s, [&](State next, Weight move_cost, Move) {
      const Key next_key{level.cost + move_cost, level.len + 1};
      if (next_key.cost > best_goal_cost_.load(std::memory_order_relaxed)) {
        return false;  // already provably worse than a known solution
      }
      if (dist_.TryImprove(next, next_key)) {
        if (IsGoal(next)) {
          Weight seen = best_goal_cost_.load(std::memory_order_relaxed);
          while (next_key.cost < seen &&
                 !best_goal_cost_.compare_exchange_weak(
                     seen, next_key.cost, std::memory_order_relaxed)) {
          }
        }
        out.push_back({next_key, next});
      }
      return false;
    });
  }
}

ScheduleResult Searcher::Run(bool want_schedule) {
  if (RedWeight(initial_red_) > budget_) return ScheduleResult::Infeasible();
  // Honor tokens that are already expired before any state settles (the
  // in-loop poll is per wave and would miss them on small graphs).
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    return ScheduleResult::TimedOut();
  }

  const std::size_t threads = ResolveThreadCount(options_.threads);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  dist_.TryImprove(start_, Key{0, 0});
  std::map<Key, std::vector<State>> pending;
  pending[Key{0, 0}].push_back(start_);

  std::size_t settled = 0;
  bool found = false;
  Key goal_key;
  std::vector<State> goal_states;
  std::vector<State> live;

  while (!found && !pending.empty()) {
    auto level_node = pending.extract(pending.begin());
    const Key level = level_node.key();
    const std::vector<State>& frontier = level_node.mapped();

    // Drop states this level no longer owns: a later relaxation in an
    // earlier wave may have improved them into a lower level (which then
    // already expanded them).
    live.clear();
    for (const State s : frontier) {
      const Key* key = dist_.Find(s);
      if (key != nullptr && *key == level) live.push_back(s);
    }
    if (live.empty()) continue;

    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return ScheduleResult::TimedOut();
    }
    settled += live.size();
    if (settled > options_.max_states) {
      std::fprintf(stderr,
                   "BruteForceScheduler: state limit exceeded (%zu states)\n",
                   options_.max_states);
      return ScheduleResult::TimedOut();
    }

    for (const State s : live) {
      if (IsGoal(s)) goal_states.push_back(s);
    }
    if (!goal_states.empty()) {
      // Levels settle in ascending (cost, len) order, so the first level
      // holding a goal is the optimum; its states are never expanded.
      goal_key = level;
      found = true;
      break;
    }

    if (pool.has_value() && live.size() >= threads * 2) {
      const std::size_t chunk_count =
          std::min(live.size(), threads * 4);
      const std::size_t chunk =
          (live.size() + chunk_count - 1) / chunk_count;
      std::vector<std::vector<LevelUpdate>> chunk_updates(
          (live.size() + chunk - 1) / chunk);
      TaskGroup group(*pool);
      for (std::size_t c = 0; c * chunk < live.size(); ++c) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(lo + chunk, live.size());
        group.Submit([this, &live, lo, hi, level, &chunk_updates, c] {
          ExpandRange(live, lo, hi, level, chunk_updates[c]);
        });
      }
      group.Wait();
      for (const auto& updates : chunk_updates) {
        for (const LevelUpdate& u : updates) {
          pending[u.key].push_back(u.state);
        }
      }
    } else {
      std::vector<LevelUpdate> updates;
      ExpandRange(live, 0, live.size(), level, updates);
      for (const LevelUpdate& u : updates) {
        pending[u.key].push_back(u.state);
      }
    }
    if (cancelled_.load(std::memory_order_relaxed)) {
      return ScheduleResult::TimedOut();
    }
  }

  if (!found) return ScheduleResult::Infeasible();

  ScheduleResult result;
  result.feasible = true;
  result.cost = goal_key.cost;
  if (want_schedule) result.schedule = Reconstruct(goal_key, goal_states);
  return result;
}

// Rebuilds the canonical optimal schedule from the finished distance map.
// Two passes over the tight-edge graph (edges where dist[p] + move ==
// dist[s], the edges shortest paths are made of):
//   1. mark every state lying on some optimal path, by walking tight
//      edges backwards from the optimal goal states;
//   2. walk forwards from the start, always taking the first marked tight
//      edge in canonical move order.
// Both passes are pure functions of the distance map, and shortest-path
// distances are unique — so any execution (1 thread or N) lands on the
// same move sequence, bit for bit.
Schedule Searcher::Reconstruct(Key goal_key,
                               const std::vector<State>& goal_states) const {
  const NodeId n = graph_.num_nodes();

  std::unordered_set<State> marked;
  std::vector<State> stack;
  for (const State g : goal_states) {
    if (marked.insert(g).second) stack.push_back(g);
  }
  while (!stack.empty()) {
    const State s = stack.back();
    stack.pop_back();
    const Key* key_ptr = dist_.Find(s);
    assert(key_ptr != nullptr);
    const Key key = *key_ptr;
    if (key.len == 0) continue;  // the start state has no predecessors
    const std::uint32_t red = RedOf(s);
    const std::uint32_t blue = BlueOf(s);
    const auto visit_if_tight = [&](State p, Weight move_cost) {
      const Key want{key.cost - move_cost, key.len - 1};
      const Key* p_key = dist_.Find(p);
      if (p_key != nullptr && *p_key == want && marked.insert(p).second) {
        stack.push_back(p);
      }
    };
    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t bit = 1u << v;
      const Weight w = graph_.weight(v);
      // Undo M1: predecessor lacked red v, blue v present throughout.
      if ((red & bit) != 0 && (blue & bit) != 0) {
        visit_if_tight(MakeState(red & ~bit, blue), w);
      }
      // Undo M3: predecessor lacked red v and held all parents red.
      if ((red & bit) != 0 && (sources_mask_ & bit) == 0 &&
          ((red & ~bit) & parents_mask_[v]) == parents_mask_[v]) {
        visit_if_tight(MakeState(red & ~bit, blue), 0);
      }
      // Undo M2: predecessor lacked blue v, red v present throughout.
      if ((blue & bit) != 0 && (red & bit) != 0) {
        visit_if_tight(MakeState(red, blue & ~bit), w);
      }
      // Undo M4: predecessor held red v.
      if ((red & bit) == 0) {
        visit_if_tight(MakeState(red | bit, blue), 0);
      }
    }
  }
  assert(marked.contains(start_));

  std::vector<Move> moves;
  moves.reserve(goal_key.len);
  State s = start_;
  Key key{0, 0};
  while (!(key == goal_key && IsGoal(s))) {
    assert(key.len < goal_key.len);
    bool advanced = false;
    ForEachSuccessor(s, [&](State next, Weight move_cost, Move move) {
      const Key next_key{key.cost + move_cost, key.len + 1};
      const Key* d = dist_.Find(next);
      if (d == nullptr || !(*d == next_key) || !marked.contains(next)) {
        return false;
      }
      moves.push_back(move);
      s = next;
      key = next_key;
      advanced = true;
      return true;
    });
    assert(advanced);
    if (!advanced) break;  // unreachable; avoids a hang in release builds
  }
  return Schedule(std::move(moves));
}

}  // namespace

BruteForceScheduler::BruteForceScheduler(const Graph& graph) : graph_(graph) {
  if (graph.num_nodes() > 32) {
    std::fprintf(stderr,
                 "BruteForceScheduler: graph has %u nodes; the oracle "
                 "supports at most 32\n",
                 graph.num_nodes());
    std::abort();
  }
}

ScheduleResult BruteForceScheduler::Search(Weight budget,
                                           const BruteForceOptions& options,
                                           bool want_schedule) const {
  return Searcher(graph_, budget, options).Run(want_schedule);
}

ScheduleResult BruteForceScheduler::Run(Weight budget,
                                        const BruteForceOptions& options) const {
  return Search(budget, options, /*want_schedule=*/true);
}

Weight BruteForceScheduler::CostOnly(Weight budget,
                                     const BruteForceOptions& options) const {
  return Search(budget, options, /*want_schedule=*/false).cost;
}

}  // namespace wrbpg
