#include "schedulers/brute_force.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdio>
#include <map>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/state_bound.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "schedulers/search_frontier.h"
#include "util/thread_pool.h"

namespace wrbpg {
namespace {

using State = SearchState;  // red mask | (blue mask << 32)

constexpr std::uint32_t RedOf(State s) {
  return static_cast<std::uint32_t>(s & 0xffffffffu);
}
constexpr std::uint32_t BlueOf(State s) {
  return static_cast<std::uint32_t>(s >> 32);
}
constexpr State MakeState(std::uint32_t red, std::uint32_t blue) {
  return static_cast<State>(red) | (static_cast<State>(blue) << 32);
}

// Wave key: f = g + h first (Dijkstra runs with h == 0, so f == g), then
// the Definition 2.2 cost g, then schedule length. The length component
// makes the order well-founded under the free moves (M3/M4 cost nothing,
// so cost alone admits zero-cost cycles like compute-then-delete) and is
// the middle tier of the determinism contract's tie-break; the cost-only
// pass of the dominance engine zeroes it out so a zero-cost closure is
// one wave, not a cascade of length-stratified ones.
struct Key {
  Weight f = 0;
  Weight g = 0;
  std::uint32_t len = 0;

  friend bool operator==(const Key&, const Key&) = default;
  friend bool operator<(const Key& a, const Key& b) {
    if (a.f != b.f) return a.f < b.f;
    if (a.g != b.g) return a.g < b.g;
    return a.len < b.len;
  }
};

struct LevelUpdate {
  Key key;
  State state;
};

// How one search pass runs. The engines are compositions of these flags:
// Dijkstra = {false, true, false}, A* = {true, true, false}, and the
// dominance engine's cost pass = {true, false, true} (a schedule-wanting
// dominance run follows up with an A* pass primed at the found optimum).
struct PhaseConfig {
  bool use_heuristic = false;
  bool use_len = true;
  bool use_dominance = false;
  Weight prime_bound = kInfiniteCost;  // known upper bound on the optimum
};

enum class PhaseStatus { kFound, kInfeasible, kTimedOut };

// One exact search: level-synchronous best-first waves over (f, g, len)
// keys plus canonical reconstruction. Waves settle in ascending key
// order; because the state_bound heuristic is admissible but not
// consistent, a settled state whose g later improves is simply re-queued
// at its better key and re-expanded (reopening), which the
// dist-map-ownership check already implements. The first wave holding a
// goal is still the optimum: any cheaper goal would keep an open
// optimal-path state at a strictly smaller key (h admissible along that
// path), contradicting the wave order.
class Searcher {
 public:
  Searcher(const Graph& graph, Weight budget,
           const BruteForceOptions& options)
      : graph_(graph), budget_(budget), options_(options) {
    const NodeId n = graph.num_nodes();
    parents_mask_.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (graph.is_source(v)) sources_mask_ |= 1u << v;
      if (graph.is_sink(v)) sinks_mask_ |= 1u << v;
      for (NodeId p : graph.parents(v)) parents_mask_[v] |= 1u << p;
    }
    initial_red_ = static_cast<std::uint32_t>(options.initial_red);
    initial_blue_ =
        static_cast<std::uint32_t>(options.initial_blue.value_or(sources_mask_));
    required_red_ = static_cast<std::uint32_t>(options.required_red_at_end);
    start_ = MakeState(initial_red_, initial_blue_);
    if (options.engine != SearchEngine::kDijkstra) {
      bound_.emplace(graph, budget, required_red_,
                     options.require_sinks_blue);
    }
  }

  ScheduleResult Run(bool want_schedule);

 private:
  bool IsGoal(State s) const {
    if ((RedOf(s) & required_red_) != required_red_) return false;
    if (options_.require_sinks_blue &&
        (BlueOf(s) & sinks_mask_) != sinks_mask_) {
      return false;
    }
    return true;
  }

  Weight Heuristic(State s) const {
    return bound_->Evaluate(RedOf(s), BlueOf(s));
  }

  Weight RedWeight(std::uint32_t red) const {
    Weight w = 0;
    while (red != 0) {
      const int v = std::countr_zero(red);
      w += graph_.weight(static_cast<NodeId>(v));
      red &= red - 1;
    }
    return w;
  }

  // Calls fn(next, move_cost, move) for every legal move out of `s`, in
  // canonical move order (M1 < M2 < M3 < M4, node ascending); fn returns
  // true to stop early. The reconstruction walk takes the first tight
  // on-path edge this enumeration offers, which is what makes the
  // returned sequence the lexicographically-least one.
  template <typename Fn>
  void ForEachSuccessor(State s, Fn&& fn) const {
    const std::uint32_t red = RedOf(s);
    const std::uint32_t blue = BlueOf(s);
    const Weight rw = RedWeight(red);
    const NodeId n = graph_.num_nodes();
    for (NodeId v = 0; v < n; ++v) {  // M1: load from blue
      const std::uint32_t bit = 1u << v;
      const Weight w = graph_.weight(v);
      if ((red & bit) == 0 && (blue & bit) != 0 && rw + w <= budget_ &&
          fn(MakeState(red | bit, blue), w, Load(v))) {
        return;
      }
    }
    for (NodeId v = 0; v < n; ++v) {  // M2: store to blue
      const std::uint32_t bit = 1u << v;
      if ((red & bit) != 0 && (blue & bit) == 0 &&
          fn(MakeState(red, blue | bit), graph_.weight(v), Store(v))) {
        return;
      }
    }
    for (NodeId v = 0; v < n; ++v) {  // M3: compute when all parents red
      const std::uint32_t bit = 1u << v;
      if ((red & bit) == 0 && (sources_mask_ & bit) == 0 &&
          (red & parents_mask_[v]) == parents_mask_[v] &&
          rw + graph_.weight(v) <= budget_ &&
          fn(MakeState(red | bit, blue), 0, Compute(v))) {
        return;
      }
    }
    for (NodeId v = 0; v < n; ++v) {  // M4: delete red
      const std::uint32_t bit = 1u << v;
      if ((red & bit) != 0 &&
          fn(MakeState(red & ~bit, blue), 0, Delete(v))) {
        return;
      }
    }
  }

  PhaseStatus RunPhase(const PhaseConfig& cfg, ThreadPool* pool,
                       std::size_t threads);
  void ExpandRange(const std::vector<State>& frontier, std::size_t lo,
                   std::size_t hi, Key level, const PhaseConfig& cfg,
                   std::vector<LevelUpdate>& out, SearchStats& stats);
  void PruneDominated(std::vector<State>& live);
  Schedule Reconstruct() const;

  const Graph& graph_;
  const Weight budget_;
  const BruteForceOptions& options_;

  std::uint32_t sources_mask_ = 0;
  std::uint32_t sinks_mask_ = 0;
  std::vector<std::uint32_t> parents_mask_;
  std::uint32_t initial_red_ = 0;
  std::uint32_t initial_blue_ = 0;
  std::uint32_t required_red_ = 0;
  State start_ = 0;
  std::optional<StateBound> bound_;

  FlatDistMap dist_;
  std::map<Key, std::vector<State>> pending_;
  LevelPool level_pool_;
  std::vector<std::vector<LevelUpdate>> chunk_updates_;

  // Shared best-known goal cost: relaxations that discover a goal lower it
  // (atomically, across all workers), and every relaxation prunes targets
  // whose f strictly exceeds it. h is admissible, so f > bound proves the
  // successor cannot sit on a solution of cost <= bound; only strictly-
  // worse states are dropped, and the distance map below the optimum is
  // undisturbed — timing of the bound updates cannot leak into the result.
  std::atomic<Weight> best_goal_cost_{kInfiniteCost};
  std::atomic<bool> cancelled_{false};

  std::size_t settled_ = 0;  // cumulative across phases (max_states valve)
  SearchStats stats_;        // aggregated across phases
  Key goal_key_;
  std::vector<State> goal_states_;
};

void Searcher::ExpandRange(const std::vector<State>& frontier, std::size_t lo,
                           std::size_t hi, Key level, const PhaseConfig& cfg,
                           std::vector<LevelUpdate>& out,
                           SearchStats& stats) {
  const CancelToken* cancel = options_.cancel;
  for (std::size_t i = lo; i < hi; ++i) {
    if ((i - lo) % 256 == 0) {
      if (cancelled_.load(std::memory_order_relaxed)) return;
      if (cancel != nullptr && cancel->cancelled()) {
        cancelled_.store(true, std::memory_order_relaxed);
        return;
      }
    }
    const State s = frontier[i];
    ForEachSuccessor(s, [&](State next, Weight move_cost, Move) {
      ++stats.generated;
      const Weight g = level.g + move_cost;
      Weight h = 0;
      if (cfg.use_heuristic) {
        h = Heuristic(next);
        if (h >= kInfiniteCost) {
          ++stats.pruned_heuristic;  // no completion exists from `next`
          return false;
        }
      }
      const Weight f = g + h;
      if (f > best_goal_cost_.load(std::memory_order_relaxed)) {
        ++stats.pruned_bound;  // already provably worse than a solution
        return false;
      }
      const std::uint32_t len = cfg.use_len ? level.len + 1 : 0;
      if (dist_.TryImprove(next, g, len)) {
        ++stats.improved;
        if (IsGoal(next)) {
          // h(goal) == 0, so f == g here.
          Weight seen = best_goal_cost_.load(std::memory_order_relaxed);
          while (g < seen && !best_goal_cost_.compare_exchange_weak(
                                 seen, g, std::memory_order_relaxed)) {
          }
        }
        out.push_back({Key{f, g, len}, next});
      }
      return false;
    });
  }
}

// Drops wave states that a same-wave sibling renders redundant: equal red
// mask (with positive weights, "superset red at no greater red weight"
// collapses to equality) and strictly-superset blue mask. Any completion
// from the dominated state either never stores into the extra blue nodes —
// then it is verbatim legal from the dominator at identical cost — or it
// does, and the dominator skips those stores for a strictly cheaper
// finish. Either way the optimal cost survives the drop. The lex-least
// tie-break does NOT necessarily survive, which is why this filter only
// runs in the cost pass (PhaseConfig::use_dominance) and never in a pass
// that reconstructs a schedule.
void Searcher::PruneDominated(std::vector<State>& live) {
  if (live.size() < 2) return;
  // Sort so that, within a red group, supersets precede subsets: blue
  // popcount descending, then blue ascending for determinism.
  std::sort(live.begin(), live.end(), [](State a, State b) {
    if (RedOf(a) != RedOf(b)) return RedOf(a) < RedOf(b);
    const int pa = std::popcount(BlueOf(a));
    const int pb = std::popcount(BlueOf(b));
    if (pa != pb) return pa > pb;
    return BlueOf(a) < BlueOf(b);
  });
  std::size_t kept = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const State s = live[i];
    bool dominated = false;
    for (std::size_t j = kept;
         j > 0 && RedOf(live[j - 1]) == RedOf(s); --j) {
      const std::uint32_t blue = BlueOf(s);
      if ((blue & BlueOf(live[j - 1])) == blue) {
        dominated = true;  // kept sibling holds every blue pebble we do
        break;
      }
    }
    if (!dominated) live[kept++] = s;
  }
  stats_.pruned_dominated += live.size() - kept;
  live.resize(kept);
}

PhaseStatus Searcher::RunPhase(const PhaseConfig& cfg, ThreadPool* pool,
                               std::size_t threads) {
  dist_.Reset();
  pending_.clear();
  best_goal_cost_.store(cfg.prime_bound, std::memory_order_relaxed);
  goal_states_.clear();

  const Weight h0 = cfg.use_heuristic ? Heuristic(start_) : 0;
  if (h0 >= kInfiniteCost) return PhaseStatus::kInfeasible;
  dist_.TryImprove(start_, 0, 0);
  pending_[Key{h0, 0, 0}].push_back(start_);

  bool found = false;
  std::vector<State> live;

  while (!found && !pending_.empty()) {
    auto level_node = pending_.extract(pending_.begin());
    const Key level = level_node.key();
    std::vector<State>& frontier = level_node.mapped();

    // Drop states this level no longer owns: a later relaxation in an
    // earlier wave may have improved them into a lower level (which then
    // already expanded them), and reopening re-queues improved states
    // under their better key.
    live.clear();
    for (const State s : frontier) {
      const FlatDistMap::Entry* e = dist_.Find(s);
      if (e != nullptr && e->g == level.g && e->len == level.len) {
        live.push_back(s);
      }
    }
    level_pool_.Release(std::move(frontier));
    if (live.empty()) continue;
    ++stats_.waves;

    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return PhaseStatus::kTimedOut;
    }

    for (const State s : live) {
      if (IsGoal(s)) goal_states_.push_back(s);
    }
    if (!goal_states_.empty()) {
      // Waves settle in ascending (f, g, len) order, so the first wave
      // holding a goal is the optimum; its states are never expanded.
      goal_key_ = level;
      found = true;
      break;
    }

    if (cfg.use_dominance) PruneDominated(live);
    settled_ += live.size();
    stats_.expanded += live.size();
    stats_.max_frontier = std::max<std::uint64_t>(stats_.max_frontier,
                                                  live.size());
    if (settled_ > options_.max_states) {
      std::fprintf(stderr,
                   "BruteForceScheduler: state limit exceeded (%zu states)\n",
                   options_.max_states);
      return PhaseStatus::kTimedOut;
    }

    if (pool != nullptr && live.size() >= threads * 2) {
      const std::size_t chunk_count = std::min(live.size(), threads * 4);
      const std::size_t chunk =
          (live.size() + chunk_count - 1) / chunk_count;
      const std::size_t num_chunks = (live.size() + chunk - 1) / chunk;
      if (chunk_updates_.size() < num_chunks) {
        chunk_updates_.resize(num_chunks);
      }
      std::vector<SearchStats> chunk_stats(num_chunks);
      TaskGroup group(*pool);
      for (std::size_t c = 0; c < num_chunks; ++c) {
        chunk_updates_[c].clear();
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(lo + chunk, live.size());
        group.Submit([this, &live, lo, hi, level, &cfg, &chunk_stats, c] {
          ExpandRange(live, lo, hi, level, cfg, chunk_updates_[c],
                      chunk_stats[c]);
        });
      }
      group.Wait();
      for (std::size_t c = 0; c < num_chunks; ++c) {
        stats_.Accumulate(chunk_stats[c]);
        for (const LevelUpdate& u : chunk_updates_[c]) {
          auto [it, inserted] = pending_.try_emplace(u.key);
          if (inserted) it->second = level_pool_.Acquire();
          it->second.push_back(u.state);
        }
      }
    } else {
      if (chunk_updates_.empty()) chunk_updates_.resize(1);
      chunk_updates_[0].clear();
      ExpandRange(live, 0, live.size(), level, cfg, chunk_updates_[0],
                  stats_);
      for (const LevelUpdate& u : chunk_updates_[0]) {
        auto [it, inserted] = pending_.try_emplace(u.key);
        if (inserted) it->second = level_pool_.Acquire();
        it->second.push_back(u.state);
      }
    }
    if (cancelled_.load(std::memory_order_relaxed)) {
      return PhaseStatus::kTimedOut;
    }
  }

  return found ? PhaseStatus::kFound : PhaseStatus::kInfeasible;
}

ScheduleResult Searcher::Run(bool want_schedule) {
  // Span label carries the engine, so profiles separate dijkstra waves
  // from informed ones. Recorded per Run (both passes of a two-phase
  // dominance run fall under one span).
  const obs::ScopedSpan span(std::string("search.") +
                             ToString(options_.engine));
  struct StatsFlush {
    const Searcher* self;
    ~StatsFlush() {
      if (self->options_.stats != nullptr) {
        *self->options_.stats = self->stats_;
      }
      // Mirror the run's counters into the process-wide registry
      // (write-only: nothing in the search reads these back).
      static const obs::Counter runs("search.runs");
      static const obs::Counter expanded("search.expanded");
      static const obs::Counter waves("search.waves");
      static const obs::Counter generated("search.generated");
      static const obs::Counter improved("search.improved");
      static const obs::Counter pruned_bound("search.pruned_bound");
      static const obs::Counter pruned_heuristic("search.pruned_heuristic");
      static const obs::Counter pruned_dominated("search.pruned_dominated");
      static const obs::Gauge max_frontier("search.max_frontier");
      runs.Add(1);
      expanded.Add(self->stats_.expanded);
      waves.Add(self->stats_.waves);
      generated.Add(self->stats_.generated);
      improved.Add(self->stats_.improved);
      pruned_bound.Add(self->stats_.pruned_bound);
      pruned_heuristic.Add(self->stats_.pruned_heuristic);
      pruned_dominated.Add(self->stats_.pruned_dominated);
      max_frontier.Max(self->stats_.max_frontier);
    }
  } flush{this};

  if (RedWeight(initial_red_) > budget_) return ScheduleResult::Infeasible();
  // Honor tokens that are already expired before any state settles (the
  // in-loop poll is per wave and would miss them on small graphs).
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    return ScheduleResult::TimedOut();
  }

  const std::size_t threads = ResolveThreadCount(options_.threads);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  ThreadPool* pool_ptr = pool.has_value() ? &*pool : nullptr;

  PhaseConfig cfg;
  cfg.use_heuristic = options_.engine != SearchEngine::kDijkstra;
  const bool two_phase =
      options_.engine == SearchEngine::kAStarDominance;
  if (two_phase) {
    cfg.use_len = false;
    cfg.use_dominance = true;
  }

  PhaseStatus status = RunPhase(cfg, pool_ptr, threads);
  if (status == PhaseStatus::kTimedOut) return ScheduleResult::TimedOut();
  if (status == PhaseStatus::kInfeasible) return ScheduleResult::Infeasible();

  ScheduleResult result;
  result.feasible = true;
  result.cost = goal_key_.g;
  if (!want_schedule) return result;

  if (two_phase) {
    // The cost pass ran without the length tier and with dominance drops,
    // so its distance map cannot drive the canonical reconstruction.
    // Re-run A* with the optimum as the pruning bound from move zero: it
    // settles exactly the f <= C* states whose optimal-path entries the
    // plain A* map would hold, so the reconstruction below is bit-for-bit
    // the same schedule every engine returns.
    PhaseConfig exact;
    exact.use_heuristic = true;
    exact.prime_bound = result.cost;
    status = RunPhase(exact, pool_ptr, threads);
    if (status == PhaseStatus::kTimedOut) return ScheduleResult::TimedOut();
    assert(status == PhaseStatus::kFound);
    if (status != PhaseStatus::kFound) return ScheduleResult::Infeasible();
    assert(goal_key_.g == result.cost);
  }
  result.schedule = Reconstruct();
  return result;
}

// Rebuilds the canonical optimal schedule from the finished distance map.
// Two passes over the tight-edge graph (edges where dist[p] + move ==
// dist[s], the edges shortest paths are made of):
//   1. mark every state lying on some optimal path, by walking tight
//      edges backwards from the optimal goal states;
//   2. walk forwards from the start, always taking the first marked tight
//      edge in canonical move order.
// Both passes are pure functions of the distance map restricted to
// optimal-path states, and those entries are identical for every engine
// and thread count (DESIGN.md §9): a state is marked iff it is genuinely
// reachable at exactly the tight (g, len) — any such state lies on a
// cost-C* path, every prefix of which has f <= C* by admissibility, so
// no engine's pruning can have missed it.
Schedule Searcher::Reconstruct() const {
  const NodeId n = graph_.num_nodes();
  const Weight goal_g = goal_key_.g;
  const std::uint32_t goal_len = goal_key_.len;

  std::unordered_set<State> marked;
  std::vector<State> stack;
  for (const State g : goal_states_) {
    if (marked.insert(g).second) stack.push_back(g);
  }
  while (!stack.empty()) {
    const State s = stack.back();
    stack.pop_back();
    const FlatDistMap::Entry* entry = dist_.Find(s);
    assert(entry != nullptr);
    if (entry->len == 0) continue;  // the start state has no predecessors
    const Weight s_g = entry->g;
    const std::uint32_t s_len = entry->len;
    const std::uint32_t red = RedOf(s);
    const std::uint32_t blue = BlueOf(s);
    const auto visit_if_tight = [&](State p, Weight move_cost) {
      const FlatDistMap::Entry* pe = dist_.Find(p);
      if (pe != nullptr && pe->g == s_g - move_cost &&
          pe->len == s_len - 1 && marked.insert(p).second) {
        stack.push_back(p);
      }
    };
    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t bit = 1u << v;
      const Weight w = graph_.weight(v);
      // Undo M1: predecessor lacked red v, blue v present throughout.
      if ((red & bit) != 0 && (blue & bit) != 0) {
        visit_if_tight(MakeState(red & ~bit, blue), w);
      }
      // Undo M3: predecessor lacked red v and held all parents red.
      if ((red & bit) != 0 && (sources_mask_ & bit) == 0 &&
          ((red & ~bit) & parents_mask_[v]) == parents_mask_[v]) {
        visit_if_tight(MakeState(red & ~bit, blue), 0);
      }
      // Undo M2: predecessor lacked blue v, red v present throughout.
      if ((blue & bit) != 0 && (red & bit) != 0) {
        visit_if_tight(MakeState(red, blue & ~bit), w);
      }
      // Undo M4: predecessor held red v.
      if ((red & bit) == 0) {
        visit_if_tight(MakeState(red | bit, blue), 0);
      }
    }
  }
  assert(marked.contains(start_));

  std::vector<Move> moves;
  moves.reserve(goal_len);
  State s = start_;
  Weight g = 0;
  std::uint32_t len = 0;
  while (!(g == goal_g && len == goal_len && IsGoal(s))) {
    assert(len < goal_len);
    bool advanced = false;
    ForEachSuccessor(s, [&](State next, Weight move_cost, Move move) {
      const FlatDistMap::Entry* d = dist_.Find(next);
      if (d == nullptr || d->g != g + move_cost || d->len != len + 1 ||
          !marked.contains(next)) {
        return false;
      }
      moves.push_back(move);
      s = next;
      g += move_cost;
      ++len;
      advanced = true;
      return true;
    });
    assert(advanced);
    if (!advanced) break;  // unreachable; avoids a hang in release builds
  }
  return Schedule(std::move(moves));
}

}  // namespace

const char* ToString(SearchEngine engine) {
  switch (engine) {
    case SearchEngine::kDijkstra: return "dijkstra";
    case SearchEngine::kAStar: return "astar";
    case SearchEngine::kAStarDominance: return "astar+dominance";
  }
  return "unknown";
}

BruteForceScheduler::BruteForceScheduler(const Graph& graph) : graph_(graph) {}

ScheduleResult BruteForceScheduler::Search(Weight budget,
                                           const BruteForceOptions& options,
                                           bool want_schedule) const {
  if (graph_.num_nodes() > 32) {
    // The engine packs red/blue pebbles into 32-bit masks; wider graphs
    // are a typed refusal, not UB.
    if (options.stats != nullptr) *options.stats = SearchStats{};
    return ScheduleResult::Unsupported();
  }
  return Searcher(graph_, budget, options).Run(want_schedule);
}

ScheduleResult BruteForceScheduler::Run(Weight budget,
                                        const BruteForceOptions& options) const {
  return Search(budget, options, /*want_schedule=*/true);
}

Weight BruteForceScheduler::CostOnly(Weight budget,
                                     const BruteForceOptions& options) const {
  return Search(budget, options, /*want_schedule=*/false).cost;
}

}  // namespace wrbpg
