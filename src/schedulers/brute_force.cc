#include "schedulers/brute_force.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <queue>
#include <unordered_map>
#include <vector>

namespace wrbpg {
namespace {

using State = std::uint64_t;  // red mask | (blue mask << 32)

constexpr std::uint32_t RedOf(State s) {
  return static_cast<std::uint32_t>(s & 0xffffffffu);
}
constexpr std::uint32_t BlueOf(State s) {
  return static_cast<std::uint32_t>(s >> 32);
}
constexpr State MakeState(std::uint32_t red, std::uint32_t blue) {
  return static_cast<State>(red) | (static_cast<State>(blue) << 32);
}

struct QueueEntry {
  Weight cost;
  State state;
  bool operator>(const QueueEntry& other) const { return cost > other.cost; }
};

}  // namespace

BruteForceScheduler::BruteForceScheduler(const Graph& graph) : graph_(graph) {
  if (graph.num_nodes() > 32) {
    std::fprintf(stderr,
                 "BruteForceScheduler: graph has %u nodes; the oracle "
                 "supports at most 32\n",
                 graph.num_nodes());
    std::abort();
  }
}

ScheduleResult BruteForceScheduler::Search(Weight budget,
                                           const BruteForceOptions& options,
                                           bool want_schedule) const {
  const NodeId n = graph_.num_nodes();

  std::uint32_t sources_mask = 0;
  std::uint32_t sinks_mask = 0;
  std::vector<std::uint32_t> parents_mask(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (graph_.is_source(v)) sources_mask |= 1u << v;
    if (graph_.is_sink(v)) sinks_mask |= 1u << v;
    for (NodeId p : graph_.parents(v)) parents_mask[v] |= 1u << p;
  }

  auto red_weight = [&](std::uint32_t red) {
    Weight w = 0;
    while (red != 0) {
      const int v = std::countr_zero(red);
      w += graph_.weight(static_cast<NodeId>(v));
      red &= red - 1;
    }
    return w;
  };

  const std::uint32_t initial_red =
      static_cast<std::uint32_t>(options.initial_red);
  const std::uint32_t initial_blue = static_cast<std::uint32_t>(
      options.initial_blue.value_or(sources_mask));
  const std::uint32_t required_red =
      static_cast<std::uint32_t>(options.required_red_at_end);
  const State start = MakeState(initial_red, initial_blue);

  if (red_weight(initial_red) > budget) return ScheduleResult::Infeasible();

  auto is_goal = [&](State s) {
    if ((RedOf(s) & required_red) != required_red) return false;
    if (options.require_sinks_blue &&
        (BlueOf(s) & sinks_mask) != sinks_mask) {
      return false;
    }
    return true;
  };

  std::unordered_map<State, Weight> dist;
  std::unordered_map<State, std::pair<State, Move>> pred;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  dist[start] = 0;
  pq.push({0, start});

  // Honor tokens that are already expired before any state settles (the
  // in-loop poll is throttled and would miss them on small graphs).
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    return ScheduleResult::TimedOut();
  }

  std::size_t settled = 0;
  State goal_state = 0;
  bool found = false;

  while (!pq.empty()) {
    const auto [cost, state] = pq.top();
    pq.pop();
    const auto it = dist.find(state);
    if (it == dist.end() || it->second < cost) continue;  // stale entry
    if (is_goal(state)) {
      goal_state = state;
      found = true;
      break;
    }
    if (++settled > options.max_states) {
      std::fprintf(stderr,
                   "BruteForceScheduler: state limit exceeded (%zu states)\n",
                   options.max_states);
      return ScheduleResult::TimedOut();
    }
    if (options.cancel != nullptr && (settled & 0xff) == 0 &&
        options.cancel->cancelled()) {
      return ScheduleResult::TimedOut();
    }

    const std::uint32_t red = RedOf(state);
    const std::uint32_t blue = BlueOf(state);
    const Weight rw = red_weight(red);

    auto relax = [&](State next, Weight move_cost, Move move) {
      const Weight next_cost = cost + move_cost;
      const auto [dit, inserted] = dist.try_emplace(next, next_cost);
      if (!inserted && dit->second <= next_cost) return;
      dit->second = next_cost;
      if (want_schedule) pred[next] = {state, move};
      pq.push({next_cost, next});
    };

    for (NodeId v = 0; v < n; ++v) {
      const std::uint32_t bit = 1u << v;
      const Weight w = graph_.weight(v);
      if ((red & bit) == 0) {
        // M1: load from blue.
        if ((blue & bit) != 0 && rw + w <= budget) {
          relax(MakeState(red | bit, blue), w, Load(v));
        }
        // M3: compute when all parents red (non-source only).
        if ((sources_mask & bit) == 0 &&
            (red & parents_mask[v]) == parents_mask[v] && rw + w <= budget) {
          relax(MakeState(red | bit, blue), 0, Compute(v));
        }
      } else {
        // M2: store to blue.
        if ((blue & bit) == 0) {
          relax(MakeState(red, blue | bit), w, Store(v));
        }
        // M4: delete red.
        relax(MakeState(red & ~bit, blue), 0, Delete(v));
      }
    }
  }

  if (!found) return ScheduleResult::Infeasible();

  ScheduleResult result;
  result.feasible = true;
  result.cost = dist[goal_state];
  if (want_schedule) {
    std::vector<Move> moves;
    State s = goal_state;
    while (s != start) {
      const auto& [prev, move] = pred.at(s);
      moves.push_back(move);
      s = prev;
    }
    std::reverse(moves.begin(), moves.end());
    // Disambiguate M1 vs M3 where both lead to the same state with the same
    // cost: the recorded move is whichever relaxed last; both are legal, so
    // the reconstructed schedule is valid either way.
    result.schedule = Schedule(std::move(moves));
  }
  return result;
}

ScheduleResult BruteForceScheduler::Run(Weight budget,
                                        const BruteForceOptions& options) const {
  return Search(budget, options, /*want_schedule=*/true);
}

Weight BruteForceScheduler::CostOnly(Weight budget,
                                     const BruteForceOptions& options) const {
  return Search(budget, options, /*want_schedule=*/false).cost;
}

}  // namespace wrbpg
