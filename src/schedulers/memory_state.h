// Scheduling under fast-memory states — Sec 4.1, Eq. (8) and its k-ary
// derivative.
//
// Extends the tree pebbling recursion with user-provided memory states: an
// initial set I of nodes already resident in fast memory before the
// computation, and a reuse set R of nodes that must be resident after the
// target node is computed. For a node with parents p_1..p_k the recursion
// enumerates parent orderings sigma and keep/spill decisions delta (the
// Eq. (6) machinery), with the Eq. (8) budget adjustments:
//
//   * budget check includes R_v, H(v) and v (all must co-reside at some
//     point to honor the semantics);
//   * v in I: nothing to compute; release stale initial residents below v
//     and bring in R_v \ I (assumed blue) at cost sum of their weights;
//   * parent sigma(i) is scheduled under the budget less (a) the initial
//     sets of the subtrees not yet computed — they occupy memory from the
//     start — and (b) everything earlier subtrees keep resident: their
//     reuse sets plus the earlier parents themselves when delta keeps
//     them red.
//
// k = 2 reduces exactly to the paper's four Eq. (8) strategies. Once an R
// node is computed or loaded it stays resident (the paper's standing
// assumption), so deltas that would spill an R-parent are excluded. One
// refinement over the literal 2w spill charge: spilling a *source* parent
// costs w (reload only — its blue pebble is permanent); the
// simulator-verified schedules realize exactly the reported cost.
//
// Supports in-trees of up to 64 nodes (sets are bitmasks) with in-degree
// at most 8; this is the module-level engine behind tile composition and
// is cross-checked against the brute-force oracle's memory-state mode.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/graph.h"
#include "schedulers/scheduler.h"

namespace wrbpg {

struct MemoryState {
  std::uint64_t initial = 0;  // I: resident (red) before the schedule runs
  std::uint64_t reuse = 0;    // R: must be resident (red) at the end
};

class MemoryStateScheduler {
 public:
  // `graph` must be a rooted in-tree with at most 64 nodes and in-degree
  // at most 8.
  explicit MemoryStateScheduler(const Graph& graph);

  // Cost of computing `target` (ending red) under the state semantics.
  Weight Cost(NodeId target, Weight budget, const MemoryState& state);

  // Schedule realizing Cost(); validity is relative to initial pebbles
  // I (red) and sources + (R \ I) (blue), with no sink-blue requirement —
  // i.e. BruteForceOptions{initial_red = I, initial_blue = ...,
  // required_red_at_end = R | {target}, require_sinks_blue = false}.
  ScheduleResult Run(NodeId target, Weight budget, const MemoryState& state);

  // Node masks for convenience: the predecessor closure pred(v) | {v}.
  std::uint64_t SubtreeMask(NodeId v) const {
    return subtree_mask_[v];
  }

 private:
  struct Entry {
    Weight cost = kInfiniteCost;
    bool is_state_case = true;  // v in I, or a leaf: no ordering choice
    // Parent visit order (indices into parents(v), low nibble first) and
    // keep/spill mask (bit i set = parent sigma(i) kept red).
    std::uint32_t perm = 0;
    std::uint32_t delta = 0;
  };
  struct Key {
    NodeId node;
    Weight budget;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>()(
          (static_cast<std::uint64_t>(k.node) << 40) ^
          static_cast<std::uint64_t>(k.budget));
    }
  };

  Weight MaskWeight(std::uint64_t mask) const;
  Entry P(NodeId v, Weight b);
  void Generate(NodeId v, Weight b, Schedule& out) const;

  const Graph& graph_;
  std::vector<std::uint64_t> subtree_mask_;
  // Query context (set by Cost/Run; memo is per-(I,R) query).
  MemoryState state_;
  std::unordered_map<Key, Entry, KeyHash> memo_;
};

}  // namespace wrbpg
