#include "exec/extended_kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wrbpg {

std::vector<double> Db4Lowpass() {
  const double s3 = std::sqrt(3.0);
  const double norm = 4.0 * std::sqrt(2.0);
  return {(1.0 + s3) / norm, (3.0 + s3) / norm, (3.0 - s3) / norm,
          (1.0 - s3) / norm};
}

std::vector<double> Db4Highpass() {
  // Quadrature mirror of the lowpass: g_t = (-1)^t h_{taps-1-t}.
  const std::vector<double> h = Db4Lowpass();
  std::vector<double> g(h.size());
  for (std::size_t t = 0; t < h.size(); ++t) {
    g[t] = (t % 2 == 0 ? 1.0 : -1.0) * h[h.size() - 1 - t];
  }
  return g;
}

NodeOp MakeWaveletNodeOp(const WaveletGraph& wavelet,
                         std::vector<double> lowpass,
                         std::vector<double> highpass) {
  assert(static_cast<int>(lowpass.size()) == wavelet.taps);
  assert(static_cast<int>(highpass.size()) == wavelet.taps);
  const Graph& g = wavelet.graph;

  // Parent values arrive in id-sorted order; precompute, per node and tap,
  // the index of the tap's operand so summation runs in tap order (the
  // reference's order) regardless of wrap-around.
  std::vector<std::vector<std::uint16_t>> tap_to_parent(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& window = wavelet.window_parents[v];
    if (window.empty()) continue;
    const auto parents = g.parents(v);
    auto& map = tap_to_parent[v];
    map.resize(window.size());
    for (std::size_t t = 0; t < window.size(); ++t) {
      const auto it = std::find(parents.begin(), parents.end(), window[t]);
      assert(it != parents.end());
      map[t] = static_cast<std::uint16_t>(it - parents.begin());
    }
  }
  std::vector<DwtRole> roles = wavelet.roles;

  return [roles = std::move(roles), tap_to_parent = std::move(tap_to_parent),
          lowpass = std::move(lowpass), highpass = std::move(highpass)](
             NodeId v, std::span<const double> parents) {
    const auto& filter =
        roles[v] == DwtRole::kAverage ? lowpass : highpass;
    const auto& map = tap_to_parent[v];
    double sum = 0.0;
    for (std::size_t t = 0; t < map.size(); ++t) {
      sum += filter[t] * parents[map[t]];
    }
    return sum;
  };
}

std::vector<double> WaveletReferenceValues(
    const WaveletGraph& wavelet, const std::vector<double>& signal,
    const std::vector<double>& lowpass, const std::vector<double>& highpass) {
  assert(static_cast<std::int64_t>(signal.size()) == wavelet.n);
  std::vector<double> values(wavelet.graph.num_nodes(), 0.0);
  for (std::size_t j = 0; j < signal.size(); ++j) {
    values[wavelet.layers[0][j]] = signal[j];
  }

  std::vector<double> prev = signal;
  for (int l = 1; l <= wavelet.d; ++l) {
    const auto& layer = wavelet.layers[static_cast<std::size_t>(l)];
    const std::int64_t m = static_cast<std::int64_t>(prev.size());
    std::vector<double> averages(static_cast<std::size_t>(m / 2));
    for (std::int64_t j = 0; j < m / 2; ++j) {
      double a = 0.0, c = 0.0;
      for (int t = 0; t < wavelet.taps; ++t) {
        const double x = prev[static_cast<std::size_t>((2 * j + t) % m)];
        a += lowpass[static_cast<std::size_t>(t)] * x;
        c += highpass[static_cast<std::size_t>(t)] * x;
      }
      averages[static_cast<std::size_t>(j)] = a;
      values[layer[static_cast<std::size_t>(2 * j)]] = a;
      values[layer[static_cast<std::size_t>(2 * j + 1)]] = c;
    }
    prev = std::move(averages);
  }
  return values;
}

NodeOp MakeWhtNodeOp(const ButterflyGraph& butterfly) {
  // A node subtracts iff its stage bit is set in its position.
  std::vector<unsigned char> minus(butterfly.graph.num_nodes(), 0);
  for (int s = 1; s <= butterfly.stages; ++s) {
    const std::int64_t bit = std::int64_t{1} << (s - 1);
    for (std::int64_t j = 0; j < butterfly.n; ++j) {
      if ((j & bit) != 0) minus[butterfly.at(s, j)] = 1;
    }
  }
  return [minus = std::move(minus)](NodeId v,
                                    std::span<const double> parents) {
    assert(parents.size() == 2);
    // Parents are id-sorted, so parents[0] is the bit-clear partner.
    return minus[v] ? parents[0] - parents[1] : parents[0] + parents[1];
  };
}

std::vector<double> WhtReferenceValues(const ButterflyGraph& butterfly,
                                       const std::vector<double>& signal) {
  assert(static_cast<std::int64_t>(signal.size()) == butterfly.n);
  std::vector<double> values(butterfly.graph.num_nodes(), 0.0);
  for (std::size_t j = 0; j < signal.size(); ++j) {
    values[butterfly.layers[0][j]] = signal[j];
  }
  std::vector<double> prev = signal;
  for (int s = 1; s <= butterfly.stages; ++s) {
    const std::int64_t bit = std::int64_t{1} << (s - 1);
    std::vector<double> cur(prev.size());
    for (std::int64_t j = 0; j < butterfly.n; ++j) {
      const std::size_t ji = static_cast<std::size_t>(j);
      const std::size_t pi = static_cast<std::size_t>(j ^ bit);
      cur[ji] = (j & bit) == 0 ? prev[ji] + prev[pi] : prev[pi] - prev[ji];
      values[butterfly.at(s, j)] = cur[ji];
    }
    prev = std::move(cur);
  }
  return values;
}

std::vector<double> FastWht(std::vector<double> signal) {
  const std::int64_t n = static_cast<std::int64_t>(signal.size());
  for (std::int64_t bit = 1; bit < n; bit <<= 1) {
    std::vector<double> next(signal.size());
    for (std::int64_t j = 0; j < n; ++j) {
      const std::size_t ji = static_cast<std::size_t>(j);
      const std::size_t pi = static_cast<std::size_t>(j ^ bit);
      next[ji] =
          (j & bit) == 0 ? signal[ji] + signal[pi] : signal[pi] - signal[ji];
    }
    signal = std::move(next);
  }
  return signal;
}

NodeOp MakeMmmNodeOp(const MmmGraph& mmm) {
  std::vector<MmmRole> roles = mmm.roles;
  return [roles = std::move(roles)](NodeId v,
                                    std::span<const double> parents) {
    assert(parents.size() == 2);
    return roles[v] == MmmRole::kProduct ? parents[0] * parents[1]
                                         : parents[0] + parents[1];
  };
}

std::vector<double> MmmReferenceValues(const MmmGraph& mmm,
                                       const std::vector<double>& a_row_major,
                                       const std::vector<double>& b_row_major) {
  const std::int64_t m = mmm.m, k = mmm.k, n = mmm.n;
  assert(static_cast<std::int64_t>(a_row_major.size()) == m * k);
  assert(static_cast<std::int64_t>(b_row_major.size()) == k * n);
  std::vector<double> values(mmm.graph.num_nodes(), 0.0);
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      values[mmm.a(r, kk)] = a_row_major[static_cast<std::size_t>(r * k + kk)];
    }
  }
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t c = 0; c < n; ++c) {
      values[mmm.b(kk, c)] = b_row_major[static_cast<std::size_t>(kk * n + c)];
    }
  }
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t c = 0; c < n; ++c) {
      double sum = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const double p = values[mmm.a(r, kk)] * values[mmm.b(kk, c)];
        values[mmm.product(r, c, kk)] = p;
        sum = kk == 0 ? p : sum + p;
        if (kk >= 1) values[mmm.accumulator(r, c, kk)] = sum;
      }
    }
  }
  return values;
}

std::vector<double> MatMul(std::int64_t m, std::int64_t k, std::int64_t n,
                           const std::vector<double>& a_row_major,
                           const std::vector<double>& b_row_major) {
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t cc = 0; cc < n; ++cc) {
      double sum = a_row_major[static_cast<std::size_t>(r * k)] *
                   b_row_major[static_cast<std::size_t>(cc)];
      for (std::int64_t kk = 1; kk < k; ++kk) {
        sum += a_row_major[static_cast<std::size_t>(r * k + kk)] *
               b_row_major[static_cast<std::size_t>(kk * n + cc)];
      }
      c[static_cast<std::size_t>(r * n + cc)] = sum;
    }
  }
  return c;
}

}  // namespace wrbpg
