#include "exec/executor.h"

#include <algorithm>

namespace wrbpg {

ExecResult ExecuteSchedule(const Graph& graph, Weight budget,
                           const Schedule& schedule, const NodeOp& op,
                           const std::vector<double>& source_values) {
  ExecResult result;
  const NodeId n = graph.num_nodes();

  std::vector<double> fast(n, 0.0);
  std::vector<unsigned char> in_fast(n, 0);
  result.slow_values.assign(n, 0.0);
  result.present.assign(n, 0);
  for (NodeId v : graph.sources()) {
    result.slow_values[v] = source_values[v];
    result.present[v] = 1;
  }

  Weight fast_bits = 0;

  auto fail = [&](std::size_t index, std::string message) {
    result.ok = false;
    result.error = std::move(message);
    result.error_index = index;
    return result;
  };

  std::vector<double> parent_values;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Move& m = schedule[i];
    const NodeId v = m.node;
    if (v >= n) return fail(i, ToString(m) + ": node out of range");
    const Weight w = graph.weight(v);
    switch (m.type) {
      case MoveType::kLoad:
        if (!result.present[v]) {
          return fail(i, ToString(m) + ": value absent from slow memory");
        }
        if (in_fast[v]) {
          return fail(i, ToString(m) + ": value already in fast memory");
        }
        fast[v] = result.slow_values[v];
        in_fast[v] = 1;
        fast_bits += w;
        result.bits_loaded += w;
        break;
      case MoveType::kStore:
        if (!in_fast[v]) {
          return fail(i, ToString(m) + ": value absent from fast memory");
        }
        if (result.present[v]) {
          return fail(i, ToString(m) + ": value already in slow memory");
        }
        result.slow_values[v] = fast[v];
        result.present[v] = 1;
        result.bits_stored += w;
        break;
      case MoveType::kCompute: {
        if (graph.is_source(v)) {
          return fail(i, ToString(m) + ": cannot compute an input");
        }
        if (in_fast[v]) {
          return fail(i, ToString(m) + ": slot already occupied");
        }
        parent_values.clear();
        for (NodeId p : graph.parents(v)) {
          if (!in_fast[p]) {
            return fail(i, ToString(m) + ": operand v" + std::to_string(p) +
                               " not in fast memory");
          }
          parent_values.push_back(fast[p]);
        }
        fast[v] = op(v, parent_values);
        in_fast[v] = 1;
        fast_bits += w;
        break;
      }
      case MoveType::kDelete:
        if (!in_fast[v]) {
          return fail(i, ToString(m) + ": value absent from fast memory");
        }
        in_fast[v] = 0;
        fast_bits -= w;
        break;
    }
    if (fast_bits > budget) {
      return fail(i, ToString(m) + ": fast memory capacity exceeded (" +
                         std::to_string(fast_bits) + " > " +
                         std::to_string(budget) + " bits)");
    }
    result.peak_fast_bits = std::max(result.peak_fast_bits, fast_bits);
  }

  for (NodeId s : graph.sinks()) {
    if (!result.present[s]) {
      return fail(schedule.size(), "output v" + std::to_string(s) +
                                       " never reached slow memory");
    }
  }
  result.ok = true;
  return result;
}

}  // namespace wrbpg
