// Node semantics + reference implementations for the extension dataflows:
// generalized wavelets (taps > 2), butterfly/WHT, and matrix-matrix
// multiplication. Same contract as reference_kernels.h: executing a valid
// schedule reproduces the reference values bit-for-bit (identical operation
// order per node).
#pragma once

#include <vector>

#include "dataflows/butterfly_graph.h"
#include "dataflows/mmm_graph.h"
#include "dataflows/wavelet_graph.h"
#include "exec/executor.h"

namespace wrbpg {

// Daubechies-4 analysis filters (taps = 4), the canonical >2-tap wavelet.
std::vector<double> Db4Lowpass();
std::vector<double> Db4Highpass();

// Averages apply `lowpass`, coefficients `highpass`, both of size
// wavelet.taps, over the node's window in tap order.
NodeOp MakeWaveletNodeOp(const WaveletGraph& wavelet,
                         std::vector<double> lowpass,
                         std::vector<double> highpass);

std::vector<double> WaveletReferenceValues(const WaveletGraph& wavelet,
                                           const std::vector<double>& signal,
                                           const std::vector<double>& lowpass,
                                           const std::vector<double>& highpass);

// Butterfly stages computing the (unnormalized) Walsh-Hadamard transform.
NodeOp MakeWhtNodeOp(const ButterflyGraph& butterfly);
std::vector<double> WhtReferenceValues(const ButterflyGraph& butterfly,
                                       const std::vector<double>& signal);
// Direct fast WHT of the input vector (output order matches sink order).
std::vector<double> FastWht(std::vector<double> signal);

// Products multiply, accumulators add (same contract as MVM).
NodeOp MakeMmmNodeOp(const MmmGraph& mmm);
std::vector<double> MmmReferenceValues(const MmmGraph& mmm,
                                       const std::vector<double>& a_row_major,
                                       const std::vector<double>& b_row_major);
// Plain C = A * B accumulated in kk order (row-major operands/result).
std::vector<double> MatMul(std::int64_t m, std::int64_t k, std::int64_t n,
                           const std::vector<double>& a_row_major,
                           const std::vector<double>& b_row_major);

}  // namespace wrbpg
