// Direct (schedule-free) reference implementations of the evaluation
// kernels, plus the NodeOp semantics that make DWT/MVM graphs executable.
//
// References compute every node's value straight from the recurrences of
// Sec 3.1 / Sec 4.2; executing any valid schedule through exec/Executor must
// reproduce them bit-for-bit (doubles, exact same operation order per node).
#pragma once

#include <vector>

#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "exec/executor.h"

namespace wrbpg {

// Node semantics: averages (x_j + x_{j+1}) / sqrt(2), coefficients
// (x_j - x_{j+1}) / sqrt(2); parent order follows Graph::parents (ascending
// NodeId, which matches ascending sample index by construction).
NodeOp MakeDwtNodeOp(const DwtGraph& dwt);

// Node semantics: products multiply (x parent, a parent); accumulators add.
NodeOp MakeMvmNodeOp(const MvmGraph& mvm);

// Values for every node of the DWT graph given the input signal (length n).
std::vector<double> DwtReferenceValues(const DwtGraph& dwt,
                                       const std::vector<double>& signal);

// Values for every node of the MVM graph given row-major A (m x n) and x.
std::vector<double> MvmReferenceValues(const MvmGraph& mvm,
                                       const std::vector<double>& a_row_major,
                                       const std::vector<double>& x);

// Plain y = A x for end-to-end output checks (row-major A).
std::vector<double> MatVec(std::int64_t m, std::int64_t n,
                           const std::vector<double>& a_row_major,
                           const std::vector<double>& x);

// Multi-level Haar DWT: returns the concatenated outputs in graph order —
// the values of the final averages and all coefficient layers — keyed by
// sink NodeId in `dwt`.
std::vector<double> HaarOutputs(const DwtGraph& dwt,
                                const std::vector<double>& signal);

}  // namespace wrbpg
