#include "exec/reference_kernels.h"

#include <cassert>
#include <cmath>

namespace wrbpg {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

}  // namespace

NodeOp MakeDwtNodeOp(const DwtGraph& dwt) {
  // Copy the role table so the op remains valid independent of `dwt`.
  std::vector<DwtRole> roles = dwt.roles;
  return [roles = std::move(roles)](NodeId v,
                                    std::span<const double> parents) {
    assert(parents.size() == 2);
    const double sum = roles[v] == DwtRole::kAverage
                           ? parents[0] + parents[1]
                           : parents[0] - parents[1];
    return sum * kInvSqrt2;
  };
}

NodeOp MakeMvmNodeOp(const MvmGraph& mvm) {
  std::vector<MvmRole> roles = mvm.roles;
  return [roles = std::move(roles)](NodeId v,
                                    std::span<const double> parents) {
    assert(parents.size() == 2);
    return roles[v] == MvmRole::kProduct ? parents[0] * parents[1]
                                         : parents[0] + parents[1];
  };
}

std::vector<double> DwtReferenceValues(const DwtGraph& dwt,
                                       const std::vector<double>& signal) {
  assert(static_cast<std::int64_t>(signal.size()) == dwt.n);
  std::vector<double> values(dwt.graph.num_nodes(), 0.0);

  // Level-by-level recurrence of Sec 3.1.1, written against the raw arrays
  // rather than the graph so that it independently checks the wiring.
  std::vector<double> prev_averages = signal;
  for (std::size_t i = 1; i < dwt.layers.size(); ++i) {
    const auto& layer = dwt.layers[i];
    std::vector<double> averages(layer.size() / 2);
    for (std::size_t j = 0; j < layer.size(); j += 2) {
      const double lhs = prev_averages[j];
      const double rhs = prev_averages[j + 1];
      averages[j / 2] = (lhs + rhs) * kInvSqrt2;
      values[layer[j]] = averages[j / 2];
      values[layer[j + 1]] = (lhs - rhs) * kInvSqrt2;
    }
    prev_averages = std::move(averages);
  }
  for (std::size_t j = 0; j < dwt.layers[0].size(); ++j) {
    values[dwt.layers[0][j]] = signal[j];
  }
  return values;
}

std::vector<double> HaarOutputs(const DwtGraph& dwt,
                                const std::vector<double>& signal) {
  const std::vector<double> values = DwtReferenceValues(dwt, signal);
  std::vector<double> outputs;
  for (NodeId v : dwt.graph.sinks()) outputs.push_back(values[v]);
  return outputs;
}

std::vector<double> MvmReferenceValues(const MvmGraph& mvm,
                                       const std::vector<double>& a_row_major,
                                       const std::vector<double>& x) {
  const std::int64_t m = mvm.m, n = mvm.n;
  assert(static_cast<std::int64_t>(a_row_major.size()) == m * n);
  assert(static_cast<std::int64_t>(x.size()) == n);
  std::vector<double> values(mvm.graph.num_nodes(), 0.0);
  for (std::int64_t c = 0; c < n; ++c) {
    values[mvm.x(c)] = x[static_cast<std::size_t>(c)];
    for (std::int64_t r = 0; r < m; ++r) {
      values[mvm.a(r, c)] = a_row_major[static_cast<std::size_t>(r * n + c)];
      values[mvm.product(r, c)] =
          values[mvm.a(r, c)] * values[mvm.x(c)];
    }
  }
  for (std::int64_t r = 0; r < m; ++r) {
    double sum = values[mvm.product(r, 0)];
    for (std::int64_t c = 1; c < n; ++c) {
      sum += values[mvm.product(r, c)];
      values[mvm.accumulator(r, c)] = sum;
    }
  }
  return values;
}

std::vector<double> MatVec(std::int64_t m, std::int64_t n,
                           const std::vector<double>& a_row_major,
                           const std::vector<double>& x) {
  std::vector<double> y(static_cast<std::size_t>(m), 0.0);
  for (std::int64_t r = 0; r < m; ++r) {
    double sum = a_row_major[static_cast<std::size_t>(r * n)] * x[0];
    for (std::int64_t c = 1; c < n; ++c) {
      sum += a_row_major[static_cast<std::size_t>(r * n + c)] *
             x[static_cast<std::size_t>(c)];
    }
    y[static_cast<std::size_t>(r)] = sum;
  }
  return y;
}

}  // namespace wrbpg
