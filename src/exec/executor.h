// Schedule execution engine: runs a WRBPG schedule on real data.
//
// Models the two-level memory machine behind the game: slow memory holds
// blue-pebbled values, fast memory holds red-pebbled values, and the four
// moves move/compute/discard actual numbers. M3 applies a user-supplied
// node semantic to the parent values found in fast memory. Besides enforcing
// exactly the simulator's rules, execution verifies that a schedule computes
// the right *values* — the end-to-end check that schedules are not just
// rule-abiding but functionally correct dataflow programs.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/schedule.h"
#include "core/types.h"

namespace wrbpg {

// Semantic of a compute (M3) node: maps the values of parents(v), in
// Graph::parents order, to the node's value.
using NodeOp = std::function<double(NodeId, std::span<const double>)>;

struct ExecResult {
  bool ok = false;
  std::string error;
  std::size_t error_index = 0;

  // Values held in slow memory at the end, indexed by NodeId; entries are
  // meaningful only where present[] is set (sources and stored nodes).
  std::vector<double> slow_values;
  std::vector<unsigned char> present;

  Weight bits_loaded = 0;       // M1 traffic
  Weight bits_stored = 0;       // M2 traffic
  Weight peak_fast_bits = 0;    // max resident weight, == simulator's peak
};

// Executes `schedule` on the graph with initial slow-memory contents
// `source_values` (indexed by NodeId; only source entries are read).
ExecResult ExecuteSchedule(const Graph& graph, Weight budget,
                           const Schedule& schedule, const NodeOp& op,
                           const std::vector<double>& source_values);

}  // namespace wrbpg
