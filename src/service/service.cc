#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "core/binio.h"
#include "core/simulator.h"
#include "ganalysis/canonical.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace wrbpg {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::uint64_t Mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

// Only deadline-independent results may enter the cache. A solve that ran
// under ANY deadline is suspect even when the winning stage itself reports
// kComplete — which stage won the robust chain is wall-clock-dependent
// once a deadline truncates the exact stage — so admission requires the
// solve to have run unbounded AND a deterministic termination: complete
// and optimal results are pure functions of (graph, budget) by the
// determinism contract, and a memory-cap stop is deterministic for a
// fixed configuration.
bool CacheAdmissible(double deadline_ms, const ScheduleResult& result) {
  if (deadline_ms > 0) return false;
  switch (result.termination) {
    case Termination::kComplete:
    case Termination::kOptimal:
    case Termination::kMemoryCap:
      return true;
    case Termination::kDeadline:
    case Termination::kCancelled:
      return false;
  }
  return false;
}

}  // namespace

const char* ToString(ServeSource source) {
  switch (source) {
    case ServeSource::kSolved: return "solved";
    case ServeSource::kCacheHit: return "cache-hit";
    case ServeSource::kIsoCacheHit: return "iso-cache-hit";
    case ServeSource::kDedup: return "dedup";
  }
  return "unknown";
}

// One cached (or in-flight) answer. The stored graph pins the exact node
// labeling the result was solved under: byte-equality against it decides
// direct hits, and the decoded copy anchors isomorphism renaming for
// permuted requests.
struct ScheduleService::CacheEntry {
  bool ok = false;          // the solve produced a valid schedule
  std::string error;        // infeasibility detail when !ok
  std::string graph_bin;    // wrbpg-bin-v1 bytes of the solved graph
  Graph graph;              // decoded copy (iso renaming, re-verification)
  ScheduleResult result;
  std::string winner;
  std::size_t accounted_bytes = 0;
};

ScheduleService::ScheduleService(const ServiceOptions& options)
    : options_(options),
      cache_(options.cache_bytes, options.cache_shards),
      pool_(ResolveThreadCount(options.threads)) {}

std::uint64_t ScheduleService::DeriveKey(const Graph& graph, Weight budget) {
  // Iso-invariant graph identity folded with the budget. Engine, thread
  // count, and deadline are deliberately excluded — see service.h.
  const std::uint64_t graph_hash = HashGraph(graph);
  return Mix64(graph_hash ^ Mix64(static_cast<std::uint64_t>(budget) +
                                  0x9e3779b97f4a7c15ULL));
}

std::shared_ptr<const ScheduleService::CacheEntry> ScheduleService::Solve(
    const ServiceRequest& request, double deadline_ms, std::uint64_t key) {
  const obs::ScopedSpan span("service.solve");
  static const obs::Counter solves("service.solves");
  solves.Add(1);
  {
    const std::scoped_lock lock(stats_mu_);
    ++stats_.solves;
  }

  RobustOptions robust = options_.robust;
  robust.deadline_ms = deadline_ms;
  const RobustResult solved =
      RobustScheduler(*request.graph).Run(request.budget, robust);

  auto entry = std::make_shared<CacheEntry>();
  entry->graph_bin = ToBinary(*request.graph);
  entry->graph = *request.graph;
  entry->result = solved.result;
  entry->winner = solved.winner;
  entry->ok = solved.result.feasible;
  if (!entry->ok) {
    entry->error = "infeasible: no stage produced a valid schedule under " +
                   std::to_string(request.budget) + " bits";
  }
  const std::string schedule_bin = ToBinary(entry->result.schedule);
  entry->accounted_bytes =
      entry->graph_bin.size() + schedule_bin.size() + sizeof(CacheEntry);

  if (options_.cache_bytes > 0 && CacheAdmissible(deadline_ms, entry->result)) {
    static const obs::Counter inserts("service.cache_inserts");
    static const obs::Counter rejected("service.cache_insert_rejected");
    if (cache_.Put(key, entry, entry->accounted_bytes)) {
      inserts.Add(1);
    } else {
      rejected.Add(1);
    }
  }
  return entry;
}

ServiceResponse ScheduleService::Serve(const ServiceRequest& request) {
  const obs::ScopedSpan span("service.serve");
  static const obs::Counter requests("service.requests");
  static const obs::Counter hits("service.cache_hits");
  static const obs::Counter iso_hits("service.cache_hits_iso");
  static const obs::Counter misses("service.cache_misses");
  static const obs::Counter dedups("service.dedup_shared");
  requests.Add(1);
  const Clock::time_point start = Clock::now();

  ServiceResponse response;
  {
    const std::scoped_lock lock(stats_mu_);
    ++stats_.requests;
  }
  if (request.graph == nullptr || request.budget <= 0) {
    response.error = "malformed request: graph and a positive budget are "
                     "required";
    response.latency_ms = MsSince(start);
    return response;
  }

  const double deadline_ms = request.deadline_ms > 0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  const std::uint64_t key = DeriveKey(*request.graph, request.budget);
  response.key = key;
  const std::string graph_bin = ToBinary(*request.graph);

  auto respond_from = [&](const std::shared_ptr<const CacheEntry>& entry,
                          ServeSource source) {
    response.ok = entry->ok;
    response.error = entry->error;
    response.result = entry->result;
    response.winner = entry->winner;
    response.source = source;
    response.latency_ms = MsSince(start);
    return response;
  };

  if (options_.cache_bytes > 0) {
    if (const auto entry = cache_.Get(key)) {
      if (entry->graph_bin == graph_bin) {
        hits.Add(1);
        const std::scoped_lock lock(stats_mu_);
        ++stats_.cache_hits;
        return respond_from(entry, ServeSource::kCacheHit);
      }
      // Same iso-invariant key, different bytes: either a permuted
      // isomorph (serve by verified renaming) or a genuine hash
      // collision (fall through to a cold solve).
      if (options_.iso_hits) {
        if (!entry->ok) {
          // Infeasibility transfers across isomorphism: permuting node
          // ids changes no weight and no budget.
          if (FindIsomorphism(entry->graph, *request.graph)) {
            iso_hits.Add(1);
            const std::scoped_lock lock(stats_mu_);
            ++stats_.iso_hits;
            return respond_from(entry, ServeSource::kIsoCacheHit);
          }
        } else if (const auto map =
                       FindIsomorphism(entry->graph, *request.graph)) {
          std::vector<Move> moves = entry->result.schedule.moves();
          for (Move& move : moves) move.node = (*map)[move.node];
          ScheduleResult renamed = entry->result;
          renamed.schedule = Schedule(std::move(moves));
          // The renaming is provably cost-preserving, but the serve path
          // re-verifies anyway: a schedule leaves the service only
          // through the simulator.
          const SimResult sim =
              Simulate(*request.graph, request.budget, renamed.schedule);
          if (sim.valid && sim.cost == entry->result.cost) {
            iso_hits.Add(1);
            {
              const std::scoped_lock lock(stats_mu_);
              ++stats_.iso_hits;
            }
            response.ok = true;
            response.result = std::move(renamed);
            response.winner = entry->winner;
            response.source = ServeSource::kIsoCacheHit;
            response.latency_ms = MsSince(start);
            return response;
          }
        }
      }
    }
  }

  misses.Add(1);
  {
    const std::scoped_lock lock(stats_mu_);
    ++stats_.misses;
  }
  // Single-flight over the EXACT request identity (graph bytes + budget
  // + effective deadline): concurrent identical requests run one solve;
  // requests differing only in deadline stay separate flights, because
  // their anytime results legitimately differ.
  const std::string flight_key = graph_bin + '|' +
                                 std::to_string(request.budget) + '|' +
                                 std::to_string(deadline_ms);
  const auto outcome = flights_.Do(
      flight_key, [&] { return Solve(request, deadline_ms, key); });
  if (!outcome.leader) {
    dedups.Add(1);
    const std::scoped_lock lock(stats_mu_);
    ++stats_.dedup_shared;
  }
  return respond_from(outcome.value, outcome.leader ? ServeSource::kSolved
                                                    : ServeSource::kDedup);
}

std::vector<ServiceResponse> ScheduleService::ServeBatch(
    const std::vector<ServiceRequest>& requests) {
  const obs::ScopedSpan span("service.batch");
  std::vector<ServiceResponse> responses(requests.size());

  // Collapse identical in-batch requests onto one dispatch and order the
  // distinct solves earliest-effective-deadline-first, so the tightest
  // deadlines reach the pool before slack ones queue ahead of them.
  struct Group {
    std::vector<std::size_t> indices;  // requests answered by this solve
    double effective_deadline_ms = 0;  // 0 = unbounded, dispatched last
  };
  std::unordered_map<std::string, std::size_t> group_of;
  std::vector<Group> groups;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const ServiceRequest& request = requests[i];
    std::string identity;
    if (request.graph != nullptr && request.budget > 0) {
      const double deadline_ms = request.deadline_ms > 0
                                     ? request.deadline_ms
                                     : options_.default_deadline_ms;
      identity = ToBinary(*request.graph) + '|' +
                 std::to_string(request.budget) + '|' +
                 std::to_string(deadline_ms);
      const auto [it, inserted] = group_of.emplace(identity, groups.size());
      if (inserted) {
        groups.push_back(Group{{i}, deadline_ms});
      } else {
        groups[it->second].indices.push_back(i);
      }
    } else {
      // Malformed requests answer inline (Serve produces the error).
      responses[i] = Serve(request);
    }
  }
  std::vector<std::size_t> order(groups.size());
  for (std::size_t g = 0; g < order.size(); ++g) order[g] = g;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double da = groups[a].effective_deadline_ms;
                     const double db = groups[b].effective_deadline_ms;
                     if ((da > 0) != (db > 0)) return da > 0;  // bounded first
                     return da < db;
                   });

  TaskGroup tasks(pool_);
  std::vector<ServiceResponse> leader(groups.size());
  for (const std::size_t g : order) {
    tasks.Submit([this, &leader, &groups, &requests, g] {
      leader[g] = Serve(requests[groups[g].indices.front()]);
    });
  }
  tasks.Wait();

  static const obs::Counter batch_dedup("service.batch_dedup_shared");
  for (std::size_t g = 0; g < groups.size(); ++g) {
    const Group& group = groups[g];
    for (std::size_t k = 0; k < group.indices.size(); ++k) {
      responses[group.indices[k]] = leader[g];
      if (k > 0) {
        // In-batch duplicates share the leader's answer without touching
        // the cache or a flight; account them like single-flight shares.
        responses[group.indices[k]].source = ServeSource::kDedup;
        batch_dedup.Add(1);
        const std::scoped_lock lock(stats_mu_);
        ++stats_.requests;
        ++stats_.dedup_shared;
      }
    }
  }
  return responses;
}

ServiceStats ScheduleService::stats() const {
  ServiceStats out;
  {
    const std::scoped_lock lock(stats_mu_);
    out = stats_;
  }
  const auto cache = cache_.stats();
  out.cache_entries = cache.entries;
  out.cache_bytes = cache.bytes;
  out.cache_evictions = cache.evictions;
  out.cache_rejected = cache.rejected;
  return out;
}

void ScheduleService::ClearCache() { cache_.Clear(); }

}  // namespace wrbpg
