// Scheduling-as-a-service front end (DESIGN.md §13).
//
// Production deployments ask for schedules of the SAME graphs over and
// over — the parameterized dataflow families are solved once per shape
// and served millions of times. ScheduleService turns the solver stack
// into that shape:
//
//   1. Key derivation. A request (graph, budget) canonicalizes to a
//      64-bit cache key: the iso-invariant ganalysis::HashGraph folded
//      with the budget. Engine choice and thread count are deliberately
//      NOT part of the key — the determinism contract (DESIGN.md §8/§9)
//      makes every completed solve a pure function of (graph, budget),
//      so results computed by any engine at any thread count are
//      interchangeable. Deadlines are not in the key either, because the
//      cache only ever admits deadline-independent results (below).
//
//   2. Sharded LRU schedule cache (util/lru.h) with a byte-budget
//      eviction policy; entries account their wrbpg-bin-v1 encoded size
//      (core/binio.h). A hit whose stored graph is byte-identical to the
//      request's serves the stored result unchanged — bit-identical to
//      the cold solve by construction. A hit whose stored graph is a
//      permuted ISOMORPH of the request's (same iso-invariant key,
//      different node ids) is served by renaming the stored schedule
//      through an explicitly verified isomorphism (FindIsomorphism) and
//      re-validating it in the simulator — same cost, provably valid,
//      but node ids follow the request's labeling.
//
//   3. Single-flight dedup (util/singleflight.h): concurrent identical
//      requests (exact graph bytes + budget) trigger exactly ONE solve;
//      the followers share the leader's result and are counted as
//      deduplicated.
//
//   4. Misses dispatch through the robust fallback chain
//      (robust/robust_scheduler.h), so every response honors the PR 6
//      anytime contract: a deadline, cancellation, or memory cap still
//      yields an incumbent schedule plus a certified optimality gap,
//      never nothing. ServeBatch additionally runs a deadline-aware
//      batching executor on the util ThreadPool: identical in-batch
//      requests collapse to one solve and distinct ones are dispatched
//      earliest-deadline-first.
//
// Cache admission: only deadline-INDEPENDENT results are stored — the
// solve must have run with NO deadline (under a deadline even a
// kComplete-terminated winner is suspect: which robust-chain stage won is
// wall-clock-dependent) and terminated complete/optimal (deterministic by
// the contract) or memory-cap (deterministic at a fixed configuration).
// A deadline-bounded result is served to its requester but never cached,
// so a generous-deadline client can never be poisoned by a
// stingy-deadline client's incumbent, and a cached entry is valid for
// ANY later deadline.
//
// Observability: service.* counters (requests, hits, iso hits, misses,
// dedup shares, solves, insert rejections) and service.serve/solve spans
// (wrbpg-obs-v1).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/graph.h"
#include "robust/robust_scheduler.h"
#include "schedulers/scheduler.h"
#include "util/lru.h"
#include "util/singleflight.h"
#include "util/thread_pool.h"

namespace wrbpg {

// How a response was produced.
enum class ServeSource : std::uint8_t {
  kSolved = 0,    // cold: this request ran the solver chain
  kCacheHit,      // served from cache, stored graph byte-identical
  kIsoCacheHit,   // served from cache via a verified isomorphism renaming
  kDedup,         // shared a concurrent identical request's solve
};

const char* ToString(ServeSource source);

struct ServiceRequest {
  // Borrowed; must outlive the Serve/ServeBatch call.
  const Graph* graph = nullptr;
  Weight budget = 0;
  // Per-request solve deadline; <= 0 falls back to
  // ServiceOptions::default_deadline_ms (and 0 there means unbounded).
  double deadline_ms = 0;
};

struct ServiceResponse {
  bool ok = false;     // a valid schedule was produced
  std::string error;   // infeasibility / failure detail when !ok
  // Schedule + the anytime triple (cost / lower_bound / optimality_gap /
  // termination), exactly as the winning stage reported it.
  ScheduleResult result;
  std::string winner;  // robust-chain stage that produced the schedule
  ServeSource source = ServeSource::kSolved;
  std::uint64_t key = 0;   // derived cache key
  double latency_ms = 0;   // wall time inside the service for this request
};

struct ServiceOptions {
  // Total byte budget of the schedule cache; entries account their
  // wrbpg-bin-v1 encoded graph + schedule size. 0 disables caching.
  std::size_t cache_bytes = 64ull << 20;
  std::size_t cache_shards = 16;
  // Serve permuted isomorphs from cache by verified renaming. Off, an
  // isomorph of a cached graph is a plain miss (and re-solved).
  bool iso_hits = true;
  // Deadline applied to requests that carry none.
  double default_deadline_ms = 0;
  // Worker threads for ServeBatch dispatch; 0 = DefaultSearchThreads().
  std::size_t threads = 0;
  // Base options for cold solves (deadline_ms is overridden per request;
  // exact_force_wide_state/threads flow through for differential tests).
  RobustOptions robust;
};

struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;      // byte-identical hits
  std::uint64_t iso_hits = 0;        // isomorph-renamed hits
  std::uint64_t misses = 0;
  std::uint64_t dedup_shared = 0;    // responses served as kDedup
  std::uint64_t solves = 0;          // solver-chain executions
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_rejected = 0;  // entries larger than a shard slice
};

class ScheduleService {
 public:
  explicit ScheduleService(const ServiceOptions& options = {});

  // Serves one request: cache lookup (exact, then isomorph), then a
  // single-flight deduplicated cold solve on a miss. Thread-safe.
  ServiceResponse Serve(const ServiceRequest& request);

  // Deadline-aware batching executor: identical in-batch requests
  // collapse onto one Serve, distinct ones dispatch onto the pool
  // earliest-effective-deadline-first. responses[i] answers requests[i].
  std::vector<ServiceResponse> ServeBatch(
      const std::vector<ServiceRequest>& requests);

  ServiceStats stats() const;

  // Drops every cached entry (counters are preserved). For tests and the
  // serve verb's --no-cache mode.
  void ClearCache();

  // The cache key Serve derives for (graph, budget) — exposed so tests
  // and tools can reason about collisions and iso-invariance.
  static std::uint64_t DeriveKey(const Graph& graph, Weight budget);

 private:
  struct CacheEntry;

  std::shared_ptr<const CacheEntry> Solve(const ServiceRequest& request,
                                          double deadline_ms,
                                          std::uint64_t key);

  ServiceOptions options_;
  ShardedLruCache<std::uint64_t, CacheEntry> cache_;
  SingleFlight<std::string, CacheEntry> flights_;
  ThreadPool pool_;
  mutable std::mutex stats_mu_;
  ServiceStats stats_;
};

}  // namespace wrbpg
