// Deadline-aware fallback scheduling.
//
// Exact WRBPG solvers are exponential (the red-blue pebble game is
// PSPACE-hard in general), so a production scheduler cannot simply call
// them: it needs an answer by a deadline, preferably the best one any of
// its engines can produce in the time available. RobustScheduler runs a
// ranked chain of engines
//
//   recognition (ganalysis family recognition routes serialized chain /
//                k-ary / DWT instances straight to the polynomial DPs)
//   -> exact (anytime branch-and-bound, any graph size under a deadline)
//   -> dwt-optimal (Algorithm 1, when the caller supplied a DwtGraph)
//   -> belady (furthest-next-use heuristic, any CDAG)
//   -> greedy-topo (Prop 2.3 constructive fallback, always feasible)
//
// under a shared deadline: the exact stage gets a configurable slice of
// the remaining time via a cooperative CancelToken, the polynomial stages
// run to completion (they are micro- to milliseconds). The exact stage is
// the bb engine (DESIGN.md §11): interrupted by its deadline slice it
// returns its incumbent with a certified optimality gap instead of timing
// out, so even huge graphs get an exact-stage answer — provenance
// kAnytimeIncumbent — and it is only skipped outright when the graph is
// past exact_max_nodes AND no deadline bounds the search. Every produced
// schedule is re-verified through Simulate before it can win. The result
// carries full provenance — which stage answered, and for every other
// stage whether it timed out, was infeasible, produced a worse schedule,
// or was skipped and why — and the chain's ScheduleResult reports the
// tightest lower bound any stage certified (never below the best
// ganalysis bound certificate, which subsumes the Prop 2.4 algorithmic
// bound), so callers always see a sound optimality_gap.
#pragma once

#include <string>
#include <vector>

#include "core/graph.h"
#include "dataflows/dwt_graph.h"
#include "schedulers/scheduler.h"
#include "util/cancel.h"

namespace wrbpg {

enum class StageOutcome : std::uint8_t {
  kNotRun = 0,   // an earlier stage already settled the question
  kSkipped,      // preconditions unmet (see detail), never started
  kTimedOut,     // started, cancelled by its deadline slice
  kInfeasible,   // completed: no schedule under this budget
  kInvalid,      // produced a schedule Simulate rejected (engine bug)
  kCandidate,    // produced a valid schedule, but a better one won
  kWinner,       // produced the returned schedule
  // The exact stage was interrupted but returned its incumbent with a
  // certified gap (see detail) — an anytime answer, not a proven optimum,
  // so the chain keeps running and later stages may still beat it.
  kAnytimeIncumbent,
};

const char* ToString(StageOutcome outcome);

struct StageReport {
  std::string name;
  StageOutcome outcome = StageOutcome::kNotRun;
  double elapsed_ms = 0;
  Weight cost = kInfiniteCost;  // of this stage's schedule, when produced
  std::string detail;           // human-readable skip/timeout reason
};

struct RobustOptions {
  // Total wall-clock deadline for the whole chain; <= 0 disables it. The
  // polynomial fallbacks always run, so a result is produced even if the
  // deadline expired during earlier stages.
  double deadline_ms = 0;
  // Fraction of the remaining deadline granted to the exact stage (it is
  // the stage that can actually hang). With no deadline the exact stage
  // is bounded only by exact_max_states.
  double exact_fraction = 0.5;
  // With no deadline, the exact stage is skipped outright beyond this
  // many nodes (the search state space is exponential in n, and nothing
  // would bound the run). Under a deadline the node guard is moot — the
  // bb engine returns its incumbent when the slice expires — so the exact
  // stage runs at ANY size.
  NodeId exact_max_nodes = 22;
  // State-count safety valve for the exact stage (see BruteForceOptions).
  std::size_t exact_max_states = 20'000'000;
  // Worker threads. 1 runs the chain sequentially (today's behavior);
  // anything else runs the stages SPECULATIVELY: every stage is submitted
  // to the pool up front, so the deadline clock overlaps the exact search
  // with the heuristic fallbacks instead of paying for them back to back.
  // Because the fallbacks are then computed "for free", the exact stages
  // get the full deadline rather than an exact_fraction slice. The chain's
  // decision procedure is unchanged: stages are folded in chain order
  // after the pool drains, an exact win still reports later stages as
  // not-run (their speculative results are discarded), and with no
  // deadline the result is identical to a sequential run. Under a
  // deadline, which stages finish in time is wall-clock-dependent in
  // either mode; the CancelToken semantics per stage are unchanged. The
  // inner brute-force search inherits this thread count. 0 selects
  // DefaultSearchThreads().
  std::size_t threads = 0;
  // Testing hook mirrored from BruteForceOptions::force_wide_state: route
  // the exact stage's <= 32-node searches through the wide interned-state
  // representation. Results are bit-identical either way (the 3-axis
  // determinism contract, DESIGN.md §11); service/cache differential
  // tests use it to pin hits against cold solves across representations.
  bool exact_force_wide_state = false;
};

struct RobustResult {
  ScheduleResult result;            // best valid schedule found
  std::string winner;               // name of the answering stage
  std::vector<StageReport> stages;  // provenance, in chain order

  const StageReport* stage(const std::string& name) const {
    for (const auto& s : stages) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

class RobustScheduler {
 public:
  explicit RobustScheduler(const Graph& graph) : graph_(graph) {}
  // DWT-aware chain: additionally tries Algorithm 1 (optimal for DWT
  // graphs in polynomial time) between the exact and heuristic stages.
  explicit RobustScheduler(const DwtGraph& dwt)
      : graph_(dwt.graph), dwt_(&dwt) {}

  RobustResult Run(Weight budget, const RobustOptions& options = {}) const;

 private:
  const Graph& graph_;
  const DwtGraph* dwt_ = nullptr;
};

}  // namespace wrbpg
