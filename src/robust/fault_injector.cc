#include "robust/fault_injector.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "core/simulator.h"

namespace wrbpg {
namespace {

Schedule WithMoves(std::vector<Move> moves) { return Schedule(std::move(moves)); }

}  // namespace

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropMove: return "drop-move";
    case FaultKind::kDuplicateMove: return "duplicate-move";
    case FaultKind::kSwapAdjacent: return "swap-adjacent";
    case FaultKind::kDeleteStore: return "delete-store";
    case FaultKind::kTightenBudget: return "tighten-budget";
  }
  return "unknown";
}

FaultInjector::FaultInjector(const Graph& graph, Weight budget,
                             Schedule schedule)
    : graph_(graph), budget_(budget), schedule_(std::move(schedule)) {
  const SimResult sim = Simulate(graph_, budget_, schedule_);
  if (!sim.valid) {
    std::fprintf(stderr,
                 "FaultInjector: seed schedule invalid at move %zu: %s\n",
                 sim.error_index, sim.error.c_str());
    std::abort();
  }
  peak_red_weight_ = sim.peak_red_weight;
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    if (schedule_[i].type == MoveType::kStore) store_positions_.push_back(i);
  }
}

std::optional<FaultCase> FaultInjector::Inject(FaultKind kind,
                                               Rng& rng) const {
  const auto& moves = schedule_.moves();
  const std::size_t n = moves.size();

  FaultCase out;
  out.kind = kind;
  out.budget = budget_;

  switch (kind) {
    case FaultKind::kDropMove: {
      if (n == 0) return std::nullopt;
      const auto i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
      std::vector<Move> mutated = moves;
      mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(i));
      out.position = i;
      out.schedule = WithMoves(std::move(mutated));
      break;
    }
    case FaultKind::kDuplicateMove: {
      if (n == 0) return std::nullopt;
      const auto i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
      std::vector<Move> mutated = moves;
      mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(i),
                     moves[i]);
      out.position = i;
      out.schedule = WithMoves(std::move(mutated));
      break;
    }
    case FaultKind::kSwapAdjacent: {
      // Swapping identical moves is a no-op; retry a few sites before
      // declaring the schedule swap-free.
      if (n < 2) return std::nullopt;
      std::size_t i = n;  // sentinel: no distinct pair found
      for (int attempt = 0; attempt < 16; ++attempt) {
        const auto j = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(n) - 2));
        if (!(moves[j] == moves[j + 1])) {
          i = j;
          break;
        }
      }
      if (i == n) return std::nullopt;
      std::vector<Move> mutated = moves;
      std::swap(mutated[i], mutated[i + 1]);
      out.position = i;
      out.schedule = WithMoves(std::move(mutated));
      break;
    }
    case FaultKind::kDeleteStore: {
      if (store_positions_.empty()) return std::nullopt;
      const auto pick = static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(store_positions_.size()) - 1));
      const std::size_t i = store_positions_[pick];
      std::vector<Move> mutated = moves;
      mutated.erase(mutated.begin() + static_cast<std::ptrdiff_t>(i));
      out.position = i;
      out.schedule = WithMoves(std::move(mutated));
      break;
    }
    case FaultKind::kTightenBudget: {
      // One unit below the observed peak: the mildest budget that breaks
      // the schedule, so a competent repair needs few evictions.
      if (peak_red_weight_ <= 1) return std::nullopt;
      out.schedule = schedule_;
      out.budget = peak_red_weight_ - 1;
      break;
    }
  }

  out.label = std::string(ToString(kind)) + "@" +
              (kind == FaultKind::kTightenBudget
                   ? "b" + std::to_string(out.budget)
                   : std::to_string(out.position));
  return out;
}

std::vector<FaultCase> FaultInjector::Corpus(Rng& rng, int per_kind) const {
  std::vector<FaultCase> corpus;
  for (const FaultKind kind : kAllFaultKinds) {
    for (int i = 0; i < per_kind; ++i) {
      if (auto fault = Inject(kind, rng)) {
        corpus.push_back(std::move(*fault));
      } else {
        break;  // kind has no site in this schedule; more draws won't help
      }
    }
  }
  return corpus;
}

}  // namespace wrbpg
