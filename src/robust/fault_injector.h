// Fault injection for WRBPG schedules.
//
// Given a schedule that Simulate() accepts, produce labeled near-valid
// mutants: single parameterized perturbations that model the ways real
// schedules break in practice — a move lost in transport (drop), applied
// twice (duplicate), reordered (adjacent swap), a spill elided (store
// deletion), or the schedule deployed on a smaller memory than it was
// planned for (budget tightening). The mutants feed two consumers: the
// repairer in robust/repair.h (can it recover?) and the simulator's
// diagnostics tests (does the error taxonomy point at the right move?).
//
// Mutations are deterministic functions of the Rng state, so corpora are
// reproducible from a seed alone.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/graph.h"
#include "core/schedule.h"
#include "util/rng.h"

namespace wrbpg {

enum class FaultKind : std::uint8_t {
  kDropMove = 0,    // remove one move
  kDuplicateMove,   // repeat one move immediately
  kSwapAdjacent,    // exchange two neighboring distinct moves
  kDeleteStore,     // remove one M2 specifically (loses a blue pebble)
  kTightenBudget,   // keep the moves, shrink the budget below the peak
};
inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kDropMove, FaultKind::kDuplicateMove, FaultKind::kSwapAdjacent,
    FaultKind::kDeleteStore, FaultKind::kTightenBudget};

const char* ToString(FaultKind kind);

// One labeled mutant: the perturbed schedule/budget plus where the fault
// was planted, so tests can assert the diagnostics point near it.
struct FaultCase {
  FaultKind kind;
  std::size_t position = 0;  // index of the mutated move (0 for budget faults)
  Schedule schedule;
  Weight budget = 0;   // tightened for kTightenBudget, original otherwise
  std::string label;   // e.g. "drop-move@17"
};

class FaultInjector {
 public:
  // `schedule` must be valid for (graph, budget); the constructor replays
  // it once to record the peak red weight used by budget faults.
  FaultInjector(const Graph& graph, Weight budget, Schedule schedule);

  // One mutant of the given kind, or nullopt when the schedule has no
  // site for it (e.g. kDeleteStore on a schedule with no M2 moves, or
  // kTightenBudget when even the minimum valid budget reaches the peak).
  std::optional<FaultCase> Inject(FaultKind kind, Rng& rng) const;

  // Up to per_kind mutants of every kind (kinds without sites contribute
  // fewer). Distinct draws may collide on the same site; corpora are about
  // coverage in aggregate, not site uniqueness.
  std::vector<FaultCase> Corpus(Rng& rng, int per_kind) const;

  const Schedule& schedule() const { return schedule_; }
  Weight budget() const { return budget_; }
  Weight peak_red_weight() const { return peak_red_weight_; }

 private:
  const Graph& graph_;
  Weight budget_;
  Schedule schedule_;
  Weight peak_red_weight_ = 0;
  std::vector<std::size_t> store_positions_;  // indices of M2 moves
};

}  // namespace wrbpg
