#include "robust/robust_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "core/simulator.h"
#include "core/state_bound.h"
#include "ganalysis/bounds.h"
#include "ganalysis/recognition.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "schedulers/belady.h"
#include "schedulers/brute_force.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"
#include "schedulers/kary_tree.h"
#include "util/thread_pool.h"

namespace wrbpg {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// One link of the fallback chain, described before anything runs so the
// sequential and speculative modes execute the exact same chain.
struct Stage {
  std::string name;
  bool is_exact = false;  // an optimal answer here ends the chain
  bool skipped = false;   // preconditions unmet; engine never started
  std::string skip_detail;
  std::function<ScheduleResult(const CancelToken*)> engine;
};

}  // namespace

const char* ToString(StageOutcome outcome) {
  switch (outcome) {
    case StageOutcome::kNotRun: return "not-run";
    case StageOutcome::kSkipped: return "skipped";
    case StageOutcome::kTimedOut: return "timed-out";
    case StageOutcome::kInfeasible: return "infeasible";
    case StageOutcome::kInvalid: return "invalid";
    case StageOutcome::kCandidate: return "candidate";
    case StageOutcome::kWinner: return "winner";
    case StageOutcome::kAnytimeIncumbent: return "anytime-incumbent";
  }
  return "unknown";
}

RobustResult RobustScheduler::Run(Weight budget,
                                  const RobustOptions& options) const {
  const obs::ScopedSpan span("robust.run");
  const Clock::time_point chain_start = Clock::now();
  const bool deadlined = options.deadline_ms > 0;
  const std::size_t threads = ResolveThreadCount(options.threads);

  auto remaining_ms = [&] {
    return options.deadline_ms - MsSince(chain_start);
  };

  // Certified start-state lower bound (ganalysis/bounds.h): the best of
  // the Prop 2.4 algorithmic bound and the budget-aware hold-or-pay
  // certificates. Fed to the exact stage's reported bound and used as the
  // floor of the chain's final lower bound — it subsumes the plain
  // AlgorithmicLowerBound as its base term.
  Weight cert_lb = BestCertifiedBound(graph_, budget);

  // Tighten with the A* heuristic evaluated at the canonical start state
  // (core/state_bound.h): StartBound sees budget-dependent deadness (a
  // needed compute whose Prop 2.3 footprint exceeds the budget) that the
  // ganalysis certificates cannot, so on tight budgets it can beat them.
  // One chain-owned WideScratch backs every StartBound query this Run()
  // makes — the speculative stages all read the folded `cert_lb`, so the
  // closure buffers are allocated once here, never per stage (and never
  // at all on the <= 32-node packed path, where build_wide is false).
  // An infinite bound means no valid schedule exists at this budget; the
  // stages will each discover that on their own, and folding infinity
  // into a certificate the bb engine treats as finite would be wrong.
  StateBound::WideScratch bound_scratch;
  const StateBound start_bound(graph_, budget, /*required_red=*/0,
                               /*require_sinks_blue=*/true,
                               /*build_wide=*/false);
  const Weight start_lb = start_bound.StartBound(bound_scratch);
  if (start_lb < kInfiniteCost) cert_lb = std::max(cert_lb, start_lb);

  std::vector<Stage> stages;

  {
    // Recognition-based routing (DESIGN.md §12): when the graph is a
    // serialized instance of a closed-form family, skip exponential
    // search entirely and answer with the polynomial DP. Recognition is
    // conservative — an unrecognized graph just skips the stage — and a
    // DWT answer is backed by a verified isomorphism onto a reference
    // BuildDwt instance, whose schedule is renamed back through it.
    Stage recog;
    recog.name = "recognition";
    recog.is_exact = true;
    if (dwt_ != nullptr) {
      recog.skipped = true;
      recog.skip_detail =
          "caller already identified the family; the dwt-optimal stage "
          "handles it";
    } else {
      RecognitionResult family = RecognizeFamily(graph_);
      if (!family.recognized()) {
        recog.skipped = true;
        recog.skip_detail = "no closed-form family recognized";
      } else {
        obs::Add(obs::RegisterCounter(std::string("robust.recognized.") +
                                      ToString(family.family)),
                 1);
        if (family.family == GraphFamily::kDwt) {
          recog.engine = [this, budget, family = std::move(family)](
                             const CancelToken* cancel) {
            const DwtGraph ref =
                BuildDwt(family.param0, static_cast<int>(family.param1),
                         family.config);
            ScheduleResult result = DwtOptimalScheduler(ref).Run(budget,
                                                                 cancel);
            if (result.feasible) {
              // Rename the reference schedule back onto our node ids
              // through the inverse of the verified isomorphism.
              std::vector<NodeId> from_reference(graph_.num_nodes(),
                                                 kInvalidNode);
              for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
                from_reference[family.to_reference[v]] = v;
              }
              std::vector<Move> moves = result.schedule.moves();
              for (Move& move : moves) move.node = from_reference[move.node];
              result.schedule = Schedule(std::move(moves));
            }
            return result;
          };
        } else {
          // chain / kary: the in-tree DP runs on the graph directly.
          recog.engine = [this, budget](const CancelToken*) {
            return KaryTreeScheduler(graph_).Run(budget);
          };
        }
      }
    }
    stages.push_back(std::move(recog));
  }

  {
    Stage exact;
    exact.name = "exact";
    exact.is_exact = true;
    // The bb engine is anytime: under a deadline it always comes back
    // with an incumbent and a certified gap, so graph size is no reason
    // to skip it. Only an UNBOUNDED run on a big graph is vetoed — there
    // the search would burn through max_states before answering.
    if (graph_.num_nodes() > options.exact_max_nodes && !deadlined) {
      exact.skipped = true;
      exact.skip_detail = "graph has " + std::to_string(graph_.num_nodes()) +
                          " nodes > exact_max_nodes " +
                          std::to_string(options.exact_max_nodes) +
                          " and no deadline bounds the search";
    } else {
      exact.engine = [this, budget, &options, threads,
                      cert_lb](const CancelToken* cancel) {
        BruteForceOptions bf;
        bf.engine = SearchEngine::kBranchAndBound;
        bf.max_states = options.exact_max_states;
        bf.cancel = cancel;
        bf.threads = threads;
        bf.force_wide_state = options.exact_force_wide_state;
        // Certified root bound: tightens the REPORTED gap of an
        // interrupted run; schedules stay bit-identical (brute_force.h).
        bf.root_lower_bound = cert_lb;
        return BruteForceScheduler(graph_).Run(budget, bf);
      };
    }
    stages.push_back(std::move(exact));
  }

  if (dwt_ != nullptr) {
    Stage dwt;
    dwt.name = "dwt-optimal";
    dwt.is_exact = true;
    dwt.engine = [this, budget](const CancelToken* cancel) {
      return DwtOptimalScheduler(*dwt_).Run(budget, cancel);
    };
    stages.push_back(std::move(dwt));
  }

  {
    Stage belady;
    belady.name = "belady";
    belady.engine = [this, budget](const CancelToken*) {
      return BeladyScheduler(graph_).Run(budget);
    };
    stages.push_back(std::move(belady));
  }
  {
    Stage greedy;
    greedy.name = "greedy-topo";
    greedy.engine = [this, budget](const CancelToken*) {
      return GreedyTopoScheduler(graph_).Run(budget);
    };
    stages.push_back(std::move(greedy));
  }

  RobustResult out;
  ScheduleResult best;
  std::size_t best_stage = 0;
  bool exact_won = false;  // a PROVEN-optimal answer; stops the chain
  // Tightest lower bound any completed stage certified (the bb engine
  // reports one even when interrupted); folded into the final result so
  // the chain's optimality_gap is sound no matter which stage won.
  Weight chain_lb = 0;

  // The fold: interprets one stage's run in chain order. Both execution
  // modes funnel through these, so the decision procedure (winner, cost,
  // per-stage outcome) cannot drift between them.
  auto push_not_run = [&](const Stage& stage) {
    StageReport report;
    report.name = stage.name;
    report.detail = "earlier stage answered optimally";
    out.stages.push_back(std::move(report));
  };
  auto push_skipped = [&](const Stage& stage, std::string detail) {
    StageReport report;
    report.name = stage.name;
    report.outcome = StageOutcome::kSkipped;
    report.detail = std::move(detail);
    out.stages.push_back(std::move(report));
  };
  auto fold_result = [&](const Stage& stage, ScheduleResult result,
                         double elapsed_ms) {
    // Stage timing is measured where the stage ran (possibly on a pool
    // worker in speculative mode) but filed here on the chain's thread,
    // so it lands as a child of the robust.run span either way.
    obs::RecordSpan(std::string("robust.stage.") + stage.name, elapsed_ms);
    StageReport report;
    report.name = stage.name;
    report.elapsed_ms = elapsed_ms;
    if (result.timed_out) {
      // The engine was interrupted holding nothing — no incumbent, no
      // schedule. Its frontier lower bound is still certified, though.
      report.outcome = StageOutcome::kTimedOut;
      report.detail = "cancelled after " + std::to_string(elapsed_ms) + " ms";
      chain_lb = std::max(chain_lb, result.lower_bound);
    } else if (!result.feasible) {
      report.outcome = StageOutcome::kInfeasible;
    } else {
      const SimResult sim = Simulate(graph_, budget, result.schedule);
      if (!sim.valid) {
        report.outcome = StageOutcome::kInvalid;
        report.detail = "schedule rejected at move " +
                        std::to_string(sim.error_index) + ": " + sim.error;
      } else {
        report.cost = sim.cost;
        result.cost = sim.cost;
        chain_lb = std::max(chain_lb, result.lower_bound);
        // An exact-stage result that was interrupted mid-proof is an
        // anytime incumbent: a valid schedule plus a certified gap, but
        // not a proven optimum — the chain keeps running and its outcome
        // label records the weaker claim.
        const bool proven = result.termination == Termination::kOptimal;
        const bool is_anytime = stage.is_exact && !proven;
        if (is_anytime) {
          report.detail = "anytime incumbent: lb=" +
                          std::to_string(result.lower_bound) + " gap=" +
                          std::to_string(result.optimality_gap) +
                          " termination=" + ToString(result.termination);
        }
        if (!best.feasible || sim.cost < best.cost) {
          if (best.feasible &&
              out.stages[best_stage].outcome == StageOutcome::kWinner) {
            out.stages[best_stage].outcome = StageOutcome::kCandidate;
          }
          best = std::move(result);
          best_stage = out.stages.size();
          report.outcome = is_anytime ? StageOutcome::kAnytimeIncumbent
                                      : StageOutcome::kWinner;
          if (stage.is_exact && proven) exact_won = true;
        } else {
          report.outcome = is_anytime ? StageOutcome::kAnytimeIncumbent
                                      : StageOutcome::kCandidate;
        }
      }
    }
    out.stages.push_back(std::move(report));
  };

  if (threads > 1) {
    // Speculative mode: every runnable stage starts now, so the deadline
    // clock covers the exact search and its fallbacks simultaneously and
    // the exact stages can use the whole deadline instead of a slice.
    // Results are folded in chain order after the pool drains; a stage an
    // exact win obsoletes is reported kNotRun and its result discarded,
    // matching the sequential chain's provenance.
    struct StageRun {
      ScheduleResult result;
      double elapsed_ms = 0;
      CancelToken token;
      bool has_token = false;
    };
    std::vector<StageRun> runs(stages.size());
    ThreadPool pool(std::min(threads, stages.size()));
    TaskGroup group(pool);
    for (std::size_t i = 0; i < stages.size(); ++i) {
      Stage& stage = stages[i];
      if (stage.skipped) continue;
      StageRun& run = runs[i];
      if (deadlined && stage.is_exact) {
        run.token = CancelToken::WithDeadlineMs(remaining_ms());
        run.has_token = true;
      }
      group.Submit([&stage, &run] {
        const Clock::time_point stage_start = Clock::now();
        run.result = stage.engine(run.has_token ? &run.token : nullptr);
        run.elapsed_ms = MsSince(stage_start);
      });
    }
    group.Wait();
    for (std::size_t i = 0; i < stages.size(); ++i) {
      const Stage& stage = stages[i];
      if (exact_won) {
        push_not_run(stage);
      } else if (stage.skipped) {
        push_skipped(stage, stage.skip_detail);
      } else {
        fold_result(stage, std::move(runs[i].result), runs[i].elapsed_ms);
      }
    }
  } else {
    for (const Stage& stage : stages) {
      if (exact_won) {
        push_not_run(stage);
        continue;
      }
      if (stage.skipped) {
        push_skipped(stage, stage.skip_detail);
        continue;
      }
      const CancelToken* cancel = nullptr;
      CancelToken token;
      if (deadlined && stage.is_exact) {
        const double slice = remaining_ms() * options.exact_fraction;
        if (slice <= 0) {
          push_skipped(stage, "deadline already exhausted");
          continue;
        }
        token = CancelToken::WithDeadlineMs(slice);
        cancel = &token;
      }
      const Clock::time_point stage_start = Clock::now();
      ScheduleResult result = stage.engine(cancel);
      fold_result(stage, std::move(result), MsSince(stage_start));
    }
  }

  static const obs::Counter runs("robust.runs");
  runs.Add(1);
  if (best.feasible) {
    out.result = std::move(best);
    out.winner = out.stages[best_stage].name;
    // Anytime contract: ship the tightest bound any stage certified,
    // floored at the best ganalysis bound certificate (>= the Prop 2.4
    // algorithmic bound, its base term; heuristic winners carry only the
    // trivial 0 on their own). A gap that closes to zero here is a proof
    // of optimality, whichever stage produced the schedule.
    chain_lb = std::max(chain_lb, cert_lb);
    out.result.lower_bound = std::min(out.result.cost, chain_lb);
    out.result.optimality_gap = out.result.cost - out.result.lower_bound;
    if (out.result.optimality_gap == 0) {
      out.result.termination = Termination::kOptimal;
    }
    // Provenance counter: which stage's schedule the chain shipped.
    obs::Add(obs::RegisterCounter("robust.winner." + out.winner), 1);
    if (out.stages[best_stage].outcome == StageOutcome::kAnytimeIncumbent) {
      static const obs::Counter anytime("robust.winner_anytime");
      anytime.Add(1);
    }
  } else {
    static const obs::Counter no_winner("robust.no_winner");
    no_winner.Add(1);
    out.result = ScheduleResult::Infeasible();
    out.result.timed_out = deadlined && remaining_ms() <= 0;
    if (out.result.timed_out) {
      out.result.termination = Termination::kDeadline;
      out.result.lower_bound = chain_lb;
    }
  }
  return out;
}

}  // namespace wrbpg
