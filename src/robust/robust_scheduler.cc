#include "robust/robust_scheduler.h"

#include <chrono>
#include <functional>
#include <utility>

#include "core/analysis.h"
#include "core/simulator.h"
#include "schedulers/belady.h"
#include "schedulers/brute_force.h"
#include "schedulers/dwt_optimal.h"
#include "schedulers/greedy_topo.h"

namespace wrbpg {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

const char* ToString(StageOutcome outcome) {
  switch (outcome) {
    case StageOutcome::kNotRun: return "not-run";
    case StageOutcome::kSkipped: return "skipped";
    case StageOutcome::kTimedOut: return "timed-out";
    case StageOutcome::kInfeasible: return "infeasible";
    case StageOutcome::kInvalid: return "invalid";
    case StageOutcome::kCandidate: return "candidate";
    case StageOutcome::kWinner: return "winner";
  }
  return "unknown";
}

RobustResult RobustScheduler::Run(Weight budget,
                                  const RobustOptions& options) const {
  const Clock::time_point chain_start = Clock::now();
  const bool deadlined = options.deadline_ms > 0;

  RobustResult out;
  ScheduleResult best;
  std::size_t best_stage = 0;
  bool exact_won = false;  // an exact answer is optimal; stop the chain

  auto remaining_ms = [&] {
    return options.deadline_ms - MsSince(chain_start);
  };

  // Runs one engine, verifies its schedule, and folds it into `best`.
  auto run_stage = [&](const std::string& name, bool is_exact,
                       const std::function<ScheduleResult(
                           const CancelToken*)>& engine) {
    StageReport report;
    report.name = name;
    if (exact_won) {
      report.detail = "earlier stage answered optimally";
      out.stages.push_back(std::move(report));
      return;
    }

    const CancelToken* cancel = nullptr;
    CancelToken token;
    if (deadlined && is_exact) {
      const double slice = remaining_ms() * options.exact_fraction;
      if (slice <= 0) {
        report.outcome = StageOutcome::kSkipped;
        report.detail = "deadline already exhausted";
        out.stages.push_back(std::move(report));
        return;
      }
      token = CancelToken::WithDeadlineMs(slice);
      cancel = &token;
    }

    const Clock::time_point stage_start = Clock::now();
    ScheduleResult result = engine(cancel);
    report.elapsed_ms = MsSince(stage_start);

    if (result.timed_out) {
      report.outcome = StageOutcome::kTimedOut;
      report.detail = "cancelled after " +
                      std::to_string(report.elapsed_ms) + " ms";
    } else if (!result.feasible) {
      report.outcome = StageOutcome::kInfeasible;
    } else {
      const SimResult sim = Simulate(graph_, budget, result.schedule);
      if (!sim.valid) {
        report.outcome = StageOutcome::kInvalid;
        report.detail = "schedule rejected at move " +
                        std::to_string(sim.error_index) + ": " + sim.error;
      } else {
        report.cost = sim.cost;
        result.cost = sim.cost;
        if (!best.feasible || sim.cost < best.cost) {
          if (best.feasible) {
            out.stages[best_stage].outcome = StageOutcome::kCandidate;
          }
          best = std::move(result);
          best_stage = out.stages.size();
          report.outcome = StageOutcome::kWinner;
          if (is_exact) exact_won = true;
        } else {
          report.outcome = StageOutcome::kCandidate;
        }
      }
    }
    out.stages.push_back(std::move(report));
  };

  // Stage 1: exact search, the only stage that can hang.
  if (graph_.num_nodes() > options.exact_max_nodes) {
    StageReport report;
    report.name = "exact";
    report.outcome = StageOutcome::kSkipped;
    report.detail = "graph has " + std::to_string(graph_.num_nodes()) +
                    " nodes > exact_max_nodes " +
                    std::to_string(options.exact_max_nodes);
    out.stages.push_back(std::move(report));
  } else {
    run_stage("exact", /*is_exact=*/true, [&](const CancelToken* cancel) {
      BruteForceOptions bf;
      bf.max_states = options.exact_max_states;
      bf.cancel = cancel;
      return BruteForceScheduler(graph_).Run(budget, bf);
    });
  }

  // Stage 2: Algorithm 1, optimal in polynomial time for DWT graphs.
  if (dwt_ != nullptr) {
    run_stage("dwt-optimal", /*is_exact=*/true,
              [&](const CancelToken* cancel) {
                return DwtOptimalScheduler(*dwt_).Run(budget, cancel);
              });
  }

  // Stages 3-4: polynomial heuristics; always run so a deadline overrun
  // upstream still yields an answer.
  run_stage("belady", /*is_exact=*/false, [&](const CancelToken*) {
    return BeladyScheduler(graph_).Run(budget);
  });
  run_stage("greedy-topo", /*is_exact=*/false, [&](const CancelToken*) {
    return GreedyTopoScheduler(graph_).Run(budget);
  });

  if (best.feasible) {
    out.result = std::move(best);
    out.winner = out.stages[best_stage].name;
  } else {
    out.result = ScheduleResult::Infeasible();
    out.result.timed_out = deadlined && remaining_ms() <= 0;
  }
  return out;
}

}  // namespace wrbpg
