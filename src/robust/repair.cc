#include "robust/repair.h"

#include <algorithm>
#include <vector>

#include "lint/liveness.h"

namespace wrbpg {
namespace {

// Replays the input with edits. One instance per RepairSchedule call.
class Repairer {
 public:
  Repairer(const Graph& graph, Weight budget, const Schedule& input,
           const RepairOptions& options)
      : graph_(graph),
        budget_(budget),
        input_(input),
        options_(options),
        red_(graph.num_nodes(), 0),
        blue_(graph.num_nodes(), 0),
        pinned_(graph.num_nodes(), 0),
        // refs_.remaining(v) counts how often the rest of the input still
        // mentions v — as a move's own node or as a parent of a computed
        // node. Eviction prefers values the input never touches again.
        refs_(graph, input) {
    for (NodeId v : graph_.sources()) blue_[v] = 1;
  }

  RepairResult Run() {
    RepairResult result;
    for (std::size_t i = 0; i < input_.size() && !failed_; ++i) {
      input_index_ = i;
      const Move m = input_[i];
      ConsumeRefs(m);
      const std::size_t before = out_.size();
      const bool kept = Apply(m);
      if (failed_) break;
      if (kept) {
        ++result.moves_kept;
        result.moves_inserted += out_.size() - before - 1;
      } else {
        ++result.moves_dropped;
        result.moves_inserted += out_.size() - before;
      }
    }
    if (!failed_) {
      input_index_ = input_.size();
      const std::size_t before = out_.size();
      FinishStopCondition();
      result.moves_inserted += out_.size() - before;
    }

    if (failed_) {
      result.status = RepairStatus::kIrreparable;
      result.code = fail_code_;
      result.node = fail_node_;
      result.input_index = input_index_;
      result.message = fail_message_;
      return result;
    }
    result.schedule = Schedule(std::move(out_));
    result.verification = Simulate(graph_, budget_, result.schedule);
    result.status = RepairStatus::kRepaired;
    return result;
  }

 private:
  void Fail(SimErrorCode code, NodeId node, std::string message) {
    if (failed_) return;
    failed_ = true;
    fail_code_ = code;
    fail_node_ = node;
    fail_message_ = std::move(message);
  }

  // The input move at the current index is no longer "future"; update the
  // next-reference counts before deciding how to translate it.
  void ConsumeRefs(const Move& m) { refs_.Consume(m); }

  bool Emit(Move m) {
    if (out_.size() >= options_.max_output_moves) {
      Fail(SimErrorCode::kNone, m.node,
           "repair exceeded max_output_moves (" +
               std::to_string(options_.max_output_moves) + ")");
      return false;
    }
    out_.push_back(m);
    return true;
  }

  // Frees room for `need` more bits of red weight. Victims are unpinned
  // resident reds: first those the input never references again (lightest
  // first), then lightest overall. Victims that may still be needed — a
  // future reference or an unfinished sink — are stored before deletion so
  // the value survives in slow memory.
  bool EvictUntil(Weight need, NodeId for_node) {
    while (red_weight_ + need > budget_) {
      NodeId victim = kInvalidNode;
      bool victim_dead = false;
      for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
        if (!red_[v] || pinned_[v] != 0) continue;
        const bool dead = refs_.remaining(v) == 0 &&
                          (blue_[v] != 0 || !graph_.is_sink(v));
        if (victim == kInvalidNode || (dead && !victim_dead) ||
            (dead == victim_dead && graph_.weight(v) < graph_.weight(victim))) {
          victim = v;
          victim_dead = dead;
        }
      }
      if (victim == kInvalidNode) {
        Fail(SimErrorCode::kBudgetExceeded, for_node,
             "working set for v" + std::to_string(for_node) +
                 " cannot fit: " + std::to_string(red_weight_ + need) +
                 " > budget " + std::to_string(budget_) +
                 " with no evictable resident value");
        return false;
      }
      if (!victim_dead && blue_[victim] == 0) {
        if (!Emit(Store(victim))) return false;
        blue_[victim] = 1;
      }
      if (!Emit(Delete(victim))) return false;
      red_[victim] = 0;
      red_weight_ -= graph_.weight(victim);
    }
    return true;
  }

  // Places a red pebble on v via `move` (M1 or M3), evicting to fit.
  bool Place(NodeId v, Move move) {
    if (!EvictUntil(graph_.weight(v), v)) return false;
    if (!Emit(move)) return false;
    red_[v] = 1;
    red_weight_ += graph_.weight(v);
    return true;
  }

  bool AllParentsRed(NodeId v) const {
    const auto parents = graph_.parents(v);
    return std::all_of(parents.begin(), parents.end(),
                       [&](NodeId p) { return red_[p] != 0; });
  }

  // Computes v with its (already red) parents pinned, so the eviction that
  // makes room for v cannot break the M3 precondition.
  bool ComputePinned(NodeId v) {
    const auto parents = graph_.parents(v);
    for (NodeId p : parents) ++pinned_[p];
    const bool ok = Place(v, Compute(v));
    for (NodeId p : parents) --pinned_[p];
    return ok;
  }

  // Makes v red by the cheapest legal preparation: a free M3 when the
  // parents are resident, an M1 when a blue copy exists, else recursive
  // materialization of the parents. Parents are pinned while a compute is
  // in flight so eviction cannot break the precondition.
  bool EnsureRed(NodeId v) {
    if (red_[v]) return true;
    // Prefer the free compute whenever it is immediately legal (M3 costs
    // nothing, M1 costs w_v).
    if (!graph_.is_source(v) && AllParentsRed(v)) return ComputePinned(v);
    if (blue_[v]) return Place(v, Load(v));
    // Not red, not blue: v is a non-source (sources are always blue).
    // Rebuild the parents, keeping each resident until v is computed.
    const auto parents = graph_.parents(v);
    std::size_t pinned_count = 0;
    bool ok = true;
    for (NodeId p : parents) {
      if (!EnsureRed(p)) {
        ok = false;
        break;
      }
      ++pinned_[p];
      ++pinned_count;
    }
    if (ok) ok = Place(v, Compute(v));
    for (std::size_t i = 0; i < pinned_count; ++i) --pinned_[parents[i]];
    return ok;
  }

  // Translates one input move; returns true when the move itself survived
  // into the output (possibly with preparation inserted before it).
  bool Apply(const Move& m) {
    const NodeId v = m.node;
    if (v >= graph_.num_nodes()) return false;  // drop unmappable moves
    switch (m.type) {
      case MoveType::kLoad:
      case MoveType::kCompute: {
        if (red_[v]) return false;  // effect already holds; drop
        if (m.type == MoveType::kCompute && graph_.is_source(v)) {
          return false;  // sources cannot be computed; drop
        }
        const std::size_t before = out_.size();
        if (!EnsureRed(v)) return false;
        // Kept iff the final placement is literally this move.
        return out_.size() > before && out_.back() == m;
      }
      case MoveType::kStore: {
        if (blue_[v]) return false;  // already stored; drop
        if (!red_[v] && !EnsureRed(v)) return false;
        if (!Emit(Store(v))) return false;
        blue_[v] = 1;
        return true;
      }
      case MoveType::kDelete: {
        if (!red_[v]) return false;  // nothing to delete; drop
        if (!Emit(Delete(v))) return false;
        red_[v] = 0;
        red_weight_ -= graph_.weight(v);
        return true;
      }
    }
    return false;
  }

  // Restores the stopping condition: every sink ends with a blue pebble.
  void FinishStopCondition() {
    for (NodeId s : graph_.sinks()) {
      if (failed_ || blue_[s]) continue;
      if (!EnsureRed(s)) return;
      if (!Emit(Store(s))) return;
      blue_[s] = 1;
    }
  }

  const Graph& graph_;
  const Weight budget_;
  const Schedule& input_;
  const RepairOptions& options_;

  std::vector<unsigned char> red_;
  std::vector<unsigned char> blue_;
  std::vector<int> pinned_;  // >0: excluded from eviction
  MoveRefCounts refs_;
  Weight red_weight_ = 0;
  std::vector<Move> out_;
  std::size_t input_index_ = 0;

  bool failed_ = false;
  SimErrorCode fail_code_ = SimErrorCode::kNone;
  NodeId fail_node_ = kInvalidNode;
  std::string fail_message_;
};

}  // namespace

const char* ToString(RepairStatus status) {
  switch (status) {
    case RepairStatus::kAlreadyValid: return "already-valid";
    case RepairStatus::kRepaired: return "repaired";
    case RepairStatus::kIrreparable: return "irreparable";
  }
  return "unknown";
}

RepairResult RepairSchedule(const Graph& graph, Weight budget,
                            const Schedule& input,
                            const RepairOptions& options) {
  SimResult sim = Simulate(graph, budget, input);
  if (sim.valid) {
    RepairResult result;
    result.status = RepairStatus::kAlreadyValid;
    result.schedule = input;
    result.verification = std::move(sim);
    result.moves_kept = input.size();
    return result;
  }

  RepairResult result = Repairer(graph, budget, input, options).Run();
  if (result.status == RepairStatus::kRepaired &&
      !result.verification.valid) {
    // Defense in depth: a repair that fails re-simulation is reported as a
    // structured failure, never returned as a schedule.
    result.status = RepairStatus::kIrreparable;
    result.code = result.verification.code;
    result.node = result.verification.error_node;
    result.input_index = result.verification.error_index;
    result.message = "internal: repaired schedule failed verification: " +
                     result.verification.error;
    result.schedule = Schedule();
  }
  return result;
}

}  // namespace wrbpg
