// Schedule repair: patch a possibly-invalid move sequence into one the
// simulator accepts, or explain precisely why that is impossible.
//
// The repairer replays the input against the game state (as Simulate does)
// but instead of failing on the first violation it edits:
//
//   * moves whose effect already holds (M1/M3 onto a red node, M2 onto a
//     blue node, M4 of a non-red node) are dropped as redundant;
//   * moves whose preconditions are missing are preceded by the cheapest
//     legal preparation — a free M3 when all parents are red, an M1 when a
//     blue pebble exists, otherwise the parents are materialized
//     recursively (re-deriving the value from its ancestors, bottoming out
//     at the always-blue sources);
//   * budget overruns evict resident reds: values with no remaining
//     reference in the rest of the input are deleted outright, others are
//     stored first (so they stay recoverable) — lowest weight first in
//     both tiers, never touching pebbles pinned by the in-flight
//     preparation;
//   * a missing stopping condition is restored by materializing and
//     storing every sink that lacks a blue pebble.
//
// When a required working set cannot fit — the node plus its pinned
// context exceeds the budget, the Prop 2.3 obstruction — the repairer
// returns a structured diagnostic (SimErrorCode::kBudgetExceeded plus the
// offending node and input position) instead of a schedule. Every returned
// schedule is re-verified through Simulate before it leaves this module.
//
// Repair covers the standard game (sources blue at the start, all sinks
// blue at the end); the memory-state variants carry their own contracts.
#pragma once

#include <string>

#include "core/graph.h"
#include "core/schedule.h"
#include "core/simulator.h"

namespace wrbpg {

enum class RepairStatus : std::uint8_t {
  kAlreadyValid = 0,  // input passed Simulate unchanged
  kRepaired,          // output differs from input and passes Simulate
  kIrreparable,       // no valid schedule reachable; see the diagnostic
};

const char* ToString(RepairStatus status);

struct RepairResult {
  RepairStatus status = RepairStatus::kIrreparable;
  Schedule schedule;       // valid unless status == kIrreparable
  SimResult verification;  // Simulate() of `schedule` (or of the input when
                           // irreparable before any edit was possible)

  // Structured diagnostic, populated when irreparable.
  SimErrorCode code = SimErrorCode::kNone;
  NodeId node = kInvalidNode;     // node the failure is about
  std::size_t input_index = 0;    // input move being processed at failure
  std::string message;

  // Edit accounting over the input sequence.
  std::size_t moves_kept = 0;
  std::size_t moves_dropped = 0;
  std::size_t moves_inserted = 0;
};

struct RepairOptions {
  // Hard cap on emitted moves (safety valve against pathological inputs);
  // exceeded => irreparable with a kBudgetExceeded-free diagnostic.
  std::size_t max_output_moves = 1u << 22;
};

RepairResult RepairSchedule(const Graph& graph, Weight budget,
                            const Schedule& input,
                            const RepairOptions& options = {});

}  // namespace wrbpg
