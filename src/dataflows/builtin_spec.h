// Builtin graph-generator specs — the "family:params" strings accepted
// anywhere a tool takes a graph argument:
//
//   dwt:N,D            DWT(N, D), Definition 3.1
//   kary:K,LEVELS      perfect k-ary in-tree, Definition 3.6
//   mvm:M,N            MVM(M, N), Definition 4.1
//   butterfly:K        radix-2 butterfly on K inputs (K a power of two)
//   random:L,W,SEED    seeded random layered CDAG (L layers of W nodes)
//
// Parsing and parameter validation live here so the CLI, the benchmarks,
// and the tests agree on exactly which specs exist and what their limits
// are; callers render `error` verbatim when a spec is rejected.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/graph.h"
#include "dataflows/butterfly_graph.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/mvm_graph.h"
#include "dataflows/tree_graph.h"

namespace wrbpg {

// A spec resolved into its structure wrapper. The graph lives inside the
// optional that built it; graph() picks the live one. Exactly one wrapper
// is engaged when ok.
struct BuiltinGraph {
  bool ok = false;
  std::string error;   // why the spec was rejected; empty when ok
  std::string family;  // "dwt" / "kary" / "mvm" / "butterfly" / "random"

  std::optional<DwtGraph> dwt;
  std::optional<TreeGraph> tree;
  std::optional<MvmGraph> mvm;
  std::optional<ButterflyGraph> butterfly;
  std::optional<Graph> plain;  // random

  const Graph& graph() const {
    if (dwt) return dwt->graph;
    if (tree) return tree->graph;
    if (mvm) return mvm->graph;
    if (butterfly) return butterfly->graph;
    return *plain;
  }
};

// True when `spec` names a builtin family ("name:..."), recognized or
// not — callers use this to decide between spec parsing and file I/O.
// A well-formed payload is NOT required; BuildBuiltinGraph reports that.
bool IsBuiltinSpec(std::string_view spec);

// Parses and validates `spec` and builds the graph. Never aborts: every
// malformed payload or out-of-range parameter comes back ok == false
// with a one-line error.
BuiltinGraph BuildBuiltinGraph(std::string_view spec);

// The usage-string summary of every accepted spec form.
const char* BuiltinSpecHelp();

}  // namespace wrbpg
