#include "dataflows/tree_graph.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/graph_builder.h"

namespace wrbpg {

std::optional<NodeId> TreeRoot(const Graph& graph) {
  if (graph.num_nodes() == 0) return std::nullopt;
  NodeId root = kInvalidNode;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.out_degree(v) > 1) return std::nullopt;
    if (graph.out_degree(v) == 0) {
      if (root != kInvalidNode) return std::nullopt;  // two sinks
      root = v;
    }
  }
  if (root == kInvalidNode) return std::nullopt;
  // Out-degree <= 1 with a unique sink and acyclicity (Graph invariant)
  // implies every node reaches the root, i.e. the graph is connected.
  return root;
}

TreeGraph BuildPerfectTree(int k, int levels, const PrecisionConfig& config) {
  if (k < 1 || levels < 1) {
    std::fprintf(stderr, "BuildPerfectTree: invalid k=%d levels=%d\n", k,
                 levels);
    std::abort();
  }
  GraphBuilder builder;
  // Build breadth-first from the root; level l has k^l nodes.
  std::vector<NodeId> frontier;
  const NodeId root = builder.AddNode(config.compute_bits, "t0[0]");
  frontier.push_back(root);
  for (int level = 1; level <= levels; ++level) {
    const bool leaf_level = (level == levels);
    std::vector<NodeId> next;
    next.reserve(frontier.size() * static_cast<std::size_t>(k));
    std::int64_t index = 0;
    for (NodeId parent : frontier) {
      for (int c = 0; c < k; ++c, ++index) {
        const NodeId child = builder.AddNode(
            leaf_level ? config.input_bits : config.compute_bits,
            "t" + std::to_string(level) + "[" + std::to_string(index) + "]");
        builder.AddEdge(child, parent);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
  }
  TreeGraph tree;
  tree.graph = builder.BuildOrDie();
  tree.root = root;
  tree.max_in_degree = k;
  return tree;
}

TreeGraph BuildRandomTree(Rng& rng, const RandomTreeOptions& options) {
  assert(options.max_k >= 1 && options.max_internal >= 1);
  assert(options.min_weight >= 1 &&
         options.min_weight <= options.max_weight);

  GraphBuilder builder;
  auto random_weight = [&] {
    return rng.UniformInt(options.min_weight, options.max_weight);
  };

  const NodeId root = builder.AddNode(random_weight(), "r");
  // Frontier of nodes that still need their in-edges decided.
  std::vector<NodeId> frontier = {root};
  int internal_budget = options.max_internal - 1;
  int max_in_degree = 1;

  while (!frontier.empty()) {
    // Pop a random frontier entry to avoid biasing depth.
    const std::size_t pick = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(frontier.size()) - 1));
    std::swap(frontier[pick], frontier.back());
    const NodeId v = frontier.back();
    frontier.pop_back();

    const int arity =
        static_cast<int>(rng.UniformInt(1, options.max_k));
    max_in_degree = std::max(max_in_degree, arity);
    for (int c = 0; c < arity; ++c) {
      const NodeId child = builder.AddNode(random_weight());
      builder.AddEdge(child, v);
      // A child becomes internal while budget remains and a coin flip allows;
      // otherwise it stays a leaf (source).
      if (internal_budget > 0 && rng.Bernoulli(0.6)) {
        --internal_budget;
        frontier.push_back(child);
      }
    }
  }

  TreeGraph tree;
  tree.graph = builder.BuildOrDie();
  tree.root = root;
  tree.max_in_degree = max_in_degree;
  return tree;
}

}  // namespace wrbpg
