#include "dataflows/wavelet_graph.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/graph_builder.h"

namespace wrbpg {

bool WaveletParamsValid(std::int64_t n, int d, int taps) {
  if (taps < 2 || !DwtParamsValid(n, d)) return false;
  // Every level must span at least one full window.
  const std::int64_t last_level_inputs = n >> (d - 1);
  return last_level_inputs >= taps;
}

WaveletGraph BuildWavelet(std::int64_t n, int d, int taps,
                          const PrecisionConfig& config) {
  if (!WaveletParamsValid(n, d, taps)) {
    std::fprintf(stderr, "BuildWavelet: invalid parameters n=%lld d=%d taps=%d\n",
                 static_cast<long long>(n), d, taps);
    std::abort();
  }

  WaveletGraph w;
  w.n = n;
  w.d = d;
  w.taps = taps;
  GraphBuilder builder;

  w.layers.resize(static_cast<std::size_t>(d) + 1);
  std::int64_t size = n;
  for (int i = 0; i <= d; ++i) {
    auto& layer = w.layers[static_cast<std::size_t>(i)];
    layer.resize(static_cast<std::size_t>(size));
    for (std::int64_t j = 0; j < size; ++j) {
      if (i == 0) {
        layer[static_cast<std::size_t>(j)] =
            builder.AddNode(config.input_bits, "x[" + std::to_string(j) + "]");
        w.roles.push_back(DwtRole::kInput);
      } else {
        const bool average = (j % 2 == 0);
        layer[static_cast<std::size_t>(j)] = builder.AddNode(
            config.compute_bits,
            std::string(average ? "a" : "c") + std::to_string(i) + "[" +
                std::to_string(j / 2) + "]");
        w.roles.push_back(average ? DwtRole::kAverage
                                  : DwtRole::kCoefficient);
      }
    }
    if (i >= 1) size /= 2;
  }

  w.window_parents.resize(static_cast<std::size_t>(builder.num_nodes()));

  // Level l output pair (a_j, c_j) reads the window prev[(2j + t) mod m],
  // averages of the previous layer (all of layer 0 feeds level 1).
  for (int l = 1; l <= d; ++l) {
    const auto& prev = w.layers[static_cast<std::size_t>(l - 1)];
    const auto& cur = w.layers[static_cast<std::size_t>(l)];
    // The consumable values of the previous layer: inputs for l == 1,
    // averages (even positions) for l > 1.
    std::vector<NodeId> feed;
    for (std::size_t j = 0; j < prev.size(); ++j) {
      if (l == 1 || j % 2 == 0) feed.push_back(prev[j]);
    }
    const std::int64_t m = static_cast<std::int64_t>(feed.size());
    for (std::int64_t j = 0; j < m / 2; ++j) {
      // Window positions (2j + t) mod m are pairwise distinct because
      // validation guarantees m >= taps.
      std::vector<NodeId> window;
      window.reserve(static_cast<std::size_t>(taps));
      for (int t = 0; t < taps; ++t) {
        window.push_back(feed[static_cast<std::size_t>((2 * j + t) % m)]);
      }
      const NodeId avg = cur[static_cast<std::size_t>(2 * j)];
      const NodeId coeff = cur[static_cast<std::size_t>(2 * j + 1)];
      for (NodeId p : window) {
        builder.AddEdge(p, avg);
        builder.AddEdge(p, coeff);
      }
      w.window_parents[avg] = window;
      w.window_parents[coeff] = window;
    }
  }

  w.graph = builder.BuildOrDie();
  return w;
}

}  // namespace wrbpg
