#include "dataflows/banded_mvm_graph.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/graph_builder.h"

namespace wrbpg {

BandedMvmGraph BuildBandedMvm(std::int64_t n, std::int64_t h,
                              const PrecisionConfig& config) {
  if (n < 2 || h < 0 || h >= n) {
    std::fprintf(stderr, "BuildBandedMvm: invalid parameters n=%lld h=%lld\n",
                 static_cast<long long>(n), static_cast<long long>(h));
    std::abort();
  }

  BandedMvmGraph bm;
  bm.n = n;
  bm.h = h;
  GraphBuilder builder;

  bm.row_offset_.resize(static_cast<std::size_t>(n) + 1, 0);
  bm.acc_offset_.resize(static_cast<std::size_t>(n) + 1, 0);
  for (std::int64_t r = 0; r < n; ++r) {
    bm.row_offset_[static_cast<std::size_t>(r) + 1] =
        bm.row_offset_[static_cast<std::size_t>(r)] + bm.support(r);
    bm.acc_offset_[static_cast<std::size_t>(r) + 1] =
        bm.acc_offset_[static_cast<std::size_t>(r)] + (bm.support(r) - 1);
  }
  bm.nnz_ = bm.row_offset_[static_cast<std::size_t>(n)];

  auto idx = [](std::int64_t r, std::int64_t c) {
    return std::to_string(r) + "," + std::to_string(c);
  };

  bm.x_.resize(static_cast<std::size_t>(n));
  for (std::int64_t c = 0; c < n; ++c) {
    bm.x_[static_cast<std::size_t>(c)] =
        builder.AddNode(config.input_bits, "x[" + std::to_string(c) + "]");
    bm.roles.push_back(MvmRole::kVectorInput);
  }
  bm.a_.resize(static_cast<std::size_t>(bm.nnz_));
  bm.p_.resize(static_cast<std::size_t>(bm.nnz_));
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = bm.col_lo(r); c <= bm.col_hi(r); ++c) {
      bm.a_[bm.Flat(r, c)] =
          builder.AddNode(config.input_bits, "a[" + idx(r, c) + "]");
      bm.roles.push_back(MvmRole::kMatrixInput);
    }
  }
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = bm.col_lo(r); c <= bm.col_hi(r); ++c) {
      bm.p_[bm.Flat(r, c)] =
          builder.AddNode(config.compute_bits, "p[" + idx(r, c) + "]");
      bm.roles.push_back(MvmRole::kProduct);
    }
  }
  bm.acc_.resize(static_cast<std::size_t>(bm.nnz_ - n));
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t i = 1; i < bm.support(r); ++i) {
      bm.acc_[static_cast<std::size_t>(
          bm.acc_offset_[static_cast<std::size_t>(r)] + (i - 1))] =
          builder.AddNode(config.compute_bits,
                          "s[" + idx(r, i) + "]");
      bm.roles.push_back(MvmRole::kAccumulator);
    }
  }

  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t c = bm.col_lo(r); c <= bm.col_hi(r); ++c) {
      builder.AddEdge(bm.x(c), bm.product(r, c));
      builder.AddEdge(bm.a(r, c), bm.product(r, c));
      const std::int64_t i = c - bm.col_lo(r);
      if (i >= 1) {
        const NodeId prev = i == 1 ? bm.product(r, bm.col_lo(r))
                                   : bm.accumulator(r, i - 1);
        builder.AddEdge(prev, bm.accumulator(r, i));
        builder.AddEdge(bm.product(r, c), bm.accumulator(r, i));
      }
    }
  }

  bm.graph = builder.BuildOrDie();
  return bm;
}

}  // namespace wrbpg
