// Random layered CDAG generator for property tests and heuristics studies.
//
// Produces graphs satisfying the WRBPG model assumptions (acyclic, positive
// weights, sources and sinks disjoint): nodes are organized into layers,
// layer 0 is all sources, every deeper node draws 1..max_in_degree parents
// from strictly earlier layers, and a repair pass guarantees every
// non-final node feeds at least one successor.
#pragma once

#include "core/graph.h"
#include "util/rng.h"

namespace wrbpg {

struct RandomDagOptions {
  int num_layers = 4;          // >= 2
  int nodes_per_layer = 4;     // >= 1
  int max_in_degree = 3;       // >= 1
  Weight min_weight = 1;
  Weight max_weight = 8;
  // Bias parent picks toward the previous layer (locality), probability of
  // drawing from layer i-1 rather than any earlier layer.
  double locality = 0.7;
};

Graph BuildRandomDag(Rng& rng, const RandomDagOptions& options = {});

}  // namespace wrbpg
