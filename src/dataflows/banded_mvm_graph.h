// Banded matrix-vector multiplication — the "structured sparse" tensor
// case Sec 4.3 says the data-reuse approach extends to.
//
// BandedMvm(n, h) is y = A x for a square banded A (n x n, half-bandwidth
// h): row r touches columns [max(0, r-h), min(n-1, r+h)]. Only the
// structural nonzeros materialize as nodes, so the accumulation chain of
// row r has supp(r) products. The interesting property for memory design:
// consecutive rows' column supports overlap in all but one position, so a
// sliding window of 2h+1 vector words captures all reuse — minimum fast
// memory proportional to the bandwidth, not the problem size.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "dataflows/mvm_graph.h"
#include "dataflows/weights.h"

namespace wrbpg {

struct BandedMvmGraph {
  Graph graph;
  std::int64_t n = 0;  // matrix dimension
  std::int64_t h = 0;  // half-bandwidth (band has up to 2h+1 diagonals)

  std::vector<MvmRole> roles;

  std::int64_t col_lo(std::int64_t r) const { return r > h ? r - h : 0; }
  std::int64_t col_hi(std::int64_t r) const {  // inclusive
    return r + h < n - 1 ? r + h : n - 1;
  }
  std::int64_t support(std::int64_t r) const {
    return col_hi(r) - col_lo(r) + 1;
  }
  std::int64_t nnz() const { return nnz_; }

  NodeId x(std::int64_t c) const { return x_[static_cast<std::size_t>(c)]; }
  // Structural nonzero A(r, c); c must lie within row r's band.
  NodeId a(std::int64_t r, std::int64_t c) const {
    return a_[Flat(r, c)];
  }
  NodeId product(std::int64_t r, std::int64_t c) const {
    return p_[Flat(r, c)];
  }
  // Running sum of row r after its first `i + 1` band entries, i in [1,
  // support(r)); the last one is the output (or the lone product).
  NodeId accumulator(std::int64_t r, std::int64_t i) const {
    return acc_[static_cast<std::size_t>(acc_offset_[static_cast<std::size_t>(r)] +
                                         (i - 1))];
  }
  NodeId output(std::int64_t r) const {
    return support(r) == 1 ? product(r, col_lo(r))
                           : accumulator(r, support(r) - 1);
  }

 private:
  friend BandedMvmGraph BuildBandedMvm(std::int64_t, std::int64_t,
                                       const PrecisionConfig&);
  std::size_t Flat(std::int64_t r, std::int64_t c) const {
    return static_cast<std::size_t>(row_offset_[static_cast<std::size_t>(r)] +
                                    (c - col_lo(r)));
  }
  std::int64_t nnz_ = 0;
  std::vector<std::int64_t> row_offset_;  // prefix sums of support
  std::vector<std::int64_t> acc_offset_;  // prefix sums of support - 1
  std::vector<NodeId> x_, a_, p_, acc_;
};

// n >= 2, 0 <= h < n.
BandedMvmGraph BuildBandedMvm(std::int64_t n, std::int64_t h,
                              const PrecisionConfig& config =
                                  PrecisionConfig::Equal());

}  // namespace wrbpg
