// k-ary tree graphs T_k — Definition 3.6 — and generators.
//
// A k-ary tree graph is a rooted in-tree: a unique sink r, every other node
// has exactly one outgoing edge on its path to r, and in-degree is bounded
// by k. Computation flows from the leaves (sources) toward the root. The
// paper's H(v) — the "parents" of the pebble game — are the tree *children*
// in the usual data-structure sense; we keep the paper's orientation: edges
// point toward the root, and Graph::parents(v) is H(v).
#pragma once

#include <cstdint>
#include <optional>

#include "core/graph.h"
#include "dataflows/weights.h"
#include "util/rng.h"

namespace wrbpg {

struct TreeGraph {
  Graph graph;
  NodeId root = kInvalidNode;  // the unique sink
  int max_in_degree = 0;       // the k of T_k this instance inhabits
};

// True iff `graph` is a rooted in-tree (unique sink, out-degree <= 1
// everywhere, connected). Returns the root when it is.
std::optional<NodeId> TreeRoot(const Graph& graph);

// Perfect k-ary tree with `levels` levels of internal nodes; leaves are the
// sources. levels >= 1, k >= 1. Node count: sum_{i=0..levels} k^i.
TreeGraph BuildPerfectTree(int k, int levels,
                           const PrecisionConfig& config =
                               PrecisionConfig::Equal());

struct RandomTreeOptions {
  int max_k = 3;            // in-degree bound (>= 1)
  int max_internal = 10;    // number of internal (non-leaf) nodes (>= 1)
  Weight min_weight = 1;
  Weight max_weight = 8;
};

// Random in-tree: grows internal nodes top-down from the root, each with a
// uniform arity in [1, max_k]; slots not expanded into internal nodes become
// leaves. Weights are uniform in [min_weight, max_weight]. Deterministic for
// a given Rng state.
TreeGraph BuildRandomTree(Rng& rng, const RandomTreeOptions& options = {});

}  // namespace wrbpg
