#include "dataflows/random_dag.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <vector>

#include "core/graph_builder.h"

namespace wrbpg {

Graph BuildRandomDag(Rng& rng, const RandomDagOptions& options) {
  assert(options.num_layers >= 2 && options.nodes_per_layer >= 1);
  assert(options.max_in_degree >= 1);
  assert(options.min_weight >= 1 && options.min_weight <= options.max_weight);

  GraphBuilder builder;
  std::vector<std::vector<NodeId>> layers(
      static_cast<std::size_t>(options.num_layers));
  for (auto& layer : layers) {
    layer.resize(static_cast<std::size_t>(options.nodes_per_layer));
    for (auto& v : layer) {
      v = builder.AddNode(
          rng.UniformInt(options.min_weight, options.max_weight));
    }
  }

  std::set<std::pair<NodeId, NodeId>> edges;
  auto add_edge = [&](NodeId u, NodeId v) {
    if (edges.emplace(u, v).second) builder.AddEdge(u, v);
  };

  for (std::size_t li = 1; li < layers.size(); ++li) {
    for (NodeId v : layers[li]) {
      const int arity =
          static_cast<int>(rng.UniformInt(1, options.max_in_degree));
      for (int i = 0; i < arity; ++i) {
        // Locality-biased parent layer pick.
        std::size_t pl = li - 1;
        if (li >= 2 && !rng.Bernoulli(options.locality)) {
          pl = static_cast<std::size_t>(
              rng.UniformInt(0, static_cast<std::int64_t>(li) - 1));
        }
        const auto& pool = layers[pl];
        add_edge(pool[static_cast<std::size_t>(rng.UniformInt(
                     0, static_cast<std::int64_t>(pool.size()) - 1))],
                 v);
      }
    }
  }

  // Repair: every node outside the final layer must feed something so that
  // sources and sinks stay disjoint and no value is dead on arrival.
  std::vector<unsigned char> has_child(
      static_cast<std::size_t>(builder.num_nodes()), 0);
  for (const auto& [u, v] : edges) has_child[u] = 1;
  for (std::size_t li = 0; li + 1 < layers.size(); ++li) {
    for (NodeId v : layers[li]) {
      if (has_child[v]) continue;
      const auto& next = layers[li + 1];
      add_edge(v, next[static_cast<std::size_t>(rng.UniformInt(
                   0, static_cast<std::int64_t>(next.size()) - 1))]);
    }
  }

  return builder.BuildOrDie();
}

}  // namespace wrbpg
