#include "dataflows/builtin_spec.h"

#include <cstdint>
#include <cstdlib>

#include "dataflows/random_dag.h"
#include "util/rng.h"

namespace wrbpg {
namespace {

// Parses the comma-separated integer payload of a builtin spec into
// exactly `count` values. Rejects junk, overflow, and wrong arity.
bool ParseSpecInts(std::string_view payload, std::int64_t* out,
                   std::size_t count) {
  std::size_t parsed = 0;
  while (parsed < count) {
    const std::size_t comma = payload.find(',');
    const bool last = parsed + 1 == count;
    if (last != (comma == std::string_view::npos)) return false;
    const std::string field(last ? payload : payload.substr(0, comma));
    try {
      std::size_t used = 0;
      out[parsed] = std::stoll(field, &used);
      if (used != field.size()) return false;
    } catch (...) {
      return false;
    }
    if (!last) payload.remove_prefix(comma + 1);
    ++parsed;
  }
  return true;
}

BuiltinGraph Fail(std::string error) {
  BuiltinGraph out;
  out.error = std::move(error);
  return out;
}

std::string SpecStr(std::string_view spec) {
  return "bad builtin spec '" + std::string(spec) + "'";
}

BuiltinGraph BuildDwtSpec(std::string_view spec, std::string_view payload) {
  std::int64_t vals[2];
  if (!ParseSpecInts(payload, vals, 2)) {
    return Fail(SpecStr(spec) + " (expected dwt:N,D)");
  }
  const std::int64_t n = vals[0], d = vals[1];
  if (d < 1 || d > 62 || !DwtParamsValid(n, static_cast<int>(d))) {
    return Fail("invalid DWT parameters n=" + std::to_string(n) +
                " d=" + std::to_string(d) +
                " (need n >= 2, d >= 1, and 2^d | n)");
  }
  BuiltinGraph out;
  out.family = "dwt";
  out.dwt = BuildDwt(n, static_cast<int>(d));
  out.ok = true;
  return out;
}

BuiltinGraph BuildKarySpec(std::string_view spec, std::string_view payload) {
  std::int64_t vals[2];
  if (!ParseSpecInts(payload, vals, 2)) {
    return Fail(SpecStr(spec) + " (expected kary:K,LEVELS)");
  }
  const std::int64_t k = vals[0], levels = vals[1];
  if (k < 1 || k > 8 || levels < 1 || levels > 16) {
    return Fail("invalid k-ary tree parameters k=" + std::to_string(k) +
                " levels=" + std::to_string(levels) +
                " (need 1 <= k <= 8, 1 <= levels <= 16)");
  }
  BuiltinGraph out;
  out.family = "kary";
  out.tree = BuildPerfectTree(static_cast<int>(k), static_cast<int>(levels));
  out.ok = true;
  return out;
}

BuiltinGraph BuildMvmSpec(std::string_view spec, std::string_view payload) {
  std::int64_t vals[2];
  if (!ParseSpecInts(payload, vals, 2)) {
    return Fail(SpecStr(spec) + " (expected mvm:M,N)");
  }
  const std::int64_t m = vals[0], n = vals[1];
  if (m < 2 || m > 64 || n < 1 || n > 64) {
    return Fail("invalid MVM parameters m=" + std::to_string(m) +
                " n=" + std::to_string(n) +
                " (need 2 <= m <= 64, 1 <= n <= 64)");
  }
  BuiltinGraph out;
  out.family = "mvm";
  out.mvm = BuildMvm(m, n);
  out.ok = true;
  return out;
}

BuiltinGraph BuildButterflySpec(std::string_view spec,
                                std::string_view payload) {
  std::int64_t vals[1];
  if (!ParseSpecInts(payload, vals, 1)) {
    return Fail(SpecStr(spec) + " (expected butterfly:K)");
  }
  const std::int64_t k = vals[0];
  const bool pow2 = k >= 2 && (k & (k - 1)) == 0;
  if (!pow2 || k > 1024) {
    return Fail("invalid butterfly parameter k=" + std::to_string(k) +
                " (need a power of two, 2 <= k <= 1024)");
  }
  BuiltinGraph out;
  out.family = "butterfly";
  out.butterfly = BuildButterfly(k);
  out.ok = true;
  return out;
}

BuiltinGraph BuildRandomSpec(std::string_view spec,
                             std::string_view payload) {
  std::int64_t vals[3];
  if (!ParseSpecInts(payload, vals, 3)) {
    return Fail(SpecStr(spec) + " (expected random:LAYERS,WIDTH,SEED)");
  }
  const std::int64_t layers = vals[0], width = vals[1], seed = vals[2];
  if (layers < 2 || layers > 64 || width < 1 || width > 64) {
    return Fail("invalid random DAG parameters layers=" +
                std::to_string(layers) + " width=" + std::to_string(width) +
                " (need 2 <= layers <= 64, 1 <= width <= 64)");
  }
  Rng rng(static_cast<std::uint64_t>(seed));
  RandomDagOptions dag;
  dag.num_layers = static_cast<int>(layers);
  dag.nodes_per_layer = static_cast<int>(width);
  BuiltinGraph out;
  out.family = "random";
  out.plain = BuildRandomDag(rng, dag);
  out.ok = true;
  return out;
}

}  // namespace

bool IsBuiltinSpec(std::string_view spec) {
  for (const char* prefix :
       {"dwt:", "kary:", "mvm:", "butterfly:", "random:"}) {
    if (spec.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

BuiltinGraph BuildBuiltinGraph(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) {
    return Fail(SpecStr(spec) + " (no family prefix)");
  }
  const std::string_view family = spec.substr(0, colon);
  const std::string_view payload = spec.substr(colon + 1);
  if (family == "dwt") return BuildDwtSpec(spec, payload);
  if (family == "kary") return BuildKarySpec(spec, payload);
  if (family == "mvm") return BuildMvmSpec(spec, payload);
  if (family == "butterfly") return BuildButterflySpec(spec, payload);
  if (family == "random") return BuildRandomSpec(spec, payload);
  return Fail(SpecStr(spec) + " (unknown family '" + std::string(family) +
              "')");
}

const char* BuiltinSpecHelp() {
  return "dwt:N,D|kary:K,L|mvm:M,N|butterfly:K|random:L,W,SEED";
}

}  // namespace wrbpg
