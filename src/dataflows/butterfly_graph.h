// Butterfly (FFT-structured) dataflow graphs.
//
// The paper's introduction points out that DWT's recursive structure
// "appears in filters and fast Fourier transforms"; this family provides
// the radix-2 butterfly CDAG itself: log2(n) stages of n nodes, where the
// node at (stage s, position j) reads its previous-stage partner pair
// {j, j xor 2^(s-1)}. Executed with +/- semantics this computes the
// Walsh-Hadamard transform (the real-valued transform with the exact FFT
// dataflow), which keeps end-to-end numeric verification in doubles.
//
// Butterfly graphs are NOT trees (every value feeds two successors), so
// they exercise the general-DAG schedulers and the data-reuse machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "dataflows/weights.h"

namespace wrbpg {

struct ButterflyGraph {
  Graph graph;
  std::int64_t n = 0;  // power of two, >= 2
  int stages = 0;      // log2(n)

  std::vector<std::vector<NodeId>> layers;  // layers[0] = inputs

  NodeId at(int stage, std::int64_t j) const {
    return layers[static_cast<std::size_t>(stage)]
                 [static_cast<std::size_t>(j)];
  }
};

// n must be a power of two >= 2.
ButterflyGraph BuildButterfly(std::int64_t n,
                              const PrecisionConfig& config =
                                  PrecisionConfig::Equal());

}  // namespace wrbpg
