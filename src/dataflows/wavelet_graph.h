// Generalized wavelet transform graphs — the paper's Sec 3.1.1 future work:
// "wavelet transforms that perform convolutions with more than two
// inputs/averages".
//
// WaveletGraph(n, d, taps) is the dataflow of a d-level DWT whose low/high
// pass filters have `taps` coefficients, with periodic (circular) boundary
// handling: level l maps m = n / 2^(l-1) previous averages to m/2 averages
// and m/2 detail coefficients, where output j reads prev[(2j + i) mod m]
// for i in [0, taps). taps = 2 is exactly the Haar graph of Definition 3.1
// (modulo the wrap never triggering).
//
// For taps > 2 consecutive windows overlap, so average nodes have
// out-degree > 1 and the graph is NOT a tree: the optimal tree schedulers
// do not apply, and scheduling falls to the general-DAG heuristics
// (layer-by-layer, Belady, greedy) — precisely the regime the paper leaves
// open. Layer metadata is exposed so the Sec 5.1 baseline runs unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "dataflows/dwt_graph.h"
#include "dataflows/weights.h"

namespace wrbpg {

struct WaveletGraph {
  Graph graph;
  std::int64_t n = 0;
  int d = 0;
  int taps = 2;

  std::vector<std::vector<NodeId>> layers;  // layers[0] = inputs
  std::vector<DwtRole> roles;               // same role taxonomy as DWT

  // For each non-input node, its window in tap order: window_parents[v][t]
  // is the operand multiplied by filter coefficient t. (Graph::parents is
  // id-sorted; this preserves the convolution ordering across the wrap.)
  std::vector<std::vector<NodeId>> window_parents;
};

// Requires: taps >= 2, n a positive multiple of 2^d, and the final level
// at least `taps` wide (n / 2^(d-1) >= taps).
bool WaveletParamsValid(std::int64_t n, int d, int taps);

WaveletGraph BuildWavelet(std::int64_t n, int d, int taps,
                          const PrecisionConfig& config =
                              PrecisionConfig::Equal());

}  // namespace wrbpg
