#include "dataflows/mmm_graph.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/graph_builder.h"

namespace wrbpg {

MmmGraph BuildMmm(std::int64_t m, std::int64_t k, std::int64_t n,
                  const PrecisionConfig& config) {
  if (m < 1 || k < 1 || n < 1 || (m == 1 && n == 1 && k == 1)) {
    std::fprintf(stderr, "BuildMmm: invalid parameters m=%lld k=%lld n=%lld\n",
                 static_cast<long long>(m), static_cast<long long>(k),
                 static_cast<long long>(n));
    std::abort();
  }

  MmmGraph mmm;
  mmm.m = m;
  mmm.k = k;
  mmm.n = n;
  GraphBuilder builder;

  auto idx2 = [](std::int64_t x, std::int64_t y) {
    return std::to_string(x) + "," + std::to_string(y);
  };

  mmm.a_.resize(static_cast<std::size_t>(m * k));
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      mmm.a_[static_cast<std::size_t>(r * k + kk)] =
          builder.AddNode(config.input_bits, "a[" + idx2(r, kk) + "]");
      mmm.roles.push_back(MmmRole::kMatrixAInput);
    }
  }
  mmm.b_.resize(static_cast<std::size_t>(k * n));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t c = 0; c < n; ++c) {
      mmm.b_[static_cast<std::size_t>(kk * n + c)] =
          builder.AddNode(config.input_bits, "b[" + idx2(kk, c) + "]");
      mmm.roles.push_back(MmmRole::kMatrixBInput);
    }
  }
  mmm.p_.resize(static_cast<std::size_t>(m * n * k));
  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t r = 0; r < m; ++r) {
      for (std::int64_t c = 0; c < n; ++c) {
        mmm.p_[static_cast<std::size_t>((kk * m + r) * n + c)] =
            builder.AddNode(config.compute_bits,
                            "p" + std::to_string(kk) + "[" + idx2(r, c) + "]");
        mmm.roles.push_back(MmmRole::kProduct);
      }
    }
  }
  mmm.acc_.resize(static_cast<std::size_t>(m * n * (k - 1)));
  for (std::int64_t kk = 1; kk < k; ++kk) {
    for (std::int64_t r = 0; r < m; ++r) {
      for (std::int64_t c = 0; c < n; ++c) {
        mmm.acc_[static_cast<std::size_t>(((kk - 1) * m + r) * n + c)] =
            builder.AddNode(config.compute_bits,
                            "s" + std::to_string(kk) + "[" + idx2(r, c) + "]");
        mmm.roles.push_back(MmmRole::kAccumulator);
      }
    }
  }

  for (std::int64_t kk = 0; kk < k; ++kk) {
    for (std::int64_t r = 0; r < m; ++r) {
      for (std::int64_t c = 0; c < n; ++c) {
        builder.AddEdge(mmm.a(r, kk), mmm.product(r, c, kk));
        builder.AddEdge(mmm.b(kk, c), mmm.product(r, c, kk));
        if (kk >= 1) {
          const NodeId prev = kk == 1 ? mmm.product(r, c, 0)
                                      : mmm.accumulator(r, c, kk - 1);
          builder.AddEdge(prev, mmm.accumulator(r, c, kk));
          builder.AddEdge(mmm.product(r, c, kk), mmm.accumulator(r, c, kk));
        }
      }
    }
  }

  mmm.graph = builder.BuildOrDie();
  return mmm;
}

}  // namespace wrbpg
