// Matrix-matrix multiplication graphs — the "more complicated tensor
// computations" extension the paper's Sec 4.3 points to.
//
// MMM(m, k, n) is the CDAG of C = A * B with A in R^{m x k}, B in R^{k x n}:
// per output (r, c) a chain accumulating the k products a_{r,kk} * b_{kk,c},
// structured exactly like MVM's per-row chains (every product and
// accumulation node is binary). |V| = mk + kn + mnk + mn(k-1).
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "dataflows/weights.h"

namespace wrbpg {

enum class MmmRole : std::uint8_t {
  kMatrixAInput,
  kMatrixBInput,
  kProduct,
  kAccumulator,
};

struct MmmGraph {
  Graph graph;
  std::int64_t m = 0, k = 0, n = 0;

  std::vector<MmmRole> roles;

  NodeId a(std::int64_t r, std::int64_t kk) const {
    return a_[static_cast<std::size_t>(r * k + kk)];
  }
  NodeId b(std::int64_t kk, std::int64_t c) const {
    return b_[static_cast<std::size_t>(kk * n + c)];
  }
  NodeId product(std::int64_t r, std::int64_t c, std::int64_t kk) const {
    return p_[static_cast<std::size_t>((kk * m + r) * n + c)];
  }
  // Running sum of output (r, c) after terms 0..kk; defined for kk in [1, k).
  NodeId accumulator(std::int64_t r, std::int64_t c, std::int64_t kk) const {
    return acc_[static_cast<std::size_t>(((kk - 1) * m + r) * n + c)];
  }
  NodeId output(std::int64_t r, std::int64_t c) const {
    return k == 1 ? product(r, c, 0) : accumulator(r, c, k - 1);
  }

 private:
  friend MmmGraph BuildMmm(std::int64_t, std::int64_t, std::int64_t,
                           const PrecisionConfig&);
  std::vector<NodeId> a_, b_, p_, acc_;
};

// m, n >= 1 (not both 1), k >= 1.
MmmGraph BuildMmm(std::int64_t m, std::int64_t k, std::int64_t n,
                  const PrecisionConfig& config = PrecisionConfig::Equal());

}  // namespace wrbpg
