// MVM(m, n) graphs — Definition 4.1.
//
// Matrix-vector multiplication y = A x with A in R^{m x n}, x in R^n.
// Layers S_1..S_{n+1}: S_1 holds all mn + n inputs ordered column-major as
// [x_k, a_{1,k}, ..., a_{m,k}] per column k; S_2 holds the mn elementwise
// products (column-major); S_i for i in [3, n+1] holds the m running
// accumulations after i-1 columns, ending with the outputs y in S_{n+1}.
// Every product and accumulation node is binary (in-degree two), so the m
// per-row accumulation chains are k-ary trees with k = 2 — the structure the
// Sec. 4.3 tiling exploits.
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "dataflows/weights.h"

namespace wrbpg {

enum class MvmRole : std::uint8_t {
  kVectorInput,  // x_k
  kMatrixInput,  // a_{r,k}
  kProduct,      // a_{r,k} * x_k
  kAccumulator,  // running sum for row r (the last column's is the output y_r)
};

struct MvmGraph {
  Graph graph;
  std::int64_t m = 0;  // rows
  std::int64_t n = 0;  // columns

  std::vector<MvmRole> roles;  // indexed by NodeId

  // Accessors use 0-based row r in [0, m) and column c in [0, n).
  NodeId x(std::int64_t c) const {
    return x_[static_cast<std::size_t>(c)];
  }
  NodeId a(std::int64_t r, std::int64_t c) const {
    return a_[static_cast<std::size_t>(c * m + r)];
  }
  NodeId product(std::int64_t r, std::int64_t c) const {
    return p_[static_cast<std::size_t>(c * m + r)];
  }
  // Running sum of row r after columns 0..c ; defined for c in [1, n).
  NodeId accumulator(std::int64_t r, std::int64_t c) const {
    return acc_[static_cast<std::size_t>((c - 1) * m + r)];
  }
  // The sink holding y_r: the last accumulator (or the lone product if n==1).
  NodeId output(std::int64_t r) const {
    return n == 1 ? product(r, 0) : accumulator(r, n - 1);
  }

 private:
  friend MvmGraph BuildMvm(std::int64_t, std::int64_t,
                           const PrecisionConfig&);
  std::vector<NodeId> x_, a_, p_, acc_;
};

// Builds MVM(m, n); m >= 2, n >= 1. Aborts on invalid parameters.
MvmGraph BuildMvm(std::int64_t m, std::int64_t n,
                  const PrecisionConfig& config = PrecisionConfig::Equal());

}  // namespace wrbpg
