#include "dataflows/mvm_graph.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/graph_builder.h"

namespace wrbpg {

MvmGraph BuildMvm(std::int64_t m, std::int64_t n,
                  const PrecisionConfig& config) {
  if (m < 2 || n < 1) {
    std::fprintf(stderr, "BuildMvm: invalid parameters m=%lld n=%lld\n",
                 static_cast<long long>(m), static_cast<long long>(n));
    std::abort();
  }

  MvmGraph mvm;
  mvm.m = m;
  mvm.n = n;
  GraphBuilder builder;

  auto idx = [](std::int64_t r, std::int64_t c) { return std::to_string(r) +
                                                         "," +
                                                         std::to_string(c); };

  // S_1, column-major: [x_k, a_{1,k}, ..., a_{m,k}] for each column k.
  mvm.x_.resize(static_cast<std::size_t>(n));
  mvm.a_.resize(static_cast<std::size_t>(m * n));
  for (std::int64_t c = 0; c < n; ++c) {
    mvm.x_[static_cast<std::size_t>(c)] =
        builder.AddNode(config.input_bits, "x[" + std::to_string(c) + "]");
    mvm.roles.push_back(MvmRole::kVectorInput);
    for (std::int64_t r = 0; r < m; ++r) {
      mvm.a_[static_cast<std::size_t>(c * m + r)] =
          builder.AddNode(config.input_bits, "a[" + idx(r, c) + "]");
      mvm.roles.push_back(MvmRole::kMatrixInput);
    }
  }

  // S_2: products, column-major.
  mvm.p_.resize(static_cast<std::size_t>(m * n));
  for (std::int64_t c = 0; c < n; ++c) {
    for (std::int64_t r = 0; r < m; ++r) {
      mvm.p_[static_cast<std::size_t>(c * m + r)] =
          builder.AddNode(config.compute_bits, "p[" + idx(r, c) + "]");
      mvm.roles.push_back(MvmRole::kProduct);
    }
  }

  // S_3..S_{n+1}: accumulation chains, one node per (row, column >= 1).
  mvm.acc_.resize(static_cast<std::size_t>(m * (n - 1)));
  for (std::int64_t c = 1; c < n; ++c) {
    for (std::int64_t r = 0; r < m; ++r) {
      mvm.acc_[static_cast<std::size_t>((c - 1) * m + r)] =
          builder.AddNode(config.compute_bits, "s[" + idx(r, c) + "]");
      mvm.roles.push_back(MvmRole::kAccumulator);
    }
  }

  // Definition 4.1 rule (1): inputs feed their products.
  for (std::int64_t c = 0; c < n; ++c) {
    for (std::int64_t r = 0; r < m; ++r) {
      builder.AddEdge(mvm.x(c), mvm.product(r, c));
      builder.AddEdge(mvm.a(r, c), mvm.product(r, c));
    }
  }
  // Rules (2) and (3): accumulation chains. The first accumulator of row r
  // sums the first two products; each later accumulator sums the previous
  // accumulator with the next column's product.
  for (std::int64_t r = 0; r < m; ++r) {
    for (std::int64_t c = 1; c < n; ++c) {
      const NodeId prev =
          (c == 1) ? mvm.product(r, 0) : mvm.accumulator(r, c - 1);
      builder.AddEdge(prev, mvm.accumulator(r, c));
      builder.AddEdge(mvm.product(r, c), mvm.accumulator(r, c));
    }
  }

  mvm.graph = builder.BuildOrDie();
  return mvm;
}

}  // namespace wrbpg
