// Node-weight configurations of the evaluation (Sec 5.1).
//
// Weights model the storage footprint of a node's result in bits. The paper
// evaluates two configurations:
//   * Equal              — every node one 16-bit word (the classic unweighted
//                          red-blue pebble game, B = R * 16).
//   * Double Accumulator — non-input nodes (partial/accumulated results) carry
//                          twice the input precision: 32-bit vs 16-bit,
//                          the mixed-precision scenario motivating the WRBPG.
#pragma once

#include "core/types.h"

namespace wrbpg {

// Number of bits in one fast-memory word across the evaluation.
inline constexpr Weight kWordBits = 16;

struct PrecisionConfig {
  Weight input_bits;    // weight of source (input) nodes
  Weight compute_bits;  // weight of every non-input node

  static constexpr PrecisionConfig Equal(Weight word_bits = kWordBits) {
    return {word_bits, word_bits};
  }
  static constexpr PrecisionConfig DoubleAccumulator(
      Weight word_bits = kWordBits) {
    return {word_bits, 2 * word_bits};
  }

  friend bool operator==(const PrecisionConfig&,
                         const PrecisionConfig&) = default;
};

// Human-readable label used in bench output ("Equal", "DA", ...).
inline const char* ConfigLabel(const PrecisionConfig& config) {
  if (config.compute_bits == config.input_bits) return "Equal";
  if (config.compute_bits == 2 * config.input_bits) return "DA";
  return "Custom";
}

}  // namespace wrbpg
