#include "dataflows/dwt_graph.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/graph_builder.h"
#include "util/mathutil.h"

namespace wrbpg {

bool DwtParamsValid(std::int64_t n, int d) {
  if (n < 2 || d < 1 || d > 62) return false;
  const std::int64_t block = std::int64_t{1} << d;
  return n % block == 0;
}

int MaxDwtLevel(std::int64_t n) {
  assert(n >= 2);
  return TwoAdicValuation(n);
}

DwtGraph BuildDwt(std::int64_t n, int d, const PrecisionConfig& config) {
  if (!DwtParamsValid(n, d)) {
    std::fprintf(stderr, "BuildDwt: invalid parameters n=%lld d=%d\n",
                 static_cast<long long>(n), d);
    std::abort();
  }

  DwtGraph dwt;
  dwt.n = n;
  dwt.d = d;
  GraphBuilder builder;

  // Layer sizes: |S_1| = n, |S_2| = n, |S_i| = |S_{i-1}| / 2 for i > 2.
  dwt.layers.resize(static_cast<std::size_t>(d) + 1);
  std::int64_t size = n;
  for (int i = 1; i <= d + 1; ++i) {
    auto& layer = dwt.layers[static_cast<std::size_t>(i - 1)];
    layer.resize(static_cast<std::size_t>(size));
    for (std::int64_t j = 1; j <= size; ++j) {
      NodeId id;
      if (i == 1) {
        id = builder.AddNode(config.input_bits, "x[" + std::to_string(j) + "]");
        dwt.roles.push_back(DwtRole::kInput);
      } else {
        const bool average = (j % 2 == 1);
        const std::string tag = average ? "a" : "c";
        id = builder.AddNode(config.compute_bits, tag + std::to_string(i - 1) +
                                                      "[" + std::to_string(j) +
                                                      "]");
        dwt.roles.push_back(average ? DwtRole::kAverage
                                    : DwtRole::kCoefficient);
      }
      layer[static_cast<std::size_t>(j - 1)] = id;
    }
    if (i >= 2) size /= 2;
  }

  // Rule (1): inputs feed the first transform layer in adjacent pairs.
  for (std::int64_t j = 1; j <= n; ++j) {
    builder.AddEdge(dwt.at(1, j), dwt.at(2, j));
    if (j % 2 == 1) {
      builder.AddEdge(dwt.at(1, j), dwt.at(2, j + 1));
    } else {
      builder.AddEdge(dwt.at(1, j), dwt.at(2, j - 1));
    }
  }

  // Rules (2) and (3): averages of S_i (odd j) feed the average/coefficient
  // pair of S_{i+1}.
  for (int i = 2; i <= d; ++i) {
    const std::int64_t layer_size =
        static_cast<std::int64_t>(dwt.layers[static_cast<std::size_t>(i - 1)].size());
    for (std::int64_t j = 1; j <= layer_size; ++j) {
      if (j % 4 == 1) {
        builder.AddEdge(dwt.at(i, j), dwt.at(i + 1, (j + 1) / 2));
        builder.AddEdge(dwt.at(i, j), dwt.at(i + 1, (j + 3) / 2));
      } else if (j % 4 == 3) {
        builder.AddEdge(dwt.at(i, j), dwt.at(i + 1, (j - 1) / 2));
        builder.AddEdge(dwt.at(i, j), dwt.at(i + 1, (j + 1) / 2));
      }
    }
  }

  dwt.graph = builder.BuildOrDie();
  return dwt;
}

PrunedDwt PruneDwt(const DwtGraph& dwt) {
  PrunedDwt pruned;
  const Graph& g = dwt.graph;
  pruned.from_original.assign(g.num_nodes(), kInvalidNode);

  GraphBuilder builder;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (dwt.roles[v] == DwtRole::kCoefficient) continue;
    const NodeId id = builder.AddNode(g.weight(v), g.name(v));
    pruned.from_original[v] = id;
    pruned.to_original.push_back(v);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (pruned.from_original[v] == kInvalidNode) continue;
    for (NodeId p : g.parents(v)) {
      assert(pruned.from_original[p] != kInvalidNode);
      builder.AddEdge(pruned.from_original[p], pruned.from_original[v]);
    }
  }
  pruned.graph = builder.BuildOrDie();
  return pruned;
}

}  // namespace wrbpg
