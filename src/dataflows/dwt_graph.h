// DWT(n, d) graphs — Definition 3.1 — plus the pruning of Lemma 3.2.
//
// The Haar discrete wavelet transform over n inputs and d levels. Layers
// S_1..S_{d+1}: S_1 holds the n input samples; each deeper layer holds the
// averages (odd indices) and detail coefficients (even indices) of the level.
// Coefficients have no successors, so every layer past S_1 contributes
// outputs; the final averages live in S_{d+1}. Requires n ≡ 0 (mod 2^d),
// i.e. n ∈ {k · 2^d}; the graph then decomposes into k independent
// complete-binary-tree subgraphs (the observation driving Lemma 3.3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/graph.h"
#include "dataflows/weights.h"

namespace wrbpg {

enum class DwtRole : std::uint8_t {
  kInput,        // S_1
  kAverage,      // odd index in S_i, i > 1 (scaling function)
  kCoefficient,  // even index in S_i, i > 1 (wavelet function)
};

struct DwtGraph {
  Graph graph;
  std::int64_t n = 0;  // number of input samples
  int d = 0;           // number of transform levels

  // layers[i][j] is node v^{i+1}_{j+1} in the paper's 1-based notation.
  std::vector<std::vector<NodeId>> layers;
  std::vector<DwtRole> roles;  // indexed by NodeId

  // Convenience: node v^{layer}_{index} with the paper's 1-based indices.
  NodeId at(int layer, std::int64_t index) const {
    return layers[static_cast<std::size_t>(layer - 1)]
                 [static_cast<std::size_t>(index - 1)];
  }
};

// Builds DWT(n, d) with the given precision weights. Aborts on invalid
// parameters (n < 2, d < 1, or 2^d does not divide n).
DwtGraph BuildDwt(std::int64_t n, int d,
                  const PrecisionConfig& config = PrecisionConfig::Equal());

// True when DWT(n, d) is constructible.
bool DwtParamsValid(std::int64_t n, int d);

// Largest level d* for a given n: the 2-adic valuation of n (used by the
// Fig. 6 scaling study, where d is set to the maximum possible level).
int MaxDwtLevel(std::int64_t n);

// Lemma 3.2 pruning: removes every coefficient node v^i_j (i > 1, j even)
// together with its incident edges, leaving k independent binary trees whose
// sinks are the final averages.
struct PrunedDwt {
  Graph graph;
  std::vector<NodeId> to_original;    // pruned id -> original id
  std::vector<NodeId> from_original;  // original id -> pruned id or
                                      // kInvalidNode for removed nodes
};
PrunedDwt PruneDwt(const DwtGraph& dwt);

}  // namespace wrbpg
