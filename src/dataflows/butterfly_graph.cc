#include "dataflows/butterfly_graph.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/graph_builder.h"
#include "util/mathutil.h"

namespace wrbpg {

ButterflyGraph BuildButterfly(std::int64_t n, const PrecisionConfig& config) {
  if (n < 2 || !IsPowerOfTwo(n)) {
    std::fprintf(stderr, "BuildButterfly: n=%lld must be a power of two >= 2\n",
                 static_cast<long long>(n));
    std::abort();
  }

  ButterflyGraph bf;
  bf.n = n;
  bf.stages = FloorLog2(n);
  GraphBuilder builder;

  bf.layers.resize(static_cast<std::size_t>(bf.stages) + 1);
  for (int s = 0; s <= bf.stages; ++s) {
    auto& layer = bf.layers[static_cast<std::size_t>(s)];
    layer.resize(static_cast<std::size_t>(n));
    for (std::int64_t j = 0; j < n; ++j) {
      layer[static_cast<std::size_t>(j)] = builder.AddNode(
          s == 0 ? config.input_bits : config.compute_bits,
          (s == 0 ? "x[" : "s" + std::to_string(s) + "[") +
              std::to_string(j) + "]");
    }
  }

  for (int s = 1; s <= bf.stages; ++s) {
    const std::int64_t bit = std::int64_t{1} << (s - 1);
    for (std::int64_t j = 0; j < n; ++j) {
      builder.AddEdge(bf.at(s - 1, j), bf.at(s, j));
      builder.AddEdge(bf.at(s - 1, j ^ bit), bf.at(s, j));
    }
  }

  bf.graph = builder.BuildOrDie();
  return bf;
}

}  // namespace wrbpg
