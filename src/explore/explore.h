// Pre-synthesis hardware design-space explorer (DESIGN.md §15).
//
// The Figs 7-8 reproduction prices a GIVEN SRAM configuration; this module
// searches the joint (red budget × SRAM geometry × scheduler) space — the
// codesign loop that turns the reproduction into a memory-design tool, in
// the style of the Lina pre-HLS estimator: analytic models stand in for
// synthesis so thousands of candidate designs are priced in seconds and
// only the Pareto frontier graduates to real EDA runs.
//
// The grid is budgets × word widths:
//
//   budgets      a band [lo, hi] scanned at `budget_step`, defaulting to
//                [MinValidBudget, derived min-memory + slack] via the
//                core/analysis machinery (Prop 2.3 floors the band; the
//                Definition 2.6 minimum-memory scan with a Belady prober
//                caps it — past the budget where a heuristic already
//                achieves the Prop 2.4 lower bound, more SRAM only costs
//                area and leakage).
//   word widths  each budget's power-of-two macro capacity is organized
//                at every requested word width (word-width multiples are
//                a synthesis precondition; rejected combinations are
//                skipped-and-counted, never fatal — see TrySynthesizeSram).
//
// Each point composes schedule I/O cost -> TrySynthesizeSram ->
// EstimateScheduleEnergy into (area_λ², leakage_mW, energy_nJ, io_cost)
// plus the ANYTIME certificate: exact points are intractable in general
// (the game is PSPACE-hard), so every point is solved by the bb engine (or
// the robust chain) and carries cost, lower bound, and certified
// optimality gap — a point is trustworthy when its gap is zero and
// honestly uncertain otherwise, never silently wrong.
//
// Determinism contract (DESIGN.md §8): budgets are solved
// embarrassingly-parallel on the util ThreadPool, each task writing its
// own index; points are derived from the solved rows in fixed grid order
// (budget-major, word-width-minor) and the dominance pass is a pure fold.
// With the default deadline_ms == 0 the result is bit-identical at any
// thread count (pinned at 1/2/8 threads by explore_test); a nonzero
// per-point deadline trades that for bounded latency, the same trade the
// robust chain documents.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/graph.h"
#include "core/types.h"
#include "schedulers/scheduler.h"
#include "util/cancel.h"

namespace wrbpg {

// Which engine prices a budget. Both honor the anytime contract; they
// differ in what bounds the work per point.
enum class ExploreScheduler : std::uint8_t {
  // Branch-and-bound run to its state/byte caps: deterministic at any
  // thread count (no wall clock involved), certified gap on interruption.
  kBranchAndBound = 0,
  // Full robust chain (recognition -> exact -> DPs -> heuristics) under a
  // per-point deadline slice: bounded latency on any graph, but which
  // stage answers is wall-clock-dependent when deadline_ms > 0.
  kRobustChain,
};

// "bb" / "robust" — the CLI --scheduler vocabulary.
const char* ToString(ExploreScheduler scheduler);
std::optional<ExploreScheduler> ExploreSchedulerFromString(
    std::string_view name);

struct ExploreOptions {
  // Red-budget band [budget_lo, budget_hi] scanned at budget_step.
  // budget_lo == 0 derives the floor from MinValidBudget (Prop 2.3:
  // nothing below it schedules at all); budget_hi == 0 derives the cap
  // from the Definition 2.6 minimum-memory scan (Belady prober) plus
  // `band_slack`.
  Weight budget_lo = 0;
  Weight budget_hi = 0;
  Weight budget_step = 16;  // the paper reports budgets in 16-bit words
  Weight band_slack = 64;   // extra band above the derived min-memory
  // SRAM word widths (bits) to organize each capacity at. Combinations
  // where the power-of-two capacity is not a word multiple (or the width
  // is malformed) are skipped-and-counted via TrySynthesizeSram's typed
  // rejection.
  std::vector<Weight> word_bits = {8, 16, 32};
  ExploreScheduler scheduler = ExploreScheduler::kBranchAndBound;
  // Per-point deadline slice for the robust chain; 0 = none. Ignored by
  // the bb engine, whose work is bounded by max_states instead (keeping
  // the default grid bit-identical across thread counts).
  double deadline_ms = 0;
  // State safety valve per bb solve (see BruteForceOptions::max_states).
  // Deliberately far below the engine's default: a sweep prices dozens of
  // budgets, and the tight-budget points at the bottom of the band explode
  // combinatorially — the anytime contract turns the cap into a certified
  // gap instead of a hang.
  std::size_t max_states = 200'000;
  // Execution-window stretch for the energy model (1.0 = memory-bound).
  double duty_cycle = 1.0;
  // Worker threads for the per-budget solves; 0 = DefaultSearchThreads().
  std::size_t threads = 0;
  // Polled between budget solves; a fired token aborts the exploration
  // with ok == false rather than returning a partial frontier.
  const CancelToken* cancel = nullptr;
};

// One priced design point. The dominance objectives are the four costs
// (area, leakage, energy, io_cost), all minimized; the certificate fields
// qualify how exact io_cost is.
struct ExplorePoint {
  Weight budget = 0;         // red budget solved at (bits)
  Weight capacity_bits = 0;  // PowerOfTwoCapacity(budget) — the macro built
  Weight word_bits = 0;

  // Anytime certificate for the schedule backing this point:
  // lower_bound <= optimal io_cost <= io_cost, gap == io_cost - lower_bound
  // (0 == proven optimal), termination records why the solver stopped.
  Weight io_cost = 0;
  Weight lower_bound = 0;
  Weight gap = 0;
  Termination termination = Termination::kComplete;

  Weight bits_loaded = 0;  // M1 traffic of the schedule (bits)
  Weight bits_stored = 0;  // M2 traffic (bits)

  double area_lambda2 = 0;
  double leakage_mw = 0;
  double energy_nj = 0;

  bool on_frontier = false;
};

struct ExploreResult {
  bool ok = false;
  std::string error;  // why exploration failed; empty when ok

  // The band actually scanned (after derivation).
  Weight budget_lo = 0;
  Weight budget_hi = 0;
  Weight budget_step = 0;

  std::size_t budgets_scanned = 0;
  std::size_t infeasible_budgets = 0;  // no valid schedule (Prop 2.3)
  std::size_t invalid_points = 0;      // SRAM synthesis rejections skipped

  // Grid order: budget-major, word-width-minor — the determinism anchor.
  std::vector<ExplorePoint> points;
  // Ascending indices into `points` of the Pareto-optimal designs.
  std::vector<std::size_t> frontier;
  std::size_t dominated = 0;  // points.size() - frontier.size()
};

// True when `a` is no worse than `b` on every objective (area, leakage,
// energy, io_cost) and strictly better on at least one.
bool Dominates(const ExplorePoint& a, const ExplorePoint& b);

// Ascending indices of the non-dominated points (pure fold; O(n²)).
std::vector<std::size_t> ParetoFrontier(const std::vector<ExplorePoint>& points);

// Independent re-derivation of the dominance pass: recomputes the frontier
// from `points` alone and checks the claimed indices and on_frontier flags
// match. Rejects tampered results (a dominated point smuggled onto the
// frontier, an optimal point dropped) with a one-line reason.
bool VerifyFrontier(const std::vector<ExplorePoint>& points,
                    const std::vector<std::size_t>& frontier,
                    std::string* error = nullptr);

// FNV-1a over the frontier points' exact field bytes (doubles by bit
// pattern) — the bit-identity check bench_explore and the determinism
// tests compare across thread counts.
std::uint64_t FrontierHash(const ExploreResult& result);

// Prices the whole grid and runs the dominance pass. Never aborts:
// malformed options come back ok == false, malformed grid points are
// skipped-and-counted.
ExploreResult Explore(const Graph& graph, const ExploreOptions& options = {});

}  // namespace wrbpg
