#include "explore/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "util/table.h"

namespace wrbpg {
namespace {

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

// Energies span sub-nJ (tiny macros) to many nJ; significant digits keep
// both readable where fixed decimals would flatten the small ones to 0.00.
std::string FmtSig(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string HexHash(std::uint64_t hash) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace

std::string RenderExploreTable(const ExploreResult& result) {
  std::ostringstream out;
  if (!result.ok) {
    out << "exploration failed: " << result.error << "\n";
    return out.str();
  }
  out << "explored budgets [" << result.budget_lo << ", " << result.budget_hi
      << "] step " << result.budget_step << ": " << result.points.size()
      << " points, " << result.frontier.size() << " on frontier, "
      << result.dominated << " dominated, " << result.infeasible_budgets
      << " infeasible budgets, " << result.invalid_points
      << " invalid points skipped\n";
  TextTable table({"Budget", "Capacity", "Word", "IO cost", "LB", "Gap",
                   "Area (lambda^2)", "Leakage (mW)", "Energy (nJ)",
                   "Frontier"});
  for (const ExplorePoint& p : result.points) {
    table.AddRow({std::to_string(p.budget), std::to_string(p.capacity_bits),
                  std::to_string(p.word_bits), std::to_string(p.io_cost),
                  std::to_string(p.lower_bound), std::to_string(p.gap),
                  Fmt(p.area_lambda2), Fmt(p.leakage_mw),
                  FmtSig(p.energy_nj), p.on_frontier ? "*" : ""});
  }
  table.Print(out);
  return out.str();
}

std::string RenderFrontierPlot(const ExploreResult& result, int width,
                               int height) {
  std::ostringstream out;
  if (!result.ok || result.points.empty()) {
    out << "(no design points to plot)\n";
    return out.str();
  }
  double area_lo = result.points[0].area_lambda2, area_hi = area_lo;
  double energy_lo = result.points[0].energy_nj, energy_hi = energy_lo;
  for (const ExplorePoint& p : result.points) {
    area_lo = std::min(area_lo, p.area_lambda2);
    area_hi = std::max(area_hi, p.area_lambda2);
    energy_lo = std::min(energy_lo, p.energy_nj);
    energy_hi = std::max(energy_hi, p.energy_nj);
  }
  if (area_hi <= area_lo || energy_hi <= energy_lo) {
    out << "(all " << result.points.size()
        << " points coincide in area/energy; nothing to plot)\n";
    return out.str();
  }
  const int cols = std::max(8, width);
  const int rows = std::max(4, height);
  std::vector<std::string> canvas(static_cast<std::size_t>(rows),
                                  std::string(static_cast<std::size_t>(cols),
                                              ' '));
  // Dominated points first so a frontier '*' sharing a cell wins the pixel.
  for (const bool frontier_pass : {false, true}) {
    for (const ExplorePoint& p : result.points) {
      if (p.on_frontier != frontier_pass) continue;
      const int c = static_cast<int>((p.area_lambda2 - area_lo) /
                                     (area_hi - area_lo) * (cols - 1));
      const int r = static_cast<int>((p.energy_nj - energy_lo) /
                                     (energy_hi - energy_lo) * (rows - 1));
      // Row 0 renders at the top; high energy plots high.
      canvas[static_cast<std::size_t>(rows - 1 - r)]
            [static_cast<std::size_t>(c)] = frontier_pass ? '*' : '.';
    }
  }
  out << "area (x, " << Fmt(area_lo) << ".." << Fmt(area_hi)
      << " lambda^2) vs energy (y, " << FmtSig(energy_lo) << ".."
      << FmtSig(energy_hi) << " nJ); '*' frontier, '.' dominated\n";
  for (int r = 0; r < rows; ++r) {
    out << (r == 0 ? "energy |" : "       |")
        << canvas[static_cast<std::size_t>(r)] << "|\n";
  }
  out << "       +" << std::string(static_cast<std::size_t>(cols), '-')
      << "+\n";
  return out.str();
}

obs::Json ExploreToJson(const std::string& instance,
                        const std::string& scheduler,
                        const ExploreResult& result) {
  obs::Json doc = obs::Json::Object();
  doc.Set("schema", "wrbpg-explore-v1");
  doc.Set("instance", instance);
  doc.Set("scheduler", scheduler);
  doc.Set("ok", result.ok);
  if (!result.ok) {
    doc.Set("error", result.error);
    return doc;
  }
  obs::Json band = obs::Json::Object();
  band.Set("lo", static_cast<std::int64_t>(result.budget_lo));
  band.Set("hi", static_cast<std::int64_t>(result.budget_hi));
  band.Set("step", static_cast<std::int64_t>(result.budget_step));
  doc.Set("band", std::move(band));
  doc.Set("budgets_scanned",
          static_cast<std::uint64_t>(result.budgets_scanned));
  doc.Set("infeasible_budgets",
          static_cast<std::uint64_t>(result.infeasible_budgets));
  doc.Set("invalid_points", static_cast<std::uint64_t>(result.invalid_points));
  doc.Set("dominated", static_cast<std::uint64_t>(result.dominated));
  doc.Set("frontier_hash", HexHash(FrontierHash(result)));
  obs::Json points = obs::Json::Array();
  for (const ExplorePoint& p : result.points) {
    obs::Json point = obs::Json::Object();
    point.Set("budget", static_cast<std::int64_t>(p.budget));
    point.Set("capacity_bits", static_cast<std::int64_t>(p.capacity_bits));
    point.Set("word_bits", static_cast<std::int64_t>(p.word_bits));
    point.Set("io_cost", static_cast<std::int64_t>(p.io_cost));
    point.Set("lower_bound", static_cast<std::int64_t>(p.lower_bound));
    point.Set("gap", static_cast<std::int64_t>(p.gap));
    point.Set("termination", ToString(p.termination));
    point.Set("bits_loaded", static_cast<std::int64_t>(p.bits_loaded));
    point.Set("bits_stored", static_cast<std::int64_t>(p.bits_stored));
    point.Set("area_lambda2", p.area_lambda2);
    point.Set("leakage_mw", p.leakage_mw);
    point.Set("energy_nj", p.energy_nj);
    point.Set("on_frontier", p.on_frontier);
    points.Push(std::move(point));
  }
  doc.Set("points", std::move(points));
  obs::Json frontier = obs::Json::Array();
  for (std::size_t idx : result.frontier) {
    frontier.Push(static_cast<std::uint64_t>(idx));
  }
  doc.Set("frontier", std::move(frontier));
  return doc;
}

}  // namespace wrbpg
